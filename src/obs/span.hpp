// Sim-time span tracing (--trace-spans, docs/observability.md).
//
// Two write surfaces, one canonical export:
//  * JobTracer — a per-device flat event buffer fed by that device's
//    scheduler stack (release / first dispatch / complete / drop / shed /
//    crash abort). During a sharded run each buffer is written only by the
//    shard thread that owns the device (plus the control plane at epoch
//    barriers, where the shards are parked), so the parallel phase needs
//    no locks — the same partition-then-reduce discipline the per-device
//    collectors and the overload guard's staged audit records use.
//  * SpanSink — owns the device tracers plus the control-plane and
//    stream-lifetime record streams, which only the (serial) control
//    plane writes.
//
// write_perfetto() renders Chrome/Perfetto trace-event JSON: pid 0 is the
// control plane, pid d+1 is device d; job spans land on tid = task id,
// stream-lifetime spans on tid = stream id. Export walks devices in index
// order and renders times from integer nanoseconds, so the span file is
// byte-identical at any --shards count (pinned by tests/obs/span_test.cpp
// and CI).
#pragma once

#include <cstdint>
#include <deque>
#include <ostream>
#include <string>
#include <vector>

#include "common/time.hpp"

namespace sgprs::obs {

using common::SimTime;

/// Per-device job-event buffer. Appends are amortized O(1) with no
/// steady-state allocation (geometric vector growth warms up once).
class JobTracer {
 public:
  enum class Event : std::uint8_t {
    kRelease,   // runner release reached the scheduler
    kDispatch,  // first stage left the queue for a stream
    kComplete,  // final stage finished
    kDrop,      // scheduler drop (in-flight cap, hopeless abort)
    kShed,      // overload guard shed the release at the door
    kAbortAll,  // device crash killed every in-flight job
  };
  struct Record {
    std::int64_t t_ns = 0;
    std::int64_t release_ns = 0;  // job identity: (task_id, release_ns)
    std::int32_t task_id = -1;    // kAbortAll reuses this for the kill count
    Event kind = Event::kRelease;
  };

  void release(int task, SimTime now) {
    push(Event::kRelease, task, now, now);
  }
  void dispatch(int task, SimTime release, SimTime now) {
    push(Event::kDispatch, task, release, now);
  }
  void complete(int task, SimTime release, SimTime now) {
    push(Event::kComplete, task, release, now);
  }
  void drop(int task, SimTime release, SimTime now) {
    push(Event::kDrop, task, release, now);
  }
  void shed(int task, SimTime now) { push(Event::kShed, task, now, now); }
  void abort_all(int killed, SimTime now) {
    push(Event::kAbortAll, killed, now, now);
  }

  const std::vector<Record>& records() const { return records_; }

 private:
  void push(Event kind, int task, SimTime release, SimTime now) {
    records_.push_back(Record{now.ns, release.ns,
                              static_cast<std::int32_t>(task), kind});
  }
  std::vector<Record> records_;
};

class SpanSink {
 public:
  /// The tracer for device `index`, grown on demand (deque: stable
  /// addresses while the autoscaler adds devices).
  JobTracer& device_tracer(int index);

  /// Control-plane instant (decision kinds, autoscaler ticks). Serial
  /// callers only.
  void control(SimTime t, std::string kind, int task_id, int device,
               std::string detail);

  /// Stream lifetime: admit opens a segment on `device`; moved closes it
  /// and opens one on the new device (-1 = orphaned, no new segment);
  /// retired closes for good. Open segments close at the horizon.
  void stream_admitted(SimTime t, int stream_id, int device,
                       std::string tmpl);
  void stream_moved(SimTime t, int stream_id, int device);
  void stream_retired(SimTime t, int stream_id);

  void set_horizon(SimTime t) { horizon_ns_ = t.ns; }
  void set_device_name(int index, std::string name);

  int num_devices() const { return static_cast<int>(devices_.size()); }
  /// Total recorded events across every track (bench_span_overhead).
  std::int64_t total_events() const;

  /// Chrome/Perfetto trace-event JSON ({"traceEvents": [...]}); see the
  /// header comment for the track layout and the determinism contract.
  void write_perfetto(std::ostream& out) const;

 private:
  struct ControlRecord {
    std::int64_t t_ns = 0;
    std::string kind;
    std::int32_t task_id = -1;
    std::int32_t device = -1;
    std::string detail;
  };
  struct StreamRecord {
    enum class Kind : std::uint8_t { kAdmit, kMove, kRetire };
    std::int64_t t_ns = 0;
    std::int32_t stream_id = -1;
    std::int32_t device = -1;
    Kind kind = Kind::kAdmit;
    std::string tmpl;
  };

  std::deque<JobTracer> devices_;
  std::vector<std::string> device_names_;
  std::vector<ControlRecord> control_;
  std::vector<StreamRecord> streams_;
  std::int64_t horizon_ns_ = 0;
};

}  // namespace sgprs::obs
