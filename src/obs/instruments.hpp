// Optional observability attachments threaded through run_spec and
// run_fleet_scenario (docs/observability.md). Null members are simply
// off: the hooks they guard cost one branch, and neither attachment ever
// perturbs the simulated run — span files are byte-identical at any shard
// count, and report bytes are identical with and without instruments
// (pinned by tests/obs/).
#pragma once

namespace sgprs::obs {

class SpanSink;
class PhaseProfiler;

struct Instruments {
  SpanSink* spans = nullptr;
  PhaseProfiler* profiler = nullptr;

  bool any() const { return spans != nullptr || profiler != nullptr; }
};

}  // namespace sgprs::obs
