#include "obs/span.hpp"

#include <cinttypes>
#include <cstdio>
#include <map>
#include <utility>

#include "common/check.hpp"
#include "common/json_writer.hpp"

namespace sgprs::obs {

namespace {

/// Microsecond timestamp with nanosecond fraction, rendered from the
/// integer — "12345.678" — so the bytes never depend on floating-point
/// formatting. Sim times are non-negative by construction.
std::string us(std::int64_t ns) {
  SGPRS_CHECK(ns >= 0);
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%" PRId64 ".%03" PRId64, ns / 1000,
                ns % 1000);
  return buf;
}

std::string quoted(const std::string& s) {
  return "\"" + common::JsonWriter::escape(s) + "\"";
}

/// Comma-separated trace-event stream; each event is one hand-rendered
/// JSON object (JsonWriter cannot emit the raw fractional-us timestamps).
class EventStream {
 public:
  explicit EventStream(std::ostream& out) : out_(out) {
    out_ << "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";
  }
  std::ostream& next() {
    if (!first_) out_ << ",\n";
    first_ = false;
    return out_;
  }
  void finish() { out_ << (first_ ? "]\n}\n" : "\n]\n}\n"); }

 private:
  std::ostream& out_;
  bool first_ = true;
};

void emit_process_name(EventStream& es, int pid, const std::string& name) {
  es.next() << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
            << ",\"tid\":0,\"args\":{\"name\":" << quoted(name) << "}}";
}

void emit_complete(EventStream& es, const std::string& name,
                   const char* cat, int pid, std::int64_t tid,
                   std::int64_t start_ns, std::int64_t end_ns,
                   const std::string& args) {
  es.next() << "{\"name\":" << quoted(name) << ",\"cat\":\"" << cat
            << "\",\"ph\":\"X\",\"ts\":" << us(start_ns)
            << ",\"dur\":" << us(end_ns - start_ns) << ",\"pid\":" << pid
            << ",\"tid\":" << tid << (args.empty() ? "" : ",\"args\":{")
            << args << (args.empty() ? "" : "}") << "}";
}

void emit_instant(EventStream& es, const std::string& name, const char* cat,
                  int pid, std::int64_t tid, std::int64_t t_ns,
                  const std::string& args) {
  es.next() << "{\"name\":" << quoted(name) << ",\"cat\":\"" << cat
            << "\",\"ph\":\"i\",\"s\":\"t\",\"ts\":" << us(t_ns)
            << ",\"pid\":" << pid << ",\"tid\":" << tid
            << (args.empty() ? "" : ",\"args\":{") << args
            << (args.empty() ? "" : "}") << "}";
}

/// A job in flight during export: identified by (task, release instant).
struct PendingJob {
  std::int64_t dispatch_ns = -1;
};
using PendingMap = std::map<std::pair<std::int32_t, std::int64_t>,
                            PendingJob>;

/// Queue span (release -> first dispatch) and exec span (first dispatch ->
/// end). `end_ns` is the completion, the kill instant, or the horizon.
void emit_job_spans(EventStream& es, int pid, std::int32_t task,
                    std::int64_t release_ns, std::int64_t dispatch_ns,
                    std::int64_t end_ns) {
  const std::string args = "\"task\":" + std::to_string(task);
  const std::int64_t queue_end = dispatch_ns >= 0 ? dispatch_ns : end_ns;
  if (queue_end > release_ns) {
    emit_complete(es, "queue", "job", pid, task, release_ns, queue_end,
                  args);
  }
  if (dispatch_ns >= 0) {
    emit_complete(es, "exec", "job", pid, task, dispatch_ns, end_ns, args);
  }
}

}  // namespace

JobTracer& SpanSink::device_tracer(int index) {
  SGPRS_CHECK(index >= 0);
  while (static_cast<int>(devices_.size()) <= index) {
    devices_.emplace_back();
  }
  return devices_[index];
}

void SpanSink::control(SimTime t, std::string kind, int task_id, int device,
                       std::string detail) {
  control_.push_back(ControlRecord{t.ns, std::move(kind),
                                   static_cast<std::int32_t>(task_id),
                                   static_cast<std::int32_t>(device),
                                   std::move(detail)});
}

void SpanSink::stream_admitted(SimTime t, int stream_id, int device,
                               std::string tmpl) {
  streams_.push_back(StreamRecord{t.ns, static_cast<std::int32_t>(stream_id),
                                  static_cast<std::int32_t>(device),
                                  StreamRecord::Kind::kAdmit,
                                  std::move(tmpl)});
}

void SpanSink::stream_moved(SimTime t, int stream_id, int device) {
  streams_.push_back(StreamRecord{t.ns, static_cast<std::int32_t>(stream_id),
                                  static_cast<std::int32_t>(device),
                                  StreamRecord::Kind::kMove, ""});
}

void SpanSink::stream_retired(SimTime t, int stream_id) {
  streams_.push_back(StreamRecord{t.ns, static_cast<std::int32_t>(stream_id),
                                  -1, StreamRecord::Kind::kRetire, ""});
}

void SpanSink::set_device_name(int index, std::string name) {
  SGPRS_CHECK(index >= 0);
  if (index >= static_cast<int>(device_names_.size())) {
    device_names_.resize(index + 1);
  }
  device_names_[index] = std::move(name);
}

std::int64_t SpanSink::total_events() const {
  std::int64_t n = static_cast<std::int64_t>(control_.size()) +
                   static_cast<std::int64_t>(streams_.size());
  for (const auto& d : devices_) {
    n += static_cast<std::int64_t>(d.records().size());
  }
  return n;
}

void SpanSink::write_perfetto(std::ostream& out) const {
  EventStream es(out);

  // Track metadata: pid 0 is the control plane, pid d+1 is device d.
  emit_process_name(es, 0, "control-plane");
  const int devices = std::max(num_devices(),
                               static_cast<int>(device_names_.size()));
  for (int d = 0; d < devices; ++d) {
    std::string name = "device " + std::to_string(d);
    if (d < static_cast<int>(device_names_.size()) &&
        !device_names_[d].empty()) {
      name += " (" + device_names_[d] + ")";
    }
    emit_process_name(es, d + 1, name);
  }

  // Control-plane instants, in decision order.
  for (const auto& c : control_) {
    std::string args;
    if (c.task_id >= 0) args += "\"task\":" + std::to_string(c.task_id);
    if (c.device >= 0) {
      if (!args.empty()) args += ",";
      args += "\"device\":" + std::to_string(c.device);
    }
    if (!c.detail.empty()) {
      if (!args.empty()) args += ",";
      args += "\"detail\":" + quoted(c.detail);
    }
    emit_instant(es, c.kind, "control", 0, 0, c.t_ns, args);
  }

  // Stream lifetime segments: admit/move open, move/retire close; whatever
  // is still open closes at the horizon (in stream-id order — canonical).
  struct OpenSegment {
    std::int64_t start_ns = 0;
    std::int32_t device = -1;
    std::string tmpl;
  };
  std::map<std::int32_t, OpenSegment> open;
  auto close_segment = [&](std::int32_t id, const OpenSegment& seg,
                           std::int64_t end_ns) {
    emit_complete(es, seg.tmpl.empty() ? "stream" : "stream " + seg.tmpl,
                  "stream", seg.device + 1, id, seg.start_ns, end_ns,
                  "\"stream\":" + std::to_string(id) +
                      (seg.tmpl.empty()
                           ? ""
                           : ",\"template\":" + quoted(seg.tmpl)));
  };
  for (const auto& s : streams_) {
    auto it = open.find(s.stream_id);
    switch (s.kind) {
      case StreamRecord::Kind::kAdmit:
        open[s.stream_id] = OpenSegment{s.t_ns, s.device, s.tmpl};
        break;
      case StreamRecord::Kind::kMove:
        if (it != open.end()) {
          OpenSegment seg = it->second;
          close_segment(s.stream_id, seg, s.t_ns);
          if (s.device >= 0) {
            it->second = OpenSegment{s.t_ns, s.device, std::move(seg.tmpl)};
          } else {
            // Orphaned: no home until a later move re-places it.
            open.erase(it);
            emit_instant(es, "orphaned", "stream", 0, s.stream_id, s.t_ns,
                         "\"stream\":" + std::to_string(s.stream_id));
          }
        } else if (s.device >= 0) {
          // Re-placed after an orphan gap: a fresh segment, template lost
          // to the gap (the admit segment carried it).
          open[s.stream_id] = OpenSegment{s.t_ns, s.device, ""};
        }
        break;
      case StreamRecord::Kind::kRetire:
        if (it != open.end()) {
          close_segment(s.stream_id, it->second, s.t_ns);
          open.erase(it);
        }
        break;
    }
  }
  for (const auto& [id, seg] : open) {
    close_segment(id, seg, horizon_ns_);
  }

  // Job spans, device by device in index order. Each device's buffer is
  // already time-sorted (its shard pushed in event order).
  for (int d = 0; d < num_devices(); ++d) {
    const int pid = d + 1;
    PendingMap pending;
    for (const auto& r : devices_[d].records()) {
      const auto key = std::make_pair(r.task_id, r.release_ns);
      switch (r.kind) {
        case JobTracer::Event::kRelease:
          pending[key] = PendingJob{};
          break;
        case JobTracer::Event::kDispatch: {
          auto it = pending.find(key);
          if (it != pending.end()) it->second.dispatch_ns = r.t_ns;
          break;
        }
        case JobTracer::Event::kComplete: {
          auto it = pending.find(key);
          if (it != pending.end()) {
            emit_job_spans(es, pid, r.task_id, r.release_ns,
                           it->second.dispatch_ns, r.t_ns);
            pending.erase(it);
          }
          break;
        }
        case JobTracer::Event::kDrop: {
          auto it = pending.find(key);
          if (it != pending.end()) {
            emit_job_spans(es, pid, r.task_id, r.release_ns,
                           it->second.dispatch_ns, r.t_ns);
            pending.erase(it);
          }
          emit_instant(es, "drop", "job", pid, r.task_id, r.t_ns,
                       "\"task\":" + std::to_string(r.task_id));
          break;
        }
        case JobTracer::Event::kShed:
          emit_instant(es, "shed", "job", pid, r.task_id, r.t_ns,
                       "\"task\":" + std::to_string(r.task_id));
          break;
        case JobTracer::Event::kAbortAll:
          // task_id carries the kill count; the jobs it killed truncate
          // here, in (task, release) order — canonical.
          emit_instant(es, "abort_in_flight", "job", pid, 0, r.t_ns,
                       "\"killed\":" + std::to_string(r.task_id));
          for (const auto& [k, pj] : pending) {
            emit_job_spans(es, pid, k.first, k.second, pj.dispatch_ns,
                           r.t_ns);
          }
          pending.clear();
          break;
      }
    }
    // Open at the horizon: jobs still queued or running when the run ends.
    for (const auto& [k, pj] : pending) {
      emit_job_spans(es, pid, k.first, k.second, pj.dispatch_ns,
                     horizon_ns_);
    }
  }

  es.finish();
}

}  // namespace sgprs::obs
