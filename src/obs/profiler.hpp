// Wall-clock phase profiler (--profile, docs/observability.md).
//
// RAII scoped timers around the runtime's coarse phases, aggregated per
// phase as count / total / max. Wall-clock only, by design: its output
// (the stderr table and the <report>_profile.json sidecar) varies from
// run to run and is explicitly excluded from the deterministic
// byte-compare set — attaching a profiler never changes a single byte of
// the report, series, trace or span artifacts (pinned by
// tests/obs/profiler_test.cpp).
//
// Single-threaded by contract: every scope opens and closes on the
// control thread (the parallel shard waves are timed from outside the
// barrier, as one kShardPhase scope).
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <ostream>

namespace sgprs::obs {

class PhaseProfiler {
 public:
  enum class Phase : int {
    kSetup = 0,        // cluster build, prototype profiling, initial place
    kShardPhase,       // one parallel shard wave (barrier to barrier)
    kControlPhase,     // one serial control-plane instant (sharded runs)
    kEngineRun,        // single-calendar engine execution (unsharded)
    kPlacerBatch,      // drain / failover batched re-placement
    kCollectorReduce,  // canonical per-device collector reduction
    kSpanExport,       // span-file rendering (--trace-spans)
    kReportWrite,      // report / series writers
    kRun,              // the whole run (CLI-level envelope)
    kCount,
  };
  static constexpr int kPhases = static_cast<int>(Phase::kCount);
  static const char* phase_name(Phase p);

  struct Stat {
    std::int64_t count = 0;
    double total_s = 0.0;
    double max_s = 0.0;
  };

  /// Null-safe RAII timer: a Scope on a null profiler never reads the
  /// clock, so instrumented code paths cost one branch when profiling is
  /// off.
  class Scope {
   public:
    Scope(PhaseProfiler* profiler, Phase phase) : profiler_(profiler) {
      if (profiler_) {
        phase_ = phase;
        start_ = std::chrono::steady_clock::now();
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;
    ~Scope() {
      if (profiler_) {
        const std::chrono::duration<double> d =
            std::chrono::steady_clock::now() - start_;
        profiler_->add(phase_, d.count());
      }
    }

   private:
    PhaseProfiler* profiler_;
    Phase phase_ = Phase::kSetup;
    std::chrono::steady_clock::time_point start_;
  };

  void add(Phase p, double seconds);
  const Stat& stat(Phase p) const {
    return stats_[static_cast<int>(p)];
  }

  /// Human-readable per-phase table (only phases that fired).
  void print(std::ostream& out) const;
  /// Machine-readable sidecar ("<report>_profile.json").
  void write_json(std::ostream& out) const;

 private:
  std::array<Stat, kPhases> stats_{};
};

}  // namespace sgprs::obs
