#include "obs/profiler.hpp"

#include <cstdio>

#include "common/check.hpp"
#include "common/json_writer.hpp"

namespace sgprs::obs {

const char* PhaseProfiler::phase_name(Phase p) {
  switch (p) {
    case Phase::kSetup: return "setup";
    case Phase::kShardPhase: return "shard_phase";
    case Phase::kControlPhase: return "control_phase";
    case Phase::kEngineRun: return "engine_run";
    case Phase::kPlacerBatch: return "placer_batch";
    case Phase::kCollectorReduce: return "collector_reduce";
    case Phase::kSpanExport: return "span_export";
    case Phase::kReportWrite: return "report_write";
    case Phase::kRun: return "run";
    case Phase::kCount: break;
  }
  return "?";
}

void PhaseProfiler::add(Phase p, double seconds) {
  SGPRS_CHECK(p != Phase::kCount);
  Stat& s = stats_[static_cast<int>(p)];
  ++s.count;
  s.total_s += seconds;
  if (seconds > s.max_s) s.max_s = seconds;
}

void PhaseProfiler::print(std::ostream& out) const {
  out << "phase profile (wall clock)\n";
  out << "  phase             count     total ms       max ms\n";
  char buf[96];
  for (int i = 0; i < kPhases; ++i) {
    const Stat& s = stats_[i];
    if (s.count == 0) continue;
    std::snprintf(buf, sizeof(buf), "  %-16s %6lld %12.3f %12.3f\n",
                  phase_name(static_cast<Phase>(i)),
                  static_cast<long long>(s.count), s.total_s * 1e3,
                  s.max_s * 1e3);
    out << buf;
  }
}

void PhaseProfiler::write_json(std::ostream& out) const {
  common::JsonWriter w(out);
  w.begin_object();
  w.field("schema", "sgprs-profile-v1");
  w.key("phases").begin_array();
  for (int i = 0; i < kPhases; ++i) {
    const Stat& s = stats_[i];
    if (s.count == 0) continue;
    w.begin_object();
    w.field("phase", phase_name(static_cast<Phase>(i)));
    w.field("count", s.count);
    w.field("total_s", s.total_s);
    w.field("max_s", s.max_s);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
}

}  // namespace sgprs::obs
