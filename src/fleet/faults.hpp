// Fault injection and failover: the impolite half of the open world.
//
// The timeline models capacity that changes *politely* — drains announce
// themselves and finish cleanly. A "faults" spec section adds devices that
// die mid-job. It has three parts:
//   * scripted events — "at t, crash device i" / "crash k devices"
//     (correlated rack-style outages) / "at t, recover device i", with an
//     optional per-crash down_s that schedules the recovery implicitly;
//   * a stochastic fault process — per-device exponential MTBF/MTTR. Every
//     draw is keyed shard-blind via common::stream_seed(fault_seed, device,
//     incident), so the schedule is a pure function of (seed, device,
//     incident index) — never of shard count, placement outcomes or event
//     interleaving. `--shards N` stays byte-identical (docs/faults.md);
//   * a failover policy — how orphaned streams are re-placed: max attempts,
//     exponential backoff with seeded per-(stream, attempt) jitter,
//     optional QoS downgrade on the final attempt, and park-and-retry on
//     the next capacity-change event when nothing fits.
//
// A crash — unlike a drain — kills the device instantly: in-flight jobs
// are aborted (counted as jobs_faulted, distinct from deadline misses),
// live streams become orphans, and the failover engine re-places them.
// Recovery restores the device after MTTR and re-admits parked orphans.
//
// docs/faults.md is the schema reference; parsing follows the same rules
// as the rest of the spec surface (unknown keys are errors, messages carry
// field paths).
#pragma once

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"

namespace sgprs::fleet {

/// One scripted fault event. `device >= 0` targets that device; otherwise
/// `count` picks the first `count` active devices at fire time (highest
/// index first, mirroring scale-down victim order) — a correlated outage.
struct FaultEvent {
  enum class Kind { kCrash, kRecover };
  Kind kind = Kind::kCrash;
  double at_s = 0.0;
  int device = -1;
  int count = 1;
  /// Crash only: schedule the recovery down_s seconds later (0 = stay down
  /// until an explicit recover event or the horizon).
  double down_s = 0.0;
};

/// Seeded stochastic fault process: each in-scope device fails with
/// exponential inter-failure gaps of mean `mtbf_s` and repairs after an
/// exponential downtime of mean `mttr_s` (0 = stays down).
struct FaultProcess {
  double mtbf_s = 0.0;  // 0 = no stochastic process
  double mttr_s = 0.0;
  double from_s = 0.0;
  double until_s = 0.0;  // 0 = run horizon
};

/// Failover retry policy for orphaned streams.
struct FailoverPolicy {
  int max_attempts = 3;
  double backoff_ms = 50.0;
  double backoff_mult = 2.0;
  /// Uniform jitter in [0, jitter_ms) added to each backoff, drawn from a
  /// per-(stream, attempt) seeded rng — shard-blind like everything else.
  double jitter_ms = 0.0;
  /// Re-try the final attempt with the downgraded (fps-scaled) prototype,
  /// mirroring admission-time QoS downgrade.
  bool qos_downgrade = false;
  /// When every attempt fails: park the orphan and retry on the next
  /// capacity-change event (device recovery / warm-up activation). False
  /// drops it instead (counted as streams_lost).
  bool park = true;
};

struct FaultSpec {
  std::uint64_t seed = 1;
  std::vector<FaultEvent> events;
  FaultProcess process;
  FailoverPolicy failover;
  /// Degraded mode: when active devices fall below this floor, the
  /// overload guard's shed path engages with `degraded_queue_limit` until
  /// capacity recovers. 0 disables.
  int min_active_devices = 0;
  int degraded_queue_limit = 1;
};

/// Parses a "faults" section. Throws workload::SpecError with field paths.
FaultSpec parse_fault_spec(const common::JsonValue& v,
                           const std::string& path);

/// Semantic validation: event targets and ranges, process and failover
/// parameter ranges.
void validate_fault_spec(const FaultSpec& spec, const std::string& path);

/// The deterministic draw core of the stochastic process and the retry
/// jitter. Stateless per call: every draw builds a fresh rng from a
/// splitmix-avalanched (base, key-a, key-b) seed, so a draw depends only on
/// its keys — rule 2 of the sharding contract (src/fleet/sharding.hpp).
class FaultEngine {
 public:
  /// `sim_seed` is mixed into the base exactly like the churn rng mixes the
  /// timeline seed, so experiment replications decorrelate fault schedules
  /// without spec edits.
  FaultEngine(const FaultSpec& spec, std::uint64_t sim_seed)
      : spec_(spec),
        base_(spec.seed + 0x9e3779b97f4a7c15ULL * (sim_seed + 1)) {}

  const FaultSpec& spec() const { return spec_; }

  /// Exponential gap (seconds) from device `device`'s previous repair (or
  /// the process start, for incident 0) to its next failure.
  double failure_gap_s(int device, int incident) const {
    return exp_draw(device, 2 * incident, spec_.process.mtbf_s);
  }

  /// Exponential downtime (seconds) of device `device`'s `incident`-th
  /// stochastic failure.
  double repair_s(int device, int incident) const {
    return exp_draw(device, 2 * incident + 1, spec_.process.mttr_s);
  }

  /// Backoff before failover attempt `attempt` (>= 1) of stream `task_id`:
  /// backoff_ms * mult^(attempt-1) plus seeded jitter. Keyed on the task id
  /// (stable across shards), never on the orphan's position in any queue.
  double retry_backoff_ms(int task_id, int attempt) const {
    const auto& f = spec_.failover;
    double backoff = f.backoff_ms;
    for (int i = 1; i < attempt; ++i) backoff *= f.backoff_mult;
    if (f.jitter_ms > 0.0) {
      // ~base_ keeps the jitter keyspace disjoint from the MTBF/MTTR draws
      // (same (a, b) pair, different base).
      common::Rng rng(common::stream_seed(~base_, task_id, attempt));
      backoff += rng.uniform(0.0, f.jitter_ms);
    }
    return backoff;
  }

 private:
  double exp_draw(int device, int index, double mean_s) const {
    common::Rng rng(common::stream_seed(base_, device, index));
    // Inverse-CDF with the (0, 1] flip so log() never sees zero.
    double u = 1.0 - rng.next_double();
    return -mean_s * std::log(u);
  }

  FaultSpec spec_;
  std::uint64_t base_;
};

}  // namespace sgprs::fleet
