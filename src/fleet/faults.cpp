#include "fleet/faults.hpp"

#include "workload/spec_util.hpp"

namespace sgprs::fleet {

namespace {

using common::JsonValue;
using namespace workload::specdet;

FaultEvent parse_fault_event(const JsonValue& v, const std::string& path) {
  require_object(v, path);
  check_keys(v, {"at_s", "crash", "recover", "device", "count", "down_s"},
             path);
  FaultEvent e;
  const JsonValue* crash = v.find("crash");
  const JsonValue* recover = v.find("recover");
  if ((crash != nullptr) == (recover != nullptr)) {
    bad(path, "a fault event takes exactly one of \"crash\" or \"recover\"");
  }
  e.kind = crash ? FaultEvent::Kind::kCrash : FaultEvent::Kind::kRecover;
  // The discriminator's value is the device index; -1 (or "count") means
  // "pick at fire time" — correlated outages.
  e.device = get_field(crash ? "crash" : "recover", path, [&] {
    return static_cast<int>((crash ? crash : recover)->as_int());
  });
  e.at_s = num_or(v, "at_s", 0.0, path);
  e.count = int_or(v, "count", e.count, path);
  e.down_s = num_or(v, "down_s", e.down_s, path);
  if (e.device >= 0 && v.find("count")) {
    bad(path + ".count", "count is for device -1 (pick at fire time); a "
                         "targeted event crashes exactly its device");
  }
  if (v.find("device")) {
    bad(path + ".device",
        "the device index is the \"crash\"/\"recover\" value");
  }
  return e;
}

}  // namespace

FaultSpec parse_fault_spec(const common::JsonValue& v,
                           const std::string& path) {
  require_object(v, path);
  check_keys(v,
             {"seed", "events", "process", "failover", "min_active_devices",
              "degraded_queue_limit"},
             path);
  FaultSpec spec;
  spec.seed = seed_or(v, "seed", spec.seed, path);
  spec.min_active_devices =
      int_or(v, "min_active_devices", spec.min_active_devices, path);
  spec.degraded_queue_limit =
      int_or(v, "degraded_queue_limit", spec.degraded_queue_limit, path);

  if (const JsonValue* events = v.find("events")) {
    const auto& items = get_field("events", path,
                                  [&] { return events->items(); });
    for (std::size_t i = 0; i < items.size(); ++i) {
      spec.events.push_back(parse_fault_event(
          items[i], path + ".events[" + std::to_string(i) + "]"));
    }
  }

  if (const JsonValue* process = v.find("process")) {
    const std::string p = path + ".process";
    require_object(*process, p);
    check_keys(*process, {"mtbf_s", "mttr_s", "from_s", "until_s"}, p);
    auto& pr = spec.process;
    pr.mtbf_s = num_or(*process, "mtbf_s", pr.mtbf_s, p);
    pr.mttr_s = num_or(*process, "mttr_s", pr.mttr_s, p);
    pr.from_s = num_or(*process, "from_s", pr.from_s, p);
    pr.until_s = num_or(*process, "until_s", pr.until_s, p);
  }

  if (const JsonValue* failover = v.find("failover")) {
    const std::string p = path + ".failover";
    require_object(*failover, p);
    check_keys(*failover,
               {"max_attempts", "backoff_ms", "backoff_mult", "jitter_ms",
                "qos_downgrade", "park"},
               p);
    auto& f = spec.failover;
    f.max_attempts = int_or(*failover, "max_attempts", f.max_attempts, p);
    f.backoff_ms = num_or(*failover, "backoff_ms", f.backoff_ms, p);
    f.backoff_mult = num_or(*failover, "backoff_mult", f.backoff_mult, p);
    f.jitter_ms = num_or(*failover, "jitter_ms", f.jitter_ms, p);
    f.qos_downgrade = bool_or(*failover, "qos_downgrade", f.qos_downgrade, p);
    f.park = bool_or(*failover, "park", f.park, p);
  }
  return spec;
}

void validate_fault_spec(const FaultSpec& spec, const std::string& path) {
  for (std::size_t i = 0; i < spec.events.size(); ++i) {
    const auto& e = spec.events[i];
    const std::string p = path + ".events[" + std::to_string(i) + "]";
    if (e.at_s < 0.0) bad(p + ".at_s", "must be >= 0");
    if (e.device < -1) bad(p, "device index must be >= 0 (or -1 to pick "
                               "at fire time)");
    if (e.count < 1) bad(p + ".count", "must be >= 1");
    if (e.down_s < 0.0) bad(p + ".down_s", "must be >= 0");
    if (e.kind == FaultEvent::Kind::kRecover) {
      if (e.device < 0) {
        bad(p + ".recover", "a recover event must name its device");
      }
      if (e.down_s != 0.0) bad(p + ".down_s", "only applies to crashes");
    }
  }

  const auto& pr = spec.process;
  const std::string pp = path + ".process";
  if (pr.mtbf_s < 0.0) bad(pp + ".mtbf_s", "must be >= 0");
  if (pr.mttr_s < 0.0) bad(pp + ".mttr_s", "must be >= 0");
  if (pr.mtbf_s == 0.0 && pr.mttr_s > 0.0) {
    bad(pp + ".mttr_s", "needs a mtbf_s to repair from");
  }
  if (pr.from_s < 0.0 || pr.until_s < 0.0) bad(pp, "times must be >= 0");
  if (pr.until_s > 0.0 && pr.until_s < pr.from_s) {
    bad(pp + ".until_s", "must be >= from_s");
  }

  const auto& f = spec.failover;
  const std::string fp = path + ".failover";
  if (f.max_attempts < 1) bad(fp + ".max_attempts", "must be >= 1");
  if (f.backoff_ms < 0.0) bad(fp + ".backoff_ms", "must be >= 0");
  if (f.backoff_mult < 1.0) bad(fp + ".backoff_mult", "must be >= 1");
  if (f.jitter_ms < 0.0) bad(fp + ".jitter_ms", "must be >= 0");

  if (spec.min_active_devices < 0) {
    bad(path + ".min_active_devices", "must be >= 0");
  }
  if (spec.degraded_queue_limit < 1) {
    bad(path + ".degraded_queue_limit", "must be >= 1");
  }
}

}  // namespace sgprs::fleet
