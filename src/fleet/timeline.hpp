// Declarative churn timeline: the open-world half of a scenario spec.
//
// A timeline describes how inference streams come and go *during* a run —
// the conf_date_BabaeiC24 question the closed-world path cannot ask. It has
// three parts:
//   * stream templates — named (network, rate, stages, ...) combinations a
//     churn event instantiates; each admission clones a pre-profiled
//     prototype, so no WCET profiling happens on the hot path;
//   * scripted events — "at t, admit k streams of template X" / "at t,
//     retire k streams matching X", plus an `every_s` repetition form for
//     ramps and waves;
//   * stochastic arrival processes — seeded Poisson arrivals with bounded
//     uniform lifetimes, for tenant-churn style workloads.
//
// Determinism: all randomness (arrival gaps, lifetimes) is drawn from one
// seeded rng in simulation-event order, and per-stream arrival jitter rngs
// are keyed on (jitter_seed, task id) — so a replay, or the same scenario
// inside a parallel experiment fan-out, is byte-identical.
//
// docs/online-fleet.md is the schema reference; parsing follows the same
// rules as the rest of the spec surface (unknown keys are errors, messages
// carry field paths).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "rt/task.hpp"

namespace sgprs::trace {
struct Trace;
}  // namespace sgprs::trace

namespace sgprs::fleet {

/// A named stream shape churn events instantiate. Times are milliseconds,
/// matching the task-entry schema.
struct StreamTemplate {
  std::string name;
  std::string network = "resnet18";
  double fps = 30.0;
  int num_stages = 6;
  /// Relative deadline; 0 = implicit (deadline = period).
  double deadline_ms = 0.0;
  /// First-release offset after admission (>= 0; streams are admitted at a
  /// simulation instant, so there is no "random phase" — the admission
  /// time itself is the phase).
  double phase_ms = 0.0;
  rt::PriorityPolicy priority_policy = rt::PriorityPolicy::kLastStageHigh;
  rt::ArrivalModel arrival = rt::ArrivalModel::kPeriodic;
  /// Sporadic only; 0 = derive min from fps and max as 1.5 * min.
  double min_separation_ms = 0.0;
  double max_separation_ms = 0.0;
  /// Overload shed tier: 0 = protected (never shed under priority-aware
  /// shedding), higher tiers shed first. Initial "tasks" entries default
  /// to tier 0, templates to tier 1.
  int tier = 1;
  /// Placement footprint overrides, mirroring the task-entry schema:
  /// < 0 (default) derives from the network's profile, >= 0 pins memory
  /// (MiB) / time-averaged resident warps explicitly.
  double mem_mb = -1.0;
  long long warps = -1;
};

/// One scripted churn event. `every_s == 0` fires once at `at_s`;
/// `every_s > 0` repeats from `from_s` (inclusive) every `every_s` seconds
/// until `until_s` (0 = the run horizon).
struct TimelineEvent {
  enum class Kind { kAdmit, kRetire };
  Kind kind = Kind::kAdmit;
  /// Template to admit, or the template/stream-name prefix to retire
  /// (retire picks the oldest matching live streams, FIFO).
  std::string target;
  int count = 1;
  double at_s = 0.0;
  double every_s = 0.0;
  double from_s = 0.0;
  double until_s = 0.0;
};

/// Seeded Poisson arrival process: streams of `tmpl` arrive at `rate_per_s`
/// in [from_s, until_s] and each departs after a uniform lifetime in
/// [lifetime_min_s, lifetime_max_s] (0/0 = streams stay until the horizon).
struct ArrivalProcess {
  std::string tmpl;
  double rate_per_s = 1.0;
  double lifetime_min_s = 0.0;
  double lifetime_max_s = 0.0;
  double from_s = 0.0;
  double until_s = 0.0;  // 0 = run horizon
};

struct TimelineSpec {
  std::vector<StreamTemplate> templates;
  std::vector<TimelineEvent> events;
  std::vector<ArrivalProcess> arrivals;
  /// Churn rng seed; the effective stream is mixed with the scenario sim
  /// seed so experiment replications decorrelate without spec edits.
  std::uint64_t seed = 1;
  /// Trace-driven timeline: `"trace": "<file>"` replaces templates, events
  /// and arrivals with the recorded admit/retire stream of a prior run.
  /// `trace_path` is the spec-relative path as written; the loader resolves
  /// it and attaches the parsed trace (see workload::resolve_spec_trace).
  std::string trace_path;
  std::shared_ptr<const trace::Trace> trace;
};

/// Parses a "timeline" section. Throws workload::SpecError with field paths.
TimelineSpec parse_timeline(const common::JsonValue& v,
                            const std::string& path);

/// Semantic validation: unique template names, known event targets, rate
/// and lifetime ranges. Network-name existence is checked here too.
void validate_timeline(const TimelineSpec& spec, const std::string& path);

/// One-template parse/validate, shared with the trace reader (a trace file
/// carries the same template schema as a timeline).
StreamTemplate parse_stream_template(const common::JsonValue& v,
                                     const std::string& path);
void validate_stream_template(const StreamTemplate& t,
                              const std::string& path);

const StreamTemplate* find_template(const TimelineSpec& spec,
                                    const std::string& name);

}  // namespace sgprs::fleet
