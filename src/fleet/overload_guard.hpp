// OverloadGuard: a per-device scheduler decorator that sheds releases at
// the door when the device is over its in-flight ceiling.
//
// Shedding happens *before* the wrapped scheduler sees the release, so a
// shed job costs nothing downstream — no queue entry, no context choice,
// no job allocation. Priority-aware mode consults the stream's tier
// (tier 0 = protected); indiscriminate mode sheds anything. Every shed is
// counted against the stream in its device's Collector (release + drop,
// the same accounting a scheduler-level drop gets) and leaves an audit
// record.
//
// Shed state is per device (DeviceOverload): the counter, the collector
// the guard writes, and a staging buffer for audit records. Staging is the
// shard-count-invariance fix: sheds on different devices at the same
// instant used to enter the audit trail in event-execution order, which a
// sharded run cannot reproduce. Instead every shed is staged on its device
// and flushed into the trail in canonical (time, device index) order —
// i.e. (epoch, source shard, per-shard sequence) — before any later
// control-plane decision is appended. The flush points (record() of a
// control decision, flush_all() at the end of the run) land at epoch
// barriers in sharded runs, so staging is also what keeps the parallel
// shard phase free of writes to shared audit state.
#pragma once

#include <algorithm>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "fleet/policy.hpp"
#include "fleet/report.hpp"
#include "metrics/collector.hpp"
#include "obs/span.hpp"
#include "rt/scheduler.hpp"

namespace sgprs::fleet {

/// Per-device shed state. Written only by that device's guard (single
/// shard) during the parallel phase; read and drained by the control plane
/// at barriers.
struct DeviceOverload {
  /// Collector this device's scheduler stack reports into: the shared
  /// fleet collector on the classic path, the device's own on the sharded
  /// path.
  metrics::Collector* collector = nullptr;
  std::int64_t jobs_shed = 0;
  /// Shed audit records awaiting canonical flush, in this device's event
  /// order (time-sorted by construction).
  std::vector<FleetDecision> staged;
};

/// State shared by every device's guard (one fleet run = one instance).
struct OverloadState {
  OverloadConfig cfg;
  /// task id -> shed tier (0 = never shed under kPriority). Written by the
  /// control plane at barriers, read by guards during the parallel phase.
  std::vector<int> tier_by_task;
  std::deque<DeviceOverload> devices;  // index = device index; stable addrs
  std::vector<FleetDecision>* audit = nullptr;
  std::int64_t* audit_truncated = nullptr;

  int tier(int task_id) const {
    return task_id < static_cast<int>(tier_by_task.size())
               ? tier_by_task[task_id]
               : 0;
  }
  void set_tier(int task_id, int tier) {
    if (task_id >= static_cast<int>(tier_by_task.size())) {
      tier_by_task.resize(task_id + 1, 0);
    }
    tier_by_task[task_id] = tier;
  }

  DeviceOverload& device(int index) {
    while (static_cast<int>(devices.size()) <= index) {
      devices.emplace_back();
    }
    return devices[index];
  }

  std::int64_t total_jobs_shed() const {
    std::int64_t total = 0;
    for (const auto& d : devices) total += d.jobs_shed;
    return total;
  }

  /// Appends a control-plane decision, first flushing every staged shed
  /// from *strictly earlier* instants so the trail stays time-sorted with
  /// sheds in canonical cross-device order. Strictly earlier, not <=: a
  /// shed sharing the decision's instant has no canonical side in the
  /// classic interleaving (the device event can carry a sequence number on
  /// either side of the control event), so equal-instant sheds always wait
  /// for the first strictly later flush point — after the instant's
  /// control decisions at every shard count.
  void record(FleetDecision d) {
    flush_staged(d.at);
    append(std::move(d));
  }

  /// Drains staged sheds with time < `upto` into the audit trail, sorted
  /// by (time, device index). Gathering walks devices in index order and
  /// the sort is stable, so equal-time sheds land in device order — the
  /// same order at every shard count.
  void flush_staged(common::SimTime upto) {
    std::vector<FleetDecision> batch;
    for (auto& dev : devices) {
      auto split = dev.staged.begin();
      while (split != dev.staged.end() && split->at < upto) ++split;
      if (split == dev.staged.begin()) continue;
      std::move(dev.staged.begin(), split, std::back_inserter(batch));
      dev.staged.erase(dev.staged.begin(), split);
    }
    if (batch.empty()) return;
    std::stable_sort(batch.begin(), batch.end(),
                     [](const FleetDecision& a, const FleetDecision& b) {
                       return a.at < b.at;
                     });
    for (auto& d : batch) append(std::move(d));
  }

  void flush_all() { flush_staged(common::SimTime::max()); }

 private:
  void append(FleetDecision d) {
    if (!audit) return;
    if (audit->size() >= FleetRunResult::kMaxDecisions) {
      if (audit_truncated) ++*audit_truncated;
      return;
    }
    audit->push_back(std::move(d));
  }
};

class OverloadGuard final : public rt::Scheduler {
 public:
  OverloadGuard(std::unique_ptr<rt::Scheduler> inner, int device_index,
                OverloadState* state, DeviceOverload* dev)
      : inner_(std::move(inner)),
        device_(device_index),
        state_(state),
        dev_(dev) {}

  void admit(const rt::Task& task) override { inner_->admit(task); }

  void release_job(const rt::Task& task, common::SimTime now) override {
    const OverloadConfig& cfg = state_->cfg;
    const bool sheddable =
        cfg.shed == ShedMode::kAll ||
        (cfg.shed == ShedMode::kPriority && state_->tier(task.id) > 0);
    if (cfg.queue_limit > 0 && sheddable &&
        inner_->jobs_in_flight() >= cfg.queue_limit) {
      dev_->collector->on_release(task.id, now);
      dev_->collector->on_drop(task.id, now);
      if (tracer_) tracer_->shed(task.id, now);
      ++dev_->jobs_shed;
      dev_->staged.push_back({now, DecisionKind::kJobShed, task.id, device_,
                              "in-flight at limit " +
                                  std::to_string(cfg.queue_limit)});
      return;
    }
    inner_->release_job(task, now);
  }

  int jobs_in_flight() const override { return inner_->jobs_in_flight(); }
  int abort_in_flight() override { return inner_->abort_in_flight(); }
  std::string name() const override { return inner_->name(); }
  const rt::Scheduler* unwrap() const override { return inner_->unwrap(); }

  /// Forward so the wrapped scheduler records release/dispatch/complete
  /// while the guard records its own sheds on the same device track.
  void set_tracer(obs::JobTracer* tracer) override {
    tracer_ = tracer;
    inner_->set_tracer(tracer);
  }

 private:
  std::unique_ptr<rt::Scheduler> inner_;
  int device_;
  OverloadState* state_;
  DeviceOverload* dev_;
};

}  // namespace sgprs::fleet
