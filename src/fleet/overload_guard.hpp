// OverloadGuard: a per-device scheduler decorator that sheds releases at
// the door when the device is over its in-flight ceiling.
//
// Shedding happens *before* the wrapped scheduler sees the release, so a
// shed job costs nothing downstream — no queue entry, no context choice,
// no job allocation. Priority-aware mode consults the stream's tier
// (tier 0 = protected); indiscriminate mode sheds anything. Every shed is
// counted against the stream in the shared Collector (release + drop, the
// same accounting a scheduler-level drop gets) and leaves an audit record.
#pragma once

#include <memory>
#include <string>

#include "fleet/policy.hpp"
#include "fleet/report.hpp"
#include "metrics/collector.hpp"
#include "rt/scheduler.hpp"

namespace sgprs::fleet {

/// State shared by every device's guard (one fleet run = one instance).
struct OverloadState {
  OverloadConfig cfg;
  metrics::Collector* collector = nullptr;
  /// task id -> shed tier (0 = never shed under kPriority).
  std::vector<int> tier_by_task;
  std::int64_t jobs_shed = 0;
  std::vector<FleetDecision>* audit = nullptr;
  std::int64_t* audit_truncated = nullptr;

  int tier(int task_id) const {
    return task_id < static_cast<int>(tier_by_task.size())
               ? tier_by_task[task_id]
               : 0;
  }
  void set_tier(int task_id, int tier) {
    if (task_id >= static_cast<int>(tier_by_task.size())) {
      tier_by_task.resize(task_id + 1, 0);
    }
    tier_by_task[task_id] = tier;
  }
  void record(FleetDecision d) {
    if (!audit) return;
    if (audit->size() >= FleetRunResult::kMaxDecisions) {
      if (audit_truncated) ++*audit_truncated;
      return;
    }
    audit->push_back(std::move(d));
  }
};

class OverloadGuard final : public rt::Scheduler {
 public:
  OverloadGuard(std::unique_ptr<rt::Scheduler> inner, int device_index,
                OverloadState* state)
      : inner_(std::move(inner)), device_(device_index), state_(state) {}

  void admit(const rt::Task& task) override { inner_->admit(task); }

  void release_job(const rt::Task& task, common::SimTime now) override {
    const OverloadConfig& cfg = state_->cfg;
    const bool sheddable =
        cfg.shed == ShedMode::kAll ||
        (cfg.shed == ShedMode::kPriority && state_->tier(task.id) > 0);
    if (cfg.queue_limit > 0 && sheddable &&
        inner_->jobs_in_flight() >= cfg.queue_limit) {
      state_->collector->on_release(task.id, now);
      state_->collector->on_drop(task.id, now);
      ++state_->jobs_shed;
      state_->record({now, DecisionKind::kJobShed, task.id, device_,
                      "in-flight at limit " +
                          std::to_string(cfg.queue_limit)});
      return;
    }
    inner_->release_job(task, now);
  }

  int jobs_in_flight() const override { return inner_->jobs_in_flight(); }
  std::string name() const override { return inner_->name(); }
  const rt::Scheduler* unwrap() const override { return inner_->unwrap(); }

 private:
  std::unique_ptr<rt::Scheduler> inner_;
  int device_;
  OverloadState* state_;
};

}  // namespace sgprs::fleet
