// Deterministic fleet sharding: the partition function and seed-derivation
// discipline behind the sharded parallel runtime (docs/sharding.md).
//
// The contract that makes `--shards N` byte-invariant is split across three
// small rules, all centralized here so tests can pin them directly:
//
//  1. Partition: a device belongs to shard `device_index % num_shards`.
//     The mapping is a pure function of (device index, shard count) — never
//     of admission order, placement outcomes or thread scheduling — so the
//     same spec shards identically on every run and every machine.
//  2. Seeding: per-stream randomness stays *shard-blind*. Stream arrival
//     rngs are keyed on (jitter seed, task id) via stream_seed() — the same
//     derivation the Runner has always used — so moving a device to a
//     different shard (by changing the shard count) cannot change a single
//     draw. Shard-local seeds, when a future subsystem needs them, must go
//     through shard_stream_seed(), whose splitmix64 finalization keeps the
//     (shard, stream) seed space collision-free (pinned by the partition
//     property test).
//  3. Merge order: anything crossing shards (staged shed decisions, the
//     collector reduction) is merged in canonical (epoch, source shard,
//     per-shard sequence) order, never in thread completion order.
#pragma once

#include <cstdint>

#include "common/check.hpp"
#include "common/rng.hpp"

namespace sgprs::fleet {

/// Shard owning device `device_index` in an `num_shards`-way partition.
/// Round-robin by construction index: devices added by the autoscaler land
/// on rotating shards, keeping the partition balanced under growth without
/// ever re-homing an existing device.
inline int shard_of(int device_index, int num_shards) {
  SGPRS_CHECK(device_index >= 0);
  SGPRS_CHECK(num_shards >= 1);
  return device_index % num_shards;
}

/// Per-stream seed: common::stream_seed — the affine golden-ratio mix the
/// Runner feeds to Rng::reseed (which splitmix64-finalizes it). Keyed on
/// (base seed, task id) only — deliberately shard-blind, see rule 2 above.
using common::stream_seed;

/// Shard-local stream seed for subsystems that *want* decorrelation across
/// shards (none of the deterministic runtime does — it would break shard-
/// count invariance). Two splitmix64 steps over (base, shard, stream) give
/// full-avalanche separation; the property suite pins that the outputs
/// never collide across the (shard, stream) grid.
inline std::uint64_t shard_stream_seed(std::uint64_t base, int shard,
                                       int stream) {
  // The 3-arg stream_seed keyed (base, stream, shard) — one formula for
  // every two-key derivation (the fault process reuses it shard-blind as
  // (base, device, incident)).
  return common::stream_seed(base, stream, shard);
}

}  // namespace sgprs::fleet
