#include "fleet/policy.hpp"

#include "gpu/device.hpp"
#include "workload/spec_util.hpp"

namespace sgprs::fleet {

namespace {

using common::JsonValue;
using namespace workload::specdet;

/// Scale on mean utilization crossing fixed thresholds. One device per
/// tick in either direction keeps the loop stable under churn spikes.
class UtilizationPolicy final : public AutoscalerPolicy {
 public:
  int desired_devices(const FleetLoad& load,
                      const AutoscalerConfig& cfg) const override {
    const int provisioned = load.active_devices + load.warming_devices;
    // Warming capacity is on the way; do not double-provision for the
    // same overload signal.
    if (load.mean_utilization > cfg.scale_up_threshold &&
        load.warming_devices == 0) {
      return provisioned + 1;
    }
    if (load.mean_utilization < cfg.scale_down_threshold &&
        load.active_devices > 1) {
      return provisioned - 1;
    }
    return provisioned;
  }
  std::string name() const override { return "utilization"; }
};

/// Keep a target fraction of fleet capacity spare. Symmetric: grow when
/// spare < headroom, shrink only when the *post-shrink* fleet would still
/// keep the headroom (no flapping at the boundary).
class HeadroomPolicy final : public AutoscalerPolicy {
 public:
  int desired_devices(const FleetLoad& load,
                      const AutoscalerConfig& cfg) const override {
    const int provisioned = load.active_devices + load.warming_devices;
    const double spare = 1.0 - load.mean_utilization;
    if (spare < cfg.headroom && load.warming_devices == 0) {
      return provisioned + 1;
    }
    if (load.active_devices > 1) {
      const int n = load.active_devices;
      const double util_after =
          load.mean_utilization * static_cast<double>(n) /
          static_cast<double>(n - 1);
      if (1.0 - util_after >= cfg.headroom) return provisioned - 1;
    }
    return provisioned;
  }
  std::string name() const override { return "headroom"; }
};

}  // namespace

const char* to_string(AutoscalePolicyKind k) {
  switch (k) {
    case AutoscalePolicyKind::kNone: return "none";
    case AutoscalePolicyKind::kUtilization: return "utilization";
    case AutoscalePolicyKind::kHeadroom: return "headroom";
  }
  return "?";
}

const char* to_string(ShedMode m) {
  switch (m) {
    case ShedMode::kNone: return "none";
    case ShedMode::kPriority: return "priority";
    case ShedMode::kAll: return "all";
  }
  return "?";
}

std::unique_ptr<AutoscalerPolicy> make_autoscaler(AutoscalePolicyKind kind) {
  switch (kind) {
    case AutoscalePolicyKind::kNone: return nullptr;
    case AutoscalePolicyKind::kUtilization:
      return std::make_unique<UtilizationPolicy>();
    case AutoscalePolicyKind::kHeadroom:
      return std::make_unique<HeadroomPolicy>();
  }
  return nullptr;
}

FleetPolicySpec parse_fleet_policy(const common::JsonValue& v,
                                   const std::string& path) {
  require_object(v, path);
  check_keys(v, {"autoscaler", "overload", "series_window_ms"}, path);
  FleetPolicySpec spec;
  spec.series_window_ms =
      num_or(v, "series_window_ms", spec.series_window_ms, path);

  if (const JsonValue* as = v.find("autoscaler")) {
    const std::string p = path + ".autoscaler";
    require_object(*as, p);
    check_keys(*as,
               {"policy", "min_devices", "max_devices", "scale_up_threshold",
                "scale_down_threshold", "headroom", "tick_ms", "warmup_ms",
                "cooldown_ms", "device"},
               p);
    auto& a = spec.autoscaler;
    const std::string policy = str_or(*as, "policy", "none", p);
    if (policy == "none") {
      a.kind = AutoscalePolicyKind::kNone;
    } else if (policy == "utilization") {
      a.kind = AutoscalePolicyKind::kUtilization;
    } else if (policy == "headroom") {
      a.kind = AutoscalePolicyKind::kHeadroom;
    } else {
      bad(p + ".policy", "unknown policy \"" + policy +
                             "\" (want none|utilization|headroom)");
    }
    a.min_devices = int_or(*as, "min_devices", a.min_devices, p);
    a.max_devices = int_or(*as, "max_devices", a.max_devices, p);
    a.scale_up_threshold =
        num_or(*as, "scale_up_threshold", a.scale_up_threshold, p);
    a.scale_down_threshold =
        num_or(*as, "scale_down_threshold", a.scale_down_threshold, p);
    a.headroom = num_or(*as, "headroom", a.headroom, p);
    a.tick_ms = num_or(*as, "tick_ms", a.tick_ms, p);
    a.warmup_ms = num_or(*as, "warmup_ms", a.warmup_ms, p);
    a.cooldown_ms = num_or(*as, "cooldown_ms", a.cooldown_ms, p);
    a.device = str_or(*as, "device", a.device, p);
  }

  if (const JsonValue* ov = v.find("overload")) {
    const std::string p = path + ".overload";
    require_object(*ov, p);
    check_keys(*ov, {"admission_test", "shed", "queue_limit", "fps_scale"},
               p);
    auto& o = spec.overload;
    o.admission_test = bool_or(*ov, "admission_test", o.admission_test, p);
    const std::string shed = str_or(*ov, "shed", "none", p);
    if (shed == "none") {
      o.shed = ShedMode::kNone;
    } else if (shed == "priority") {
      o.shed = ShedMode::kPriority;
    } else if (shed == "all") {
      o.shed = ShedMode::kAll;
    } else {
      bad(p + ".shed",
          "unknown shed mode \"" + shed + "\" (want none|priority|all)");
    }
    o.queue_limit = int_or(*ov, "queue_limit", o.queue_limit, p);
    o.fps_scale = num_or(*ov, "fps_scale", o.fps_scale, p);
  }
  return spec;
}

void validate_fleet_policy(const FleetPolicySpec& spec,
                           const std::string& path) {
  const auto& a = spec.autoscaler;
  const std::string ap = path + ".autoscaler";
  if (a.min_devices < 1) bad(ap + ".min_devices", "must be >= 1");
  if (a.max_devices < a.min_devices) {
    bad(ap + ".max_devices", "must be >= min_devices");
  }
  if (a.scale_up_threshold <= 0.0 || a.scale_up_threshold > 2.0) {
    bad(ap + ".scale_up_threshold", "must be in (0, 2]");
  }
  if (a.scale_down_threshold < 0.0 ||
      a.scale_down_threshold >= a.scale_up_threshold) {
    bad(ap + ".scale_down_threshold",
        "must be in [0, scale_up_threshold)");
  }
  if (a.headroom <= 0.0 || a.headroom >= 1.0) {
    bad(ap + ".headroom", "must be in (0, 1)");
  }
  if (a.tick_ms <= 0.0) bad(ap + ".tick_ms", "must be > 0");
  if (a.warmup_ms < 0.0) bad(ap + ".warmup_ms", "must be >= 0");
  if (a.cooldown_ms < 0.0) bad(ap + ".cooldown_ms", "must be >= 0");
  if (!a.device.empty() && !gpu::device_by_name(a.device)) {
    bad(ap + ".device", "unknown device \"" + a.device + "\" (want " +
                            gpu::device_names() + ")");
  }

  const auto& o = spec.overload;
  const std::string op = path + ".overload";
  if (o.queue_limit < 0) bad(op + ".queue_limit", "must be >= 0");
  if (o.fps_scale <= 0.0 || o.fps_scale > 1.0) {
    bad(op + ".fps_scale", "must be in (0, 1]");
  }
  if (spec.series_window_ms <= 0.0) {
    bad(path + ".series_window_ms", "must be > 0");
  }
}

}  // namespace sgprs::fleet
