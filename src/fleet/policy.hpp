// Fleet control policies: elastic autoscaling and overload control.
//
// The autoscaler is a periodic control loop over the placer's analytic
// load model (offered work rate / saturated capacity — deterministic and
// O(tasks), no sampling noise). A policy maps the observed fleet load to a
// desired provisioned-device count; the runtime applies it under min/max
// bounds, a cooldown between actions, and a warm-up latency before a new
// device takes placements (spinning up an MPS daemon + context pool is not
// free in the real world, so it is not free here).
//
// The overload controller has three escalating answers to demand the fleet
// cannot bound:
//   1. admission-test rejection — a new stream no device passes for is
//      turned away at the door (unless admission_test is off, in which
//      case it is force-placed on the emptiest device);
//   2. QoS downgrade — before rejecting, retry admission at fps_scale × the
//      requested rate (a degraded stream beats a rejected one);
//   3. load shedding — releases arriving at a device whose in-flight count
//      is at queue_limit are dropped at the door, priority-aware (tier 0
//      streams are never shed) or indiscriminate.
// Every decision leaves an audit record in the run result.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/json.hpp"

namespace sgprs::fleet {

enum class AutoscalePolicyKind { kNone, kUtilization, kHeadroom };
const char* to_string(AutoscalePolicyKind k);

struct AutoscalerConfig {
  AutoscalePolicyKind kind = AutoscalePolicyKind::kNone;
  int min_devices = 1;
  int max_devices = 4;
  /// kUtilization: scale up above, down below (mean analytic utilization
  /// of active devices, 0..1 of the admission budget's basis).
  double scale_up_threshold = 0.85;
  double scale_down_threshold = 0.40;
  /// kHeadroom: keep at least this fraction of fleet capacity spare; scale
  /// down only when the post-shrink fleet would still keep it.
  double headroom = 0.25;
  /// Control-loop period.
  double tick_ms = 100.0;
  /// A scaled-up device takes placements only after this long.
  double warmup_ms = 200.0;
  /// Minimum gap between two scale actions.
  double cooldown_ms = 400.0;
  /// Device spec to add on scale-up ("2080ti"/"3090"); empty = the
  /// scenario's base device.
  std::string device;
};

enum class ShedMode { kNone, kPriority, kAll };
const char* to_string(ShedMode m);

struct OverloadConfig {
  /// Reject streams no device admits. Off = force-place on the device
  /// with the most spare capacity (load ordering still applies).
  bool admission_test = true;
  ShedMode shed = ShedMode::kNone;
  /// Per-device in-flight ceiling for shedding; 0 disables shedding even
  /// when a shed mode is set.
  int queue_limit = 0;
  /// QoS downgrade factor in (0, 1]: a rejected stream is retried at
  /// fps * fps_scale before being turned away. 1 disables.
  double fps_scale = 1.0;
};

struct FleetPolicySpec {
  AutoscalerConfig autoscaler;
  OverloadConfig overload;
  /// Time-series sampling window.
  double series_window_ms = 100.0;
};

/// What a policy sees each tick. Utilizations are the placer's analytic
/// offered/capacity fractions over *active* devices.
struct FleetLoad {
  double mean_utilization = 0.0;
  double max_utilization = 0.0;
  /// Devices taking placements now.
  int active_devices = 0;
  /// Scaled-up devices still inside their warm-up window.
  int warming_devices = 0;
  /// Deactivated devices still draining in-flight work.
  int draining_devices = 0;
  /// Crashed devices not yet recovered. Excluded from active_devices, so
  /// a utilization policy naturally provisions replacements — the signal
  /// is here for policies that want to react to faults directly.
  int failed_devices = 0;
};

/// Maps observed load to a desired provisioned count (active + warming).
/// The runtime clamps to [min_devices, max_devices] and rate-limits.
class AutoscalerPolicy {
 public:
  virtual ~AutoscalerPolicy() = default;
  virtual int desired_devices(const FleetLoad& load,
                              const AutoscalerConfig& cfg) const = 0;
  virtual std::string name() const = 0;
};

/// Factory for the built-in policies; kNone returns nullptr.
std::unique_ptr<AutoscalerPolicy> make_autoscaler(AutoscalePolicyKind kind);

/// Parses a "fleet_policy" section. Throws workload::SpecError.
FleetPolicySpec parse_fleet_policy(const common::JsonValue& v,
                                   const std::string& path);

/// Semantic validation (bounds, thresholds, known device names).
void validate_fleet_policy(const FleetPolicySpec& spec,
                           const std::string& path);

}  // namespace sgprs::fleet
