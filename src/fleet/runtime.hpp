// Online fleet runtime: the sim-time control plane for open-world runs.
//
// Layered on the existing engine — cluster of per-device schedulers, the
// placer's analytic admission model, the shared collector — it adds the
// three control loops a live serving fleet needs:
//   * a churn driver executing the scenario's timeline (scripted admits /
//     retires plus seeded Poisson arrival processes) through the dynamic
//     Runner surface (add_task / generation-tagged retire);
//   * an elastic autoscaler growing and shrinking the device fleet under a
//     policy (utilization thresholds or capacity headroom), with warm-up
//     latency on the way up and drain + stream re-placement on the way
//     down;
//   * an overload controller: admission-test rejection at the door, an
//     optional QoS downgrade retry (fps_scale), and per-device load
//     shedding behind the OverloadGuard.
// A "faults" spec section (fleet/faults.hpp, docs/faults.md) adds a
// fourth, impolite loop: scripted and seeded-stochastic device crashes
// that abort in-flight jobs and orphan live streams, a failover engine
// re-placing them with retry-with-backoff, and availability accounting
// (recovery percentiles, unavailability stream-seconds).
// Every run produces windowed time-series samples and an audit trail of
// control decisions (fleet/report.hpp).
//
// Determinism: one control-plane engine, one churn rng consumed in event
// order, stream rng seeds keyed on (seed, task id) — replays and parallel
// experiment fan-outs of the same spec are byte-identical (pinned by
// tests/fleet/fleet_determinism_test.cpp).
//
// Sharding (sim.shards > 1, docs/sharding.md): devices are partitioned
// onto per-shard engines (device_index % shards) that execute in parallel
// between epoch barriers at control-plane instants; per-device collectors
// are reduced canonically at the end of the run. Any shard count produces
// byte-identical reports, series and traces (pinned by
// tests/sim/shard_determinism_test.cpp).
#pragma once

#include "fleet/report.hpp"
#include "workload/spec.hpp"

namespace sgprs::trace {
class TraceRecorder;
}  // namespace sgprs::trace

namespace sgprs::obs {
struct Instruments;
}  // namespace sgprs::obs

namespace sgprs::fleet {

/// Runs one open-world spec (validated by the caller; run_spec and the
/// suite runner route here when spec.dynamic()).
FleetRunResult run_fleet_scenario(const workload::ScenarioSpec& spec);

/// Seed-overriding variant for experiment replications: seeds.sim replaces
/// the sim seed (phases, arrival jitter, churn mixing), seeds.generator
/// the task-generator seed.
FleetRunResult run_fleet_scenario(const workload::ScenarioSpec& spec,
                                  const workload::RunSeeds& seeds);

/// Capture variant: when `capture` is non-null the runtime feeds it the
/// run's admit/retire stream (trace::TraceRecorder, --record-trace).
/// Recording never perturbs the run; replaying the captured trace against
/// the same base spec reproduces the report byte for byte.
FleetRunResult run_fleet_scenario(const workload::ScenarioSpec& spec,
                                  const workload::RunSeeds& seeds,
                                  trace::TraceRecorder* capture);

/// Instrumented variant (docs/observability.md): `instruments.spans`
/// collects execution spans for --trace-spans, `instruments.profiler`
/// times the runtime's coarse phases for --profile. Both are optional and
/// neither perturbs the run — the report is byte-identical with and
/// without instruments attached.
FleetRunResult run_fleet_scenario(const workload::ScenarioSpec& spec,
                                  const workload::RunSeeds& seeds,
                                  trace::TraceRecorder* capture,
                                  const obs::Instruments& instruments);

}  // namespace sgprs::fleet
