#include "fleet/report.hpp"

#include "common/json_writer.hpp"
#include "metrics/report.hpp"

namespace sgprs::fleet {

const char* to_string(DecisionKind k) {
  switch (k) {
    case DecisionKind::kStreamAdmitted: return "stream_admitted";
    case DecisionKind::kStreamDowngraded: return "stream_downgraded";
    case DecisionKind::kStreamRejected: return "stream_rejected";
    case DecisionKind::kStreamOomRejected: return "stream_oom_rejected";
    case DecisionKind::kStreamRetired: return "stream_retired";
    case DecisionKind::kStreamReplaced: return "stream_replaced";
    case DecisionKind::kStreamDropped: return "stream_dropped";
    case DecisionKind::kJobShed: return "job_shed";
    case DecisionKind::kScaleUp: return "scale_up";
    case DecisionKind::kDeviceActive: return "device_active";
    case DecisionKind::kScaleDown: return "scale_down";
    case DecisionKind::kDeviceRetired: return "device_retired";
    case DecisionKind::kDeviceFailed: return "device_failed";
    case DecisionKind::kDeviceRecovered: return "device_recovered";
    case DecisionKind::kStreamFailedOver: return "stream_failed_over";
    case DecisionKind::kStreamOrphaned: return "stream_orphaned";
    case DecisionKind::kFailoverRetry: return "failover_retry";
    case DecisionKind::kDegradedEnter: return "degraded_enter";
    case DecisionKind::kDegradedExit: return "degraded_exit";
  }
  return "?";
}

void print_fleet_run(const FleetRunResult& r, std::ostream& out) {
  const auto& f = r.fleet.fleet;
  metrics::Table summary({"fleet metric", "value"});
  summary.add_row({"total FPS", metrics::Table::fmt(f.fps, 1)});
  summary.add_row({"on-time FPS", metrics::Table::fmt(f.fps_on_time, 1)});
  summary.add_row({"DMR", metrics::Table::pct(f.dmr)});
  summary.add_row({"p99 latency (ms)",
                   metrics::Table::fmt(f.p99_latency_ms, 2)});
  summary.add_row({"streams admitted", std::to_string(r.streams_admitted)});
  summary.add_row({"streams retired", std::to_string(r.streams_retired)});
  summary.add_row({"streams rejected", std::to_string(r.streams_rejected)});
  summary.add_row(
      {"streams oom-rejected", std::to_string(r.streams_oom_rejected)});
  summary.add_row(
      {"streams downgraded", std::to_string(r.streams_downgraded)});
  summary.add_row({"jobs shed", std::to_string(r.jobs_shed)});
  if (r.devices_failed > 0 || r.streams_lost > 0) {
    summary.add_row({"devices failed / recovered",
                     std::to_string(r.devices_failed) + " / " +
                         std::to_string(r.devices_recovered)});
    summary.add_row({"jobs faulted", std::to_string(r.jobs_faulted)});
    summary.add_row({"failovers (retries)",
                     std::to_string(r.failovers) + " (" +
                         std::to_string(r.failover_retries) + ")"});
    summary.add_row({"streams lost", std::to_string(r.streams_lost)});
    summary.add_row({"unavailability (s)",
                     metrics::Table::fmt(r.unavailability_s, 3)});
    summary.add_row({"time-to-recover p50/p99 (ms)",
                     metrics::Table::fmt(r.recovery_p50_s * 1e3, 2) + " / " +
                         metrics::Table::fmt(r.recovery_p99_s * 1e3, 2)});
  }
  summary.add_row({"peak devices", std::to_string(r.peak_devices)});
  summary.add_row({"final devices", std::to_string(r.final_devices)});
  summary.add_row({"scale ups / downs", std::to_string(r.scale_ups) + " / " +
                                            std::to_string(r.scale_downs)});
  summary.add_row({"migrations", std::to_string(r.stage_migrations)});
  if (r.truncated_decisions > 0) {
    summary.add_row({"audit decisions truncated",
                     std::to_string(r.truncated_decisions) + " (kept " +
                         std::to_string(r.decisions.size()) + ")"});
  }
  summary.print(out);

  out << "\n";
  metrics::Table devices({"device", "spec", "SMs", "streams", "FPS", "DMR",
                          "util"});
  for (const auto& d : r.fleet.devices) {
    devices.add_row({std::to_string(d.device_index), d.device_name,
                     std::to_string(d.total_sms),
                     std::to_string(d.tasks_assigned),
                     metrics::Table::fmt(d.snapshot.fps, 1),
                     metrics::Table::pct(d.snapshot.dmr),
                     metrics::Table::pct(d.utilization)});
  }
  devices.print(out);
}

void write_fleet_run_json(const FleetRunResult& r, std::ostream& out) {
  common::JsonWriter w(out);
  w.begin_object();
  w.field("scenario", r.name);
  const auto& f = r.fleet.fleet;
  w.field("fps", f.fps);
  w.field("fps_on_time", f.fps_on_time);
  w.field("dmr", f.dmr);
  w.field("p50_latency_ms", f.p50_latency_ms);
  w.field("p99_latency_ms", f.p99_latency_ms);
  w.field("releases", r.releases);
  w.field("migrations", r.stage_migrations);
  w.field("streams_admitted", r.streams_admitted);
  w.field("streams_retired", r.streams_retired);
  w.field("streams_rejected", r.streams_rejected);
  w.field("streams_oom_rejected", r.streams_oom_rejected);
  w.field("streams_downgraded", r.streams_downgraded);
  w.field("jobs_shed", r.jobs_shed);
  w.field("jobs_faulted", r.jobs_faulted);
  w.field("devices_failed", r.devices_failed);
  w.field("devices_recovered", r.devices_recovered);
  w.field("failovers", r.failovers);
  w.field("failover_retries", r.failover_retries);
  w.field("streams_lost", r.streams_lost);
  w.field("unavailability_s", r.unavailability_s);
  w.field("recovery_p50_s", r.recovery_p50_s);
  w.field("recovery_p99_s", r.recovery_p99_s);
  w.field("peak_devices", r.peak_devices);
  w.field("final_devices", r.final_devices);
  w.field("scale_ups", r.scale_ups);
  w.field("scale_downs", r.scale_downs);
  w.field("decisions", static_cast<std::int64_t>(r.decisions.size()));
  w.field("truncated_decisions", r.truncated_decisions);

  w.key("devices").begin_array();
  for (const auto& d : r.fleet.devices) {
    w.begin_object();
    w.field("index", d.device_index);
    w.field("name", d.device_name);
    w.field("total_sms", d.total_sms);
    w.field("streams", d.tasks_assigned);
    w.field("fps", d.snapshot.fps);
    w.field("dmr", d.snapshot.dmr);
    w.field("utilization", d.utilization);
    w.end_object();
  }
  w.end_array();

  w.key("series").begin_array();
  for (const auto& s : r.series.samples) {
    w.begin_object();
    w.field("t_s", s.t.to_sec());
    w.field("devices_active", s.devices_active);
    w.field("devices_warming", s.devices_warming);
    w.field("devices_draining", s.devices_draining);
    w.field("streams_live", s.streams_live);
    w.field("releases", s.releases);
    w.field("completions", s.completions);
    w.field("on_time", s.on_time);
    w.field("dropped", s.dropped);
    w.field("window_fps", s.window_fps);
    w.field("window_dmr", s.window_dmr);
    w.field("utilization", s.utilization);
    w.field("streams_rejected_cum", s.streams_rejected_cum);
    w.field("streams_oom_cum", s.streams_oom_cum);
    w.field("jobs_shed_cum", s.jobs_shed_cum);
    w.field("devices_failed", s.devices_failed);
    w.field("orphaned_streams", s.orphaned_streams);
    w.field("availability", s.availability);
    w.end_object();
  }
  w.end_array();

  w.key("audit").begin_array();
  for (const auto& d : r.decisions) {
    w.begin_object();
    w.field("t_s", d.at.to_sec());
    w.field("kind", to_string(d.kind));
    if (d.task_id >= 0) w.field("task_id", d.task_id);
    if (d.device >= 0) w.field("device", d.device);
    if (!d.detail.empty()) w.field("detail", d.detail);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
}

}  // namespace sgprs::fleet
