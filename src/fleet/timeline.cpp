#include "fleet/timeline.hpp"

#include "dnn/builders.hpp"
#include "workload/spec_util.hpp"

namespace sgprs::fleet {

namespace {

using common::JsonValue;
using namespace workload::specdet;

rt::PriorityPolicy parse_priority(const std::string& s,
                                  const std::string& path) {
  if (s == "last_stage_high") return rt::PriorityPolicy::kLastStageHigh;
  if (s == "all_low") return rt::PriorityPolicy::kAllLow;
  if (s == "all_high") return rt::PriorityPolicy::kAllHigh;
  bad(path, "unknown priority policy \"" + s +
                "\" (want last_stage_high|all_low|all_high)");
}

}  // namespace

StreamTemplate parse_stream_template(const common::JsonValue& v,
                                     const std::string& path) {
  require_object(v, path);
  check_keys(v,
             {"name", "network", "fps", "stages", "deadline_ms", "phase_ms",
              "priority", "arrival", "min_separation_ms",
              "max_separation_ms", "tier", "mem_mb", "warps"},
             path);
  StreamTemplate t;
  t.name = str_or(v, "name", "", path);
  if (t.name.empty()) bad(path + ".name", "template needs a non-empty name");
  t.network = str_or(v, "network", t.network, path);
  t.fps = num_or(v, "fps", t.fps, path);
  t.num_stages = int_or(v, "stages", t.num_stages, path);
  t.deadline_ms = num_or(v, "deadline_ms", t.deadline_ms, path);
  t.phase_ms = num_or(v, "phase_ms", t.phase_ms, path);
  t.priority_policy = parse_priority(
      str_or(v, "priority", "last_stage_high", path), path + ".priority");
  const std::string arrival = str_or(v, "arrival", "periodic", path);
  if (arrival == "periodic") {
    t.arrival = rt::ArrivalModel::kPeriodic;
  } else if (arrival == "sporadic") {
    t.arrival = rt::ArrivalModel::kSporadic;
  } else {
    bad(path + ".arrival",
        "unknown arrival model \"" + arrival + "\" (want periodic|sporadic)");
  }
  t.min_separation_ms = num_or(v, "min_separation_ms", 0.0, path);
  t.max_separation_ms = num_or(v, "max_separation_ms", 0.0, path);
  t.tier = int_or(v, "tier", t.tier, path);
  t.mem_mb = num_or(v, "mem_mb", t.mem_mb, path);
  if (const common::JsonValue* w = v.find("warps")) {
    t.warps = get_field("warps", path, [&] { return w->as_int(); });
  }
  return t;
}

void validate_stream_template(const StreamTemplate& t,
                              const std::string& path) {
  if (t.fps <= 0.0) bad(path + ".fps", "must be > 0");
  if (t.num_stages < 1) bad(path + ".stages", "must be >= 1");
  if (t.deadline_ms < 0.0) bad(path + ".deadline_ms", "must be >= 0");
  if (t.phase_ms < 0.0) bad(path + ".phase_ms", "must be >= 0");
  if (t.tier < 0) bad(path + ".tier", "must be >= 0");
  if (t.mem_mb < 0.0 && t.mem_mb != -1.0) {
    bad(path + ".mem_mb", "must be >= 0 (or omitted to derive from the "
                          "network)");
  }
  if (t.warps < -1) {
    bad(path + ".warps", "must be >= 0 (or omitted to derive from the "
                         "network)");
  }
  if (!dnn::network_builder_by_name(t.network)) {
    bad(path + ".network", "unknown network \"" + t.network + "\" (want " +
                               dnn::network_names() + ")");
  }
  if (t.arrival == rt::ArrivalModel::kSporadic) {
    if (t.min_separation_ms < 0.0 || t.max_separation_ms < 0.0) {
      bad(path, "separations must be >= 0");
    }
    const double min_ms =
        t.min_separation_ms > 0.0 ? t.min_separation_ms : 1000.0 / t.fps;
    if (t.max_separation_ms > 0.0 && t.max_separation_ms < min_ms) {
      bad(path + ".max_separation_ms",
          "must be >= the (possibly fps-derived) min separation");
    }
  } else if (t.min_separation_ms != 0.0 || t.max_separation_ms != 0.0) {
    bad(path, "separations only apply to arrival=sporadic");
  }
}

namespace {

TimelineEvent parse_event(const JsonValue& v, const std::string& path) {
  require_object(v, path);
  check_keys(v, {"at_s", "every_s", "from_s", "until_s", "admit", "retire",
                 "count"},
             path);
  TimelineEvent e;
  const JsonValue* admit = v.find("admit");
  const JsonValue* retire = v.find("retire");
  if ((admit != nullptr) == (retire != nullptr)) {
    bad(path, "an event takes exactly one of \"admit\" or \"retire\"");
  }
  e.kind = admit ? TimelineEvent::Kind::kAdmit : TimelineEvent::Kind::kRetire;
  e.target = get_field(admit ? "admit" : "retire", path, [&] {
    return (admit ? admit : retire)->as_string();
  });
  e.count = int_or(v, "count", e.count, path);
  e.at_s = num_or(v, "at_s", 0.0, path);
  e.every_s = num_or(v, "every_s", 0.0, path);
  e.from_s = num_or(v, "from_s", 0.0, path);
  e.until_s = num_or(v, "until_s", 0.0, path);
  if (e.every_s > 0.0 && v.find("at_s")) {
    bad(path, "a repeating event uses from_s/until_s, not at_s");
  }
  return e;
}

ArrivalProcess parse_arrival(const JsonValue& v, const std::string& path) {
  require_object(v, path);
  check_keys(v, {"template", "rate_per_s", "lifetime_s", "from_s", "until_s"},
             path);
  ArrivalProcess a;
  a.tmpl = str_or(v, "template", "", path);
  a.rate_per_s = num_or(v, "rate_per_s", a.rate_per_s, path);
  if (const JsonValue* life = v.find("lifetime_s")) {
    const auto items = get_field("lifetime_s", path,
                                 [&] { return life->items(); });
    if (items.size() != 2) {
      bad(path + ".lifetime_s", "expected [min_s, max_s]");
    }
    a.lifetime_min_s = get_field("lifetime_s", path,
                                 [&] { return items[0].as_number(); });
    a.lifetime_max_s = get_field("lifetime_s", path,
                                 [&] { return items[1].as_number(); });
  }
  a.from_s = num_or(v, "from_s", 0.0, path);
  a.until_s = num_or(v, "until_s", 0.0, path);
  return a;
}

}  // namespace

TimelineSpec parse_timeline(const common::JsonValue& v,
                            const std::string& path) {
  require_object(v, path);
  check_keys(v, {"seed", "templates", "events", "arrivals", "trace"}, path);
  TimelineSpec spec;
  spec.seed = seed_or(v, "seed", spec.seed, path);
  spec.trace_path = str_or(v, "trace", "", path);
  if (v.find("trace") && spec.trace_path.empty()) {
    bad(path + ".trace", "trace path must be non-empty");
  }
  if (const JsonValue* templates = v.find("templates")) {
    const auto& items = get_field("templates", path,
                                  [&] { return templates->items(); });
    for (std::size_t i = 0; i < items.size(); ++i) {
      spec.templates.push_back(parse_stream_template(
          items[i], path + ".templates[" + std::to_string(i) + "]"));
    }
  }
  if (const JsonValue* events = v.find("events")) {
    const auto& items = get_field("events", path,
                                  [&] { return events->items(); });
    for (std::size_t i = 0; i < items.size(); ++i) {
      spec.events.push_back(parse_event(
          items[i], path + ".events[" + std::to_string(i) + "]"));
    }
  }
  if (const JsonValue* arrivals = v.find("arrivals")) {
    const auto& items = get_field("arrivals", path,
                                  [&] { return arrivals->items(); });
    for (std::size_t i = 0; i < items.size(); ++i) {
      spec.arrivals.push_back(parse_arrival(
          items[i], path + ".arrivals[" + std::to_string(i) + "]"));
    }
  }
  return spec;
}

const StreamTemplate* find_template(const TimelineSpec& spec,
                                    const std::string& name) {
  for (const auto& t : spec.templates) {
    if (t.name == name) return &t;
  }
  return nullptr;
}

void validate_timeline(const TimelineSpec& spec, const std::string& path) {
  if ((!spec.trace_path.empty() || spec.trace != nullptr) &&
      (!spec.templates.empty() || !spec.events.empty() ||
       !spec.arrivals.empty())) {
    bad(path + ".trace",
        "a trace-driven timeline replaces templates/events/arrivals; "
        "remove the other sections");
  }
  for (std::size_t i = 0; i < spec.templates.size(); ++i) {
    const auto& t = spec.templates[i];
    const std::string p = path + ".templates[" + std::to_string(i) + "]";
    for (std::size_t j = 0; j < i; ++j) {
      if (spec.templates[j].name == t.name) {
        bad(p + ".name", "duplicate template \"" + t.name + "\"");
      }
    }
    validate_stream_template(t, p);
  }

  for (std::size_t i = 0; i < spec.events.size(); ++i) {
    const auto& e = spec.events[i];
    const std::string p = path + ".events[" + std::to_string(i) + "]";
    if (e.count < 1) bad(p + ".count", "must be >= 1");
    if (e.at_s < 0.0 || e.from_s < 0.0 || e.until_s < 0.0 || e.every_s < 0.0) {
      bad(p, "times must be >= 0");
    }
    if (e.every_s > 0.0 && e.until_s > 0.0 && e.until_s < e.from_s) {
      bad(p + ".until_s", "must be >= from_s");
    }
    // Admissions must name a template; retirements may also name a stream
    // prefix, but an exact template match is checked when one exists.
    if (e.kind == TimelineEvent::Kind::kAdmit &&
        !find_template(spec, e.target)) {
      bad(p + ".admit", "unknown template \"" + e.target + "\"");
    }
  }

  for (std::size_t i = 0; i < spec.arrivals.size(); ++i) {
    const auto& a = spec.arrivals[i];
    const std::string p = path + ".arrivals[" + std::to_string(i) + "]";
    if (!find_template(spec, a.tmpl)) {
      bad(p + ".template", "unknown template \"" + a.tmpl + "\"");
    }
    if (a.rate_per_s <= 0.0) bad(p + ".rate_per_s", "must be > 0");
    if (a.lifetime_min_s < 0.0 || a.lifetime_max_s < a.lifetime_min_s) {
      bad(p + ".lifetime_s", "needs 0 <= min_s <= max_s");
    }
    if (a.from_s < 0.0 || a.until_s < 0.0) bad(p, "times must be >= 0");
    if (a.until_s > 0.0 && a.until_s < a.from_s) {
      bad(p + ".until_s", "must be >= from_s");
    }
  }
}

}  // namespace sgprs::fleet
