// Result of an open-world fleet run: final fleet rollup, the time-series
// trajectory, churn/overload counters and the per-decision audit trail.
//
// Attribution note: the per-device reports attribute a re-placed stream's
// whole history to its final home device (the cluster forgets moved-away
// ids on the source). The fleet-level snapshot is computed directly from
// the shared Collector, so it is exact regardless of migrations.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "metrics/fleet.hpp"
#include "metrics/timeseries.hpp"

namespace sgprs::fleet {

using common::SimTime;

enum class DecisionKind {
  kStreamAdmitted,
  kStreamDowngraded,  // admitted after a QoS fps_scale retry
  kStreamRejected,    // no device passed admission
  kStreamOomRejected,  // rejected with memory as the sole blocker
  kStreamRetired,     // scripted/stochastic departure
  kStreamReplaced,    // moved off a draining device
  kStreamDropped,     // re-placement off a draining device failed
  kJobShed,           // release dropped at the overload guard
  kScaleUp,           // device added (warm-up begins)
  kDeviceActive,      // warm-up elapsed; device takes placements
  kScaleDown,         // device deactivated (drain begins)
  kDeviceRetired,     // drain complete
};
const char* to_string(DecisionKind k);

/// One control-plane decision, in simulation order.
struct FleetDecision {
  SimTime at;
  DecisionKind kind = DecisionKind::kStreamAdmitted;
  int task_id = -1;  // -1 when the decision is about a device
  int device = -1;   // -1 when no device is involved
  std::string detail;
};

struct FleetRunResult {
  std::string name;
  /// Per-device reports + exact fleet snapshot (see header note).
  metrics::FleetReport fleet;
  metrics::TimeSeries series;

  std::int64_t releases = 0;
  std::int64_t stage_migrations = 0;   // SGPRS only
  std::int64_t medium_promotions = 0;  // SGPRS only
  double sim_events = 0.0;

  // --- churn counters ---
  std::int64_t streams_admitted = 0;  // includes the initial task set
  std::int64_t streams_rejected = 0;  // admission + failed re-placement
  /// Subset of streams_rejected where every candidate device had the
  /// compute headroom but not the memory (kStreamOomRejected decisions).
  std::int64_t streams_oom_rejected = 0;
  std::int64_t streams_retired = 0;
  std::int64_t streams_downgraded = 0;
  std::int64_t jobs_shed = 0;

  // --- fleet-shape counters ---
  int peak_devices = 0;   // max simultaneously provisioned
  int final_devices = 0;  // active at the horizon
  int scale_ups = 0;
  int scale_downs = 0;

  /// Audit trail, capped at kMaxDecisions. Decisions past the cap are not
  /// stored but are *counted*: truncated_decisions appears in both the
  /// printed summary and the JSON report, so a capped trail is never
  /// mistaken for a complete one.
  std::vector<FleetDecision> decisions;
  std::int64_t truncated_decisions = 0;
  static constexpr std::size_t kMaxDecisions = 10000;

  double fps() const { return fleet.fleet.fps; }
  double dmr() const { return fleet.fleet.dmr; }
};

/// Human-readable run summary: headline metrics, churn counters and the
/// per-device table.
void print_fleet_run(const FleetRunResult& r, std::ostream& out);

/// Full machine-readable report: summary + per-device records + the whole
/// time series + audit counters. Byte-identical across replays — the
/// determinism pin compares this output.
void write_fleet_run_json(const FleetRunResult& r, std::ostream& out);

}  // namespace sgprs::fleet
