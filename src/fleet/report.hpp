// Result of an open-world fleet run: final fleet rollup, the time-series
// trajectory, churn/overload counters and the per-decision audit trail.
//
// Attribution note: the per-device reports attribute a re-placed stream's
// whole history to its final home device (the cluster forgets moved-away
// ids on the source). The fleet-level snapshot is computed directly from
// the shared Collector, so it is exact regardless of migrations.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "metrics/fleet.hpp"
#include "metrics/timeseries.hpp"

namespace sgprs::fleet {

using common::SimTime;

enum class DecisionKind {
  kStreamAdmitted,
  kStreamDowngraded,  // admitted after a QoS fps_scale retry
  kStreamRejected,    // no device passed admission
  kStreamOomRejected,  // rejected with memory as the sole blocker
  kStreamRetired,     // scripted/stochastic departure
  kStreamReplaced,    // moved off a draining device
  kStreamDropped,     // re-placement off a draining device failed
  kJobShed,           // release dropped at the overload guard
  kScaleUp,           // device added (warm-up begins)
  kDeviceActive,      // warm-up elapsed; device takes placements
  kScaleDown,         // device deactivated (drain begins)
  kDeviceRetired,     // drain complete
  kDeviceFailed,      // crash: in-flight jobs aborted, streams orphaned
  kDeviceRecovered,   // MTTR elapsed / scripted recovery
  kStreamFailedOver,  // orphan re-placed on a healthy device
  kStreamOrphaned,    // crash displaced the stream; failover pending
  kFailoverRetry,     // a failover attempt beyond the first
  kDegradedEnter,     // active devices fell below the fault floor
  kDegradedExit,      // capacity recovered above the floor
};
const char* to_string(DecisionKind k);

/// One control-plane decision, in simulation order.
struct FleetDecision {
  SimTime at;
  DecisionKind kind = DecisionKind::kStreamAdmitted;
  int task_id = -1;  // -1 when the decision is about a device
  int device = -1;   // -1 when no device is involved
  std::string detail;
};

struct FleetRunResult {
  std::string name;
  /// Per-device reports + exact fleet snapshot (see header note).
  metrics::FleetReport fleet;
  metrics::TimeSeries series;

  std::int64_t releases = 0;
  std::int64_t stage_migrations = 0;   // SGPRS only
  std::int64_t medium_promotions = 0;  // SGPRS only
  double sim_events = 0.0;

  // --- churn counters ---
  std::int64_t streams_admitted = 0;  // includes the initial task set
  std::int64_t streams_rejected = 0;  // admission + failed re-placement
  /// Subset of streams_rejected where every candidate device had the
  /// compute headroom but not the memory (kStreamOomRejected decisions).
  std::int64_t streams_oom_rejected = 0;
  std::int64_t streams_retired = 0;
  std::int64_t streams_downgraded = 0;
  std::int64_t jobs_shed = 0;

  // --- fault / failover counters ---
  /// In-flight jobs killed by device crashes. Distinct from deadline
  /// misses: a faulted job never closes in the collector, so it is outside
  /// the DMR denominator.
  std::int64_t jobs_faulted = 0;
  std::int64_t devices_failed = 0;
  std::int64_t devices_recovered = 0;
  /// Orphaned streams successfully re-placed on a healthy device.
  std::int64_t failovers = 0;
  /// Failover attempts beyond each orphan's immediate re-place.
  std::int64_t failover_retries = 0;
  /// Orphans dropped after exhausting every attempt (park=false), plus
  /// orphans still homeless at the horizon.
  std::int64_t streams_lost = 0;
  /// Summed stream-seconds of orphan downtime (crash to re-place, loss, or
  /// the horizon).
  double unavailability_s = 0.0;
  /// Crash-to-re-place latency per failed-over stream (seconds); 0 when
  /// the immediate re-place succeeded.
  double recovery_p50_s = 0.0;
  double recovery_p99_s = 0.0;

  // --- fleet-shape counters ---
  int peak_devices = 0;   // max simultaneously provisioned
  int final_devices = 0;  // active at the horizon
  int scale_ups = 0;
  int scale_downs = 0;

  /// Audit trail, capped at kMaxDecisions. Decisions past the cap are not
  /// stored but are *counted*: truncated_decisions appears in both the
  /// printed summary and the JSON report, so a capped trail is never
  /// mistaken for a complete one.
  std::vector<FleetDecision> decisions;
  std::int64_t truncated_decisions = 0;
  static constexpr std::size_t kMaxDecisions = 10000;

  double fps() const { return fleet.fleet.fps; }
  double dmr() const { return fleet.fleet.dmr; }
};

/// Human-readable run summary: headline metrics, churn counters and the
/// per-device table.
void print_fleet_run(const FleetRunResult& r, std::ostream& out);

/// Full machine-readable report: summary + per-device records + the whole
/// time series + audit counters. Byte-identical across replays — the
/// determinism pin compares this output.
void write_fleet_run_json(const FleetRunResult& r, std::ostream& out);

}  // namespace sgprs::fleet
