#include "fleet/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cluster/cluster.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "dnn/builders.hpp"
#include "dnn/profiler.hpp"
#include "fleet/faults.hpp"
#include "fleet/overload_guard.hpp"
#include "fleet/sharding.hpp"
#include "gpu/device.hpp"
#include "obs/instruments.hpp"
#include "obs/profiler.hpp"
#include "obs/span.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

namespace sgprs::fleet {

namespace {

using common::SimTime;
using workload::ScenarioConfig;
using workload::ScenarioSpec;

/// A stream currently releasing jobs somewhere in the fleet.
struct LiveStream {
  int task_id = -1;
  const rt::Task* task = nullptr;  // stable storage in a device's deque
  int device = -1;
  SimTime admitted_at;
  int tier = 0;
  /// Origin name: the timeline template for churned streams, the task
  /// entry name for the initial set (retire targets match it exactly),
  /// empty for generator-built tasks.
  std::string tmpl;
};

/// A stream whose device crashed and that the crash-instant batch failover
/// could not re-place. It waits in the retry/backoff loop (then parks, or
/// is dropped) holding a full copy of its task — the crashed device's
/// storage is no longer its home.
struct Orphan {
  int task_id = -1;
  rt::Task task;
  int tier = 0;
  std::string tmpl;
  int from_device = -1;
  SimTime orphaned_at;
  /// Placement attempts consumed so far (the crash-instant batch is 1).
  int attempts = 0;
  bool parked = false;
};

class FleetRuntime {
 public:
  FleetRuntime(const ScenarioSpec& spec, const workload::RunSeeds& seeds,
               trace::TraceRecorder* capture,
               const obs::Instruments& instruments)
      : spec_(spec),
        cfg_(workload::lower(spec)),
        policy_(spec.fleet_policy ? *spec.fleet_policy : FleetPolicySpec{}),
        timeline_(spec.timeline ? *spec.timeline : TimelineSpec{}),
        faults_(spec.faults ? *spec.faults : FaultSpec{}),
        capture_(capture),
        sink_(instruments.spans),
        prof_(instruments.profiler) {
    cfg_.seed = seeds.sim;
    workload::validate(cfg_);
    generator_seed_ = seeds.generator;
    shards_ = cfg_.shards;
    if (sharded()) {
      // One calendar per shard plus the control-plane calendar (engine_).
      // Devices map onto shards by index (shard_of); the pool is sized to
      // the shard count so every shard segment runs in one parallel wave.
      shard_engines_.reserve(shards_);
      for (int s = 0; s < shards_; ++s) {
        shard_engines_.push_back(std::make_unique<sim::Engine>());
      }
      shard_pool_ = std::make_unique<common::ThreadPool>(shards_);
    }
    // Churn rng: timeline seed mixed with the sim seed, so experiment
    // replications decorrelate while a fixed (spec, seeds) pair replays
    // byte-identically.
    std::uint64_t mix = timeline_.seed +
                        0x9e3779b97f4a7c15ULL * (cfg_.seed + 1);
    churn_rng_.reseed(common::splitmix64_next(mix));
    fault_engine_ = std::make_unique<FaultEngine>(faults_, cfg_.seed);
    if (timeline_.trace) {
      // A replayed trace that carries fault events *is* the fault source:
      // it replaces the spec's scripted events and stochastic process
      // (the failover policy still comes from the spec).
      for (const auto& e : timeline_.trace->events) {
        if (e.kind == trace::TraceEvent::Kind::kCrash ||
            e.kind == trace::TraceEvent::Kind::kRecover) {
          trace_faults_ = true;
          break;
        }
      }
    }

    collector_ = std::make_unique<metrics::Collector>(cfg_.warmup);
    overload_.cfg = policy_.overload;
    overload_.audit = &result_.decisions;
    overload_.audit_truncated = &result_.truncated_decisions;

    {
      obs::PhaseProfiler::Scope setup(prof_,
                                      obs::PhaseProfiler::Phase::kSetup);
      build_cluster();
      build_prototypes();
      place_initial_tasks();
    }
    if (capture_) {
      capture_->set_templates(effective_templates());
    }
    start();
  }

  FleetRunResult run() {
    if (sharded()) {
      run_sharded();
    } else {
      obs::PhaseProfiler::Scope eng(prof_,
                                    obs::PhaseProfiler::Phase::kEngineRun);
      engine_.run_until(cfg_.duration);
    }
    finish();
    return std::move(result_);
  }

 private:
  // --- sharded execution (docs/sharding.md) --------------------------

  bool sharded() const { return shards_ > 1; }

  /// The per-device collector a sharded run routes device `index`'s
  /// metrics into (grown on demand; deque keeps addresses stable as the
  /// autoscaler adds devices).
  metrics::Collector& device_collector(int index) {
    while (static_cast<int>(device_collectors_.size()) <= index) {
      device_collectors_.emplace_back(cfg_.warmup);
    }
    return device_collectors_[index];
  }

  sim::Engine& shard_engine(int device_index) {
    return *shard_engines_[shard_of(device_index, shards_)];
  }

  /// Epoch-barrier loop. Each iteration is one epoch: every shard engine
  /// runs its device events up to the next control-plane instant (in
  /// parallel on the pool), then the control engine runs that instant's
  /// events serially. Control handlers schedule onto the paused shard
  /// engines (admission release arming, retire cancels); those land in
  /// each engine's staging buffer and are ingested by MinHeap::merge_from
  /// when its shard resumes — the cross-shard handoff batch, ordered by
  /// (epoch, source shard, per-shard schedule sequence).
  void run_sharded() {
    for (;;) {
      const SimTime tc = engine_.next_event_time();
      const bool has_control = tc <= cfg_.duration;
      run_shards_until(has_control ? tc : cfg_.duration);
      if (!has_control) break;
      obs::PhaseProfiler::Scope ctl(
          prof_, obs::PhaseProfiler::Phase::kControlPhase);
      engine_.run_until(tc);
    }
    engine_.run_until(cfg_.duration);  // idle control calendar: advance now
  }

  void run_shards_until(SimTime t) {
    obs::PhaseProfiler::Scope wave(prof_,
                                   obs::PhaseProfiler::Phase::kShardPhase);
    std::vector<std::future<void>> joined;
    joined.reserve(shard_engines_.size());
    for (auto& eng : shard_engines_) {
      sim::Engine* e = eng.get();
      joined.push_back(shard_pool_->submit([e, t] { e->run_until(t); }));
    }
    for (auto& f : joined) f.get();  // barrier; propagates shard throws
  }

  /// Fleet-wide job counters: the shared collector's on the classic path,
  /// the per-device sum on the sharded path (integer sums, so the total is
  /// order- and shard-count-invariant).
  metrics::TaskCounters total_counts() const {
    if (!sharded()) return collector_->total_counts();
    metrics::TaskCounters total;
    for (const auto& col : device_collectors_) {
      const metrics::TaskCounters c = col.total_counts();
      total.released += c.released;
      total.dropped += c.dropped;
      total.on_time += c.on_time;
      total.late += c.late;
    }
    return total;
  }

  // --- setup ---------------------------------------------------------

  void build_cluster() {
    cluster::ClusterConfig ccfg;
    ccfg.devices = cfg_.fleet.empty()
                       ? std::vector<gpu::DeviceSpec>(cfg_.num_devices,
                                                      cfg_.device)
                       : cfg_.fleet;
    ccfg.placement = cfg_.placement;
    ccfg.admission_margin = cfg_.admission_margin;
    ccfg.occupancy_threshold = cfg_.occupancy_threshold;
    if (cfg_.device_mem_mb > 0.0) {
      const std::int64_t mem = static_cast<std::int64_t>(
          std::llround(cfg_.device_mem_mb * 1048576.0));
      for (auto& spec : ccfg.devices) spec.mem_bytes = mem;
    }
    ccfg.scheduler = cfg_.scheduler;
    ccfg.pool = workload::pool_config_for(cfg_);
    ccfg.sgprs = cfg_.sgprs;
    ccfg.naive = cfg_.naive;
    ccfg.sharing = cfg_.sharing;
    ccfg.wrap_scheduler = [this](std::unique_ptr<rt::Scheduler> inner,
                                 int device_index) {
      DeviceOverload& dev = overload_.device(device_index);
      dev.collector =
          sharded() ? &device_collector(device_index) : collector_.get();
      return std::make_unique<OverloadGuard>(std::move(inner), device_index,
                                             &overload_, &dev);
    };
    if (sharded()) {
      ccfg.engine_for = [this](int device_index) -> sim::Engine& {
        return shard_engine(device_index);
      };
      ccfg.collector_for = [this](int device_index) -> metrics::Collector& {
        return device_collector(device_index);
      };
    }
    if (sink_) {
      // Per-device buffers: on the sharded path each is written only by
      // its device's shard thread (and the control plane at barriers).
      ccfg.tracer_for = [this](int device_index) {
        return &sink_->device_tracer(device_index);
      };
    }
    cluster_ = std::make_unique<cluster::Cluster>(engine_, *collector_, ccfg);

    scale_spec_ = policy_.autoscaler.device.empty()
                      ? cfg_.device
                      : *gpu::device_by_name(policy_.autoscaler.device);
    if (cfg_.device_mem_mb > 0.0) {
      // The scenario-wide memory cap applies to autoscaled devices too, so
      // a memory-constrained fleet cannot scale its way past the budget.
      scale_spec_.mem_bytes = static_cast<std::int64_t>(
          std::llround(cfg_.device_mem_mb * 1048576.0));
    }
    pool_sizes_ = cluster_->pool_sm_sizes();
    if (policy_.autoscaler.kind != AutoscalePolicyKind::kNone) {
      // Devices the autoscaler may add must already be covered by every
      // task's WCET profile — profile their pool sizes up front.
      for (int sms : cluster::pool_sm_sizes_for(
               scale_spec_, workload::pool_config_for(cfg_), cfg_.sharing)) {
        if (std::find(pool_sizes_.begin(), pool_sizes_.end(), sms) ==
            pool_sizes_.end()) {
          pool_sizes_.push_back(sms);
        }
      }
      autoscaler_ = make_autoscaler(policy_.autoscaler.kind);
    }
  }

  /// Replaying a trace swaps the timeline's own template set for the one
  /// recorded in the trace file (a trace-driven timeline has no templates
  /// of its own — validated at parse time).
  const std::vector<StreamTemplate>& effective_templates() const {
    return timeline_.trace ? timeline_.trace->templates
                           : timeline_.templates;
  }

  /// One pre-profiled prototype task per template (plus a downgraded
  /// variant when QoS fps_scale is enabled): admissions clone, never
  /// profile.
  void build_prototypes() {
    if (effective_templates().empty()) return;
    dnn::Profiler profiler(cfg_.device, gpu::SpeedupModel::rtx2080ti(),
                           dnn::CostModel::calibrated());
    std::map<std::string, std::shared_ptr<const dnn::Network>> networks;
    auto network_for = [&](const std::string& name) {
      auto it = networks.find(name);
      if (it == networks.end()) {
        it = networks
                 .emplace(name, std::make_shared<const dnn::Network>(
                                    dnn::network_builder_by_name(name)()))
                 .first;
      }
      return it->second;
    };
    auto build_proto = [&](const StreamTemplate& t, double fps_scale) {
      const double fps = t.fps * fps_scale;
      const double min_sep_ms =
          (t.min_separation_ms > 0.0 ? t.min_separation_ms
                                     : 1000.0 / t.fps) /
          fps_scale;
      rt::TaskConfig tc;
      // Sporadic streams build at their worst-case rate so admission math
      // stays conservative (mirrors the task-entry path).
      tc.fps = t.arrival == rt::ArrivalModel::kSporadic ? 1000.0 / min_sep_ms
                                                        : fps;
      tc.num_stages = t.num_stages;
      tc.priority_policy = t.priority_policy;
      if (t.deadline_ms > 0.0) {
        tc.deadline = SimTime::from_ms(t.deadline_ms);
      }
      rt::Task proto = rt::build_task(0, network_for(t.network), tc,
                                      profiler, pool_sizes_);
      proto.phase = SimTime::from_ms(t.phase_ms);
      if (t.arrival == rt::ArrivalModel::kSporadic) {
        proto.arrival = rt::ArrivalModel::kSporadic;
        proto.min_separation = SimTime::from_ms(min_sep_ms);
        proto.max_separation = SimTime::from_ms(
            t.max_separation_ms > 0.0 ? t.max_separation_ms / fps_scale
                                      : 1.5 * min_sep_ms);
      }
      // Template footprint overrides pin both the prototype and its
      // downgraded variant (a slower stream still holds its weights).
      if (t.mem_mb >= 0.0) {
        proto.mem_bytes = static_cast<std::int64_t>(
            std::llround(t.mem_mb * 1048576.0));
      }
      if (t.warps >= 0) proto.warps = t.warps;
      return proto;
    };
    for (const auto& t : effective_templates()) {
      prototypes_[t.name] = build_proto(t, 1.0);
      if (policy_.overload.fps_scale < 1.0) {
        downgraded_[t.name] = build_proto(t, policy_.overload.fps_scale);
      }
    }
  }

  void place_initial_tasks() {
    if (spec_.tasks.empty() && !spec_.generator) return;
    auto builder = workload::task_builder_for(spec_, generator_seed_);
    std::vector<rt::Task> tasks = builder(cfg_, pool_sizes_);
    for (const auto& t : tasks) {
      next_task_id_ = std::max(next_task_id_, t.id + 1);
    }
    cluster_->place(std::move(tasks));
    for (int d = 0; d < cluster_->num_devices(); ++d) {
      for (const auto& t : cluster_->device(d).tasks) {
        const workload::TaskEntrySpec* e =
            workload::task_entry_for(spec_, t.id);
        const int tier = e ? e->tier : 0;
        overload_.set_tier(t.id, tier);
        live_.push_back(LiveStream{t.id, &t, d, SimTime::zero(), tier,
                                   e ? e->name : ""});
        ++result_.streams_admitted;
      }
    }
    // Keep stream bookkeeping in admission (id) order, not device order.
    std::sort(live_.begin(), live_.end(),
              [](const LiveStream& a, const LiveStream& b) {
                return a.task_id < b.task_id;
              });
    if (sink_) {
      for (const auto& s : live_) {
        sink_->stream_admitted(SimTime::zero(), s.task_id, s.device,
                               s.tmpl.empty() ? "task" : s.tmpl);
      }
    }
    const std::vector<bool>& oom = cluster_->rejected_oom();
    std::size_t reject_index = 0;
    for (const auto& t : cluster_->rejected_tasks()) {
      ++result_.streams_rejected;
      const bool was_oom =
          reject_index < oom.size() && oom[reject_index];
      ++reject_index;
      if (was_oom) {
        ++result_.streams_oom_rejected;
        record({SimTime::zero(), DecisionKind::kStreamOomRejected, t.id, -1,
                "initial placement ran out of device memory"});
      } else {
        record({SimTime::zero(), DecisionKind::kStreamRejected, t.id, -1,
                "initial placement failed admission"});
      }
    }
  }

  void start() {
    rt::RunnerConfig rcfg;
    rcfg.duration = cfg_.duration;
    rcfg.jitter_seed = cfg_.seed;
    cluster_->start(rcfg);
    peak_provisioned_ = provisioned_devices();

    if (timeline_.trace) {
      // Replay: the recorded admit/retire stream *is* the churn source.
      // Events are scheduled here — in trace order, in the same start()
      // slot the scripted events occupy — so equal-time events keep their
      // recorded order through the engine's insertion-sequence tie-break.
      // The horizon rule matches what capture could produce: scripted and
      // arrival admits never fire at t == duration, recorded lifetime
      // retires can, so only t > duration is skipped.
      const auto& events = timeline_.trace->events;
      for (std::size_t i = 0; i < events.size(); ++i) {
        const SimTime t = SimTime::from_ns(events[i].t_ns);
        if (t > cfg_.duration) break;  // non-decreasing: nothing later fires
        engine_.schedule_at(t, [this, i] { run_trace_event(i); });
      }
    } else {
      // Scripted events (every_s expands against the run horizon).
      for (std::size_t i = 0; i < timeline_.events.size(); ++i) {
        const TimelineEvent& e = timeline_.events[i];
        if (e.every_s <= 0.0) {
          schedule_event(SimTime::from_sec(e.at_s), i);
          continue;
        }
        const double until =
            e.until_s > 0.0 ? e.until_s : cfg_.duration.to_sec();
        for (double t = e.from_s; t <= until; t += e.every_s) {
          schedule_event(SimTime::from_sec(t), i);
        }
      }
      // Stochastic arrival processes.
      for (std::size_t i = 0; i < timeline_.arrivals.size(); ++i) {
        arm_arrival(i, SimTime::from_sec(timeline_.arrivals[i].from_s));
      }
    }
    // Fault sources (docs/faults.md). On a fault-carrying trace replay the
    // recorded crash/recover events fire from the trace loop above; the
    // spec's own sources stay quiet so faults are not injected twice.
    if (!trace_faults_) {
      for (std::size_t i = 0; i < faults_.events.size(); ++i) {
        const SimTime t = SimTime::from_sec(faults_.events[i].at_s);
        if (t >= cfg_.duration) continue;
        engine_.schedule_at(t, [this, i] { run_fault_event(i); });
      }
      if (faults_.process.mtbf_s > 0.0) {
        for (int d = 0; d < cluster_->num_devices(); ++d) {
          arm_device_fault(d, SimTime::from_sec(faults_.process.from_s));
        }
      }
    }
    // Control loops.
    if (autoscaler_) {
      schedule_at_or_skip(SimTime::from_ms(policy_.autoscaler.tick_ms),
                          [this] { autoscale_tick(); });
    }
    series_window_ = SimTime::from_ms(policy_.series_window_ms);
    result_.series.window = series_window_;
    schedule_at_or_skip(series_window_, [this] { sample_tick(); });
  }

  // --- scheduling helpers -------------------------------------------

  template <typename F>
  void schedule_at_or_skip(SimTime t, F&& fn) {
    if (t > cfg_.duration) return;
    engine_.schedule_at(t, std::forward<F>(fn));
  }

  void schedule_event(SimTime t, std::size_t index) {
    if (t >= cfg_.duration) return;
    engine_.schedule_at(t, [this, index] { run_event(index); });
  }

  // --- churn driver --------------------------------------------------

  void run_event(std::size_t index) {
    const TimelineEvent& e = timeline_.events[index];
    const SimTime now = engine_.now();
    if (e.kind == TimelineEvent::Kind::kAdmit) {
      const StreamTemplate* t = find_template(timeline_, e.target);
      SGPRS_CHECK(t != nullptr);  // validated at parse time
      for (int i = 0; i < e.count; ++i) admit_stream(*t, now, "scripted");
    } else {
      retire_matching(e.target, e.count, now);
    }
  }

  void run_trace_event(std::size_t index) {
    const trace::TraceEvent& e = timeline_.trace->events[index];
    const SimTime now = engine_.now();
    if (e.kind == trace::TraceEvent::Kind::kCrash) {
      // Faults replay directly (crash_device re-derives the failover); the
      // recorded source tag keeps the audit-trail bytes identical.
      crash_device(e.device, now, e.source);
      return;
    }
    if (e.kind == trace::TraceEvent::Kind::kRecover) {
      recover_device(e.device, e.source);
      return;
    }
    if (e.kind == trace::TraceEvent::Kind::kAdmit) {
      const StreamTemplate* t = nullptr;
      for (const auto& cand : timeline_.trace->templates) {
        if (cand.name == e.tmpl) {
          t = &cand;
          break;
        }
      }
      SGPRS_CHECK(t != nullptr);  // validated at load time
      // Admission is re-run, not replayed: on the recorded cluster the
      // outcome (and the id burned) matches the original run exactly; on a
      // scaled trace or different policy it may differ, which is the point
      // of replaying against new configurations.
      const int id = admit_stream(*t, now, e.source.c_str(), e.tier);
      if (id >= 0) trace_ids_[e.id] = id;
    } else {
      const auto it = trace_ids_.find(e.id);
      if (it == trace_ids_.end()) return;  // that admit was rejected here
      retire_stream_by_id(it->second, DecisionKind::kStreamRetired,
                          e.source.c_str());
    }
  }

  void arm_arrival(std::size_t index, SimTime from) {
    const ArrivalProcess& a = timeline_.arrivals[index];
    // Exponential inter-arrival gap (Poisson process), drawn in event
    // order from the churn rng.
    const double gap_s =
        -std::log(1.0 - churn_rng_.next_double()) / a.rate_per_s;
    const SimTime at = from + SimTime::from_sec(gap_s);
    const SimTime until = a.until_s > 0.0 ? SimTime::from_sec(a.until_s)
                                          : cfg_.duration;
    if (at >= until || at >= cfg_.duration) return;
    engine_.schedule_at(at, [this, index] { fire_arrival(index); });
  }

  void fire_arrival(std::size_t index) {
    const ArrivalProcess& a = timeline_.arrivals[index];
    const SimTime now = engine_.now();
    const StreamTemplate* t = find_template(timeline_, a.tmpl);
    SGPRS_CHECK(t != nullptr);
    const int id = admit_stream(*t, now, "arrival");
    if (id >= 0 && a.lifetime_max_s > 0.0) {
      const double life_s =
          churn_rng_.uniform(a.lifetime_min_s, a.lifetime_max_s);
      schedule_at_or_skip(now + SimTime::from_sec(life_s), [this, id] {
        retire_stream_by_id(id, DecisionKind::kStreamRetired,
                            "lifetime elapsed");
      });
    }
    arm_arrival(index, now);
  }

  /// Admits one stream: clone the prototype, place (admission test unless
  /// disabled), QoS-downgrade retry, then arm its releases. Returns the
  /// task id, or -1 when the stream was rejected.
  ///
  /// `tier_override >= 0` (synthesized traces) replaces the template tier.
  /// The capture hook records the *attempt* before the outcome is known:
  /// even a rejected admission consumed an id, and replay must burn the
  /// same ids to stay byte-identical.
  int admit_stream(const StreamTemplate& tmpl, SimTime now,
                   const char* source, int tier_override = -1) {
    const int id = next_task_id_++;
    const int tier = tier_override >= 0 ? tier_override : tmpl.tier;
    if (capture_) {
      capture_->record_admit(now, tmpl.name, id, tier_override, source);
    }
    rt::Task task = prototypes_.at(tmpl.name);
    task.id = id;
    task.name = tmpl.name + "-" + std::to_string(id);

    std::optional<int> dev;
    bool oom = false;
    if (policy_.overload.admission_test) {
      const cluster::PlaceResult r = cluster_->placer().place_ex(task);
      dev = r.device;
      oom = r.oom;
    } else {
      dev = cluster_->placer().force_place(task);
    }
    bool downgraded = false;
    if (!dev && policy_.overload.fps_scale < 1.0) {
      task = downgraded_.at(tmpl.name);
      task.id = id;
      task.name = tmpl.name + "-" + std::to_string(id);
      const cluster::PlaceResult r = cluster_->placer().place_ex(task);
      dev = r.device;
      oom = r.oom;
      downgraded = dev.has_value();
    }
    if (!dev) {
      ++result_.streams_rejected;
      if (oom) {
        // Memory was the sole remaining blocker on every candidate: the
        // fleet has compute headroom but no VRAM for this stream.
        ++result_.streams_oom_rejected;
        record({now, DecisionKind::kStreamOomRejected, id, -1,
                std::string(source) + " " + tmpl.name});
      } else {
        record({now, DecisionKind::kStreamRejected, id, -1,
                std::string(source) + " " + tmpl.name});
      }
      return -1;
    }
    const rt::Task& stored = cluster_->admit_task(*dev, std::move(task));
    overload_.set_tier(id, tier);
    live_.push_back(LiveStream{id, &stored, *dev, now, tier, tmpl.name});
    ++result_.streams_admitted;
    if (sink_) sink_->stream_admitted(now, id, *dev, tmpl.name);
    if (downgraded) {
      ++result_.streams_downgraded;
      record({now, DecisionKind::kStreamDowngraded, id, *dev,
              tmpl.name + " at fps_scale " +
                  std::to_string(policy_.overload.fps_scale)});
    } else {
      record({now, DecisionKind::kStreamAdmitted, id, *dev,
              std::string(source) + " " + tmpl.name});
    }
    return id;
  }

  /// Retires the `count` oldest live streams whose origin name (timeline
  /// template, or initial task-entry name) equals `target` exactly.
  /// Prefix or suffix heuristics would let "cam" capture "cam_hd" /
  /// "cam2" streams; generator-built streams have no origin name and can
  /// only be retired by lifetime.
  void retire_matching(const std::string& target, int count, SimTime now) {
    std::vector<int> ids;
    for (const auto& s : live_) {
      if (static_cast<int>(ids.size()) >= count) break;
      if (s.tmpl == target) ids.push_back(s.task_id);
    }
    for (int id : ids) {
      retire_stream_by_id(id, DecisionKind::kStreamRetired, "scripted");
    }
    (void)now;
  }

  bool retire_stream_by_id(int id, DecisionKind kind, const char* detail) {
    auto it = std::find_if(live_.begin(), live_.end(),
                           [id](const LiveStream& s) {
                             return s.task_id == id;
                           });
    if (it == live_.end()) return false;  // already gone (double retire)
    const SimTime now = engine_.now();
    // Churn retirements feed the capture; autoscaler drops (kStreamDropped)
    // do not — they are consequences replay re-derives, not inputs.
    if (capture_ && kind == DecisionKind::kStreamRetired) {
      capture_->record_retire(now, id, detail);
    }
    cluster_->retire_task(it->device, id);
    record({now, kind, id, it->device, detail});
    if (sink_) sink_->stream_retired(now, id);
    live_.erase(it);
    ++result_.streams_retired;
    return true;
  }

  // --- autoscaler ----------------------------------------------------

  int provisioned_devices() const {
    return cluster_->placer().active_devices() +
           static_cast<int>(warming_.size());
  }

  void autoscale_tick() {
    const SimTime now = engine_.now();
    finish_drains(now);

    const auto& acfg = policy_.autoscaler;
    FleetLoad load;
    load.warming_devices = static_cast<int>(warming_.size());
    load.draining_devices = static_cast<int>(draining_.size());
    load.failed_devices = failed_count();
    for (int d = 0; d < cluster_->num_devices(); ++d) {
      if (!cluster_->placer().device_active(d)) continue;
      ++load.active_devices;
      const double u = cluster_->placer().utilization(d);
      load.mean_utilization += u;
      load.max_utilization = std::max(load.max_utilization, u);
    }
    if (load.active_devices > 0) {
      load.mean_utilization /= static_cast<double>(load.active_devices);
    }

    if (sink_) {
      sink_->control(now, "autoscale_tick", -1, -1,
                     std::to_string(load.active_devices) + " active, " +
                         std::to_string(load.warming_devices) + " warming");
    }
    const int provisioned = load.active_devices + load.warming_devices;
    int desired = autoscaler_->desired_devices(load, acfg);
    desired = std::clamp(desired, acfg.min_devices, acfg.max_devices);
    const bool cooled =
        last_scale_.ns < 0 ||
        now - last_scale_ >= SimTime::from_ms(acfg.cooldown_ms);
    if (desired > provisioned && cooled) {
      scale_up(now);
    } else if (desired < provisioned && cooled &&
               load.active_devices > acfg.min_devices) {
      scale_down(now);
    }

    schedule_at_or_skip(now + SimTime::from_ms(acfg.tick_ms),
                        [this] { autoscale_tick(); });
  }

  void scale_up(SimTime now) {
    const auto& acfg = policy_.autoscaler;
    const bool warm = acfg.warmup_ms > 0.0;
    const int idx = cluster_->add_device(scale_spec_, /*active=*/!warm);
    ++result_.scale_ups;
    last_scale_ = now;
    record({now, DecisionKind::kScaleUp, -1, idx, scale_spec_.name});
    if (warm) {
      warming_.push_back(idx);
      schedule_at_or_skip(now + SimTime::from_ms(acfg.warmup_ms),
                          [this, idx] { activate_device(idx); });
    } else {
      record({now, DecisionKind::kDeviceActive, -1, idx, ""});
      update_degraded(now);
      readmit_parked(now);
    }
    // Autoscaled devices join the stochastic fault process too.
    if (!trace_faults_) arm_device_fault(idx, now);
    peak_provisioned_ = std::max(peak_provisioned_, provisioned_devices());
  }

  void activate_device(int idx) {
    // A device that crashed mid-warm-up never activates here; recovery
    // (which re-activates unconditionally) owns bringing it back.
    if (device_failed(idx)) return;
    const SimTime now = engine_.now();
    warming_.erase(std::remove(warming_.begin(), warming_.end(), idx),
                   warming_.end());
    cluster_->set_device_active(idx, true);
    record({now, DecisionKind::kDeviceActive, -1, idx, ""});
    update_degraded(now);
    readmit_parked(now);
  }

  void scale_down(SimTime now) {
    // Victim: the active device hosting the fewest live streams; ties go
    // to the youngest (highest index) so the original fleet shrinks last.
    int victim = -1;
    int victim_streams = 0;
    for (int d = 0; d < cluster_->num_devices(); ++d) {
      if (!cluster_->placer().device_active(d)) continue;
      int streams = 0;
      for (const auto& s : live_) streams += s.device == d ? 1 : 0;
      if (victim < 0 || streams < victim_streams ||
          (streams == victim_streams && d > victim)) {
        victim = d;
        victim_streams = streams;
      }
    }
    if (victim < 0) return;
    cluster_->set_device_active(victim, false);
    draining_.push_back(victim);
    ++result_.scale_downs;
    last_scale_ = now;
    record({now, DecisionKind::kScaleDown, -1, victim,
            std::to_string(victim_streams) + " streams to re-place"});

    // Re-place the victim's streams through the placer; in-flight jobs
    // keep draining on the victim, only *future* releases move.
    replace_streams(
        victim, now, DecisionKind::kStreamReplaced, [](int, int) {},
        [&](int id, rt::Task&&, int, std::string) {
          // The stream leaves the system (it *was* admitted), so it
          // counts as retired — not rejected — keeping
          // admitted − retired == live.
          record({now, DecisionKind::kStreamDropped, id, victim,
                  "no device admits the re-placed stream"});
          if (sink_) sink_->stream_retired(now, id);
          ++result_.streams_retired;
        });
  }

  /// Shared drain / failover re-placement. All of `victim`'s live streams
  /// are retired first and re-placed as ONE batched decision (CASE-style):
  /// the victim is inactive, so the candidate set any stream sees is the
  /// same whether its predecessors were retired one at a time or up front.
  /// The batch is then walked in admission order — placed streams are
  /// re-admitted (recorded as `success_kind`, then `on_placed(id, dev)`),
  /// each unplaced one is handed to `on_unplaced(id, task, tier, tmpl)`
  /// *inline*, so the audit interleaving matches the pre-refactor drain
  /// loop byte for byte.
  template <typename OnPlaced, typename OnUnplaced>
  void replace_streams(int victim, SimTime now, DecisionKind success_kind,
                       OnPlaced&& on_placed, OnUnplaced&& on_unplaced) {
    std::vector<int> ids;
    std::vector<rt::Task> copies;
    std::vector<int> tiers;
    std::vector<std::string> tmpls;
    for (const auto& s : live_) {
      if (s.device != victim) continue;
      ids.push_back(s.task_id);
      copies.push_back(*s.task);  // keeps its id: metrics stay continuous
      tiers.push_back(s.tier);
      tmpls.push_back(s.tmpl);
    }
    for (int id : ids) {
      cluster_->retire_task(victim, id, /*forget_metrics=*/true);
    }
    std::vector<cluster::PlaceResult> placed;
    {
      obs::PhaseProfiler::Scope batch(
          prof_, obs::PhaseProfiler::Phase::kPlacerBatch);
      placed = cluster_->placer().place_batch(
          copies, /*force=*/!policy_.overload.admission_test);
    }
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const int id = ids[i];
      auto it = std::find_if(live_.begin(), live_.end(),
                             [id](const LiveStream& s) {
                               return s.task_id == id;
                             });
      if (!placed[i].device) {
        live_.erase(it);
        on_unplaced(id, std::move(copies[i]), tiers[i],
                    std::move(tmpls[i]));
        continue;
      }
      const int dev = *placed[i].device;
      const rt::Task& stored =
          cluster_->admit_task(dev, std::move(copies[i]));
      it->task = &stored;
      it->device = dev;
      record({now, success_kind, id, dev,
              "from device " + std::to_string(victim)});
      if (sink_) sink_->stream_moved(now, id, dev);
      on_placed(id, dev);
    }
  }

  void finish_drains(SimTime now) {
    for (auto it = draining_.begin(); it != draining_.end();) {
      if (device_failed(*it)) {
        // Crashed mid-drain: crash_device already tore the drain down
        // (jobs aborted, kDeviceFailed recorded) and released the placer
        // accounting exactly once — never retire it a second time here.
        it = draining_.erase(it);
      } else if (cluster_->jobs_in_flight(*it) == 0) {
        record({now, DecisionKind::kDeviceRetired, -1, *it, ""});
        it = draining_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // --- faults / failover (docs/faults.md) ----------------------------

  bool device_failed(int d) const {
    return d >= 0 && d < static_cast<int>(failed_.size()) &&
           failed_[d] != 0;
  }

  int failed_count() const {
    int n = 0;
    for (char f : failed_) n += f ? 1 : 0;
    return n;
  }

  void grow_fault_state(int d) {
    if (d >= static_cast<int>(failed_.size())) {
      failed_.resize(d + 1, 0);
      down_gen_.resize(d + 1, 0);
      fault_incidents_.resize(d + 1, 0);
    }
  }

  void run_fault_event(std::size_t index) {
    const FaultEvent& e = faults_.events[index];
    const SimTime now = engine_.now();
    if (e.kind == FaultEvent::Kind::kRecover) {
      recover_device(e.device, "scripted");
      return;
    }
    std::vector<int> victims;
    if (e.device >= 0) {
      victims.push_back(e.device);
    } else {
      // Correlated outage: the first `count` healthy devices, highest
      // index first — the same victim order scale-down uses, so the
      // original fleet core fails last.
      for (int d = cluster_->num_devices() - 1;
           d >= 0 && static_cast<int>(victims.size()) < e.count; --d) {
        if (!device_failed(d)) victims.push_back(d);
      }
    }
    for (int d : victims) {
      if (!crash_device(d, now, "scripted")) continue;
      if (e.down_s > 0.0) {
        schedule_recovery(d, now + SimTime::from_sec(e.down_s),
                          "scripted recovery");
      }
    }
  }

  /// Arms device `d`'s next stochastic failure: `from` plus an exponential
  /// MTBF gap keyed (seed, device, incident) — shard-blind, so the
  /// schedule never depends on event interleaving or shard count.
  void arm_device_fault(int d, SimTime from) {
    const FaultProcess& pr = faults_.process;
    if (pr.mtbf_s <= 0.0) return;
    grow_fault_state(d);
    const SimTime until =
        pr.until_s > 0.0 ? std::min(SimTime::from_sec(pr.until_s),
                                    cfg_.duration)
                         : cfg_.duration;
    const SimTime base = std::max(from, SimTime::from_sec(pr.from_s));
    const int incident = fault_incidents_[d];
    const SimTime at =
        base + SimTime::from_sec(fault_engine_->failure_gap_s(d, incident));
    if (at >= until) return;
    engine_.schedule_at(at,
                        [this, d, incident] { stochastic_fail(d, incident); });
  }

  void stochastic_fail(int d, int incident) {
    if (incident != fault_incidents_[d]) return;  // stale arm
    if (device_failed(d)) return;  // a scripted crash got there first;
                                   // recovery re-arms the process
    fault_incidents_[d] = incident + 1;
    const SimTime now = engine_.now();
    if (!crash_device(d, now, "mtbf")) return;
    if (faults_.process.mttr_s > 0.0) {
      schedule_recovery(
          d, now + SimTime::from_sec(fault_engine_->repair_s(d, incident)),
          "mttr elapsed");
    }
  }

  /// `why` must be a string literal: the engine's inline event buffer has
  /// no room for a std::string capture, and the audit tags here are fixed.
  void schedule_recovery(int d, SimTime at, const char* why) {
    if (at > cfg_.duration) return;  // stays down past the horizon
    const int gen = down_gen_[d];
    engine_.schedule_at(at, [this, d, gen, why] {
      // Generation guard: an explicit recover event may have beaten this
      // timer, and the device may even be mid-way through a *newer* crash
      // whose own recovery this must not preempt.
      if (!device_failed(d) || down_gen_[d] != gen) return;
      recover_device(d, why);
    });
  }

  /// Kills device `d` at `now`: in-flight jobs are aborted (counted as
  /// jobs_faulted — their collector entries stay open, so they never read
  /// as deadline misses), live streams fail over through one placer batch,
  /// and whatever cannot be re-placed immediately enters the retry loop as
  /// an orphan. A crash tears down warm-up and drain state too: the device
  /// leaves warming_/draining_ here and its pending activation /
  /// drain-retire events become no-ops, so placer accounting is released
  /// exactly once (by the stream retirements in the failover batch).
  bool crash_device(int d, SimTime now, const std::string& why) {
    if (d < 0 || d >= cluster_->num_devices()) return false;
    grow_fault_state(d);
    if (failed_[d]) return false;  // already down
    failed_[d] = 1;
    ++down_gen_[d];
    warming_.erase(std::remove(warming_.begin(), warming_.end(), d),
                   warming_.end());
    draining_.erase(std::remove(draining_.begin(), draining_.end(), d),
                    draining_.end());
    cluster_->set_device_active(d, false);
    ++result_.devices_failed;
    record({now, DecisionKind::kDeviceFailed, -1, d, why});
    if (capture_) capture_->record_fault(now, d, /*crash=*/true, why);
    const int killed = cluster_->abort_in_flight(d);
    result_.jobs_faulted += killed;
    // Recorded from the control plane (the shards are parked at this
    // barrier) because abort_in_flight has no notion of sim time.
    if (sink_ && killed > 0) sink_->device_tracer(d).abort_all(killed, now);
    replace_streams(
        d, now, DecisionKind::kStreamFailedOver,
        [&](int, int) {
          ++result_.failovers;
          recovery_.add(0.0);  // re-homed within the crash instant
        },
        [&](int id, rt::Task&& task, int tier, std::string tmpl) {
          record({now, DecisionKind::kStreamOrphaned, id, d,
                  "no device admits the failed-over stream"});
          if (sink_) sink_->stream_moved(now, id, -1);
          Orphan o;
          o.task_id = id;
          o.task = std::move(task);
          o.tier = tier;
          o.tmpl = std::move(tmpl);
          o.from_device = d;
          o.orphaned_at = now;
          o.attempts = 1;  // the crash-instant batch was attempt one
          orphans_.push_back(std::move(o));
          schedule_retry(orphans_.back(), now);
        });
    update_degraded(now);
    return true;
  }

  /// Brings a failed device back: it rejoins the active set (even if it
  /// was warming or draining when it crashed — recovery is a clean
  /// restart), parked orphans get a placement attempt, and the stochastic
  /// fault process re-arms for the next incident.
  bool recover_device(int d, const std::string& why) {
    if (!device_failed(d)) return false;  // stale or double recovery
    const SimTime now = engine_.now();
    failed_[d] = 0;
    cluster_->set_device_active(d, true);
    ++result_.devices_recovered;
    record({now, DecisionKind::kDeviceRecovered, -1, d, why});
    if (capture_) capture_->record_fault(now, d, /*crash=*/false, why);
    update_degraded(now);
    readmit_parked(now);
    if (!trace_faults_) arm_device_fault(d, now);
    return true;
  }

  void schedule_retry(const Orphan& o, SimTime now) {
    const double backoff_ms =
        fault_engine_->retry_backoff_ms(o.task_id, o.attempts);
    const SimTime at = now + SimTime::from_ms(backoff_ms);
    if (at > cfg_.duration) return;  // homeless at the horizon
    const int id = o.task_id;
    engine_.schedule_at(at, [this, id] { retry_failover(id); });
  }

  void retry_failover(int id) {
    auto it = std::find_if(orphans_.begin(), orphans_.end(),
                           [id](const Orphan& o) { return o.task_id == id; });
    if (it == orphans_.end() || it->parked) return;  // re-homed already
    Orphan& o = *it;
    const SimTime now = engine_.now();
    ++o.attempts;
    ++result_.failover_retries;
    record({now, DecisionKind::kFailoverRetry, id, -1,
            "attempt " + std::to_string(o.attempts) + " of " +
                std::to_string(faults_.failover.max_attempts)});
    const bool final_attempt = o.attempts >= faults_.failover.max_attempts;
    if (try_place_orphan(o, now, final_attempt)) {
      orphans_.erase(it);
      return;
    }
    if (!final_attempt) {
      schedule_retry(o, now);
      return;
    }
    if (faults_.failover.park) {
      // Parked: no more timed retries; the next capacity-change event
      // (device recovery, warm-up activation) re-runs placement.
      o.parked = true;
      return;
    }
    drop_orphan(o, now, "failover attempts exhausted");
    orphans_.erase(it);
  }

  /// One placement attempt for an orphan. On the final attempt the
  /// failover policy may downgrade QoS (re-place at fps_scale × rate)
  /// before giving up, mirroring admission-time downgrade. Returns true
  /// when the stream found a new home.
  bool try_place_orphan(Orphan& o, SimTime now, bool final_attempt) {
    rt::Task task = o.task;  // fresh copy; the id survives re-admission
    std::optional<int> dev;
    if (policy_.overload.admission_test) {
      dev = cluster_->placer().place_ex(task).device;
    } else {
      dev = cluster_->placer().force_place(task);
    }
    bool downgraded = false;
    if (!dev && final_attempt && faults_.failover.qos_downgrade) {
      const auto dg = downgraded_.find(o.tmpl);
      if (dg != downgraded_.end()) {
        task = dg->second;
        task.id = o.task_id;
        task.name = o.tmpl + "-" + std::to_string(o.task_id);
        dev = cluster_->placer().place_ex(task).device;
        downgraded = dev.has_value();
      }
    }
    if (!dev) return false;
    const rt::Task& stored = cluster_->admit_task(*dev, std::move(task));
    live_.push_back(
        LiveStream{o.task_id, &stored, *dev, now, o.tier, o.tmpl});
    const double down_s = (now - o.orphaned_at).to_sec();
    ++result_.failovers;
    recovery_.add(down_s);
    result_.unavailability_s += down_s;
    if (downgraded) {
      ++result_.streams_downgraded;
      record({now, DecisionKind::kStreamDowngraded, o.task_id, *dev,
              o.tmpl + " downgraded on final failover attempt"});
    }
    record({now, DecisionKind::kStreamFailedOver, o.task_id, *dev,
            "from device " + std::to_string(o.from_device)});
    if (sink_) sink_->stream_moved(now, o.task_id, *dev);
    return true;
  }

  void drop_orphan(const Orphan& o, SimTime now, const std::string& why) {
    record({now, DecisionKind::kStreamDropped, o.task_id, o.from_device,
            why});
    if (sink_) sink_->stream_retired(now, o.task_id);
    // The stream *was* admitted, so it leaves as retired (keeping
    // admitted − retired == live) as well as lost.
    ++result_.streams_lost;
    ++result_.streams_retired;
    result_.unavailability_s += (now - o.orphaned_at).to_sec();
  }

  /// Capacity-change hook: parked orphans get one more placement attempt
  /// whenever the fleet grows back — a device recovers or a warm-up
  /// completes. Orphans re-try in crash order (stable, shard-blind).
  void readmit_parked(SimTime now) {
    for (auto it = orphans_.begin(); it != orphans_.end();) {
      if (!it->parked) {
        ++it;
        continue;
      }
      ++result_.failover_retries;
      record({now, DecisionKind::kFailoverRetry, it->task_id, -1,
              "parked retry on capacity change"});
      if (try_place_orphan(*it, now, /*final_attempt=*/true)) {
        it = orphans_.erase(it);
      } else {
        ++it;
      }
    }
  }

  /// Degraded mode: below the min_active_devices floor the overload
  /// guard's shed path engages (priority-aware, tight queue limit)
  /// instead of letting every surviving queue blow up; the pre-fault
  /// overload config is restored when capacity returns. The swap happens
  /// here — at control barriers — the same way set_tier writes do, so the
  /// parallel shard phase never observes a torn config.
  void update_degraded(SimTime now) {
    if (faults_.min_active_devices <= 0) return;
    const int active = cluster_->placer().active_devices();
    if (!degraded_ && active < faults_.min_active_devices) {
      degraded_ = true;
      saved_overload_ = overload_.cfg;
      if (overload_.cfg.shed == ShedMode::kNone) {
        overload_.cfg.shed = ShedMode::kPriority;
      }
      overload_.cfg.queue_limit =
          overload_.cfg.queue_limit > 0
              ? std::min(overload_.cfg.queue_limit,
                         faults_.degraded_queue_limit)
              : faults_.degraded_queue_limit;
      record({now, DecisionKind::kDegradedEnter, -1, -1,
              std::to_string(active) + " active devices, floor " +
                  std::to_string(faults_.min_active_devices)});
    } else if (degraded_ && active >= faults_.min_active_devices) {
      degraded_ = false;
      overload_.cfg = saved_overload_;
      record({now, DecisionKind::kDegradedExit, -1, -1,
              std::to_string(active) + " active devices"});
    }
  }

  // --- time series ---------------------------------------------------

  void sample_tick() {
    const SimTime now = engine_.now();
    // Counts only — a full aggregate() would merge and sort every latency
    // sample recorded so far just to throw the percentiles away, turning
    // per-window sampling quadratic in run length.
    const metrics::TaskCounters c = total_counts();

    metrics::TimeSample s;
    s.t = now;
    for (int d = 0; d < cluster_->num_devices(); ++d) {
      if (cluster_->placer().device_active(d)) {
        ++s.devices_active;
        s.utilization += cluster_->placer().utilization(d);
      }
    }
    if (s.devices_active > 0) {
      s.utilization /= static_cast<double>(s.devices_active);
    }
    s.devices_warming = static_cast<int>(warming_.size());
    s.devices_draining = static_cast<int>(draining_.size());
    s.streams_live = static_cast<int>(live_.size());
    s.releases = c.released - prev_counts_.released;
    s.completions = c.completed() - prev_counts_.completed();
    s.on_time = c.on_time - prev_counts_.on_time;
    s.dropped = c.dropped - prev_counts_.dropped;
    const std::int64_t closed = c.closed() - prev_counts_.closed();
    const std::int64_t late = (c.late - prev_counts_.late) + s.dropped;
    s.window_dmr = closed > 0
                       ? static_cast<double>(late) /
                             static_cast<double>(closed)
                       : 0.0;
    // The first post-warmup sample covers only (warmup, t]; normalising
    // by the full window would report a spurious FPS dip at the boundary.
    const double win_s = std::min(series_window_.to_sec(),
                                  (now - cfg_.warmup).to_sec());
    s.window_fps = win_s > 0.0
                       ? static_cast<double>(s.completions) / win_s
                       : 0.0;
    s.streams_rejected_cum = result_.streams_rejected;
    s.streams_oom_cum = result_.streams_oom_rejected;
    s.jobs_shed_cum = overload_.total_jobs_shed();
    s.devices_failed = failed_count();
    s.orphaned_streams = static_cast<int>(orphans_.size());
    const double placed_or_orphaned =
        static_cast<double>(live_.size() + orphans_.size());
    s.availability =
        placed_or_orphaned > 0.0
            ? static_cast<double>(live_.size()) / placed_or_orphaned
            : 1.0;
    result_.series.samples.push_back(s);
    prev_counts_ = c;

    schedule_at_or_skip(now + series_window_, [this] { sample_tick(); });
  }

  // --- wrap-up -------------------------------------------------------

  void record(FleetDecision d) {
    if (sink_) {
      sink_->control(d.at, to_string(d.kind), d.task_id, d.device, d.detail);
    }
    overload_.record(std::move(d));
  }

  void finish() {
    // Orphans still homeless at the horizon are lost: their downtime is
    // charged through the end of the run and they leave the system as
    // retired streams. Recorded before the final shed flush so the audit
    // trail stays time-ordered at the horizon.
    for (const auto& o : orphans_) {
      drop_orphan(o, cfg_.duration,
                  o.parked ? "orphaned at horizon (parked)"
                           : "orphaned at horizon");
    }
    orphans_.clear();
    overload_.flush_all();  // sheds after the last control decision
    if (sink_) {
      sink_->set_horizon(cfg_.duration);
      for (int d = 0; d < cluster_->num_devices(); ++d) {
        sink_->set_device_name(d, cluster_->device(d).spec.name);
      }
    }
    result_.name = spec_.name;
    if (sharded()) {
      // Canonical cross-shard reduction: fold per-device collectors in
      // device-index order into one collector, then report exactly as the
      // classic path reports from its shared collector — so a re-placed
      // stream's whole (possibly cross-shard) history is attributed to its
      // final home and the sample multisets match byte for byte.
      obs::PhaseProfiler::Scope reduce(
          prof_, obs::PhaseProfiler::Phase::kCollectorReduce);
      metrics::Collector merged(cfg_.warmup);
      for (const auto& col : device_collectors_) merged.merge_from(col);
      result_.fleet = cluster_->fleet_report(cfg_.duration, &merged);
      result_.fleet.fleet = merged.aggregate(cfg_.duration);
    } else {
      result_.fleet = cluster_->fleet_report(cfg_.duration);
      // The per-device rollup double-counts nothing (moved-away ids are
      // forgotten at the source), but the exact fleet snapshot comes from
      // the shared collector.
      result_.fleet.fleet = collector_->aggregate(cfg_.duration);
    }
    result_.fleet.tasks_rejected =
        static_cast<int>(result_.streams_rejected);
    result_.fleet.tasks_oom_rejected =
        static_cast<int>(result_.streams_oom_rejected);
    result_.releases = cluster_->releases_issued();
    result_.stage_migrations = cluster_->stage_migrations();
    result_.medium_promotions = cluster_->medium_promotions();
    std::size_t events = engine_.processed_count();
    for (const auto& eng : shard_engines_) events += eng->processed_count();
    result_.sim_events = static_cast<double>(events);
    result_.jobs_shed = overload_.total_jobs_shed();
    result_.recovery_p50_s = recovery_.p50();
    result_.recovery_p99_s = recovery_.p99();
    result_.peak_devices =
        std::max(peak_provisioned_, provisioned_devices());
    result_.final_devices = cluster_->placer().active_devices();
  }

  const ScenarioSpec& spec_;
  ScenarioConfig cfg_;
  FleetPolicySpec policy_;
  TimelineSpec timeline_;
  FaultSpec faults_;
  std::uint64_t generator_seed_ = 0;

  sim::Engine engine_;  // control plane (and, unsharded, every device)
  std::unique_ptr<metrics::Collector> collector_;
  int shards_ = 1;
  std::vector<std::unique_ptr<sim::Engine>> shard_engines_;
  std::deque<metrics::Collector> device_collectors_;  // sharded runs only
  std::unique_ptr<common::ThreadPool> shard_pool_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<AutoscalerPolicy> autoscaler_;
  OverloadState overload_;
  common::Rng churn_rng_;

  gpu::DeviceSpec scale_spec_;
  std::vector<int> pool_sizes_;
  std::map<std::string, rt::Task> prototypes_;
  std::map<std::string, rt::Task> downgraded_;

  std::vector<LiveStream> live_;  // admission order
  int next_task_id_ = 0;
  trace::TraceRecorder* capture_ = nullptr;
  obs::SpanSink* sink_ = nullptr;       // --trace-spans (null = off)
  obs::PhaseProfiler* prof_ = nullptr;  // --profile (null = off)
  /// Replay: recorded id -> id this run assigned (identity on an exact
  /// replay; diverges when a scaled trace meets admission rejections).
  std::unordered_map<int, int> trace_ids_;
  std::vector<int> warming_;
  std::vector<int> draining_;

  bool trace_faults_ = false;  // replayed trace carries fault events
  std::unique_ptr<FaultEngine> fault_engine_;
  std::vector<char> failed_;          // per device: down, not yet recovered
  std::vector<int> down_gen_;         // crash generation (stale-timer guard)
  std::vector<int> fault_incidents_;  // stochastic incidents per device
  std::vector<Orphan> orphans_;       // crash order
  common::Percentiles recovery_;      // crash-to-re-home seconds
  bool degraded_ = false;
  OverloadConfig saved_overload_;

  SimTime last_scale_ = SimTime::from_ns(-1);
  int peak_provisioned_ = 0;
  SimTime series_window_;
  metrics::TaskCounters prev_counts_;

  FleetRunResult result_;
};

}  // namespace

FleetRunResult run_fleet_scenario(const ScenarioSpec& spec,
                                  const workload::RunSeeds& seeds,
                                  trace::TraceRecorder* capture,
                                  const obs::Instruments& instruments) {
  FleetRuntime runtime(spec, seeds, capture, instruments);
  return runtime.run();
}

FleetRunResult run_fleet_scenario(const ScenarioSpec& spec,
                                  const workload::RunSeeds& seeds,
                                  trace::TraceRecorder* capture) {
  return run_fleet_scenario(spec, seeds, capture, obs::Instruments{});
}

FleetRunResult run_fleet_scenario(const ScenarioSpec& spec,
                                  const workload::RunSeeds& seeds) {
  return run_fleet_scenario(spec, seeds, nullptr);
}

FleetRunResult run_fleet_scenario(const ScenarioSpec& spec) {
  workload::RunSeeds seeds;
  seeds.sim = spec.base.seed;
  seeds.generator = spec.generator ? spec.generator->seed : 0;
  return run_fleet_scenario(spec, seeds, nullptr);
}

}  // namespace sgprs::fleet
