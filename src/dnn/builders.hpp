// Network builders for the benchmark DNNs.
//
// ResNet18 @ 224x224 is the paper's benchmark task; the others populate the
// multi-tenant examples and tests with realistically varied layer mixes.
#pragma once

#include <functional>
#include <string>

#include "dnn/network.hpp"

namespace sgprs::dnn {

/// Shape-tracking convenience wrapper around Network::add.
class NetworkBuilder {
 public:
  explicit NetworkBuilder(std::string name, TensorShape input)
      : net_(std::move(name)), input_(input) {}

  /// `from == -1` means "network input".
  NodeId conv(const std::string& name, int out_c, int kernel, int stride,
              int pad, NodeId from, int groups = 1);
  NodeId maxpool(const std::string& name, int kernel, int stride, int pad,
                 NodeId from);
  NodeId avgpool(const std::string& name, int kernel, int stride, int pad,
                 NodeId from);
  NodeId global_avgpool(const std::string& name, NodeId from);
  NodeId batchnorm(const std::string& name, NodeId from);
  NodeId relu(const std::string& name, NodeId from);
  NodeId add(const std::string& name, NodeId a, NodeId b);
  NodeId linear(const std::string& name, int out_features, NodeId from);
  NodeId softmax(const std::string& name, NodeId from);

  TensorShape shape_of(NodeId id) const;
  Network build() && { return std::move(net_); }
  const Network& peek() const { return net_; }

 private:
  NodeId push(Layer l, std::vector<NodeId> preds);
  Network net_;
  TensorShape input_;
};

/// ResNet18, 224x224x3 input, 1000 classes (He et al., the paper benchmark).
Network resnet18(int input_hw = 224, int num_classes = 1000);

/// ResNet34, same input convention.
Network resnet34(int input_hw = 224, int num_classes = 1000);

/// ResNet50 with bottleneck blocks (1x1 -> 3x3 -> 1x1, 4x expansion).
Network resnet50(int input_hw = 224, int num_classes = 1000);

/// AlexNet (large early kernels + heavy FC tail — an interesting stress
/// case for the partitioner because the FC layers scale poorly).
Network alexnet(int input_hw = 224, int num_classes = 1000);

/// VGG-11 (conv-heavy, no residuals — exercises linear-chain partitioning).
Network vgg11(int input_hw = 224, int num_classes = 1000);

/// MobileNetV1-style depthwise-separable net (many small kernels).
Network mobilenet_like(int input_hw = 224, int num_classes = 1000);

/// LeNet-5 on 32x32x1 (tiny task for mixed-criticality scenarios).
Network lenet5(int num_classes = 10);

/// Plain MLP: 3 linear+relu blocks (pathological: nothing scales well).
Network mlp3(int in_features = 4096, int hidden = 2048, int num_classes = 100);

/// Name → builder for every benchmark network above (default shapes).
/// Shared by the CLI, benches and examples; returns an empty function on
/// unknown names so callers can report the error.
std::function<Network()> network_builder_by_name(const std::string& name);

/// All accepted names, pipe-separated (for --help text).
const char* network_names();

}  // namespace sgprs::dnn
