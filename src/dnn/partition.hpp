// Stage partitioner: splits a network DAG into sequential stages
// (sub-tasks), the unit SGPRS schedules (paper Section IV: "dividing a
// network into multiple stages to improve flexibility"; the evaluation uses
// six stages).
#pragma once

#include <vector>

#include "dnn/layer.hpp"
#include "dnn/network.hpp"

namespace sgprs::dnn {

/// A stage: a contiguous run of nodes in topological order. Stages form a
/// chain; stage s+1 consumes exactly the output of stage s (guaranteed by
/// Network::cut_allowed_after).
struct StagePlan {
  /// stages[s] = node ids belonging to stage s, in execution order.
  std::vector<std::vector<NodeId>> stages;

  int stage_count() const { return static_cast<int>(stages.size()); }
};

/// Partitions `net` into exactly `num_stages` stages, minimizing the
/// maximum per-stage 1-SM work (balanced stages make the proportional
/// virtual-deadline split meaningful). Cuts are restricted to positions
/// where the DAG narrows to a single tensor, so residual blocks are never
/// torn apart. If fewer legal cuts exist than requested, the result has as
/// many stages as achievable.
StagePlan partition_into_stages(const Network& net, const CostModel& cost,
                                int num_stages);

/// Total 1-SM work of a stage (seconds, launch overheads excluded).
double stage_work_seconds(const Network& net, const CostModel& cost,
                          const std::vector<NodeId>& stage);

/// Kernel batch for one stage in execution order.
std::vector<gpu::KernelDesc> stage_kernels(const Network& net,
                                           const CostModel& cost,
                                           const std::vector<NodeId>& stage,
                                           std::uint64_t tag = 0);

}  // namespace sgprs::dnn
