#include "dnn/builders.hpp"

#include "common/check.hpp"

namespace sgprs::dnn {

NodeId NetworkBuilder::push(Layer l, std::vector<NodeId> preds) {
  // Translate the "-1 == input" convention: input has no graph node.
  std::vector<NodeId> real;
  for (NodeId p : preds) {
    if (p >= 0) real.push_back(p);
  }
  return net_.add(std::move(l), std::move(real));
}

TensorShape NetworkBuilder::shape_of(NodeId id) const {
  if (id < 0) return input_;
  return net_.layer(id).out_shape;
}

NodeId NetworkBuilder::conv(const std::string& name, int out_c, int kernel,
                            int stride, int pad, NodeId from, int groups) {
  const TensorShape in = shape_of(from);
  Layer l;
  l.name = name;
  l.op = gpu::OpClass::kConv;
  l.flops = conv2d_flops(in, out_c, kernel, stride, pad, groups);
  l.out_shape = {out_c, conv_out_dim(in.h, kernel, stride, pad),
                 conv_out_dim(in.w, kernel, stride, pad)};
  return push(std::move(l), {from});
}

NodeId NetworkBuilder::maxpool(const std::string& name, int kernel, int stride,
                               int pad, NodeId from) {
  const TensorShape in = shape_of(from);
  Layer l;
  l.name = name;
  l.op = gpu::OpClass::kMaxPool;
  l.flops = pool_flops(in, kernel, stride, pad);
  l.out_shape = {in.c, conv_out_dim(in.h, kernel, stride, pad),
                 conv_out_dim(in.w, kernel, stride, pad)};
  return push(std::move(l), {from});
}

NodeId NetworkBuilder::avgpool(const std::string& name, int kernel, int stride,
                               int pad, NodeId from) {
  const TensorShape in = shape_of(from);
  Layer l;
  l.name = name;
  l.op = gpu::OpClass::kAvgPool;
  l.flops = pool_flops(in, kernel, stride, pad);
  l.out_shape = {in.c, conv_out_dim(in.h, kernel, stride, pad),
                 conv_out_dim(in.w, kernel, stride, pad)};
  return push(std::move(l), {from});
}

NodeId NetworkBuilder::global_avgpool(const std::string& name, NodeId from) {
  const TensorShape in = shape_of(from);
  Layer l;
  l.name = name;
  l.op = gpu::OpClass::kAvgPool;
  l.flops = global_avgpool_flops(in);
  l.out_shape = {in.c, 1, 1};
  return push(std::move(l), {from});
}

NodeId NetworkBuilder::batchnorm(const std::string& name, NodeId from) {
  const TensorShape in = shape_of(from);
  Layer l;
  l.name = name;
  l.op = gpu::OpClass::kBatchNorm;
  l.flops = batchnorm_flops(in);
  l.out_shape = in;
  return push(std::move(l), {from});
}

NodeId NetworkBuilder::relu(const std::string& name, NodeId from) {
  const TensorShape in = shape_of(from);
  Layer l;
  l.name = name;
  l.op = gpu::OpClass::kReLU;
  l.flops = relu_flops(in);
  l.out_shape = in;
  return push(std::move(l), {from});
}

NodeId NetworkBuilder::add(const std::string& name, NodeId a, NodeId b) {
  const TensorShape sa = shape_of(a);
  SGPRS_CHECK_MSG(sa == shape_of(b), "residual add requires equal shapes");
  Layer l;
  l.name = name;
  l.op = gpu::OpClass::kAdd;
  l.flops = add_flops(sa);
  l.out_shape = sa;
  return push(std::move(l), {a, b});
}

NodeId NetworkBuilder::linear(const std::string& name, int out_features,
                              NodeId from) {
  const TensorShape in = shape_of(from);
  Layer l;
  l.name = name;
  l.op = gpu::OpClass::kLinear;
  l.flops = linear_flops(static_cast<int>(in.elements()), out_features);
  l.out_shape = {out_features, 1, 1};
  return push(std::move(l), {from});
}

NodeId NetworkBuilder::softmax(const std::string& name, NodeId from) {
  const TensorShape in = shape_of(from);
  Layer l;
  l.name = name;
  l.op = gpu::OpClass::kSoftmax;
  l.flops = softmax_flops(static_cast<int>(in.elements()));
  l.out_shape = in;
  return push(std::move(l), {from});
}

namespace {

/// One ResNet basic block (two 3x3 convs + skip). `down` halves the spatial
/// size and doubles channels via a strided 1x1 projection on the skip path.
NodeId basic_block(NetworkBuilder& b, const std::string& prefix, int out_c,
                   bool down, NodeId in) {
  const int stride = down ? 2 : 1;
  NodeId x = b.conv(prefix + ".conv1", out_c, 3, stride, 1, in);
  x = b.batchnorm(prefix + ".bn1", x);
  x = b.relu(prefix + ".relu1", x);
  x = b.conv(prefix + ".conv2", out_c, 3, 1, 1, x);
  x = b.batchnorm(prefix + ".bn2", x);
  NodeId skip = in;
  if (down) {
    skip = b.conv(prefix + ".downsample", out_c, 1, 2, 0, in);
    skip = b.batchnorm(prefix + ".down_bn", skip);
  }
  x = b.add(prefix + ".add", x, skip);
  return b.relu(prefix + ".relu2", x);
}

Network resnet_common(const std::string& name, int input_hw, int num_classes,
                      const std::array<int, 4>& blocks_per_stage) {
  NetworkBuilder b(name, TensorShape{3, input_hw, input_hw});
  NodeId x = b.conv("conv1", 64, 7, 2, 3, -1);
  x = b.batchnorm("bn1", x);
  x = b.relu("relu1", x);
  x = b.maxpool("maxpool", 3, 2, 1, x);
  const std::array<int, 4> channels = {64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    for (int blk = 0; blk < blocks_per_stage[stage]; ++blk) {
      const bool down = stage > 0 && blk == 0;
      const std::string prefix =
          "layer" + std::to_string(stage + 1) + "." + std::to_string(blk);
      x = basic_block(b, prefix, channels[stage], down, x);
    }
  }
  x = b.global_avgpool("avgpool", x);
  x = b.linear("fc", num_classes, x);
  return std::move(b).build();
}

}  // namespace

Network resnet18(int input_hw, int num_classes) {
  return resnet_common("resnet18", input_hw, num_classes, {2, 2, 2, 2});
}

Network resnet34(int input_hw, int num_classes) {
  return resnet_common("resnet34", input_hw, num_classes, {3, 4, 6, 3});
}

namespace {

/// ResNet bottleneck block: 1x1 reduce, 3x3, 1x1 expand (4x), with a
/// projection skip on the first block of each stage.
NodeId bottleneck_block(NetworkBuilder& b, const std::string& prefix,
                        int mid_c, int stride, bool project, NodeId in) {
  const int out_c = 4 * mid_c;
  NodeId x = b.conv(prefix + ".conv1", mid_c, 1, 1, 0, in);
  x = b.batchnorm(prefix + ".bn1", x);
  x = b.relu(prefix + ".relu1", x);
  x = b.conv(prefix + ".conv2", mid_c, 3, stride, 1, x);
  x = b.batchnorm(prefix + ".bn2", x);
  x = b.relu(prefix + ".relu2", x);
  x = b.conv(prefix + ".conv3", out_c, 1, 1, 0, x);
  x = b.batchnorm(prefix + ".bn3", x);
  NodeId skip = in;
  if (project) {
    skip = b.conv(prefix + ".downsample", out_c, 1, stride, 0, in);
    skip = b.batchnorm(prefix + ".down_bn", skip);
  }
  x = b.add(prefix + ".add", x, skip);
  return b.relu(prefix + ".relu3", x);
}

}  // namespace

Network resnet50(int input_hw, int num_classes) {
  NetworkBuilder b("resnet50", TensorShape{3, input_hw, input_hw});
  NodeId x = b.conv("conv1", 64, 7, 2, 3, -1);
  x = b.batchnorm("bn1", x);
  x = b.relu("relu1", x);
  x = b.maxpool("maxpool", 3, 2, 1, x);
  const std::array<int, 4> blocks = {3, 4, 6, 3};
  const std::array<int, 4> mids = {64, 128, 256, 512};
  for (int stage = 0; stage < 4; ++stage) {
    for (int blk = 0; blk < blocks[stage]; ++blk) {
      const int stride = (stage > 0 && blk == 0) ? 2 : 1;
      const bool project = blk == 0;  // channel expansion on every stage 0
      const std::string prefix =
          "layer" + std::to_string(stage + 1) + "." + std::to_string(blk);
      x = bottleneck_block(b, prefix, mids[stage], stride, project, x);
    }
  }
  x = b.global_avgpool("avgpool", x);
  x = b.linear("fc", num_classes, x);
  return std::move(b).build();
}

Network alexnet(int input_hw, int num_classes) {
  NetworkBuilder b("alexnet", TensorShape{3, input_hw, input_hw});
  NodeId x = b.conv("conv1", 64, 11, 4, 2, -1);
  x = b.relu("relu1", x);
  x = b.maxpool("pool1", 3, 2, 0, x);
  x = b.conv("conv2", 192, 5, 1, 2, x);
  x = b.relu("relu2", x);
  x = b.maxpool("pool2", 3, 2, 0, x);
  x = b.conv("conv3", 384, 3, 1, 1, x);
  x = b.relu("relu3", x);
  x = b.conv("conv4", 256, 3, 1, 1, x);
  x = b.relu("relu4", x);
  x = b.conv("conv5", 256, 3, 1, 1, x);
  x = b.relu("relu5", x);
  x = b.maxpool("pool5", 3, 2, 0, x);
  x = b.linear("fc1", 4096, x);
  x = b.relu("fc1.relu", x);
  x = b.linear("fc2", 4096, x);
  x = b.relu("fc2.relu", x);
  x = b.linear("fc3", num_classes, x);
  return std::move(b).build();
}

Network vgg11(int input_hw, int num_classes) {
  NetworkBuilder b("vgg11", TensorShape{3, input_hw, input_hw});
  NodeId x = -1;
  const int cfg[] = {64, -1, 128, -1, 256, 256, -1, 512, 512, -1, 512, 512, -1};
  int conv_idx = 0;
  int pool_idx = 0;
  for (int v : cfg) {
    if (v == -1) {
      x = b.maxpool("pool" + std::to_string(pool_idx++), 2, 2, 0, x);
    } else {
      x = b.conv("conv" + std::to_string(conv_idx), v, 3, 1, 1, x);
      x = b.relu("relu" + std::to_string(conv_idx), x);
      ++conv_idx;
    }
  }
  x = b.linear("fc1", 4096, x);
  x = b.relu("fc1.relu", x);
  x = b.linear("fc2", 4096, x);
  x = b.relu("fc2.relu", x);
  x = b.linear("fc3", num_classes, x);
  return std::move(b).build();
}

Network mobilenet_like(int input_hw, int num_classes) {
  NetworkBuilder b("mobilenet", TensorShape{3, input_hw, input_hw});
  NodeId x = b.conv("conv0", 32, 3, 2, 1, -1);
  x = b.batchnorm("bn0", x);
  x = b.relu("relu0", x);
  struct Ds {
    int out_c;
    int stride;
  };
  const Ds cfg[] = {{64, 1},  {128, 2}, {128, 1}, {256, 2}, {256, 1},
                    {512, 2}, {512, 1}, {512, 1}, {512, 1}, {512, 1},
                    {512, 1}, {1024, 2}, {1024, 1}};
  int i = 0;
  for (const auto& d : cfg) {
    const std::string p = "ds" + std::to_string(i++);
    const TensorShape in = b.shape_of(x);
    x = b.conv(p + ".dw", in.c, 3, d.stride, 1, x, /*groups=*/in.c);
    x = b.batchnorm(p + ".dw_bn", x);
    x = b.relu(p + ".dw_relu", x);
    x = b.conv(p + ".pw", d.out_c, 1, 1, 0, x);
    x = b.batchnorm(p + ".pw_bn", x);
    x = b.relu(p + ".pw_relu", x);
  }
  x = b.global_avgpool("avgpool", x);
  x = b.linear("fc", num_classes, x);
  return std::move(b).build();
}

Network lenet5(int num_classes) {
  NetworkBuilder b("lenet5", TensorShape{1, 32, 32});
  NodeId x = b.conv("conv1", 6, 5, 1, 0, -1);
  x = b.relu("relu1", x);
  x = b.avgpool("pool1", 2, 2, 0, x);
  x = b.conv("conv2", 16, 5, 1, 0, x);
  x = b.relu("relu2", x);
  x = b.avgpool("pool2", 2, 2, 0, x);
  x = b.linear("fc1", 120, x);
  x = b.relu("relu3", x);
  x = b.linear("fc2", 84, x);
  x = b.relu("relu4", x);
  x = b.linear("fc3", num_classes, x);
  return std::move(b).build();
}

Network mlp3(int in_features, int hidden, int num_classes) {
  NetworkBuilder b("mlp3", TensorShape{in_features, 1, 1});
  NodeId x = b.linear("fc1", hidden, -1);
  x = b.relu("relu1", x);
  x = b.linear("fc2", hidden, x);
  x = b.relu("relu2", x);
  x = b.linear("fc3", num_classes, x);
  x = b.softmax("softmax", x);
  return std::move(b).build();
}

std::function<Network()> network_builder_by_name(const std::string& name) {
  if (name == "resnet18") return [] { return resnet18(); };
  if (name == "resnet34") return [] { return resnet34(); };
  if (name == "resnet50") return [] { return resnet50(); };
  if (name == "alexnet") return [] { return alexnet(); };
  if (name == "vgg11") return [] { return vgg11(); };
  if (name == "mobilenet") return [] { return mobilenet_like(); };
  if (name == "lenet5") return [] { return lenet5(); };
  if (name == "mlp3") return [] { return mlp3(); };
  return nullptr;
}

const char* network_names() {
  return "resnet18|resnet34|resnet50|alexnet|vgg11|mobilenet|lenet5|mlp3";
}

}  // namespace sgprs::dnn
