// Offline WCET profiler (paper Section IV-A2: "the WCETs of each task and
// its stages are measured offline").
//
// Two modes, which must agree (a test locks this):
//  * analytic  — closed-form stage time at m SMs from the cost/speedup model;
//  * simulated — actually runs the stage's kernels through a fresh Executor
//    with a single m-SM context and measures the elapsed simulation time,
//    exactly like profiling on real hardware in isolation.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/time.hpp"
#include "dnn/network.hpp"
#include "dnn/partition.hpp"
#include "gpu/device.hpp"
#include "gpu/sharing.hpp"
#include "gpu/speedup.hpp"

namespace sgprs::dnn {

using common::SimTime;

/// Placement footprint of one stream: device memory for its working set
/// and the time-averaged resident-warp demand at its reference SM size.
/// Both feed multi-resource admission (cluster::Placer).
struct TaskFootprint {
  std::int64_t mem_bytes = 0;
  std::int64_t warps = 0;
};

/// Per-stage WCETs of one task at every SM size in the context pool.
struct WcetTable {
  /// wcet[stage][sm_limit] = isolated stage execution time.
  std::vector<std::map<int, SimTime>> per_stage;
  /// Whole-network time at each SM size (sum over stages).
  std::map<int, SimTime> total;

  SimTime stage_at(int stage, int sms) const;
  SimTime total_at(int sms) const;
  int stage_count() const { return static_cast<int>(per_stage.size()); }
};

class Profiler {
 public:
  Profiler(gpu::DeviceSpec device, gpu::SpeedupModel speedup, CostModel cost)
      : device_(std::move(device)),
        speedup_(std::move(speedup)),
        cost_(cost) {}

  /// Isolated execution time of one layer at `sms` SMs (analytic).
  SimTime layer_time(const Layer& layer, int sms) const;

  /// Isolated execution time of a stage at `sms` SMs (analytic).
  SimTime stage_time(const Network& net, const std::vector<NodeId>& stage,
                     int sms) const;

  /// Builds the WCET table for a partitioned task at the given SM sizes.
  WcetTable profile(const Network& net, const StagePlan& plan,
                    const std::vector<int>& sm_sizes) const;

  /// Runs the stage through a real Executor in isolation and returns the
  /// measured makespan. Used to validate the analytic path.
  SimTime stage_time_simulated(const Network& net,
                               const std::vector<NodeId>& stage,
                               int sms) const;

  /// End-to-end network speedup at `sms` vs one SM (reproduces Fig. 1's
  /// "overall ResNet18" curve).
  double network_speedup(const Network& net, int sms) const;

  /// Memory + occupancy footprint of one stream of this network released
  /// at `period_sec` intervals and executing at `ref_sms` SMs:
  ///  * mem_bytes — fp32 weights (conv/linear) + peak live activations
  ///    along the topological order + a fixed per-stream runtime overhead;
  ///  * warps — per-layer resident warps (one per 32 output elements,
  ///    capped at the device's warp capacity) averaged over the period,
  ///    weighted by each layer's execution time at `ref_sms`.
  TaskFootprint footprint(const Network& net, int ref_sms,
                          double period_sec) const;

  const CostModel& cost_model() const { return cost_; }
  const gpu::SpeedupModel& speedup_model() const { return speedup_; }

 private:
  gpu::DeviceSpec device_;
  gpu::SpeedupModel speedup_;
  CostModel cost_;
};

}  // namespace sgprs::dnn
