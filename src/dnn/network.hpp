// DAG representation of a DNN (paper Section II: each task is a DNN whose
// nodes are stages/sub-tasks; we keep the finer layer DAG and derive stages
// from it with the partitioner).
#pragma once

#include <string>
#include <vector>

#include "dnn/layer.hpp"

namespace sgprs::dnn {

using NodeId = int;

class Network {
 public:
  explicit Network(std::string name) : name_(std::move(name)) {}

  /// Adds a layer whose inputs are `preds` (all must already exist, which
  /// makes the graph acyclic by construction). Returns the new node id.
  NodeId add(Layer layer, std::vector<NodeId> preds);

  const std::string& name() const { return name_; }
  int node_count() const { return static_cast<int>(layers_.size()); }
  const Layer& layer(NodeId id) const { return layers_.at(id); }
  const std::vector<NodeId>& preds(NodeId id) const { return preds_.at(id); }
  const std::vector<NodeId>& succs(NodeId id) const { return succs_.at(id); }

  /// Nodes in insertion order, which is a valid topological order.
  std::vector<NodeId> topo_order() const;

  /// Nodes with no successors (a well-formed inference net has exactly one).
  std::vector<NodeId> outputs() const;

  double total_flops() const;

  /// True iff a partition cut is allowed immediately after topo position
  /// `pos`: every edge leaving the prefix [0..pos] must originate at the
  /// node at `pos` itself, so the suffix depends on a single tensor.
  bool cut_allowed_after(int pos) const;

 private:
  std::string name_;
  std::vector<Layer> layers_;
  std::vector<std::vector<NodeId>> preds_;
  std::vector<std::vector<NodeId>> succs_;
};

}  // namespace sgprs::dnn
