#include "dnn/partition.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"

namespace sgprs::dnn {

double stage_work_seconds(const Network& net, const CostModel& cost,
                          const std::vector<NodeId>& stage) {
  double total = 0.0;
  for (NodeId id : stage) total += cost.work_seconds(net.layer(id));
  return total;
}

std::vector<gpu::KernelDesc> stage_kernels(const Network& net,
                                           const CostModel& cost,
                                           const std::vector<NodeId>& stage,
                                           std::uint64_t tag) {
  std::vector<gpu::KernelDesc> out;
  out.reserve(stage.size());
  for (NodeId id : stage) out.push_back(cost.kernel_for(net.layer(id), tag));
  return out;
}

StagePlan partition_into_stages(const Network& net, const CostModel& cost,
                                int num_stages) {
  SGPRS_CHECK(num_stages >= 1);
  const int n = net.node_count();
  SGPRS_CHECK(n >= 1);

  // Legal cut positions (cut after topo index p) plus the implicit final
  // boundary after the last node.
  std::vector<int> cuts;
  for (int p = 0; p < n - 1; ++p) {
    if (net.cut_allowed_after(p)) cuts.push_back(p);
  }

  // Prefix work sums for O(1) segment work queries.
  std::vector<double> prefix(n + 1, 0.0);
  for (int i = 0; i < n; ++i) {
    prefix[i + 1] = prefix[i] + cost.work_seconds(net.layer(i));
  }
  auto segment_work = [&](int lo, int hi) {  // nodes [lo, hi)
    return prefix[hi] - prefix[lo];
  };

  const int k = std::min(num_stages, static_cast<int>(cuts.size()) + 1);

  // Boundary positions: 0 (start), each chosen cut+1, n (end). DP over
  // boundaries minimizing the bottleneck stage work.
  // boundaries[i] for i in [0, cuts.size()+1]: candidate segment starts.
  std::vector<int> starts = {0};
  for (int c : cuts) starts.push_back(c + 1);
  const int m = static_cast<int>(starts.size());  // candidate starts

  constexpr double kInf = std::numeric_limits<double>::infinity();
  // best[j][i]: minimal bottleneck splitting nodes [starts[i], n) into j
  // stages. choice[j][i]: next boundary index.
  std::vector<std::vector<double>> best(
      k + 1, std::vector<double>(m + 1, kInf));
  std::vector<std::vector<int>> choice(k + 1, std::vector<int>(m + 1, -1));

  for (int i = 0; i < m; ++i) best[1][i] = segment_work(starts[i], n);
  for (int j = 2; j <= k; ++j) {
    for (int i = 0; i < m; ++i) {
      for (int nx = i + 1; nx < m; ++nx) {
        const double head = segment_work(starts[i], starts[nx]);
        if (head >= best[j][i]) continue;  // cannot improve the bottleneck
        const double rest = best[j - 1][nx];
        const double bottleneck = std::max(head, rest);
        if (bottleneck < best[j][i]) {
          best[j][i] = bottleneck;
          choice[j][i] = nx;
        }
      }
    }
  }

  // Walk the chosen boundaries from the start.
  StagePlan plan;
  int i = 0;
  for (int j = k; j >= 1; --j) {
    const int nx = (j == 1) ? m : choice[j][i];
    const int lo = starts[i];
    const int hi = (j == 1 || nx < 0) ? n : starts[nx];
    std::vector<NodeId> stage;
    for (int node = lo; node < hi; ++node) stage.push_back(node);
    SGPRS_CHECK(!stage.empty());
    plan.stages.push_back(std::move(stage));
    if (j == 1 || nx < 0) break;
    i = nx;
  }
  // If choice was -1 mid-way (fewer stages achievable), the last pushed
  // stage already absorbed the tail.
  int covered = 0;
  for (const auto& s : plan.stages) covered += static_cast<int>(s.size());
  SGPRS_CHECK_MSG(covered == n, "partition must cover every node exactly "
                                    << covered << " vs " << n);
  return plan;
}

}  // namespace sgprs::dnn
