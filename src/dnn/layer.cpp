#include "dnn/layer.hpp"

#include "common/check.hpp"
#include "gpu/calibration.hpp"

namespace sgprs::dnn {

double conv2d_flops(const TensorShape& in, int out_c, int kernel, int stride,
                    int pad, int groups) {
  SGPRS_CHECK(groups >= 1 && in.c % groups == 0);
  const int oh = conv_out_dim(in.h, kernel, stride, pad);
  const int ow = conv_out_dim(in.w, kernel, stride, pad);
  const double per_output = 2.0 * kernel * kernel *
                            (static_cast<double>(in.c) / groups);
  return per_output * out_c * oh * ow;
}

double depthwise_conv_flops(const TensorShape& in, int kernel, int stride,
                            int pad) {
  return conv2d_flops(in, in.c, kernel, stride, pad, in.c);
}

double pool_flops(const TensorShape& in, int kernel, int stride, int pad) {
  const int oh = conv_out_dim(in.h, kernel, stride, pad);
  const int ow = conv_out_dim(in.w, kernel, stride, pad);
  return static_cast<double>(kernel) * kernel * in.c * oh * ow;
}

double global_avgpool_flops(const TensorShape& in) {
  return static_cast<double>(in.elements());
}

double batchnorm_flops(const TensorShape& in) {
  // Inference-time batchnorm folds to one multiply + one add per element.
  return 2.0 * static_cast<double>(in.elements());
}

double relu_flops(const TensorShape& in) {
  return static_cast<double>(in.elements());
}

double add_flops(const TensorShape& in) {
  return static_cast<double>(in.elements());
}

double linear_flops(int in_features, int out_features) {
  return 2.0 * static_cast<double>(in_features) * out_features;
}

double softmax_flops(int features) {
  // exp + subtract-max + sum + divide, roughly 5 ops per element.
  return 5.0 * static_cast<double>(features);
}

CostModel CostModel::calibrated() {
  return CostModel{gpu::calibration::kGflopsPerSm,
                   gpu::calibration::kLaunchOverheadSec};
}

double CostModel::work_seconds(const Layer& layer) const {
  const double rate =
      gflops_per_sm[static_cast<int>(layer.op)] * 1e9;  // FLOP/s on one SM
  SGPRS_CHECK(rate > 0.0);
  return layer.flops / rate;
}

gpu::KernelDesc CostModel::kernel_for(const Layer& layer,
                                      std::uint64_t tag) const {
  gpu::KernelDesc k;
  k.op = layer.op;
  k.work_sm_seconds = work_seconds(layer);
  k.overhead_seconds = launch_overhead_sec;
  k.tag = tag;
  k.label = layer.name;
  return k;
}

}  // namespace sgprs::dnn
