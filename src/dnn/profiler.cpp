#include "dnn/profiler.hpp"

#include "common/check.hpp"
#include "gpu/executor.hpp"
#include "sim/engine.hpp"

namespace sgprs::dnn {

SimTime WcetTable::stage_at(int stage, int sms) const {
  SGPRS_CHECK(stage >= 0 && stage < stage_count());
  const auto& m = per_stage[stage];
  auto it = m.find(sms);
  SGPRS_CHECK_MSG(it != m.end(), "no WCET profiled for " << sms << " SMs");
  return it->second;
}

SimTime WcetTable::total_at(int sms) const {
  auto it = total.find(sms);
  SGPRS_CHECK_MSG(it != total.end(), "no WCET profiled for " << sms << " SMs");
  return it->second;
}

SimTime Profiler::layer_time(const Layer& layer, int sms) const {
  SGPRS_CHECK(sms >= 1);
  const double work = cost_.work_seconds(layer);
  const double s = speedup_.speedup(layer.op, static_cast<double>(sms));
  return SimTime::from_sec(cost_.launch_overhead_sec + work / s);
}

SimTime Profiler::stage_time(const Network& net,
                             const std::vector<NodeId>& stage,
                             int sms) const {
  SimTime t = SimTime::zero();
  for (NodeId id : stage) t += layer_time(net.layer(id), sms);
  return t;
}

WcetTable Profiler::profile(const Network& net, const StagePlan& plan,
                            const std::vector<int>& sm_sizes) const {
  WcetTable table;
  table.per_stage.resize(plan.stages.size());
  for (int sms : sm_sizes) {
    SimTime whole = SimTime::zero();
    for (int s = 0; s < plan.stage_count(); ++s) {
      const SimTime t = stage_time(net, plan.stages[s], sms);
      table.per_stage[s][sms] = t;
      whole += t;
    }
    table.total[sms] = whole;
  }
  return table;
}

SimTime Profiler::stage_time_simulated(const Network& net,
                                       const std::vector<NodeId>& stage,
                                       int sms) const {
  sim::Engine engine;
  gpu::SharingParams isolation;
  isolation.interference_gamma = 0.0;
  isolation.oversub_thrash_kappa = 0.0;
  isolation.contention_exponent = 1.0;
  gpu::Executor exec(engine, device_, speedup_, isolation);
  const auto ctx = exec.create_context(sms);
  const auto stream = exec.create_stream(ctx, gpu::StreamPriority::kHigh);
  SimTime done = SimTime::zero();
  exec.enqueue_batch(stream, stage_kernels(net, cost_, stage),
                     [&done](SimTime t) { done = t; });
  engine.run();
  return done;
}

double Profiler::network_speedup(const Network& net, int sms) const {
  const auto order = net.topo_order();
  double t1 = 0.0;
  double tm = 0.0;
  for (NodeId id : order) {
    const Layer& l = net.layer(id);
    t1 += cost_.launch_overhead_sec + cost_.work_seconds(l);
    tm += layer_time(l, sms).to_sec();
  }
  return t1 / tm;
}

}  // namespace sgprs::dnn
