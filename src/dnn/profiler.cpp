#include "dnn/profiler.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "gpu/executor.hpp"
#include "sim/engine.hpp"

namespace sgprs::dnn {

SimTime WcetTable::stage_at(int stage, int sms) const {
  SGPRS_CHECK(stage >= 0 && stage < stage_count());
  const auto& m = per_stage[stage];
  auto it = m.find(sms);
  SGPRS_CHECK_MSG(it != m.end(), "no WCET profiled for " << sms << " SMs");
  return it->second;
}

SimTime WcetTable::total_at(int sms) const {
  auto it = total.find(sms);
  SGPRS_CHECK_MSG(it != total.end(), "no WCET profiled for " << sms << " SMs");
  return it->second;
}

SimTime Profiler::layer_time(const Layer& layer, int sms) const {
  SGPRS_CHECK(sms >= 1);
  const double work = cost_.work_seconds(layer);
  const double s = speedup_.speedup(layer.op, static_cast<double>(sms));
  return SimTime::from_sec(cost_.launch_overhead_sec + work / s);
}

SimTime Profiler::stage_time(const Network& net,
                             const std::vector<NodeId>& stage,
                             int sms) const {
  SimTime t = SimTime::zero();
  for (NodeId id : stage) t += layer_time(net.layer(id), sms);
  return t;
}

WcetTable Profiler::profile(const Network& net, const StagePlan& plan,
                            const std::vector<int>& sm_sizes) const {
  WcetTable table;
  table.per_stage.resize(plan.stages.size());
  for (int sms : sm_sizes) {
    SimTime whole = SimTime::zero();
    for (int s = 0; s < plan.stage_count(); ++s) {
      const SimTime t = stage_time(net, plan.stages[s], sms);
      table.per_stage[s][sms] = t;
      whole += t;
    }
    table.total[sms] = whole;
  }
  return table;
}

SimTime Profiler::stage_time_simulated(const Network& net,
                                       const std::vector<NodeId>& stage,
                                       int sms) const {
  sim::Engine engine;
  gpu::SharingParams isolation;
  isolation.interference_gamma = 0.0;
  isolation.oversub_thrash_kappa = 0.0;
  isolation.contention_exponent = 1.0;
  gpu::Executor exec(engine, device_, speedup_, isolation);
  const auto ctx = exec.create_context(sms);
  const auto stream = exec.create_stream(ctx, gpu::StreamPriority::kHigh);
  SimTime done = SimTime::zero();
  exec.enqueue_batch(stream, stage_kernels(net, cost_, stage),
                     [&done](SimTime t) { done = t; });
  engine.run();
  return done;
}

TaskFootprint Profiler::footprint(const Network& net, int ref_sms,
                                  double period_sec) const {
  SGPRS_CHECK(ref_sms >= 1);
  SGPRS_CHECK(period_sec > 0.0);
  constexpr double kBytesPerElem = 4.0;  // fp32 weights and activations
  // Fixed per-stream runtime overhead (context, cuDNN workspace, ...).
  constexpr std::int64_t kStreamOverheadBytes = 64LL << 20;
  const double warp_cap = static_cast<double>(device_.total_warps());

  const auto order = net.topo_order();
  double weight_bytes = 0.0;
  double peak_act_elems = 0.0;
  double warp_time = 0.0;  // warp-seconds over one period
  for (NodeId id : order) {
    const Layer& l = net.layer(id);
    const double out_elems = static_cast<double>(l.out_shape.elements());
    if (l.op == gpu::OpClass::kConv || l.op == gpu::OpClass::kLinear) {
      // FLOPs count a MAC as 2, so flops / (2 * spatial positions) recovers
      // the weight element count exactly for conv (incl. depthwise/grouped)
      // and linear layers.
      const double positions = std::max<double>(
          1.0, static_cast<double>(l.out_shape.h) * l.out_shape.w);
      weight_bytes += kBytesPerElem * l.flops / (2.0 * positions);
    }
    // Live set while this layer runs: its inputs plus its output.
    double live = out_elems;
    for (NodeId p : net.preds(id)) {
      live += static_cast<double>(net.layer(p).out_shape.elements());
    }
    peak_act_elems = std::max(peak_act_elems, live);
    // One warp per 32 output elements, bounded by what the device can
    // actually keep resident.
    const double warps =
        std::min(std::ceil(out_elems / 32.0), warp_cap);
    warp_time += warps * layer_time(l, ref_sms).to_sec();
  }

  TaskFootprint fp;
  fp.mem_bytes = kStreamOverheadBytes +
                 static_cast<std::int64_t>(
                     std::llround(weight_bytes + kBytesPerElem * peak_act_elems));
  // Time-averaged resident warps over the release period: a stream that is
  // idle most of its period holds proportionally less occupancy. The
  // integral is a *solo-run* residency; on a shared device the pool's
  // concurrent kernel slots contend for the same SMs and each stream's
  // resident share shrinks accordingly, so normalize by the default pool's
  // slot count (2 contexts x 4 streams). Without this the occupancy budget
  // would just re-measure compute utilization and bind at the same stream
  // count the utilization test already guards.
  constexpr double kContendedSlots = 8.0;
  fp.warps = std::llround(warp_time / period_sec / kContendedSlots);
  return fp;
}

double Profiler::network_speedup(const Network& net, int sms) const {
  const auto order = net.topo_order();
  double t1 = 0.0;
  double tm = 0.0;
  for (NodeId id : order) {
    const Layer& l = net.layer(id);
    t1 += cost_.launch_overhead_sec + cost_.work_seconds(l);
    tm += layer_time(l, sms).to_sec();
  }
  return t1 / tm;
}

}  // namespace sgprs::dnn
