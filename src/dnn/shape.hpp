// Tensor shapes for inference-time cost derivation.
//
// NCHW with batch fixed at 1 (real-time inference serves single frames);
// layer cost models consume these dimensions to derive FLOPs and bytes.
#pragma once

#include <cstdint>
#include <string>

#include "common/check.hpp"

namespace sgprs::dnn {

/// Activation shape (single image: channels x height x width). Batch size is
/// 1 throughout — the paper schedules per-frame inference, not batches.
struct TensorShape {
  int c = 0;
  int h = 0;
  int w = 0;

  std::int64_t elements() const {
    return static_cast<std::int64_t>(c) * h * w;
  }

  friend bool operator==(const TensorShape&, const TensorShape&) = default;
};

inline std::string to_string(const TensorShape& s) {
  return std::to_string(s.c) + "x" + std::to_string(s.h) + "x" +
         std::to_string(s.w);
}

/// Output spatial size of a conv/pool with the usual formula.
inline int conv_out_dim(int in, int kernel, int stride, int pad) {
  SGPRS_CHECK(stride > 0);
  const int out = (in + 2 * pad - kernel) / stride + 1;
  SGPRS_CHECK_MSG(out > 0, "degenerate conv output dim");
  return out;
}

}  // namespace sgprs::dnn
