// Layers: op class + analytically derived FLOP counts.
//
// The simulator never computes tensor values; a layer is fully described by
// its op class, its FLOPs (which set kernel work through the cost model) and
// its output shape (which sets downstream layers' FLOPs).
#pragma once

#include <cstdint>
#include <string>

#include "dnn/shape.hpp"
#include "gpu/kernel.hpp"
#include "gpu/op_class.hpp"

namespace sgprs::dnn {

struct Layer {
  std::string name;
  gpu::OpClass op = gpu::OpClass::kOther;
  double flops = 0.0;
  TensorShape out_shape;
};

// --- FLOP formulas (multiply-accumulate counted as 2 FLOPs) ---

double conv2d_flops(const TensorShape& in, int out_c, int kernel, int stride,
                    int pad, int groups = 1);
double depthwise_conv_flops(const TensorShape& in, int kernel, int stride,
                            int pad);
double pool_flops(const TensorShape& in, int kernel, int stride, int pad);
double global_avgpool_flops(const TensorShape& in);
double batchnorm_flops(const TensorShape& in);
double relu_flops(const TensorShape& in);
double add_flops(const TensorShape& in);
double linear_flops(int in_features, int out_features);
double softmax_flops(int features);

/// Converts FLOPs into kernel work (1-SM seconds) using the calibrated
/// per-op throughputs, and attaches the launch overhead.
struct CostModel {
  /// GFLOP/s per SM for each op class (defaults from gpu/calibration.hpp).
  std::array<double, gpu::kOpClassCount> gflops_per_sm;
  double launch_overhead_sec;

  static CostModel calibrated();

  gpu::KernelDesc kernel_for(const Layer& layer, std::uint64_t tag = 0) const;
  /// 1-SM execution time for a layer, excluding launch overhead.
  double work_seconds(const Layer& layer) const;
};

}  // namespace sgprs::dnn
