#include "dnn/network.hpp"

#include "common/check.hpp"

namespace sgprs::dnn {

NodeId Network::add(Layer layer, std::vector<NodeId> preds) {
  const NodeId id = static_cast<NodeId>(layers_.size());
  for (NodeId p : preds) {
    SGPRS_CHECK_MSG(p >= 0 && p < id,
                    "predecessor " << p << " of node " << id
                                   << " must already exist");
  }
  layers_.push_back(std::move(layer));
  preds_.push_back(std::move(preds));
  succs_.emplace_back();
  for (NodeId p : preds_.back()) succs_[p].push_back(id);
  return id;
}

std::vector<NodeId> Network::topo_order() const {
  std::vector<NodeId> order(layers_.size());
  for (int i = 0; i < node_count(); ++i) order[i] = i;
  return order;
}

std::vector<NodeId> Network::outputs() const {
  std::vector<NodeId> out;
  for (int i = 0; i < node_count(); ++i) {
    if (succs_[i].empty()) out.push_back(i);
  }
  return out;
}

double Network::total_flops() const {
  double total = 0.0;
  for (const auto& l : layers_) total += l.flops;
  return total;
}

bool Network::cut_allowed_after(int pos) const {
  SGPRS_CHECK(pos >= 0 && pos < node_count());
  if (pos == node_count() - 1) return false;  // nothing after the cut
  // Every edge (u -> v) with u <= pos and v > pos must have u == pos.
  for (NodeId u = 0; u < pos; ++u) {
    for (NodeId v : succs_[u]) {
      if (v > pos) return false;
    }
  }
  return true;
}

}  // namespace sgprs::dnn
