#include "metrics/trace_recorder.hpp"

#include "common/check.hpp"
#include "common/json_writer.hpp"

namespace sgprs::metrics {

void TraceRecorder::on_kernel_start(gpu::SimTime t, int context, int stream,
                                    const gpu::KernelDesc& k) {
  const auto key = std::make_pair(context, stream);
  SGPRS_CHECK_MSG(!open_.contains(key),
                  "two kernels running on one stream (ctx " << context
                                                            << ")");
  open_.emplace(key, std::make_pair(t, k));
}

void TraceRecorder::on_kernel_end(gpu::SimTime t, int context, int stream,
                                  const gpu::KernelDesc& k) {
  const auto key = std::make_pair(context, stream);
  auto it = open_.find(key);
  SGPRS_CHECK_MSG(it != open_.end(), "kernel end without start");
  const auto& [start, desc] = it->second;
  Event e;
  e.name = desc.label.empty() ? std::string(gpu::to_string(k.op))
                              : desc.label;
  e.context = context;
  e.stream = stream;
  e.start_us = start.ns / 1000;
  e.dur_us = (t - start).ns / 1000;
  e.tag = desc.tag;
  events_.push_back(std::move(e));
  open_.erase(it);
}

void TraceRecorder::write_json(std::ostream& out) const {
  common::JsonWriter w(out);
  w.begin_object().key("traceEvents").begin_array();
  for (const auto& e : events_) {
    w.begin_object()
        .field("name", e.name)
        .field("cat", "kernel")
        .field("ph", "X")
        .field("ts", e.start_us)
        .field("dur", e.dur_us)
        .field("pid", e.context)
        .field("tid", e.stream);
    w.key("args").begin_object().field("job", static_cast<std::int64_t>(
                                                  e.tag));
    w.end_object();
    w.end_object();
  }
  w.end_array().field("displayTimeUnit", "ms").end_object();
}

}  // namespace sgprs::metrics
