#include "metrics/fleet.hpp"

#include <algorithm>

namespace sgprs::metrics {

Snapshot roll_up_snapshots(const std::vector<Snapshot>& per_device) {
  Snapshot fleet;
  for (const auto& s : per_device) {
    fleet.counts.released += s.counts.released;
    fleet.counts.dropped += s.counts.dropped;
    fleet.counts.on_time += s.counts.on_time;
    fleet.counts.late += s.counts.late;
    fleet.fps += s.fps;
    fleet.fps_on_time += s.fps_on_time;
    // Distribution merge, not percentile averaging: integer bucket-count
    // sums make the fleet p50/p99 below exact for any device split.
    fleet.latency_hist_ms.merge(s.latency_hist_ms);
  }
  const auto closed = fleet.counts.closed();
  fleet.dmr = closed == 0
                  ? 0.0
                  : static_cast<double>(fleet.counts.late +
                                        fleet.counts.dropped) /
                        static_cast<double>(closed);
  if (!fleet.latency_hist_ms.empty()) {
    fleet.mean_latency_ms = fleet.latency_hist_ms.mean();
    fleet.p50_latency_ms = fleet.latency_hist_ms.p50();
    fleet.p99_latency_ms = fleet.latency_hist_ms.p99();
    fleet.max_latency_ms = fleet.latency_hist_ms.max();
  }
  return fleet;
}

FleetReport roll_up(std::vector<DeviceReport> devices, int tasks_rejected,
                    int tasks_oom_rejected) {
  FleetReport report;
  std::vector<Snapshot> snaps;
  snaps.reserve(devices.size());
  double weighted_util = 0.0;
  double total_sms = 0.0;
  for (const auto& d : devices) {
    snaps.push_back(d.snapshot);
    weighted_util += static_cast<double>(d.total_sms) * d.utilization;
    total_sms += static_cast<double>(d.total_sms);
    report.tasks_assigned += d.tasks_assigned;
  }
  report.fleet = roll_up_snapshots(snaps);
  report.mean_utilization = total_sms > 0.0 ? weighted_util / total_sms : 0.0;
  report.tasks_rejected = tasks_rejected;
  report.tasks_oom_rejected = tasks_oom_rejected;
  report.devices = std::move(devices);
  return report;
}

}  // namespace sgprs::metrics
