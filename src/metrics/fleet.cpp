#include "metrics/fleet.hpp"

#include <algorithm>

namespace sgprs::metrics {

Snapshot roll_up_snapshots(const std::vector<Snapshot>& per_device) {
  Snapshot fleet;
  double weighted_mean = 0.0;
  double weighted_p50 = 0.0;
  double weighted_p99 = 0.0;
  std::int64_t completed = 0;
  for (const auto& s : per_device) {
    fleet.counts.released += s.counts.released;
    fleet.counts.dropped += s.counts.dropped;
    fleet.counts.on_time += s.counts.on_time;
    fleet.counts.late += s.counts.late;
    fleet.fps += s.fps;
    fleet.fps_on_time += s.fps_on_time;
    const double w = static_cast<double>(s.counts.completed());
    weighted_mean += w * s.mean_latency_ms;
    weighted_p50 += w * s.p50_latency_ms;
    weighted_p99 += w * s.p99_latency_ms;
    completed += s.counts.completed();
    fleet.max_latency_ms = std::max(fleet.max_latency_ms, s.max_latency_ms);
  }
  const auto closed = fleet.counts.closed();
  fleet.dmr = closed == 0
                  ? 0.0
                  : static_cast<double>(fleet.counts.late +
                                        fleet.counts.dropped) /
                        static_cast<double>(closed);
  if (completed > 0) {
    fleet.mean_latency_ms = weighted_mean / static_cast<double>(completed);
    fleet.p50_latency_ms = weighted_p50 / static_cast<double>(completed);
    fleet.p99_latency_ms = weighted_p99 / static_cast<double>(completed);
  }
  return fleet;
}

FleetReport roll_up(std::vector<DeviceReport> devices, int tasks_rejected,
                    int tasks_oom_rejected) {
  FleetReport report;
  std::vector<Snapshot> snaps;
  snaps.reserve(devices.size());
  double weighted_util = 0.0;
  double total_sms = 0.0;
  for (const auto& d : devices) {
    snaps.push_back(d.snapshot);
    weighted_util += static_cast<double>(d.total_sms) * d.utilization;
    total_sms += static_cast<double>(d.total_sms);
    report.tasks_assigned += d.tasks_assigned;
  }
  report.fleet = roll_up_snapshots(snaps);
  report.mean_utilization = total_sms > 0.0 ? weighted_util / total_sms : 0.0;
  report.tasks_rejected = tasks_rejected;
  report.tasks_oom_rejected = tasks_oom_rejected;
  report.devices = std::move(devices);
  return report;
}

}  // namespace sgprs::metrics
