#include "metrics/utilization.hpp"

#include <algorithm>

#include "common/check.hpp"

namespace sgprs::metrics {

void UtilizationTracker::CtxAccount::advance(gpu::SimTime now) {
  if (now > last_change) {
    segments.push_back(Segment{last_change, now, active});
    last_change = now;
  }
}

void UtilizationTracker::on_kernel_start(gpu::SimTime t, int context,
                                         int /*stream*/,
                                         const gpu::KernelDesc& /*k*/) {
  auto& acc = ctx_[context];
  acc.advance(t);
  ++acc.active;
}

void UtilizationTracker::on_kernel_end(gpu::SimTime t, int context,
                                       int /*stream*/,
                                       const gpu::KernelDesc& /*k*/) {
  auto it = ctx_.find(context);
  SGPRS_CHECK_MSG(it != ctx_.end(), "kernel end for unseen context");
  auto& acc = it->second;
  acc.advance(t);
  SGPRS_CHECK(acc.active > 0);
  --acc.active;
}

std::pair<double, double> UtilizationTracker::integrate(const CtxAccount& acc,
                                                        gpu::SimTime lo,
                                                        gpu::SimTime hi) {
  double busy = 0.0;
  double kernels = 0.0;
  auto add = [&](gpu::SimTime b, gpu::SimTime e, int active) {
    const gpu::SimTime cb = std::max(b, lo);
    const gpu::SimTime ce = std::min(e, hi);
    if (ce <= cb) return;
    const double dt = (ce - cb).to_sec();
    if (active > 0) busy += dt;
    kernels += dt * active;
  };
  for (const auto& s : acc.segments) add(s.begin, s.end, s.active);
  // Open tail: activity since the last recorded change.
  add(acc.last_change, hi, acc.active);
  return {busy, kernels};
}

double UtilizationTracker::context_busy_fraction(
    int context, gpu::SimTime window_start, gpu::SimTime window_end) const {
  SGPRS_CHECK(window_end > window_start);
  auto it = ctx_.find(context);
  if (it == ctx_.end()) return 0.0;
  const auto [busy, kernels] =
      integrate(it->second, window_start, window_end);
  (void)kernels;
  return busy / (window_end - window_start).to_sec();
}

double UtilizationTracker::mean_concurrency(int context,
                                            gpu::SimTime window_start,
                                            gpu::SimTime window_end) const {
  SGPRS_CHECK(window_end > window_start);
  auto it = ctx_.find(context);
  if (it == ctx_.end()) return 0.0;
  const auto [busy, kernels] =
      integrate(it->second, window_start, window_end);
  (void)busy;
  return kernels / (window_end - window_start).to_sec();
}

std::vector<int> UtilizationTracker::contexts() const {
  std::vector<int> out;
  for (const auto& [id, acc] : ctx_) {
    (void)acc;
    out.push_back(id);
  }
  return out;
}

}  // namespace sgprs::metrics
