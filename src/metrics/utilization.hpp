// Per-context and device utilization accounting, fed by the executor's
// trace hooks. Answers "how busy was each partition?" — the paper's core
// underutilization argument, made measurable.
#pragma once

#include <map>
#include <vector>

#include "gpu/trace.hpp"

namespace sgprs::metrics {

class UtilizationTracker final : public gpu::TraceSink {
 public:
  void on_kernel_start(gpu::SimTime t, int context, int stream,
                       const gpu::KernelDesc& k) override;
  void on_kernel_end(gpu::SimTime t, int context, int stream,
                     const gpu::KernelDesc& k) override;

  /// Fraction of [window_start, window_end] during which the context had
  /// at least one kernel running.
  double context_busy_fraction(int context, gpu::SimTime window_start,
                               gpu::SimTime window_end) const;

  /// Mean number of concurrently running kernels in a context over the
  /// window (the temporal-partitioning depth actually achieved).
  double mean_concurrency(int context, gpu::SimTime window_start,
                          gpu::SimTime window_end) const;

  std::vector<int> contexts() const;

 private:
  /// A maximal interval with a constant number of running kernels.
  struct Segment {
    gpu::SimTime begin;
    gpu::SimTime end;
    int active;
  };
  struct CtxAccount {
    int active = 0;
    gpu::SimTime last_change;
    std::vector<Segment> segments;
    void advance(gpu::SimTime now);
  };
  /// (busy seconds, kernel-seconds) of the account within the window.
  static std::pair<double, double> integrate(const CtxAccount& acc,
                                             gpu::SimTime lo,
                                             gpu::SimTime hi);
  std::map<int, CtxAccount> ctx_;
};

}  // namespace sgprs::metrics
