// Fleet-level metrics: per-device snapshots rolled up into one report.
//
// Rollup semantics: counts and rates (FPS) sum across devices; DMR is
// recomputed from the summed counts; latency mean/p50/p99/max come from
// the merged per-device histograms (common/histogram.hpp), so the fleet
// percentiles are exact — bit-identical to a shared Collector over the
// same population. Utilization is SM-weighted so a big idle device drags
// the fleet number down proportionally to its size.
#pragma once

#include <string>
#include <vector>

#include "metrics/collector.hpp"

namespace sgprs::metrics {

struct DeviceReport {
  int device_index = 0;
  std::string device_name;
  int total_sms = 0;
  int tasks_assigned = 0;
  Snapshot snapshot;
  /// Integral of granted SMs over the whole run (gpu::Executor accounting).
  double busy_sm_seconds = 0.0;
  /// busy_sm_seconds / (allocation basis * elapsed run time), where the
  /// basis is the device's SM count or, for an over-subscribed pool, its
  /// (larger) summed context allocation — an occupancy in [0, ~1].
  double utilization = 0.0;
};

struct FleetReport {
  std::vector<DeviceReport> devices;
  Snapshot fleet;
  /// SM-weighted mean of per-device utilization.
  double mean_utilization = 0.0;
  int tasks_assigned = 0;
  int tasks_rejected = 0;
  /// Rejections where device memory was the sole blocker (subset of
  /// tasks_rejected).
  int tasks_oom_rejected = 0;
};

/// Combines per-device snapshots under the semantics above.
Snapshot roll_up_snapshots(const std::vector<Snapshot>& per_device);

/// Full fleet rollup from per-device reports.
FleetReport roll_up(std::vector<DeviceReport> devices, int tasks_rejected,
                    int tasks_oom_rejected = 0);

}  // namespace sgprs::metrics
