#include "metrics/timeseries.hpp"

#include "common/csv.hpp"

namespace sgprs::metrics {

void write_timeseries_csv(const TimeSeries& ts, std::ostream& out) {
  common::CsvWriter csv(out);
  csv.header({"t_s", "devices_active", "devices_warming", "devices_draining",
              "streams_live", "releases", "completions", "on_time",
              "dropped", "window_fps", "window_dmr", "utilization",
              "streams_rejected_cum", "streams_oom_cum", "jobs_shed_cum",
              "devices_failed", "orphaned_streams", "availability"});
  for (const auto& s : ts.samples) {
    csv.row({common::CsvWriter::num(s.t.to_sec(), 4),
             std::to_string(s.devices_active),
             std::to_string(s.devices_warming),
             std::to_string(s.devices_draining),
             std::to_string(s.streams_live), std::to_string(s.releases),
             std::to_string(s.completions), std::to_string(s.on_time),
             std::to_string(s.dropped),
             common::CsvWriter::num(s.window_fps, 2),
             common::CsvWriter::num(s.window_dmr, 4),
             common::CsvWriter::num(s.utilization, 4),
             std::to_string(s.streams_rejected_cum),
             std::to_string(s.streams_oom_cum),
             std::to_string(s.jobs_shed_cum),
             std::to_string(s.devices_failed),
             std::to_string(s.orphaned_streams),
             common::CsvWriter::num(s.availability, 4)});
  }
}

}  // namespace sgprs::metrics
