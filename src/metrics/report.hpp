// Fixed-width table printer for benchmark output (the "rows the paper
// reports"). Deliberately plain text so bench output diffs cleanly.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace sgprs::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Renders with aligned columns, a header underline, and 2-space gutters.
  void print(std::ostream& out) const;

  static std::string fmt(double v, int precision = 1);
  static std::string pct(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sgprs::metrics
