// Run-time metrics: the paper's two comparison metrics — total FPS and
// Deadline Miss Rate (DMR) — plus latency distributions.
//
// Semantics (DESIGN.md §3.1):
//  * Total FPS  = frames completed per second of measured (post-warm-up)
//    simulated time, regardless of deadline. This is the only reading under
//    which the naive scheduler's FPS *degrades gradually* past the pivot
//    while its DMR explodes, as in Figs. 3/4.
//  * DMR = (late completions + dropped releases) / closed jobs.
//  * A job belongs to the measurement window iff its release time is at or
//    after the warm-up boundary.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/histogram.hpp"
#include "common/stats.hpp"
#include "common/time.hpp"

namespace sgprs::metrics {

using common::SimTime;

struct TaskCounters {
  std::int64_t released = 0;
  std::int64_t dropped = 0;  // releases shed by the admission/drop policy
  std::int64_t on_time = 0;
  std::int64_t late = 0;

  std::int64_t closed() const { return dropped + on_time + late; }
  std::int64_t completed() const { return on_time + late; }
};

struct Snapshot {
  TaskCounters counts;
  double fps = 0.0;          // completed frames / measured second
  double fps_on_time = 0.0;  // deadline-meeting frames / measured second
  double dmr = 0.0;          // (late + dropped) / closed
  double mean_latency_ms = 0.0;
  double p50_latency_ms = 0.0;
  double p99_latency_ms = 0.0;
  double max_latency_ms = 0.0;
  /// The latency distribution behind the scalars above. Carried so
  /// roll_up_snapshots can merge distributions instead of averaging
  /// percentiles — integer bucket counts make the fleet-wide p50/p99
  /// exact (common/histogram.hpp).
  common::Histogram latency_hist_ms;
};

class Collector {
 public:
  /// Events for jobs released before `warmup` are ignored.
  explicit Collector(SimTime warmup = SimTime::zero()) : warmup_(warmup) {}

  void on_release(int task, SimTime release);
  void on_drop(int task, SimTime release);
  /// `release` identifies the job's window membership; `deadline` is the
  /// job's absolute deadline; `now` is the completion instant.
  void on_complete(int task, SimTime release, SimTime deadline, SimTime now);

  /// Aggregate metrics over [warmup, end].
  Snapshot aggregate(SimTime end) const;
  /// Summed job counters only — no latency merge/sort, so it is O(tasks)
  /// at any instant (the fleet time-series sampler's per-window read;
  /// a full aggregate() per window would grow with run history).
  TaskCounters total_counts() const;
  /// Aggregate over a subset of tasks (e.g. one device's share of a fleet).
  /// Ids with no recorded events contribute nothing.
  Snapshot aggregate_tasks(const std::vector<int>& ids, SimTime end) const;
  /// Metrics for one task over [warmup, end].
  Snapshot per_task(int task, SimTime end) const;
  /// Ids of tasks that produced at least one event.
  std::vector<int> task_ids() const;

  /// Folds another collector's per-task records into this one (counter
  /// sums, Welford merge, histogram bucket-count sums). Integer bucket
  /// counts make the merge exact: the sharded fleet runtime reduces its
  /// per-device collectors through this and every percentile read is
  /// bit-identical to a single shared collector, independent of shard
  /// count and thread scheduling. Warm-up boundaries must match (checked).
  void merge_from(const Collector& other);

  SimTime warmup() const { return warmup_; }

 private:
  struct PerTask {
    TaskCounters counts;
    common::RunningStats latency_ms;
    common::Histogram latency_hist_ms;
  };
  bool in_window(SimTime release) const { return release >= warmup_; }
  Snapshot snapshot_of(const PerTask& pt, SimTime end) const;

  SimTime warmup_;
  std::map<int, PerTask> tasks_;
};

}  // namespace sgprs::metrics
