#include "metrics/report.hpp"

#include <algorithm>
#include <cstdio>

#include "common/check.hpp"

namespace sgprs::metrics {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  SGPRS_CHECK(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  SGPRS_CHECK_MSG(cells.size() == headers_.size(),
                  "row width " << cells.size() << " != header width "
                               << headers_.size());
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << "  ";
      // Right-align numbers-ish columns; left-align the first column.
      if (c == 0) {
        out << row[c] << std::string(width[c] - row[c].size(), ' ');
      } else {
        out << std::string(width[c] - row[c].size(), ' ') << row[c];
      }
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) {
    total += width[c] + (c ? 2 : 0);
  }
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string Table::pct(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace sgprs::metrics
