#include "metrics/collector.hpp"

#include "common/check.hpp"

namespace sgprs::metrics {

void Collector::on_release(int task, SimTime release) {
  if (!in_window(release)) return;
  ++tasks_[task].counts.released;
}

void Collector::on_drop(int task, SimTime release) {
  if (!in_window(release)) return;
  ++tasks_[task].counts.dropped;
}

void Collector::on_complete(int task, SimTime release, SimTime deadline,
                            SimTime now) {
  if (!in_window(release)) return;
  PerTask& pt = tasks_[task];
  if (now <= deadline) {
    ++pt.counts.on_time;
  } else {
    ++pt.counts.late;
  }
  const double lat_ms = (now - release).to_ms();
  pt.latency_ms.add(lat_ms);
  pt.latency_hist_ms.add(lat_ms);
}

Snapshot Collector::snapshot_of(const PerTask& pt, SimTime end) const {
  SGPRS_CHECK_MSG(end > warmup_, "measurement window is empty");
  const double window = (end - warmup_).to_sec();
  Snapshot s;
  s.counts = pt.counts;
  s.fps = static_cast<double>(pt.counts.completed()) / window;
  s.fps_on_time = static_cast<double>(pt.counts.on_time) / window;
  const auto closed = pt.counts.closed();
  s.dmr = closed == 0
              ? 0.0
              : static_cast<double>(pt.counts.late + pt.counts.dropped) /
                    static_cast<double>(closed);
  s.mean_latency_ms = pt.latency_ms.mean();
  s.p50_latency_ms = pt.latency_hist_ms.p50();
  s.p99_latency_ms = pt.latency_hist_ms.p99();
  s.max_latency_ms = pt.latency_hist_ms.max();
  s.latency_hist_ms = pt.latency_hist_ms;
  return s;
}

namespace {

template <typename PerTaskT>
void merge_into(PerTaskT& all, const PerTaskT& pt) {
  all.counts.released += pt.counts.released;
  all.counts.dropped += pt.counts.dropped;
  all.counts.on_time += pt.counts.on_time;
  all.counts.late += pt.counts.late;
  all.latency_ms.merge(pt.latency_ms);
  all.latency_hist_ms.merge(pt.latency_hist_ms);
}

}  // namespace

void Collector::merge_from(const Collector& other) {
  SGPRS_CHECK_MSG(warmup_ == other.warmup_,
                  "merging collectors with different warm-up windows");
  for (const auto& [id, pt] : other.tasks_) {
    merge_into(tasks_[id], pt);
  }
}

Snapshot Collector::aggregate(SimTime end) const {
  PerTask all;
  for (const auto& [id, pt] : tasks_) {
    (void)id;
    merge_into(all, pt);
  }
  return snapshot_of(all, end);
}

TaskCounters Collector::total_counts() const {
  TaskCounters all;
  for (const auto& [id, pt] : tasks_) {
    (void)id;
    all.released += pt.counts.released;
    all.dropped += pt.counts.dropped;
    all.on_time += pt.counts.on_time;
    all.late += pt.counts.late;
  }
  return all;
}

Snapshot Collector::aggregate_tasks(const std::vector<int>& ids,
                                    SimTime end) const {
  PerTask all;
  for (int id : ids) {
    auto it = tasks_.find(id);
    if (it != tasks_.end()) merge_into(all, it->second);
  }
  return snapshot_of(all, end);
}

Snapshot Collector::per_task(int task, SimTime end) const {
  auto it = tasks_.find(task);
  SGPRS_CHECK_MSG(it != tasks_.end(), "unknown task " << task);
  return snapshot_of(it->second, end);
}

std::vector<int> Collector::task_ids() const {
  std::vector<int> ids;
  ids.reserve(tasks_.size());
  for (const auto& [id, pt] : tasks_) {
    (void)pt;
    ids.push_back(id);
  }
  return ids;
}

}  // namespace sgprs::metrics
