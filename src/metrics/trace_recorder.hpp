// Chrome-trace (about://tracing, Perfetto) recorder for kernel timelines.
//
// Pairs the executor's start/end callbacks into complete ("ph":"X") events:
// pid = context, tid = stream, ts/dur in microseconds. Useful to eyeball a
// schedule: one lane per stream, kernels labelled by layer name.
#pragma once

#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "gpu/trace.hpp"

namespace sgprs::metrics {

class TraceRecorder final : public gpu::TraceSink {
 public:
  void on_kernel_start(gpu::SimTime t, int context, int stream,
                       const gpu::KernelDesc& k) override;
  void on_kernel_end(gpu::SimTime t, int context, int stream,
                     const gpu::KernelDesc& k) override;

  std::size_t event_count() const { return events_.size(); }

  /// Writes the complete trace as chrome://tracing JSON.
  void write_json(std::ostream& out) const;

  /// Drops recorded events (keeps in-flight starts).
  void clear() { events_.clear(); }

 private:
  struct Event {
    std::string name;
    int context;
    int stream;
    std::int64_t start_us;
    std::int64_t dur_us;
    std::uint64_t tag;
  };
  std::map<std::pair<int, int>, std::pair<gpu::SimTime, gpu::KernelDesc>>
      open_;  // keyed by (context, stream): streams serialize kernels
  std::vector<Event> events_;
};

}  // namespace sgprs::metrics
