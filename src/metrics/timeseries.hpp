// Windowed time-series metrics for open-world (fleet) runs.
//
// A closed-world run is summarised by one aggregate snapshot; a run with
// churn and autoscaling needs the trajectory: what the DMR, throughput,
// fleet size and shed/reject counters looked like over time. The fleet
// runtime samples one TimeSample per window (cumulative-counter diffs
// over Collector::total_counts() — O(tasks) per sample, no per-event
// bookkeeping) and report writers emit them as CSV rows / JSON records.
#pragma once

#include <cstdint>
#include <ostream>
#include <vector>

#include "common/time.hpp"

namespace sgprs::metrics {

using common::SimTime;

struct TimeSample {
  /// Window end (samples cover (t - window, t]).
  SimTime t;
  // --- fleet shape at the sample instant ---
  int devices_active = 0;    // taking placements
  int devices_warming = 0;   // scaled up, inside warm-up latency
  int devices_draining = 0;  // deactivated, in-flight work draining
  int streams_live = 0;
  // --- windowed job counters (post-warmup jobs only) ---
  std::int64_t releases = 0;
  std::int64_t completions = 0;
  std::int64_t on_time = 0;
  std::int64_t dropped = 0;
  double window_fps = 0.0;  // completions / window seconds
  /// (late + dropped) / closed within the window; 0 when nothing closed.
  double window_dmr = 0.0;
  /// Mean analytic utilization (offered/capacity) over active devices.
  double utilization = 0.0;
  // --- cumulative overload counters ---
  std::int64_t streams_rejected_cum = 0;
  /// Subset of streams_rejected_cum where device memory was the sole
  /// remaining blocker (see cluster::PlaceResult::oom).
  std::int64_t streams_oom_cum = 0;
  std::int64_t jobs_shed_cum = 0;
  // --- fault state at the sample instant ---
  int devices_failed = 0;    // crashed, not yet recovered
  int orphaned_streams = 0;  // displaced, failover pending
  /// live / (live + orphaned); 1.0 when both are zero.
  double availability = 1.0;
};

struct TimeSeries {
  SimTime window = SimTime::zero();
  std::vector<TimeSample> samples;
};

/// One CSV row per sample (stable column order; docs/online-fleet.md).
void write_timeseries_csv(const TimeSeries& ts, std::ostream& out);

}  // namespace sgprs::metrics
