#include "sim/engine.hpp"

#include <utility>

namespace sgprs::sim {

EventId Engine::schedule_at(SimTime t, EventFn fn) {
  SGPRS_CHECK_MSG(t >= now_, "cannot schedule event in the past: t="
                                 << t.ns << " now=" << now_.ns);
  SGPRS_CHECK(fn != nullptr);
  const EventId id = next_id_++;
  heap_.push(HeapEntry{t, next_seq_++, id});
  pending_.emplace(id, std::move(fn));
  return id;
}

bool Engine::cancel(EventId id) {
  // The heap entry stays behind and is skipped when popped.
  return pending_.erase(id) > 0;
}

SimTime Engine::next_event_time() const {
  // Skim cancelled entries logically: the heap may have stale tops, so scan a
  // copy is too costly — instead we rely on step() to clean; here we pop-peek
  // conservatively by scanning for the first live entry without mutating.
  // Cheap approach: top() is stale only until the next step(); callers use
  // this between steps, so we clean eagerly.
  auto* self = const_cast<Engine*>(this);
  while (!self->heap_.empty() &&
         !self->pending_.contains(self->heap_.top().id)) {
    self->heap_.pop();
  }
  if (heap_.empty()) return SimTime::max();
  return heap_.top().t;
}

bool Engine::step() {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.top();
    heap_.pop();
    auto it = pending_.find(top.id);
    if (it == pending_.end()) continue;  // cancelled
    EventFn fn = std::move(it->second);
    pending_.erase(it);
    SGPRS_CHECK(top.t >= now_);
    now_ = top.t;
    ++processed_;
    fn();
    return true;
  }
  return false;
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(SimTime t) {
  SGPRS_CHECK(t >= now_);
  while (true) {
    const SimTime nt = next_event_time();
    if (nt > t) break;
    step();
  }
  now_ = t;
}

}  // namespace sgprs::sim
