#include "sim/engine.hpp"

#include <utility>

namespace sgprs::sim {

std::uint32_t Engine::acquire_slot() {
  if (free_head_ != kNoFree) {
    const std::uint32_t slot = free_head_;
    free_head_ = nodes_[slot].next_free;
    nodes_[slot].next_free = kNoFree;
    return slot;
  }
  SGPRS_CHECK_MSG(nodes_.size() < static_cast<std::size_t>(kNoFree),
                  "event slab exhausted");
  nodes_.emplace_back();
  return static_cast<std::uint32_t>(nodes_.size() - 1);
}

void Engine::release_slot(std::uint32_t slot) {
  EventNode& node = nodes_[slot];
  ++node.generation;  // invalidates every outstanding id / heap entry
  node.next_free = free_head_;
  free_head_ = slot;
  --live_;
}

bool Engine::cancel(EventId id) {
  if (id == kInvalidEvent) return false;
  const std::uint32_t slot = static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  const std::uint32_t generation = static_cast<std::uint32_t>(id >> 32);
  if (slot >= nodes_.size() || nodes_[slot].generation != generation) {
    return false;  // already fired/cancelled (slot since recycled or freed)
  }
  nodes_[slot].fn = nullptr;
  release_slot(slot);
  ++cancelled_;
  // The calendar entry stays behind (in the heap or still in staging); the
  // generation bump makes it stale and it is skipped when it reaches the
  // top. Cancel-heavy clients (the executor re-arms its completion event
  // on every enqueue) would otherwise grow the calendar without bound and
  // pay a full sift per stale pop, so once stale entries dominate, drop
  // them all and re-heapify in O(live).
  if (heap_.size() + staging_.size() > 4 * live_ + 64) {
    flush_staging();
    heap_.compact([this](const HeapEntry& e) { return is_live(e); });
  }
  return true;
}

SimTime Engine::next_event_time() {
  if (live_ == 0) {
    heap_.clear();  // everything left is stale
    staging_.clear();
    return SimTime::max();
  }
  flush_staging();
  while (!is_live(heap_.top())) heap_.pop();
  return heap_.top().t;
}

void Engine::fire(const HeapEntry& e) {
  // Move the callback out and release the slot *before* invoking: the
  // callback may schedule into (and legitimately reuse) this very slot, or
  // grow the slab and move every node.
  EventFn fn = std::move(nodes_[e.slot].fn);
  release_slot(e.slot);
  SGPRS_CHECK(e.t >= now_);
  now_ = e.t;
  ++processed_;
  fn.call_and_reset();
}

bool Engine::step() {
  if (live_ == 0) {
    heap_.clear();  // everything left is stale
    staging_.clear();
    return false;
  }
  flush_staging();
  for (;;) {  // live_ > 0 guarantees a live entry exists
    if (!is_live(heap_.top())) {
      heap_.pop();
      continue;
    }
    fire(heap_.pop());
    return true;
  }
}

void Engine::run() {
  while (step()) {
  }
}

void Engine::run_until(SimTime t) {
  SGPRS_CHECK(t >= now_);
  // Locate each event exactly once: prune stale tops in passing, stop at
  // the first live entry past the horizon, fire everything before it.
  while (live_ > 0) {
    flush_staging();  // callbacks may have scheduled since the last pop
    if (!is_live(heap_.top())) {
      heap_.pop();
      continue;
    }
    if (heap_.top().t > t) break;
    fire(heap_.pop());
  }
  if (live_ == 0) {
    heap_.clear();
    staging_.clear();
  }
  now_ = t;
}

}  // namespace sgprs::sim
