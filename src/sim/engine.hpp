// Discrete-event simulation engine.
//
// A single-threaded calendar of timestamped callbacks. Events scheduled for
// the same instant fire in scheduling (FIFO) order, which keeps runs
// deterministic. Cancellation is O(1) (generation check, lazy deletion on
// pop).
//
// Storage is a slab of event nodes recycled through a free list, indexed by
// a flat 4-ary heap of (time, seq, slot) entries, with the callback held
// in a fixed-capacity inplace buffer — so schedule_at / cancel / step touch
// no allocator once the slab and heap have grown to the run's high-water
// mark. EventIds carry a per-slot generation tag: cancelling a stale id
// after its slot was recycled is a cheap mismatch, never a hash lookup and
// never a fire of the wrong callback. docs/ARCHITECTURE.md § "Event
// calendar" is the design note.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.hpp"
#include "common/heap.hpp"
#include "common/inplace_function.hpp"
#include "common/time.hpp"

namespace sgprs::sim {

using common::SimTime;

/// Handle of a pending event: (generation << 32) | (slot + 1), so 0 stays
/// the invalid sentinel. Treat as opaque.
using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

/// Event callback. Inline capacity covers every capture the schedulers and
/// runner create (the largest today: 4 words in rt::Runner::arm_release);
/// outgrowing it is a static_assert at the schedule_at call site, never a
/// silent heap allocation. 40 bytes keeps the whole EventNode at exactly
/// one cache line.
using EventFn = common::InplaceFunction<void(), 40>;

class Engine {
 public:
  // Member aliases so generic drivers (benches) can say EngineT::EventId.
  using EventId = sim::EventId;
  using EventFn = sim::EventFn;
  static constexpr EventId kInvalidEvent = sim::kInvalidEvent;

  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` (any void() callable fitting EventFn's inline buffer)
  /// to run at absolute time `t` (must be >= now()). Templated so the
  /// capture is constructed directly in the slab node — no temporary
  /// wrapper, no indirect relocate on the schedule path.
  template <typename F>
  EventId schedule_at(SimTime t, F&& fn) {
    SGPRS_CHECK_MSG(t >= now_, "cannot schedule event in the past: t="
                                   << t.ns << " now=" << now_.ns);
    if constexpr (std::is_same_v<std::decay_t<F>, EventFn>) {
      SGPRS_CHECK(fn != nullptr);
    }
    const std::uint32_t slot = acquire_slot();
    EventNode& node = nodes_[slot];
    if constexpr (std::is_same_v<std::decay_t<F>, EventFn>) {
      node.fn = std::forward<F>(fn);  // already type-erased: move the wrapper
    } else {
      node.fn.emplace(std::forward<F>(fn));
    }
    node.occupant_seq = static_cast<std::uint32_t>(next_seq_++);
    staging_.push_back(HeapEntry{t, node.occupant_seq, slot});
    ++live_;
    ++scheduled_;
    return (static_cast<EventId>(node.generation) << 32) |
           (static_cast<EventId>(slot) + 1);
  }

  /// Schedules `fn` to run `dt` after now() (dt must be >= 0).
  template <typename F>
  EventId schedule_after(SimTime dt, F&& fn) {
    return schedule_at(now_ + dt, std::forward<F>(fn));
  }

  /// Cancels a pending event. Returns false if it already fired or was
  /// cancelled (both are benign — cancellation is idempotent).
  bool cancel(EventId id);

  bool has_pending() const { return live_ > 0; }
  std::size_t pending_count() const { return live_; }
  std::size_t processed_count() const { return processed_; }
  std::size_t scheduled_count() const { return scheduled_; }
  std::size_t cancelled_count() const { return cancelled_; }

  /// Time of the earliest pending event, or SimTime::max() if none.
  /// Non-const: prunes cancelled heap entries off the top in passing (the
  /// pending set itself is unchanged).
  SimTime next_event_time();

  /// Runs until the calendar is empty.
  void run();

  /// Runs all events with time <= `t`, then advances now() to exactly `t`.
  void run_until(SimTime t);

  /// Processes a single event. Returns false if the calendar is empty.
  bool step();

  /// Introspection for tests and benches: slots ever allocated (the
  /// high-water mark of simultaneously pending events) and raw calendar
  /// entries (pending + not-yet-pruned cancellations).
  std::size_t slab_size() const { return nodes_.size(); }
  std::size_t heap_size() const { return heap_.size() + staging_.size(); }

 private:
  static constexpr std::uint32_t kNoFree = 0xffffffffu;

  /// One slab slot; exactly one cache line. `generation` counts recycles of
  /// the slot: it is baked into the EventId at schedule time and bumped
  /// whenever the slot is released (fire or cancel), so cancel() on a stale
  /// id is a cheap mismatch. A slot would need 2^32 recycles for a tag to
  /// wrap back onto a live stale id. `occupant_seq` is the (truncated)
  /// schedule sequence of the current occupant, used to recognize stale
  /// calendar entries.
  struct EventNode {
    EventFn fn;
    std::uint32_t generation = 0;
    std::uint32_t occupant_seq = 0;
    std::uint32_t next_free = kNoFree;
  };

  /// 16 bytes: sift work is memory-bound, so entry size is throughput.
  /// `seq` is the schedule counter truncated to 32 bits and compared
  /// circularly; the seq window alive in the calendar is bounded by memory
  /// (one 64-byte node per pending event), far below the 2^31 circular-
  /// compare horizon, so FIFO tie-break order is exact.
  struct HeapEntry {
    SimTime t;
    std::uint32_t seq;  // tie-break: FIFO among same-time events
    std::uint32_t slot;
  };
  struct EntryLess {
    bool operator()(const HeapEntry& a, const HeapEntry& b) const {
      if (a.t != b.t) return a.t < b.t;
      return static_cast<std::int32_t>(a.seq - b.seq) < 0;
    }
  };

  /// A calendar entry is live iff its slot still holds the event it was
  /// pushed for: same occupant sequence and the callback not yet consumed
  /// (cancel nulls the callback but cannot touch occupant_seq).
  bool is_live(const HeapEntry& e) const {
    const EventNode& n = nodes_[e.slot];
    return n.occupant_seq == e.seq && n.fn != nullptr;
  }
  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);
  /// Pops + runs the (already pruned, already popped) heap entry.
  void fire(const HeapEntry& e);
  /// Drains the staging buffer into the heap (bulk-heapify when large).
  /// Must run before any top()/pop(); pop paths call it once per loop.
  void flush_staging() {
    if (!staging_.empty()) heap_.merge_from(staging_);
  }

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  std::size_t processed_ = 0;
  std::size_t scheduled_ = 0;
  std::size_t cancelled_ = 0;
  std::size_t live_ = 0;
  common::MinHeap<HeapEntry, EntryLess> heap_;
  /// Fresh schedules land here unsorted; a burst of k events costs O(k)
  /// to stage + one O(n) heapify instead of k O(log n) sift-ups.
  std::vector<HeapEntry> staging_;
  std::vector<EventNode> nodes_;
  std::uint32_t free_head_ = kNoFree;
};

}  // namespace sgprs::sim
