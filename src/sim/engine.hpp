// Discrete-event simulation engine.
//
// A single-threaded calendar of timestamped callbacks. Events scheduled for
// the same instant fire in scheduling (FIFO) order, which keeps runs
// deterministic. Cancellation is O(1) (lazy deletion on pop).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/check.hpp"
#include "common/time.hpp"

namespace sgprs::sim {

using common::SimTime;

using EventId = std::uint64_t;
inline constexpr EventId kInvalidEvent = 0;

using EventFn = std::function<void()>;

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  SimTime now() const { return now_; }

  /// Schedules `fn` to run at absolute time `t` (must be >= now()).
  EventId schedule_at(SimTime t, EventFn fn);

  /// Schedules `fn` to run `dt` after now() (dt must be >= 0).
  EventId schedule_after(SimTime dt, EventFn fn) {
    return schedule_at(now_ + dt, std::move(fn));
  }

  /// Cancels a pending event. Returns false if it already fired or was
  /// cancelled (both are benign — cancellation is idempotent).
  bool cancel(EventId id);

  bool has_pending() const { return !pending_.empty(); }
  std::size_t pending_count() const { return pending_.size(); }
  std::size_t processed_count() const { return processed_; }

  /// Time of the earliest pending event, or SimTime::max() if none.
  SimTime next_event_time() const;

  /// Runs until the calendar is empty.
  void run();

  /// Runs all events with time <= `t`, then advances now() to exactly `t`.
  void run_until(SimTime t);

  /// Processes a single event. Returns false if the calendar is empty.
  bool step();

 private:
  struct HeapEntry {
    SimTime t;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    EventId id;
    bool operator>(const HeapEntry& o) const {
      if (t != o.t) return t > o.t;
      return seq > o.seq;
    }
  };

  SimTime now_ = SimTime::zero();
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  std::size_t processed_ = 0;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap_;
  std::unordered_map<EventId, EventFn> pending_;
};

}  // namespace sgprs::sim
