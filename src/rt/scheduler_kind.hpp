// Scheduler selection shared by the workload harness, the cluster layer,
// the CLI and the benches. String parsing lives here — one place — so an
// unknown name is an error everywhere instead of a silent default.
#pragma once

#include <optional>
#include <string>

namespace sgprs::rt {

enum class SchedulerKind { kSgprs, kNaive };

const char* to_string(SchedulerKind k);

/// All accepted names, pipe-separated (for --help text).
const char* scheduler_kind_names();

/// Parses a scheduler name; std::nullopt on anything unrecognised.
std::optional<SchedulerKind> parse_scheduler_kind(const std::string& name);

}  // namespace sgprs::rt
