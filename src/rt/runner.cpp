#include "rt/runner.hpp"

#include "common/check.hpp"

namespace sgprs::rt {

Runner::Runner(sim::Engine& engine, Scheduler& scheduler,
               const std::vector<Task>& tasks, RunnerConfig cfg)
    : engine_(engine),
      scheduler_(scheduler),
      tasks_(tasks),
      cfg_(cfg),
      jitter_rng_(cfg.jitter_seed) {
  SGPRS_CHECK(cfg_.duration > SimTime::zero());
  SGPRS_CHECK(cfg_.release_jitter >= SimTime::zero());
  // Jitter must not reorder a task's releases: bound it by the shortest
  // guaranteed inter-arrival gap in the set (the period, or a sporadic
  // task's effective minimum separation).
  for (const auto& t : tasks_) {
    const SimTime min_gap =
        t.arrival == ArrivalModel::kSporadic &&
                t.min_separation > SimTime::zero()
            ? t.min_separation
            : t.period;
    SGPRS_CHECK_MSG(cfg_.release_jitter < min_gap ||
                        cfg_.release_jitter == SimTime::zero(),
                    "release jitter must stay below every task's minimum "
                    "inter-arrival gap");
    if (t.arrival == ArrivalModel::kSporadic) {
      // Compare against the *effective* minimum so a max below the
      // defaulted min (the period) is rejected, not silently dropped.
      SGPRS_CHECK_MSG(t.max_separation == SimTime::zero() ||
                          min_gap <= t.max_separation,
                      "sporadic min_separation must not exceed "
                      "max_separation for task " << t.name);
      // Seed per task so the draw sequence is a function of (seed, task id)
      // alone, never of how other tasks' events interleave.
      sporadic_rngs_.emplace(
          t.id, common::Rng(cfg_.jitter_seed +
                            0x9e3779b97f4a7c15ULL *
                                (static_cast<std::uint64_t>(t.id) + 1)));
    }
    scheduler_.admit(t);
  }
}

SimTime Runner::next_interarrival(const Task& task) {
  if (task.arrival == ArrivalModel::kPeriodic) return task.period;
  const SimTime lo = task.min_separation > SimTime::zero()
                         ? task.min_separation
                         : task.period;
  const SimTime hi = task.max_separation > lo ? task.max_separation : lo;
  if (hi == lo) return lo;
  auto& rng = sporadic_rngs_.at(task.id);
  return lo + SimTime::from_ns(static_cast<std::int64_t>(
                  rng.next_double() * static_cast<double>((hi - lo).ns)));
}

void Runner::arm_release(const Task& task, SimTime at) {
  if (at >= cfg_.duration) return;  // stop releasing at the horizon
  SimTime fire = at;
  if (cfg_.release_jitter > SimTime::zero()) {
    fire += SimTime::from_sec(jitter_rng_.next_double() *
                              cfg_.release_jitter.to_sec());
    if (fire >= cfg_.duration) fire = at;  // keep the final release inside
  }
  engine_.schedule_at(fire, [this, &task, at, fire] {
    ++releases_;
    scheduler_.release_job(task, fire);
    arm_release(task, at + next_interarrival(task));
  });
}

void Runner::start() {
  for (const auto& t : tasks_) arm_release(t, t.phase);
}

void Runner::run() {
  start();
  engine_.run_until(cfg_.duration);
}

}  // namespace sgprs::rt
