#include "rt/runner.hpp"

#include "common/check.hpp"

namespace sgprs::rt {

Runner::Runner(sim::Engine& engine, Scheduler& scheduler,
               const std::vector<Task>& tasks, RunnerConfig cfg)
    : engine_(engine),
      scheduler_(scheduler),
      tasks_(tasks),
      cfg_(cfg),
      jitter_rng_(cfg.jitter_seed) {
  SGPRS_CHECK(cfg_.duration > SimTime::zero());
  SGPRS_CHECK(cfg_.release_jitter >= SimTime::zero());
  // Jitter must not reorder a task's releases: bound it by the shortest
  // period in the set.
  for (const auto& t : tasks_) {
    SGPRS_CHECK_MSG(cfg_.release_jitter < t.period ||
                        cfg_.release_jitter == SimTime::zero(),
                    "release jitter must stay below every period");
    scheduler_.admit(t);
  }
}

void Runner::arm_release(const Task& task, SimTime at) {
  if (at >= cfg_.duration) return;  // stop releasing at the horizon
  SimTime fire = at;
  if (cfg_.release_jitter > SimTime::zero()) {
    fire += SimTime::from_sec(jitter_rng_.next_double() *
                              cfg_.release_jitter.to_sec());
    if (fire >= cfg_.duration) fire = at;  // keep the final release inside
  }
  engine_.schedule_at(fire, [this, &task, at, fire] {
    ++releases_;
    scheduler_.release_job(task, fire);
    arm_release(task, at + task.period);
  });
}

void Runner::start() {
  for (const auto& t : tasks_) arm_release(t, t.phase);
}

void Runner::run() {
  start();
  engine_.run_until(cfg_.duration);
}

}  // namespace sgprs::rt
