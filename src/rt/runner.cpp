#include "rt/runner.hpp"

#include "common/check.hpp"

namespace sgprs::rt {

Runner::Runner(sim::Engine& engine, Scheduler& scheduler, RunnerConfig cfg)
    : engine_(engine),
      scheduler_(scheduler),
      cfg_(cfg),
      jitter_rng_(cfg.jitter_seed) {
  SGPRS_CHECK(cfg_.duration > SimTime::zero());
  SGPRS_CHECK(cfg_.release_jitter >= SimTime::zero());
}

Runner::Runner(sim::Engine& engine, Scheduler& scheduler,
               const std::vector<Task>& tasks, RunnerConfig cfg)
    : Runner(engine, scheduler, cfg) {
  for (const auto& t : tasks) admit_checked(t);
}

std::size_t Runner::admit_checked(const Task& t) {
  // Jitter must not reorder a task's releases: bound it by the shortest
  // guaranteed inter-arrival gap (the period, or a sporadic task's
  // effective minimum separation).
  const SimTime min_gap =
      t.arrival == ArrivalModel::kSporadic && t.min_separation > SimTime::zero()
          ? t.min_separation
          : t.period;
  SGPRS_CHECK_MSG(cfg_.release_jitter < min_gap ||
                      cfg_.release_jitter == SimTime::zero(),
                  "release jitter must stay below every task's minimum "
                  "inter-arrival gap");
  if (t.arrival == ArrivalModel::kSporadic) {
    // Compare against the *effective* minimum so a max below the
    // defaulted min (the period) is rejected, not silently dropped.
    SGPRS_CHECK_MSG(t.max_separation == SimTime::zero() ||
                        min_gap <= t.max_separation,
                    "sporadic min_separation must not exceed "
                    "max_separation for task " << t.name);
  }
  for (std::size_t i = 0; i < states_.size(); ++i) {
    TaskState& ts = states_[i];
    if (ts.task->id != t.id) continue;
    SGPRS_CHECK_MSG(!ts.active,
                    "duplicate task id " << t.id << " admitted to runner");
    // A retired id coming back (failover returned the stream to a device
    // that hosted it before): reuse the slot in place. The arrival rng
    // reseeds to the same (seed, id) stream it always draws from.
    ts.task = &t;
    if (t.arrival == ArrivalModel::kSporadic) {
      ts.arrival_rng.reseed(common::stream_seed(cfg_.jitter_seed, t.id));
    }
    ts.active = true;
    scheduler_.admit(t);
    ++active_;
    return i;
  }
  TaskState ts;
  ts.task = &t;
  if (t.arrival == ArrivalModel::kSporadic) {
    // Seed per task so the draw sequence is a function of (seed, task id)
    // alone — never of admission order, event interleaving or (in sharded
    // fleet runs) which shard the hosting device landed on.
    ts.arrival_rng.reseed(common::stream_seed(cfg_.jitter_seed, t.id));
  }
  scheduler_.admit(t);
  states_.push_back(std::move(ts));
  ++active_;
  return states_.size() - 1;
}

void Runner::add_task(const Task& task) {
  const std::size_t idx = admit_checked(task);
  if (started_) {
    arm_release(idx, engine_.now() + task.phase);
  }
}

bool Runner::retire_task(int task_id) {
  for (auto& ts : states_) {
    if (ts.task->id != task_id) continue;
    if (!ts.active) return false;
    ts.active = false;
    --active_;
    if (ts.pending != sim::kInvalidEvent) {
      engine_.cancel(ts.pending);  // stale-safe: generation-tagged
      ts.pending = sim::kInvalidEvent;
    }
    return true;
  }
  return false;
}

SimTime Runner::next_interarrival(TaskState& ts) {
  const Task& task = *ts.task;
  if (task.arrival == ArrivalModel::kPeriodic) return task.period;
  const SimTime lo = task.min_separation > SimTime::zero()
                         ? task.min_separation
                         : task.period;
  const SimTime hi = task.max_separation > lo ? task.max_separation : lo;
  if (hi == lo) return lo;
  return lo + SimTime::from_ns(static_cast<std::int64_t>(
                  ts.arrival_rng.next_double() *
                  static_cast<double>((hi - lo).ns)));
}

void Runner::arm_release(std::size_t idx, SimTime at) {
  TaskState& ts = states_[idx];
  ts.pending = sim::kInvalidEvent;
  if (at >= cfg_.duration) return;  // stop releasing at the horizon
  SimTime fire = at;
  if (cfg_.release_jitter > SimTime::zero()) {
    fire += SimTime::from_sec(jitter_rng_.next_double() *
                              cfg_.release_jitter.to_sec());
    if (fire >= cfg_.duration) fire = at;  // keep the final release inside
  }
  ts.pending = engine_.schedule_at(fire, [this, idx, at, fire] {
    TaskState& s = states_[idx];
    s.pending = sim::kInvalidEvent;
    if (!s.active) return;  // retired between schedule and fire
    ++releases_;
    scheduler_.release_job(*s.task, fire);
    arm_release(idx, at + next_interarrival(s));
  });
}

void Runner::start() {
  SGPRS_CHECK_MSG(!started_, "Runner::start() called twice");
  started_ = true;
  for (std::size_t i = 0; i < states_.size(); ++i) {
    arm_release(i, states_[i].task->phase);
  }
}

void Runner::run() {
  start();
  engine_.run_until(cfg_.duration);
}

}  // namespace sgprs::rt
