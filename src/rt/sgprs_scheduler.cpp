#include "rt/sgprs_scheduler.hpp"

#include <algorithm>
#include <limits>

#include "common/check.hpp"
#include "dnn/partition.hpp"
#include "obs/span.hpp"

namespace sgprs::rt {

SgprsScheduler::SgprsScheduler(gpu::Executor& exec,
                               const gpu::ContextPool& pool,
                               metrics::Collector& collector, SgprsConfig cfg)
    : exec_(exec), collector_(collector), cfg_(cfg), rng_(cfg.rng_seed) {
  SGPRS_CHECK(cfg_.max_in_flight_per_task >= 1);
  for (const auto& pc : pool.contexts()) {
    CtxState cs;
    cs.ctx = pc.ctx;
    cs.sm_limit = pc.sm_limit;
    for (auto s : pc.high_streams) cs.high_slots.push_back(Slot{s});
    for (auto s : pc.low_streams) cs.low_slots.push_back(Slot{s});
    contexts_.push_back(std::move(cs));
  }
  SGPRS_CHECK_MSG(!contexts_.empty(), "SGPRS needs a context pool");
}

void SgprsScheduler::admit(const Task& task) {
  if (task.id >= static_cast<int>(in_flight_.size())) {
    in_flight_.resize(task.id + 1, 0);
  }
  // Verify the WCET table covers every pool SM size we will estimate with.
  for (const auto& cs : contexts_) {
    (void)task.wcet.stage_at(0, cs.sm_limit);
  }
}

double SgprsScheduler::stage_wcet_sec(const Job& job, int stage,
                                      int sm_limit) const {
  return job.task->wcet.stage_at(stage, sm_limit).to_sec();
}

void SgprsScheduler::release_job(const Task& task, SimTime now) {
  SGPRS_CHECK(task.id < static_cast<int>(in_flight_.size()));
  collector_.on_release(task.id, now);
  if (tracer_) tracer_->release(task.id, now);
  if (in_flight_[task.id] >= cfg_.max_in_flight_per_task) {
    collector_.on_drop(task.id, now);
    if (tracer_) tracer_->drop(task.id, now, now);
    return;
  }
  ++in_flight_[task.id];
  Job& job = jobs_.acquire();
  job.task = &task;
  job.index = static_cast<std::int64_t>(next_seq_);
  job.release = now;
  job.abs_deadline = now + task.deadline;
  job.stage_deadlines.reserve(task.stage_count());
  for (const auto& st : task.stages) {
    job.stage_deadlines.push_back(now + st.virtual_deadline_offset);
  }
  release_stage(job, now);
}

StagePriority SgprsScheduler::effective_priority(const Job& job,
                                                 int stage) const {
  const StagePriority base = job.task->stages[stage].base_priority;
  if (base == StagePriority::kLow && job.predecessor_missed &&
      cfg_.medium_boost) {
    return StagePriority::kMedium;
  }
  return base;
}

SimTime SgprsScheduler::estimate_finish(const CtxState& cs,
                                        double stage_wcet_sec,
                                        SimTime now) const {
  // Backlog: work still queued plus the WCET-remainder of busy slots,
  // spread over all streams of the context, then this stage on top.
  double busy_rem = 0.0;
  int streams = 0;
  for (const auto& slots : {&cs.high_slots, &cs.low_slots}) {
    for (const auto& sl : *slots) {
      ++streams;
      if (sl.busy && sl.est_done > now) {
        busy_rem += (sl.est_done - now).to_sec();
      }
    }
  }
  SGPRS_CHECK(streams > 0);
  const double backlog =
      (cs.queued_work_sec + busy_rem) / static_cast<double>(streams);
  return now + SimTime::from_sec(backlog + stage_wcet_sec);
}

int SgprsScheduler::choose_paper(const Job& job, int stage,
                                 SimTime now) const {
  // Criterion 1: empty queues first.
  int best = -1;
  for (std::size_t i = 0; i < contexts_.size(); ++i) {
    if (contexts_[i].queue_len() == 0) {
      // Prefer the empty context with the most idle streams.
      auto idle_streams = [](const CtxState& cs) {
        int idle = 0;
        for (const auto& sl : cs.high_slots) idle += sl.busy ? 0 : 1;
        for (const auto& sl : cs.low_slots) idle += sl.busy ? 0 : 1;
        return idle;
      };
      if (best < 0 ||
          idle_streams(contexts_[i]) > idle_streams(contexts_[best])) {
        best = static_cast<int>(i);
      }
    }
  }
  if (best >= 0) return best;

  // Criterion 2: deadline-meeting contexts, shortest queue first.
  const SimTime dl = job.stage_deadlines[stage];
  int best_meet = -1;
  SimTime best_meet_finish = SimTime::max();
  std::size_t best_meet_qlen = 0;
  // Criterion 3 fallback: earliest finish overall.
  int best_finish = -1;
  SimTime best_finish_t = SimTime::max();
  for (std::size_t i = 0; i < contexts_.size(); ++i) {
    const auto& cs = contexts_[i];
    const SimTime fin =
        estimate_finish(cs, stage_wcet_sec(job, stage, cs.sm_limit), now);
    if (fin <= dl) {
      const std::size_t qlen = cs.queue_len();
      if (best_meet < 0 || qlen < best_meet_qlen ||
          (qlen == best_meet_qlen && fin < best_meet_finish)) {
        best_meet = static_cast<int>(i);
        best_meet_qlen = qlen;
        best_meet_finish = fin;
      }
    }
    if (fin < best_finish_t) {
      best_finish_t = fin;
      best_finish = static_cast<int>(i);
    }
  }
  if (best_meet >= 0) return best_meet;
  return best_finish;
}

int SgprsScheduler::choose_context(const Job& job, int stage,
                                   SimTime now) const {
  switch (cfg_.assign_policy) {
    case ContextAssignPolicy::kPaper:
      return choose_paper(job, stage, now);
    case ContextAssignPolicy::kRoundRobin: {
      auto* self = const_cast<SgprsScheduler*>(this);
      const int c = self->rr_next_;
      self->rr_next_ = (self->rr_next_ + 1) %
                       static_cast<int>(contexts_.size());
      return c;
    }
    case ContextAssignPolicy::kRandom:
      return static_cast<int>(rng_.uniform_int(
          0, static_cast<std::int64_t>(contexts_.size()) - 1));
    case ContextAssignPolicy::kLeastLoaded: {
      int best = 0;
      SimTime best_t = SimTime::max();
      for (std::size_t i = 0; i < contexts_.size(); ++i) {
        const SimTime fin = estimate_finish(
            contexts_[i], stage_wcet_sec(job, stage, contexts_[i].sm_limit),
            now);
        if (fin < best_t) {
          best_t = fin;
          best = static_cast<int>(i);
        }
      }
      return best;
    }
  }
  return 0;
}

void SgprsScheduler::release_stage(Job& job, SimTime now) {
  const int stage = job.next_stage;
  SGPRS_CHECK(stage < job.task->stage_count());

  // Extension: shed jobs that already missed their final deadline instead
  // of spending GPU time on an unusable frame.
  if (cfg_.abort_hopeless && now > job.abs_deadline) {
    ++aborts_;
    collector_.on_drop(job.task->id, job.release);
    if (tracer_) tracer_->drop(job.task->id, job.release, now);
    --in_flight_[job.task->id];
    retire_job(job);
    return;
  }

  const int ctx_idx = choose_context(job, stage, now);
  CtxState& cs = contexts_[ctx_idx];
  if (job.last_ctx >= 0 && job.last_ctx != ctx_idx) ++migrations_;

  // EDF keys queues by the stage's absolute virtual deadline; the FIFO
  // ablation collapses the key so the seq tie-break orders by arrival.
  const SimTime key = cfg_.queue_order == QueueOrder::kEdf
                          ? job.stage_deadlines[stage]
                          : SimTime::zero();
  QueuedStage qs{&job, stage, key, next_seq_++};
  const StagePriority prio = effective_priority(job, stage);
  if (prio == StagePriority::kMedium) ++promotions_;
  switch (prio) {
    case StagePriority::kHigh: cs.high.push(qs); break;
    case StagePriority::kMedium: cs.medium.push(qs); break;
    case StagePriority::kLow: cs.low.push(qs); break;
  }
  cs.queued_work_sec += stage_wcet_sec(job, stage, cs.sm_limit);
  try_dispatch(ctx_idx, now);
}

void SgprsScheduler::try_dispatch(int ctx_idx, SimTime now) {
  CtxState& cs = contexts_[ctx_idx];
  // High streams serve the high queue (optionally stealing medium/low).
  for (auto& slot : cs.high_slots) {
    if (slot.busy) continue;
    StageQueue* src = nullptr;
    if (!cs.high.empty()) {
      src = &cs.high;
    } else if (cfg_.high_streams_steal) {
      if (!cs.medium.empty()) {
        src = &cs.medium;
      } else if (!cs.low.empty()) {
        src = &cs.low;
      }
    }
    if (!src) break;
    dispatch(cs, slot, src->pop(), now);
  }
  // Low streams serve medium first, then low (EDF inside each level).
  for (auto& slot : cs.low_slots) {
    if (slot.busy) continue;
    StageQueue* src = nullptr;
    if (!cs.medium.empty()) {
      src = &cs.medium;
    } else if (!cs.low.empty()) {
      src = &cs.low;
    }
    if (!src) break;
    dispatch(cs, slot, src->pop(), now);
  }
}

void SgprsScheduler::dispatch(CtxState& cs, Slot& slot, QueuedStage qs,
                              SimTime now) {
  Job& job = *qs.job;
  const int stage = qs.stage;
  const double wcet = stage_wcet_sec(job, stage, cs.sm_limit);
  cs.queued_work_sec = std::max(0.0, cs.queued_work_sec - wcet);
  slot.busy = true;
  slot.est_done = now + SimTime::from_sec(wcet);
  // First dispatch of the job (never assigned a context yet): the span
  // boundary between queue wait and execution.
  if (tracer_ && job.last_ctx < 0) {
    tracer_->dispatch(job.task->id, job.release, now);
  }
  job.last_ctx = static_cast<int>(&cs - contexts_.data());

  const bool high_slot =
      exec_.stream_priority(slot.stream) == gpu::StreamPriority::kHigh;
  const int ctx_idx = static_cast<int>(&cs - contexts_.data());
  const int slot_idx = static_cast<int>(
      &slot - (high_slot ? cs.high_slots.data() : cs.low_slots.data()));

  auto kernels = dnn::stage_kernels(
      *job.task->network, dnn::CostModel::calibrated(),
      job.task->stages[stage].nodes, job.tag());
  Job* job_ptr = &job;
  exec_.enqueue_batch(slot.stream, std::move(kernels),
                      [this, job_ptr, stage, ctx_idx, slot_idx,
                       high_slot](SimTime t) {
                        on_stage_complete(*job_ptr, stage, ctx_idx, slot_idx,
                                          high_slot, t);
                      });
}

void SgprsScheduler::on_stage_complete(Job& job, int stage, int ctx_idx,
                                       int slot_idx, bool high_slot,
                                       SimTime now) {
  CtxState& cs = contexts_[ctx_idx];
  Slot& slot = high_slot ? cs.high_slots[slot_idx] : cs.low_slots[slot_idx];
  slot.busy = false;

  if (now > job.stage_deadlines[stage]) job.predecessor_missed = true;

  job.next_stage = stage + 1;
  if (job.next_stage == job.task->stage_count()) {
    collector_.on_complete(job.task->id, job.release, job.abs_deadline, now);
    if (tracer_) tracer_->complete(job.task->id, job.release, now);
    --in_flight_[job.task->id];
    retire_job(job);
  } else {
    // Seamless partition switch: the next stage is assigned afresh and may
    // land on any context with zero reconfiguration.
    release_stage(job, now);
  }
  try_dispatch(ctx_idx, now);
}

void SgprsScheduler::retire_job(Job& job) { jobs_.release(job); }

int SgprsScheduler::abort_in_flight() {
  // Device crash: every queued stage and every dispatched kernel dies with
  // the device. No collector completes or drops — faulted jobs stay open
  // (they are their own outcome), and the stale stage-completion callbacks
  // the executor would have fired are purged with it.
  for (auto& cs : contexts_) {
    cs.high.clear();
    cs.medium.clear();
    cs.low.clear();
    cs.queued_work_sec = 0.0;
    for (auto& slot : cs.high_slots) slot.busy = false;
    for (auto& slot : cs.low_slots) slot.busy = false;
  }
  exec_.purge_all();
  const int killed = static_cast<int>(jobs_.release_all());
  std::fill(in_flight_.begin(), in_flight_.end(), 0);
  return killed;
}

std::size_t SgprsScheduler::queued_stages(int ctx) const {
  SGPRS_CHECK(ctx >= 0 && ctx < static_cast<int>(contexts_.size()));
  return contexts_[ctx].queue_len();
}

}  // namespace sgprs::rt
