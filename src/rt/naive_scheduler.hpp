// Naive baseline (paper Section V): pure spatial partitioning.
//
// What it lacks, by construction, is exactly what SGPRS adds:
//  * no seamless context switch — each task is statically pinned to one
//    context at admission (round-robin);
//  * no temporal partitioning — one stream per context, whole-network jobs
//    run back to back in FIFO order;
//  * no deadline awareness — late jobs run to completion, delaying every
//    job behind them (the domino effect the paper describes).
// A task keeps at most one job in flight; a release that finds the previous
// frame still pending is dropped (single frame buffer).
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "gpu/context_pool.hpp"
#include "rt/job.hpp"
#include "rt/job_pool.hpp"
#include "rt/scheduler.hpp"

namespace sgprs::rt {

struct NaiveConfig {
  int max_in_flight_per_task = 1;
  /// Host-side gap between consecutive jobs on a context: the blocking
  /// synchronize + frame handling that sequential framework execution pays
  /// between inferences (the paper's Section I: "coarse resource allocation
  /// and sequential execution in existing frameworks result in
  /// underutilization"). SGPRS overlaps this via its stream queues; the
  /// naive pipeline cannot. Set to zero for the idealized baseline.
  SimTime host_sync_gap = SimTime::from_ms(1.0);
};

class NaiveScheduler final : public Scheduler {
 public:
  NaiveScheduler(gpu::Executor& exec, const gpu::ContextPool& pool,
                 metrics::Collector& collector, NaiveConfig cfg = {});

  void admit(const Task& task) override;
  void release_job(const Task& task, SimTime now) override;
  int jobs_in_flight() const override {
    return static_cast<int>(jobs_.live());
  }
  int abort_in_flight() override;
  std::string name() const override { return "naive"; }

  /// Context a task was pinned to (introspection for tests).
  int task_context(int task_id) const;

 private:
  struct CtxState {
    gpu::ContextId ctx;
    gpu::StreamId stream;
    bool busy = false;
    std::deque<Job*> fifo;
  };

  void try_dispatch(int ctx_idx, SimTime now);
  void on_job_complete(Job& job, int ctx_idx, SimTime now);

  gpu::Executor& exec_;
  metrics::Collector& collector_;
  NaiveConfig cfg_;
  std::vector<CtxState> contexts_;
  std::vector<int> task_ctx_;    // task id -> pinned context index
  std::vector<int> in_flight_;   // per task id
  JobPool jobs_;                 // stable addresses; O(1) retire
  int rr_next_ = 0;
  std::int64_t job_counter_ = 0;
};

}  // namespace sgprs::rt
