// Slab/free-list pool of Jobs with stable addresses and O(1) retire.
//
// Schedulers used to keep jobs in a std::list: one node allocation per
// released frame and a linear scan to erase on completion. The pool hands
// out slots from fixed-size chunks instead — addresses stay stable across
// growth (queued stages hold Job*), a LIFO free list recycles slots so a
// retired job's stage_deadlines vector keeps its capacity for the next
// release, and release() is index-based O(1). After the first few frames a
// steady-state scheduler allocates nothing per job.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/check.hpp"
#include "rt/job.hpp"

namespace sgprs::rt {

class JobPool {
 public:
  JobPool() = default;
  JobPool(const JobPool&) = delete;
  JobPool& operator=(const JobPool&) = delete;

  /// Hands out a reset job slot (recycled before new). The job's
  /// `pool_slot` identifies it for release(); everything else is in the
  /// default-constructed state, with vector capacity retained on reuse.
  Job& acquire() {
    std::uint32_t slot;
    if (!free_.empty()) {
      slot = free_.back();
      free_.pop_back();
    } else {
      slot = static_cast<std::uint32_t>(size_);
      if (slot_index(slot).first == chunks_.size()) {
        chunks_.push_back(std::make_unique<Job[]>(kChunk));
      }
      ++size_;
    }
    Job& job = at(slot);
    job.reset();
    job.pool_slot = static_cast<std::int32_t>(slot);
    ++live_;
    return job;
  }

  /// Returns a job's slot to the free list. O(1); the Job memory is kept
  /// (and its vectors' capacity with it) for reuse.
  void release(Job& job) {
    SGPRS_CHECK_MSG(job.pool_slot >= 0, "job is not from this pool");
    free_.push_back(static_cast<std::uint32_t>(job.pool_slot));
    job.pool_slot = -1;
    --live_;
  }

  /// Releases every live slot at once (device-crash teardown). No job
  /// callbacks fire — callers that hold Job* into the pool must drop them
  /// first. Returns the number of jobs released.
  std::size_t release_all() {
    std::size_t released = 0;
    for (std::uint32_t slot = 0; slot < static_cast<std::uint32_t>(size_);
         ++slot) {
      Job& job = at(slot);
      if (job.pool_slot < 0) continue;
      release(job);
      ++released;
    }
    return released;
  }

  /// Jobs currently acquired.
  std::size_t live() const { return live_; }
  /// Slots ever created (the high-water mark of concurrent jobs).
  std::size_t capacity() const { return size_; }

 private:
  static constexpr std::size_t kChunk = 64;

  static std::pair<std::size_t, std::size_t> slot_index(std::uint32_t slot) {
    return {slot / kChunk, slot % kChunk};
  }
  Job& at(std::uint32_t slot) {
    const auto [chunk, off] = slot_index(slot);
    return chunks_[chunk][off];
  }

  std::vector<std::unique_ptr<Job[]>> chunks_;
  std::vector<std::uint32_t> free_;  // LIFO: hottest slot first
  std::size_t size_ = 0;
  std::size_t live_ = 0;
};

}  // namespace sgprs::rt
