// SGPRS: the paper's online phase (Section IV-B).
//
// Per context, three EDF-ordered stage queues (high / medium / low). The
// two high-priority CUDA streams of a context serve the high queue; the two
// low-priority streams serve medium first, then low. Medium is not an
// offline level: a low stage is promoted to medium when its preceding stage
// finished past its virtual deadline, which lets late chains catch up
// instead of cascading (the paper's defence against the domino effect).
//
// Context assignment for a released stage (Section IV-B2), in order:
//   1. a context whose queues are all empty;
//   2. among contexts whose estimated finish meets the stage deadline, the
//      one with the shortest queue;
//   3. otherwise, the earliest estimated finish time.
// Because the pool is pre-created, this switch is seamless: no MPS
// reconfiguration ever happens at run time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/heap.hpp"
#include "common/rng.hpp"
#include "gpu/context_pool.hpp"
#include "rt/job.hpp"
#include "rt/job_pool.hpp"
#include "rt/scheduler.hpp"

namespace sgprs::rt {

/// Context assignment policy (paper uses kPaper; others are ablations).
enum class ContextAssignPolicy {
  kPaper,        // empty -> meets-deadline+shortest-queue -> earliest finish
  kRoundRobin,   // rotate independent of state
  kRandom,       // uniform random
  kLeastLoaded,  // minimal estimated backlog
};

/// Ordering inside each priority level (paper Section IV-B3 uses EDF;
/// FIFO exists for the ablation).
enum class QueueOrder { kEdf, kFifo };

struct SgprsConfig {
  /// Maximum jobs of one task simultaneously in flight; further releases
  /// are dropped (frame-buffer semantics). Depth 1 sheds overload at
  /// release time, which keeps the post-pivot DMR slope moderate instead
  /// of letting queue backlog push every admitted frame past its deadline.
  int max_in_flight_per_task = 1;
  /// Promote a low stage to medium when its predecessor missed (IV-B3).
  bool medium_boost = true;
  /// Let idle high-priority streams serve medium/low queues. The paper's
  /// description keeps levels separate; enabling this is an ablation.
  bool high_streams_steal = false;
  ContextAssignPolicy assign_policy = ContextAssignPolicy::kPaper;
  QueueOrder queue_order = QueueOrder::kEdf;
  /// Extension beyond the paper: when a stage is about to be released for
  /// a job whose absolute deadline has already passed, abort the job
  /// instead of finishing a frame nobody can use. Aborted jobs count as
  /// dropped (missed). Off by default to match the paper.
  bool abort_hopeless = false;
  std::uint64_t rng_seed = 1;  // used by kRandom only
};

class SgprsScheduler final : public Scheduler {
 public:
  SgprsScheduler(gpu::Executor& exec, const gpu::ContextPool& pool,
                 metrics::Collector& collector, SgprsConfig cfg = {});

  void admit(const Task& task) override;
  void release_job(const Task& task, SimTime now) override;
  int jobs_in_flight() const override { return static_cast<int>(jobs_.live()); }
  int abort_in_flight() override;
  std::string name() const override { return "sgprs"; }

  // Introspection for tests.
  std::size_t queued_stages(int ctx) const;
  std::int64_t stage_migrations() const { return migrations_; }
  std::int64_t medium_promotions() const { return promotions_; }
  std::int64_t jobs_aborted() const { return aborts_; }

 private:
  struct QueuedStage {
    Job* job;
    int stage;
    SimTime deadline;  // absolute virtual deadline (EDF key)
    std::uint64_t seq;
    friend bool operator<(const QueuedStage& a, const QueuedStage& b) {
      if (a.deadline != b.deadline) return a.deadline < b.deadline;
      return a.seq < b.seq;  // FIFO among equal deadlines
    }
  };
  /// Flat binary-heap EDF queue on (deadline, seq) — a strict total order
  /// (seq is unique), so pop order matches the old std::set exactly while
  /// insert/pop stay allocation-free at steady state.
  using StageQueue = common::MinHeap<QueuedStage>;

  struct Slot {
    gpu::StreamId stream;
    bool busy = false;
    SimTime est_done;  // dispatch time + WCET, for finish-time estimates
  };

  struct CtxState {
    gpu::ContextId ctx;
    int sm_limit = 0;
    StageQueue high;
    StageQueue medium;
    StageQueue low;
    std::vector<Slot> high_slots;
    std::vector<Slot> low_slots;
    double queued_work_sec = 0.0;  // WCET sum of queued (undispatched) stages

    std::size_t queue_len() const {
      return high.size() + medium.size() + low.size();
    }
  };

  void release_stage(Job& job, SimTime now);
  int choose_context(const Job& job, int stage, SimTime now) const;
  int choose_paper(const Job& job, int stage, SimTime now) const;
  /// Estimated completion time of a new stage appended to ctx's backlog.
  SimTime estimate_finish(const CtxState& cs, double stage_wcet_sec,
                          SimTime now) const;
  void try_dispatch(int ctx_idx, SimTime now);
  void dispatch(CtxState& cs, Slot& slot, QueuedStage qs, SimTime now);
  void on_stage_complete(Job& job, int stage, int ctx_idx, int slot_idx,
                         bool high_slot, SimTime now);
  void retire_job(Job& job);
  StagePriority effective_priority(const Job& job, int stage) const;
  double stage_wcet_sec(const Job& job, int stage, int sm_limit) const;

  gpu::Executor& exec_;
  metrics::Collector& collector_;
  SgprsConfig cfg_;
  std::vector<CtxState> contexts_;
  JobPool jobs_;  // stable addresses; O(1) retire, slots recycled
  std::vector<int> in_flight_;  // per task id
  std::uint64_t next_seq_ = 0;
  mutable common::Rng rng_;
  int rr_next_ = 0;
  std::int64_t migrations_ = 0;
  std::int64_t promotions_ = 0;
  std::int64_t aborts_ = 0;
};

}  // namespace sgprs::rt
