#include "rt/task.hpp"

#include "common/check.hpp"

namespace sgprs::rt {

Task build_task(int id, std::shared_ptr<const dnn::Network> network,
                const TaskConfig& cfg, const dnn::Profiler& profiler,
                const std::vector<int>& pool_sm_sizes) {
  SGPRS_CHECK(network != nullptr);
  SGPRS_CHECK(cfg.fps > 0.0);
  SGPRS_CHECK(cfg.num_stages >= 1);
  SGPRS_CHECK(!pool_sm_sizes.empty());

  Task task;
  task.id = id;
  task.name = cfg.name;
  task.network = network;
  task.period = SimTime::from_sec(1.0 / cfg.fps);
  task.deadline = cfg.deadline == SimTime::zero() ? task.period : cfg.deadline;
  task.phase = cfg.phase;

  const auto plan = dnn::partition_into_stages(
      *network, profiler.cost_model(), cfg.num_stages);
  task.wcet = profiler.profile(*network, plan, pool_sm_sizes);

  // Virtual deadlines: split D_i across stages proportional to their WCET
  // share, measured at the pool's SM size (Section IV-A2). Offsets are
  // cumulative so the last stage's offset is exactly D_i.
  const int ref_sms = pool_sm_sizes.front();
  const double total_wcet = task.wcet.total_at(ref_sms).to_sec();
  SGPRS_CHECK_MSG(total_wcet > 0.0, "task has zero WCET");

  double cumulative = 0.0;
  for (int s = 0; s < plan.stage_count(); ++s) {
    StageInfo info;
    info.index = s;
    info.nodes = plan.stages[s];
    cumulative += task.wcet.stage_at(s, ref_sms).to_sec();
    const double fraction = cumulative / total_wcet;
    info.virtual_deadline_offset = SimTime::from_sec(
        task.deadline.to_sec() * fraction);
    switch (cfg.priority_policy) {
      case PriorityPolicy::kLastStageHigh:
        info.base_priority = (s == plan.stage_count() - 1)
                                 ? StagePriority::kHigh
                                 : StagePriority::kLow;
        break;
      case PriorityPolicy::kAllLow:
        info.base_priority = StagePriority::kLow;
        break;
      case PriorityPolicy::kAllHigh:
        info.base_priority = StagePriority::kHigh;
        break;
    }
    task.stages.push_back(std::move(info));
  }
  // Guard against rounding: the final stage deadline must equal D_i.
  task.stages.back().virtual_deadline_offset = task.deadline;

  // Placement footprint from the same profile pass (every construction
  // path — identical-task, spec, fleet prototypes — flows through here).
  const dnn::TaskFootprint fp =
      profiler.footprint(*network, ref_sms, task.period.to_sec());
  task.mem_bytes = fp.mem_bytes;
  task.warps = fp.warps;
  return task;
}

}  // namespace sgprs::rt
