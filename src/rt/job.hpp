// Run-time job state (one job = one frame of a task).
//
// A Job tracks one release through its stage chain: the per-stage absolute
// virtual deadlines assigned at release, which stage runs next, whether a
// predecessor missed (driving the medium-priority promotion), and the last
// context used (driving the migration counter). Schedulers own Jobs; the
// Task stays immutable shared state.
#pragma once

#include <cstdint>
#include <vector>

#include "rt/task.hpp"

namespace sgprs::rt {

struct Job {
  const Task* task = nullptr;
  std::int64_t index = 0;  // job number within its task
  SimTime release;
  SimTime abs_deadline;
  /// Absolute virtual deadlines per stage (release + cumulative offsets),
  /// assigned online at release (paper Section IV-B1).
  std::vector<SimTime> stage_deadlines;
  int next_stage = 0;
  /// True once any completed stage finished after its virtual deadline;
  /// makes the *following* low-priority stage medium (Section IV-B3).
  bool predecessor_missed = false;
  /// Context the previous stage ran on (-1 before the first dispatch);
  /// used to count seamless partition switches.
  int last_ctx = -1;
  /// Slot in the owning rt::JobPool (-1 when not pool-managed).
  std::int32_t pool_slot = -1;

  /// Stable identifier for traces: task id in the high bits.
  std::uint64_t tag() const {
    return (static_cast<std::uint64_t>(task->id) << 32) |
           (static_cast<std::uint64_t>(index) & 0xffffffffu);
  }

  /// Back to the freshly-constructed state, except stage_deadlines keeps
  /// its capacity — the point of pooling jobs instead of reallocating them.
  void reset() {
    task = nullptr;
    index = 0;
    release = SimTime{};
    abs_deadline = SimTime{};
    stage_deadlines.clear();
    next_stage = 0;
    predecessor_missed = false;
    last_ctx = -1;
    pool_slot = -1;
  }
};

}  // namespace sgprs::rt
