// Scheduler interface shared by SGPRS and the naive baseline.
//
// The Runner owns the periodic release pattern and calls release_job() at
// each period tick; the scheduler owns everything downstream: admission /
// drop policy, context assignment, queueing, dispatch to executor streams,
// and reporting to the metrics collector.
#pragma once

#include <string>

#include "common/time.hpp"
#include "metrics/collector.hpp"
#include "rt/task.hpp"

namespace sgprs::obs {
class JobTracer;
}  // namespace sgprs::obs

namespace sgprs::rt {

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Offline registration (static assignment decisions live here).
  virtual void admit(const Task& task) = 0;

  /// A new job of `task` is released at `now`.
  virtual void release_job(const Task& task, SimTime now) = 0;

  /// Jobs released but not yet completed or dropped.
  virtual int jobs_in_flight() const = 0;

  /// Device crash: discard every queued and dispatched job without
  /// completing or dropping it through the collector (a faulted job is its
  /// own outcome, not a deadline miss). Returns the number of jobs killed.
  /// Default no-op for schedulers that never run under the fault engine.
  virtual int abort_in_flight() { return 0; }

  virtual std::string name() const = 0;

  /// The scheduler that actually owns queues and jobs. Decorators (the
  /// fleet overload guard) forward to the wrapped instance so counter
  /// introspection (dynamic_cast to SgprsScheduler) keeps working.
  virtual const Scheduler* unwrap() const { return this; }

  /// Attaches this device's execution-span tracer (src/obs/span.hpp,
  /// --trace-spans); nullptr detaches. Decorators override to forward so
  /// the wrapped scheduler records release/dispatch/complete while the
  /// decorator records its own events (the overload guard's sheds). Off
  /// (the default) costs one null check per hook site.
  virtual void set_tracer(obs::JobTracer* tracer) { tracer_ = tracer; }

 protected:
  obs::JobTracer* tracer_ = nullptr;
};

}  // namespace sgprs::rt
