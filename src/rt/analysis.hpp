// Offline schedulability analysis and admission control.
//
// The paper determines its pivot points empirically; this module adds the
// analytical counterpart a deployment needs: given a task set and a pool,
// estimate whether the set is schedulable *before* running it, and admit
// tasks incrementally against a utilization budget.
//
// The analysis is necessarily approximate (the executor is a processor-
// sharing system, not a partitioned uniprocessor), so it exposes both a
// lower-bound test (utilization) and a heuristic response-time estimate
// whose pessimism is configurable. Tests pin the analysis against the
// simulator: the analytical pivot must bracket the empirical one.
#pragma once

#include <cstdint>
#include <vector>

#include "gpu/context_pool.hpp"
#include "gpu/speedup.hpp"
#include "rt/task.hpp"

namespace sgprs::rt {

struct PoolCapacityModel {
  /// Aggregate steady-state service rate of the pool, in units of
  /// "1-SM work seconds per wall second", under the sharing model: every
  /// stream busy, kernels space-sharing each context, global contention
  /// and interference applied.
  double work_rate = 0.0;
  /// Effective service rate of a single stream slot in one context
  /// (SM-seconds per second) at full pool saturation.
  double per_slot_rate = 0.0;
  int total_slots = 0;
};

/// Computes the saturated-capacity model for a pool of `num_contexts`
/// contexts of `sm_per_context` SMs with `streams_per_context` streams,
/// assuming kernels of op class `rep_op` (conv dominates DNN runtime).
PoolCapacityModel pool_capacity(const gpu::SpeedupModel& speedup,
                                const gpu::SharingParams& sharing,
                                int device_total_sms, int num_contexts,
                                int sm_per_context, int streams_per_context,
                                gpu::OpClass rep_op = gpu::OpClass::kConv);

/// Heterogeneous-pool variant: one entry of `ctx_sms` per context, so
/// explicit per-context SM limits are modelled exactly.
PoolCapacityModel pool_capacity(const gpu::SpeedupModel& speedup,
                                const gpu::SharingParams& sharing,
                                int device_total_sms,
                                const std::vector<int>& ctx_sms,
                                int streams_per_context,
                                gpu::OpClass rep_op = gpu::OpClass::kConv);

struct UtilizationReport {
  /// Offered load: 1-SM work seconds demanded per second by the task set.
  double offered_work_rate = 0.0;
  /// Pool capacity under the same units.
  double capacity_work_rate = 0.0;
  double utilization = 0.0;  // offered / capacity
  bool schedulable_by_utilization = false;
};

/// Necessary condition: offered work must not exceed capacity. `tasks`
/// must all be built against the pool SM size used to derive `capacity`.
UtilizationReport utilization_test(const std::vector<Task>& tasks,
                                   const PoolCapacityModel& capacity,
                                   double safety_margin = 1.0);

/// One task's demanded 1-SM work per second, evaluated exactly as the
/// utilization test sees it (first profiled SM size, representative conv
/// speedup). Exposed so placement policies can order candidates by the
/// same load metric admission uses.
double task_work_rate(const Task& task);

struct ResponseTimeReport {
  /// Heuristic worst-case response estimate per task (seconds).
  std::vector<double> response_sec;
  bool all_deadlines_met = false;
};

/// Heuristic response-time estimate: each task's job executes its stages
/// sequentially at the per-slot rate, plus queueing delay proportional to
/// utilization (M/G/1-flavoured inflation). Pessimism grows sharply as
/// utilization approaches 1, mirroring the empirically observed pivot.
ResponseTimeReport response_time_estimate(const std::vector<Task>& tasks,
                                          const PoolCapacityModel& capacity,
                                          int pool_sms);

/// Physical resource budget of the device behind a pool. Zero fields mean
/// "unconstrained" — raw tasks and legacy call sites keep passing.
struct ResourceBudget {
  std::int64_t mem_bytes = 0;
  std::int64_t total_warps = 0;
  /// Fraction of the warp capacity admission may commit (CASE uses 0.9).
  double occupancy_threshold = 0.9;
};

/// Why an admission attempt failed (or that it succeeded). Memory is
/// tested last, so kRejectedMemory means memory was the *sole* remaining
/// blocker — the stream would have fit by compute alone.
enum class AdmitOutcome {
  kAdmitted,
  kRejectedUtilization,
  kRejectedOccupancy,
  kRejectedMemory,
};

/// Admission controller: accepts tasks one at a time while the utilization
/// test (with margin), the response-time estimate, and the physical
/// resource budget (memory, warp occupancy) all pass.
class AdmissionController {
 public:
  AdmissionController(PoolCapacityModel capacity, int pool_sms,
                      double safety_margin = 0.95,
                      ResourceBudget budget = ResourceBudget{})
      : capacity_(capacity),
        pool_sms_(pool_sms),
        margin_(safety_margin),
        budget_(budget) {}

  /// Tries to admit `task`; returns true and retains it if the augmented
  /// set still passes every test.
  bool try_admit(const Task& task) {
    return try_admit_ex(task) == AdmitOutcome::kAdmitted;
  }

  /// As try_admit, but reports which test rejected the task.
  AdmitOutcome try_admit_ex(const Task& task);

  /// Records `task` without testing (admission control disabled, or the
  /// decision was made elsewhere); load accounting stays accurate.
  void force_admit(const Task& task) {
    mem_used_ += task.mem_bytes;
    warps_used_ += task.warps;
    admitted_.push_back(task);
  }

  /// Releases the capacity held by task `task_id` (stream retired or
  /// re-placed elsewhere). Returns false when no admitted task has the id.
  bool remove(int task_id);

  const std::vector<Task>& admitted() const { return admitted_; }
  double current_utilization() const;
  std::int64_t mem_used() const { return mem_used_; }
  std::int64_t warps_used() const { return warps_used_; }
  const ResourceBudget& budget() const { return budget_; }

 private:
  PoolCapacityModel capacity_;
  int pool_sms_;
  double margin_;
  ResourceBudget budget_;
  std::vector<Task> admitted_;
  /// Integer resource accounting: exact under any admit/remove order, so
  /// sharded and replayed runs see identical budgets.
  std::int64_t mem_used_ = 0;
  std::int64_t warps_used_ = 0;
};

}  // namespace sgprs::rt
