#include "rt/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace sgprs::rt {

PoolCapacityModel pool_capacity(const gpu::SpeedupModel& speedup,
                                const gpu::SharingParams& sharing,
                                int device_total_sms, int num_contexts,
                                int sm_per_context, int streams_per_context,
                                gpu::OpClass rep_op) {
  SGPRS_CHECK(num_contexts >= 1);
  SGPRS_CHECK(sm_per_context >= 1);
  return pool_capacity(speedup, sharing, device_total_sms,
                       std::vector<int>(num_contexts, sm_per_context),
                       streams_per_context, rep_op);
}

PoolCapacityModel pool_capacity(const gpu::SpeedupModel& speedup,
                                const gpu::SharingParams& sharing,
                                int device_total_sms,
                                const std::vector<int>& ctx_sms,
                                int streams_per_context,
                                gpu::OpClass rep_op) {
  SGPRS_CHECK(!ctx_sms.empty());
  for (int sms : ctx_sms) SGPRS_CHECK(sms >= 1);
  SGPRS_CHECK(streams_per_context >= 1);

  // Fully saturated pool: every stream of every context runs one kernel.
  std::vector<gpu::ShareRequest> reqs;
  for (int c = 0; c < static_cast<int>(ctx_sms.size()); ++c) {
    for (int s = 0; s < streams_per_context; ++s) {
      reqs.push_back({c, 1.0, rep_op});
    }
  }
  const auto grants = gpu::compute_shares(speedup, device_total_sms, ctx_sms,
                                          reqs, sharing);
  PoolCapacityModel model;
  for (const auto& g : grants) model.work_rate += g.rate;
  model.total_slots = static_cast<int>(grants.size());
  model.per_slot_rate = model.work_rate / model.total_slots;
  return model;
}

namespace {

/// Task's demanded 1-SM work per second: whole-network WCET at 1 SM is not
/// stored, so reconstruct from the profiled pool-SM WCET times the speedup
/// — instead we integrate stage WCETs at the profiled size and scale by
/// the representative-op speedup, which is exact when one op dominates.
double task_work_rate_at(const Task& task, int pool_sms,
                         const gpu::SpeedupModel& speedup, gpu::OpClass rep) {
  const double wcet = task.wcet.total_at(pool_sms).to_sec();
  const double s = speedup.speedup(rep, static_cast<double>(pool_sms));
  return wcet * s / task.period.to_sec();
}

}  // namespace

double task_work_rate(const Task& task) {
  SGPRS_CHECK(!task.wcet.per_stage.empty());
  const int pool_sms = task.wcet.total.begin()->first;
  return task_work_rate_at(task, pool_sms, gpu::SpeedupModel::rtx2080ti(),
                           gpu::OpClass::kConv);
}

UtilizationReport utilization_test(const std::vector<Task>& tasks,
                                   const PoolCapacityModel& capacity,
                                   double safety_margin) {
  SGPRS_CHECK(capacity.work_rate > 0.0);
  SGPRS_CHECK(safety_margin > 0.0 && safety_margin <= 1.0);
  UtilizationReport rep;
  const auto speedup = gpu::SpeedupModel::rtx2080ti();
  for (const auto& t : tasks) {
    SGPRS_CHECK(!t.wcet.per_stage.empty());
    // Use the first profiled SM size as the reference.
    const int pool_sms = t.wcet.total.begin()->first;
    rep.offered_work_rate +=
        task_work_rate_at(t, pool_sms, speedup, gpu::OpClass::kConv);
  }
  rep.capacity_work_rate = capacity.work_rate;
  rep.utilization = rep.offered_work_rate / rep.capacity_work_rate;
  rep.schedulable_by_utilization = rep.utilization <= safety_margin;
  return rep;
}

ResponseTimeReport response_time_estimate(const std::vector<Task>& tasks,
                                          const PoolCapacityModel& capacity,
                                          int pool_sms) {
  SGPRS_CHECK(capacity.per_slot_rate > 0.0);
  ResponseTimeReport rep;
  const auto util = utilization_test(tasks, capacity, 1.0);
  // Queueing inflation via the Sakasegawa M/M/c approximation: with c
  // parallel slots the queueing delay is service * rho^(sqrt(2(c+1))-1) /
  // (c (1 - rho)) — far gentler than single-server 1/(1-rho) until the
  // pool is genuinely close to saturation.
  const double rho = std::min(util.utilization, 0.999);
  const double c = static_cast<double>(capacity.total_slots);
  const double exponent = std::sqrt(2.0 * (c + 1.0)) - 1.0;
  const double inflation =
      1.0 + std::pow(rho, exponent) / (c * (1.0 - rho));
  const auto speedup = gpu::SpeedupModel::rtx2080ti();
  const double slot_speedup =
      capacity.per_slot_rate;  // work/sec for the representative op
  (void)speedup;
  rep.all_deadlines_met = util.utilization < 1.0;
  for (const auto& t : tasks) {
    // Stages run sequentially; each executes on one slot at the saturated
    // per-slot rate. Convert the pool-SM WCET into 1-SM work first.
    const double work =
        t.wcet.total_at(pool_sms).to_sec() *
        gpu::SpeedupModel::rtx2080ti().speedup(gpu::OpClass::kConv,
                                               static_cast<double>(pool_sms));
    const double service = work / slot_speedup;
    const double response = service * inflation;
    rep.response_sec.push_back(response);
    if (response > t.deadline.to_sec()) rep.all_deadlines_met = false;
  }
  return rep;
}

AdmitOutcome AdmissionController::try_admit_ex(const Task& task) {
  admitted_.push_back(task);
  const auto util = utilization_test(admitted_, capacity_, margin_);
  if (!util.schedulable_by_utilization) {
    admitted_.pop_back();
    return AdmitOutcome::kRejectedUtilization;
  }
  const auto rta = response_time_estimate(admitted_, capacity_, pool_sms_);
  if (!rta.all_deadlines_met) {
    admitted_.pop_back();
    return AdmitOutcome::kRejectedUtilization;
  }
  // Physical budgets, checked only when the device declares them. Warp
  // occupancy before memory so kRejectedMemory means memory alone blocked.
  if (budget_.total_warps > 0 &&
      static_cast<double>(warps_used_ + task.warps) >
          budget_.occupancy_threshold *
              static_cast<double>(budget_.total_warps)) {
    admitted_.pop_back();
    return AdmitOutcome::kRejectedOccupancy;
  }
  if (budget_.mem_bytes > 0 &&
      mem_used_ + task.mem_bytes > budget_.mem_bytes) {
    admitted_.pop_back();
    return AdmitOutcome::kRejectedMemory;
  }
  mem_used_ += task.mem_bytes;
  warps_used_ += task.warps;
  return AdmitOutcome::kAdmitted;
}

bool AdmissionController::remove(int task_id) {
  for (auto it = admitted_.begin(); it != admitted_.end(); ++it) {
    if (it->id == task_id) {
      mem_used_ -= it->mem_bytes;
      warps_used_ -= it->warps;
      admitted_.erase(it);
      return true;
    }
  }
  return false;
}

double AdmissionController::current_utilization() const {
  if (admitted_.empty()) return 0.0;
  return utilization_test(admitted_, capacity_, 1.0).utilization;
}

}  // namespace sgprs::rt
