#include "rt/naive_scheduler.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "dnn/partition.hpp"
#include "obs/span.hpp"

namespace sgprs::rt {

NaiveScheduler::NaiveScheduler(gpu::Executor& exec,
                               const gpu::ContextPool& pool,
                               metrics::Collector& collector, NaiveConfig cfg)
    : exec_(exec), collector_(collector), cfg_(cfg) {
  SGPRS_CHECK(cfg_.max_in_flight_per_task >= 1);
  for (const auto& pc : pool.contexts()) {
    CtxState cs;
    cs.ctx = pc.ctx;
    // The naive scheduler uses a single stream per context; take the first
    // stream the pool created, whatever its priority.
    SGPRS_CHECK_MSG(!pc.high_streams.empty() || !pc.low_streams.empty(),
                    "pool context has no streams");
    cs.stream = pc.high_streams.empty() ? pc.low_streams.front()
                                        : pc.high_streams.front();
    contexts_.push_back(cs);
  }
  SGPRS_CHECK(!contexts_.empty());
}

void NaiveScheduler::admit(const Task& task) {
  if (task.id >= static_cast<int>(task_ctx_.size())) {
    task_ctx_.resize(task.id + 1, -1);
    in_flight_.resize(task.id + 1, 0);
  }
  // Static spatial assignment: round-robin, never revisited.
  task_ctx_[task.id] = rr_next_;
  rr_next_ = (rr_next_ + 1) % static_cast<int>(contexts_.size());
}

int NaiveScheduler::task_context(int task_id) const {
  SGPRS_CHECK(task_id >= 0 && task_id < static_cast<int>(task_ctx_.size()));
  SGPRS_CHECK_MSG(task_ctx_[task_id] >= 0, "task was never admitted");
  return task_ctx_[task_id];
}

void NaiveScheduler::release_job(const Task& task, SimTime now) {
  SGPRS_CHECK_MSG(task.id < static_cast<int>(task_ctx_.size()) &&
                      task_ctx_[task.id] >= 0,
                  "release before admit");
  collector_.on_release(task.id, now);
  if (tracer_) tracer_->release(task.id, now);
  if (in_flight_[task.id] >= cfg_.max_in_flight_per_task) {
    collector_.on_drop(task.id, now);  // frame buffer still full
    if (tracer_) tracer_->drop(task.id, now, now);
    return;
  }
  ++in_flight_[task.id];
  Job& job = jobs_.acquire();
  job.task = &task;
  job.index = job_counter_++;
  job.release = now;
  job.abs_deadline = now + task.deadline;
  const int ctx_idx = task_ctx_[task.id];
  contexts_[ctx_idx].fifo.push_back(&job);
  try_dispatch(ctx_idx, now);
}

void NaiveScheduler::try_dispatch(int ctx_idx, SimTime now) {
  CtxState& cs = contexts_[ctx_idx];
  if (cs.busy || cs.fifo.empty()) return;
  Job* job = cs.fifo.front();
  cs.fifo.pop_front();
  cs.busy = true;
  job->last_ctx = ctx_idx;
  // Single whole-network dispatch: this is always the job's first (and
  // only) move from queue to execution.
  if (tracer_) tracer_->dispatch(job->task->id, job->release, now);

  // Whole-network execution, no stage-level scheduling: every layer kernel
  // of the job in topological order on the single stream.
  const auto& net = *job->task->network;
  std::vector<gpu::KernelDesc> kernels;
  kernels.reserve(net.node_count());
  const auto cost = dnn::CostModel::calibrated();
  for (const auto& st : job->task->stages) {
    auto stage_ks = dnn::stage_kernels(net, cost, st.nodes, job->tag());
    for (auto& k : stage_ks) kernels.push_back(std::move(k));
  }
  exec_.enqueue_batch(cs.stream, std::move(kernels),
                      [this, job, ctx_idx](SimTime t) {
                        on_job_complete(*job, ctx_idx, t);
                      });
  (void)now;
}

void NaiveScheduler::on_job_complete(Job& job, int ctx_idx, SimTime now) {
  collector_.on_complete(job.task->id, job.release, job.abs_deadline, now);
  if (tracer_) tracer_->complete(job.task->id, job.release, now);
  --in_flight_[job.task->id];
  jobs_.release(job);
  // The context frees only after the host round-trip (synchronize + frame
  // handling); the next job cannot be dispatched into that gap.
  if (cfg_.host_sync_gap > SimTime::zero()) {
    exec_.engine().schedule_after(cfg_.host_sync_gap, [this, ctx_idx] {
      contexts_[ctx_idx].busy = false;
      try_dispatch(ctx_idx, exec_.engine().now());
    });
  } else {
    contexts_[ctx_idx].busy = false;
    try_dispatch(ctx_idx, now);
  }
}

int NaiveScheduler::abort_in_flight() {
  // Device crash: drop queued and running jobs without collector closes.
  // A stale host_sync_gap event may still fire afterwards; with the fifo
  // cleared and busy already false it is a harmless no-op.
  for (auto& cs : contexts_) {
    cs.fifo.clear();
    cs.busy = false;
  }
  exec_.purge_all();
  const int killed = static_cast<int>(jobs_.release_all());
  std::fill(in_flight_.begin(), in_flight_.end(), 0);
  return killed;
}

}  // namespace sgprs::rt
