#include "rt/scheduler_kind.hpp"

namespace sgprs::rt {

const char* to_string(SchedulerKind k) {
  switch (k) {
    case SchedulerKind::kSgprs: return "sgprs";
    case SchedulerKind::kNaive: return "naive";
  }
  return "?";
}

const char* scheduler_kind_names() { return "sgprs|naive"; }

std::optional<SchedulerKind> parse_scheduler_kind(const std::string& name) {
  if (name == "sgprs") return SchedulerKind::kSgprs;
  if (name == "naive") return SchedulerKind::kNaive;
  return std::nullopt;
}

}  // namespace sgprs::rt
