// Task model (paper Section II) and the offline phase (Section IV-A).
//
// A task is a periodic DNN inference: the network is partitioned into
// stages, each stage gets an offline base priority (two-level scheme: the
// *last* stage of every task is high priority, the rest low) and a virtual
// deadline — a slice of the task's relative deadline proportional to the
// stage's share of the whole-network WCET.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "dnn/network.hpp"
#include "dnn/partition.hpp"
#include "dnn/profiler.hpp"

namespace sgprs::rt {

using common::SimTime;

/// Base (offline) priority of a stage.
enum class StagePriority : int { kHigh = 0, kMedium = 1, kLow = 2 };

inline const char* to_string(StagePriority p) {
  switch (p) {
    case StagePriority::kHigh: return "high";
    case StagePriority::kMedium: return "medium";
    case StagePriority::kLow: return "low";
  }
  return "?";
}

/// Offline priority assignment policy (paper uses kLastStageHigh; the
/// others exist for the ablation study).
enum class PriorityPolicy {
  kLastStageHigh,  // paper Section IV-A1
  kAllLow,
  kAllHigh,
};

/// How a task's job releases arrive. The paper's tasks are strictly
/// periodic; kSporadic is the scenario-spec extension: inter-arrival times
/// are drawn uniformly in [min_separation, max_separation], so the
/// worst-case rate (the one admission analysis must budget for) is
/// 1 / min_separation.
enum class ArrivalModel { kPeriodic, kSporadic };

struct StageInfo {
  int index = 0;
  std::vector<dnn::NodeId> nodes;
  StagePriority base_priority = StagePriority::kLow;
  /// Cumulative virtual-deadline offset from job release: the stage's
  /// absolute deadline is release + this (paper Section IV-B1). The last
  /// stage's offset equals the task's relative deadline.
  SimTime virtual_deadline_offset;
};

struct Task {
  int id = 0;
  std::string name;
  std::shared_ptr<const dnn::Network> network;
  SimTime period;
  SimTime deadline;  // relative, explicit (paper: D_i given initially)
  SimTime phase;     // first release offset
  /// Sporadic tasks release with random inter-arrivals in
  /// [min_separation, max_separation]; zero fields default to the period
  /// (so utilization/admission math keyed on `period` stays worst-case
  /// correct when min_separation == period). Periodic tasks ignore both.
  ArrivalModel arrival = ArrivalModel::kPeriodic;
  SimTime min_separation;
  SimTime max_separation;
  std::vector<StageInfo> stages;
  /// Isolated per-stage WCETs at each pool SM size (offline measurement).
  dnn::WcetTable wcet;
  /// Placement footprint (dnn::Profiler::footprint, or spec overrides):
  /// device memory held while the stream is admitted, and time-averaged
  /// resident warps. Zero means unconstrained — raw tasks built without
  /// the offline phase take no memory/occupancy budget.
  std::int64_t mem_bytes = 0;
  std::int64_t warps = 0;

  int stage_count() const { return static_cast<int>(stages.size()); }
};

struct TaskConfig {
  std::string name = "task";
  double fps = 30.0;  // paper benchmark rate
  /// Relative deadline; zero means "equal to the period" (implicit).
  SimTime deadline = SimTime::zero();
  SimTime phase = SimTime::zero();
  int num_stages = 6;  // paper evaluation setup
  PriorityPolicy priority_policy = PriorityPolicy::kLastStageHigh;
};

/// Runs the offline phase for one task: partition, WCET profiling at each
/// pool SM size, two-level priorities, and proportional virtual deadlines
/// (proportions use the WCET at `pool_sm_sizes.front()`).
Task build_task(int id, std::shared_ptr<const dnn::Network> network,
                const TaskConfig& cfg, const dnn::Profiler& profiler,
                const std::vector<int>& pool_sm_sizes);

}  // namespace sgprs::rt
