// Drives a simulation: job releases for a task set (periodic or sporadic
// per task's ArrivalModel), a scheduler, and a bounded run.
#pragma once

#include <map>
#include <vector>

#include "common/rng.hpp"
#include "rt/scheduler.hpp"
#include "sim/engine.hpp"

namespace sgprs::rt {

struct RunnerConfig {
  SimTime duration = SimTime::from_sec(3.0);
  /// Bounded release jitter: each release is delayed by a uniform random
  /// amount in [0, release_jitter] (camera frames do not arrive on a
  /// perfect clock). Zero disables. Jitter is deterministic per seed and
  /// never reorders a task's own releases.
  SimTime release_jitter = SimTime::zero();
  std::uint64_t jitter_seed = 99;
};

class Runner {
 public:
  /// Tasks must outlive the runner. Admits every task immediately.
  Runner(sim::Engine& engine, Scheduler& scheduler,
         const std::vector<Task>& tasks, RunnerConfig cfg);

  /// Arms the first release of every task without running the engine.
  /// For multi-runner setups (one runner per cluster device sharing one
  /// engine): start() every runner, then run the engine once.
  void start();

  /// start() + runs the engine until the configured duration, leaving the
  /// clock exactly there.
  void run();

  std::int64_t releases_issued() const { return releases_; }

 private:
  void arm_release(const Task& task, SimTime at);
  /// Gap from this release to the next: the period for periodic tasks, a
  /// per-task-seeded uniform draw in [min_separation, max_separation] for
  /// sporadic ones (deterministic regardless of event interleaving).
  SimTime next_interarrival(const Task& task);

  sim::Engine& engine_;
  Scheduler& scheduler_;
  const std::vector<Task>& tasks_;
  RunnerConfig cfg_;
  common::Rng jitter_rng_;
  std::map<int, common::Rng> sporadic_rngs_;  // task id -> arrival rng
  std::int64_t releases_ = 0;
};

}  // namespace sgprs::rt
