// Drives a simulation: job releases for a task set (periodic or sporadic
// per task's ArrivalModel), a scheduler, and a bounded run.
//
// Tasks can be admitted up front (the classic closed-world constructor) or
// churned mid-run: add_task() admits and arms a task while the engine is
// running, retire_task() cancels the pending release through the engine's
// generation-tagged calendar so no stale release ever fires. In-flight jobs
// of a retired task drain through the scheduler normally — retirement stops
// *future* releases, it never yanks work already released.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "rt/scheduler.hpp"
#include "sim/engine.hpp"

namespace sgprs::rt {

struct RunnerConfig {
  SimTime duration = SimTime::from_sec(3.0);
  /// Bounded release jitter: each release is delayed by a uniform random
  /// amount in [0, release_jitter] (camera frames do not arrive on a
  /// perfect clock). Zero disables. Jitter is deterministic per seed and
  /// never reorders a task's own releases.
  SimTime release_jitter = SimTime::zero();
  std::uint64_t jitter_seed = 99;
};

class Runner {
 public:
  /// Tasks must outlive the runner. Admits every task immediately.
  Runner(sim::Engine& engine, Scheduler& scheduler,
         const std::vector<Task>& tasks, RunnerConfig cfg);

  /// Empty runner for open-world (fleet) use: admit tasks with add_task().
  Runner(sim::Engine& engine, Scheduler& scheduler, RunnerConfig cfg);

  /// Admits one task (scheduler admission + arrival-rng setup). The task
  /// must outlive the runner and its id must be unique within this runner.
  /// Before start(): the first release is armed by start() at task.phase.
  /// After start(): the first release is armed at now + task.phase, so a
  /// dynamically admitted stream starts its cadence at admission time.
  void add_task(const Task& task);

  /// Stops future releases of the task: cancels the pending release event
  /// (O(1), generation-checked) and deactivates the stream. Jobs already
  /// released keep flowing through the scheduler. Returns false when the
  /// id is unknown or already retired. The Task object itself must stay
  /// alive until jobs in flight have drained (the fleet runtime keeps all
  /// task storage alive for the whole run).
  bool retire_task(int task_id);

  /// Arms the first release of every task without running the engine.
  /// For multi-runner setups (one runner per cluster device sharing one
  /// engine): start() every runner, then run the engine once.
  void start();

  /// start() + runs the engine until the configured duration, leaving the
  /// clock exactly there.
  void run();

  std::int64_t releases_issued() const { return releases_; }
  /// Admitted minus retired (streams still releasing).
  int active_tasks() const { return active_; }

 private:
  /// Per-task runner state, indexed by admission order (dense, hot-path
  /// friendly). The sporadic arrival rng is seeded from (jitter_seed,
  /// task id) — never from admission order — so a stream's draw sequence
  /// is identical whether it was present at t=0 or churned in later.
  struct TaskState {
    const Task* task = nullptr;
    common::Rng arrival_rng;  // sporadic draws only; periodic never touches
    sim::EventId pending = sim::kInvalidEvent;
    bool active = true;
  };

  /// Admits `task` and returns its states_ index. A live duplicate id is a
  /// hard error; re-admitting a *retired* id (a failed-over stream coming
  /// back to an earlier home) reuses the old slot in place — pending
  /// release lambdas capture indices, so states_ never shrinks or
  /// reorders.
  std::size_t admit_checked(const Task& task);
  void arm_release(std::size_t idx, SimTime at);
  /// Gap from this release to the next: the period for periodic tasks, a
  /// per-task-seeded uniform draw in [min_separation, max_separation] for
  /// sporadic ones (deterministic regardless of event interleaving).
  SimTime next_interarrival(TaskState& ts);

  sim::Engine& engine_;
  Scheduler& scheduler_;
  RunnerConfig cfg_;
  common::Rng jitter_rng_;
  std::vector<TaskState> states_;
  std::int64_t releases_ = 0;
  int active_ = 0;
  bool started_ = false;
};

}  // namespace sgprs::rt
