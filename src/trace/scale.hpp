// Trace synthesis: scale a recorded workload up (or warp it in time)
// without losing its empirical shape.
//
// A recorded trace is one day of one deployment. The scenarios worth
// stress-testing are that day at 10-1000x tenants — same diurnal shape,
// same burst structure, more of everything. scale_trace keeps each
// recorded stream's template, admission instant and lifetime, and:
//   * time-warp: multiplies every timestamp (warp < 1 compresses the day,
//     so a 24h log replays in minutes at its original event *order*);
//   * cloning / rate multiplication: replicates each recorded stream
//     floor(f) times (f = clone * rate), plus one more with probability
//     frac(f), each copy jittered by a seeded uniform offset so clones do
//     not arrive in lockstep;
//   * jitter preserves lifetimes: a copy's admit and retire shift
//     together;
//   * fault events (crash/recover) are fleet-level, not per-stream: they
//     time-warp with everything else but are never cloned or jittered —
//     cloning tenants multiplies load, not outages.
//
// Determinism: every random draw comes from a per-(stream, copy) rng
// derived splitmix64-style from (seed, stream index, copy index) — output
// is a pure function of (input trace, config), so a fixed seed is
// bit-reproducible no matter how the work is ordered (pinned by
// tests/trace/trace_scale_test.cpp and CI).
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace sgprs::trace {

struct TraceScaleConfig {
  /// Timestamp multiplier (> 0): 0.1 replays the day 10x faster.
  double time_warp = 1.0;
  /// Whole-number tenant cloning (>= 1): every recorded stream appears
  /// `clone` times.
  int clone = 1;
  /// Fractional load multiplier (> 0): composes with clone; the effective
  /// per-stream copy count is clone * rate, fractional part drawn per
  /// stream.
  double rate = 1.0;
  /// Max uniform admission offset for clones beyond the first, in
  /// milliseconds of *post-warp* time (copy 0 keeps the recorded instant).
  double jitter_ms = 0.0;
  std::uint64_t seed = 1;
};

/// Validates the config (throws workload::SpecError) and returns the
/// scaled trace: events re-sorted by (time, source event, copy), admit ids
/// renumbered densely in the new order, retires remapped to their admit's
/// new id. The result always passes validate_trace.
Trace scale_trace(const Trace& in, const TraceScaleConfig& cfg);

}  // namespace sgprs::trace
