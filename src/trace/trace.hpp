// Versioned workload traces: the record/replay layer of the simulator.
//
// A trace is the exact admit/retire stream of one run — a list of named
// stream templates plus a time-ordered sequence of admission attempts and
// retirements, each stamped with the audit source tag the fleet runtime
// logged for it. Traces close the loop the synthetic generators cannot:
//
//   run --record-trace t.json   ->  t.json          (capture)
//   run --trace t.json          ==  original run    (replay, byte-identical)
//   trace_scale --clone=100     ->  scaled t.json   (synthesis)
//
// The determinism contract is strict: replaying a trace recorded from a
// dynamic (fleet) run reproduces the original report byte for byte —
// including the time series CSV and the per-decision audit trail. To make
// that hold, the trace stores admission *attempts* (rejected admissions
// consumed a task id in the original run, so replay must re-run admission
// and burn the same ids), timestamps in integer nanoseconds, and template
// doubles in round-trip-exact decimal form.
//
// Format (JSON, strict — unknown keys are errors, messages carry field
// paths, syntax errors carry line/col via common::JsonError):
//
//   {
//     "sgprs_trace": 1,                  // version tag, always first key
//     "name": "...", "description": "...",
//     "templates": [ { ...timeline template schema... } ],
//     "events": [
//       {"t_ns": N, "admit": "tmpl", "id": K, "source": "arrival"},
//       {"t_ns": N, "retire": K, "source": "lifetime elapsed"},
//       {"t_ns": N, "fault": "crash", "device": D},
//       {"t_ns": N, "fault": "recover", "device": D}
//     ]
//   }
//
// docs/traces.md is the format reference.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/time.hpp"
#include "fleet/timeline.hpp"

namespace sgprs::trace {

/// One recorded churn event. Exactly one of admit/retire per event; `id` is
/// the task id the original run assigned (admission attempts consume ids
/// even when rejected, so ids may be sparse among *live* streams but are
/// unique and dense over attempts).
struct TraceEvent {
  enum class Kind { kAdmit, kRetire, kCrash, kRecover };
  Kind kind = Kind::kAdmit;
  std::int64_t t_ns = 0;
  /// Admit: the id this attempt consumed. Retire: the id being retired.
  /// Fault events leave it -1.
  int id = -1;
  /// Crash/recover only: the device index the fault hit. A replayed trace
  /// with fault events *replaces* the spec's scripted faults and stochastic
  /// process (the failover policy still comes from the spec), exactly as a
  /// trace timeline replaces templates/events/arrivals.
  int device = -1;
  /// Admit only: the stream template to instantiate.
  std::string tmpl;
  /// Admit only: tier override; -1 = use the template tier (omitted in
  /// JSON). Reserved for synthesized traces — capture records -1.
  int tier = -1;
  /// Audit source tag: admits carry "scripted"/"arrival"/"initial"/...;
  /// retires carry the retirement detail ("scripted", "lifetime elapsed").
  /// Replay passes it through so audit-trail bytes match the original run.
  std::string source;
};

struct Trace {
  static constexpr int kVersion = 1;
  std::string name;
  std::string description;
  std::vector<fleet::StreamTemplate> templates;
  /// Non-decreasing t_ns; equal-time events replay in list order.
  std::vector<TraceEvent> events;

  /// Timestamp of the last event (0 for an empty trace).
  common::SimTime horizon() const;
};

/// Strict parse of an in-memory JSON document. Throws workload::SpecError
/// with field paths; `default_name` fills `name` when absent.
Trace parse_trace(const common::JsonValue& root,
                  const std::string& default_name);

/// parse_json_file + parse_trace + validate_trace. JSON syntax errors carry
/// the path plus line/col.
Trace load_trace(const std::string& path);

/// Semantic validation: version tag, unique valid templates, admits
/// reference known templates, ids unique per admit and previously admitted
/// per retire, timestamps >= 0 and non-decreasing.
void validate_trace(const Trace& trace);

/// Canonical writer: fixed key order, exact doubles, one event per line.
/// write(parse(write(t))) == write(t) byte for byte.
void write_trace(const Trace& trace, std::ostream& out);
void save_trace(const Trace& trace, const std::string& path);

/// Cheap format sniff: does the file start with an object whose first key
/// is "sgprs_trace"? Lets the CLI and suite runner tell trace data files
/// from scenario specs without a full parse.
bool sniff_trace_file(const std::string& path);

/// Capture sink the fleet runtime (and the static cluster path) feeds.
/// Recording is append-only and cannot perturb the run being recorded.
class TraceRecorder {
 public:
  TraceRecorder() = default;
  TraceRecorder(std::string name, std::string description);

  void set_templates(std::vector<fleet::StreamTemplate> templates);
  void record_admit(common::SimTime t, const std::string& tmpl, int id,
                    int tier_override, const std::string& source);
  void record_retire(common::SimTime t, int id, const std::string& detail);
  /// `crash` true records a crash, false a recovery. `detail` is the audit
  /// detail the runtime logged ("scripted", "mtbf", "mttr elapsed", ...);
  /// replay passes it through so the audit-trail bytes match.
  void record_fault(common::SimTime t, int device, bool crash,
                    const std::string& detail);

  const Trace& trace() const { return trace_; }
  Trace take() { return std::move(trace_); }

 private:
  Trace trace_;
};

}  // namespace sgprs::trace
