#include "trace/trace.hpp"

#include <filesystem>
#include <fstream>
#include <ostream>
#include <unordered_set>

#include "common/json_writer.hpp"
#include "workload/spec_util.hpp"

namespace sgprs::trace {

namespace {

using common::JsonValue;
using common::JsonWriter;
using namespace workload::specdet;

const char* priority_name(rt::PriorityPolicy p) {
  switch (p) {
    case rt::PriorityPolicy::kAllLow: return "all_low";
    case rt::PriorityPolicy::kAllHigh: return "all_high";
    case rt::PriorityPolicy::kLastStageHigh: break;
  }
  return "last_stage_high";
}

const char* arrival_name(rt::ArrivalModel a) {
  return a == rt::ArrivalModel::kSporadic ? "sporadic" : "periodic";
}

TraceEvent parse_event(const JsonValue& v, const std::string& path) {
  require_object(v, path);
  check_keys(v, {"t_ns", "admit", "retire", "fault", "device", "id", "tier",
                 "source"},
             path);
  TraceEvent e;
  const JsonValue* t = v.find("t_ns");
  if (!t) bad(path, "event needs a \"t_ns\" timestamp");
  e.t_ns = get_field("t_ns", path, [&] { return t->as_int(); });

  const JsonValue* admit = v.find("admit");
  const JsonValue* retire = v.find("retire");
  const JsonValue* fault = v.find("fault");
  const int discriminators = (admit != nullptr) + (retire != nullptr) +
                             (fault != nullptr);
  if (discriminators != 1) {
    bad(path,
        "an event takes exactly one of \"admit\", \"retire\" or \"fault\"");
  }
  if (fault) {
    const std::string kind =
        get_field("fault", path, [&] { return fault->as_string(); });
    if (kind == "crash") {
      e.kind = TraceEvent::Kind::kCrash;
    } else if (kind == "recover") {
      e.kind = TraceEvent::Kind::kRecover;
    } else {
      bad(path + ".fault",
          "unknown fault kind \"" + kind + "\" (want crash|recover)");
    }
    const JsonValue* device = v.find("device");
    if (!device) bad(path, "a fault event needs its \"device\" index");
    e.device = static_cast<int>(
        get_field("device", path, [&] { return device->as_int(); }));
    if (v.find("id")) bad(path, "\"id\" only applies to admit/retire events");
    if (v.find("tier")) bad(path, "\"tier\" only applies to admit events");
    e.source = str_or(v, "source", "", path);
    return e;
  }
  if (v.find("device")) {
    bad(path, "\"device\" only applies to fault events");
  }
  if (admit) {
    e.kind = TraceEvent::Kind::kAdmit;
    e.tmpl = get_field("admit", path, [&] { return admit->as_string(); });
    const JsonValue* id = v.find("id");
    if (!id) bad(path, "an admit event needs the \"id\" it consumed");
    const std::int64_t n = get_field("id", path, [&] { return id->as_int(); });
    e.id = static_cast<int>(n);
    e.tier = int_or(v, "tier", -1, path);
  } else {
    e.kind = TraceEvent::Kind::kRetire;
    const std::int64_t n =
        get_field("retire", path, [&] { return retire->as_int(); });
    e.id = static_cast<int>(n);
    if (v.find("id")) bad(path, "a retire event names its id via \"retire\"");
    if (v.find("tier")) bad(path, "\"tier\" only applies to admit events");
  }
  e.source = str_or(v, "source", "", path);
  return e;
}

void write_template(const fleet::StreamTemplate& t, std::ostream& out) {
  JsonWriter w(out);
  w.begin_object();
  w.field("name", t.name);
  w.field("network", t.network);
  w.field_exact("fps", t.fps);
  w.field("stages", t.num_stages);
  w.field_exact("deadline_ms", t.deadline_ms);
  w.field_exact("phase_ms", t.phase_ms);
  w.field("priority", priority_name(t.priority_policy));
  w.field("arrival", arrival_name(t.arrival));
  if (t.arrival == rt::ArrivalModel::kSporadic) {
    w.field_exact("min_separation_ms", t.min_separation_ms);
    w.field_exact("max_separation_ms", t.max_separation_ms);
  }
  w.field("tier", t.tier);
  // Footprint overrides are only written when set, so traces recorded
  // before (or without) them stay byte-stable.
  if (t.mem_mb >= 0.0) w.field_exact("mem_mb", t.mem_mb);
  if (t.warps >= 0) w.field("warps", static_cast<std::int64_t>(t.warps));
  w.end_object();
}

void write_event(const TraceEvent& e, std::ostream& out) {
  JsonWriter w(out);
  w.begin_object();
  w.field("t_ns", e.t_ns);
  switch (e.kind) {
    case TraceEvent::Kind::kAdmit:
      w.field("admit", e.tmpl);
      w.field("id", e.id);
      if (e.tier >= 0) w.field("tier", e.tier);
      break;
    case TraceEvent::Kind::kRetire:
      w.field("retire", e.id);
      break;
    case TraceEvent::Kind::kCrash:
      w.field("fault", "crash");
      w.field("device", e.device);
      break;
    case TraceEvent::Kind::kRecover:
      w.field("fault", "recover");
      w.field("device", e.device);
      break;
  }
  if (!e.source.empty()) w.field("source", e.source);
  w.end_object();
}

}  // namespace

common::SimTime Trace::horizon() const {
  return events.empty() ? common::SimTime::from_ns(0)
                        : common::SimTime::from_ns(events.back().t_ns);
}

Trace parse_trace(const common::JsonValue& root,
                  const std::string& default_name) {
  const std::string path = "trace";
  require_object(root, path);
  check_keys(root, {"sgprs_trace", "name", "description", "templates",
                    "events"},
             path);
  const JsonValue* ver = root.find("sgprs_trace");
  if (!ver) {
    bad(path,
        "missing \"sgprs_trace\" version tag — is this really a trace file?");
  }
  const std::int64_t version =
      get_field("sgprs_trace", path, [&] { return ver->as_int(); });
  if (version != Trace::kVersion) {
    bad(path + ".sgprs_trace",
        "unsupported trace version " + std::to_string(version) +
            " (this build reads version " + std::to_string(Trace::kVersion) +
            ")");
  }

  Trace t;
  t.name = str_or(root, "name", default_name, path);
  t.description = str_or(root, "description", "", path);
  if (const JsonValue* templates = root.find("templates")) {
    const auto& items =
        get_field("templates", path, [&] { return templates->items(); });
    for (std::size_t i = 0; i < items.size(); ++i) {
      t.templates.push_back(fleet::parse_stream_template(
          items[i], path + ".templates[" + std::to_string(i) + "]"));
    }
  }
  if (const JsonValue* events = root.find("events")) {
    const auto& items =
        get_field("events", path, [&] { return events->items(); });
    t.events.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
      t.events.push_back(
          parse_event(items[i], path + ".events[" + std::to_string(i) + "]"));
    }
  }
  return t;
}

void validate_trace(const Trace& trace) {
  const std::string path = "trace";
  if (trace.templates.empty()) {
    bad(path + ".templates", "a trace needs at least one stream template");
  }
  for (std::size_t i = 0; i < trace.templates.size(); ++i) {
    const auto& t = trace.templates[i];
    const std::string p = path + ".templates[" + std::to_string(i) + "]";
    for (std::size_t j = 0; j < i; ++j) {
      if (trace.templates[j].name == t.name) {
        bad(p + ".name", "duplicate template \"" + t.name + "\"");
      }
    }
    fleet::validate_stream_template(t, p);
  }

  std::unordered_set<int> admitted;
  std::unordered_set<int> retired;
  std::int64_t prev_t = 0;
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    const auto& e = trace.events[i];
    const std::string p = path + ".events[" + std::to_string(i) + "]";
    if (e.t_ns < 0) bad(p + ".t_ns", "must be >= 0");
    if (e.t_ns < prev_t) {
      bad(p + ".t_ns",
          "out of order: " + std::to_string(e.t_ns) + " after " +
              std::to_string(prev_t) + " (events must be non-decreasing)");
    }
    prev_t = e.t_ns;
    if (e.kind == TraceEvent::Kind::kCrash ||
        e.kind == TraceEvent::Kind::kRecover) {
      if (e.device < 0) bad(p + ".device", "must be >= 0");
      continue;
    }
    if (e.id < 0) bad(p, "stream id must be >= 0");
    if (e.kind == TraceEvent::Kind::kAdmit) {
      bool known = false;
      for (const auto& t : trace.templates) {
        if (t.name == e.tmpl) {
          known = true;
          break;
        }
      }
      if (!known) bad(p + ".admit", "unknown template \"" + e.tmpl + "\"");
      if (!admitted.insert(e.id).second) {
        bad(p + ".id",
            "duplicate admit id " + std::to_string(e.id) +
                " (admission attempts consume unique ids)");
      }
      if (e.tier < -1) bad(p + ".tier", "must be >= 0 (or omitted)");
    } else {
      if (!admitted.count(e.id)) {
        bad(p + ".retire",
            "retires id " + std::to_string(e.id) + " that was never admitted");
      }
      if (!retired.insert(e.id).second) {
        bad(p + ".retire", "id " + std::to_string(e.id) + " retired twice");
      }
    }
  }
}

void write_trace(const Trace& trace, std::ostream& out) {
  out << "{\n\"sgprs_trace\":" << Trace::kVersion << ",\n";
  out << "\"name\":\"" << JsonWriter::escape(trace.name) << "\",\n";
  out << "\"description\":\"" << JsonWriter::escape(trace.description)
      << "\",\n";
  out << "\"templates\":[";
  for (std::size_t i = 0; i < trace.templates.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    write_template(trace.templates[i], out);
  }
  out << "\n],\n\"events\":[";
  for (std::size_t i = 0; i < trace.events.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    write_event(trace.events[i], out);
  }
  out << "\n]\n}\n";
}

void save_trace(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    throw workload::SpecError("trace: cannot write \"" + path + "\"");
  }
  write_trace(trace, out);
  if (!out) {
    throw workload::SpecError("trace: write to \"" + path + "\" failed");
  }
}

Trace load_trace(const std::string& path) {
  const common::JsonValue root = common::parse_json_file(path);
  Trace t = parse_trace(root, std::filesystem::path(path).stem().string());
  validate_trace(t);
  return t;
}

bool sniff_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return false;
  char buf[256];
  in.read(buf, sizeof(buf));
  const std::string head(buf, static_cast<std::size_t>(in.gcount()));
  const std::size_t first = head.find_first_not_of(" \t\r\n");
  if (first == std::string::npos || head[first] != '{') return false;
  return head.find("\"sgprs_trace\"") != std::string::npos;
}

TraceRecorder::TraceRecorder(std::string name, std::string description) {
  trace_.name = std::move(name);
  trace_.description = std::move(description);
}

void TraceRecorder::set_templates(
    std::vector<fleet::StreamTemplate> templates) {
  trace_.templates = std::move(templates);
}

void TraceRecorder::record_admit(common::SimTime t, const std::string& tmpl,
                                 int id, int tier_override,
                                 const std::string& source) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kAdmit;
  e.t_ns = t.ns;
  e.id = id;
  e.tmpl = tmpl;
  e.tier = tier_override;
  e.source = source;
  trace_.events.push_back(std::move(e));
}

void TraceRecorder::record_retire(common::SimTime t, int id,
                                  const std::string& detail) {
  TraceEvent e;
  e.kind = TraceEvent::Kind::kRetire;
  e.t_ns = t.ns;
  e.id = id;
  e.source = detail;
  trace_.events.push_back(std::move(e));
}

void TraceRecorder::record_fault(common::SimTime t, int device, bool crash,
                                 const std::string& detail) {
  TraceEvent e;
  e.kind = crash ? TraceEvent::Kind::kCrash : TraceEvent::Kind::kRecover;
  e.t_ns = t.ns;
  e.device = device;
  e.source = detail;
  trace_.events.push_back(std::move(e));
}

}  // namespace sgprs::trace
