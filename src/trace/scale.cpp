#include "trace/scale.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "workload/spec_error.hpp"

namespace sgprs::trace {

namespace {

/// Fresh generator for one (stream, copy) pair: state mixes the seed with
/// both indices through distinct odd multipliers, then splitmix64
/// finalizes. Independent of generation order, so the output is a pure
/// function of (trace, config).
common::Rng rng_for(std::uint64_t seed, std::size_t stream, int copy) {
  std::uint64_t state =
      seed + 0x9e3779b97f4a7c15ULL * (static_cast<std::uint64_t>(stream) + 1) +
      0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(copy) + 1);
  return common::Rng(common::splitmix64_next(state));
}

std::int64_t warp(std::int64_t t_ns, double time_warp) {
  return std::llround(static_cast<double>(t_ns) * time_warp);
}

}  // namespace

Trace scale_trace(const Trace& in, const TraceScaleConfig& cfg) {
  using workload::SpecError;
  if (!(cfg.time_warp > 0.0)) {
    throw SpecError("scale.time_warp", "must be > 0");
  }
  if (cfg.clone < 1) throw SpecError("scale.clone", "must be >= 1");
  if (!(cfg.rate > 0.0)) throw SpecError("scale.rate", "must be > 0");
  if (cfg.jitter_ms < 0.0) throw SpecError("scale.jitter_ms", "must be >= 0");

  // Group the recorded events into streams: one admit, at most one retire.
  struct Stream {
    std::size_t admit = 0;
    std::ptrdiff_t retire = -1;
  };
  std::vector<Stream> streams;
  std::unordered_map<int, std::size_t> stream_by_id;
  // Fault events are fleet-level, not per-stream: they time-warp with
  // everything else but are never cloned (cloning tenants multiplies load,
  // not outages) and take no jitter.
  std::vector<std::size_t> faults;
  for (std::size_t i = 0; i < in.events.size(); ++i) {
    const TraceEvent& e = in.events[i];
    if (e.kind == TraceEvent::Kind::kAdmit) {
      stream_by_id[e.id] = streams.size();
      streams.push_back({i, -1});
    } else if (e.kind == TraceEvent::Kind::kRetire) {
      streams[stream_by_id.at(e.id)].retire =
          static_cast<std::ptrdiff_t>(i);
    } else {
      faults.push_back(i);
    }
  }

  // Generate the copies. Jitter shifts a copy's admit and retire by the
  // same offset — lifetimes are part of the recorded shape and survive
  // scaling; only arrival instants spread out.
  struct Generated {
    std::int64_t t_ns;
    std::size_t orig;  // index of the source event in `in`
    std::size_t stream;
    int copy;
    bool admit;
  };
  const double factor = static_cast<double>(cfg.clone) * cfg.rate;
  const int whole = static_cast<int>(std::floor(factor));
  const double frac = factor - static_cast<double>(whole);
  std::vector<Generated> gen;
  gen.reserve(in.events.size() *
              static_cast<std::size_t>(std::ceil(factor)));
  for (std::size_t s = 0; s < streams.size(); ++s) {
    int copies = whole;
    if (frac > 0.0 && rng_for(cfg.seed, s, 0).next_double() < frac) {
      ++copies;
    }
    for (int c = 0; c < copies; ++c) {
      std::int64_t delta = 0;
      if (c > 0 && cfg.jitter_ms > 0.0) {
        delta = std::llround(
            rng_for(cfg.seed, s, c).uniform(0.0, cfg.jitter_ms) * 1e6);
      }
      const std::size_t admit_idx = streams[s].admit;
      gen.push_back({warp(in.events[admit_idx].t_ns, cfg.time_warp) + delta,
                     admit_idx, s, c, true});
      if (streams[s].retire >= 0) {
        const auto retire_idx =
            static_cast<std::size_t>(streams[s].retire);
        gen.push_back(
            {warp(in.events[retire_idx].t_ns, cfg.time_warp) + delta,
             retire_idx, s, c, false});
      }
    }
  }

  for (const std::size_t f : faults) {
    gen.push_back({warp(in.events[f].t_ns, cfg.time_warp), f, 0, 0, false});
  }

  // Deterministic total order: time, then source-event order (an admit
  // always precedes its own retire in the source), then copy index.
  std::sort(gen.begin(), gen.end(),
            [](const Generated& a, const Generated& b) {
              if (a.t_ns != b.t_ns) return a.t_ns < b.t_ns;
              if (a.orig != b.orig) return a.orig < b.orig;
              return a.copy < b.copy;
            });

  Trace out;
  out.name = in.name;
  char desc[160];
  std::snprintf(desc, sizeof(desc),
                "scaled: clone=%d rate=%g time_warp=%g jitter_ms=%g seed=%llu",
                cfg.clone, cfg.rate, cfg.time_warp, cfg.jitter_ms,
                static_cast<unsigned long long>(cfg.seed));
  out.description = in.description.empty()
                        ? std::string(desc)
                        : in.description + " | " + desc;
  out.templates = in.templates;
  out.events.reserve(gen.size());
  // Renumber admit ids densely in the new order; retires follow their
  // (stream, copy)'s admit.
  std::map<std::pair<std::size_t, int>, int> new_id;
  int next_id = 0;
  for (const Generated& g : gen) {
    TraceEvent e = in.events[g.orig];
    e.t_ns = g.t_ns;
    if (e.kind == TraceEvent::Kind::kCrash ||
        e.kind == TraceEvent::Kind::kRecover) {
      out.events.push_back(std::move(e));
      continue;
    }
    if (g.admit) {
      e.id = next_id++;
      new_id[{g.stream, g.copy}] = e.id;
    } else {
      e.id = new_id.at({g.stream, g.copy});
    }
    out.events.push_back(std::move(e));
  }
  return out;
}

}  // namespace sgprs::trace
