#include "common/flags.hpp"

#include <cstdlib>
#include <sstream>

#include "common/check.hpp"

namespace sgprs::common {

void FlagParser::define(const std::string& name, const std::string& help,
                        const std::string& default_value) {
  SGPRS_CHECK_MSG(!flags_.contains(name), "duplicate flag --" << name);
  flags_[name] = Flag{help, default_value, false, false};
  order_.push_back(name);
}

void FlagParser::define_bool(const std::string& name,
                             const std::string& help) {
  SGPRS_CHECK_MSG(!flags_.contains(name), "duplicate flag --" << name);
  Flag f;
  f.help = help;
  f.value = "false";
  f.is_bool = true;
  flags_[name] = std::move(f);
  order_.push_back(name);
}

void FlagParser::define_multi(const std::string& name,
                              const std::string& help) {
  SGPRS_CHECK_MSG(!flags_.contains(name), "duplicate flag --" << name);
  Flag f;
  f.help = help;
  f.is_multi = true;
  flags_[name] = std::move(f);
  order_.push_back(name);
}

bool FlagParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    std::string name = arg;
    std::optional<std::string> value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      error_ = "unknown flag --" + name;
      return false;
    }
    Flag& f = it->second;
    if (f.is_bool) {
      f.value = value.value_or("true");
    } else if (value) {
      f.value = *value;
    } else if (i + 1 < argc) {
      f.value = argv[++i];
    } else {
      error_ = "flag --" + name + " expects a value";
      return false;
    }
    if (f.is_multi) f.values.push_back(f.value);
    f.set = true;
  }
  return true;
}

bool FlagParser::has(const std::string& name) const {
  auto it = flags_.find(name);
  SGPRS_CHECK_MSG(it != flags_.end(), "undefined flag --" << name);
  return it->second.set;
}

std::string FlagParser::get(const std::string& name) const {
  auto it = flags_.find(name);
  SGPRS_CHECK_MSG(it != flags_.end(), "undefined flag --" << name);
  return it->second.value;
}

int FlagParser::get_int(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  const long parsed = std::strtol(v.c_str(), &end, 10);
  SGPRS_CHECK_MSG(end && *end == '\0' && !v.empty(),
                  "flag --" << name << " is not an integer: " << v);
  return static_cast<int>(parsed);
}

double FlagParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  char* end = nullptr;
  const double parsed = std::strtod(v.c_str(), &end);
  SGPRS_CHECK_MSG(end && *end == '\0' && !v.empty(),
                  "flag --" << name << " is not a number: " << v);
  return parsed;
}

const std::vector<std::string>& FlagParser::get_all(
    const std::string& name) const {
  auto it = flags_.find(name);
  SGPRS_CHECK_MSG(it != flags_.end(), "undefined flag --" << name);
  SGPRS_CHECK_MSG(it->second.is_multi,
                  "flag --" << name << " is not repeatable");
  return it->second.values;
}

bool FlagParser::get_bool(const std::string& name) const {
  const std::string v = get(name);
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  SGPRS_CHECK_MSG(false, "flag --" << name << " is not a boolean: " << v);
  return false;
}

std::string FlagParser::help(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [flags]\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    os << "  --" << name;
    if (!f.is_bool) os << "=<value>";
    os << "  " << f.help;
    if (f.is_multi) os << " (repeatable)";
    if (!f.is_bool && !f.value.empty()) os << " (default: " << f.value << ")";
    os << "\n";
  }
  return os.str();
}

}  // namespace sgprs::common
