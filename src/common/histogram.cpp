#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace sgprs::common {

namespace {

constexpr int kTopIndex =
    (Histogram::kMaxExponent + 2) * Histogram::kSubBuckets - 1;

}  // namespace

int Histogram::bucket_index(double v) {
  if (!(v > 0.0)) return 0;  // negatives and NaN clamp with the zeros
  if (v < 1.0) {
    // Multiplying by a power of two is exact, so the cast truncates the
    // true linear bucket — never 128 (v < 1 strictly).
    return static_cast<int>(v * kSubBuckets);
  }
  const int e = std::ilogb(v);
  if (e > kMaxExponent) return kTopIndex;
  // scalbn is an exact exponent shift and x - 1 is exact for x in [1, 2)
  // (Sterbenz), so the sub-bucket is computed without rounding drift —
  // bit-identical on every platform.
  const double frac = std::scalbn(v, -e) - 1.0;
  int sub = static_cast<int>(frac * kSubBuckets);
  sub = std::min(sub, kSubBuckets - 1);
  return (e + 1) * kSubBuckets + sub;
}

double Histogram::bucket_lo(int index) {
  SGPRS_CHECK(index >= 0 && index <= kTopIndex);
  if (index < kSubBuckets) {
    return static_cast<double>(index) / kSubBuckets;
  }
  const int e = index / kSubBuckets - 1;
  const int sub = index % kSubBuckets;
  return std::scalbn(1.0 + static_cast<double>(sub) / kSubBuckets, e);
}

double Histogram::bucket_hi(int index) {
  if (index >= kTopIndex) return std::scalbn(2.0, kMaxExponent);
  return bucket_lo(index + 1);
}

void Histogram::add(double v) {
  if (!(v > 0.0)) v = 0.0;
  const int idx = bucket_index(v);
  if (idx >= static_cast<int>(counts_.size())) counts_.resize(idx + 1, 0);
  ++counts_[idx];
  if (count_ == 0) {
    min_ = v;
    max_ = v;
  } else {
    min_ = std::min(min_, v);
    max_ = std::max(max_, v);
  }
  ++count_;
  sum_ += v;
}

void Histogram::merge(const Histogram& other) {
  if (other.count_ == 0) return;
  if (other.counts_.size() > counts_.size()) {
    counts_.resize(other.counts_.size(), 0);
  }
  for (std::size_t i = 0; i < other.counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::quantile(double q) const {
  SGPRS_CHECK(q >= 0.0 && q <= 1.0);
  if (count_ == 0) return 0.0;
  if (q == 0.0) return min_;
  if (q == 1.0) return max_;
  const double rank = q * static_cast<double>(count_ - 1);
  std::int64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::int64_t c = counts_[i];
    if (c == 0) continue;
    if (rank < static_cast<double>(cum + c)) {
      // Model the bucket's c samples at evenly spaced interior positions
      // and read off the fractional rank within it.
      const double lo = bucket_lo(static_cast<int>(i));
      const double hi = bucket_hi(static_cast<int>(i));
      const double within =
          (rank - static_cast<double>(cum) + 0.5) / static_cast<double>(c);
      const double v = lo + (hi - lo) * within;
      return std::clamp(v, min_, max_);
    }
    cum += c;
  }
  return max_;  // rank == count - 1 lands here via floating round-up
}

}  // namespace sgprs::common
