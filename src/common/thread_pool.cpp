#include "common/thread_pool.hpp"

#include <algorithm>

namespace sgprs::common {

ThreadPool::ThreadPool(int num_threads) {
  SGPRS_CHECK_MSG(num_threads >= 1,
                  "ThreadPool needs >= 1 worker, got " << num_threads);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

int ThreadPool::hardware_threads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain before exiting so the destructor's contract ("every
      // submitted task runs") holds even when stop_ races new wakeups.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace sgprs::common
