// Fixed-size worker pool with futures, for embarrassingly parallel
// simulation fan-out (workload/experiment.hpp).
//
// Deliberately minimal: a FIFO task queue, N workers, submit() returning a
// std::future. Determinism contract: the pool never reorders *results* —
// callers that collect futures in submission order and reduce serially get
// output independent of worker count (pinned by experiment tests). Tasks
// must not submit new tasks from within a worker while the destructor runs.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "common/check.hpp"

namespace sgprs::common {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 1; use hardware_threads() for "all").
  explicit ThreadPool(int num_threads);

  /// Drains the queue: blocks until every submitted task has run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Number of tasks accepted and not yet started.
  std::size_t pending() const;

  /// Enqueues a callable; the future carries its return value (or the
  /// exception it threw). FIFO dispatch order.
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      SGPRS_CHECK_MSG(!stop_, "submit() on a stopping ThreadPool");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows 0 for "unknown").
  static int hardware_threads();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace sgprs::common
