// Deterministic pseudo-random number generation for workload synthesis.
//
// A splitmix64-seeded xoshiro256** generator: fast, reproducible across
// platforms (unlike std::default_random_engine), and good enough statistical
// quality for jittering task phases and generating synthetic task sets.
#pragma once

#include <cstdint>

#include "common/check.hpp"

namespace sgprs::common {

/// One splitmix64 step (Steele et al.): advances `state` by the golden
/// ratio and returns the full-avalanche output. The single source of this
/// finalizer — Rng seeding and the experiment engine's per-job seed
/// derivation both build on it, so they can never drift apart.
inline std::uint64_t splitmix64_next(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Per-stream seed derivation: an affine golden-ratio mix of a base seed
/// and a stream (task) index, fed to Rng::reseed which splitmix64-finalizes
/// it. One definition site — the Runner's arrival rngs and the fleet
/// sharding layer both use it, so the "seeds are a function of (seed, task
/// id) alone, never of admission order" contract cannot drift.
inline std::uint64_t stream_seed(std::uint64_t base, int stream_id) {
  return base + 0x9e3779b97f4a7c15ULL *
                    (static_cast<std::uint64_t>(stream_id) + 1);
}

/// Two-key seed derivation for draws indexed by an (entity, occurrence)
/// pair — e.g. the fault process keys on (device, incident). Two splitmix64
/// steps give full-avalanche separation, so unlike chaining the affine
/// 2-arg form, (a, b) and (b, a) never share a seed. The fleet layer's
/// shard_stream_seed delegates here, which pins the formula.
inline std::uint64_t stream_seed(std::uint64_t base, int a, int b) {
  std::uint64_t state =
      stream_seed(base, a) +
      0xbf58476d1ce4e5b9ULL * (static_cast<std::uint64_t>(b) + 1);
  (void)splitmix64_next(state);
  return splitmix64_next(state);
}

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 to spread a small seed across the full state.
    std::uint64_t x = seed;
    for (auto& s : state_) s = splitmix64_next(x);
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    SGPRS_CHECK(lo <= hi);
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    SGPRS_CHECK(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_u64() % span);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace sgprs::common
