#include "common/json.hpp"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace sgprs::common {

namespace {

std::string position_suffix(int line, int column) {
  if (line <= 0) return "";
  std::ostringstream os;
  os << " (line " << line << ", column " << column << ")";
  return os.str();
}

}  // namespace

JsonError::JsonError(const std::string& msg, int line, int column)
    : std::runtime_error(msg + position_suffix(line, column)),
      line_(line),
      column_(column) {}

JsonError::JsonError(Raw, const std::string& what, int line, int column)
    : std::runtime_error(what), line_(line), column_(column) {}

JsonError JsonError::with_context(const std::string& prefix,
                                  const JsonError& e) {
  return JsonError(Raw{}, prefix + ": " + e.what(), e.line(), e.column());
}

JsonValue JsonValue::of(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::of(double n) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.num_ = n;
  v.num_integral_ = std::nearbyint(n) == n && std::isfinite(n);
  return v;
}

JsonValue JsonValue::of(std::int64_t n) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.num_ = static_cast<double>(n);
  v.num_integral_ = true;
  return v;
}

JsonValue JsonValue::of(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.str_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

const char* JsonValue::type_name(Type t) {
  switch (t) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
  }
  return "?";
}

const char* JsonValue::type_name() const { return type_name(type_); }

namespace {

[[noreturn]] void type_mismatch(const char* want, const char* got) {
  throw JsonError(std::string("expected ") + want + ", got " + got);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) type_mismatch("bool", type_name());
  return bool_;
}

double JsonValue::as_number() const {
  if (type_ != Type::kNumber) type_mismatch("number", type_name());
  return num_;
}

std::int64_t JsonValue::as_int() const {
  if (type_ != Type::kNumber) type_mismatch("integer", type_name());
  if (!num_integral_) {
    throw JsonError("expected integer, got non-integral number " +
                    std::to_string(num_));
  }
  // Guard the cast: a double can hold integral values far outside int64
  // (and the out-of-range conversion would be UB, not saturation).
  if (!(num_ >= -9223372036854775808.0 && num_ < 9223372036854775808.0)) {
    throw JsonError("integer out of range: " + std::to_string(num_));
  }
  return static_cast<std::int64_t>(num_);
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) type_mismatch("string", type_name());
  return str_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (type_ != Type::kArray) type_mismatch("array", type_name());
  return arr_;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  if (type_ != Type::kObject) type_mismatch("object", type_name());
  return obj_;
}

std::size_t JsonValue::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  type_mismatch("array or object", type_name());
}

const JsonValue* JsonValue::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  if (type_ != Type::kObject) type_mismatch("object", type_name());
  if (const JsonValue* v = find(key)) return *v;
  throw JsonError("missing required key \"" + key + "\"");
}

void JsonValue::push(JsonValue v) {
  if (type_ != Type::kArray) type_mismatch("array", type_name());
  arr_.push_back(std::move(v));
}

void JsonValue::set(const std::string& key, JsonValue v) {
  if (type_ != Type::kObject) type_mismatch("object", type_name());
  obj_.emplace_back(key, std::move(v));
}

namespace {

/// Recursive-descent parser with 1-based line/column tracking.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (!at_end()) fail("trailing content after JSON document");
    return v;
  }

 private:
  bool at_end() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  char advance() {
    const char c = text_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw JsonError(msg, line_, col_);
  }

  void skip_ws() {
    while (!at_end()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        advance();
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (!at_end() && peek() != '\n') advance();
      } else {
        break;
      }
    }
  }

  void expect(char c, const char* context) {
    skip_ws();
    if (at_end() || peek() != c) {
      fail(std::string("expected '") + c + "' " + context +
           (at_end() ? " but hit end of input"
                     : std::string(", got '") + peek() + "'"));
    }
    advance();
  }

  JsonValue parse_value() {
    skip_ws();
    if (at_end()) fail("unexpected end of input, expected a value");
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::of(parse_string());
      case 't': return parse_keyword("true", JsonValue::of(true));
      case 'f': return parse_keyword("false", JsonValue::of(false));
      case 'n': return parse_keyword("null", JsonValue());
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
        fail(std::string("unexpected character '") + c +
             "', expected a value");
    }
  }

  JsonValue parse_keyword(const char* word, JsonValue result) {
    for (const char* p = word; *p; ++p) {
      if (at_end() || peek() != *p) {
        fail(std::string("misspelled keyword, expected \"") + word + "\"");
      }
      advance();
    }
    return result;
  }

  JsonValue parse_number() {
    const int line = line_, col = col_;
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') advance();
    auto digits = [&] {
      bool any = false;
      while (!at_end() && peek() >= '0' && peek() <= '9') {
        advance();
        any = true;
      }
      return any;
    };
    // Strict JSON: an integer part is a single 0 or starts with 1-9.
    if (at_end() || peek() < '0' || peek() > '9') {
      throw JsonError("malformed number", line, col);
    }
    if (peek() == '0') {
      advance();
      if (!at_end() && peek() >= '0' && peek() <= '9') {
        throw JsonError("leading zeros are not allowed", line, col);
      }
    } else {
      digits();
    }
    if (!at_end() && peek() == '.') {
      advance();
      if (!digits()) throw JsonError("malformed number", line, col);
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      advance();
      if (!at_end() && (peek() == '+' || peek() == '-')) advance();
      if (!digits()) throw JsonError("malformed number", line, col);
    }
    // of(double) marks integral-valued numbers, which is what as_int checks.
    const std::string token(text_.substr(start, pos_ - start));
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) {
      throw JsonError("number out of double range: " + token, line, col);
    }
    return JsonValue::of(value);
  }

  std::string parse_string() {
    expect('"', "to open a string");
    std::string out;
    while (true) {
      if (at_end()) fail("unterminated string");
      const char c = advance();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character inside string (use \\n, \\t, ...)");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (at_end()) fail("unterminated escape sequence");
      const char e = advance();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail(std::string("unknown escape \"\\") + e + "\"");
      }
    }
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      if (at_end()) fail("truncated \\u escape");
      const char c = advance();
      code <<= 4;
      if (c >= '0' && c <= '9') code |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') code |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') code |= static_cast<unsigned>(c - 'A' + 10);
      else fail("non-hex digit in \\u escape");
    }
    // Encode the BMP code point as UTF-8 (surrogate pairs unsupported —
    // scenario specs are ASCII-leaning; fail loudly instead of mangling).
    if (code >= 0xD800 && code <= 0xDFFF) {
      fail("surrogate-pair \\u escapes are not supported");
    }
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  JsonValue parse_array() {
    expect('[', "to open an array");
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (!at_end() && peek() == ']') {
      advance();
      return arr;
    }
    while (true) {
      arr.push(parse_value());
      skip_ws();
      if (at_end()) fail("unterminated array, expected ',' or ']'");
      const char c = advance();
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  JsonValue parse_object() {
    expect('{', "to open an object");
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (!at_end() && peek() == '}') {
      advance();
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      for (const auto& [k, v] : obj.members()) {
        if (k == key) fail("duplicate key \"" + key + "\"");
      }
      expect(':', "after object key");
      obj.set(key, parse_value());
      skip_ws();
      if (at_end()) fail("unterminated object, expected ',' or '}'");
      const char c = advance();
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
};

}  // namespace

JsonValue parse_json(std::string_view text) {
  return Parser(text).parse_document();
}

JsonValue parse_json_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw JsonError("cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse_json(buf.str());
  } catch (const JsonError& e) {
    throw JsonError::with_context(path, e);
  }
}

}  // namespace sgprs::common
