#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace sgprs::common {
namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kWarn};
std::mutex g_mutex;
}  // namespace

LogLevel log_threshold() { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

const char* log_level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}

void log_line(LogLevel level, const std::string& msg) {
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[sgprs %s] %s\n", log_level_name(level), msg.c_str());
}

}  // namespace sgprs::common
