// Tiny streaming JSON writer, used for chrome://tracing trace export.
//
// Not a general serializer: just enough structure (objects, arrays, scalar
// fields) to emit valid trace-event JSON without pulling in a dependency.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace sgprs::common {

class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Starts a named field inside an object (call before a begin_* or value).
  JsonWriter& key(const std::string& k);

  JsonWriter& value(const std::string& v);
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);

  /// Round-trip-exact double: shortest decimal form that parses back to the
  /// same bits. value(double) prints %.9g, which is fine for reports but
  /// lossy; formats that feed back into the engine (trace files) use this.
  JsonWriter& value_exact(double v);
  JsonWriter& field_exact(const std::string& k, double v) {
    key(k);
    return value_exact(v);
  }

  /// key + scalar value in one call.
  template <typename T>
  JsonWriter& field(const std::string& k, const T& v) {
    key(k);
    return value(v);
  }

  static std::string escape(const std::string& s);

 private:
  void pre_value();
  std::ostream& out_;
  // Tracks whether a separator comma is needed at each nesting level.
  std::vector<bool> need_comma_{};
  bool pending_key_ = false;
};

}  // namespace sgprs::common
