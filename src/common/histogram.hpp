// Mergeable log-linear histogram: exact integer bucket counts with exact
// count / sum / min / max on the side.
//
// Bucket layout: values in [0, 1) land in kSubBuckets linear buckets of
// width 1/kSubBuckets; each octave [2^e, 2^(e+1)) above that splits into
// kSubBuckets log-linear buckets of width 2^e/kSubBuckets. Quantile reads
// interpolate inside a bucket, so their error is bounded by one bucket
// width — a relative error below 1/kSubBuckets (< 0.8%) everywhere.
//
// The property the metrics layer builds on is merge(): bucket counts are
// integers and min/max are order-free, so folding per-shard (or
// per-device) histograms and then reading a quantile returns *bit-equal*
// doubles to one histogram fed the whole population, for any split
// (pinned by tests/common/histogram_test.cpp). That is what makes the
// fleet-wide p50/p99 in metrics/fleet.cpp exact rather than a
// completed-weighted mean of per-device percentiles, while bounding a
// 10k-device run at a few KB per task instead of an unbounded sample
// vector.
#pragma once

#include <cstdint>
#include <vector>

namespace sgprs::common {

class Histogram {
 public:
  /// Buckets per octave (and linear buckets below 1.0).
  static constexpr int kSubBuckets = 128;
  /// Octaves above 1.0; values >= 2^(kMaxExponent+1) saturate into the
  /// top bucket (their exact magnitude survives in max()/sum()).
  static constexpr int kMaxExponent = 30;

  /// Records one sample. Negative values clamp to 0 (latencies are
  /// non-negative by construction; a clamp beats silent UB on a stray
  /// rounding artefact).
  void add(double v);

  /// Folds `other` in: integer bucket-count sums plus exact min/max/sum.
  void merge(const Histogram& other);

  std::int64_t count() const { return count_; }
  bool empty() const { return count_ == 0; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
  }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Quantile at q in [0, 1] (checked). Returns 0 when empty. Uses the
  /// same fractional-rank convention as Percentiles (q * (count - 1)),
  /// interpolated inside the covering bucket and clamped to [min, max] —
  /// so quantile(0) == min and quantile(1) == max exactly.
  double quantile(double q) const;
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  /// Bucket geometry (export and tests).
  static int bucket_index(double v);
  static double bucket_lo(int index);
  static double bucket_hi(int index);
  /// Bucket counts, sized to the highest occupied index + 1.
  const std::vector<std::int64_t>& buckets() const { return counts_; }

 private:
  std::vector<std::int64_t> counts_;
  std::int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace sgprs::common
