// Small-buffer callable: a move-only std::function replacement that never
// heap-allocates.
//
// The discrete-event engine stores one callback per pending event; with
// std::function every capture beyond the libstdc++ 16-byte SBO costs a
// heap allocation per scheduled event — the dominant constant factor of a
// simulation. InplaceFunction fixes the storage inline at compile time and
// static_asserts that every callable actually fits, so outgrowing the
// buffer is a compile error (raise Capacity), never a silent allocation.
//
// Differences from std::function, all deliberate:
//  * move-only (event callbacks are consumed exactly once; copyability
//    would force every capture to be copyable);
//  * callables must be nothrow-move-constructible (moves happen during
//    slab/vector growth, where an exception would lose events);
//  * no target()/target_type() RTTI surface.
#pragma once

#include <cstddef>
#include <functional>
#include <new>
#include <type_traits>
#include <utility>

namespace sgprs::common {

template <typename Signature, std::size_t Capacity = 48,
          std::size_t Align = alignof(std::max_align_t)>
class InplaceFunction;  // undefined: only the R(Args...) partial below

template <typename R, typename... Args, std::size_t Capacity,
          std::size_t Align>
class InplaceFunction<R(Args...), Capacity, Align> {
 public:
  InplaceFunction() = default;
  InplaceFunction(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InplaceFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    emplace(std::forward<F>(f));
  }

  /// Destroys any current target and constructs `f` directly in the inline
  /// buffer — lets containers fill a stored wrapper without a temporary
  /// wrapper + relocate round trip (the event calendar's schedule path).
  template <typename F>
  void emplace(F&& f) {
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= Capacity,
                  "callable capture too large for InplaceFunction's inline "
                  "buffer — raise Capacity at the alias that broke");
    static_assert(alignof(Fn) <= Align,
                  "callable over-aligned for InplaceFunction storage");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "InplaceFunction callables must be nothrow-movable");
    reset();
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    vt_ = vtable_for<Fn>();
  }

  InplaceFunction(InplaceFunction&& o) noexcept : vt_(o.vt_) {
    if (vt_) {
      vt_->relocate(o.buf_, buf_);
      o.vt_ = nullptr;
    }
  }

  InplaceFunction& operator=(InplaceFunction&& o) noexcept {
    if (this != &o) {
      reset();
      vt_ = o.vt_;
      if (vt_) {
        vt_->relocate(o.buf_, buf_);
        o.vt_ = nullptr;
      }
    }
    return *this;
  }

  InplaceFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  InplaceFunction(const InplaceFunction&) = delete;
  InplaceFunction& operator=(const InplaceFunction&) = delete;

  ~InplaceFunction() { reset(); }

  R operator()(Args... args) const {
    return vt_->invoke(buf_, std::forward<Args>(args)...);
  }

  /// Invokes the target and destroys it in one vtable dispatch, leaving
  /// the wrapper empty — the fire path of a one-shot event calendar, one
  /// indirect call cheaper than operator() + destructor. If the target
  /// throws, the wrapper stays engaged so its destructor still destroys
  /// the target (invoke_destroy only destroys on normal return).
  R call_and_reset(Args... args) {
    if constexpr (std::is_void_v<R>) {
      vt_->invoke_destroy(buf_, std::forward<Args>(args)...);
      vt_ = nullptr;
    } else {
      R r = vt_->invoke_destroy(buf_, std::forward<Args>(args)...);
      vt_ = nullptr;
      return r;
    }
  }

  explicit operator bool() const { return vt_ != nullptr; }
  friend bool operator==(const InplaceFunction& f, std::nullptr_t) {
    return !f;
  }
  friend bool operator!=(const InplaceFunction& f, std::nullptr_t) {
    return static_cast<bool>(f);
  }

 private:
  struct VTable {
    R (*invoke)(const unsigned char*, Args&&...);
    // Move-construct into `to`, then destroy the source ("destructive
    // move"): the only move the engine ever needs, and one vtable slot
    // cheaper than separate move + destroy on the hot path.
    void (*relocate)(unsigned char* from, unsigned char* to);
    void (*destroy)(unsigned char*);
    R (*invoke_destroy)(unsigned char*, Args&&...);
  };

  template <typename Fn>
  static const VTable* vtable_for() {
    static constexpr VTable vt = {
        [](const unsigned char* buf, Args&&... args) -> R {
          // Events are logically mutable one-shot callables; const_cast
          // mirrors std::function's const operator() over mutable targets.
          return (*reinterpret_cast<Fn*>(const_cast<unsigned char*>(buf)))(
              std::forward<Args>(args)...);
        },
        [](unsigned char* from, unsigned char* to) {
          Fn* src = reinterpret_cast<Fn*>(from);
          ::new (static_cast<void*>(to)) Fn(std::move(*src));
          src->~Fn();
        },
        [](unsigned char* buf) { reinterpret_cast<Fn*>(buf)->~Fn(); },
        [](unsigned char* buf, Args&&... args) -> R {
          Fn* f = reinterpret_cast<Fn*>(buf);
          if constexpr (std::is_void_v<R>) {
            (*f)(std::forward<Args>(args)...);
            f->~Fn();
          } else {
            R r = (*f)(std::forward<Args>(args)...);
            f->~Fn();
            return r;
          }
        },
    };
    return &vt;
  }

  void reset() {
    if (vt_) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

  const VTable* vt_ = nullptr;
  alignas(Align) mutable unsigned char buf_[Capacity];
};

}  // namespace sgprs::common
