// Internal invariant checking.
//
// SGPRS_CHECK is always on (simulator correctness beats a few ns); failures
// throw sgprs::common::CheckError so tests can assert on violated invariants
// instead of aborting the whole test binary.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace sgprs::common {

class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace sgprs::common

#define SGPRS_CHECK(expr)                                              \
  do {                                                                 \
    if (!(expr)) {                                                     \
      ::sgprs::common::check_failed(#expr, __FILE__, __LINE__, "");    \
    }                                                                  \
  } while (0)

#define SGPRS_CHECK_MSG(expr, msg)                                     \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream sgprs_os_;                                    \
      sgprs_os_ << msg;                                                \
      ::sgprs::common::check_failed(#expr, __FILE__, __LINE__,         \
                                    sgprs_os_.str());                  \
    }                                                                  \
  } while (0)
