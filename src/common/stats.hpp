// Streaming and batch statistics used by the metrics layer.
//
// RunningStats keeps O(1) mean/min/max/variance (Welford); Percentiles
// stores samples for exact quantiles — fine at simulation scale, where a
// run produces thousands (not billions) of latency samples per task.
#pragma once

#include <cstddef>
#include <vector>

namespace sgprs::common {

/// Two-sided 95% confidence interval on a mean. `half_width` is the ±
/// term; [lo, hi] = mean ± half_width. With fewer than two samples the
/// interval collapses to the mean (half_width 0) — callers distinguish
/// "tight" from "unknown" via n.
struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;
  double lo = 0.0;
  double hi = 0.0;
  std::size_t n = 0;
};

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

  void merge(const RunningStats& other);

  /// 95% CI on the mean using Student's t critical value for n-1 degrees
  /// of freedom (exact table to df 30, then asymptotic). Load-bearing for
  /// the Monte-Carlo experiment engine: per-cell replication stats are
  /// merged across shards, then summarized as mean ± half_width.
  ConfidenceInterval confidence_interval() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Batch percentile estimator. Stores samples; quantile() sorts lazily
/// and caches the sorted state behind a dirty flag, so report writers
/// that read p50 then p99 (then max) sort exactly once per add() burst —
/// re-sorting only after new samples arrive.
class Percentiles {
 public:
  void add(double x) { samples_.push_back(x); dirty_ = true; }
  void reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  /// Linear-interpolated quantile, q in [0,1]. Returns 0 when empty.
  double quantile(double q) const;

  /// Raw samples (unsorted unless a quantile was queried). Used to pool
  /// distributions across tasks.
  const std::vector<double>& samples() const { return samples_; }
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }
  double max() const { return quantile(1.0); }

 private:
  mutable std::vector<double> samples_;
  mutable bool dirty_ = false;
};

}  // namespace sgprs::common
