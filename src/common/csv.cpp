#include "common/csv.hpp"

#include <cstdio>

namespace sgprs::common {
namespace {

bool needs_quoting(const std::string& s) {
  return s.find_first_of(",\"\n\r") != std::string::npos;
}

std::string escape(const std::string& s) {
  if (!needs_quoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

void CsvWriter::row(const std::vector<std::string>& cells) {
  bool first = true;
  for (const auto& c : cells) {
    if (!first) out_ << ',';
    out_ << escape(c);
    first = false;
  }
  out_ << '\n';
}

std::string CsvWriter::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace sgprs::common
