// Leveled logging with a process-global threshold.
//
// The simulator is deterministic, so logs are primarily a debugging aid;
// benchmarks run with the threshold at Warn to keep output clean.
#pragma once

#include <sstream>
#include <string>

namespace sgprs::common {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

LogLevel log_threshold();
void set_log_threshold(LogLevel level);
const char* log_level_name(LogLevel level);

/// Emits one formatted line to stderr (thread-safe at line granularity).
void log_line(LogLevel level, const std::string& msg);

namespace detail {
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, os_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace sgprs::common

#define SGPRS_LOG(level)                                       \
  if (::sgprs::common::LogLevel::level <                       \
      ::sgprs::common::log_threshold()) {                      \
  } else                                                       \
    ::sgprs::common::detail::LogMessage(                       \
        ::sgprs::common::LogLevel::level)
