// Minimal JSON reader — the counterpart to json_writer.
//
// Parses a full document into a JsonValue tree. Not a general-purpose
// library: just enough for declarative scenario specs, with two priorities —
// (1) precise errors ("line 12, column 8: expected ',' or '}'") because
// humans edit these files by hand, and (2) checked accessors that name the
// offending key so the spec layer can surface "pool.contexts: expected a
// number" instead of a bare bad_variant_access. `//` line comments are
// accepted (scenario files want inline annotations); everything else is
// strict JSON.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sgprs::common {

/// Parse or type error. `line`/`column` are 1-based and 0 when the error is
/// not tied to a source position (e.g. a type mismatch on a built value).
class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& msg, int line = 0, int column = 0);
  int line() const { return line_; }
  int column() const { return column_; }

  /// Re-raises `e` with a context prefix (e.g. a file path), preserving
  /// its position fields without duplicating the position suffix.
  static JsonError with_context(const std::string& prefix,
                                const JsonError& e);

 private:
  struct Raw {};
  JsonError(Raw, const std::string& what, int line, int column);
  int line_ = 0;
  int column_ = 0;
};

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  // null

  static JsonValue of(bool b);
  static JsonValue of(double n);
  static JsonValue of(std::int64_t n);
  static JsonValue of(int n) { return of(static_cast<std::int64_t>(n)); }
  static JsonValue of(std::string s);
  static JsonValue of(const char* s) { return of(std::string(s)); }
  static JsonValue array();
  static JsonValue object();

  Type type() const { return type_; }
  const char* type_name() const;
  static const char* type_name(Type t);

  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Checked accessors: throw JsonError naming the expected and actual type.
  bool as_bool() const;
  double as_number() const;
  /// Number that must be integral (1e3 is fine, 1.5 is not).
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& items() const;    // array elements
  const std::vector<Member>& members() const;     // object members, in order

  /// Array or object element count.
  std::size_t size() const;

  /// Object lookup; nullptr when the key is absent (or not an object).
  const JsonValue* find(const std::string& key) const;
  /// Object lookup that throws JsonError naming the missing key.
  const JsonValue& at(const std::string& key) const;

  /// Mutators for building values in tests / tools.
  void push(JsonValue v);                      // array
  void set(const std::string& key, JsonValue v);  // object (append)

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  bool num_integral_ = false;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<Member> obj_;
};

/// Parses one JSON document (with optional `//` comments). Trailing
/// non-whitespace after the document is an error. Throws JsonError.
JsonValue parse_json(std::string_view text);

/// Reads and parses a file; errors are prefixed with the path.
JsonValue parse_json_file(const std::string& path);

}  // namespace sgprs::common
