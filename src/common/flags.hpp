// Minimal command-line flag parsing for the CLI tool and examples.
//
// Supports --name=value, --name value, and bare --bool-flag. Unknown flags
// are errors (typos should not silently become defaults). Positional
// arguments are collected in order.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace sgprs::common {

class FlagParser {
 public:
  /// Registers a flag with a help line. Call before parse().
  void define(const std::string& name, const std::string& help,
              const std::string& default_value = "");
  void define_bool(const std::string& name, const std::string& help);
  /// A repeatable flag: every occurrence appends to get_all(). get() on a
  /// multi flag returns the last occurrence.
  void define_multi(const std::string& name, const std::string& help);

  /// Parses argv. Returns false (and fills error()) on unknown flags or
  /// missing values.
  bool parse(int argc, const char* const* argv);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;
  int get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;
  /// Every occurrence of a repeatable flag, in command-line order. Empty
  /// when the flag was never passed.
  const std::vector<std::string>& get_all(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& error() const { return error_; }

  /// Formatted help text listing every defined flag.
  std::string help(const std::string& program) const;

 private:
  struct Flag {
    std::string help;
    std::string value;
    bool is_bool = false;
    bool is_multi = false;
    bool set = false;
    std::vector<std::string> values;  // multi flags only
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
  std::vector<std::string> positional_;
  std::string error_;
};

}  // namespace sgprs::common
