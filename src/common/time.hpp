// Simulation time: a strong integer nanosecond type.
//
// All simulator state advances on SimTime. Using a fixed-point integer (not
// double) keeps event ordering exact and runs reproducible across platforms.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace sgprs::common {

/// Absolute simulation time or a duration, in nanoseconds.
///
/// A plain struct wrapper (rather than std::chrono) so that arithmetic with
/// rates (work / seconds) stays explicit and cheap in the hot DES loop.
struct SimTime {
  std::int64_t ns = 0;

  static constexpr SimTime zero() { return SimTime{0}; }
  static constexpr SimTime max() {
    return SimTime{std::numeric_limits<std::int64_t>::max()};
  }
  static constexpr SimTime from_ns(std::int64_t v) { return SimTime{v}; }
  static constexpr SimTime from_us(double us) {
    return SimTime{static_cast<std::int64_t>(us * 1e3)};
  }
  static constexpr SimTime from_ms(double ms) {
    return SimTime{static_cast<std::int64_t>(ms * 1e6)};
  }
  static constexpr SimTime from_sec(double s) {
    return SimTime{static_cast<std::int64_t>(s * 1e9)};
  }

  constexpr double to_sec() const { return static_cast<double>(ns) * 1e-9; }
  constexpr double to_ms() const { return static_cast<double>(ns) * 1e-6; }
  constexpr double to_us() const { return static_cast<double>(ns) * 1e-3; }

  constexpr bool is_max() const {
    return ns == std::numeric_limits<std::int64_t>::max();
  }

  friend constexpr SimTime operator+(SimTime a, SimTime b) {
    return SimTime{a.ns + b.ns};
  }
  friend constexpr SimTime operator-(SimTime a, SimTime b) {
    return SimTime{a.ns - b.ns};
  }
  friend constexpr SimTime operator*(SimTime a, std::int64_t k) {
    return SimTime{a.ns * k};
  }
  constexpr SimTime& operator+=(SimTime o) {
    ns += o.ns;
    return *this;
  }
  constexpr SimTime& operator-=(SimTime o) {
    ns -= o.ns;
    return *this;
  }
  friend constexpr auto operator<=>(SimTime a, SimTime b) = default;
};

/// Pretty-print a time with an adaptive unit ("1.234 ms", "56.7 us", ...).
inline std::string to_string(SimTime t) {
  const double ms = t.to_ms();
  char buf[48];
  if (t.is_max()) return "+inf";
  if (ms >= 1000.0) {
    std::snprintf(buf, sizeof(buf), "%.3f s", t.to_sec());
  } else if (ms >= 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", ms);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f us", t.to_us());
  }
  return buf;
}

}  // namespace sgprs::common
