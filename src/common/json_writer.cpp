#include "common/json_writer.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/check.hpp"

namespace sgprs::common {

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::pre_value() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // key() already emitted the separator.
  }
  if (!need_comma_.empty()) {
    if (need_comma_.back()) out_ << ',';
    need_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  pre_value();
  out_ << '{';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  SGPRS_CHECK(!need_comma_.empty());
  need_comma_.pop_back();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  pre_value();
  out_ << '[';
  need_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  SGPRS_CHECK(!need_comma_.empty());
  need_comma_.pop_back();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  SGPRS_CHECK(!need_comma_.empty());
  if (need_comma_.back()) out_ << ',';
  need_comma_.back() = true;
  out_ << '"' << escape(k) << "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  pre_value();
  out_ << '"' << escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  pre_value();
  if (!std::isfinite(v)) {
    out_ << "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value_exact(double v) {
  pre_value();
  if (!std::isfinite(v)) {
    out_ << "null";
    return *this;
  }
  // Shortest %.g form that survives a strtod round trip; 17 significant
  // digits always do, most values need fewer.
  char buf[64];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  pre_value();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  pre_value();
  out_ << (v ? "true" : "false");
  return *this;
}

}  // namespace sgprs::common
