// Flat d-ary (default 4-ary) min-heap over a contiguous vector.
//
// Replaces the node-based std::set EDF queues and the std::priority_queue +
// lazy-map pair in the hot paths: one cache-friendly array, no per-element
// allocation after the vector reaches its high-water capacity, and pop()
// hands the minimum back by value instead of forcing a top()/pop() pair.
// Arity 4 halves the tree depth of a binary heap, which cuts the cache
// misses of the sift-down that dominates pop-heavy discrete-event loads;
// sifts move a "hole" instead of swapping, so each element is written once.
//
// Ordering contract: Less must be a strict weak ordering and — everywhere
// determinism matters — a strict *total* order (callers key by (deadline,
// seq) or (time, seq) with a unique seq), so pop order is a pure function
// of the inserted values, never of heap internals or arity.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <iterator>
#include <utility>
#include <vector>

namespace sgprs::common {

template <typename T, typename Less = std::less<T>, std::size_t Arity = 4>
class MinHeap {
  static_assert(Arity >= 2);

 public:
  MinHeap() = default;
  explicit MinHeap(Less less) : less_{std::move(less)} {}

  bool empty() const { return v_.empty(); }
  std::size_t size() const { return v_.size(); }
  std::size_t capacity() const { return v_.capacity(); }
  void reserve(std::size_t n) { v_.reserve(n); }
  void clear() { v_.clear(); }

  const T& top() const { return v_.front(); }

  void push(T x) {
    std::size_t i = v_.size();
    v_.push_back(std::move(x));
    // Hole sift-up: keep the new element in a register, shift parents down.
    T item = std::move(v_[i]);
    while (i > 0) {
      const std::size_t parent = (i - 1) / Arity;
      if (!less_(item, v_[parent])) break;
      v_[i] = std::move(v_[parent]);
      i = parent;
    }
    v_[i] = std::move(item);
  }

  /// Removes and returns the minimum element.
  T pop() {
    T out = std::move(v_.front());
    T item = std::move(v_.back());
    v_.pop_back();
    if (v_.empty()) return out;
    // Hole sift-down from the root: pull the min child up into the hole
    // until `item` (the former last leaf) fits.
    const std::size_t n = v_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = i * Arity + 1;
      if (first >= n) break;
      const std::size_t last = std::min(first + Arity, n);
      std::size_t min_c = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (less_(v_[c], v_[min_c])) min_c = c;
      }
      if (!less_(v_[min_c], item)) break;
      v_[i] = std::move(v_[min_c]);
      i = min_c;
    }
    v_[i] = std::move(item);
    return out;
  }

  /// Drops every element failing `keep` and restores the heap property in
  /// O(n) — the engine's stale-entry compaction. Relative order of kept
  /// elements is irrelevant: the subsequent heapify re-establishes it.
  template <typename Keep>
  void compact(const Keep& keep) {
    std::size_t w = 0;
    for (std::size_t r = 0; r < v_.size(); ++r) {
      if (keep(v_[r])) {
        if (w != r) v_[w] = std::move(v_[r]);
        ++w;
      }
    }
    v_.resize(w);
    heapify();
  }

  /// Moves every element of `src` in and leaves `src` empty (capacity
  /// kept). Small batches sift in one by one; once a batch is a sizable
  /// fraction of the heap, appending everything and re-heapifying in O(n)
  /// is cheaper than k sift-ups — this is what makes burst scheduling
  /// (every task's releases arming at once) near-O(1) per event.
  void merge_from(std::vector<T>& src) {
    if (src.size() <= 8 || src.size() < v_.size() / 8) {
      for (T& x : src) push(std::move(x));
    } else {
      v_.insert(v_.end(), std::make_move_iterator(src.begin()),
                std::make_move_iterator(src.end()));
      heapify();
    }
    src.clear();
  }

 private:
  /// Floyd heapify: sift down every internal node, deepest first. O(n).
  void heapify() {
    if (v_.size() < 2) return;
    for (std::size_t i = (v_.size() - 2) / Arity + 1; i-- > 0;) {
      sift_down(i);
    }
  }

  void sift_down(std::size_t i) {
    const std::size_t n = v_.size();
    T item = std::move(v_[i]);
    for (;;) {
      const std::size_t first = i * Arity + 1;
      if (first >= n) break;
      const std::size_t last = std::min(first + Arity, n);
      std::size_t min_c = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (less_(v_[c], v_[min_c])) min_c = c;
      }
      if (!less_(v_[min_c], item)) break;
      v_[i] = std::move(v_[min_c]);
      i = min_c;
    }
    v_[i] = std::move(item);
  }

  std::vector<T> v_;
  Less less_{};
};

}  // namespace sgprs::common
