// Minimal CSV writer for benchmark/experiment output.
#pragma once

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace sgprs::common {

/// Writes RFC-4180-ish CSV rows to a stream the caller owns.
/// Values containing commas, quotes, or newlines are quoted and escaped.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  void header(std::initializer_list<std::string> names) {
    row(std::vector<std::string>(names));
  }
  void row(const std::vector<std::string>& cells);

  /// Convenience: format doubles with fixed precision.
  static std::string num(double v, int precision = 4);

 private:
  std::ostream& out_;
};

}  // namespace sgprs::common
