#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace sgprs::common {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = x;
    min_ = x;
    max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double nt = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / nt;
  mean_ = (n1 * mean_ + n2 * other.mean_) / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Percentiles::quantile(double q) const {
  SGPRS_CHECK(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  if (dirty_) {
    std::sort(samples_.begin(), samples_.end());
    dirty_ = false;
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace sgprs::common
