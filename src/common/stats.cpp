#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace sgprs::common {

void RunningStats::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    mean_ = x;
    min_ = x;
    max_ = x;
    m2_ = 0.0;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double nt = n1 + n2;
  m2_ += other.m2_ + delta * delta * n1 * n2 / nt;
  mean_ = (n1 * mean_ + n2 * other.mean_) / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

namespace {

/// Two-sided 95% Student t critical values, indexed by degrees of freedom
/// (entry 0 unused). Beyond df 30 the normal approximation is within 2%.
constexpr double kT95[] = {
    0.0,    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262,
    2.228,  2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093,
    2.086,  2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045,
    2.042};

double t_critical_95(std::size_t df) {
  if (df == 0) return 0.0;
  if (df <= 30) return kT95[df];
  if (df <= 40) return 2.021;
  if (df <= 60) return 2.000;
  if (df <= 120) return 1.980;
  return 1.960;
}

}  // namespace

ConfidenceInterval RunningStats::confidence_interval() const {
  ConfidenceInterval ci;
  ci.mean = mean();
  ci.n = n_;
  if (n_ >= 2) {
    ci.half_width =
        t_critical_95(n_ - 1) * stddev() / std::sqrt(static_cast<double>(n_));
  }
  ci.lo = ci.mean - ci.half_width;
  ci.hi = ci.mean + ci.half_width;
  return ci;
}

double Percentiles::quantile(double q) const {
  SGPRS_CHECK(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  if (dirty_) {
    std::sort(samples_.begin(), samples_.end());
    dirty_ = false;
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

}  // namespace sgprs::common
