#include "cluster/placer.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "common/check.hpp"

namespace sgprs::cluster {

namespace {

/// FNV-1a over the task name: stable across platforms and standard-library
/// implementations, unlike std::hash (affinity must not move between
/// builds).
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Placer::Placer(std::vector<PlacerDevice> devices, PlacementPolicy policy,
               double admission_margin)
    : policy_(policy), margin_(admission_margin) {
  SGPRS_CHECK_MSG(!devices.empty(), "placer needs at least one device");
  SGPRS_CHECK_MSG(admission_margin <= 1.0,
                  "admission margin is a fraction of capacity");
  devices_.reserve(devices.size());
  for (auto& d : devices) add_device(std::move(d));
}

int Placer::add_device(PlacerDevice device, bool active) {
  SGPRS_CHECK(device.capacity.work_rate > 0.0);
  // A disabled margin still needs a valid controller for load tracking.
  rt::AdmissionController controller(device.capacity, device.pool_sms,
                                     margin_ > 0.0 ? margin_ : 1.0);
  devices_.push_back(
      DeviceState{std::move(device), std::move(controller), active});
  return static_cast<int>(devices_.size()) - 1;
}

void Placer::set_device_active(int d, bool active) {
  devices_.at(d).active = active;
}

int Placer::active_devices() const {
  int n = 0;
  for (const auto& d : devices_) n += d.active ? 1 : 0;
  return n;
}

bool Placer::remove_task(int d, int task_id) {
  return devices_.at(d).controller.remove(task_id);
}

double Placer::utilization(int d) const {
  return devices_.at(d).controller.current_utilization();
}

double Placer::remaining_capacity(int d) const {
  const DeviceState& ds = devices_.at(d);
  const double budget =
      (margin_ > 0.0 ? margin_ : 1.0) * ds.info.capacity.work_rate;
  const double offered =
      ds.controller.current_utilization() * ds.info.capacity.work_rate;
  return budget - offered;
}

int Placer::task_count(int d) const {
  return static_cast<int>(devices_.at(d).controller.admitted().size());
}

const std::vector<rt::Task>& Placer::placed_on(int d) const {
  return devices_.at(d).controller.admitted();
}

std::vector<int> Placer::candidate_order(const rt::Task& task) const {
  const int n = num_devices();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);

  switch (policy_) {
    case PlacementPolicy::kRoundRobin:
      for (int i = 0; i < n; ++i) order[i] = (rr_next_ + i) % n;
      break;
    case PlacementPolicy::kHashAffinity: {
      const int home = static_cast<int>(fnv1a(task.name) % n);
      for (int i = 0; i < n; ++i) order[i] = (home + i) % n;
      break;
    }
    case PlacementPolicy::kLeastLoaded: {
      std::vector<double> load(n);
      for (int i = 0; i < n; ++i) load[i] = utilization(i);
      std::stable_sort(order.begin(), order.end(),
                       [&](int a, int b) { return load[a] < load[b]; });
      break;
    }
    case PlacementPolicy::kBinPackUtilization: {
      std::vector<double> spare(n);
      for (int i = 0; i < n; ++i) spare[i] = remaining_capacity(i);
      std::stable_sort(order.begin(), order.end(),
                       [&](int a, int b) { return spare[a] > spare[b]; });
      break;
    }
  }
  return order;
}

std::optional<int> Placer::force_place(const rt::Task& task) {
  for (int d : candidate_order(task)) {
    if (!devices_[d].active) continue;
    devices_[d].controller.force_admit(task);
    if (policy_ == PlacementPolicy::kRoundRobin) {
      rr_next_ = (d + 1) % num_devices();
    }
    return d;
  }
  ++rejected_;
  return std::nullopt;
}

std::optional<int> Placer::place(const rt::Task& task) {
  for (int d : candidate_order(task)) {
    if (!devices_[d].active) continue;
    auto& controller = devices_[d].controller;
    if (margin_ <= 0.0) {
      controller.force_admit(task);  // admission control disabled
    } else if (!controller.try_admit(task)) {
      continue;
    }
    if (policy_ == PlacementPolicy::kRoundRobin) {
      rr_next_ = (d + 1) % num_devices();
    }
    return d;
  }
  ++rejected_;
  return std::nullopt;
}

}  // namespace sgprs::cluster
