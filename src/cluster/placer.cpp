#include "cluster/placer.hpp"

#include <algorithm>
#include <cstdint>
#include <numeric>

#include "common/check.hpp"

namespace sgprs::cluster {

namespace {

/// FNV-1a over the task name: stable across platforms and standard-library
/// implementations, unlike std::hash (affinity must not move between
/// builds).
std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

Placer::Placer(std::vector<PlacerDevice> devices, PlacementPolicy policy,
               double admission_margin, double occupancy_threshold)
    : policy_(policy),
      margin_(admission_margin),
      occupancy_threshold_(occupancy_threshold) {
  SGPRS_CHECK_MSG(!devices.empty(), "placer needs at least one device");
  SGPRS_CHECK_MSG(admission_margin <= 1.0,
                  "admission margin is a fraction of capacity");
  SGPRS_CHECK_MSG(occupancy_threshold > 0.0 && occupancy_threshold <= 1.0,
                  "occupancy threshold is a fraction of warp capacity");
  devices_.reserve(devices.size());
  for (auto& d : devices) add_device(std::move(d));
}

int Placer::add_device(PlacerDevice device, bool active) {
  SGPRS_CHECK(device.capacity.work_rate > 0.0);
  rt::ResourceBudget budget;
  budget.mem_bytes = device.spec.mem_bytes;
  budget.total_warps = device.spec.total_warps();
  budget.occupancy_threshold = occupancy_threshold_;
  // A disabled margin still needs a valid controller for load tracking.
  rt::AdmissionController controller(device.capacity, device.pool_sms,
                                     margin_ > 0.0 ? margin_ : 1.0, budget);
  devices_.push_back(
      DeviceState{std::move(device), std::move(controller), active});
  return static_cast<int>(devices_.size()) - 1;
}

void Placer::set_device_active(int d, bool active) {
  devices_.at(d).active = active;
}

int Placer::active_devices() const {
  int n = 0;
  for (const auto& d : devices_) n += d.active ? 1 : 0;
  return n;
}

bool Placer::remove_task(int d, int task_id) {
  return devices_.at(d).controller.remove(task_id);
}

double Placer::utilization(int d) const {
  return devices_.at(d).controller.current_utilization();
}

double Placer::remaining_capacity(int d) const {
  const DeviceState& ds = devices_.at(d);
  const double budget =
      (margin_ > 0.0 ? margin_ : 1.0) * ds.info.capacity.work_rate;
  const double offered =
      ds.controller.current_utilization() * ds.info.capacity.work_rate;
  // force_place / disabled-margin overload can push offered past the
  // budget; spare capacity is never negative.
  return std::max(0.0, budget - offered);
}

std::int64_t Placer::remaining_mem_bytes(int d) const {
  const DeviceState& ds = devices_.at(d);
  return std::max<std::int64_t>(
      0, ds.info.spec.mem_bytes - ds.controller.mem_used());
}

int Placer::task_count(int d) const {
  return static_cast<int>(devices_.at(d).controller.admitted().size());
}

const std::vector<rt::Task>& Placer::placed_on(int d) const {
  return devices_.at(d).controller.admitted();
}

double Placer::order_key(int d) const {
  switch (policy_) {
    case PlacementPolicy::kLeastLoaded:
      return utilization(d);
    case PlacementPolicy::kBinPackUtilization:
    case PlacementPolicy::kWorstFit:
      return remaining_capacity(d);
    case PlacementPolicy::kBinPackMemory:
      return static_cast<double>(remaining_mem_bytes(d));
    case PlacementPolicy::kRoundRobin:
    case PlacementPolicy::kHashAffinity:
      break;
  }
  return 0.0;
}

bool Placer::order_ascending() const {
  // Best-fit family probes the least spare first (so the first admitting
  // device is the tightest fit); worst-fit probes the most spare first.
  return policy_ != PlacementPolicy::kWorstFit;
}

std::vector<int> Placer::candidate_order(const rt::Task& task) const {
  const int n = num_devices();
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);

  switch (policy_) {
    case PlacementPolicy::kRoundRobin:
      for (int i = 0; i < n; ++i) order[i] = (rr_next_ + i) % n;
      break;
    case PlacementPolicy::kHashAffinity: {
      const int home = static_cast<int>(fnv1a(task.name) % n);
      for (int i = 0; i < n; ++i) order[i] = (home + i) % n;
      break;
    }
    case PlacementPolicy::kLeastLoaded:
    case PlacementPolicy::kBinPackUtilization:
    case PlacementPolicy::kBinPackMemory:
    case PlacementPolicy::kWorstFit: {
      std::vector<double> key(n);
      for (int i = 0; i < n; ++i) key[i] = order_key(i);
      const bool asc = order_ascending();
      std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return asc ? key[a] < key[b] : key[a] > key[b];
      });
      break;
    }
  }
  return order;
}

std::optional<int> Placer::force_place(const rt::Task& task) {
  for (int d : candidate_order(task)) {
    if (!devices_[d].active) continue;
    devices_[d].controller.force_admit(task);
    if (policy_ == PlacementPolicy::kRoundRobin) {
      rr_next_ = (d + 1) % num_devices();
    }
    return d;
  }
  ++rejected_;
  return std::nullopt;
}

std::optional<int> Placer::place(const rt::Task& task) {
  return place_ex(task).device;
}

PlaceResult Placer::place_ex(const rt::Task& task) {
  bool saw_oom = false;
  for (int d : candidate_order(task)) {
    if (!devices_[d].active) continue;
    auto& controller = devices_[d].controller;
    if (margin_ <= 0.0) {
      controller.force_admit(task);  // admission control disabled
    } else {
      const rt::AdmitOutcome out = controller.try_admit_ex(task);
      if (out != rt::AdmitOutcome::kAdmitted) {
        saw_oom = saw_oom || out == rt::AdmitOutcome::kRejectedMemory;
        continue;
      }
    }
    if (policy_ == PlacementPolicy::kRoundRobin) {
      rr_next_ = (d + 1) % num_devices();
    }
    return PlaceResult{d, false};
  }
  ++rejected_;
  if (saw_oom) ++oom_rejected_;
  return PlaceResult{std::nullopt, saw_oom};
}

std::vector<PlaceResult> Placer::place_batch(
    const std::vector<rt::Task>& tasks, bool force) {
  std::vector<PlaceResult> results(tasks.size());
  if (force) {
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      results[i].device = force_place(tasks[i]);
    }
    return results;
  }
  if (policy_ == PlacementPolicy::kRoundRobin ||
      policy_ == PlacementPolicy::kHashAffinity) {
    // Order-keyed by the stream, not the load — nothing to cache.
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      results[i] = place_ex(tasks[i]);
    }
    return results;
  }

  // Load-sorted policies: compute every device's ordering key once, then
  // refresh only the device each placement lands on. A placement changes
  // no other device's load, so the candidate orderings — and therefore the
  // decisions — are byte-identical to sequential place() calls, without
  // the O(batch × devices) utilization recomputes.
  const int n = num_devices();
  std::vector<double> key(n);
  for (int d = 0; d < n; ++d) key[d] = order_key(d);

  std::vector<std::size_t> item(tasks.size());
  std::iota(item.begin(), item.end(), std::size_t{0});
  // Best-fit *decreasing*: the bin-packing policies consider streams
  // largest-first over their binding dimension, which is what makes
  // best-fit pack tightly. Other policies keep arrival order.
  if (policy_ == PlacementPolicy::kBinPackUtilization) {
    std::vector<double> w(tasks.size());
    for (std::size_t i = 0; i < tasks.size(); ++i) {
      w[i] = rt::task_work_rate(tasks[i]);
    }
    std::stable_sort(item.begin(), item.end(),
                     [&](std::size_t a, std::size_t b) { return w[a] > w[b]; });
  } else if (policy_ == PlacementPolicy::kBinPackMemory) {
    std::stable_sort(item.begin(), item.end(), [&](std::size_t a,
                                                   std::size_t b) {
      return tasks[a].mem_bytes > tasks[b].mem_bytes;
    });
  }

  const bool asc = order_ascending();
  std::vector<int> order(n);
  for (std::size_t idx : item) {
    const rt::Task& task = tasks[idx];
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      return asc ? key[a] < key[b] : key[a] > key[b];
    });
    bool saw_oom = false;
    bool placed = false;
    for (int d : order) {
      if (!devices_[d].active) continue;
      auto& controller = devices_[d].controller;
      if (margin_ <= 0.0) {
        controller.force_admit(task);
      } else {
        const rt::AdmitOutcome out = controller.try_admit_ex(task);
        if (out != rt::AdmitOutcome::kAdmitted) {
          saw_oom = saw_oom || out == rt::AdmitOutcome::kRejectedMemory;
          continue;
        }
      }
      key[d] = order_key(d);
      results[idx] = PlaceResult{d, false};
      placed = true;
      break;
    }
    if (!placed) {
      ++rejected_;
      if (saw_oom) ++oom_rejected_;
      results[idx] = PlaceResult{std::nullopt, saw_oom};
    }
  }
  return results;
}

}  // namespace sgprs::cluster
