#include "cluster/cluster.hpp"

#include <algorithm>

#include "common/check.hpp"
#include "rt/analysis.hpp"

namespace sgprs::cluster {

std::vector<int> pool_sm_sizes_for(const gpu::DeviceSpec& spec,
                                   const gpu::ContextPoolConfig& pool,
                                   const gpu::SharingParams& sharing) {
  // A scratch engine/executor/pool answers exactly what a real device of
  // this spec would expose — no duplicated sizing arithmetic to drift.
  sim::Engine scratch;
  gpu::Executor exec(scratch, spec, gpu::SpeedupModel::rtx2080ti(), sharing);
  gpu::ContextPool p(exec, pool);
  std::vector<int> sizes;
  for (const auto& pc : p.contexts()) {
    if (std::find(sizes.begin(), sizes.end(), pc.sm_limit) == sizes.end()) {
      sizes.push_back(pc.sm_limit);
    }
  }
  return sizes;
}

Cluster::Cluster(sim::Engine& engine, metrics::Collector& collector,
                 const ClusterConfig& cfg)
    : engine_(engine), collector_(collector), cfg_(cfg) {
  SGPRS_CHECK_MSG(!cfg_.devices.empty(), "cluster needs at least one device");

  std::vector<PlacerDevice> placer_devices;
  for (const auto& spec : cfg_.devices) {
    devices_.push_back(make_device(spec, num_devices()));
    placer_devices.push_back(placer_device_for(spec, devices_.back()));
  }
  placer_ = std::make_unique<Placer>(std::move(placer_devices),
                                     cfg_.placement, cfg_.admission_margin,
                                     cfg_.occupancy_threshold);
}

Cluster::Device Cluster::make_device(const gpu::DeviceSpec& spec, int index) {
  Device dev;
  dev.spec = spec;
  // Sharded runtimes route each device's whole event/metrics surface
  // (executor, runner, scheduler collector) onto its shard; the classic
  // fleet shares the constructor's engine and collector.
  sim::Engine& engine = engine_of(index);
  metrics::Collector& collector = collector_of(index);
  dev.exec = std::make_unique<gpu::Executor>(
      engine, spec, gpu::SpeedupModel::rtx2080ti(), cfg_.sharing);
  dev.pool = std::make_unique<gpu::ContextPool>(*dev.exec, cfg_.pool);
  std::unique_ptr<rt::Scheduler> scheduler;
  switch (cfg_.scheduler) {
    case rt::SchedulerKind::kSgprs:
      scheduler = std::make_unique<rt::SgprsScheduler>(
          *dev.exec, *dev.pool, collector, cfg_.sgprs);
      break;
    case rt::SchedulerKind::kNaive:
      scheduler = std::make_unique<rt::NaiveScheduler>(
          *dev.exec, *dev.pool, collector, cfg_.naive);
      break;
  }
  dev.scheduler = cfg_.wrap_scheduler
                      ? cfg_.wrap_scheduler(std::move(scheduler), index)
                      : std::move(scheduler);
  if (cfg_.tracer_for) {
    if (auto* tracer = cfg_.tracer_for(index)) {
      dev.scheduler->set_tracer(tracer);
    }
  }
  return dev;
}

PlacerDevice Cluster::placer_device_for(const gpu::DeviceSpec& spec,
                                        const Device& dev) const {
  const int streams_per_context =
      cfg_.pool.high_streams_per_context + cfg_.pool.low_streams_per_context;
  PlacerDevice pd;
  pd.spec = spec;
  // Reference size for WCET lookups; profiles cover every pool size, so
  // any context works — use the first, matching the single-GPU path.
  pd.pool_sms = dev.pool->at(0).sm_limit;
  // Capacity from the actual (possibly heterogeneous) context layout.
  std::vector<int> ctx_sms;
  ctx_sms.reserve(dev.pool->contexts().size());
  for (const auto& pc : dev.pool->contexts()) {
    ctx_sms.push_back(pc.sm_limit);
  }
  pd.capacity =
      rt::pool_capacity(gpu::SpeedupModel::rtx2080ti(), cfg_.sharing,
                        spec.total_sms, ctx_sms, streams_per_context);
  return pd;
}

int Cluster::add_device(const gpu::DeviceSpec& spec, bool active) {
  const int index = num_devices();
  devices_.push_back(make_device(spec, index));
  Device& dev = devices_.back();
  placer_->add_device(placer_device_for(spec, dev), active);
  if (started_) {
    dev.runner = std::make_unique<rt::Runner>(engine_of(index),
                                              *dev.scheduler, rcfg_);
    dev.runner->start();
  }
  return index;
}

std::vector<int> Cluster::pool_sm_sizes() const {
  std::vector<int> sizes;
  for (const auto& dev : devices_) {
    for (const auto& pc : dev.pool->contexts()) {
      if (std::find(sizes.begin(), sizes.end(), pc.sm_limit) ==
          sizes.end()) {
        sizes.push_back(pc.sm_limit);
      }
    }
  }
  return sizes;
}

void Cluster::place(std::vector<rt::Task> tasks) {
  SGPRS_CHECK_MSG(!started_, "place() after start()");
  const auto results = placer_->place_batch(tasks);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (results[i].device) {
      devices_[*results[i].device].tasks.push_back(std::move(tasks[i]));
    } else {
      rejected_.push_back(std::move(tasks[i]));
      rejected_oom_.push_back(results[i].oom);
    }
  }
}

void Cluster::start(const rt::RunnerConfig& rcfg) {
  SGPRS_CHECK_MSG(!started_, "start() called twice");
  started_ = true;
  rcfg_ = rcfg;
  for (int i = 0; i < num_devices(); ++i) {
    Device& dev = devices_[i];
    dev.runner =
        std::make_unique<rt::Runner>(engine_of(i), *dev.scheduler, rcfg);
    for (const auto& t : dev.tasks) dev.runner->add_task(t);
    dev.runner->start();
  }
}

const rt::Task& Cluster::admit_task(int i, rt::Task task) {
  Device& dev = devices_.at(i);
  dev.tasks.push_back(std::move(task));
  const rt::Task& stored = dev.tasks.back();
  if (started_) {
    SGPRS_CHECK(dev.runner != nullptr);
    dev.runner->add_task(stored);
  }
  return stored;
}

bool Cluster::retire_task(int i, int task_id, bool forget_metrics) {
  Device& dev = devices_.at(i);
  // Pre-start retirement would silently leave the stream armed (and its
  // placer capacity held) at start(); make the misuse loud instead.
  SGPRS_CHECK_MSG(started_ && dev.runner,
                  "retire_task() before start() is not supported");
  if (!dev.runner->retire_task(task_id)) return false;
  placer_->remove_task(i, task_id);
  if (forget_metrics) dev.moved_away.push_back(task_id);
  return true;
}

metrics::DeviceReport Cluster::device_report(
    int i, SimTime end, const metrics::Collector* merged) const {
  const metrics::Collector& collector = merged ? *merged : collector_;
  const Device& dev = devices_.at(i);
  metrics::DeviceReport report;
  report.device_index = i;
  report.device_name = dev.spec.name;
  report.total_sms = dev.spec.total_sms;
  std::vector<int> ids;
  ids.reserve(dev.tasks.size());
  for (const auto& t : dev.tasks) {
    if (std::find(dev.moved_away.begin(), dev.moved_away.end(), t.id) ==
        dev.moved_away.end()) {
      ids.push_back(t.id);
    }
  }
  report.tasks_assigned = static_cast<int>(ids.size());
  report.snapshot = collector.aggregate_tasks(ids, end);
  report.busy_sm_seconds = dev.exec->busy_sm_seconds();
  // busy_sm_seconds integrates *granted* SMs, and an over-subscribed pool
  // grants up to its allocation (> the physical device). Normalise by the
  // larger of the two so utilization stays a 0..1-ish occupancy figure.
  const int basis = std::max(dev.spec.total_sms,
                             dev.pool->total_allocated_sms());
  const double denom = static_cast<double>(basis) * end.to_sec();
  report.utilization = denom > 0.0 ? report.busy_sm_seconds / denom : 0.0;
  return report;
}

metrics::FleetReport Cluster::fleet_report(
    SimTime end, const metrics::Collector* merged) const {
  std::vector<metrics::DeviceReport> reports;
  reports.reserve(devices_.size());
  for (int i = 0; i < num_devices(); ++i) {
    reports.push_back(device_report(i, end, merged));
  }
  int oom = 0;
  for (const bool b : rejected_oom_) oom += b ? 1 : 0;
  return metrics::roll_up(std::move(reports),
                          static_cast<int>(rejected_.size()), oom);
}

std::int64_t Cluster::releases_issued() const {
  std::int64_t total = 0;
  for (const auto& dev : devices_) {
    if (dev.runner) total += dev.runner->releases_issued();
  }
  return total;
}

std::int64_t Cluster::stage_migrations() const {
  std::int64_t total = 0;
  for (const auto& dev : devices_) {
    if (auto* s = dynamic_cast<const rt::SgprsScheduler*>(
            dev.scheduler->unwrap())) {
      total += s->stage_migrations();
    }
  }
  return total;
}

std::int64_t Cluster::medium_promotions() const {
  std::int64_t total = 0;
  for (const auto& dev : devices_) {
    if (auto* s = dynamic_cast<const rt::SgprsScheduler*>(
            dev.scheduler->unwrap())) {
      total += s->medium_promotions();
    }
  }
  return total;
}

}  // namespace sgprs::cluster
