// Task → device assignment with online multi-resource admission control.
//
// The placer keeps an analytical load model per device (rt/analysis.hpp:
// saturated pool capacity, utilization test, heuristic response-time
// estimate) plus the device's physical budget (memory bytes, resident-warp
// occupancy). Each placement walks the devices in a policy-defined order
// and lands on the first one whose augmented task set still passes every
// admission test; when no device passes, the task is rejected — and when
// memory was the sole blocker anywhere, the rejection is classified OOM.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cluster/placement.hpp"
#include "gpu/device.hpp"
#include "rt/analysis.hpp"
#include "rt/task.hpp"

namespace sgprs::cluster {

/// Static per-device facts the placer reasons about.
struct PlacerDevice {
  gpu::DeviceSpec spec;
  rt::PoolCapacityModel capacity;
  /// Reference context SM size used for WCET lookups in the response-time
  /// estimate; tasks must be profiled at this size.
  int pool_sms = 0;
};

/// Outcome of one placement attempt. `oom` is true only for failed
/// placements where at least one active device rejected on memory alone
/// (the stream would have fit by compute) — the fleet's OOM signal.
struct PlaceResult {
  std::optional<int> device;
  bool oom = false;
};

class Placer {
 public:
  /// `admission_margin` is the utilization fraction admission may fill
  /// (rt::AdmissionController semantics); <= 0 disables admission control
  /// entirely — every placement succeeds, load ordering still applies.
  /// `occupancy_threshold` is the admissible fraction of each device's
  /// resident-warp capacity (CASE exemplar: 0.9).
  Placer(std::vector<PlacerDevice> devices, PlacementPolicy policy,
         double admission_margin = 0.95, double occupancy_threshold = 0.9);

  /// Places one task. Returns the chosen device index, or std::nullopt
  /// when no device admits it (counted in rejected()). Inactive devices
  /// (drained or still warming up) are never candidates.
  std::optional<int> place(const rt::Task& task);

  /// As place(), but also classifies a failed placement as OOM when
  /// memory (not compute) was the blocking resource.
  PlaceResult place_ex(const rt::Task& task);

  /// Places a batch of tasks in one pass (CASE-style batched scheduling).
  /// Results align with the input order. Per-device ordering keys are
  /// computed once and refreshed only for the device each placement lands
  /// on, so the decisions are byte-identical to calling place() per task —
  /// except that the bin-packing policies first order the batch largest-
  /// first over their binding dimension (best-fit *decreasing*). `force`
  /// routes through force_place instead of admission.
  std::vector<PlaceResult> place_batch(const std::vector<rt::Task>& tasks,
                                       bool force = false);

  /// Places ignoring the admission test (fleet overload control with
  /// admission_test off): the first active device in policy order takes
  /// the task unconditionally, load accounting stays accurate. Returns
  /// std::nullopt only when no device is active.
  std::optional<int> force_place(const rt::Task& task);

  /// Registers a device added to the fleet mid-run (autoscaling). Returns
  /// its index. The device starts inactive when `active` is false (warm-up
  /// latency: capacity exists but takes no placements yet).
  int add_device(PlacerDevice device, bool active = true);

  /// Gates a device in or out of placement. Deactivating never moves
  /// already-placed tasks — drain/re-place decisions belong to the caller.
  void set_device_active(int d, bool active);
  bool device_active(int d) const { return devices_.at(d).active; }
  int active_devices() const;

  /// Releases the admission capacity task `task_id` holds on device `d`
  /// (stream retired or re-placed). Returns false if it was not there.
  bool remove_task(int d, int task_id);

  int num_devices() const { return static_cast<int>(devices_.size()); }
  PlacementPolicy policy() const { return policy_; }
  int rejected() const { return rejected_; }
  /// Failed placements where memory was the sole blocker (subset of
  /// rejected()).
  int oom_rejected() const { return oom_rejected_; }

  /// Offered utilization fraction of device `d` (offered work rate over
  /// saturated capacity; 0 when nothing is placed).
  double utilization(int d) const;
  /// Absolute spare admissible work rate of device `d` (SM-work/s),
  /// clamped at 0 — force_place and disabled-margin overload can push the
  /// offered load past the budget, but spare capacity is never negative.
  double remaining_capacity(int d) const;
  /// Unreserved device memory of `d` in bytes, clamped at 0.
  std::int64_t remaining_mem_bytes(int d) const;
  int task_count(int d) const;
  const std::vector<rt::Task>& placed_on(int d) const;

 private:
  /// Admission testing and the per-device placed list both live in the
  /// rt::AdmissionController (push/pop probing, no task-set copies).
  struct DeviceState {
    PlacerDevice info;
    rt::AdmissionController controller;
    bool active = true;
  };

  /// Ordering key of device `d` under the current load-sorted policy
  /// (utilization, spare work-rate, or remaining memory).
  double order_key(int d) const;
  /// True when the policy sorts candidates by order_key ascending
  /// (best-fit family); false for worst-fit's descending order.
  bool order_ascending() const;
  /// Device indices in the order this policy wants them tried.
  std::vector<int> candidate_order(const rt::Task& task) const;

  std::vector<DeviceState> devices_;
  PlacementPolicy policy_;
  double margin_;
  double occupancy_threshold_;
  int rr_next_ = 0;
  int rejected_ = 0;
  int oom_rejected_ = 0;
};

}  // namespace sgprs::cluster
