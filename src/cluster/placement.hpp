// Fleet-level placement policies: which device an admitted task lands on.
//
// The per-device scheduler (SGPRS or naive) is only half of a deployment;
// at fleet scale a placer must decide where each periodic task lives before
// any job is released. Policies are deliberately simple and online — every
// decision uses only the tasks placed so far.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "gpu/device.hpp"

namespace sgprs::cluster {

enum class PlacementPolicy {
  /// Rotate across devices independent of load.
  kRoundRobin,
  /// Device with the lowest offered-utilization *fraction* of its own
  /// capacity (relative load balance; heterogeneous devices fill evenly).
  kLeastLoaded,
  /// Best-fit bin packing by work-rate: the device with the *least*
  /// absolute spare capacity that still admits the task wins, so loaded
  /// devices fill up before fresh ones are opened.
  kBinPackUtilization,
  /// Best-fit bin packing by device memory: the device with the least
  /// remaining memory that still admits wins. The policy of choice for
  /// memory-constrained fleets — streams concentrate on few devices.
  kBinPackMemory,
  /// Worst-fit spreading by absolute spare work-rate: the device with the
  /// most headroom wins (big devices fill first). This is the pre-fix
  /// behaviour of "binpack", kept reachable under its honest name.
  kWorstFit,
  /// Stable hash of the task name picks a home device (session affinity);
  /// linear probing past saturated devices keeps admission maximal.
  kHashAffinity,
};

const char* to_string(PlacementPolicy p);

/// All accepted names, pipe-separated (for --help text).
const char* placement_policy_names();

/// Parses a policy name; std::nullopt on anything unrecognised.
std::optional<PlacementPolicy> parse_placement_policy(
    const std::string& name);

/// Parses a CLI fleet description: either a device count ("4" = four
/// 2080 Ti) or a comma-separated list of device names ("2080ti,3090").
/// std::nullopt on unknown names or a non-positive count.
std::optional<std::vector<gpu::DeviceSpec>> parse_fleet(
    const std::string& spec);

}  // namespace sgprs::cluster
