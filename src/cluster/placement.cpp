#include "cluster/placement.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace sgprs::cluster {

namespace {
/// Upper bound on a parsed fleet size: far above any simulated deployment,
/// low enough that a typo'd count fails fast instead of allocating GBs.
constexpr long kMaxFleetSize = 4096;
}  // namespace

const char* to_string(PlacementPolicy p) {
  switch (p) {
    case PlacementPolicy::kRoundRobin: return "roundrobin";
    case PlacementPolicy::kLeastLoaded: return "leastloaded";
    case PlacementPolicy::kBinPackUtilization: return "binpack";
    case PlacementPolicy::kBinPackMemory: return "binpack_memory";
    case PlacementPolicy::kWorstFit: return "worstfit";
    case PlacementPolicy::kHashAffinity: return "hash";
  }
  return "?";
}

const char* placement_policy_names() {
  return "roundrobin|leastloaded|binpack|binpack_memory|worstfit|hash";
}

std::optional<PlacementPolicy> parse_placement_policy(
    const std::string& name) {
  if (name == "roundrobin") return PlacementPolicy::kRoundRobin;
  if (name == "leastloaded") return PlacementPolicy::kLeastLoaded;
  if (name == "binpack") return PlacementPolicy::kBinPackUtilization;
  if (name == "binpack_memory") return PlacementPolicy::kBinPackMemory;
  if (name == "worstfit") return PlacementPolicy::kWorstFit;
  if (name == "hash") return PlacementPolicy::kHashAffinity;
  return std::nullopt;
}

std::optional<std::vector<gpu::DeviceSpec>> parse_fleet(
    const std::string& spec) {
  if (spec.empty()) return std::nullopt;

  bool all_digits = true;
  for (char c : spec) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      all_digits = false;
      break;
    }
  }
  if (all_digits) {
    errno = 0;
    char* end = nullptr;
    const long n = std::strtol(spec.c_str(), &end, 10);
    if (errno != 0 || end != spec.c_str() + spec.size() || n < 1 ||
        n > kMaxFleetSize) {
      return std::nullopt;
    }
    return std::vector<gpu::DeviceSpec>(static_cast<std::size_t>(n),
                                        gpu::rtx2080ti());
  }

  std::vector<gpu::DeviceSpec> fleet;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const auto comma = spec.find(',', pos);
    const std::string name =
        spec.substr(pos, comma == std::string::npos ? std::string::npos
                                                    : comma - pos);
    const auto dev = gpu::device_by_name(name);
    if (!dev) return std::nullopt;
    fleet.push_back(*dev);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return fleet;
}

}  // namespace sgprs::cluster
