// Multi-GPU cluster: N simulated devices sharing one discrete-event
// engine, each with its own Executor, ContextPool and per-device scheduler
// (SGPRS or naive), fronted by a Placer that assigns admitted tasks to
// devices. One Collector is shared across the fleet (task ids are globally
// unique), so per-device metrics are subset aggregations and the fleet
// aggregate is exact.
//
// Closed-world lifecycle: construct → place(tasks) → start(cfg) →
// engine.run_until(T) → fleet_report(T).
//
// Open-world surface (the fleet runtime, src/fleet/): add_device() grows
// the fleet mid-run, set_device_active() gates placement for warm-up and
// drain phases, admit_task()/retire_task() churn streams on a started
// device. Task storage is a per-device deque, so admitted tasks have
// stable addresses for the runner and in-flight jobs even as streams
// churn.
#pragma once

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "cluster/placer.hpp"
#include "gpu/context_pool.hpp"
#include "gpu/device.hpp"
#include "gpu/executor.hpp"
#include "metrics/collector.hpp"
#include "metrics/fleet.hpp"
#include "rt/runner.hpp"
#include "rt/scheduler.hpp"
#include "rt/scheduler_kind.hpp"
#include "rt/sgprs_scheduler.hpp"
#include "rt/naive_scheduler.hpp"
#include "sim/engine.hpp"

namespace sgprs::obs {
class JobTracer;
}  // namespace sgprs::obs

namespace sgprs::cluster {

using common::SimTime;

struct ClusterConfig {
  /// One entry per device; heterogeneous fleets just list different specs.
  std::vector<gpu::DeviceSpec> devices;
  PlacementPolicy placement = PlacementPolicy::kLeastLoaded;
  /// Admission budget as a fraction of saturated capacity; <= 0 disables
  /// admission control (every task is placed).
  double admission_margin = 0.95;
  /// Admissible fraction of each device's resident-warp capacity
  /// (rt::ResourceBudget; CASE exemplar value 0.9).
  double occupancy_threshold = 0.9;
  rt::SchedulerKind scheduler = rt::SchedulerKind::kSgprs;
  /// Context pool shape, replicated on every device.
  gpu::ContextPoolConfig pool;
  rt::SgprsConfig sgprs;
  rt::NaiveConfig naive;
  gpu::SharingParams sharing;
  /// Optional decorator applied to every per-device scheduler as it is
  /// created (the fleet overload guard). Absent = schedulers run bare.
  std::function<std::unique_ptr<rt::Scheduler>(
      std::unique_ptr<rt::Scheduler> inner, int device_index)>
      wrap_scheduler;
  /// Sharded-runtime hooks (docs/sharding.md): route a device's executor,
  /// runner and event calendar onto its shard's engine, and its metrics
  /// onto a per-device collector reduced canonically at the end of the
  /// run. Absent = every device shares the constructor's engine/collector
  /// (the classic single-calendar fleet). Both must be stable for the
  /// cluster's lifetime and consistent per index.
  std::function<sim::Engine&(int device_index)> engine_for;
  std::function<metrics::Collector&(int device_index)> collector_for;
  /// Optional execution-span tracer per device (src/obs/span.hpp,
  /// --trace-spans). Called once as each device's scheduler stack is
  /// created; returning nullptr leaves that device untraced. The tracer
  /// must outlive the cluster. Absent = no tracing (zero overhead beyond
  /// one null check per scheduler hook).
  std::function<obs::JobTracer*(int device_index)> tracer_for;
};

/// Context SM sizes one device of `spec` would expose under `pool`,
/// first-seen order — so task WCETs can be profiled for devices the
/// autoscaler may add before any such device exists.
std::vector<int> pool_sm_sizes_for(const gpu::DeviceSpec& spec,
                                   const gpu::ContextPoolConfig& pool,
                                   const gpu::SharingParams& sharing);

class Cluster {
 public:
  struct Device {
    gpu::DeviceSpec spec;
    std::unique_ptr<gpu::Executor> exec;
    std::unique_ptr<gpu::ContextPool> pool;
    std::unique_ptr<rt::Scheduler> scheduler;
    /// Tasks admitted here (deque: stable addresses under churn).
    std::deque<rt::Task> tasks;
    /// Task ids re-placed onto another device: the stream's metrics are
    /// reported by its final home, so this device's report skips them.
    std::vector<int> moved_away;
    std::unique_ptr<rt::Runner> runner;
  };

  /// Creates every device's executor, pool and scheduler up front (the
  /// SGPRS zero-runtime-reconfiguration property, fleet-wide).
  Cluster(sim::Engine& engine, metrics::Collector& collector,
          const ClusterConfig& cfg);

  int num_devices() const { return static_cast<int>(devices_.size()); }
  const Device& device(int i) const { return devices_.at(i); }
  Placer& placer() { return *placer_; }
  const Placer& placer() const { return *placer_; }

  /// Distinct context SM sizes across the fleet, first-seen order. Profile
  /// task WCETs at exactly these sizes before placing.
  std::vector<int> pool_sm_sizes() const;

  /// Places each task as one batch (Placer::place_batch); rejected tasks
  /// are retained for reporting, with their OOM classification alongside.
  void place(std::vector<rt::Task> tasks);
  const std::vector<rt::Task>& rejected_tasks() const { return rejected_; }
  /// rejected_oom()[k] is true when rejected_tasks()[k] failed on memory
  /// alone (cluster::PlaceResult::oom).
  const std::vector<bool>& rejected_oom() const { return rejected_oom_; }

  /// Arms periodic releases on every device (admits tasks into the
  /// per-device schedulers). Call once after place(); then run the engine.
  void start(const rt::RunnerConfig& rcfg);
  bool started() const { return started_; }

  // --- Open-world (fleet runtime) surface ---

  /// Adds a device mid-run (or before start). Its scheduler/pool/executor
  /// are created immediately; when `active` is false the placer will not
  /// use it until set_device_active(i, true) — autoscaler warm-up latency.
  int add_device(const gpu::DeviceSpec& spec, bool active = true);
  void set_device_active(int i, bool active) {
    placer_->set_device_active(i, active);
  }
  bool device_active(int i) const { return placer_->device_active(i); }

  /// Admits one stream onto device `i`: stores it (stable address) and —
  /// when the cluster is started — arms its releases from now on. Returns
  /// the stored task. Which device (and its admission-capacity accounting)
  /// is the caller's business, normally a preceding placer().place() that
  /// chose `i`.
  const rt::Task& admit_task(int i, rt::Task task);

  /// Retires stream `task_id` from device `i`: future releases stop
  /// (generation-tagged cancel), in-flight jobs drain, admission capacity
  /// is released. `forget_metrics` additionally drops the id from this
  /// device's report — used when the stream is re-placed onto another
  /// device, which then owns its whole history. Returns false if the id is
  /// not live on that device. Only valid after start() (checked).
  bool retire_task(int i, int task_id, bool forget_metrics = false);

  /// Jobs released but not yet completed/dropped on device `i` (drain
  /// probe for scale-down).
  int jobs_in_flight(int i) const {
    return devices_.at(i).scheduler->jobs_in_flight();
  }

  /// Device crash: kills every queued and dispatched job on device `i`
  /// instantly, with no collector close (faulted jobs stay open — their
  /// count is the return value). Unlike retire_task this does not touch
  /// placer accounting or stop releases; the fault engine owns both.
  int abort_in_flight(int i) {
    return devices_.at(i).scheduler->abort_in_flight();
  }

  /// Per-device metrics over [collector.warmup(), end]; utilization over
  /// the whole run [0, end]. `merged` overrides the collector the report
  /// aggregates from — the sharded runtime passes its canonical cross-shard
  /// reduction so a re-placed stream's whole history (which may span
  /// shards) is attributed to its final home, exactly as the shared
  /// collector attributes it on the classic path.
  metrics::DeviceReport device_report(
      int i, SimTime end, const metrics::Collector* merged = nullptr) const;
  metrics::FleetReport fleet_report(
      SimTime end, const metrics::Collector* merged = nullptr) const;

  std::int64_t releases_issued() const;
  /// Summed over SGPRS devices (0 for the naive fleet).
  std::int64_t stage_migrations() const;
  std::int64_t medium_promotions() const;

 private:
  PlacerDevice placer_device_for(const gpu::DeviceSpec& spec,
                                 const Device& dev) const;
  Device make_device(const gpu::DeviceSpec& spec, int index);
  sim::Engine& engine_of(int index) {
    return cfg_.engine_for ? cfg_.engine_for(index) : engine_;
  }
  metrics::Collector& collector_of(int index) {
    return cfg_.collector_for ? cfg_.collector_for(index) : collector_;
  }

  sim::Engine& engine_;
  metrics::Collector& collector_;
  ClusterConfig cfg_;
  std::deque<Device> devices_;  // stable addresses under add_device
  std::unique_ptr<Placer> placer_;
  std::vector<rt::Task> rejected_;
  std::vector<bool> rejected_oom_;
  bool started_ = false;
  rt::RunnerConfig rcfg_;
};

}  // namespace sgprs::cluster
