// Multi-GPU cluster: N simulated devices sharing one discrete-event
// engine, each with its own Executor, ContextPool and per-device scheduler
// (SGPRS or naive), fronted by a Placer that assigns admitted tasks to
// devices. One Collector is shared across the fleet (task ids are globally
// unique), so per-device metrics are subset aggregations and the fleet
// aggregate is exact.
//
// Lifecycle: construct → place(tasks) → start(cfg) → engine.run_until(T)
// → fleet_report(T).
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "cluster/placer.hpp"
#include "gpu/context_pool.hpp"
#include "gpu/device.hpp"
#include "gpu/executor.hpp"
#include "metrics/collector.hpp"
#include "metrics/fleet.hpp"
#include "rt/runner.hpp"
#include "rt/scheduler.hpp"
#include "rt/scheduler_kind.hpp"
#include "rt/sgprs_scheduler.hpp"
#include "rt/naive_scheduler.hpp"
#include "sim/engine.hpp"

namespace sgprs::cluster {

using common::SimTime;

struct ClusterConfig {
  /// One entry per device; heterogeneous fleets just list different specs.
  std::vector<gpu::DeviceSpec> devices;
  PlacementPolicy placement = PlacementPolicy::kLeastLoaded;
  /// Admission budget as a fraction of saturated capacity; <= 0 disables
  /// admission control (every task is placed).
  double admission_margin = 0.95;
  rt::SchedulerKind scheduler = rt::SchedulerKind::kSgprs;
  /// Context pool shape, replicated on every device.
  gpu::ContextPoolConfig pool;
  rt::SgprsConfig sgprs;
  rt::NaiveConfig naive;
  gpu::SharingParams sharing;
};

class Cluster {
 public:
  struct Device {
    gpu::DeviceSpec spec;
    std::unique_ptr<gpu::Executor> exec;
    std::unique_ptr<gpu::ContextPool> pool;
    std::unique_ptr<rt::Scheduler> scheduler;
    /// Tasks the placer assigned here (stable storage for the runner).
    std::vector<rt::Task> tasks;
    std::unique_ptr<rt::Runner> runner;
  };

  /// Creates every device's executor, pool and scheduler up front (the
  /// SGPRS zero-runtime-reconfiguration property, fleet-wide).
  Cluster(sim::Engine& engine, metrics::Collector& collector,
          const ClusterConfig& cfg);

  int num_devices() const { return static_cast<int>(devices_.size()); }
  const Device& device(int i) const { return devices_.at(i); }
  Placer& placer() { return *placer_; }
  const Placer& placer() const { return *placer_; }

  /// Distinct context SM sizes across the fleet, first-seen order. Profile
  /// task WCETs at exactly these sizes before placing.
  std::vector<int> pool_sm_sizes() const;

  /// Places each task in order; rejected tasks are retained for reporting.
  void place(std::vector<rt::Task> tasks);
  const std::vector<rt::Task>& rejected_tasks() const { return rejected_; }

  /// Arms periodic releases on every device (admits tasks into the
  /// per-device schedulers). Call once after place(); then run the engine.
  void start(const rt::RunnerConfig& rcfg);

  /// Per-device metrics over [collector.warmup(), end]; utilization over
  /// the whole run [0, end].
  metrics::DeviceReport device_report(int i, SimTime end) const;
  metrics::FleetReport fleet_report(SimTime end) const;

  std::int64_t releases_issued() const;
  /// Summed over SGPRS devices (0 for the naive fleet).
  std::int64_t stage_migrations() const;
  std::int64_t medium_promotions() const;

 private:
  sim::Engine& engine_;
  metrics::Collector& collector_;
  ClusterConfig cfg_;
  std::vector<Device> devices_;
  std::unique_ptr<Placer> placer_;
  std::vector<rt::Task> rejected_;
  bool started_ = false;
};

}  // namespace sgprs::cluster
