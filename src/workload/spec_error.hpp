// SpecError: the semantic error type of every declarative-spec parser
// (scenario, experiment, fleet timeline / policy). Lives in its own header
// so lower layers (src/fleet/) can throw it without pulling in the full
// workload::ScenarioSpec surface.
#pragma once

#include <stdexcept>
#include <string>

namespace sgprs::workload {

/// Semantic spec error (unknown field, bad value, missing section). The
/// message names the offending field path, e.g. "tasks[2].fps: must be > 0".
/// When constructed with an explicit path, path() exposes it structurally so
/// report writers (suite CSV/JSON error rows) can emit a field_path column
/// instead of making consumers re-parse the message.
class SpecError : public std::runtime_error {
 public:
  explicit SpecError(const std::string& msg) : std::runtime_error(msg) {}
  SpecError(const std::string& path, const std::string& msg)
      : std::runtime_error(path + ": " + msg), path_(path) {}

  /// Offending field path ("spec.tasks[2].fps"); empty when the error is
  /// not tied to a single field.
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

}  // namespace sgprs::workload
