#include "workload/taskset.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"
#include "dnn/builders.hpp"

namespace sgprs::workload {

std::vector<double> uunifast(int n, double total, common::Rng& rng) {
  SGPRS_CHECK(n >= 1);
  SGPRS_CHECK(total > 0.0);
  std::vector<double> u(n);
  double sum = total;
  for (int i = 0; i < n - 1; ++i) {
    const double next =
        sum * std::pow(rng.next_double(), 1.0 / static_cast<double>(n - i - 1));
    u[i] = sum - next;
    sum = next;
  }
  u[n - 1] = sum;
  return u;
}

std::vector<rt::Task> build_random_taskset(const RandomTaskSetConfig& cfg,
                                           const dnn::Profiler& profiler,
                                           const std::vector<int>& pool_sms) {
  SGPRS_CHECK(cfg.count >= 1);
  SGPRS_CHECK(!pool_sms.empty());
  SGPRS_CHECK(cfg.min_fps > 0.0 && cfg.max_fps >= cfg.min_fps);

  auto choices = cfg.network_choices;
  if (choices.empty()) {
    choices = {[] { return dnn::resnet18(); },
               [] { return dnn::mobilenet_like(); },
               [] { return dnn::lenet5(); }};
  }

  common::Rng rng(cfg.seed);
  const auto utils = uunifast(cfg.count, cfg.total_utilization, rng);

  // Share built networks across tasks that draw the same choice.
  std::vector<std::shared_ptr<const dnn::Network>> built(choices.size());

  std::vector<rt::Task> tasks;
  tasks.reserve(cfg.count);
  for (int i = 0; i < cfg.count; ++i) {
    const auto pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(choices.size()) - 1));
    if (!built[pick]) {
      built[pick] =
          std::make_shared<const dnn::Network>(choices[pick]());
    }
    // Derive the rate from the drawn utilization: u = wcet / period.
    // Build once at a provisional rate to learn the WCET, then rebuild
    // with the final rate (task building is cheap).
    rt::TaskConfig tc;
    tc.name = "rand" + std::to_string(i);
    tc.num_stages = cfg.num_stages;
    tc.fps = 30.0;
    const rt::Task probe =
        rt::build_task(i, built[pick], tc, profiler, pool_sms);
    const double wcet = probe.wcet.total_at(pool_sms.front()).to_sec();
    double fps = utils[i] / wcet;
    fps = std::clamp(fps, cfg.min_fps, cfg.max_fps);
    tc.fps = fps;
    rt::Task t = rt::build_task(i, built[pick], tc, profiler, pool_sms);
    t.phase = common::SimTime::from_sec(rng.next_double() *
                                        t.period.to_sec());
    tasks.push_back(std::move(t));
  }
  return tasks;
}

}  // namespace sgprs::workload
