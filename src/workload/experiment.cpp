#include "workload/experiment.hpp"

#include <chrono>
#include <filesystem>
#include <future>
#include <limits>
#include <sstream>

#include "common/rng.hpp"

#include "common/csv.hpp"
#include "common/json_writer.hpp"
#include "common/thread_pool.hpp"
#include "metrics/report.hpp"
#include "workload/spec_util.hpp"

namespace sgprs::workload {

namespace {

using common::JsonValue;
using namespace specdet;

/// Default-stream double formatting ("2", "1.5", "0.85"): stable across
/// platforms for the magnitudes grids use, and short enough for labels.
std::string label_of(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

/// "scheduler=sgprs utilization=2.5" — the one cell-naming format, shared
/// by validation errors and report rows so they always match.
std::string join_labels(
    const std::vector<std::pair<std::string, std::string>>& coords) {
  std::string out;
  for (const auto& [k, v] : coords) {
    if (!out.empty()) out += " ";
    out += k + "=" + v;
  }
  return out;
}

GridAxisSpec parse_axis(const std::string& name, const JsonValue& v,
                        const std::string& path) {
  GridAxisSpec axis;
  axis.name = name;
  if (name == "scheduler") {
    axis.kind = GridAxisKind::kScheduler;
  } else if (name == "fps_scale") {
    axis.kind = GridAxisKind::kFpsScale;
  } else if (name == "utilization") {
    axis.kind = GridAxisKind::kUtilization;
  } else if (name == "devices") {
    axis.kind = GridAxisKind::kDevices;
  } else if (name == "admission_margin") {
    axis.kind = GridAxisKind::kAdmissionMargin;
  } else {
    bad(path,
        "unknown grid axis (allowed: scheduler, fps_scale, utilization, "
        "devices, admission_margin)");
  }

  if (!v.is_array()) {
    bad(path, std::string("expected an array of values, got ") +
                  v.type_name());
  }
  if (v.items().empty()) bad(path, "axis needs at least one value");

  for (std::size_t i = 0; i < v.items().size(); ++i) {
    const JsonValue& item = v.items()[i];
    const std::string ipath = path + "[" + std::to_string(i) + "]";
    try {
      if (axis.kind == GridAxisKind::kScheduler) {
        const auto kind = rt::parse_scheduler_kind(item.as_string());
        if (!kind) {
          bad(ipath, "unknown scheduler \"" + item.as_string() +
                         "\" (want " + rt::scheduler_kind_names() + ")");
        }
        axis.schedulers.push_back(*kind);
      } else if (axis.kind == GridAxisKind::kDevices) {
        const std::int64_t n = item.as_int();
        // Range-check here (like specdet::int_or): the value is cast to
        // int when the cell is lowered, and an overflow there would be UB.
        if (n < 1 || n > std::numeric_limits<int>::max()) {
          bad(ipath, "device count out of range");
        }
        axis.numeric.push_back(static_cast<double>(n));
      } else {
        axis.numeric.push_back(item.as_number());
      }
    } catch (const common::JsonError& e) {
      throw SpecError(ipath, e.what());
    }
  }
  return axis;
}

}  // namespace

std::string GridAxisSpec::value_label(std::size_t i) const {
  if (kind == GridAxisKind::kScheduler) {
    return rt::to_string(schedulers[i]);
  }
  return label_of(numeric[i]);
}

ExperimentSpec parse_experiment_spec(const common::JsonValue& root,
                                     const std::string& default_name) {
  const std::string path = "spec";
  require_object(root, path);
  const JsonValue* exp = root.find("experiment");
  if (!exp) {
    bad(path, "not an experiment spec: missing the \"experiment\" section");
  }

  ExperimentSpec spec;
  spec.base = parse_scenario_spec(root, default_name,
                                  /*skip_experiment_section=*/true);
  spec.name = spec.base.name;
  spec.description = spec.base.description;

  const std::string epath = path + ".experiment";
  require_object(*exp, epath);
  check_keys(*exp, {"replications", "base_seed", "grid"}, epath);
  spec.replications = int_or(*exp, "replications", spec.replications, epath);
  spec.base_seed = seed_or(*exp, "base_seed", spec.base_seed, epath);

  if (const JsonValue* grid = exp->find("grid")) {
    const std::string gpath = epath + ".grid";
    require_object(*grid, gpath);
    for (const auto& [key, value] : grid->members()) {
      for (const auto& existing : spec.axes) {
        if (existing.name == key) {
          bad(gpath + "." + key, "duplicate grid axis");
        }
      }
      spec.axes.push_back(parse_axis(key, value, gpath + "." + key));
    }
  }
  return spec;
}

ExperimentSpec load_experiment_spec(const std::string& path) {
  const std::string stem = std::filesystem::path(path).stem().string();
  ExperimentSpec spec =
      parse_experiment_spec(common::parse_json_file(path), stem);
  // A trace-driven base timeline loads its trace once here; every grid
  // cell / replication then shares the attached immutable trace.
  resolve_spec_trace(spec.base, path);
  validate(spec);
  return spec;
}

void validate(const ExperimentSpec& spec) {
  const std::string epath = "spec.experiment";
  if (spec.replications < 1) bad(epath + ".replications", "must be >= 1");

  for (const auto& axis : spec.axes) {
    const std::string apath = epath + ".grid." + axis.name;
    switch (axis.kind) {
      case GridAxisKind::kScheduler:
        break;  // parse already rejected unknown names
      case GridAxisKind::kFpsScale:
        if (spec.base.generator) {
          bad(apath,
              "fps_scale sweeps explicit task entries; this spec uses a "
              "generator — sweep utilization instead");
        }
        for (std::size_t i = 0; i < axis.numeric.size(); ++i) {
          if (axis.numeric[i] <= 0.0) {
            bad(apath + "[" + std::to_string(i) + "]", "must be > 0");
          }
        }
        break;
      case GridAxisKind::kUtilization:
        if (!spec.base.generator) {
          bad(apath,
              "utilization requires a \"generator\" section (it overrides "
              "generator.total_utilization)");
        }
        for (std::size_t i = 0; i < axis.numeric.size(); ++i) {
          if (axis.numeric[i] <= 0.0) {
            bad(apath + "[" + std::to_string(i) + "]", "must be > 0");
          }
        }
        break;
      case GridAxisKind::kDevices:
        if (!spec.base.base.fleet.empty()) {
          bad(apath,
              "cannot sweep a device count over an explicit heterogeneous "
              "device list (fleet.devices)");
        }
        for (std::size_t i = 0; i < axis.numeric.size(); ++i) {
          if (axis.numeric[i] < 1.0) {
            bad(apath + "[" + std::to_string(i) + "]", "must be >= 1");
          }
        }
        break;
      case GridAxisKind::kAdmissionMargin:
        for (std::size_t i = 0; i < axis.numeric.size(); ++i) {
          if (axis.numeric[i] > 1.0) {
            bad(apath + "[" + std::to_string(i) + "]",
                "must be a fraction in (0, 1] (or <= 0 to disable "
                "admission)");
          }
        }
        break;
    }
  }

  // Every cell must lower onto a valid scenario — surface bad combinations
  // (e.g. an admission margin on a spec the base validation rejects) before
  // any simulation runs, naming the cell.
  const std::size_t cells = cell_count(spec);
  for (std::size_t c = 0; c < cells; ++c) {
    try {
      workload::validate(scenario_for(spec, c, 0));
    } catch (const SpecError& e) {
      // Keep the structured field path (suite reports consume it); the
      // message gains the cell coordinates so the failing grid corner is
      // findable. The inner what() already names the field, so the path
      // prefix repeating it is deliberate redundancy, not a bug.
      throw SpecError(e.path().empty() ? epath : e.path(),
                      "cell {" + join_labels(cell_labels(spec, c)) + "}: " +
                          e.what());
    }
  }
}

std::size_t cell_count(const ExperimentSpec& spec) {
  std::size_t n = 1;
  for (const auto& axis : spec.axes) n *= axis.size();
  return n;
}

std::vector<std::size_t> cell_coords(const ExperimentSpec& spec,
                                     std::size_t cell) {
  std::vector<std::size_t> coords(spec.axes.size(), 0);
  std::size_t rem = cell;
  for (std::size_t i = spec.axes.size(); i-- > 0;) {
    coords[i] = rem % spec.axes[i].size();
    rem /= spec.axes[i].size();
  }
  SGPRS_CHECK_MSG(rem == 0, "cell index " << cell << " out of range");
  return coords;
}

std::vector<std::pair<std::string, std::string>> cell_labels(
    const ExperimentSpec& spec, std::size_t cell) {
  const auto coords = cell_coords(spec, cell);
  std::vector<std::pair<std::string, std::string>> labels;
  labels.reserve(spec.axes.size());
  for (std::size_t i = 0; i < spec.axes.size(); ++i) {
    labels.emplace_back(spec.axes[i].name,
                        spec.axes[i].value_label(coords[i]));
  }
  return labels;
}

std::uint64_t experiment_seed(std::uint64_t base_seed, std::size_t cell,
                              int replication, std::uint64_t stream) {
  // splitmix64 step: full-avalanche bijection, so chaining it over the
  // job coordinates yields independent, platform-stable streams.
  const auto mix = [](std::uint64_t z) {
    return common::splitmix64_next(z);
  };
  std::uint64_t s = mix(base_seed ^ 0x5397d21c3a5f0e1bULL);
  s = mix(s ^ static_cast<std::uint64_t>(cell));
  s = mix(s ^ static_cast<std::uint64_t>(replication));
  s = mix(s ^ stream);
  return s;
}

ScenarioSpec scenario_for(const ExperimentSpec& spec, std::size_t cell,
                          int replication) {
  ScenarioSpec s = spec.base;
  const auto coords = cell_coords(spec, cell);
  for (std::size_t i = 0; i < spec.axes.size(); ++i) {
    const GridAxisSpec& axis = spec.axes[i];
    const std::size_t ci = coords[i];
    switch (axis.kind) {
      case GridAxisKind::kScheduler:
        s.base.scheduler = axis.schedulers[ci];
        break;
      case GridAxisKind::kFpsScale: {
        const double f = axis.numeric[ci];
        for (auto& e : s.tasks) {
          e.fps *= f;
          // A rate scale shortens sporadic gaps by the same factor.
          if (e.min_separation_ms > 0.0) e.min_separation_ms /= f;
          if (e.max_separation_ms > 0.0) e.max_separation_ms /= f;
        }
        break;
      }
      case GridAxisKind::kUtilization:
        s.generator->total_utilization = axis.numeric[ci];
        break;
      case GridAxisKind::kDevices:
        s.base.num_devices = static_cast<int>(axis.numeric[ci]);
        s.fleet_mode = true;
        break;
      case GridAxisKind::kAdmissionMargin:
        // Like the CLI's --admission-margin: routes a 1-device run through
        // the cluster path so the margin actually applies.
        s.base.admission_margin = axis.numeric[ci];
        s.fleet_mode = true;
        break;
    }
  }
  s.base.seed = experiment_seed(spec.base_seed, cell, replication, 0);
  if (s.generator) {
    s.generator->seed = experiment_seed(spec.base_seed, cell, replication, 1);
  }
  return s;
}

std::string CellResult::label() const {
  return coords.empty() ? "all" : join_labels(coords);
}

namespace {

/// Everything a worker sends back: scalar metrics only, so threads never
/// share simulation state.
struct RunOutcome {
  bool ok = false;
  double dmr = 0.0;
  double fps = 0.0;
  double fps_on_time = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double oom = 0.0;
  double failovers = 0.0;
  double streams_lost = 0.0;
  double unavailability_s = 0.0;
  std::string error;
};

double oom_of(const SpecResult& r) {
  if (r.dynamic) return static_cast<double>(r.dyn.streams_oom_rejected);
  if (r.fleet) return static_cast<double>(r.cluster.fleet.tasks_oom_rejected);
  return 0.0;
}

/// One (cell, replication) job against the cell's shared immutable spec.
/// Replications differ only in their derived seeds, so the spec is built
/// once per cell (not once per job) and every worker reads it concurrently
/// through the seeded run_spec overload — no ScenarioSpec copies on the
/// job path.
RunOutcome run_one(const ExperimentSpec& spec, const ScenarioSpec& cell_spec,
                   std::size_t cell, int rep) {
  RunOutcome o;
  try {
    const RunSeeds seeds{experiment_seed(spec.base_seed, cell, rep, 0),
                         experiment_seed(spec.base_seed, cell, rep, 1)};
    const SpecResult r = run_spec(cell_spec, seeds);
    const metrics::Snapshot& a = r.aggregate();
    o.ok = true;
    o.dmr = a.dmr;
    o.fps = a.fps;
    o.fps_on_time = a.fps_on_time;
    o.p50_ms = a.p50_latency_ms;
    o.p99_ms = a.p99_latency_ms;
    o.oom = oom_of(r);
    if (r.dynamic) {
      o.failovers = static_cast<double>(r.dyn.failovers);
      o.streams_lost = static_cast<double>(r.dyn.streams_lost);
      o.unavailability_s = r.dyn.unavailability_s;
    }
  } catch (const std::exception& e) {
    o.error = e.what();
  }
  return o;
}

}  // namespace

ExperimentResult run_experiment(const ExperimentSpec& spec, int jobs) {
  validate(spec);

  const std::size_t cells = cell_count(spec);
  // One lowered spec per grid cell, shared read-only by every replication
  // job. Seeds inside use replication 0; the per-job RunSeeds override is
  // the only thing that varies, so this is equivalent to (and replaces)
  // building scenario_for(spec, cell, rep) fresh for each job.
  std::vector<ScenarioSpec> cell_specs;
  cell_specs.reserve(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    cell_specs.push_back(scenario_for(spec, c, 0));
  }

  struct Job {
    std::size_t cell;
    int rep;
  };
  std::vector<Job> plan;
  plan.reserve(cells * static_cast<std::size_t>(spec.replications));
  for (std::size_t c = 0; c < cells; ++c) {
    for (int r = 0; r < spec.replications; ++r) plan.push_back({c, r});
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<RunOutcome> outcomes(plan.size());
  if (jobs <= 1) {
    for (std::size_t i = 0; i < plan.size(); ++i) {
      outcomes[i] =
          run_one(spec, cell_specs[plan[i].cell], plan[i].cell, plan[i].rep);
    }
  } else {
    common::ThreadPool pool(jobs);
    std::vector<std::future<RunOutcome>> futures;
    futures.reserve(plan.size());
    for (const Job& j : plan) {
      futures.push_back(pool.submit([&spec, &cell_specs, j] {
        return run_one(spec, cell_specs[j.cell], j.cell, j.rep);
      }));
    }
    // Collection in submission order + serial reduction below is what makes
    // reports byte-identical for any worker count.
    for (std::size_t i = 0; i < plan.size(); ++i) {
      outcomes[i] = futures[i].get();
    }
  }
  const auto t1 = std::chrono::steady_clock::now();

  ExperimentResult result;
  result.name = spec.name;
  result.description = spec.description;
  result.replications = spec.replications;
  result.base_seed = spec.base_seed;
  result.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  result.cells.resize(cells);
  for (std::size_t c = 0; c < cells; ++c) {
    result.cells[c].index = c;
    result.cells[c].coords = cell_labels(spec, c);
  }
  for (std::size_t i = 0; i < plan.size(); ++i) {
    CellResult& cr = result.cells[plan[i].cell];
    const RunOutcome& o = outcomes[i];
    if (!o.ok) {
      ++cr.failures;
      ++result.total_failures;
      if (cr.first_error.empty()) cr.first_error = o.error;
      continue;
    }
    ++cr.runs;
    ++result.total_runs;
    cr.dmr.add(o.dmr);
    cr.fps.add(o.fps);
    cr.fps_on_time.add(o.fps_on_time);
    cr.p50_latency_ms.add(o.p50_ms);
    cr.p99_latency_ms.add(o.p99_ms);
    cr.oom_rejected.add(o.oom);
    cr.failovers.add(o.failovers);
    cr.streams_lost.add(o.streams_lost);
    cr.unavailability_s.add(o.unavailability_s);
  }
  return result;
}

void print_experiment(const ExperimentResult& r, std::ostream& out) {
  out << "experiment " << r.name;
  if (!r.description.empty()) out << " — " << r.description;
  out << "\n" << r.cells.size() << " cells x " << r.replications
      << " replications, base seed " << r.base_seed << "\n\n";

  std::vector<std::string> headers;
  if (r.cells.empty() || r.cells.front().coords.empty()) {
    headers.push_back("cell");
  } else {
    for (const auto& [k, v] : r.cells.front().coords) headers.push_back(k);
  }
  for (const char* h : {"runs", "DMR", "ci95", "on-time FPS", "ci95",
                        "p99 (ms)", "ci95", "oom", "fail"}) {
    headers.push_back(h);
  }

  metrics::Table t(headers);
  for (const auto& cell : r.cells) {
    std::vector<std::string> row;
    if (cell.coords.empty()) {
      row.push_back("all");
    } else {
      for (const auto& [k, v] : cell.coords) row.push_back(v);
    }
    const auto dmr = cell.dmr.confidence_interval();
    const auto fot = cell.fps_on_time.confidence_interval();
    const auto p99 = cell.p99_latency_ms.confidence_interval();
    row.push_back(std::to_string(cell.runs));
    row.push_back(metrics::Table::pct(dmr.mean, 2));
    row.push_back(metrics::Table::pct(dmr.half_width, 2));
    row.push_back(metrics::Table::fmt(fot.mean, 1));
    row.push_back(metrics::Table::fmt(fot.half_width, 1));
    row.push_back(metrics::Table::fmt(p99.mean, 2));
    row.push_back(metrics::Table::fmt(p99.half_width, 2));
    row.push_back(metrics::Table::fmt(cell.oom_rejected.mean(), 1));
    row.push_back(std::to_string(cell.failures));
    t.add_row(std::move(row));
  }
  t.print(out);

  for (const auto& cell : r.cells) {
    if (cell.failures > 0) {
      out << "\ncell {" << cell.label() << "}: " << cell.failures
          << " failed replication(s): " << cell.first_error << "\n";
    }
  }
}

namespace {

void csv_metric_cells(std::vector<std::string>& row,
                      const common::RunningStats& s) {
  const auto ci = s.confidence_interval();
  row.push_back(common::CsvWriter::num(ci.mean, 6));
  row.push_back(common::CsvWriter::num(ci.half_width, 6));
  row.push_back(common::CsvWriter::num(s.min(), 6));
  row.push_back(common::CsvWriter::num(s.max(), 6));
}

void json_metric(common::JsonWriter& w, const std::string& key,
                 const common::RunningStats& s) {
  const auto ci = s.confidence_interval();
  w.key(key).begin_object();
  w.field("mean", ci.mean);
  w.field("ci95", ci.half_width);
  w.field("min", s.min());
  w.field("max", s.max());
  w.end_object();
}

constexpr const char* kMetricNames[] = {
    "dmr",    "fps",          "fps_on_time",  "p50_ms",
    "p99_ms", "oom_rejected", "failovers",    "streams_lost",
    "unavailability_s"};

}  // namespace

void write_experiment_csv(const ExperimentResult& r, std::ostream& out) {
  common::CsvWriter csv(out);
  std::vector<std::string> header;
  header.push_back("cell");
  if (!r.cells.empty()) {
    for (const auto& [k, v] : r.cells.front().coords) header.push_back(k);
  }
  header.push_back("runs");
  header.push_back("failures");
  for (const char* m : kMetricNames) {
    header.push_back(std::string(m) + "_mean");
    header.push_back(std::string(m) + "_ci95");
    header.push_back(std::string(m) + "_min");
    header.push_back(std::string(m) + "_max");
  }
  header.push_back("error");
  csv.row(header);

  for (const auto& cell : r.cells) {
    std::vector<std::string> row;
    row.push_back(std::to_string(cell.index));
    for (const auto& [k, v] : cell.coords) row.push_back(v);
    row.push_back(std::to_string(cell.runs));
    row.push_back(std::to_string(cell.failures));
    csv_metric_cells(row, cell.dmr);
    csv_metric_cells(row, cell.fps);
    csv_metric_cells(row, cell.fps_on_time);
    csv_metric_cells(row, cell.p50_latency_ms);
    csv_metric_cells(row, cell.p99_latency_ms);
    csv_metric_cells(row, cell.oom_rejected);
    csv_metric_cells(row, cell.failovers);
    csv_metric_cells(row, cell.streams_lost);
    csv_metric_cells(row, cell.unavailability_s);
    row.push_back(cell.first_error);
    csv.row(row);
  }
}

void write_experiment_json(const ExperimentResult& r, std::ostream& out) {
  common::JsonWriter w(out);
  w.begin_object();
  w.field("experiment", r.name);
  if (!r.description.empty()) w.field("description", r.description);
  w.field("replications", r.replications);
  w.field("base_seed", static_cast<std::int64_t>(r.base_seed));
  w.field("cells", static_cast<std::int64_t>(r.cells.size()));
  w.field("total_runs", r.total_runs);
  w.field("total_failures", r.total_failures);
  w.key("results").begin_array();
  for (const auto& cell : r.cells) {
    w.begin_object();
    w.field("cell", static_cast<std::int64_t>(cell.index));
    w.key("coords").begin_object();
    for (const auto& [k, v] : cell.coords) w.field(k, v);
    w.end_object();
    w.field("runs", cell.runs);
    w.field("failures", cell.failures);
    if (!cell.first_error.empty()) w.field("first_error", cell.first_error);
    json_metric(w, "dmr", cell.dmr);
    json_metric(w, "fps", cell.fps);
    json_metric(w, "fps_on_time", cell.fps_on_time);
    json_metric(w, "p50_latency_ms", cell.p50_latency_ms);
    json_metric(w, "p99_latency_ms", cell.p99_latency_ms);
    json_metric(w, "oom_rejected", cell.oom_rejected);
    json_metric(w, "failovers", cell.failovers);
    json_metric(w, "streams_lost", cell.streams_lost);
    json_metric(w, "unavailability_s", cell.unavailability_s);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
}

}  // namespace sgprs::workload
