// Shared helpers for the declarative spec parsers (workload/spec.cpp and
// workload/experiment.cpp): typed field getters that turn JSON type errors
// into SpecError with the full field path, and unknown-key rejection.
//
// Internal detail namespace — not part of the workload API surface.
#pragma once

#include <initializer_list>
#include <limits>
#include <string>

#include "common/json.hpp"
#include "workload/spec_error.hpp"

namespace sgprs::workload::specdet {

[[noreturn]] inline void bad(const std::string& path, const std::string& msg) {
  throw SpecError(path, msg);
}

/// Unknown keys are errors, exactly like unknown CLI flags: a typo must not
/// silently become a default.
inline void check_keys(const common::JsonValue& obj,
                       std::initializer_list<const char*> allowed,
                       const std::string& path) {
  for (const auto& [key, value] : obj.members()) {
    bool known = false;
    for (const char* a : allowed) {
      if (key == a) {
        known = true;
        break;
      }
    }
    if (!known) {
      std::string names;
      for (const char* a : allowed) {
        if (!names.empty()) names += ", ";
        names += a;
      }
      bad(path, "unknown key \"" + key + "\" (allowed: " + names + ")");
    }
  }
}

inline const common::JsonValue& require_object(const common::JsonValue& v,
                                               const std::string& path) {
  if (!v.is_object()) {
    bad(path, std::string("expected an object, got ") + v.type_name());
  }
  return v;
}

/// Typed getters: absent key -> default; wrong type -> SpecError with the
/// full field path.
template <typename F>
auto get_field(const char* key, const std::string& path, F accessor) {
  try {
    return accessor();
  } catch (const common::JsonError& e) {
    throw SpecError(path + "." + key, e.what());
  }
}

inline double num_or(const common::JsonValue& obj, const char* key,
                     double def, const std::string& path) {
  const common::JsonValue* v = obj.find(key);
  if (!v) return def;
  return get_field(key, path, [&] { return v->as_number(); });
}

inline int int_or(const common::JsonValue& obj, const char* key, int def,
                  const std::string& path) {
  const common::JsonValue* v = obj.find(key);
  if (!v) return def;
  const std::int64_t n = get_field(key, path, [&] { return v->as_int(); });
  if (n < std::numeric_limits<int>::min() ||
      n > std::numeric_limits<int>::max()) {
    bad(path + std::string(".") + key, "integer out of range");
  }
  return static_cast<int>(n);
}

inline bool bool_or(const common::JsonValue& obj, const char* key, bool def,
                    const std::string& path) {
  const common::JsonValue* v = obj.find(key);
  if (!v) return def;
  return get_field(key, path, [&] { return v->as_bool(); });
}

inline std::string str_or(const common::JsonValue& obj, const char* key,
                          const std::string& def, const std::string& path) {
  const common::JsonValue* v = obj.find(key);
  if (!v) return def;
  return get_field(key, path, [&] { return v->as_string(); });
}

inline std::uint64_t seed_or(const common::JsonValue& obj, const char* key,
                             std::uint64_t def, const std::string& path) {
  const common::JsonValue* v = obj.find(key);
  if (!v) return def;
  const std::int64_t n = get_field(key, path, [&] { return v->as_int(); });
  // A negative seed would silently wrap to a huge uint64 — reject it like
  // any other bad value instead.
  if (n < 0) bad(path + std::string(".") + key, "seed must be >= 0");
  return static_cast<std::uint64_t>(n);
}

}  // namespace sgprs::workload::specdet
