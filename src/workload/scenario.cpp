#include "workload/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "cluster/cluster.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "dnn/profiler.hpp"
#include "rt/runner.hpp"
#include "sim/engine.hpp"

namespace sgprs::workload {

/// Pool shape for one device. The naive baseline gets one stream per
/// context and no over-subscription (it is pure spatial partitioning).
gpu::ContextPoolConfig pool_config_for(const ScenarioConfig& cfg) {
  gpu::ContextPoolConfig pool_cfg;
  pool_cfg.num_contexts = cfg.num_contexts;
  if (cfg.scheduler == SchedulerKind::kSgprs) {
    pool_cfg.oversubscription = cfg.oversubscription;
    pool_cfg.explicit_sm_limits = cfg.context_sms;
    pool_cfg.high_streams_per_context = 2;
    pool_cfg.low_streams_per_context = 2;
  } else {
    pool_cfg.oversubscription = 1.0;
    pool_cfg.high_streams_per_context = 1;
    pool_cfg.low_streams_per_context = 0;
  }
  return pool_cfg;
}

namespace {

/// Offline phase: one shared network + WCET profile at every distinct SM
/// size, cloned per task with seeded phase jitter. Identical rng
/// consumption on the single-GPU and cluster paths keeps a 1-device
/// cluster bit-identical to run_scenario.
std::vector<rt::Task> build_task_set(const ScenarioConfig& cfg,
                                     const std::vector<int>& pool_sizes) {
  const auto network = std::make_shared<const dnn::Network>(
      cfg.network_builder ? cfg.network_builder() : dnn::resnet18());
  dnn::Profiler profiler(cfg.device, gpu::SpeedupModel::rtx2080ti(),
                         dnn::CostModel::calibrated());

  rt::TaskConfig tcfg;
  tcfg.fps = cfg.fps;
  tcfg.num_stages = cfg.num_stages;
  tcfg.priority_policy = cfg.priority_policy;

  common::Rng rng(cfg.seed);
  const rt::Task prototype =
      rt::build_task(0, network, tcfg, profiler, pool_sizes);

  std::vector<rt::Task> tasks;
  tasks.reserve(cfg.num_tasks);
  for (int i = 0; i < cfg.num_tasks; ++i) {
    rt::Task t = prototype;
    t.id = i;
    t.name = "task" + std::to_string(i);
    if (cfg.jitter_phases) {
      t.phase = SimTime::from_sec(rng.next_double() * t.period.to_sec());
    }
    tasks.push_back(std::move(t));
  }
  return tasks;
}

}  // namespace

void validate(const ScenarioConfig& cfg) {
  SGPRS_CHECK_MSG(cfg.num_tasks >= 1,
                  "num_tasks must be >= 1, got " << cfg.num_tasks);
  SGPRS_CHECK_MSG(cfg.fps > 0.0, "fps must be > 0, got " << cfg.fps);
  SGPRS_CHECK_MSG(cfg.num_stages >= 1,
                  "num_stages must be >= 1, got " << cfg.num_stages);
  // Explicit per-context SM limits replace num_contexts, but only on the
  // SGPRS path (the naive pool stays uniform and ignores them).
  const bool explicit_pool = !cfg.context_sms.empty() &&
                             cfg.scheduler == SchedulerKind::kSgprs;
  SGPRS_CHECK_MSG(cfg.num_contexts >= 1 || explicit_pool,
                  "num_contexts must be >= 1, got " << cfg.num_contexts);
  SGPRS_CHECK_MSG(cfg.oversubscription >= 1.0,
                  "oversubscription must be >= 1.0 (the paper's SGPRS_os), "
                  "got " << cfg.oversubscription);
  for (int sms : cfg.context_sms) {
    SGPRS_CHECK_MSG(sms >= 1, "context_sms entries must be >= 1, got " << sms);
  }
  SGPRS_CHECK_MSG(cfg.duration > SimTime::zero(), "duration must be > 0");
  SGPRS_CHECK_MSG(cfg.warmup < cfg.duration,
                  "warmup (" << cfg.warmup.to_sec()
                             << " s) must be below duration ("
                             << cfg.duration.to_sec() << " s)");
  SGPRS_CHECK_MSG(cfg.sgprs.max_in_flight_per_task >= 1,
                  "sgprs.max_in_flight_per_task must be >= 1, got "
                      << cfg.sgprs.max_in_flight_per_task);
  SGPRS_CHECK_MSG(cfg.num_devices >= 1 || !cfg.fleet.empty(),
                  "fleet must not be empty: num_devices must be >= 1, got "
                      << cfg.num_devices);
  SGPRS_CHECK_MSG(cfg.shards >= 1,
                  "shards must be >= 1, got " << cfg.shards);
  SGPRS_CHECK_MSG(cfg.admission_margin <= 1.0,
                  "admission_margin must be a fraction in (0, 1] (or <= 0 "
                  "to disable admission), got " << cfg.admission_margin);
  SGPRS_CHECK_MSG(cfg.occupancy_threshold > 0.0 &&
                      cfg.occupancy_threshold <= 1.0,
                  "occupancy_threshold must be a fraction in (0, 1], got "
                      << cfg.occupancy_threshold);
  SGPRS_CHECK_MSG(cfg.device_mem_mb >= 0.0,
                  "device_mem_mb must be >= 0 (0 keeps the device default), "
                  "got " << cfg.device_mem_mb);
}

ScenarioResult run_scenario(const ScenarioConfig& cfg,
                            const TaskSetBuilder& task_builder) {
  validate(cfg);

  sim::Engine engine;
  gpu::Executor exec(engine, cfg.device, gpu::SpeedupModel::rtx2080ti(),
                     cfg.sharing);
  gpu::ContextPool pool(exec, pool_config_for(cfg));

  // Profile at every distinct SM size in the (possibly heterogeneous) pool.
  std::vector<int> pool_sizes;
  for (const auto& pc : pool.contexts()) {
    if (std::find(pool_sizes.begin(), pool_sizes.end(), pc.sm_limit) ==
        pool_sizes.end()) {
      pool_sizes.push_back(pc.sm_limit);
    }
  }
  std::vector<rt::Task> tasks = task_builder
                                    ? task_builder(cfg, pool_sizes)
                                    : build_task_set(cfg, pool_sizes);
  SGPRS_CHECK_MSG(!tasks.empty(), "task-set builder produced no tasks");

  metrics::Collector collector(cfg.warmup);
  std::unique_ptr<rt::Scheduler> scheduler;
  if (cfg.scheduler == SchedulerKind::kSgprs) {
    scheduler = std::make_unique<rt::SgprsScheduler>(exec, pool, collector,
                                                     cfg.sgprs);
  } else {
    scheduler = std::make_unique<rt::NaiveScheduler>(exec, pool, collector,
                                                     cfg.naive);
  }

  rt::RunnerConfig rcfg;
  rcfg.duration = cfg.duration;
  // Sporadic inter-arrival draws key off this seed too; periodic runs
  // never touch the runner rng, so this cannot perturb the paper path.
  rcfg.jitter_seed = cfg.seed;
  rt::Runner runner(engine, *scheduler, tasks, rcfg);
  runner.run();

  ScenarioResult result;
  result.aggregate = collector.aggregate(cfg.duration);
  for (const auto& t : tasks) {
    result.per_task.push_back(collector.per_task(t.id, cfg.duration));
  }
  result.releases = runner.releases_issued();
  if (auto* s = dynamic_cast<rt::SgprsScheduler*>(scheduler.get())) {
    result.stage_migrations = s->stage_migrations();
    result.medium_promotions = s->medium_promotions();
  }
  result.sim_events = static_cast<double>(engine.processed_count());
  result.gpu_busy_sm_seconds = exec.busy_sm_seconds();
  return result;
}

ClusterScenarioResult run_cluster_scenario(const ScenarioConfig& cfg,
                                           const TaskSetBuilder& task_builder) {
  validate(cfg);

  sim::Engine engine;
  metrics::Collector collector(cfg.warmup);

  cluster::ClusterConfig ccfg;
  ccfg.devices = cfg.fleet.empty() ? std::vector<gpu::DeviceSpec>(
                                         cfg.num_devices, cfg.device)
                                   : cfg.fleet;
  if (cfg.device_mem_mb > 0.0) {
    for (auto& spec : ccfg.devices) {
      spec.mem_bytes =
          static_cast<std::int64_t>(std::llround(cfg.device_mem_mb * 1048576.0));
    }
  }
  ccfg.placement = cfg.placement;
  ccfg.admission_margin = cfg.admission_margin;
  ccfg.occupancy_threshold = cfg.occupancy_threshold;
  ccfg.scheduler = cfg.scheduler;
  ccfg.pool = pool_config_for(cfg);
  ccfg.sgprs = cfg.sgprs;
  ccfg.naive = cfg.naive;
  ccfg.sharing = cfg.sharing;
  cluster::Cluster fleet(engine, collector, ccfg);

  fleet.place(task_builder ? task_builder(cfg, fleet.pool_sm_sizes())
                           : build_task_set(cfg, fleet.pool_sm_sizes()));

  rt::RunnerConfig rcfg;
  rcfg.duration = cfg.duration;
  rcfg.jitter_seed = cfg.seed;
  fleet.start(rcfg);
  engine.run_until(cfg.duration);

  ClusterScenarioResult result;
  result.fleet = fleet.fleet_report(cfg.duration);
  for (const auto& t : fleet.rejected_tasks()) {
    result.rejected_task_ids.push_back(t.id);
  }
  result.releases = fleet.releases_issued();
  result.stage_migrations = fleet.stage_migrations();
  result.medium_promotions = fleet.medium_promotions();
  result.sim_events = static_cast<double>(engine.processed_count());
  return result;
}

std::vector<ScenarioResult> sweep_num_tasks(ScenarioConfig cfg, int from,
                                            int to) {
  SGPRS_CHECK(from >= 1 && to >= from);
  std::vector<ScenarioResult> results;
  results.reserve(to - from + 1);
  for (int n = from; n <= to; ++n) {
    cfg.num_tasks = n;
    results.push_back(run_scenario(cfg));
  }
  return results;
}

int find_pivot(const std::vector<ScenarioResult>& sweep, int from,
               double miss_epsilon) {
  int pivot = from - 1;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (sweep[i].aggregate.dmr > miss_epsilon) break;
    pivot = from + static_cast<int>(i);
  }
  return pivot;
}

}  // namespace sgprs::workload
