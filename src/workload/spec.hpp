// Declarative JSON scenario specs (docs/scenario-format.md is the full
// schema reference).
//
// A spec describes everything run_scenario / run_cluster_scenario need —
// scheduler, pool shape, sim window, a *heterogeneous* task list (explicit
// entries or a UUniFast generator) and an optional fleet section — so a
// workload lives in a versioned .json file instead of a recompiled binary.
// Lowering guarantee: a "simple" spec (one periodic task entry, default
// phases) lowers onto the identical-task fast path of ScenarioConfig and is
// bit-identical to the hard-coded benches (pinned by
// tests/workload/spec_test.cpp against scenarios/paper_scenario1.json).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "fleet/faults.hpp"
#include "fleet/policy.hpp"
#include "fleet/report.hpp"
#include "fleet/timeline.hpp"
#include "workload/scenario.hpp"
#include "workload/spec_error.hpp"

namespace sgprs::trace {
class TraceRecorder;
}  // namespace sgprs::trace

namespace sgprs::obs {
struct Instruments;
}  // namespace sgprs::obs

namespace sgprs::workload {

/// One task entry: `count` replicas of a (network, rate, stages, arrival)
/// combination. Times are milliseconds in the JSON schema because frame
/// budgets are naturally quoted that way.
struct TaskEntrySpec {
  std::string name = "task";
  int count = 1;
  std::string network = "resnet18";
  double fps = 30.0;
  int num_stages = 6;
  /// Relative deadline; 0 = implicit (deadline = period).
  double deadline_ms = 0.0;
  /// First-release offset; < 0 = seeded random phase in [0, period).
  double phase_ms = -1.0;
  rt::PriorityPolicy priority_policy = rt::PriorityPolicy::kLastStageHigh;
  rt::ArrivalModel arrival = rt::ArrivalModel::kPeriodic;
  /// Sporadic only. 0 = derive min from fps (1000/fps) and max as
  /// 1.5 * min. Admission treats 1/min_separation as the worst-case rate.
  double min_separation_ms = 0.0;
  double max_separation_ms = 0.0;
  /// Overload shed tier (fleet runs only): 0 = protected from
  /// priority-aware load shedding. Initial task entries default to 0;
  /// timeline templates default to 1.
  int tier = 0;
  /// Placement footprint overrides. < 0 (default) keeps the footprint the
  /// profiler derives from the network; >= 0 pins memory (MiB) and/or
  /// time-averaged resident warps explicitly.
  double mem_mb = -1.0;
  long long warps = -1;
};

/// UUniFast task-set generator (workload/taskset.hpp), for capacity
/// studies: `count` tasks whose utilizations sum to `total_utilization`.
struct GeneratorSpec {
  int count = 8;
  double total_utilization = 2.0;
  int num_stages = 6;
  double min_fps = 5.0;
  double max_fps = 120.0;
  /// Network names drawn uniformly; empty = the taskset default mix.
  std::vector<std::string> networks;
  std::uint64_t seed = 7;
};

struct ScenarioSpec {
  std::string name;         // defaults to the file stem
  std::string description;  // free text, echoed in reports
  /// Scheduler/pool/device/fleet/sim knobs, lowered 1:1 from the JSON.
  /// Task fields inside (num_tasks, fps, ...) are filled at run time.
  ScenarioConfig base;
  /// Explicit task entries, in file order. Mutually exclusive with
  /// `generator`.
  std::vector<TaskEntrySpec> tasks;
  std::optional<GeneratorSpec> generator;
  /// True when the spec has a "fleet" section: the run goes through the
  /// cluster path (placement + admission control) even with one device.
  bool fleet_mode = false;
  /// Open-world sections (docs/online-fleet.md): a churn timeline and/or a
  /// fleet control policy. Either routes the run through the fleet runtime
  /// (src/fleet/); specs without them keep the closed-world paths
  /// bit-identical.
  std::optional<fleet::TimelineSpec> timeline;
  std::optional<fleet::FleetPolicySpec> fleet_policy;
  /// Fault injection (docs/faults.md): scripted crashes, a stochastic
  /// MTBF/MTTR process and the failover policy. Also routes the run
  /// through the fleet runtime.
  std::optional<fleet::FaultSpec> faults;

  bool dynamic() const {
    return timeline.has_value() || fleet_policy.has_value() ||
           faults.has_value();
  }
};

/// Parses a spec from a JSON document. Unknown keys are errors (typos must
/// not silently become defaults). `default_name` names the spec when the
/// document has no "name". A top-level "experiment" section is rejected with
/// a pointed error unless `skip_experiment_section` — the experiment loader
/// (workload/experiment.hpp) owns that key and parses the rest of the
/// document through here. Throws SpecError / common::JsonError.
ScenarioSpec parse_scenario_spec(const common::JsonValue& root,
                                 const std::string& default_name,
                                 bool skip_experiment_section = false);

/// Reads, parses and validates a .json spec file. A trace-driven timeline
/// (`"timeline": {"trace": "..."}`) has its trace file loaded here too,
/// resolved relative to the spec's directory. Passing a trace *data* file
/// (one written by --record-trace / trace_scale) is rejected with a
/// pointed error — those are replayed with --trace, not --scenario.
ScenarioSpec load_scenario_spec(const std::string& path);

/// Loads and attaches the trace a trace-driven timeline names:
/// timeline->trace_path is resolved against `spec_path`'s directory (used
/// verbatim when absolute or `spec_path` is empty), then trace::load_trace
/// validates it. No-op when the spec has no trace path or the trace is
/// already attached (specs built in memory set timeline->trace directly).
void resolve_spec_trace(ScenarioSpec& spec, const std::string& spec_path);

/// Semantic validation beyond parsing: entry counts, rates, separations,
/// generator bounds, fleet shape. Throws SpecError with the field path.
void validate(const ScenarioSpec& spec);

/// True when the spec lowers exactly onto ScenarioConfig's identical-task
/// fast path (one periodic entry, jittered phases, implicit deadline): such
/// specs run bit-identically to the hard-coded path.
bool is_simple_spec(const ScenarioSpec& spec);

/// The ScenarioConfig a run of this spec uses: base plus the task fields
/// (num_tasks = total replica count; fps/stages/network from the single
/// entry when the spec is simple).
ScenarioConfig lower(const ScenarioSpec& spec);

/// Task-set builder implementing the general (heterogeneous / sporadic /
/// generated) path; exposed for tests and custom harnesses. The returned
/// builder owns a copy of the spec, so it outlives the argument.
TaskSetBuilder task_builder_for(const ScenarioSpec& spec);

/// Same, with the generator seed overridden (replication runs and the
/// fleet runtime, which derives seeds without cloning the spec).
TaskSetBuilder task_builder_for(const ScenarioSpec& spec,
                                std::uint64_t generator_seed);

/// The task entry that produced initial task index `i` (entry replicas
/// expand in file order with sequential ids), or nullptr for
/// generator-built tasks. The fleet runtime reads the entry's tier and
/// name (churn retire targets match entry names exactly).
const TaskEntrySpec* task_entry_for(const ScenarioSpec& spec,
                                    int task_index);

/// Shed tier of initial task index `i` (0 for generator tasks).
int task_tier_for(const ScenarioSpec& spec, int task_index);

/// Result of running one spec: exactly one of the three run paths was
/// taken (single device, closed-world fleet, or the open-world fleet
/// runtime).
struct SpecResult {
  std::string name;
  bool fleet = false;    // closed-world cluster path
  bool dynamic = false;  // open-world fleet runtime (wins over `fleet`)
  ScenarioResult single;           // valid when !fleet && !dynamic
  ClusterScenarioResult cluster;   // valid when fleet
  fleet::FleetRunResult dyn;       // valid when dynamic

  const metrics::Snapshot& aggregate() const {
    if (dynamic) return dyn.fleet.fleet;
    return fleet ? cluster.fleet.fleet : single.aggregate;
  }
  double fps() const { return aggregate().fps; }
  double dmr() const { return aggregate().dmr; }
  std::int64_t releases() const {
    if (dynamic) return dyn.releases;
    return fleet ? cluster.releases : single.releases;
  }
  std::int64_t migrations() const {
    if (dynamic) return dyn.stage_migrations;
    return fleet ? cluster.stage_migrations : single.stage_migrations;
  }
};

/// Validates and runs one spec end to end.
SpecResult run_spec(const ScenarioSpec& spec);

/// Per-run seed overrides, replacing spec.base.seed and (when a generator
/// section exists) spec.generator->seed without touching the spec itself.
struct RunSeeds {
  std::uint64_t sim = 0;
  std::uint64_t generator = 0;
};

/// Runs one *already validated* spec with the given seeds. This is the
/// Monte-Carlo hot path: the experiment engine validates every grid cell
/// once up front, then fires (cells x replications) jobs through here
/// against a shared immutable per-cell spec — no ScenarioSpec copy and no
/// re-validation per job. Seeds are the only thing that varies between
/// replications of a cell.
SpecResult run_spec(const ScenarioSpec& spec, const RunSeeds& seeds);

/// Capture variants (--record-trace): when `capture` is non-null the run
/// feeds it the admit/retire stream. Dynamic specs record their churn
/// exactly (replaying the trace against the same base spec is
/// byte-identical); closed-world specs record their initial task set as
/// t=0 admissions, turning any static scenario into a replayable open-
/// world workload (approximate: the closed-world report format differs).
SpecResult run_spec(const ScenarioSpec& spec, trace::TraceRecorder* capture);
SpecResult run_spec(const ScenarioSpec& spec, const RunSeeds& seeds,
                    trace::TraceRecorder* capture);

/// Instrumented variant (--trace-spans / --profile, docs/observability.md).
/// Span tracing requires the dynamic fleet-runtime path; the CLI rejects
/// --trace-spans on static specs up front. The profiler attaches to any
/// path (the dynamic runtime additionally times its internal phases).
/// Neither instrument perturbs the run: report bytes are identical with
/// and without them.
SpecResult run_spec(const ScenarioSpec& spec, const RunSeeds& seeds,
                    trace::TraceRecorder* capture,
                    const obs::Instruments& instruments);

}  // namespace sgprs::workload
