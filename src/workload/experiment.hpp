// Parallel Monte-Carlo experiment engine (docs/experiments.md is the full
// format and math reference).
//
// An ExperimentSpec is a base scenario spec × a parameter grid × seed
// replications. Expansion produces one independent job per (grid cell,
// replication); jobs run on a common::ThreadPool and per-cell metrics are
// reduced to mean ± 95% CI (Student t, common::RunningStats).
//
// Determinism contract (pinned by tests/workload/experiment_test.cpp and
// the determinism suite):
//  * every job's RNG seed derives from (base_seed, cell index, replication
//    index) — never from wall clock or thread identity;
//  * futures are collected in job-submission order and reduced serially,
//    so reports are byte-identical for --jobs 1 and --jobs N.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"
#include "rt/scheduler_kind.hpp"
#include "workload/spec.hpp"

namespace sgprs::workload {

/// One sweep axis of the parameter grid. Axes are typed by name — an
/// unknown axis name is a spec error, exactly like an unknown key.
enum class GridAxisKind {
  kScheduler,        // "scheduler": scheduler kind names
  kFpsScale,         // "fps_scale": multiplies every task entry's rate
  kUtilization,      // "utilization": generator total_utilization override
  kDevices,          // "devices": fleet size (forces the cluster path)
  kAdmissionMargin,  // "admission_margin": fleet admission budget
};

struct GridAxisSpec {
  GridAxisKind kind;
  std::string name;  // the JSON key, echoed in reports
  /// Exactly one of the two value vectors is populated (schedulers for
  /// kScheduler, numeric for everything else).
  std::vector<double> numeric;
  std::vector<rt::SchedulerKind> schedulers;

  std::size_t size() const {
    return kind == GridAxisKind::kScheduler ? schedulers.size()
                                            : numeric.size();
  }
  /// Human/report label of value `i` ("sgprs", "1.5", "0.85", ...).
  std::string value_label(std::size_t i) const;
};

struct ExperimentSpec {
  std::string name;         // defaults to the file stem
  std::string description;  // free text, echoed in reports
  ScenarioSpec base;        // the scenario every cell perturbs
  int replications = 8;
  /// Root of every derived per-job seed. The base scenario's own sim /
  /// generator seeds are overridden per job.
  std::uint64_t base_seed = 42;
  /// Grid axes in file order; empty = a single cell (pure seed sweep).
  std::vector<GridAxisSpec> axes;
};

/// Parses the document: the top-level "experiment" section plus a full
/// scenario spec in the remaining keys. Throws SpecError with field paths
/// ("spec.experiment.grid.fps_scale[1]: must be > 0").
ExperimentSpec parse_experiment_spec(const common::JsonValue& root,
                                     const std::string& default_name);

/// Reads, parses and validates a .json experiment spec file.
ExperimentSpec load_experiment_spec(const std::string& path);

/// Semantic validation: replication count, axis value ranges, axis/spec
/// compatibility (utilization needs a generator, fps_scale explicit tasks),
/// and that every grid cell lowers onto a valid scenario.
void validate(const ExperimentSpec& spec);

/// Number of grid cells (product of axis sizes; 1 when there are no axes).
std::size_t cell_count(const ExperimentSpec& spec);

/// Per-axis value indices of cell `cell` (row-major: the last axis varies
/// fastest, matching nested loops in declaration order).
std::vector<std::size_t> cell_coords(const ExperimentSpec& spec,
                                     std::size_t cell);

/// (axis name, value label) pairs of cell `cell`, in axis order.
std::vector<std::pair<std::string, std::string>> cell_labels(
    const ExperimentSpec& spec, std::size_t cell);

/// The concrete scenario run for (cell, replication): base with the cell's
/// axis values applied and seeds derived via experiment_seed(). Pure —
/// never consults global state, so job expansion is reproducible.
ScenarioSpec scenario_for(const ExperimentSpec& spec, std::size_t cell,
                          int replication);

/// Deterministic per-job seed stream: splitmix64-style avalanche over
/// (base_seed, cell, replication, stream). `stream` separates independent
/// consumers within one job (0 = sim phase/arrival jitter, 1 = task-set
/// generator) so overriding one never shifts the other.
std::uint64_t experiment_seed(std::uint64_t base_seed, std::size_t cell,
                              int replication, std::uint64_t stream);

/// Aggregated replications of one grid cell. Failed replications are
/// counted and excluded from the stats; the first error is kept verbatim.
struct CellResult {
  std::size_t index = 0;
  std::vector<std::pair<std::string, std::string>> coords;
  int runs = 0;      // replications that completed
  int failures = 0;  // replications that threw
  std::string first_error;

  common::RunningStats dmr;
  common::RunningStats fps;
  common::RunningStats fps_on_time;
  common::RunningStats p50_latency_ms;
  common::RunningStats p99_latency_ms;
  /// Streams/tasks rejected with memory as the sole blocker (0 for
  /// single-device runs, which have no placer).
  common::RunningStats oom_rejected;
  /// Fault/failover metrics (0 for runs without a "faults" section —
  /// closed-world and single-device runs never crash).
  common::RunningStats failovers;
  common::RunningStats streams_lost;
  common::RunningStats unavailability_s;

  /// "scheduler=sgprs utilization=2.5"; "all" when the grid has no axes.
  std::string label() const;
};

struct ExperimentResult {
  std::string name;
  std::string description;
  int replications = 0;
  std::uint64_t base_seed = 0;
  std::vector<CellResult> cells;
  int total_runs = 0;
  int total_failures = 0;
  /// Wall-clock of the run. Deliberately absent from every report writer —
  /// reports must be byte-identical across --jobs values.
  double wall_seconds = 0.0;
};

/// Expands the grid × replications into independent jobs and runs them on
/// `jobs` workers (<= 1 runs inline on the calling thread — no pool, same
/// results). Validates first; throws SpecError on a bad spec. Individual
/// job failures do not abort the experiment.
ExperimentResult run_experiment(const ExperimentSpec& spec, int jobs);

/// Human-readable per-cell CI table (one row per grid cell).
void print_experiment(const ExperimentResult& r, std::ostream& out);

/// Machine-readable reports: one row/record per cell with mean, 95% CI
/// half-width and min/max for each headline metric.
void write_experiment_csv(const ExperimentResult& r, std::ostream& out);
void write_experiment_json(const ExperimentResult& r, std::ostream& out);

}  // namespace sgprs::workload
