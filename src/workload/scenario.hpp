// Experiment harness: builds a full simulation (device, pool, task set,
// scheduler, metrics) from a declarative config, runs it, and returns the
// paper's metrics. Every bench and example goes through this.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dnn/builders.hpp"
#include "gpu/context_pool.hpp"
#include "gpu/device.hpp"
#include "metrics/collector.hpp"
#include "rt/naive_scheduler.hpp"
#include "rt/sgprs_scheduler.hpp"

namespace sgprs::workload {

using common::SimTime;

enum class SchedulerKind { kSgprs, kNaive };

inline const char* to_string(SchedulerKind k) {
  return k == SchedulerKind::kSgprs ? "sgprs" : "naive";
}

struct ScenarioConfig {
  SchedulerKind scheduler = SchedulerKind::kSgprs;
  /// Context pool shape. The paper's Scenario 1 is 2 contexts, Scenario 2
  /// is 3. Over-subscription applies to SGPRS; the naive baseline always
  /// partitions the device exactly (os = 1.0) since it has no notion of an
  /// over-subscribed pool.
  int num_contexts = 2;
  double oversubscription = 1.0;
  /// Heterogeneous pool override: explicit per-context SM limits. When
  /// non-empty this wins over num_contexts/oversubscription (SGPRS only;
  /// the naive pool stays uniform).
  std::vector<int> context_sms;

  /// Task set: identical periodic DNN tasks (paper: ResNet18 @ 30 fps,
  /// 6 stages, implicit deadline = period).
  int num_tasks = 1;
  double fps = 30.0;
  int num_stages = 6;
  /// Offline priority assignment (paper: last stage high). Exposed for the
  /// priority ablation.
  rt::PriorityPolicy priority_policy = rt::PriorityPolicy::kLastStageHigh;
  /// Build the task DNN; defaults to ResNet18 @ 224.
  std::function<dnn::Network()> network_builder;

  /// Randomize task phases uniformly in [0, period) — sensor frames are
  /// not phase-aligned in practice. Seeded for reproducibility.
  bool jitter_phases = true;
  std::uint64_t seed = 42;

  SimTime duration = SimTime::from_sec(3.0);
  SimTime warmup = SimTime::from_sec(0.5);

  rt::SgprsConfig sgprs;
  rt::NaiveConfig naive;
  gpu::DeviceSpec device = gpu::rtx2080ti();
  gpu::SharingParams sharing;  // calibrated defaults
};

struct ScenarioResult {
  metrics::Snapshot aggregate;
  std::vector<metrics::Snapshot> per_task;
  std::int64_t releases = 0;
  std::int64_t stage_migrations = 0;   // SGPRS only
  std::int64_t medium_promotions = 0;  // SGPRS only
  double sim_events = 0.0;
  double gpu_busy_sm_seconds = 0.0;

  double fps() const { return aggregate.fps; }
  double dmr() const { return aggregate.dmr; }
};

/// Builds and runs one scenario to completion.
ScenarioResult run_scenario(const ScenarioConfig& cfg);

/// Runs the scenario at every task count in [from, to] (the x-axis of
/// Figs. 3 and 4). Results are indexed by (n - from).
std::vector<ScenarioResult> sweep_num_tasks(ScenarioConfig cfg, int from,
                                            int to);

/// Pivot point (paper Section V): the largest task count that the
/// scheduler handles without deadline misses — i.e. the last N before the
/// first result with dmr > miss_epsilon. Returns `from - 1` if even the
/// smallest count misses.
int find_pivot(const std::vector<ScenarioResult>& sweep, int from,
               double miss_epsilon = 1e-9);

}  // namespace sgprs::workload
