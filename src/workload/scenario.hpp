// Experiment harness: builds a full simulation (device, pool, task set,
// scheduler, metrics) from a declarative config, runs it, and returns the
// paper's metrics. Every bench and example goes through this.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "cluster/placement.hpp"
#include "dnn/builders.hpp"
#include "gpu/context_pool.hpp"
#include "gpu/device.hpp"
#include "metrics/collector.hpp"
#include "metrics/fleet.hpp"
#include "rt/naive_scheduler.hpp"
#include "rt/scheduler_kind.hpp"
#include "rt/sgprs_scheduler.hpp"

namespace sgprs::workload {

using common::SimTime;

/// Scheduler selection now lives in rt/scheduler_kind.hpp (one parse/print
/// site shared by the CLI, benches and the cluster layer); the alias keeps
/// every existing workload:: spelling working. to_string() is found via
/// ADL on the rt enum.
using SchedulerKind = rt::SchedulerKind;

struct ScenarioConfig {
  SchedulerKind scheduler = SchedulerKind::kSgprs;
  /// Context pool shape. The paper's Scenario 1 is 2 contexts, Scenario 2
  /// is 3. Over-subscription applies to SGPRS; the naive baseline always
  /// partitions the device exactly (os = 1.0) since it has no notion of an
  /// over-subscribed pool.
  int num_contexts = 2;
  double oversubscription = 1.0;
  /// Heterogeneous pool override: explicit per-context SM limits. When
  /// non-empty this wins over num_contexts/oversubscription (SGPRS only;
  /// the naive pool stays uniform).
  std::vector<int> context_sms;

  /// Task set: identical periodic DNN tasks (paper: ResNet18 @ 30 fps,
  /// 6 stages, implicit deadline = period).
  int num_tasks = 1;
  double fps = 30.0;
  int num_stages = 6;
  /// Offline priority assignment (paper: last stage high). Exposed for the
  /// priority ablation.
  rt::PriorityPolicy priority_policy = rt::PriorityPolicy::kLastStageHigh;
  /// Build the task DNN; defaults to ResNet18 @ 224.
  std::function<dnn::Network()> network_builder;

  /// Randomize task phases uniformly in [0, period) — sensor frames are
  /// not phase-aligned in practice. Seeded for reproducibility.
  bool jitter_phases = true;
  std::uint64_t seed = 42;

  SimTime duration = SimTime::from_sec(3.0);
  SimTime warmup = SimTime::from_sec(0.5);

  rt::SgprsConfig sgprs;
  rt::NaiveConfig naive;
  gpu::DeviceSpec device = gpu::rtx2080ti();
  gpu::SharingParams sharing;  // calibrated defaults

  /// --- Fleet (cluster subsystem; used by run_cluster_scenario) ---
  /// Number of devices, each a copy of `device`. `fleet` (when non-empty)
  /// wins and allows heterogeneous specs.
  int num_devices = 1;
  std::vector<gpu::DeviceSpec> fleet;
  cluster::PlacementPolicy placement =
      cluster::PlacementPolicy::kLeastLoaded;
  /// Fleet admission budget (fraction of saturated per-device capacity);
  /// <= 0 disables admission control so every task is placed.
  double admission_margin = 0.95;
  /// Admissible fraction of each device's resident-warp capacity.
  double occupancy_threshold = 0.9;
  /// Device memory override in MiB, applied to every device spec (the
  /// memory-constrained scenarios); 0 keeps each spec's own budget.
  double device_mem_mb = 0.0;

  /// Intra-run parallelism for dynamic (fleet-runtime) specs: partition
  /// the device fleet into this many shards, each on its own event
  /// calendar, executed in parallel between control-plane epoch barriers
  /// (docs/sharding.md). 1 = the classic single-calendar path. Results are
  /// byte-identical at any shard count (pinned by the shard determinism
  /// suite); only wall-clock changes.
  int shards = 1;
};

struct ScenarioResult {
  metrics::Snapshot aggregate;
  std::vector<metrics::Snapshot> per_task;
  std::int64_t releases = 0;
  std::int64_t stage_migrations = 0;   // SGPRS only
  std::int64_t medium_promotions = 0;  // SGPRS only
  double sim_events = 0.0;
  double gpu_busy_sm_seconds = 0.0;

  double fps() const { return aggregate.fps; }
  double dmr() const { return aggregate.dmr; }
};

/// Context-pool shape one device of this config gets (the naive baseline
/// is clamped to pure spatial partitioning: one stream per context, no
/// over-subscription). Shared by the single-GPU, cluster and fleet paths.
gpu::ContextPoolConfig pool_config_for(const ScenarioConfig& cfg);

/// Checks every ScenarioConfig invariant in one place (task counts, rates,
/// pool shape, oversubscription >= 1, fleet size, admission margin, sim
/// window) and throws common::CheckError with a message naming the bad
/// field. run_scenario / run_cluster_scenario call this on entry; callers
/// that build configs from user input (CLI, scenario specs) can call it
/// early to fail before any simulation state exists.
void validate(const ScenarioConfig& cfg);

/// Custom task-set construction hook: given the validated config and the
/// distinct context SM sizes to profile WCETs at, produce the tasks to run.
/// The scenario-spec layer uses this for heterogeneous / sporadic /
/// generated task sets; when absent the default builder clones
/// cfg.num_tasks identical tasks (the paper's setup).
using TaskSetBuilder = std::function<std::vector<rt::Task>(
    const ScenarioConfig& cfg, const std::vector<int>& pool_sm_sizes)>;

/// Builds and runs one scenario to completion.
ScenarioResult run_scenario(const ScenarioConfig& cfg,
                            const TaskSetBuilder& tasks = {});

/// Result of a fleet run: per-device + rolled-up metrics plus the
/// scheduler counters summed across devices.
struct ClusterScenarioResult {
  metrics::FleetReport fleet;
  std::vector<int> rejected_task_ids;
  std::int64_t releases = 0;
  std::int64_t stage_migrations = 0;   // SGPRS only
  std::int64_t medium_promotions = 0;  // SGPRS only
  double sim_events = 0.0;

  double fps() const { return fleet.fleet.fps; }
  double dmr() const { return fleet.fleet.dmr; }
};

/// Builds and runs the fleet described by cfg.num_devices/cfg.fleet: one
/// shared engine and collector, per-device executor/pool/scheduler, tasks
/// assigned by cfg.placement with admission control. With one device and
/// every task admitted this follows the exact event sequence of
/// run_scenario (same seed → identical counts).
ClusterScenarioResult run_cluster_scenario(const ScenarioConfig& cfg,
                                           const TaskSetBuilder& tasks = {});

/// Runs the scenario at every task count in [from, to] (the x-axis of
/// Figs. 3 and 4). Results are indexed by (n - from).
std::vector<ScenarioResult> sweep_num_tasks(ScenarioConfig cfg, int from,
                                            int to);

/// Pivot point (paper Section V): the largest task count that the
/// scheduler handles without deadline misses — i.e. the last N before the
/// first result with dmr > miss_epsilon. Returns `from - 1` if even the
/// smallest count misses.
int find_pivot(const std::vector<ScenarioResult>& sweep, int from,
               double miss_epsilon = 1e-9);

}  // namespace sgprs::workload
