// Scenario suite runner: executes every .json spec in a directory and
// produces a side-by-side comparison report.
//
// A suite is just a directory (the repo ships `scenarios/`); files run in
// filename order so reports diff cleanly. One failing spec (parse error,
// bad field, runtime check) does not abort the suite — it becomes an error
// row, and callers can distinguish "all green" from "ran with failures".
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "workload/spec.hpp"

namespace sgprs::workload {

/// Outcome of one suite member.
struct SuiteRun {
  std::string file;  // path as discovered
  bool ok = false;
  std::string error;       // set when !ok
  /// Failing field path ("spec.tasks[0].fps") when the error was a
  /// SpecError tied to a field; empty otherwise. Propagated into the CSV
  /// and JSON error rows so report consumers need not parse `error`.
  std::string field_path;
  std::string scenario;    // spec name (file stem on parse failure)
  std::string description; // spec description when parsed
  SpecResult result;       // valid when ok
};

/// The *.json spec files in `dir`, sorted by filename; empty when the
/// directory does not exist. Shared by the suite runner and the CLI's
/// --list-scenarios / "did you mean" suggestions, so they can never
/// disagree about what counts as a spec.
std::vector<std::string> list_spec_files(const std::string& dir);

/// Runs every *.json file in `dir`, sorted by filename. Throws SpecError
/// when the directory does not exist or holds no specs.
std::vector<SuiteRun> run_suite(const std::string& dir);

/// True iff every member ran to completion.
bool suite_ok(const std::vector<SuiteRun>& runs);

/// Human-readable comparison table (one row per scenario).
void print_suite(const std::vector<SuiteRun>& runs, std::ostream& out);

/// Machine-readable reports: one row/record per scenario with the headline
/// metrics (FPS, on-time FPS, DMR, latency percentiles, releases,
/// migrations, fleet placement counts) plus error rows for failed specs.
void write_suite_csv(const std::vector<SuiteRun>& runs, std::ostream& out);
void write_suite_json(const std::vector<SuiteRun>& runs, std::ostream& out);

}  // namespace sgprs::workload
