// Synthetic task-set generation for stress tests and capacity studies.
//
// Utilizations are drawn with UUniFast (Bini & Buttazzo), the standard
// unbiased sampler for real-time task-set experiments; each task then gets
// a network from a mix and a rate derived from its utilization share.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "dnn/profiler.hpp"
#include "rt/task.hpp"

namespace sgprs::workload {

struct RandomTaskSetConfig {
  int count = 8;
  /// Total utilization target, in units of "fraction of one pool context
  /// running whole networks back to back" (u_i = WCET_i(pool_sms) / T_i).
  double total_utilization = 2.0;
  /// Candidate networks (weights uniform). Defaults to
  /// {resnet18, mobilenet_like, lenet5} when empty.
  std::vector<std::function<dnn::Network()>> network_choices;
  /// Stage count per task.
  int num_stages = 6;
  /// Periods are clamped into [min_fps, max_fps].
  double min_fps = 5.0;
  double max_fps = 120.0;
  std::uint64_t seed = 7;
};

/// UUniFast: draws `n` utilizations summing exactly to `total`.
std::vector<double> uunifast(int n, double total, common::Rng& rng);

/// Builds a random task set against a pool SM size. Tasks get ids
/// [0, count), phases jittered within one period.
std::vector<rt::Task> build_random_taskset(const RandomTaskSetConfig& cfg,
                                           const dnn::Profiler& profiler,
                                           const std::vector<int>& pool_sms);

}  // namespace sgprs::workload
