#include "workload/suite.hpp"

#include <algorithm>
#include <filesystem>

#include "common/csv.hpp"
#include "common/json_writer.hpp"
#include "metrics/report.hpp"
#include "trace/trace.hpp"

namespace sgprs::workload {

namespace fs = std::filesystem;

std::vector<std::string> list_spec_files(const std::string& dir) {
  std::vector<std::string> files;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<SuiteRun> run_suite(const std::string& dir) {
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    throw SpecError("suite: not a directory: " + dir);
  }
  const std::vector<std::string> files = list_spec_files(dir);
  if (files.empty()) {
    throw SpecError("suite: no .json scenario specs in " + dir);
  }

  std::vector<SuiteRun> runs;
  runs.reserve(files.size());
  for (const auto& file : files) {
    // Trace *data* files (--record-trace output) live beside their replay
    // specs; they are inputs to specs, not runnable scenarios.
    if (trace::sniff_trace_file(file)) continue;
    SuiteRun run;
    run.file = file;
    run.scenario = fs::path(file).stem().string();
    try {
      const ScenarioSpec spec = load_scenario_spec(file);
      run.scenario = spec.name;
      run.description = spec.description;
      run.result = run_spec(spec);
      run.ok = true;
    } catch (const SpecError& e) {
      run.error = e.what();
      run.field_path = e.path();
    } catch (const std::exception& e) {
      run.error = e.what();
    }
    runs.push_back(std::move(run));
  }
  return runs;
}

bool suite_ok(const std::vector<SuiteRun>& runs) {
  return std::all_of(runs.begin(), runs.end(),
                     [](const SuiteRun& r) { return r.ok; });
}

namespace {

std::string placed_cell(const SuiteRun& r) {
  if (r.result.dynamic) {
    const auto& d = r.result.dyn;
    return std::to_string(d.streams_admitted) + "/" +
           std::to_string(d.streams_admitted + d.streams_rejected);
  }
  if (!r.result.fleet) return std::to_string(r.result.single.per_task.size());
  const auto& fleet = r.result.cluster.fleet;
  return std::to_string(fleet.tasks_assigned) + "/" +
         std::to_string(fleet.tasks_assigned + fleet.tasks_rejected);
}

int device_count(const SuiteRun& r) {
  if (r.result.dynamic) {
    return static_cast<int>(r.result.dyn.fleet.devices.size());
  }
  return r.result.fleet
             ? static_cast<int>(r.result.cluster.fleet.devices.size())
             : 1;
}

/// Dynamic-run columns; "-" for closed-world scenarios so static rows stay
/// visually quiet.
std::string peak_devices_cell(const SuiteRun& r) {
  return r.result.dynamic ? std::to_string(r.result.dyn.peak_devices) : "-";
}
std::string rejected_streams_cell(const SuiteRun& r) {
  return r.result.dynamic ? std::to_string(r.result.dyn.streams_rejected)
                          : "-";
}
std::string shed_jobs_cell(const SuiteRun& r) {
  return r.result.dynamic ? std::to_string(r.result.dyn.jobs_shed) : "-";
}
std::string faults_cell(const SuiteRun& r) {
  return r.result.dynamic ? std::to_string(r.result.dyn.devices_failed)
                          : "-";
}
std::string failovers_cell(const SuiteRun& r) {
  return r.result.dynamic ? std::to_string(r.result.dyn.failovers) : "-";
}
std::string lost_cell(const SuiteRun& r) {
  return r.result.dynamic ? std::to_string(r.result.dyn.streams_lost) : "-";
}
/// OOM rejections exist on both fleet paths (open- and closed-world); only
/// single-device rows show "-".
std::string oom_cell(const SuiteRun& r) {
  if (r.result.dynamic) {
    return std::to_string(r.result.dyn.streams_oom_rejected);
  }
  if (r.result.fleet) {
    return std::to_string(r.result.cluster.fleet.tasks_oom_rejected);
  }
  return "-";
}

}  // namespace

void print_suite(const std::vector<SuiteRun>& runs, std::ostream& out) {
  metrics::Table t({"scenario", "tasks", "devs", "FPS", "on-time", "DMR",
                    "p99 (ms)", "migr", "peak devs", "rej streams", "oom",
                    "shed", "faults", "failovers", "lost", "status"});
  for (const auto& r : runs) {
    if (!r.ok) {
      t.add_row({r.scenario, "-", "-", "-", "-", "-", "-", "-", "-", "-",
                 "-", "-", "-", "-", "-", "FAILED"});
      continue;
    }
    const auto& a = r.result.aggregate();
    t.add_row({r.scenario, placed_cell(r), std::to_string(device_count(r)),
               metrics::Table::fmt(a.fps, 1),
               metrics::Table::fmt(a.fps_on_time, 1),
               metrics::Table::pct(a.dmr),
               metrics::Table::fmt(a.p99_latency_ms, 2),
               std::to_string(r.result.migrations()), peak_devices_cell(r),
               rejected_streams_cell(r), oom_cell(r), shed_jobs_cell(r),
               faults_cell(r), failovers_cell(r), lost_cell(r), "ok"});
  }
  t.print(out);
  for (const auto& r : runs) {
    if (!r.ok) out << "\n" << r.file << ": " << r.error << "\n";
  }
}

void write_suite_csv(const std::vector<SuiteRun>& runs, std::ostream& out) {
  common::CsvWriter csv(out);
  csv.header({"scenario", "file", "status", "tasks", "devices", "fps",
              "fps_on_time", "dmr", "p50_ms", "p99_ms", "releases",
              "migrations", "peak_devices", "rejected_streams",
              "oom_streams", "shed_jobs", "devices_failed", "failovers",
              "streams_lost", "unavailability_s", "field_path", "error"});
  for (const auto& r : runs) {
    if (!r.ok) {
      csv.row({r.scenario, r.file, "failed", "", "", "", "", "", "", "", "",
               "", "", "", "", "", "", "", "", "", r.field_path, r.error});
      continue;
    }
    const auto& a = r.result.aggregate();
    const bool dyn = r.result.dynamic;
    const std::string oom = oom_cell(r);
    csv.row({r.scenario, r.file, "ok", placed_cell(r),
             std::to_string(device_count(r)),
             common::CsvWriter::num(a.fps, 2),
             common::CsvWriter::num(a.fps_on_time, 2),
             common::CsvWriter::num(a.dmr, 4),
             common::CsvWriter::num(a.p50_latency_ms, 3),
             common::CsvWriter::num(a.p99_latency_ms, 3),
             std::to_string(r.result.releases()),
             std::to_string(r.result.migrations()),
             dyn ? std::to_string(r.result.dyn.peak_devices) : "",
             dyn ? std::to_string(r.result.dyn.streams_rejected) : "",
             oom == "-" ? "" : oom,
             dyn ? std::to_string(r.result.dyn.jobs_shed) : "",
             dyn ? std::to_string(r.result.dyn.devices_failed) : "",
             dyn ? std::to_string(r.result.dyn.failovers) : "",
             dyn ? std::to_string(r.result.dyn.streams_lost) : "",
             dyn ? common::CsvWriter::num(r.result.dyn.unavailability_s, 3)
                 : "",
             "", ""});
  }
}

void write_suite_json(const std::vector<SuiteRun>& runs, std::ostream& out) {
  common::JsonWriter w(out);
  w.begin_object();
  w.field("suite_size", static_cast<std::int64_t>(runs.size()));
  w.field("all_ok", suite_ok(runs));
  w.key("scenarios").begin_array();
  for (const auto& r : runs) {
    w.begin_object();
    w.field("scenario", r.scenario);
    w.field("file", r.file);
    w.field("ok", r.ok);
    if (!r.description.empty()) w.field("description", r.description);
    if (!r.ok) {
      w.field("error", r.error);
      if (!r.field_path.empty()) w.field("field_path", r.field_path);
      w.end_object();
      continue;
    }
    const auto& a = r.result.aggregate();
    w.field("fleet", r.result.fleet);
    w.field("dynamic", r.result.dynamic);
    w.field("devices", static_cast<std::int64_t>(device_count(r)));
    if (r.result.dynamic) {
      const auto& d = r.result.dyn;
      w.field("streams_admitted", d.streams_admitted);
      w.field("streams_retired", d.streams_retired);
      w.field("streams_rejected", d.streams_rejected);
      w.field("streams_oom_rejected", d.streams_oom_rejected);
      w.field("jobs_shed", d.jobs_shed);
      w.field("peak_devices", static_cast<std::int64_t>(d.peak_devices));
      w.field("scale_ups", static_cast<std::int64_t>(d.scale_ups));
      w.field("scale_downs", static_cast<std::int64_t>(d.scale_downs));
      w.field("devices_failed", d.devices_failed);
      w.field("failovers", d.failovers);
      w.field("streams_lost", d.streams_lost);
      w.field("jobs_faulted", d.jobs_faulted);
      w.field("unavailability_s", d.unavailability_s);
      w.field("recovery_p99_s", d.recovery_p99_s);
    } else if (r.result.fleet) {
      w.field("tasks_placed",
              static_cast<std::int64_t>(r.result.cluster.fleet.tasks_assigned));
      w.field("tasks_rejected",
              static_cast<std::int64_t>(r.result.cluster.fleet.tasks_rejected));
      w.field("tasks_oom_rejected",
              static_cast<std::int64_t>(
                  r.result.cluster.fleet.tasks_oom_rejected));
    } else {
      w.field("tasks",
              static_cast<std::int64_t>(r.result.single.per_task.size()));
    }
    w.field("fps", a.fps);
    w.field("fps_on_time", a.fps_on_time);
    w.field("dmr", a.dmr);
    w.field("p50_latency_ms", a.p50_latency_ms);
    w.field("p99_latency_ms", a.p99_latency_ms);
    w.field("releases", r.result.releases());
    w.field("migrations", r.result.migrations());
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << "\n";
}

}  // namespace sgprs::workload
