#include "workload/spec.hpp"

#include <cmath>
#include <filesystem>
#include <limits>
#include <map>
#include <memory>

#include "cluster/cluster.hpp"
#include "cluster/placement.hpp"
#include "common/check.hpp"
#include "common/rng.hpp"
#include "dnn/builders.hpp"
#include "dnn/profiler.hpp"
#include "fleet/runtime.hpp"
#include "obs/instruments.hpp"
#include "trace/trace.hpp"
#include "workload/spec_util.hpp"
#include "workload/taskset.hpp"

namespace sgprs::workload {

namespace {

using common::JsonValue;
using namespace specdet;

rt::PriorityPolicy parse_priority_policy(const std::string& s,
                                         const std::string& path) {
  if (s == "last_stage_high") return rt::PriorityPolicy::kLastStageHigh;
  if (s == "all_low") return rt::PriorityPolicy::kAllLow;
  if (s == "all_high") return rt::PriorityPolicy::kAllHigh;
  bad(path, "unknown priority policy \"" + s +
                "\" (want last_stage_high|all_low|all_high)");
}

rt::ArrivalModel parse_arrival_model(const std::string& s,
                                     const std::string& path) {
  if (s == "periodic") return rt::ArrivalModel::kPeriodic;
  if (s == "sporadic") return rt::ArrivalModel::kSporadic;
  bad(path, "unknown arrival model \"" + s + "\" (want periodic|sporadic)");
}

void parse_pool(const JsonValue& v, ScenarioConfig& cfg,
                const std::string& path) {
  require_object(v, path);
  check_keys(v, {"contexts", "oversubscription", "context_sms"}, path);
  cfg.num_contexts = int_or(v, "contexts", cfg.num_contexts, path);
  cfg.oversubscription =
      num_or(v, "oversubscription", cfg.oversubscription, path);
  if (const JsonValue* sms = v.find("context_sms")) {
    const auto items = get_field("context_sms", path,
                                 [&] { return sms->items(); });
    for (const auto& item : items) {
      cfg.context_sms.push_back(get_field(
          "context_sms", path,
          [&] { return static_cast<int>(item.as_int()); }));
    }
  }
}

void parse_sim(const JsonValue& v, ScenarioConfig& cfg,
               const std::string& path) {
  require_object(v, path);
  check_keys(v, {"duration_s", "warmup_s", "seed", "jitter_phases", "shards"},
             path);
  cfg.duration = common::SimTime::from_sec(
      num_or(v, "duration_s", cfg.duration.to_sec(), path));
  cfg.warmup = common::SimTime::from_sec(
      num_or(v, "warmup_s", cfg.warmup.to_sec(), path));
  cfg.seed = seed_or(v, "seed", cfg.seed, path);
  cfg.jitter_phases = bool_or(v, "jitter_phases", cfg.jitter_phases, path);
  cfg.shards = int_or(v, "shards", cfg.shards, path);
}

void parse_sgprs(const JsonValue& v, ScenarioConfig& cfg,
                 const std::string& path) {
  require_object(v, path);
  check_keys(v,
             {"medium_boost", "abort_hopeless", "max_in_flight",
              "high_streams_steal", "queue_order"},
             path);
  cfg.sgprs.medium_boost =
      bool_or(v, "medium_boost", cfg.sgprs.medium_boost, path);
  cfg.sgprs.abort_hopeless =
      bool_or(v, "abort_hopeless", cfg.sgprs.abort_hopeless, path);
  cfg.sgprs.max_in_flight_per_task =
      int_or(v, "max_in_flight", cfg.sgprs.max_in_flight_per_task, path);
  cfg.sgprs.high_streams_steal =
      bool_or(v, "high_streams_steal", cfg.sgprs.high_streams_steal, path);
  const std::string order = str_or(v, "queue_order", "edf", path);
  if (order == "edf") {
    cfg.sgprs.queue_order = rt::QueueOrder::kEdf;
  } else if (order == "fifo") {
    cfg.sgprs.queue_order = rt::QueueOrder::kFifo;
  } else {
    bad(path + ".queue_order",
        "unknown order \"" + order + "\" (want edf|fifo)");
  }
}

void parse_naive(const JsonValue& v, ScenarioConfig& cfg,
                 const std::string& path) {
  require_object(v, path);
  check_keys(v, {"max_in_flight", "host_sync_gap_ms"}, path);
  cfg.naive.max_in_flight_per_task =
      int_or(v, "max_in_flight", cfg.naive.max_in_flight_per_task, path);
  cfg.naive.host_sync_gap = common::SimTime::from_ms(
      num_or(v, "host_sync_gap_ms", cfg.naive.host_sync_gap.to_ms(), path));
}

void parse_fleet(const JsonValue& v, ScenarioSpec& spec,
                 const std::string& path) {
  require_object(v, path);
  check_keys(v, {"devices", "placement", "admission_margin",
                 "occupancy_threshold", "device_mem_mb"},
             path);
  spec.fleet_mode = true;
  if (const JsonValue* devices = v.find("devices")) {
    if (devices->is_number()) {
      const int n = get_field("devices", path, [&] {
        return static_cast<int>(devices->as_int());
      });
      if (n < 1) bad(path + ".devices", "device count must be >= 1");
      spec.base.num_devices = n;
    } else if (devices->is_array()) {
      for (const auto& item : devices->items()) {
        const std::string name = get_field("devices", path,
                                           [&] { return item.as_string(); });
        const auto dev = gpu::device_by_name(name);
        if (!dev) {
          bad(path + ".devices", "unknown device \"" + name + "\" (want " +
                                     gpu::device_names() + ")");
        }
        spec.base.fleet.push_back(*dev);
      }
      if (spec.base.fleet.empty()) {
        bad(path + ".devices", "device list must not be empty");
      }
      spec.base.num_devices = static_cast<int>(spec.base.fleet.size());
    } else {
      bad(path + ".devices",
          std::string("expected a count or an array of device names, got ") +
              devices->type_name());
    }
  }
  const std::string placement =
      str_or(v, "placement", cluster::to_string(spec.base.placement), path);
  if (const auto policy = cluster::parse_placement_policy(placement)) {
    spec.base.placement = *policy;
  } else {
    bad(path + ".placement", "unknown policy \"" + placement + "\" (want " +
                                 cluster::placement_policy_names() + ")");
  }
  spec.base.admission_margin =
      num_or(v, "admission_margin", spec.base.admission_margin, path);
  spec.base.occupancy_threshold =
      num_or(v, "occupancy_threshold", spec.base.occupancy_threshold, path);
  spec.base.device_mem_mb =
      num_or(v, "device_mem_mb", spec.base.device_mem_mb, path);
}

TaskEntrySpec parse_task_entry(const JsonValue& v, const std::string& path) {
  require_object(v, path);
  check_keys(v,
             {"name", "count", "network", "fps", "stages", "deadline_ms",
              "phase_ms", "priority", "arrival", "min_separation_ms",
              "max_separation_ms", "tier", "mem_mb", "warps"},
             path);
  TaskEntrySpec e;
  e.name = str_or(v, "name", e.name, path);
  e.count = int_or(v, "count", e.count, path);
  e.network = str_or(v, "network", e.network, path);
  e.fps = num_or(v, "fps", e.fps, path);
  e.num_stages = int_or(v, "stages", e.num_stages, path);
  e.deadline_ms = num_or(v, "deadline_ms", e.deadline_ms, path);
  e.phase_ms = num_or(v, "phase_ms", e.phase_ms, path);
  e.priority_policy = parse_priority_policy(
      str_or(v, "priority", "last_stage_high", path), path + ".priority");
  e.arrival = parse_arrival_model(str_or(v, "arrival", "periodic", path),
                                  path + ".arrival");
  e.min_separation_ms =
      num_or(v, "min_separation_ms", e.min_separation_ms, path);
  e.max_separation_ms =
      num_or(v, "max_separation_ms", e.max_separation_ms, path);
  e.tier = int_or(v, "tier", e.tier, path);
  e.mem_mb = num_or(v, "mem_mb", e.mem_mb, path);
  if (const JsonValue* w = v.find("warps")) {
    e.warps = get_field("warps", path, [&] { return w->as_int(); });
  }
  // For sporadic tasks fps is only a shorthand for min_separation =
  // 1000/fps; stating both invites silent disagreement, so reject it.
  if (e.arrival == rt::ArrivalModel::kSporadic && v.find("fps") &&
      v.find("min_separation_ms")) {
    bad(path, "sporadic tasks take either fps or min_separation_ms, not "
              "both (min_separation defaults to 1000/fps)");
  }
  return e;
}

GeneratorSpec parse_generator(const JsonValue& v, const std::string& path) {
  require_object(v, path);
  check_keys(v,
             {"count", "total_utilization", "stages", "min_fps", "max_fps",
              "networks", "seed"},
             path);
  GeneratorSpec g;
  g.count = int_or(v, "count", g.count, path);
  g.total_utilization =
      num_or(v, "total_utilization", g.total_utilization, path);
  g.num_stages = int_or(v, "stages", g.num_stages, path);
  g.min_fps = num_or(v, "min_fps", g.min_fps, path);
  g.max_fps = num_or(v, "max_fps", g.max_fps, path);
  if (const JsonValue* networks = v.find("networks")) {
    const auto items = get_field("networks", path,
                                 [&] { return networks->items(); });
    for (const auto& item : items) {
      g.networks.push_back(get_field("networks", path,
                                     [&] { return item.as_string(); }));
    }
  }
  g.seed = seed_or(v, "seed", g.seed, path);
  return g;
}

void check_network_known(const std::string& network, const std::string& path) {
  if (!dnn::network_builder_by_name(network)) {
    bad(path, "unknown network \"" + network + "\" (want " +
                  dnn::network_names() + ")");
  }
}

}  // namespace

ScenarioSpec parse_scenario_spec(const common::JsonValue& root,
                                 const std::string& default_name,
                                 bool skip_experiment_section) {
  const std::string path = "spec";
  require_object(root, path);
  check_keys(root,
             {"name", "description", "scheduler", "device", "pool", "sim",
              "sgprs", "naive", "tasks", "generator", "fleet", "experiment",
              "timeline", "fleet_policy", "faults"},
             path);
  if (!skip_experiment_section && root.find("experiment")) {
    bad(path + ".experiment",
        "this is an experiment spec — run it with --experiment (or "
        "load_experiment_spec), not --scenario");
  }

  ScenarioSpec spec;
  spec.name = str_or(root, "name", default_name, path);
  spec.description = str_or(root, "description", "", path);

  const std::string sched =
      str_or(root, "scheduler", rt::to_string(spec.base.scheduler), path);
  if (const auto kind = rt::parse_scheduler_kind(sched)) {
    spec.base.scheduler = *kind;
  } else {
    bad(path + ".scheduler", "unknown scheduler \"" + sched + "\" (want " +
                                 rt::scheduler_kind_names() + ")");
  }

  if (const JsonValue* device = root.find("device")) {
    const std::string name = get_field("device", path,
                                       [&] { return device->as_string(); });
    if (const auto dev = gpu::device_by_name(name)) {
      spec.base.device = *dev;
    } else {
      bad(path + ".device", "unknown device \"" + name + "\" (want " +
                                gpu::device_names() + ")");
    }
  }

  if (const JsonValue* pool = root.find("pool")) {
    parse_pool(*pool, spec.base, path + ".pool");
  }
  if (const JsonValue* sim = root.find("sim")) {
    parse_sim(*sim, spec.base, path + ".sim");
  }
  if (const JsonValue* sgprs = root.find("sgprs")) {
    parse_sgprs(*sgprs, spec.base, path + ".sgprs");
  }
  if (const JsonValue* naive = root.find("naive")) {
    parse_naive(*naive, spec.base, path + ".naive");
  }
  if (const JsonValue* fleet = root.find("fleet")) {
    parse_fleet(*fleet, spec, path + ".fleet");
  }

  if (const JsonValue* tasks = root.find("tasks")) {
    const auto& items = get_field("tasks", path,
                                  [&] { return tasks->items(); });
    for (std::size_t i = 0; i < items.size(); ++i) {
      spec.tasks.push_back(parse_task_entry(
          items[i], path + ".tasks[" + std::to_string(i) + "]"));
    }
  }
  if (const JsonValue* generator = root.find("generator")) {
    spec.generator = parse_generator(*generator, path + ".generator");
  }
  if (const JsonValue* timeline = root.find("timeline")) {
    spec.timeline = fleet::parse_timeline(*timeline, path + ".timeline");
  }
  if (const JsonValue* policy = root.find("fleet_policy")) {
    spec.fleet_policy =
        fleet::parse_fleet_policy(*policy, path + ".fleet_policy");
  }
  if (const JsonValue* faults = root.find("faults")) {
    spec.faults = fleet::parse_fault_spec(*faults, path + ".faults");
  }
  return spec;
}

ScenarioSpec load_scenario_spec(const std::string& path) {
  // File stem ("scenarios/foo.json" -> "foo") names anonymous specs.
  const std::string stem = std::filesystem::path(path).stem().string();
  const common::JsonValue root = common::parse_json_file(path);
  if (root.is_object() && root.find("sgprs_trace")) {
    throw SpecError(
        "spec: \"" + path + "\" is a trace data file, not a scenario — "
        "replay it with --trace, or reference it from a timeline "
        "{\"trace\": ...}");
  }
  ScenarioSpec spec = parse_scenario_spec(root, stem);
  resolve_spec_trace(spec, path);
  validate(spec);
  return spec;
}

void resolve_spec_trace(ScenarioSpec& spec, const std::string& spec_path) {
  if (!spec.timeline || spec.timeline->trace_path.empty() ||
      spec.timeline->trace) {
    return;
  }
  std::filesystem::path p(spec.timeline->trace_path);
  if (p.is_relative() && !spec_path.empty()) {
    p = std::filesystem::path(spec_path).parent_path() / p;
  }
  spec.timeline->trace =
      std::make_shared<const trace::Trace>(trace::load_trace(p.string()));
}

void validate(const ScenarioSpec& spec) {
  // Sharding parallelizes the fleet runtime's epoch loop; the closed-world
  // paths are single-calendar by construction, so a shard count on one is
  // a spec mistake, not a silent no-op.
  if (spec.base.shards > 1 && !spec.dynamic()) {
    throw SpecError("spec.sim.shards",
                    "shards > 1 requires a dynamic spec (a \"timeline\" or "
                    "\"fleet_policy\" section routes the run through the "
                    "sharded fleet runtime)");
  }
  if (spec.generator && !spec.tasks.empty()) {
    throw SpecError("spec: \"tasks\" and \"generator\" are mutually "
                    "exclusive — pick one");
  }
  // A timeline with templates — or a trace, which carries its own template
  // set — can populate the run entirely through churn, so dynamic specs may
  // start with an empty world.
  const bool churn_only =
      spec.timeline && (!spec.timeline->templates.empty() ||
                        spec.timeline->trace != nullptr);
  if (!spec.generator && spec.tasks.empty() && !churn_only) {
    throw SpecError("spec: needs a \"tasks\" array, a \"generator\", or a "
                    "\"timeline\" with templates");
  }
  if (spec.timeline && !spec.timeline->trace_path.empty() &&
      !spec.timeline->trace) {
    throw SpecError("spec.timeline.trace",
                    "trace \"" + spec.timeline->trace_path +
                        "\" is not attached — load the spec through "
                        "load_scenario_spec, or call resolve_spec_trace");
  }

  for (std::size_t i = 0; i < spec.tasks.size(); ++i) {
    const auto& e = spec.tasks[i];
    const std::string path = "spec.tasks[" + std::to_string(i) + "]";
    if (e.count < 1) bad(path + ".count", "must be >= 1");
    if (e.fps <= 0.0) bad(path + ".fps", "must be > 0");
    if (e.num_stages < 1) bad(path + ".stages", "must be >= 1");
    if (e.deadline_ms < 0.0) bad(path + ".deadline_ms", "must be >= 0");
    check_network_known(e.network, path + ".network");
    if (e.arrival == rt::ArrivalModel::kSporadic) {
      if (e.min_separation_ms < 0.0 || e.max_separation_ms < 0.0) {
        bad(path, "separations must be >= 0");
      }
      const double min_ms = e.min_separation_ms > 0.0 ? e.min_separation_ms
                                                      : 1000.0 / e.fps;
      if (e.max_separation_ms > 0.0 && e.max_separation_ms < min_ms) {
        bad(path + ".max_separation_ms",
            "must be >= the (possibly fps-derived) min separation");
      }
    } else if (e.min_separation_ms != 0.0 || e.max_separation_ms != 0.0) {
      bad(path, "separations only apply to arrival=sporadic");
    }
    if (e.tier < 0) bad(path + ".tier", "must be >= 0");
    if (e.mem_mb < 0.0 && e.mem_mb != -1.0) {
      bad(path + ".mem_mb", "must be >= 0 (or omitted to derive from the "
                            "network)");
    }
    if (e.warps < -1) {
      bad(path + ".warps", "must be >= 0 (or omitted to derive from the "
                           "network)");
    }
  }

  if (spec.timeline) {
    fleet::validate_timeline(*spec.timeline, "spec.timeline");
  }
  if (spec.fleet_policy) {
    fleet::validate_fleet_policy(*spec.fleet_policy, "spec.fleet_policy");
  }
  if (spec.faults) {
    fleet::validate_fault_spec(*spec.faults, "spec.faults");
  }

  if (spec.generator) {
    const auto& g = *spec.generator;
    const std::string path = "spec.generator";
    if (g.count < 1) bad(path + ".count", "must be >= 1");
    if (g.total_utilization <= 0.0) {
      bad(path + ".total_utilization", "must be > 0");
    }
    if (g.num_stages < 1) bad(path + ".stages", "must be >= 1");
    if (g.min_fps <= 0.0 || g.max_fps < g.min_fps) {
      bad(path, "needs 0 < min_fps <= max_fps");
    }
    for (const auto& n : g.networks) {
      check_network_known(n, path + ".networks");
    }
  }

  // Base-config invariants (pool shape, sim window, fleet, admission) are
  // centralized in workload::validate; surface them as spec errors.
  try {
    workload::validate(lower(spec));
  } catch (const common::CheckError& e) {
    throw SpecError(std::string("spec: ") + e.what());
  }
}

bool is_simple_spec(const ScenarioSpec& spec) {
  if (spec.dynamic()) return false;
  if (spec.generator || spec.tasks.size() != 1) return false;
  const auto& e = spec.tasks.front();
  return e.arrival == rt::ArrivalModel::kPeriodic && e.phase_ms < 0.0 &&
         e.deadline_ms == 0.0 && e.name == "task";
}

ScenarioConfig lower(const ScenarioSpec& spec) {
  ScenarioConfig cfg = spec.base;
  int total = 0;
  if (spec.generator) {
    total = spec.generator->count;
  } else {
    for (const auto& e : spec.tasks) total += e.count;
  }
  cfg.num_tasks = total > 0 ? total : 1;
  if (is_simple_spec(spec)) {
    const auto& e = spec.tasks.front();
    cfg.fps = e.fps;
    cfg.num_stages = e.num_stages;
    cfg.priority_policy = e.priority_policy;
    cfg.network_builder = dnn::network_builder_by_name(e.network);
  }
  return cfg;
}

namespace {

/// The general task-building path behind task_builder_for / run_spec.
/// `generator_seed` substitutes for spec.generator->seed so replication
/// runs can re-seed without cloning the spec.
std::vector<rt::Task> build_spec_tasks(const ScenarioSpec& spec,
                                       std::uint64_t generator_seed,
                                       const ScenarioConfig& cfg,
                                       const std::vector<int>& pool_sizes) {
  dnn::Profiler profiler(cfg.device, gpu::SpeedupModel::rtx2080ti(),
                         dnn::CostModel::calibrated());

  if (spec.generator) {
    const auto& g = *spec.generator;
    RandomTaskSetConfig rcfg;
    rcfg.count = g.count;
    rcfg.total_utilization = g.total_utilization;
    rcfg.num_stages = g.num_stages;
    rcfg.min_fps = g.min_fps;
    rcfg.max_fps = g.max_fps;
    rcfg.seed = generator_seed;
    for (const auto& name : g.networks) {
      rcfg.network_choices.push_back(dnn::network_builder_by_name(name));
    }
    return build_random_taskset(rcfg, profiler, pool_sizes);
  }

  // Explicit entries: build each network once, clone per replica, draw
  // phases from one seeded rng in task order (mirrors the identical-task
  // builder's consumption pattern).
  common::Rng rng(cfg.seed);
  std::map<std::string, std::shared_ptr<const dnn::Network>> networks;
  std::vector<rt::Task> tasks;
  int id = 0;
  for (const auto& e : spec.tasks) {
    auto it = networks.find(e.network);
    if (it == networks.end()) {
      it = networks
               .emplace(e.network,
                        std::make_shared<const dnn::Network>(
                            dnn::network_builder_by_name(e.network)()))
               .first;
    }
    const double min_sep_ms = e.min_separation_ms > 0.0
                                  ? e.min_separation_ms
                                  : 1000.0 / e.fps;
    rt::TaskConfig tc;
    // Sporadic tasks are built at their worst-case rate so period ==
    // min_separation and utilization/admission math stays conservative.
    tc.fps = e.arrival == rt::ArrivalModel::kSporadic ? 1000.0 / min_sep_ms
                                                      : e.fps;
    tc.num_stages = e.num_stages;
    tc.priority_policy = e.priority_policy;
    if (e.deadline_ms > 0.0) {
      tc.deadline = common::SimTime::from_ms(e.deadline_ms);
    }
    for (int i = 0; i < e.count; ++i) {
      rt::Task t = rt::build_task(id, it->second, tc, profiler, pool_sizes);
      t.name = e.name + std::to_string(id);
      if (e.mem_mb >= 0.0) {
        t.mem_bytes =
            static_cast<std::int64_t>(std::llround(e.mem_mb * 1048576.0));
      }
      if (e.warps >= 0) t.warps = e.warps;
      if (e.phase_ms >= 0.0) {
        t.phase = common::SimTime::from_ms(e.phase_ms);
      } else if (cfg.jitter_phases) {
        t.phase =
            common::SimTime::from_sec(rng.next_double() * t.period.to_sec());
      }
      if (e.arrival == rt::ArrivalModel::kSporadic) {
        t.arrival = rt::ArrivalModel::kSporadic;
        t.min_separation = common::SimTime::from_ms(min_sep_ms);
        t.max_separation = common::SimTime::from_ms(
            e.max_separation_ms > 0.0 ? e.max_separation_ms
                                      : 1.5 * min_sep_ms);
      }
      tasks.push_back(std::move(t));
      ++id;
    }
  }
  return tasks;
}

/// Static-path capture (--record-trace on a closed-world spec): the run's
/// workload is its initial task set, so the trace is one template plus one
/// t=0 admission per task. Approximate by design — replaying it goes
/// through the fleet runtime, whose report format differs from the
/// closed-world one — but it turns any static scenario into an open-world
/// workload artifact (and a seed for trace_scale).
void capture_static_run(const ScenarioSpec& spec,
                        std::uint64_t generator_seed,
                        const ScenarioConfig& cfg,
                        trace::TraceRecorder& capture) {
  const std::vector<int> pool_sizes = cluster::pool_sm_sizes_for(
      cfg.device, pool_config_for(cfg), cfg.sharing);
  const std::vector<rt::Task> tasks =
      build_spec_tasks(spec, generator_seed, cfg, pool_sizes);

  std::vector<fleet::StreamTemplate> templates;
  templates.reserve(tasks.size());
  for (const auto& t : tasks) {
    const TaskEntrySpec* e = task_entry_for(spec, t.id);
    fleet::StreamTemplate st;
    st.name = t.name;
    st.network = t.network->name();
    st.num_stages = static_cast<int>(t.stages.size());
    st.deadline_ms = t.deadline.to_ms();
    st.phase_ms = t.phase.to_ms();
    st.priority_policy =
        e ? e->priority_policy : rt::PriorityPolicy::kLastStageHigh;
    st.tier = e ? e->tier : 0;
    if (e) {
      st.mem_mb = e->mem_mb;
      st.warps = e->warps;
    }
    if (t.arrival == rt::ArrivalModel::kSporadic) {
      st.arrival = rt::ArrivalModel::kSporadic;
      st.fps = 1000.0 / t.min_separation.to_ms();
      st.min_separation_ms = t.min_separation.to_ms();
      st.max_separation_ms = t.max_separation.to_ms();
    } else {
      st.fps = 1000.0 / t.period.to_ms();
    }
    templates.push_back(std::move(st));
  }
  capture.set_templates(std::move(templates));
  for (const auto& t : tasks) {
    capture.record_admit(common::SimTime::zero(), t.name, t.id, -1,
                         "initial");
  }
}

/// Shared run path. The builder captures `spec` by reference — safe
/// because it is only invoked synchronously inside the run_* call below.
SpecResult run_spec_impl(const ScenarioSpec& spec, std::uint64_t sim_seed,
                         std::uint64_t generator_seed,
                         trace::TraceRecorder* capture,
                         const obs::Instruments& instruments) {
  ScenarioConfig cfg = lower(spec);
  cfg.seed = sim_seed;

  SpecResult result;
  result.name = spec.name;
  result.fleet = spec.fleet_mode;
  // Open-world specs (timeline / fleet_policy) run in the fleet runtime;
  // everything else keeps its closed-world path untouched.
  if (spec.dynamic()) {
    result.dynamic = true;
    RunSeeds seeds;
    seeds.sim = sim_seed;
    seeds.generator = generator_seed;
    result.dyn =
        fleet::run_fleet_scenario(spec, seeds, capture, instruments);
    return result;
  }
  // Simple specs run through the default identical-task builder — the
  // exact code path of the hard-coded benches, so results are
  // bit-identical (pinned by spec_test).
  const TaskSetBuilder builder =
      is_simple_spec(spec)
          ? TaskSetBuilder{}
          : TaskSetBuilder{[&spec, generator_seed](
                               const ScenarioConfig& c,
                               const std::vector<int>& pool_sizes) {
              return build_spec_tasks(spec, generator_seed, c, pool_sizes);
            }};
  if (spec.fleet_mode) {
    result.cluster = run_cluster_scenario(cfg, builder);
  } else {
    result.single = run_scenario(cfg, builder);
  }
  if (capture) capture_static_run(spec, generator_seed, cfg, *capture);
  return result;
}

}  // namespace

TaskSetBuilder task_builder_for(const ScenarioSpec& spec) {
  return task_builder_for(spec,
                          spec.generator ? spec.generator->seed : 0);
}

TaskSetBuilder task_builder_for(const ScenarioSpec& spec,
                                std::uint64_t generator_seed) {
  return [spec, generator_seed](const ScenarioConfig& cfg,
                                const std::vector<int>& pool_sizes) {
    return build_spec_tasks(spec, generator_seed, cfg, pool_sizes);
  };
}

const TaskEntrySpec* task_entry_for(const ScenarioSpec& spec,
                                    int task_index) {
  int next = 0;
  for (const auto& e : spec.tasks) {
    if (task_index < next + e.count) return &e;
    next += e.count;
  }
  return nullptr;  // generator-built, or out of range
}

int task_tier_for(const ScenarioSpec& spec, int task_index) {
  const TaskEntrySpec* e = task_entry_for(spec, task_index);
  return e ? e->tier : 0;
}

SpecResult run_spec(const ScenarioSpec& spec) {
  return run_spec(spec, static_cast<trace::TraceRecorder*>(nullptr));
}

SpecResult run_spec(const ScenarioSpec& spec,
                    trace::TraceRecorder* capture) {
  validate(spec);
  return run_spec_impl(spec, spec.base.seed,
                       spec.generator ? spec.generator->seed : 0, capture,
                       obs::Instruments{});
}

SpecResult run_spec(const ScenarioSpec& spec, const RunSeeds& seeds) {
  return run_spec_impl(spec, seeds.sim, seeds.generator, nullptr,
                       obs::Instruments{});
}

SpecResult run_spec(const ScenarioSpec& spec, const RunSeeds& seeds,
                    trace::TraceRecorder* capture) {
  return run_spec_impl(spec, seeds.sim, seeds.generator, capture,
                       obs::Instruments{});
}

SpecResult run_spec(const ScenarioSpec& spec, const RunSeeds& seeds,
                    trace::TraceRecorder* capture,
                    const obs::Instruments& instruments) {
  return run_spec_impl(spec, seeds.sim, seeds.generator, capture,
                       instruments);
}

}  // namespace sgprs::workload
