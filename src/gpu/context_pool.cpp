#include "gpu/context_pool.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace sgprs::gpu {

int ContextPool::sms_per_context(int device_total_sms, int num_contexts,
                                 double oversubscription) {
  SGPRS_CHECK(num_contexts > 0);
  SGPRS_CHECK(oversubscription > 0.0);
  const double raw = static_cast<double>(device_total_sms) /
                     static_cast<double>(num_contexts) * oversubscription;
  const int sms = static_cast<int>(std::lround(raw));
  return std::clamp(sms, 1, device_total_sms);
}

ContextPool::ContextPool(Executor& exec, const ContextPoolConfig& cfg) {
  SGPRS_CHECK(cfg.high_streams_per_context >= 0);
  SGPRS_CHECK(cfg.low_streams_per_context >= 0);
  SGPRS_CHECK(cfg.high_streams_per_context + cfg.low_streams_per_context > 0);
  std::vector<int> sizes = cfg.explicit_sm_limits;
  if (sizes.empty()) {
    SGPRS_CHECK(cfg.num_contexts > 0);
    sizes.assign(cfg.num_contexts,
                 sms_per_context(exec.device().total_sms, cfg.num_contexts,
                                 cfg.oversubscription));
  }
  for (int sms : sizes) {
    PooledContext pc;
    pc.ctx = exec.create_context(sms);
    pc.sm_limit = sms;
    for (int h = 0; h < cfg.high_streams_per_context; ++h) {
      pc.high_streams.push_back(
          exec.create_stream(pc.ctx, StreamPriority::kHigh));
    }
    for (int l = 0; l < cfg.low_streams_per_context; ++l) {
      pc.low_streams.push_back(
          exec.create_stream(pc.ctx, StreamPriority::kLow));
    }
    contexts_.push_back(std::move(pc));
  }
}

int ContextPool::total_allocated_sms() const {
  int total = 0;
  for (const auto& c : contexts_) total += c.sm_limit;
  return total;
}

}  // namespace sgprs::gpu
