#include "gpu/speedup.hpp"

#include "common/check.hpp"
#include "gpu/calibration.hpp"

namespace sgprs::gpu {

SpeedupModel::SpeedupModel(
    const std::array<double, kOpClassCount>& speedup_at_ref, int reference_sms)
    : reference_sms_(reference_sms) {
  SGPRS_CHECK(reference_sms > 1);
  for (int i = 0; i < kOpClassCount; ++i) {
    const double s = speedup_at_ref[i];
    SGPRS_CHECK_MSG(s >= 1.0 && s <= reference_sms,
                    "speedup at reference must lie in [1, #SMs], got " << s);
    // Solve 1/((1-f) + f/M) = s  =>  f = (1 - 1/s) / (1 - 1/M).
    const double m = static_cast<double>(reference_sms);
    f_[i] = (1.0 - 1.0 / s) / (1.0 - 1.0 / m);
  }
}

SpeedupModel SpeedupModel::rtx2080ti() {
  return SpeedupModel(calibration::kSpeedupAt68, calibration::kReferenceSms);
}

double SpeedupModel::speedup(OpClass op, double sms) const {
  if (sms <= 0.0) return 0.0;
  const double f = f_[static_cast<int>(op)];
  if (sms < 1.0) return sms;  // fractional share of a single SM
  return 1.0 / ((1.0 - f) + f / sms);
}

}  // namespace sgprs::gpu
