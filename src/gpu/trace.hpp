// Observer interface for kernel lifecycle events (tracing / accounting).
//
// The Executor emits submit/start/finish callbacks; metrics::TraceRecorder
// turns them into chrome://tracing JSON, and tests use them to assert on
// exact kernel interleavings without touching executor internals.
#pragma once

#include <cstdint>

#include "common/time.hpp"
#include "gpu/kernel.hpp"

namespace sgprs::gpu {

using common::SimTime;

/// Implemented by trace recorders; all callbacks are invoked from the
/// simulation loop (single-threaded, in simulation-time order).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  /// Kernel begins executing (enters its launch-overhead phase).
  virtual void on_kernel_start(SimTime t, int context, int stream,
                               const KernelDesc& k) = 0;
  /// Kernel finished all work.
  virtual void on_kernel_end(SimTime t, int context, int stream,
                             const KernelDesc& k) = 0;
};

}  // namespace sgprs::gpu
