// Context pool: the pre-created, possibly over-subscribed set of MPS
// contexts that gives SGPRS its "seamless, zero-configuration partition
// switch" (paper Sections I/IV). All contexts are created once, offline;
// at run time a stage can be dispatched to any of them with no
// reconfiguration cost.
#pragma once

#include <vector>

#include "gpu/executor.hpp"

namespace sgprs::gpu {

struct ContextPoolConfig {
  /// Number of contexts (np). The paper evaluates 2 and 3.
  int num_contexts = 2;
  /// Over-subscription level: each context gets
  /// round(total_sms / num_contexts * oversubscription) SMs, so the pool's
  /// summed allocation may exceed the device (the paper's "SGPRS_os").
  double oversubscription = 1.0;
  /// Heterogeneous pool: when non-empty this list of per-context SM limits
  /// overrides num_contexts/oversubscription entirely. The paper's context
  /// pool CP = {cp_1..cp_np} permits per-context sizes; uniform pools are
  /// just the special case its evaluation uses.
  std::vector<int> explicit_sm_limits;
  /// Streams per context (paper Section IV-B3: two high + two low).
  int high_streams_per_context = 2;
  int low_streams_per_context = 2;
};

struct PooledContext {
  ContextId ctx = -1;
  int sm_limit = 0;
  std::vector<StreamId> high_streams;
  std::vector<StreamId> low_streams;
};

class ContextPool {
 public:
  /// Creates all contexts and streams on `exec` per `cfg`.
  ContextPool(Executor& exec, const ContextPoolConfig& cfg);

  const std::vector<PooledContext>& contexts() const { return contexts_; }
  int size() const { return static_cast<int>(contexts_.size()); }
  const PooledContext& at(int i) const { return contexts_.at(i); }

  /// Sum of SM allocations across the pool (> device total when
  /// over-subscribed).
  int total_allocated_sms() const;

  /// SMs per context for a device/pool combination (exposed for tests).
  static int sms_per_context(int device_total_sms, int num_contexts,
                             double oversubscription);

 private:
  std::vector<PooledContext> contexts_;
};

}  // namespace sgprs::gpu
