// Non-linear SM speedup model (paper Section III, Fig. 1).
//
// GPUs do not scale linearly with SMs. We model each op class with an
// Amdahl-style curve s(m) = 1 / ((1-f) + f/m), where f is solved so the
// curve passes through the paper's measured end point at 68 SMs (e.g. conv
// reaches 32x). The curve is exact at m=1 (1x) and m=68 (the reported gain),
// monotone and concave in between — the properties the scheduler's
// partitioning trade-offs depend on.
#pragma once

#include <array>

#include "gpu/op_class.hpp"

namespace sgprs::gpu {

class SpeedupModel {
 public:
  /// Builds a model from per-op speedups measured at `reference_sms`.
  SpeedupModel(const std::array<double, kOpClassCount>& speedup_at_ref,
               int reference_sms);

  /// Model calibrated to the paper's RTX 2080 Ti measurements.
  static SpeedupModel rtx2080ti();

  /// Speedup of `op` when granted `sms` SMs, relative to 1 SM.
  /// Accepts fractional grants (processor sharing); for sms < 1 the model
  /// degrades linearly (a fractional share of one SM).
  double speedup(OpClass op, double sms) const;

  /// The parallel fraction f for an op (exposed for tests/analysis).
  double parallel_fraction(OpClass op) const {
    return f_[static_cast<int>(op)];
  }

  int reference_sms() const { return reference_sms_; }

 private:
  std::array<double, kOpClassCount> f_{};
  int reference_sms_;
};

}  // namespace sgprs::gpu
