// Operation classes whose scaling behaviour the paper measures (Fig. 1).
#pragma once

#include <array>
#include <cstdint>

namespace sgprs::gpu {

/// Kernel operation class. Each class has its own SM-speedup curve and its
/// own per-SM throughput in the cost model.
enum class OpClass : std::uint8_t {
  kConv = 0,
  kMaxPool,
  kAvgPool,
  kBatchNorm,
  kReLU,
  kLinear,
  kAdd,
  kSoftmax,
  kOther,
};

inline constexpr int kOpClassCount = 9;

inline constexpr std::array<const char*, kOpClassCount> kOpClassNames = {
    "conv",  "maxpool", "avgpool", "batchnorm", "relu",
    "linear", "add",    "softmax", "other",
};

inline const char* to_string(OpClass op) {
  return kOpClassNames[static_cast<int>(op)];
}

}  // namespace sgprs::gpu
