#include "gpu/executor.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace sgprs::gpu {
namespace {

// Work below this many 1-SM seconds counts as finished (guards against
// floating-point residue after integer-nanosecond event rounding).
constexpr double kWorkEpsilon = 1e-12;

}  // namespace

Executor::Executor(sim::Engine& engine, DeviceSpec device,
                   SpeedupModel speedup, SharingParams sharing)
    : engine_(engine),
      device_(std::move(device)),
      speedup_(std::move(speedup)),
      sharing_(sharing),
      last_update_(engine.now()) {}

ContextId Executor::create_context(int sm_limit) {
  SGPRS_CHECK_MSG(sm_limit > 0 && sm_limit <= device_.total_sms,
                  "context SM limit must be in [1, total_sms]");
  contexts_.push_back(Context{sm_limit});
  return static_cast<ContextId>(contexts_.size() - 1);
}

StreamId Executor::create_stream(ContextId ctx, StreamPriority priority) {
  SGPRS_CHECK(ctx >= 0 && ctx < context_count());
  Stream s;
  s.ctx = ctx;
  s.priority = priority;
  streams_.push_back(std::move(s));
  return static_cast<StreamId>(streams_.size() - 1);
}

int Executor::context_sm_limit(ContextId c) const {
  SGPRS_CHECK(c >= 0 && c < context_count());
  return contexts_[c].sm_limit;
}

ContextId Executor::stream_context(StreamId s) const {
  SGPRS_CHECK(s >= 0 && s < stream_count());
  return streams_[s].ctx;
}

StreamPriority Executor::stream_priority(StreamId s) const {
  SGPRS_CHECK(s >= 0 && s < stream_count());
  return streams_[s].priority;
}

std::size_t Executor::stream_queue_length(StreamId s) const {
  SGPRS_CHECK(s >= 0 && s < stream_count());
  return streams_[s].queue.size();
}

bool Executor::stream_busy(StreamId s) const {
  SGPRS_CHECK(s >= 0 && s < stream_count());
  return streams_[s].running != nullptr || !streams_[s].queue.empty();
}

int Executor::running_kernel_count() const { return running_count_; }

int Executor::context_running_count(ContextId c) const {
  SGPRS_CHECK(c >= 0 && c < context_count());
  return contexts_[c].running_count;
}

double Executor::busy_sm_seconds() const {
  // Up to date only as of last_update_; good enough for end-of-run stats.
  return busy_sm_seconds_;
}

SimTime Executor::running_remaining(StreamId s) const {
  SGPRS_CHECK(s >= 0 && s < stream_count());
  const auto& run = streams_[s].running;
  if (!run) return SimTime::max();
  const double elapsed = (engine_.now() - last_update_).to_sec();
  double rem_over = std::max(0.0, run->rem_overhead - elapsed);
  double consumed = std::max(0.0, elapsed - run->rem_overhead);
  double rem_work = std::max(0.0, run->rem_work - consumed * run->rate);
  const double rate = run->rate > 0.0 ? run->rate : 1e-9;
  return SimTime::from_sec(rem_over + rem_work / rate);
}

void Executor::enqueue(StreamId stream, KernelDesc kernel,
                       CompletionFn on_done) {
  SGPRS_CHECK(stream >= 0 && stream < stream_count());
  SGPRS_CHECK(kernel.work_sm_seconds >= 0.0);
  SGPRS_CHECK(kernel.overhead_seconds >= 0.0);
  Stream& s = streams_[stream];
  s.queue.push_back(Pending{std::move(kernel), std::move(on_done)});
  if (!s.running) {
    advance_progress();
    start_next(stream);
    reschedule();
  }
}

void Executor::enqueue_batch(StreamId stream, std::vector<KernelDesc> kernels,
                             CompletionFn on_all_done) {
  SGPRS_CHECK_MSG(!kernels.empty(), "enqueue_batch requires >= 1 kernel");
  const std::size_t last = kernels.size() - 1;
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    enqueue(stream, std::move(kernels[i]),
            i == last ? std::move(on_all_done) : CompletionFn{});
  }
}

void Executor::purge_all() {
  // Credit busy-SM time and work completed up to the crash instant, then
  // drop everything in flight on the floor: no callbacks, no trace end
  // events, no work_done_ for the unfinished residue.
  advance_progress();
  for (auto& s : streams_) {
    s.queue.clear();
    if (s.running) {
      s.running.reset();
      --running_count_;
      --contexts_[s.ctx].running_count;
    }
  }
  SGPRS_CHECK(running_count_ == 0);
  if (completion_event_ != sim::kInvalidEvent) {
    engine_.cancel(completion_event_);
    completion_event_ = sim::kInvalidEvent;
  }
  needs_reschedule_ = false;
}

double Executor::priority_weight(StreamPriority p) const {
  return p == StreamPriority::kHigh ? sharing_.high_priority_weight
                                    : sharing_.low_priority_weight;
}

void Executor::advance_progress() {
  const SimTime now = engine_.now();
  const double elapsed = (now - last_update_).to_sec();
  last_update_ = now;
  if (elapsed <= 0.0 || running_count_ == 0) return;
  for (auto& s : streams_) {
    if (!s.running) continue;
    Running& r = *s.running;
    double dt = elapsed;
    if (r.rem_overhead > 0.0) {
      const double t = std::min(dt, r.rem_overhead);
      r.rem_overhead -= t;
      dt -= t;
    }
    if (dt > 0.0) {
      const double done = std::min(r.rem_work, dt * r.rate);
      r.rem_work -= done;
      work_done_ += done;
    }
    busy_sm_seconds_ += elapsed * r.granted_sms;
  }
}

void Executor::start_next(StreamId sid) {
  Stream& s = streams_[sid];
  SGPRS_CHECK(!s.running);
  if (s.queue.empty()) return;
  Pending p = std::move(s.queue.front());
  s.queue.pop_front();
  auto r = std::make_unique<Running>();
  r->desc = std::move(p.desc);
  r->on_done = std::move(p.on_done);
  r->rem_overhead = r->desc.overhead_seconds;
  r->rem_work = r->desc.work_sm_seconds;
  s.running = std::move(r);
  ++running_count_;
  ++contexts_[s.ctx].running_count;
  if (trace_) {
    trace_->on_kernel_start(engine_.now(), s.ctx, sid, s.running->desc);
  }
}

void Executor::reschedule() {
  if (defer_depth_ > 0) {
    needs_reschedule_ = true;
    return;
  }
  // Collect running kernels into share requests.
  std::vector<ShareRequest> reqs;
  std::vector<StreamId> req_stream;
  reqs.reserve(static_cast<std::size_t>(running_count_));
  for (StreamId sid = 0; sid < stream_count(); ++sid) {
    const Stream& s = streams_[sid];
    if (!s.running) continue;
    reqs.push_back(
        ShareRequest{s.ctx, priority_weight(s.priority), s.running->desc.op});
    req_stream.push_back(sid);
  }

  if (completion_event_ != sim::kInvalidEvent) {
    engine_.cancel(completion_event_);
    completion_event_ = sim::kInvalidEvent;
  }
  if (reqs.empty()) return;

  std::vector<int> ctx_sms;
  ctx_sms.reserve(contexts_.size());
  for (const auto& c : contexts_) ctx_sms.push_back(c.sm_limit);

  const auto grants =
      compute_shares(speedup_, device_.total_sms, ctx_sms, reqs, sharing_);

  double min_finish = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    Running& r = *streams_[req_stream[i]].running;
    r.rate = grants[i].rate;
    r.granted_sms = grants[i].sms;
    SGPRS_CHECK(r.rate > 0.0);
    const double finish = r.rem_overhead + r.rem_work / r.rate;
    min_finish = std::min(min_finish, finish);
  }

  // Round the completion up to the next nanosecond so the event never fires
  // before the kernel's exact finish instant.
  auto delta = SimTime::from_ns(
      static_cast<std::int64_t>(std::ceil(min_finish * 1e9)));
  completion_event_ = engine_.schedule_after(
      std::max(delta, SimTime::from_ns(0)), [this] { on_completion_event(); });
}

void Executor::on_completion_event() {
  completion_event_ = sim::kInvalidEvent;
  advance_progress();

  // Collect every kernel that has finished (several can tie).
  std::vector<StreamId> finished;
  for (StreamId sid = 0; sid < stream_count(); ++sid) {
    Stream& s = streams_[sid];
    if (s.running && s.running->rem_overhead <= 0.0 &&
        s.running->rem_work <= kWorkEpsilon) {
      finished.push_back(sid);
    }
  }
  SGPRS_CHECK_MSG(!finished.empty(),
                  "completion event fired with no finished kernel");

  // Retire finished kernels and start successors before firing callbacks so
  // that callbacks observe a consistent executor state.
  std::vector<std::pair<CompletionFn, KernelDesc>> callbacks;
  for (StreamId sid : finished) {
    Stream& s = streams_[sid];
    Running& r = *s.running;
    work_done_ += r.rem_work;  // residue below epsilon
    if (trace_) trace_->on_kernel_end(engine_.now(), s.ctx, sid, r.desc);
    callbacks.emplace_back(std::move(r.on_done), std::move(r.desc));
    s.running.reset();
    --running_count_;
    --contexts_[s.ctx].running_count;
    start_next(sid);
  }

  ++defer_depth_;
  const SimTime now = engine_.now();
  for (auto& [fn, desc] : callbacks) {
    if (fn) fn(now);
  }
  --defer_depth_;
  needs_reschedule_ = false;
  reschedule();
}

}  // namespace sgprs::gpu
