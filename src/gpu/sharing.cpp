#include "gpu/sharing.hpp"

#include <algorithm>
#include <cmath>

#include "common/check.hpp"

namespace sgprs::gpu {

std::vector<ShareGrant> compute_shares(const SpeedupModel& model,
                                       int device_total_sms,
                                       const std::vector<int>& context_sms,
                                       const std::vector<ShareRequest>& reqs,
                                       const SharingParams& params) {
  SGPRS_CHECK(device_total_sms > 0);
  std::vector<ShareGrant> grants(reqs.size());
  if (reqs.empty()) return grants;

  // Per-context total weight of active kernels.
  std::vector<double> ctx_weight(context_sms.size(), 0.0);
  std::vector<bool> ctx_active(context_sms.size(), false);
  for (const auto& r : reqs) {
    SGPRS_CHECK(r.context >= 0 &&
                r.context < static_cast<int>(context_sms.size()));
    SGPRS_CHECK(r.weight > 0.0);
    ctx_weight[r.context] += r.weight;
    ctx_active[r.context] = true;
  }

  // Layer 2: demand = sum of SM allocations of contexts with running work.
  double demand = 0.0;
  int active_contexts = 0;
  for (std::size_t c = 0; c < context_sms.size(); ++c) {
    if (ctx_active[c]) {
      demand += static_cast<double>(context_sms[c]);
      ++active_contexts;
    }
  }
  const double total = static_cast<double>(device_total_sms);
  SGPRS_CHECK(params.contention_exponent > 0.0 &&
              params.contention_exponent <= 1.0);
  const double contention =
      demand > total ? std::pow(total / demand, params.contention_exponent)
                     : 1.0;

  // Layer 3: client-count interference.
  const auto k = static_cast<double>(reqs.size());
  double rate_factor =
      contention / (1.0 + params.interference_gamma * (k - 1.0));

  // Over-subscription thrash across contexts.
  const double oversub = demand / total;
  if (oversub > 1.0 && active_contexts > 1) {
    rate_factor /= 1.0 + params.oversub_thrash_kappa *
                             static_cast<double>(active_contexts - 1) *
                             (oversub - 1.0);
  }

  // Layer 1: weighted space-share inside each context.
  for (std::size_t i = 0; i < reqs.size(); ++i) {
    const auto& r = reqs[i];
    const double share = static_cast<double>(context_sms[r.context]) *
                         r.weight / ctx_weight[r.context];
    grants[i].sms = share;
    grants[i].rate = model.speedup(r.op, share) * rate_factor;
  }
  return grants;
}

}  // namespace sgprs::gpu
