// Calibration constants for the simulated GPU cost model.
//
// These constants are the *only* place where the simulator is fitted to the
// paper's testbed (RTX 2080 Ti + LibTorch ResNet18). Everything else in the
// model is structural. Two fit targets, both from the paper:
//
//  1. Fig. 1 — per-operation speedup at 68 SMs: conv 32x, maxpool 14x,
//     others below 7x, ResNet18 end-to-end about 23x.
//  2. Section V arithmetic — 30 fps tasks with the best SGPRS pivot at
//     23-24 tasks implies an aggregate on-time capacity of roughly
//     700-760 inferences/s, i.e. a full-GPU single-inference latency of
//     about 2.7 ms.
//
// A unit test (tests/gpu/calibration_test.cpp) locks both targets.
#pragma once

#include <array>

#include "gpu/op_class.hpp"

namespace sgprs::gpu::calibration {

/// Reference SM count at which Fig. 1 speedups were reported.
inline constexpr int kReferenceSms = 68;

/// Target speedup at 68 SMs per op class (paper Fig. 1; "other operations
/// failed to exceed 7x").
inline constexpr std::array<double, kOpClassCount> kSpeedupAt68 = {
    32.0,  // conv (best gain reported)
    14.0,  // maxpool (second best)
    6.0,   // avgpool
    6.5,   // batchnorm
    5.0,   // relu
    7.0,   // linear
    4.0,   // add (elementwise residual add)
    3.0,   // softmax
    5.0,   // other
};

/// Effective 1-SM throughput per op class, in GFLOP/s. Deliberately far
/// below the ALU peak: it folds in memory-boundedness and the small
/// per-image work sizes of 224x224 inference (no batching).
inline constexpr std::array<double, kOpClassCount> kGflopsPerSm = {
    62.0,  // conv — dominates runtime, tuned for ~2.8 ms net @ 68 SMs
    10.0,  // maxpool
    7.0,   // avgpool
    15.0,  // batchnorm (elementwise scale+shift, memory bound)
    20.0,  // relu
    38.0,  // linear
    13.0,  // add
    4.0,   // softmax
    13.0,  // other
};

/// Fixed kernel launch overhead (seconds). Does not scale with SMs; this is
/// what caps the benefit of slicing a network into ever more kernels.
inline constexpr double kLaunchOverheadSec = 8.0e-6;

}  // namespace sgprs::gpu::calibration
