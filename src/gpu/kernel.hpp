// Kernel descriptor: the unit of work submitted to a stream.
//
// Work is expressed in SM-seconds (execution time on exactly one SM), so
// the executor derives the duration at any partition size from the
// per-op-class SpeedupModel; launch overhead never scales with SMs.
#pragma once

#include <cstdint>
#include <string>

#include "gpu/op_class.hpp"

namespace sgprs::gpu {

/// A kernel launch. `work_sm_seconds` is the kernel's execution time when
/// run on exactly one SM (so duration at m SMs is work / speedup(op, m)).
/// `overhead_seconds` is the launch overhead, which never scales with SMs.
struct KernelDesc {
  OpClass op = OpClass::kOther;
  double work_sm_seconds = 0.0;
  double overhead_seconds = 0.0;
  /// Opaque caller cookie carried through to trace events (e.g. job id).
  std::uint64_t tag = 0;
  /// Debug label (layer name); not used by the executor itself.
  std::string label;
};

}  // namespace sgprs::gpu
