// Processor-sharing GPU executor (discrete-event).
//
// Owns contexts, streams and running kernels; integrates with sim::Engine.
// Whenever the set of running kernels changes, all progress rates are
// recomputed from the sharing model and the single pending completion event
// is rescheduled. Kernels have two phases: a launch-overhead phase that
// progresses at unit rate regardless of SMs, then a work phase progressing
// at rate speedup(op, granted_sms) * contention factors.
//
// Streams are FIFO: at most one kernel of a stream runs at a time; the rest
// wait in the stream's queue. This mirrors CUDA stream semantics and is what
// the scheduler layers on top of (it submits one *stage* — a kernel batch —
// per stream at a time).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/time.hpp"
#include "gpu/device.hpp"
#include "gpu/kernel.hpp"
#include "gpu/sharing.hpp"
#include "gpu/speedup.hpp"
#include "gpu/trace.hpp"
#include "sim/engine.hpp"

namespace sgprs::gpu {

using common::SimTime;

using ContextId = int;
using StreamId = int;

enum class StreamPriority : std::uint8_t { kHigh = 0, kLow = 1 };

/// Invoked in simulation time when a kernel (or batch) fully completes.
using CompletionFn = std::function<void(SimTime)>;

class Executor {
 public:
  Executor(sim::Engine& engine, DeviceSpec device, SpeedupModel speedup,
           SharingParams sharing);

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Creates a context limited to `sm_limit` SMs. The pool may be
  /// over-subscribed: no check against the device total (that is the point).
  ContextId create_context(int sm_limit);

  /// Creates a stream in `ctx` with the given priority.
  StreamId create_stream(ContextId ctx, StreamPriority priority);

  /// Enqueues one kernel; `on_done` (optional) fires at completion.
  void enqueue(StreamId stream, KernelDesc kernel, CompletionFn on_done);

  /// Enqueues a batch in order; `on_all_done` fires when the last kernel
  /// completes. The batch must be non-empty.
  void enqueue_batch(StreamId stream, std::vector<KernelDesc> kernels,
                     CompletionFn on_all_done);

  /// Device crash: drops every queued and running kernel without firing
  /// completion callbacks or crediting the lost residue to work_done_.
  /// Progress up to now is integrated first, so utilization accounting
  /// stays exact; the pending completion event is cancelled. Contexts and
  /// streams survive (a recovered device reuses them).
  void purge_all();

  // --- Introspection (used by schedulers and tests) ---
  int context_count() const { return static_cast<int>(contexts_.size()); }
  int stream_count() const { return static_cast<int>(streams_.size()); }
  int context_sm_limit(ContextId c) const;
  ContextId stream_context(StreamId s) const;
  StreamPriority stream_priority(StreamId s) const;
  /// Kernels queued behind the running one (running kernel not counted).
  std::size_t stream_queue_length(StreamId s) const;
  bool stream_busy(StreamId s) const;
  /// Number of kernels currently executing device-wide.
  int running_kernel_count() const;
  /// Number of kernels currently executing in a context.
  int context_running_count(ContextId c) const;
  /// Total 1-SM work completed so far (for utilization accounting).
  double total_work_done() const { return work_done_; }
  /// Integral over time of (granted SMs of running kernels), in SM-seconds.
  double busy_sm_seconds() const;
  /// Estimated remaining time of the kernel running on `s` at current rates
  /// (SimTime::max() if the stream is idle). Queued kernels not included.
  SimTime running_remaining(StreamId s) const;

  const DeviceSpec& device() const { return device_; }
  const SpeedupModel& speedup_model() const { return speedup_; }
  const SharingParams& sharing_params() const { return sharing_; }
  sim::Engine& engine() { return engine_; }

  void set_trace_sink(TraceSink* sink) { trace_ = sink; }

 private:
  struct Running {
    KernelDesc desc;
    CompletionFn on_done;
    double rem_overhead = 0.0;  // seconds at unit rate
    double rem_work = 0.0;      // 1-SM seconds
    double rate = 0.0;          // work per second at last reschedule
    double granted_sms = 0.0;
  };

  struct Pending {
    KernelDesc desc;
    CompletionFn on_done;
  };

  struct Stream {
    ContextId ctx;
    StreamPriority priority;
    std::deque<Pending> queue;
    std::unique_ptr<Running> running;  // null when idle
  };

  struct Context {
    int sm_limit;
    int running_count = 0;
  };

  // Consumes elapsed time since the last update against stored rates.
  void advance_progress();
  // Recomputes all shares/rates and schedules the next completion event.
  void reschedule();
  void start_next(StreamId s);
  void on_completion_event();
  double priority_weight(StreamPriority p) const;

  sim::Engine& engine_;
  DeviceSpec device_;
  SpeedupModel speedup_;
  SharingParams sharing_;
  TraceSink* trace_ = nullptr;

  std::vector<Context> contexts_;
  std::vector<Stream> streams_;

  SimTime last_update_ = SimTime::zero();
  sim::EventId completion_event_ = sim::kInvalidEvent;
  double work_done_ = 0.0;
  double busy_sm_seconds_ = 0.0;
  int running_count_ = 0;
  // Re-entrancy guard: completion callbacks may enqueue; defer rescheduling
  // until the outermost mutation finishes.
  int defer_depth_ = 0;
  bool needs_reschedule_ = false;
};

}  // namespace sgprs::gpu
