// Static description of the simulated GPU device.
#pragma once

#include <optional>
#include <string>

namespace sgprs::gpu {

/// Immutable hardware description. The evaluation models an NVIDIA RTX 2080
/// Ti (68 streaming multiprocessors), matching the paper's testbed.
struct DeviceSpec {
  std::string name = "RTX 2080 Ti (simulated)";
  int total_sms = 68;
  /// Maximum concurrent kernels the device will execute (hardware queue
  /// limit; generous, the per-context stream limit binds first).
  int max_concurrent_kernels = 128;
};

inline DeviceSpec rtx2080ti() { return DeviceSpec{}; }

/// A 3090-class device (82 SMs): the second SM count used for
/// heterogeneous fleets in the cluster layer.
inline DeviceSpec rtx3090() {
  DeviceSpec d;
  d.name = "RTX 3090 (simulated)";
  d.total_sms = 82;
  return d;
}

/// Device lookup by short name (CLI `--devices=` lists); nullopt on
/// anything unrecognised.
inline std::optional<DeviceSpec> device_by_name(const std::string& name) {
  if (name == "2080ti" || name == "rtx2080ti") return rtx2080ti();
  if (name == "3090" || name == "rtx3090") return rtx3090();
  return std::nullopt;
}

inline const char* device_names() { return "2080ti|3090"; }

}  // namespace sgprs::gpu
