// Static description of the simulated GPU device.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

namespace sgprs::gpu {

/// Immutable hardware description. The evaluation models an NVIDIA RTX 2080
/// Ti (68 streaming multiprocessors), matching the paper's testbed.
struct DeviceSpec {
  std::string name = "RTX 2080 Ti (simulated)";
  int total_sms = 68;
  /// Maximum concurrent kernels the device will execute (hardware queue
  /// limit; generous, the per-context stream limit binds first).
  int max_concurrent_kernels = 128;
  /// Usable device memory for stream working sets. Placement treats this
  /// as a hard budget: a stream whose footprint does not fit is rejected
  /// as OOM rather than admitted.
  std::int64_t mem_bytes = 11LL << 30;  // 11 GiB (2080 Ti)
  /// Resident-warp capacity per SM. Turing runs 32 warps/SM; Ampere 48.
  /// (The CASE exemplar hardcodes 64; we use per-architecture values.)
  int warps_per_sm = 32;

  /// Total resident-warp capacity of the device.
  std::int64_t total_warps() const {
    return static_cast<std::int64_t>(total_sms) * warps_per_sm;
  }
};

inline DeviceSpec rtx2080ti() { return DeviceSpec{}; }

/// A 3090-class device (82 SMs, 24 GiB): the second SM count used for
/// heterogeneous fleets in the cluster layer.
inline DeviceSpec rtx3090() {
  DeviceSpec d;
  d.name = "RTX 3090 (simulated)";
  d.total_sms = 82;
  d.mem_bytes = 24LL << 30;
  d.warps_per_sm = 48;
  return d;
}

/// Device lookup by short name (CLI `--devices=` lists); nullopt on
/// anything unrecognised.
inline std::optional<DeviceSpec> device_by_name(const std::string& name) {
  if (name == "2080ti" || name == "rtx2080ti") return rtx2080ti();
  if (name == "3090" || name == "rtx3090") return rtx3090();
  return std::nullopt;
}

inline const char* device_names() { return "2080ti|3090"; }

}  // namespace sgprs::gpu
