// Static description of the simulated GPU device.
#pragma once

#include <string>

namespace sgprs::gpu {

/// Immutable hardware description. The evaluation models an NVIDIA RTX 2080
/// Ti (68 streaming multiprocessors), matching the paper's testbed.
struct DeviceSpec {
  std::string name = "RTX 2080 Ti (simulated)";
  int total_sms = 68;
  /// Maximum concurrent kernels the device will execute (hardware queue
  /// limit; generous, the per-context stream limit binds first).
  int max_concurrent_kernels = 128;
};

inline DeviceSpec rtx2080ti() { return DeviceSpec{}; }

}  // namespace sgprs::gpu
