// SM sharing model: how concurrent kernels split the device.
//
// Three layers, mirroring how MPS + stream priorities behave (DESIGN.md §2.1):
//   1. Inside a context, concurrent kernels space-share the context's SM
//      allocation, weighted by stream priority.
//   2. Across contexts, if the summed allocation of *active* contexts
//      exceeds the physical SM count, every kernel's progress rate scales by
//      (total/demand)^beta (over-subscribed MPS time-multiplexes SM
//      residency; beta < 1 because co-resident kernels hide each other's
//      memory latency, so multiplexing is better than proportional — this
//      is precisely why over-subscription pays off on real GPUs).
//   3. Many concurrent clients thrash shared resources (L2, DRAM, the MPS
//      scheduler): a mild 1/(1 + gamma*(K-1)) factor on all rates.
#pragma once

#include <vector>

#include "gpu/op_class.hpp"
#include "gpu/speedup.hpp"

namespace sgprs::gpu {

struct SharingParams {
  /// Relative SM share of a kernel launched on a high-priority stream vs a
  /// low-priority stream inside the same context.
  double high_priority_weight = 2.0;
  double low_priority_weight = 1.0;
  /// Exponent on the (total/demand) over-subscription factor (layer 2).
  /// 1.0 = strictly proportional time-slicing; < 1.0 credits latency hiding
  /// between co-resident kernels. Calibrated against the paper's
  /// over-subscription orderings (Figs. 3a/4a).
  double contention_exponent = 0.50;
  /// Client-count interference coefficient (layer 3 above).
  double interference_gamma = 0.050;
  /// Extra penalty per active context beyond the first when the pool is
  /// over-subscribed; models MPS context-switch thrash. Applied as
  /// 1/(1 + kappa * (active_contexts - 1) * max(0, oversub - 1)).
  double oversub_thrash_kappa = 0.12;
};

/// One concurrently-running kernel, as seen by the allocator.
struct ShareRequest {
  int context = 0;      // context index
  double weight = 1.0;  // priority weight within the context
  OpClass op = OpClass::kOther;
};

struct ShareGrant {
  double sms = 0.0;   // SMs granted (fractional)
  double rate = 0.0;  // progress rate in (1-SM work)/second
};

/// Pure allocation function (separable from the executor for testing).
/// `context_sms[i]` is context i's SM allocation; requests reference
/// contexts by index. Returns one grant per request, in order.
std::vector<ShareGrant> compute_shares(const SpeedupModel& model,
                                       int device_total_sms,
                                       const std::vector<int>& context_sms,
                                       const std::vector<ShareRequest>& reqs,
                                       const SharingParams& params);

}  // namespace sgprs::gpu
