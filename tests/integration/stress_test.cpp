// Stress and property tests: randomized workloads hammering the full
// stack, checking global invariants rather than point values.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.hpp"
#include "dnn/builders.hpp"
#include "rt/runner.hpp"
#include "rt/sgprs_scheduler.hpp"
#include "sim/engine.hpp"
#include "workload/taskset.hpp"

namespace sgprs {
namespace {

using common::SimTime;

// Property: for any random kernel soup, the executor conserves work and
// retires every kernel.
class ExecutorFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExecutorFuzz, WorkConservationUnderRandomLoad) {
  common::Rng rng(GetParam());
  sim::Engine engine;
  gpu::Executor exec(engine, gpu::rtx2080ti(),
                     gpu::SpeedupModel::rtx2080ti(), gpu::SharingParams{});
  // Random pool shape.
  const int n_ctx = static_cast<int>(rng.uniform_int(1, 4));
  std::vector<gpu::StreamId> streams;
  for (int c = 0; c < n_ctx; ++c) {
    const auto ctx =
        exec.create_context(static_cast<int>(rng.uniform_int(4, 68)));
    const int n_streams = static_cast<int>(rng.uniform_int(1, 4));
    for (int s = 0; s < n_streams; ++s) {
      streams.push_back(exec.create_stream(
          ctx, rng.next_double() < 0.5 ? gpu::StreamPriority::kHigh
                                       : gpu::StreamPriority::kLow));
    }
  }
  double submitted = 0.0;
  int completions = 0;
  const int kKernels = 300;
  for (int i = 0; i < kKernels; ++i) {
    gpu::KernelDesc k;
    k.op = static_cast<gpu::OpClass>(rng.uniform_int(0, 8));
    k.work_sm_seconds = rng.uniform(0.0, 0.01);
    k.overhead_seconds = rng.uniform(0.0, 2e-5);
    submitted += k.work_sm_seconds;
    const auto s = streams[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(streams.size()) - 1))];
    exec.enqueue(s, k, [&completions](SimTime) { ++completions; });
  }
  engine.run();
  EXPECT_EQ(completions, kKernels);
  EXPECT_NEAR(exec.total_work_done(), submitted,
              1e-9 + 1e-9 * submitted);
  EXPECT_EQ(exec.running_kernel_count(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecutorFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// Property: for any random task set, the scheduler accounts for every
// release (completed + dropped + still-in-flight-at-horizon).
class SchedulerFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerFuzz, EveryReleaseAccounted) {
  sim::Engine engine;
  gpu::Executor exec(engine, gpu::rtx2080ti(),
                     gpu::SpeedupModel::rtx2080ti(), gpu::SharingParams{});
  gpu::ContextPoolConfig pc;
  pc.num_contexts = 3;
  pc.oversubscription = 1.5;
  gpu::ContextPool pool(exec, pc);
  metrics::Collector collector;  // no warm-up: count everything
  rt::SgprsConfig scfg;
  scfg.max_in_flight_per_task = 2;
  rt::SgprsScheduler sched(exec, pool, collector, scfg);

  dnn::Profiler prof(gpu::rtx2080ti(), gpu::SpeedupModel::rtx2080ti(),
                     dnn::CostModel::calibrated());
  workload::RandomTaskSetConfig tcfg;
  tcfg.count = 14;
  tcfg.total_utilization = 3.0;  // overload: drops will happen
  tcfg.seed = GetParam();
  auto tasks =
      workload::build_random_taskset(tcfg, prof, {pool.at(0).sm_limit});

  rt::RunnerConfig rc;
  rc.duration = SimTime::from_sec(1.0);
  rt::Runner runner(engine, sched, tasks, rc);
  runner.run();
  const int in_flight = sched.jobs_in_flight();
  engine.run();  // drain the tail
  EXPECT_EQ(sched.jobs_in_flight(), 0);

  const auto s = collector.aggregate(SimTime::from_sec(1.0));
  EXPECT_EQ(s.counts.released, runner.releases_issued());
  EXPECT_EQ(s.counts.released, s.counts.completed() + s.counts.dropped);
  EXPECT_GE(in_flight, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerFuzz,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// Determinism: the full stack is bit-reproducible for a fixed seed.
TEST(StressDeterminism, IdenticalRunsProduceIdenticalTimelines) {
  auto run_once = [] {
    sim::Engine engine;
    gpu::Executor exec(engine, gpu::rtx2080ti(),
                       gpu::SpeedupModel::rtx2080ti(), gpu::SharingParams{});
    gpu::ContextPoolConfig pc;
    pc.num_contexts = 2;
    pc.oversubscription = 2.0;
    gpu::ContextPool pool(exec, pc);
    metrics::Collector collector;
    rt::SgprsScheduler sched(exec, pool, collector);
    dnn::Profiler prof(gpu::rtx2080ti(), gpu::SpeedupModel::rtx2080ti(),
                       dnn::CostModel::calibrated());
    workload::RandomTaskSetConfig tcfg;
    tcfg.count = 10;
    tcfg.total_utilization = 2.0;
    auto tasks =
        workload::build_random_taskset(tcfg, prof, {pool.at(0).sm_limit});
    rt::RunnerConfig rc;
    rc.duration = SimTime::from_ms(800);
    rt::Runner runner(engine, sched, tasks, rc);
    runner.run();
    engine.run();
    return std::tuple{engine.processed_count(), exec.total_work_done(),
                      sched.stage_migrations(),
                      collector.aggregate(SimTime::from_ms(800)).fps};
  };
  EXPECT_EQ(run_once(), run_once());
}

// Long-horizon soak: no drift, no leak of in-flight bookkeeping.
TEST(StressSoak, TenSimulatedSecondsStayConsistent) {
  sim::Engine engine;
  gpu::Executor exec(engine, gpu::rtx2080ti(),
                     gpu::SpeedupModel::rtx2080ti(), gpu::SharingParams{});
  gpu::ContextPoolConfig pc;
  pc.num_contexts = 2;
  pc.oversubscription = 1.5;
  gpu::ContextPool pool(exec, pc);
  metrics::Collector collector(SimTime::from_sec(1));
  rt::SgprsScheduler sched(exec, pool, collector);
  dnn::Profiler prof(gpu::rtx2080ti(), gpu::SpeedupModel::rtx2080ti(),
                     dnn::CostModel::calibrated());
  auto net = std::make_shared<const dnn::Network>(dnn::resnet18());
  std::vector<rt::Task> tasks;
  for (int i = 0; i < 18; ++i) {
    tasks.push_back(rt::build_task(i, net, {}, prof, {pool.at(0).sm_limit}));
  }
  rt::RunnerConfig rc;
  rc.duration = SimTime::from_sec(10.0);
  rt::Runner runner(engine, sched, tasks, rc);
  runner.run();
  engine.run();
  const auto s = collector.aggregate(SimTime::from_sec(10.0));
  // 18 tasks x 30 fps x 9 s window, all on time at this load.
  EXPECT_NEAR(static_cast<double>(s.counts.completed()), 18 * 30 * 9, 40.0);
  EXPECT_DOUBLE_EQ(s.dmr, 0.0);
  EXPECT_EQ(sched.jobs_in_flight(), 0);
}

}  // namespace
}  // namespace sgprs
