// Integration suite: the paper's headline claims as executable assertions.
//
// These are the "shape targets" from DESIGN.md §4 — who wins, by roughly
// what factor, where the crossovers fall. Runs use shorter horizons than
// the benches (1.5 s simulated) to stay fast, which costs a little metric
// precision; tolerances reflect that.
#include <gtest/gtest.h>

#include "workload/scenario.hpp"

namespace sgprs::workload {
namespace {

using common::SimTime;

ScenarioConfig cfg_for(SchedulerKind kind, int contexts, double os,
                       int tasks) {
  ScenarioConfig cfg;
  cfg.scheduler = kind;
  cfg.num_contexts = contexts;
  cfg.oversubscription = os;
  cfg.num_tasks = tasks;
  cfg.duration = SimTime::from_sec(1.5);
  cfg.warmup = SimTime::from_ms(300);
  return cfg;
}

TEST(PaperShapes, NaivePivotsMuchEarlierThanSgprs) {
  // Scenario 1. Naive pivots around 14 tasks; SGPRS 2.0 around 24.
  auto naive = cfg_for(SchedulerKind::kNaive, 2, 1.0, 1);
  auto sgprs = cfg_for(SchedulerKind::kSgprs, 2, 2.0, 1);
  const auto naive_sweep = sweep_num_tasks(naive, 12, 26);
  const auto sgprs_sweep = sweep_num_tasks(sgprs, 12, 26);
  const int naive_pivot = find_pivot(naive_sweep, 12, 0.005);
  const int sgprs_pivot = find_pivot(sgprs_sweep, 12, 0.005);
  EXPECT_GE(sgprs_pivot - naive_pivot, 6)
      << "SGPRS must outlast naive by several tasks (paper: 14ish vs 23)";
  EXPECT_GE(sgprs_pivot, 21);
  EXPECT_LE(sgprs_pivot, 26);
}

TEST(PaperShapes, NaiveCollapsesToRoughly60PercentOfSgprs) {
  // Paper: naive 468 fps vs best SGPRS ~755 at max load (38% drop).
  const auto naive = run_scenario(cfg_for(SchedulerKind::kNaive, 2, 1.0, 30));
  const auto sgprs = run_scenario(cfg_for(SchedulerKind::kSgprs, 2, 2.0, 30));
  const double ratio = naive.fps() / sgprs.fps();
  EXPECT_GT(ratio, 0.45);
  EXPECT_LT(ratio, 0.75) << "naive must lose roughly 30-50%";
}

TEST(PaperShapes, NaiveDmrExplodesWhileSgprsStaysModerate) {
  const auto naive = run_scenario(cfg_for(SchedulerKind::kNaive, 2, 1.0, 28));
  const auto sgprs = run_scenario(cfg_for(SchedulerKind::kSgprs, 2, 1.5, 28));
  EXPECT_GT(naive.dmr(), 0.6) << "drastic degradation (paper Fig. 3b)";
  EXPECT_LT(sgprs.dmr(), 0.4) << "moderate slope (paper Fig. 3b)";
}

TEST(PaperShapes, Scenario1FpsMonotoneInOversubscription) {
  // Paper Fig. 3a: with only two contexts, more over-subscription is
  // always better (not enough contexts to cover the GPU otherwise).
  const auto r10 = run_scenario(cfg_for(SchedulerKind::kSgprs, 2, 1.0, 30));
  const auto r15 = run_scenario(cfg_for(SchedulerKind::kSgprs, 2, 1.5, 30));
  const auto r20 = run_scenario(cfg_for(SchedulerKind::kSgprs, 2, 2.0, 30));
  EXPECT_GE(r15.fps(), r10.fps() - 5.0);
  EXPECT_GE(r20.fps(), r10.fps() + 10.0)
      << "2.0x must clearly beat 1.0x in Scenario 1";
}

TEST(PaperShapes, Scenario2MidOversubscriptionWins) {
  // Paper Fig. 4a: with three contexts, 1.5x (741 fps) beats 2.0x (731).
  const auto r15 = run_scenario(cfg_for(SchedulerKind::kSgprs, 3, 1.5, 30));
  const auto r20 = run_scenario(cfg_for(SchedulerKind::kSgprs, 3, 2.0, 30));
  EXPECT_GT(r15.fps(), r20.fps())
      << "higher over-subscription must not win Scenario 2";
  // And the margin is small, as in the paper (741 vs 731 ~ 1.4%).
  EXPECT_LT((r15.fps() - r20.fps()) / r15.fps(), 0.10);
}

TEST(PaperShapes, SgprsSustainsFpsPastPivot) {
  // "SGPRS variations not only can sustain total FPS..." — FPS at 30
  // tasks must not fall more than a few percent below the peak.
  auto cfg = cfg_for(SchedulerKind::kSgprs, 2, 1.5, 1);
  const auto sweep = sweep_num_tasks(cfg, 22, 30);
  double peak = 0.0;
  for (const auto& r : sweep) peak = std::max(peak, r.fps());
  EXPECT_GT(sweep.back().fps(), 0.93 * peak);
}

TEST(PaperShapes, BestPivotNearPaperValues) {
  // Paper: best-case pivots at 23 (S1) and 24 (S2) tasks. Allow +-2.
  auto s1 = cfg_for(SchedulerKind::kSgprs, 2, 2.0, 1);
  auto s2 = cfg_for(SchedulerKind::kSgprs, 3, 1.5, 1);
  const int p1 = find_pivot(sweep_num_tasks(s1, 20, 27), 20, 0.005);
  const int p2 = find_pivot(sweep_num_tasks(s2, 20, 27), 20, 0.005);
  EXPECT_GE(p1, 21);
  EXPECT_LE(p1, 26);
  EXPECT_GE(p2, 22);
  EXPECT_LE(p2, 26);
}

TEST(PaperShapes, ResnetSpeedupMatchesFig1) {
  dnn::Profiler prof(gpu::rtx2080ti(), gpu::SpeedupModel::rtx2080ti(),
                     dnn::CostModel::calibrated());
  const auto net = dnn::resnet18();
  const double s68 = prof.network_speedup(net, 68);
  EXPECT_GE(s68, 21.0);
  EXPECT_LE(s68, 26.0);
  const auto model = gpu::SpeedupModel::rtx2080ti();
  EXPECT_NEAR(model.speedup(gpu::OpClass::kConv, 68), 32.0, 1e-9);
  EXPECT_NEAR(model.speedup(gpu::OpClass::kMaxPool, 68), 14.0, 1e-9);
}

}  // namespace
}  // namespace sgprs::workload
