#include "common/heap.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.hpp"

namespace sgprs::common {
namespace {

TEST(MinHeap, PopsInAscendingOrder) {
  MinHeap<int> h;
  for (int v : {5, 1, 4, 2, 3}) h.push(v);
  std::vector<int> out;
  while (!h.empty()) out.push_back(h.pop());
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(MinHeap, TopIsMinimumWithoutRemoval) {
  MinHeap<int> h;
  h.push(9);
  h.push(3);
  h.push(7);
  EXPECT_EQ(h.top(), 3);
  EXPECT_EQ(h.size(), 3u);
}

TEST(MinHeap, RandomizedMatchesSortedOrder) {
  common::Rng rng(77);
  for (int round = 0; round < 20; ++round) {
    MinHeap<std::int64_t> h;
    std::vector<std::int64_t> vals;
    const int n = 1 + static_cast<int>(rng.uniform_int(0, 500));
    for (int i = 0; i < n; ++i) {
      const std::int64_t v = rng.uniform_int(0, 50);  // many duplicates
      vals.push_back(v);
      h.push(v);
    }
    std::sort(vals.begin(), vals.end());
    for (std::int64_t v : vals) EXPECT_EQ(h.pop(), v);
    EXPECT_TRUE(h.empty());
  }
}

TEST(MinHeap, InterleavedPushPopKeepsInvariant) {
  common::Rng rng(13);
  MinHeap<int> h;
  std::vector<int> mirror;
  for (int op = 0; op < 5000; ++op) {
    if (mirror.empty() || rng.next_double() < 0.6) {
      const int v = static_cast<int>(rng.uniform_int(0, 1000));
      h.push(v);
      mirror.push_back(v);
    } else {
      const int got = h.pop();
      auto it = std::min_element(mirror.begin(), mirror.end());
      EXPECT_EQ(got, *it);
      mirror.erase(it);
    }
  }
}

TEST(MinHeap, TotalOrderGivesDeterministicTieBreak) {
  // (key, seq) pairs with duplicate keys: pop order must follow seq, the
  // invariant the EDF queues and the event calendar rely on.
  using P = std::pair<int, int>;
  MinHeap<P> h;
  h.push({1, 3});
  h.push({0, 2});
  h.push({1, 1});
  h.push({0, 4});
  std::vector<P> out;
  while (!h.empty()) out.push_back(h.pop());
  EXPECT_EQ(out, (std::vector<P>{{0, 2}, {0, 4}, {1, 1}, {1, 3}}));
}

TEST(MinHeap, CompactDropsFilteredElements) {
  MinHeap<int> h;
  for (int i = 0; i < 100; ++i) h.push(i);
  h.compact([](int v) { return v % 2 == 0; });
  EXPECT_EQ(h.size(), 50u);
  std::vector<int> out;
  while (!h.empty()) out.push_back(h.pop());
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(2 * i));
  }
}

TEST(MinHeap, MergeFromSmallAndLargeBatches) {
  common::Rng rng(99);
  MinHeap<int> h;
  std::vector<int> mirror;
  // Alternate tiny batches (sift-in path) and big batches (heapify path).
  for (int round = 0; round < 10; ++round) {
    const int batch = round % 2 == 0 ? 3 : 400;
    std::vector<int> src;
    for (int i = 0; i < batch; ++i) {
      const int v = static_cast<int>(rng.uniform_int(0, 10000));
      src.push_back(v);
      mirror.push_back(v);
    }
    h.merge_from(src);
    EXPECT_TRUE(src.empty());
    // Drain a few to interleave pops between merges.
    for (int i = 0; i < 5 && !h.empty(); ++i) {
      const int got = h.pop();
      auto it = std::min_element(mirror.begin(), mirror.end());
      EXPECT_EQ(got, *it);
      mirror.erase(it);
    }
  }
  std::sort(mirror.begin(), mirror.end());
  for (int v : mirror) EXPECT_EQ(h.pop(), v);
}

}  // namespace
}  // namespace sgprs::common
