#include "common/json.hpp"

#include <gtest/gtest.h>

#include <fstream>

namespace sgprs::common {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(parse_json("null").is_null());
  EXPECT_EQ(parse_json("true").as_bool(), true);
  EXPECT_EQ(parse_json("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_json("3.25").as_number(), 3.25);
  EXPECT_DOUBLE_EQ(parse_json("-0.5").as_number(), -0.5);
  EXPECT_EQ(parse_json("42").as_int(), 42);
  EXPECT_EQ(parse_json("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(parse_json("1e3").as_number(), 1000.0);
  EXPECT_EQ(parse_json("1e3").as_int(), 1000) << "integral-valued is fine";
  EXPECT_EQ(parse_json("\"hi\"").as_string(), "hi");
}

TEST(Json, ParsesNestedStructure) {
  const auto v = parse_json(R"({
    "name": "s1",
    "pool": { "contexts": 2, "oversubscription": 1.5 },
    "tasks": [ { "fps": 30 }, { "fps": 60 } ]
  })");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.at("name").as_string(), "s1");
  EXPECT_EQ(v.at("pool").at("contexts").as_int(), 2);
  ASSERT_EQ(v.at("tasks").size(), 2u);
  EXPECT_DOUBLE_EQ(v.at("tasks").items()[1].at("fps").as_number(), 60.0);
}

TEST(Json, PreservesObjectOrder) {
  const auto v = parse_json(R"({"z": 1, "a": 2, "m": 3})");
  ASSERT_EQ(v.members().size(), 3u);
  EXPECT_EQ(v.members()[0].first, "z");
  EXPECT_EQ(v.members()[1].first, "a");
  EXPECT_EQ(v.members()[2].first, "m");
}

TEST(Json, LineCommentsAllowed) {
  const auto v = parse_json(R"(// header comment
  {
    "a": 1,  // trailing comment
    // full-line comment
    "b": [2, 3]
  })");
  EXPECT_EQ(v.at("a").as_int(), 1);
  EXPECT_EQ(v.at("b").size(), 2u);
}

TEST(Json, StringEscapes) {
  EXPECT_EQ(parse_json(R"("a\"b\\c\nd\te")").as_string(), "a\"b\\c\nd\te");
  EXPECT_EQ(parse_json(R"("Aé")").as_string(), "A\xc3\xa9");
}

TEST(Json, ErrorsCarryLineAndColumn) {
  try {
    parse_json("{\n  \"a\": 1,\n  \"b\" 2\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find(":"), std::string::npos);
  }
}

TEST(Json, RejectsNumbersBeyondDoubleRange) {
  EXPECT_THROW(parse_json("2e400"), JsonError);
  EXPECT_THROW(parse_json("-2e400"), JsonError);
}

TEST(Json, StrictNumberAndStringSyntax) {
  EXPECT_THROW(parse_json("012"), JsonError) << "leading zeros";
  EXPECT_THROW(parse_json("-01"), JsonError);
  EXPECT_DOUBLE_EQ(parse_json("0").as_number(), 0.0);
  EXPECT_DOUBLE_EQ(parse_json("0.5").as_number(), 0.5);
  EXPECT_DOUBLE_EQ(parse_json("-0.25").as_number(), -0.25);
  EXPECT_THROW(parse_json("\"a\tb\""), JsonError) << "raw control char";
  EXPECT_THROW(parse_json("\"a\nb\""), JsonError) << "raw newline";
}

TEST(Json, RejectsMalformedDocuments) {
  EXPECT_THROW(parse_json(""), JsonError);
  EXPECT_THROW(parse_json("{"), JsonError);
  EXPECT_THROW(parse_json("[1,]"), JsonError);
  EXPECT_THROW(parse_json("{\"a\": }"), JsonError);
  EXPECT_THROW(parse_json("{\"a\": 1} trailing"), JsonError);
  EXPECT_THROW(parse_json("tru"), JsonError);
  EXPECT_THROW(parse_json("1."), JsonError);
  EXPECT_THROW(parse_json("\"unterminated"), JsonError);
  EXPECT_THROW(parse_json("{'single': 1}"), JsonError);
}

TEST(Json, RejectsDuplicateKeys) {
  EXPECT_THROW(parse_json(R"({"a": 1, "a": 2})"), JsonError);
}

TEST(Json, TypeMismatchNamesTypes) {
  const auto v = parse_json(R"({"a": 1})");
  try {
    v.at("a").as_string();
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("expected string"),
              std::string::npos)
        << e.what();
    EXPECT_NE(std::string(e.what()).find("number"), std::string::npos);
  }
  EXPECT_THROW(v.at("missing"), JsonError);
  EXPECT_THROW(parse_json("1.5").as_int(), JsonError);
  EXPECT_THROW(parse_json("1e300").as_int(), JsonError) << "out of int64";
  EXPECT_THROW(parse_json("-1e300").as_int(), JsonError);
}

TEST(Json, FindReturnsNullOnAbsence) {
  const auto v = parse_json(R"({"a": 1})");
  EXPECT_NE(v.find("a"), nullptr);
  EXPECT_EQ(v.find("b"), nullptr);
  EXPECT_EQ(parse_json("[1]").find("a"), nullptr) << "non-object";
}

TEST(Json, BuiltValuesRoundTrip) {
  JsonValue obj = JsonValue::object();
  obj.set("n", JsonValue::of(3));
  JsonValue arr = JsonValue::array();
  arr.push(JsonValue::of("x"));
  obj.set("a", std::move(arr));
  EXPECT_EQ(obj.at("n").as_int(), 3);
  EXPECT_EQ(obj.at("a").items()[0].as_string(), "x");
}

TEST(Json, ParseFileErrorsNamePath) {
  EXPECT_THROW(parse_json_file("/nonexistent/spec.json"), JsonError);
  try {
    parse_json_file("/nonexistent/spec.json");
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("/nonexistent/spec.json"),
              std::string::npos);
  }
}

TEST(Json, ParseFileErrorsKeepPosition) {
  const std::string path = testing::TempDir() + "sgprs_json_pos_test.json";
  {
    std::ofstream out(path);
    out << "{\n  \"a\": 1,\n  \"b\" 2\n}";
  }
  try {
    parse_json_file(path);
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_EQ(e.line(), 3) << e.what();
    const std::string msg = e.what();
    EXPECT_NE(msg.find(path), std::string::npos) << msg;
    EXPECT_EQ(msg.find("line 3"), msg.rfind("line 3"))
        << "position suffix must not be duplicated: " << msg;
  }
}

}  // namespace
}  // namespace sgprs::common
