#include "common/csv.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace sgprs::common {
namespace {

TEST(CsvWriter, PlainRow) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"a", "b", "c"});
  EXPECT_EQ(os.str(), "a,b,c\n");
}

TEST(CsvWriter, HeaderThenRows) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"x", "y"});
  w.row({"1", "2"});
  EXPECT_EQ(os.str(), "x,y\n1,2\n");
}

TEST(CsvWriter, QuotesCommas) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"a,b", "c"});
  EXPECT_EQ(os.str(), "\"a,b\",c\n");
}

TEST(CsvWriter, EscapesQuotes) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"say \"hi\""});
  EXPECT_EQ(os.str(), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, QuotesNewlines) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"line1\nline2"});
  EXPECT_EQ(os.str(), "\"line1\nline2\"\n");
}

TEST(CsvWriter, NumFormatsPrecision) {
  EXPECT_EQ(CsvWriter::num(3.14159, 2), "3.14");
  EXPECT_EQ(CsvWriter::num(1.0, 0), "1");
  EXPECT_EQ(CsvWriter::num(-0.5, 3), "-0.500");
}

TEST(CsvWriter, EmptyCells) {
  std::ostringstream os;
  CsvWriter w(os);
  w.row({"", "x", ""});
  EXPECT_EQ(os.str(), ",x,\n");
}

}  // namespace
}  // namespace sgprs::common
