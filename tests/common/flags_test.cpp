#include "common/flags.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace sgprs::common {
namespace {

std::vector<const char*> argv_of(std::initializer_list<const char*> args) {
  std::vector<const char*> v = {"prog"};
  v.insert(v.end(), args);
  return v;
}

TEST(Flags, DefaultsApplyWhenUnset) {
  FlagParser p;
  p.define("tasks", "task count", "16");
  auto argv = argv_of({});
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(p.get_int("tasks"), 16);
  EXPECT_FALSE(p.has("tasks"));
}

TEST(Flags, EqualsSyntax) {
  FlagParser p;
  p.define("oversub", "level", "1.0");
  auto argv = argv_of({"--oversub=2.5"});
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_DOUBLE_EQ(p.get_double("oversub"), 2.5);
  EXPECT_TRUE(p.has("oversub"));
}

TEST(Flags, SpaceSeparatedValue) {
  FlagParser p;
  p.define("name", "a name", "x");
  auto argv = argv_of({"--name", "hello"});
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(p.get("name"), "hello");
}

TEST(Flags, BareBoolFlag) {
  FlagParser p;
  p.define_bool("verbose", "talk more");
  auto argv = argv_of({"--verbose"});
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_TRUE(p.get_bool("verbose"));
}

TEST(Flags, BoolWithExplicitValue) {
  FlagParser p;
  p.define("boost", "toggle", "true");
  auto argv = argv_of({"--boost=false"});
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_FALSE(p.get_bool("boost"));
}

TEST(Flags, UnknownFlagFailsParse) {
  FlagParser p;
  p.define("tasks", "count", "1");
  auto argv = argv_of({"--typo=3"});
  EXPECT_FALSE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_NE(p.error().find("typo"), std::string::npos);
}

TEST(Flags, MissingValueFailsParse) {
  FlagParser p;
  p.define("tasks", "count", "1");
  auto argv = argv_of({"--tasks"});
  EXPECT_FALSE(p.parse(static_cast<int>(argv.size()), argv.data()));
}

TEST(Flags, PositionalArgsCollected) {
  FlagParser p;
  p.define("x", "", "");
  auto argv = argv_of({"alpha", "--x=1", "beta"});
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_EQ(p.positional(),
            (std::vector<std::string>{"alpha", "beta"}));
}

TEST(Flags, BadNumericConversionThrows) {
  FlagParser p;
  p.define("tasks", "count", "abc");
  auto argv = argv_of({});
  ASSERT_TRUE(p.parse(static_cast<int>(argv.size()), argv.data()));
  EXPECT_THROW(p.get_int("tasks"), CheckError);
  EXPECT_THROW(p.get_double("tasks"), CheckError);
  EXPECT_THROW(p.get_bool("tasks"), CheckError);
}

TEST(Flags, UndefinedLookupThrows) {
  FlagParser p;
  EXPECT_THROW(p.get("nope"), CheckError);
  EXPECT_THROW(p.has("nope"), CheckError);
}

TEST(Flags, DuplicateDefinitionThrows) {
  FlagParser p;
  p.define("x", "", "");
  EXPECT_THROW(p.define("x", "", ""), CheckError);
}

TEST(Flags, HelpListsAllFlags) {
  FlagParser p;
  p.define("tasks", "number of tasks", "16");
  p.define_bool("verbose", "talk more");
  const auto h = p.help("prog");
  EXPECT_NE(h.find("--tasks"), std::string::npos);
  EXPECT_NE(h.find("--verbose"), std::string::npos);
  EXPECT_NE(h.find("default: 16"), std::string::npos);
}

}  // namespace
}  // namespace sgprs::common
