#include "common/time.hpp"

#include <gtest/gtest.h>

namespace sgprs::common {
namespace {

TEST(SimTime, ZeroAndMax) {
  EXPECT_EQ(SimTime::zero().ns, 0);
  EXPECT_TRUE(SimTime::max().is_max());
  EXPECT_FALSE(SimTime::zero().is_max());
}

TEST(SimTime, UnitConversionsRoundTrip) {
  EXPECT_EQ(SimTime::from_ms(1.0).ns, 1'000'000);
  EXPECT_EQ(SimTime::from_us(1.0).ns, 1'000);
  EXPECT_EQ(SimTime::from_sec(1.0).ns, 1'000'000'000);
  EXPECT_DOUBLE_EQ(SimTime::from_ms(33.25).to_ms(), 33.25);
  EXPECT_DOUBLE_EQ(SimTime::from_sec(2.5).to_sec(), 2.5);
}

TEST(SimTime, Arithmetic) {
  const auto a = SimTime::from_ms(10);
  const auto b = SimTime::from_ms(3);
  EXPECT_EQ((a + b).ns, SimTime::from_ms(13).ns);
  EXPECT_EQ((a - b).ns, SimTime::from_ms(7).ns);
  EXPECT_EQ((b * 4).ns, SimTime::from_ms(12).ns);
  auto c = a;
  c += b;
  EXPECT_EQ(c, SimTime::from_ms(13));
  c -= b;
  EXPECT_EQ(c, a);
}

TEST(SimTime, Comparisons) {
  EXPECT_LT(SimTime::from_us(999), SimTime::from_ms(1));
  EXPECT_GT(SimTime::from_sec(1), SimTime::from_ms(999));
  EXPECT_EQ(SimTime::from_ms(1), SimTime::from_us(1000));
  EXPECT_LE(SimTime::zero(), SimTime::zero());
}

TEST(SimTime, ToStringPicksUnits) {
  EXPECT_EQ(to_string(SimTime::from_sec(2.0)), "2.000 s");
  EXPECT_EQ(to_string(SimTime::from_ms(5.5)), "5.500 ms");
  EXPECT_EQ(to_string(SimTime::from_us(12.0)), "12.000 us");
  EXPECT_EQ(to_string(SimTime::max()), "+inf");
}

}  // namespace
}  // namespace sgprs::common
