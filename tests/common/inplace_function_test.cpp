#include "common/inplace_function.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <utility>

namespace sgprs::common {
namespace {

using Fn = InplaceFunction<void()>;
using IntFn = InplaceFunction<int(int)>;

TEST(InplaceFunction, DefaultIsEmpty) {
  Fn f;
  EXPECT_FALSE(static_cast<bool>(f));
  EXPECT_TRUE(f == nullptr);
  EXPECT_FALSE(f != nullptr);
}

TEST(InplaceFunction, InvokesCapture) {
  int hits = 0;
  Fn f = [&hits] { ++hits; };
  ASSERT_TRUE(f != nullptr);
  f();
  f();
  EXPECT_EQ(hits, 2);
}

TEST(InplaceFunction, ReturnsValues) {
  IntFn f = [](int x) { return x * 3; };
  EXPECT_EQ(f(7), 21);
}

TEST(InplaceFunction, MoveTransfersTargetAndEmptiesSource) {
  int hits = 0;
  Fn a = [&hits] { ++hits; };
  Fn b = std::move(a);
  EXPECT_TRUE(a == nullptr);
  ASSERT_TRUE(b != nullptr);
  b();
  EXPECT_EQ(hits, 1);
}

TEST(InplaceFunction, MoveAssignDestroysPreviousTarget) {
  auto counter = std::make_shared<int>(0);
  Fn a = [counter] { ++*counter; };
  EXPECT_EQ(counter.use_count(), 2);
  a = Fn([] {});
  // The old capture (and its shared_ptr copy) must be gone.
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(InplaceFunction, NullAssignmentDestroysTarget) {
  auto counter = std::make_shared<int>(0);
  Fn a = [counter] {};
  EXPECT_EQ(counter.use_count(), 2);
  a = nullptr;
  EXPECT_EQ(counter.use_count(), 1);
  EXPECT_TRUE(a == nullptr);
}

TEST(InplaceFunction, DestructorReleasesCapture) {
  auto counter = std::make_shared<int>(0);
  {
    Fn a = [counter] {};
    EXPECT_EQ(counter.use_count(), 2);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(InplaceFunction, MoveOnlyCapturesWork) {
  auto p = std::make_unique<int>(41);
  InplaceFunction<int()> f = [p = std::move(p)] { return *p + 1; };
  EXPECT_EQ(f(), 42);
}

TEST(InplaceFunction, CallAndResetInvokesOnceAndEmpties) {
  auto counter = std::make_shared<int>(0);
  Fn a = [counter] { ++*counter; };
  a.call_and_reset();
  EXPECT_EQ(*counter, 1);
  EXPECT_TRUE(a == nullptr);
  // The capture was destroyed by the fused invoke+destroy.
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(InplaceFunction, EmplaceReplacesTargetInPlace) {
  auto counter = std::make_shared<int>(0);
  Fn a = [counter] {};
  int hits = 0;
  a.emplace([&hits] { ++hits; });
  EXPECT_EQ(counter.use_count(), 1);  // old capture destroyed
  a();
  EXPECT_EQ(hits, 1);
}

void sim_sized_check(InplaceFunction<void(), 40> f) { f(); }

TEST(InplaceFunction, CapacityFitsDocumentedLargestCapture) {
  // The event calendar relies on four-word captures fitting inline; this
  // compiles only while that stays true (the static_assert is the guard).
  struct FourWords {
    void* a = nullptr;
    void* b = nullptr;
    std::int64_t c = 0;
    std::int64_t d = 0;
    void operator()() const {}
  };
  sim_sized_check(FourWords{});
}

}  // namespace
}  // namespace sgprs::common
