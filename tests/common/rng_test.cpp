#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace sgprs::common {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_EQ(equal, 0);
}

TEST(Rng, ReseedResets) {
  Rng a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformRespectsBounds) {
  Rng r(5);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.uniform(-2.5, 7.5);
    EXPECT_GE(d, -2.5);
    EXPECT_LT(d, 7.5);
  }
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng r(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(1, 6);
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 6);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u) << "all die faces should appear";
}

TEST(Rng, UniformMeanRoughlyCentered) {
  Rng r(11);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, InvalidRangeThrows) {
  Rng r(1);
  EXPECT_THROW(r.uniform(2.0, 1.0), CheckError);
  EXPECT_THROW(r.uniform_int(5, 4), CheckError);
}

}  // namespace
}  // namespace sgprs::common
