#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace sgprs::common {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  Rng rng(77);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10, 10);
    all.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(RunningStats, MergeTwoEmptiesStaysEmpty) {
  RunningStats a;
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(RunningStats, MergeTwoSingletonsMatchesDirect) {
  RunningStats a;
  a.add(2.0);
  RunningStats b;
  b.add(6.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.0);
  EXPECT_DOUBLE_EQ(a.variance(), 8.0);  // ((2-4)^2 + (6-4)^2) / (2-1)
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 6.0);
  EXPECT_DOUBLE_EQ(a.sum(), 8.0);
}

TEST(RunningStats, CrossShardMergeMatchesSequential) {
  // The parallel-aggregation shape: many shards of very different sizes
  // (including empty ones) merged pairwise must equal one serial stream.
  RunningStats all;
  std::vector<RunningStats> shards(7);
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    const double x = rng.uniform(-5, 50);
    all.add(x);
    shards[static_cast<std::size_t>(rng.uniform_int(0, 5))].add(x);
    // shard 6 deliberately stays empty
  }
  RunningStats merged;
  for (const auto& s : shards) merged.merge(s);
  EXPECT_EQ(merged.count(), all.count());
  EXPECT_NEAR(merged.mean(), all.mean(), 1e-10);
  EXPECT_NEAR(merged.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(merged.min(), all.min());
  EXPECT_DOUBLE_EQ(merged.max(), all.max());
  EXPECT_NEAR(merged.sum(), all.sum(), 1e-9);
}

TEST(RunningStats, MergePreservesSelfAssignSafetyViaCopy) {
  RunningStats a;
  a.add(1.0);
  a.add(5.0);
  RunningStats b = a;
  a.merge(b);  // doubling a distribution keeps its mean
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
}

TEST(ConfidenceInterval, EmptyCollapsesToZero) {
  RunningStats s;
  const auto ci = s.confidence_interval();
  EXPECT_EQ(ci.n, 0u);
  EXPECT_DOUBLE_EQ(ci.mean, 0.0);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
  EXPECT_DOUBLE_EQ(ci.lo, 0.0);
  EXPECT_DOUBLE_EQ(ci.hi, 0.0);
}

TEST(ConfidenceInterval, OneSampleHasZeroWidth) {
  RunningStats s;
  s.add(3.5);
  const auto ci = s.confidence_interval();
  EXPECT_EQ(ci.n, 1u);
  EXPECT_DOUBLE_EQ(ci.mean, 3.5);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
  EXPECT_DOUBLE_EQ(ci.lo, 3.5);
  EXPECT_DOUBLE_EQ(ci.hi, 3.5);
}

TEST(ConfidenceInterval, TwoSamplesUseT1) {
  // n=2: mean 5, stddev sqrt(2)*|x-mean|... here samples 4 and 6:
  // stddev = sqrt(2), half = t(1) * sqrt(2)/sqrt(2) = 12.706.
  RunningStats s;
  s.add(4.0);
  s.add(6.0);
  const auto ci = s.confidence_interval();
  EXPECT_DOUBLE_EQ(ci.mean, 5.0);
  EXPECT_NEAR(ci.half_width, 12.706, 1e-9);
  EXPECT_NEAR(ci.lo, 5.0 - 12.706, 1e-9);
  EXPECT_NEAR(ci.hi, 5.0 + 12.706, 1e-9);
}

TEST(ConfidenceInterval, KnownSmallSample) {
  // {2,4,4,4,5,5,7,9}: mean 5, s^2 = 32/7, n = 8 -> half width
  // t(7) * sqrt(32/7) / sqrt(8) = 2.365 * 0.7559... = 1.78798...
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  const auto ci = s.confidence_interval();
  EXPECT_DOUBLE_EQ(ci.mean, 5.0);
  EXPECT_NEAR(ci.half_width, 2.365 * std::sqrt(32.0 / 7.0) / std::sqrt(8.0),
              1e-12);
}

TEST(ConfidenceInterval, ZeroVarianceIsZeroWidthAtAnyN) {
  RunningStats s;
  for (int i = 0; i < 10; ++i) s.add(4.25);
  const auto ci = s.confidence_interval();
  EXPECT_DOUBLE_EQ(ci.mean, 4.25);
  EXPECT_DOUBLE_EQ(ci.half_width, 0.0);
}

TEST(ConfidenceInterval, WidthShrinksWithSampleCount) {
  Rng rng(7);
  RunningStats small;
  RunningStats big;
  for (int i = 0; i < 8; ++i) small.add(rng.uniform(0, 1));
  for (int i = 0; i < 800; ++i) big.add(rng.uniform(0, 1));
  EXPECT_GT(small.confidence_interval().half_width,
            big.confidence_interval().half_width);
  // ~1.96 * sigma/sqrt(n) for the large sample: sigma ~ sqrt(1/12).
  EXPECT_NEAR(big.confidence_interval().half_width,
              1.96 * std::sqrt(1.0 / 12.0) / std::sqrt(800.0), 5e-3);
}

TEST(ConfidenceInterval, MergedShardsMatchSerialInterval) {
  RunningStats serial;
  RunningStats a;
  RunningStats b;
  Rng rng(21);
  for (int i = 0; i < 64; ++i) {
    const double x = rng.uniform(10, 20);
    serial.add(x);
    (i < 20 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_NEAR(a.confidence_interval().half_width,
              serial.confidence_interval().half_width, 1e-10);
  EXPECT_NEAR(a.confidence_interval().mean, serial.confidence_interval().mean,
              1e-10);
}

TEST(Percentiles, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_DOUBLE_EQ(p.p50(), 0.0);
  EXPECT_TRUE(p.empty());
}

TEST(Percentiles, MedianOfOddCount) {
  Percentiles p;
  for (double x : {5.0, 1.0, 3.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.p50(), 3.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.max(), 5.0);
}

TEST(Percentiles, InterpolatesBetweenSamples) {
  Percentiles p;
  p.add(0.0);
  p.add(10.0);
  EXPECT_DOUBLE_EQ(p.p50(), 5.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.25), 2.5);
}

TEST(Percentiles, AddAfterQueryResorts) {
  Percentiles p;
  p.add(1.0);
  p.add(2.0);
  EXPECT_DOUBLE_EQ(p.max(), 2.0);
  p.add(0.5);  // out of order after previous sort
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 0.5);
}

TEST(Percentiles, CachedQuantilesMatchFreshEstimatorUnderInterleaving) {
  // Differential pin for the sorted-state cache (the dirty flag in
  // stats.hpp): interleave add() bursts with quantile reads and require
  // every answer to equal a freshly built estimator over the same
  // samples — the cache must be invisible.
  Rng rng(21);
  Percentiles cached;
  std::vector<double> seen;
  for (int step = 0; step < 200; ++step) {
    const int burst = static_cast<int>(rng.uniform_int(1, 5));
    for (int i = 0; i < burst; ++i) {
      const double v = rng.uniform(0.0, 100.0);
      cached.add(v);
      seen.push_back(v);
    }
    const double q = rng.next_double();
    Percentiles fresh;
    for (double v : seen) fresh.add(v);
    EXPECT_DOUBLE_EQ(cached.quantile(q), fresh.quantile(q))
        << "step " << step;
    EXPECT_DOUBLE_EQ(cached.max(), fresh.max()) << "step " << step;
  }
}

TEST(Percentiles, UniformQuantilesRoughlyLinear) {
  Percentiles p;
  Rng rng(13);
  for (int i = 0; i < 50000; ++i) p.add(rng.next_double());
  EXPECT_NEAR(p.p50(), 0.5, 0.02);
  EXPECT_NEAR(p.p95(), 0.95, 0.02);
  EXPECT_NEAR(p.p99(), 0.99, 0.01);
}

TEST(Percentiles, OutOfRangeQuantileThrows) {
  Percentiles p;
  p.add(1.0);
  EXPECT_THROW(p.quantile(-0.1), CheckError);
  EXPECT_THROW(p.quantile(1.1), CheckError);
}

}  // namespace
}  // namespace sgprs::common
