#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace sgprs::common {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats all;
  RunningStats left;
  RunningStats right;
  Rng rng(77);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-10, 10);
    all.add(x);
    (i % 2 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  a.add(3.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 2u);
  EXPECT_DOUBLE_EQ(empty.mean(), 2.0);
}

TEST(Percentiles, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_DOUBLE_EQ(p.p50(), 0.0);
  EXPECT_TRUE(p.empty());
}

TEST(Percentiles, MedianOfOddCount) {
  Percentiles p;
  for (double x : {5.0, 1.0, 3.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.p50(), 3.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.max(), 5.0);
}

TEST(Percentiles, InterpolatesBetweenSamples) {
  Percentiles p;
  p.add(0.0);
  p.add(10.0);
  EXPECT_DOUBLE_EQ(p.p50(), 5.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.25), 2.5);
}

TEST(Percentiles, AddAfterQueryResorts) {
  Percentiles p;
  p.add(1.0);
  p.add(2.0);
  EXPECT_DOUBLE_EQ(p.max(), 2.0);
  p.add(0.5);  // out of order after previous sort
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 0.5);
}

TEST(Percentiles, UniformQuantilesRoughlyLinear) {
  Percentiles p;
  Rng rng(13);
  for (int i = 0; i < 50000; ++i) p.add(rng.next_double());
  EXPECT_NEAR(p.p50(), 0.5, 0.02);
  EXPECT_NEAR(p.p95(), 0.95, 0.02);
  EXPECT_NEAR(p.p99(), 0.99, 0.01);
}

TEST(Percentiles, OutOfRangeQuantileThrows) {
  Percentiles p;
  p.add(1.0);
  EXPECT_THROW(p.quantile(-0.1), CheckError);
  EXPECT_THROW(p.quantile(1.1), CheckError);
}

}  // namespace
}  // namespace sgprs::common
