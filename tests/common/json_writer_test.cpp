#include "common/json_writer.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/check.hpp"

namespace sgprs::common {
namespace {

TEST(JsonWriter, EmptyObject) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object().end_object();
  EXPECT_EQ(os.str(), "{}");
}

TEST(JsonWriter, ScalarFields) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object()
      .field("s", "hi")
      .field("i", std::int64_t{42})
      .field("d", 1.5)
      .field("b", true)
      .end_object();
  EXPECT_EQ(os.str(), R"({"s":"hi","i":42,"d":1.5,"b":true})");
}

TEST(JsonWriter, ArrayOfObjects) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array();
  w.begin_object().field("x", 1).end_object();
  w.begin_object().field("x", 2).end_object();
  w.end_array();
  EXPECT_EQ(os.str(), R"([{"x":1},{"x":2}])");
}

TEST(JsonWriter, NestedStructure) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_object().key("a");
  w.begin_array().value(1).value(2).end_array();
  w.field("b", "z").end_object();
  EXPECT_EQ(os.str(), R"({"a":[1,2],"b":"z"})");
}

TEST(JsonWriter, EscapesSpecialCharacters) {
  EXPECT_EQ(JsonWriter::escape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonWriter::escape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonWriter::escape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonWriter::escape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(JsonWriter, NonFiniteDoubleBecomesNull) {
  std::ostringstream os;
  JsonWriter w(os);
  w.begin_array().value(std::nan("")).end_array();
  EXPECT_EQ(os.str(), "[null]");
}

TEST(JsonWriter, UnbalancedEndThrows) {
  std::ostringstream os;
  JsonWriter w(os);
  EXPECT_THROW(w.end_object(), CheckError);
}

}  // namespace
}  // namespace sgprs::common
