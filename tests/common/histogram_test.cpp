// Exactness pins for the mergeable log-linear histogram
// (common/histogram.hpp, docs/observability.md).
//
// The load-bearing property is *merge exactness*: bucket counts are
// integers, so merging per-device histograms and then asking for a
// quantile returns the bit-identical double that one histogram over the
// whole population returns — for any split, in any order. That is what
// makes fleet-rollup p50/p99 exact instead of approximated
// (metrics/fleet.cpp), and it is pinned here as EXPECT_EQ on doubles
// across ~200 seeded random splits.
#include "common/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace sgprs::common {
namespace {

TEST(Histogram, EmptyIsAllZero) {
  Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, TracksExactCountSumMinMax) {
  Histogram h;
  h.add(3.0);
  h.add(1.5);
  h.add(40.0);
  EXPECT_EQ(h.count(), 3);
  EXPECT_DOUBLE_EQ(h.sum(), 44.5);
  EXPECT_DOUBLE_EQ(h.min(), 1.5);
  EXPECT_DOUBLE_EQ(h.max(), 40.0);
  EXPECT_DOUBLE_EQ(h.mean(), 44.5 / 3.0);
}

TEST(Histogram, ExtremeQuantilesAreExactMinAndMax) {
  Histogram h;
  h.add(0.37);
  h.add(123.456);
  h.add(7.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.37);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 123.456);
}

TEST(Histogram, QuantileRelativeErrorBounded) {
  // One sub-bucket spans a 1/128 relative slice of its octave, so any
  // quantile of a single-valued population lands within that slice.
  Rng rng(99);
  for (int i = 0; i < 500; ++i) {
    const double v =
        std::ldexp(rng.uniform(1.0, 2.0),
                   static_cast<int>(rng.uniform_int(-6, 24)));
    Histogram h;
    h.add(v);
    for (double q : {0.25, 0.5, 0.9, 0.99}) {
      // min/max clamping makes a single sample exact, so probe via two
      // samples in the same bucket region instead.
      h.add(v);
      EXPECT_NEAR(h.quantile(q), v, v / 64.0) << "v=" << v << " q=" << q;
    }
  }
}

TEST(Histogram, BucketIndexIsMonotoneAndInvertible) {
  Rng rng(7);
  for (int i = 0; i < 2000; ++i) {
    const double v =
        std::ldexp(rng.uniform(1.0, 2.0),
                   static_cast<int>(rng.uniform_int(-8, 28)));
    const int idx = Histogram::bucket_index(v);
    EXPECT_GE(v, Histogram::bucket_lo(idx)) << v;
    EXPECT_LT(v, Histogram::bucket_hi(idx)) << v;
  }
  // Adjacent bucket edges touch (no gaps, no overlap).
  for (int idx = 0; idx < 400; ++idx) {
    EXPECT_DOUBLE_EQ(Histogram::bucket_hi(idx),
                     Histogram::bucket_lo(idx + 1));
  }
}

TEST(Histogram, NegativeAndNanClampToBucketZero) {
  Histogram h;
  h.add(-5.0);
  h.add(0.0);
  EXPECT_EQ(h.count(), 2);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_EQ(Histogram::bucket_index(-1.0), 0);
  EXPECT_EQ(Histogram::bucket_index(std::nan("")), 0);
}

/// The merge property pin (~200 seeds): split a random population into a
/// random number of parts, merge the per-part histograms in a rotated
/// order, and require *bit-identical* quantiles against the unsplit
/// histogram. Counts/min/max are exact too; sum is floating addition and
/// only order-deterministic, so it gets a tolerance.
TEST(Histogram, MergedQuantilesBitIdenticalToWholePopulation) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    Rng rng(seed);
    const int n = static_cast<int>(rng.uniform_int(1, 400));
    const int parts = static_cast<int>(rng.uniform_int(1, 9));

    Histogram whole;
    std::vector<Histogram> split(parts);
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
      const double v =
          std::ldexp(rng.uniform(1.0, 2.0),
                     static_cast<int>(rng.uniform_int(-6, 20)));
      whole.add(v);
      split[static_cast<int>(rng.uniform_int(0, parts - 1))].add(v);
      sum += v;
    }
    // Merge in a seed-dependent rotation: order must not matter.
    Histogram merged;
    const int start = static_cast<int>(seed) % parts;
    for (int k = 0; k < parts; ++k) {
      merged.merge(split[(start + k) % parts]);
    }

    ASSERT_EQ(merged.count(), whole.count()) << "seed " << seed;
    EXPECT_DOUBLE_EQ(merged.min(), whole.min()) << "seed " << seed;
    EXPECT_DOUBLE_EQ(merged.max(), whole.max()) << "seed " << seed;
    for (double q : {0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99,
                     0.999, 1.0}) {
      // Bit-identical, not approximately equal: bucket counts are
      // integers, so the interpolation arithmetic sees the same inputs.
      EXPECT_EQ(merged.quantile(q), whole.quantile(q))
          << "seed " << seed << " q=" << q;
    }
    EXPECT_NEAR(merged.sum(), sum, std::abs(sum) * 1e-12);
  }
}

TEST(Histogram, MergeEmptyIsIdentity) {
  Histogram a;
  a.add(2.0);
  a.add(8.0);
  Histogram empty;
  Histogram b = a;
  b.merge(empty);
  EXPECT_EQ(b.count(), a.count());
  EXPECT_EQ(b.p50(), a.p50());
  Histogram c;
  c.merge(a);
  EXPECT_EQ(c.count(), a.count());
  EXPECT_EQ(c.p99(), a.p99());
  EXPECT_DOUBLE_EQ(c.min(), a.min());
  EXPECT_DOUBLE_EQ(c.max(), a.max());
}

TEST(Histogram, SaturatesAboveTopOctaveWithoutLosingCounts) {
  Histogram h;
  h.add(1e30);  // far above 2^31
  h.add(5.0);
  EXPECT_EQ(h.count(), 2);
  EXPECT_DOUBLE_EQ(h.max(), 1e30);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1e30);
}

}  // namespace
}  // namespace sgprs::common
