#include "common/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace sgprs::common {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  int expect = 0;
  for (int i = 0; i < 100; ++i) expect += i * i;
  EXPECT_EQ(sum, expect);
}

TEST(ThreadPool, FuturesPreserveSubmissionIdentity) {
  // The determinism contract: collecting futures in submission order maps
  // result i to job i no matter which worker ran it.
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) futures.push_back(pool.submit([i] { return i; }));
  for (int i = 0; i < 50; ++i) EXPECT_EQ(futures[i].get(), i);
}

TEST(ThreadPool, ExceptionsTravelThroughTheFuture) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto boom = pool.submit(
      []() -> int { throw std::runtime_error("job failed"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(boom.get(), std::runtime_error);
}

TEST(ThreadPool, WorkersRunConcurrently) {
  // Two tasks that each wait for the other to start can only finish if at
  // least two workers execute simultaneously.
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  int started = 0;
  auto task = [&] {
    std::unique_lock<std::mutex> lock(mu);
    ++started;
    cv.notify_all();
    return cv.wait_for(lock, std::chrono::seconds(10),
                       [&] { return started >= 2; });
  };
  auto a = pool.submit(task);
  auto b = pool.submit(task);
  EXPECT_TRUE(a.get());
  EXPECT_TRUE(b.get());
}

TEST(ThreadPool, DestructorDrainsTheQueue) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 32; ++i) {
      pool.submit([&ran] { ++ran; });
    }
  }  // ~ThreadPool must block until everything ran
  EXPECT_EQ(ran.load(), 32);
}

TEST(ThreadPool, SingleWorkerRunsFifo) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i) {
    futures.push_back(pool.submit([&order, i] { order.push_back(i); }));
  }
  for (auto& f : futures) f.get();
  std::vector<int> expect(16);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(ThreadPool, RejectsNonPositiveSize) {
  EXPECT_THROW(ThreadPool(0), CheckError);
  EXPECT_THROW(ThreadPool(-3), CheckError);
}

TEST(ThreadPool, HardwareThreadsAtLeastOne) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

}  // namespace
}  // namespace sgprs::common
