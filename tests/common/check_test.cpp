#include "common/check.hpp"

#include <gtest/gtest.h>

namespace sgprs::common {
namespace {

TEST(Check, PassingCheckIsSilent) {
  EXPECT_NO_THROW(SGPRS_CHECK(1 + 1 == 2));
}

TEST(Check, FailingCheckThrowsWithLocation) {
  try {
    SGPRS_CHECK(false);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("check_test.cpp"),
              std::string::npos);
  }
}

TEST(Check, MessageIsIncluded) {
  try {
    SGPRS_CHECK_MSG(2 < 1, "the answer is " << 42);
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("the answer is 42"),
              std::string::npos);
  }
}

TEST(Check, SideEffectsEvaluatedOnce) {
  int calls = 0;
  auto bump = [&calls] {
    ++calls;
    return true;
  };
  SGPRS_CHECK(bump());
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace sgprs::common
