#include "metrics/collector.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"

namespace sgprs::metrics {
namespace {

using common::SimTime;

TEST(Collector, CountsOnTimeAndLate) {
  Collector c;
  c.on_release(0, SimTime::from_ms(0));
  c.on_complete(0, SimTime::from_ms(0), SimTime::from_ms(33),
                SimTime::from_ms(10));  // on time
  c.on_release(0, SimTime::from_ms(33));
  c.on_complete(0, SimTime::from_ms(33), SimTime::from_ms(66),
                SimTime::from_ms(100));  // late
  const auto s = c.aggregate(SimTime::from_sec(1));
  EXPECT_EQ(s.counts.released, 2);
  EXPECT_EQ(s.counts.on_time, 1);
  EXPECT_EQ(s.counts.late, 1);
  EXPECT_DOUBLE_EQ(s.fps, 2.0);
  EXPECT_DOUBLE_EQ(s.fps_on_time, 1.0);
  EXPECT_DOUBLE_EQ(s.dmr, 0.5);
}

TEST(Collector, CompletionExactlyAtDeadlineIsOnTime) {
  Collector c;
  c.on_release(0, SimTime::zero());
  c.on_complete(0, SimTime::zero(), SimTime::from_ms(33),
                SimTime::from_ms(33));
  EXPECT_EQ(c.aggregate(SimTime::from_sec(1)).counts.on_time, 1);
}

TEST(Collector, DropsCountTowardDmr) {
  Collector c;
  for (int i = 0; i < 4; ++i) c.on_release(0, SimTime::from_ms(i));
  c.on_drop(0, SimTime::from_ms(1));
  c.on_drop(0, SimTime::from_ms(2));
  c.on_complete(0, SimTime::from_ms(0), SimTime::from_ms(40),
                SimTime::from_ms(10));
  c.on_complete(0, SimTime::from_ms(3), SimTime::from_ms(40),
                SimTime::from_ms(12));
  const auto s = c.aggregate(SimTime::from_sec(1));
  EXPECT_EQ(s.counts.dropped, 2);
  EXPECT_DOUBLE_EQ(s.dmr, 0.5);  // 2 drops / 4 closed
}

TEST(Collector, WarmupExcludesEarlyJobs) {
  Collector c(SimTime::from_ms(100));
  c.on_release(0, SimTime::from_ms(50));  // pre-warm-up: ignored
  c.on_complete(0, SimTime::from_ms(50), SimTime::from_ms(90),
                SimTime::from_ms(80));
  c.on_release(0, SimTime::from_ms(150));
  c.on_complete(0, SimTime::from_ms(150), SimTime::from_ms(200),
                SimTime::from_ms(160));
  const auto s = c.aggregate(SimTime::from_ms(1100));
  EXPECT_EQ(s.counts.released, 1);
  EXPECT_EQ(s.counts.completed(), 1);
  EXPECT_DOUBLE_EQ(s.fps, 1.0);  // window is exactly one second
}

TEST(Collector, JobReleasedAtWarmupBoundaryCounts) {
  Collector c(SimTime::from_ms(100));
  c.on_release(0, SimTime::from_ms(100));
  EXPECT_EQ(c.aggregate(SimTime::from_ms(200)).counts.released, 1);
}

TEST(Collector, LatencyStatistics) {
  Collector c;
  for (int i = 1; i <= 100; ++i) {
    const auto rel = SimTime::from_ms(i);
    c.on_release(0, rel);
    c.on_complete(0, rel, rel + SimTime::from_ms(1000),
                  rel + SimTime::from_ms(i));  // latency = i ms
  }
  const auto s = c.aggregate(SimTime::from_sec(2));
  EXPECT_NEAR(s.mean_latency_ms, 50.5, 1e-9);
  EXPECT_NEAR(s.p50_latency_ms, 50.5, 1.0);
  EXPECT_NEAR(s.p99_latency_ms, 99.0, 1.1);
  EXPECT_DOUBLE_EQ(s.max_latency_ms, 100.0);
}

TEST(Collector, PerTaskSeparation) {
  Collector c;
  c.on_release(1, SimTime::zero());
  c.on_complete(1, SimTime::zero(), SimTime::from_ms(10),
                SimTime::from_ms(5));
  c.on_release(2, SimTime::zero());
  c.on_drop(2, SimTime::zero());
  const auto end = SimTime::from_sec(1);
  EXPECT_DOUBLE_EQ(c.per_task(1, end).dmr, 0.0);
  EXPECT_DOUBLE_EQ(c.per_task(2, end).dmr, 1.0);
  EXPECT_EQ(c.task_ids(), (std::vector<int>{1, 2}));
  EXPECT_THROW(c.per_task(3, end), common::CheckError);
}

TEST(Collector, AggregatePoolsAcrossTasks) {
  Collector c;
  for (int t = 0; t < 3; ++t) {
    c.on_release(t, SimTime::zero());
    c.on_complete(t, SimTime::zero(), SimTime::from_ms(100),
                  SimTime::from_ms(10 * (t + 1)));
  }
  const auto s = c.aggregate(SimTime::from_sec(1));
  EXPECT_EQ(s.counts.completed(), 3);
  EXPECT_NEAR(s.mean_latency_ms, 20.0, 1e-9);
  EXPECT_DOUBLE_EQ(s.max_latency_ms, 30.0);
}

TEST(Collector, EmptyWindowThrows) {
  Collector c(SimTime::from_sec(1));
  EXPECT_THROW(c.aggregate(SimTime::from_sec(1)), common::CheckError);
}

TEST(Collector, NoEventsGivesZeroSnapshot) {
  Collector c;
  const auto s = c.aggregate(SimTime::from_sec(1));
  EXPECT_EQ(s.counts.released, 0);
  EXPECT_DOUBLE_EQ(s.fps, 0.0);
  EXPECT_DOUBLE_EQ(s.dmr, 0.0);
}

}  // namespace
}  // namespace sgprs::metrics
