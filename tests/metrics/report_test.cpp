#include "metrics/report.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"

namespace sgprs::metrics {
namespace {

TEST(Table, AlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"a", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), common::CheckError);
}

TEST(Table, FmtAndPct) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(750.0, 0), "750");
  EXPECT_EQ(Table::pct(0.385, 1), "38.5%");
  EXPECT_EQ(Table::pct(0.0), "0.0%");
}

TEST(Table, EmptyHeadersThrow) {
  EXPECT_THROW(Table({}), common::CheckError);
}

TEST(Table, NumbersRightAlignedFirstColumnLeft) {
  Table t({"row", "v"});
  t.add_row({"x", "123"});
  std::ostringstream os;
  t.print(os);
  // The value column header "v" is right-aligned against width 3.
  EXPECT_NE(os.str().find("row    v"), std::string::npos);
}

}  // namespace
}  // namespace sgprs::metrics
