#include "metrics/utilization.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "gpu/executor.hpp"
#include "sim/engine.hpp"

namespace sgprs::metrics {
namespace {

using common::SimTime;

gpu::KernelDesc k() {
  gpu::KernelDesc d;
  d.op = gpu::OpClass::kConv;
  return d;
}

TEST(Utilization, SingleKernelBusyFraction) {
  UtilizationTracker u;
  u.on_kernel_start(SimTime::from_ms(10), 0, 0, k());
  u.on_kernel_end(SimTime::from_ms(30), 0, 0, k());
  // Busy 20 ms of a 100 ms window.
  EXPECT_NEAR(u.context_busy_fraction(0, SimTime::zero(),
                                      SimTime::from_ms(100)),
              0.2, 1e-12);
}

TEST(Utilization, OverlappingKernelsCountOnceForBusy) {
  UtilizationTracker u;
  u.on_kernel_start(SimTime::from_ms(0), 0, 0, k());
  u.on_kernel_start(SimTime::from_ms(5), 0, 1, k());
  u.on_kernel_end(SimTime::from_ms(10), 0, 0, k());
  u.on_kernel_end(SimTime::from_ms(20), 0, 1, k());
  EXPECT_NEAR(u.context_busy_fraction(0, SimTime::zero(),
                                      SimTime::from_ms(20)),
              1.0, 1e-12);
  // Mean concurrency: (5ms*1 + 5ms*2 + 10ms*1) / 20ms = 1.25.
  EXPECT_NEAR(u.mean_concurrency(0, SimTime::zero(), SimTime::from_ms(20)),
              1.25, 1e-12);
}

TEST(Utilization, WindowClipsPartialOverlap) {
  UtilizationTracker u;
  u.on_kernel_start(SimTime::from_ms(0), 0, 0, k());
  u.on_kernel_end(SimTime::from_ms(50), 0, 0, k());
  // Window [40, 60]: busy only during [40, 50].
  EXPECT_NEAR(u.context_busy_fraction(0, SimTime::from_ms(40),
                                      SimTime::from_ms(60)),
              0.5, 1e-12);
}

TEST(Utilization, OpenTailCountsAsRunning) {
  UtilizationTracker u;
  u.on_kernel_start(SimTime::from_ms(10), 0, 0, k());
  // Never ends: busy from 10 onward.
  EXPECT_NEAR(u.context_busy_fraction(0, SimTime::zero(),
                                      SimTime::from_ms(20)),
              0.5, 1e-12);
}

TEST(Utilization, ContextsIndependent) {
  UtilizationTracker u;
  u.on_kernel_start(SimTime::zero(), 0, 0, k());
  u.on_kernel_end(SimTime::from_ms(10), 0, 0, k());
  u.on_kernel_start(SimTime::zero(), 1, 0, k());
  u.on_kernel_end(SimTime::from_ms(40), 1, 0, k());
  const auto w = SimTime::from_ms(40);
  EXPECT_NEAR(u.context_busy_fraction(0, SimTime::zero(), w), 0.25, 1e-12);
  EXPECT_NEAR(u.context_busy_fraction(1, SimTime::zero(), w), 1.0, 1e-12);
  EXPECT_EQ(u.contexts(), (std::vector<int>{0, 1}));
}

TEST(Utilization, UnseenContextIsZero) {
  UtilizationTracker u;
  EXPECT_DOUBLE_EQ(u.context_busy_fraction(5, SimTime::zero(),
                                           SimTime::from_ms(1)),
                   0.0);
}

TEST(Utilization, EndWithoutStartThrows) {
  UtilizationTracker u;
  EXPECT_THROW(u.on_kernel_end(SimTime::zero(), 0, 0, k()),
               common::CheckError);
}

TEST(Utilization, IntegratesWithExecutor) {
  sim::Engine engine;
  gpu::SharingParams sp;
  sp.interference_gamma = 0.0;
  sp.oversub_thrash_kappa = 0.0;
  sp.contention_exponent = 1.0;
  gpu::Executor exec(engine, gpu::rtx2080ti(),
                     gpu::SpeedupModel::rtx2080ti(), sp);
  UtilizationTracker u;
  exec.set_trace_sink(&u);
  const auto ctx = exec.create_context(68);
  const auto s = exec.create_stream(ctx, gpu::StreamPriority::kHigh);
  gpu::KernelDesc kd;
  kd.op = gpu::OpClass::kConv;
  kd.work_sm_seconds = 32.0;  // exactly 1 s at 68 SMs (32x speedup)
  exec.enqueue(s, kd, {});
  engine.run_until(SimTime::from_sec(2));
  EXPECT_NEAR(u.context_busy_fraction(ctx, SimTime::zero(),
                                      SimTime::from_sec(2)),
              0.5, 1e-6);
}

TEST(Utilization, InvalidWindowThrows) {
  UtilizationTracker u;
  EXPECT_THROW(
      u.context_busy_fraction(0, SimTime::from_ms(2), SimTime::from_ms(1)),
      common::CheckError);
}

}  // namespace
}  // namespace sgprs::metrics
