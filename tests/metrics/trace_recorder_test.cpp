#include "metrics/trace_recorder.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "common/check.hpp"

namespace sgprs::metrics {
namespace {

using common::SimTime;

gpu::KernelDesc kernel(const std::string& label, std::uint64_t tag = 0) {
  gpu::KernelDesc k;
  k.op = gpu::OpClass::kConv;
  k.label = label;
  k.tag = tag;
  return k;
}

TEST(TraceRecorder, PairsStartEnd) {
  TraceRecorder rec;
  rec.on_kernel_start(SimTime::from_us(10), 0, 0, kernel("conv1"));
  rec.on_kernel_end(SimTime::from_us(25), 0, 0, kernel("conv1"));
  EXPECT_EQ(rec.event_count(), 1u);
}

TEST(TraceRecorder, JsonContainsCompleteEvent) {
  TraceRecorder rec;
  rec.on_kernel_start(SimTime::from_us(10), 1, 2, kernel("conv1", 7));
  rec.on_kernel_end(SimTime::from_us(30), 1, 2, kernel("conv1", 7));
  std::ostringstream os;
  rec.write_json(os);
  const std::string json = os.str();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"conv1\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":10"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":20"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":2"), std::string::npos);
  EXPECT_NE(json.find("\"job\":7"), std::string::npos);
}

TEST(TraceRecorder, ConcurrentStreamsTrackedIndependently) {
  TraceRecorder rec;
  rec.on_kernel_start(SimTime::from_us(0), 0, 0, kernel("a"));
  rec.on_kernel_start(SimTime::from_us(5), 0, 1, kernel("b"));
  rec.on_kernel_end(SimTime::from_us(20), 0, 1, kernel("b"));
  rec.on_kernel_end(SimTime::from_us(30), 0, 0, kernel("a"));
  EXPECT_EQ(rec.event_count(), 2u);
}

TEST(TraceRecorder, DoubleStartOnStreamThrows) {
  TraceRecorder rec;
  rec.on_kernel_start(SimTime::zero(), 0, 0, kernel("a"));
  EXPECT_THROW(rec.on_kernel_start(SimTime::zero(), 0, 0, kernel("b")),
               common::CheckError);
}

TEST(TraceRecorder, EndWithoutStartThrows) {
  TraceRecorder rec;
  EXPECT_THROW(rec.on_kernel_end(SimTime::zero(), 0, 0, kernel("a")),
               common::CheckError);
}

TEST(TraceRecorder, UnlabelledKernelFallsBackToOpName) {
  TraceRecorder rec;
  gpu::KernelDesc k;
  k.op = gpu::OpClass::kMaxPool;
  rec.on_kernel_start(SimTime::zero(), 0, 0, k);
  rec.on_kernel_end(SimTime::from_us(1), 0, 0, k);
  std::ostringstream os;
  rec.write_json(os);
  EXPECT_NE(os.str().find("\"name\":\"maxpool\""), std::string::npos);
}

TEST(TraceRecorder, ClearResetsEvents) {
  TraceRecorder rec;
  rec.on_kernel_start(SimTime::zero(), 0, 0, kernel("a"));
  rec.on_kernel_end(SimTime::from_us(1), 0, 0, kernel("a"));
  rec.clear();
  EXPECT_EQ(rec.event_count(), 0u);
}

}  // namespace
}  // namespace sgprs::metrics
