#include "dnn/profiler.hpp"

#include <gtest/gtest.h>

#include "dnn/builders.hpp"

namespace sgprs::dnn {
namespace {

class ProfilerTest : public ::testing::Test {
 protected:
  ProfilerTest()
      : prof_(gpu::rtx2080ti(), gpu::SpeedupModel::rtx2080ti(),
              CostModel::calibrated()) {}
  Profiler prof_;
};

TEST_F(ProfilerTest, LayerTimeDecreasesWithSms) {
  const auto net = resnet18();
  const auto& conv1 = net.layer(0);
  const auto t1 = prof_.layer_time(conv1, 1);
  const auto t34 = prof_.layer_time(conv1, 34);
  const auto t68 = prof_.layer_time(conv1, 68);
  EXPECT_GT(t1, t34);
  EXPECT_GT(t34, t68);
}

TEST_F(ProfilerTest, StageTimeIsSumOfLayerTimes) {
  const auto net = resnet18();
  const auto plan =
      partition_into_stages(net, prof_.cost_model(), 6);
  common::SimTime sum = common::SimTime::zero();
  for (NodeId id : plan.stages[2]) {
    sum += prof_.layer_time(net.layer(id), 23);
  }
  EXPECT_EQ(prof_.stage_time(net, plan.stages[2], 23), sum);
}

TEST_F(ProfilerTest, WcetTableCoversAllStagesAndSizes) {
  const auto net = resnet18();
  const auto plan = partition_into_stages(net, prof_.cost_model(), 6);
  const auto table = prof_.profile(net, plan, {23, 34, 45, 51, 68});
  EXPECT_EQ(table.stage_count(), 6);
  for (int s = 0; s < 6; ++s) {
    for (int sms : {23, 34, 45, 51, 68}) {
      EXPECT_GT(table.stage_at(s, sms).ns, 0);
    }
  }
  // Totals are stage sums.
  for (int sms : {23, 68}) {
    common::SimTime sum = common::SimTime::zero();
    for (int s = 0; s < 6; ++s) sum += table.stage_at(s, sms);
    EXPECT_EQ(table.total_at(sms), sum);
  }
}

TEST_F(ProfilerTest, UnprofiledSmSizeThrows) {
  const auto net = resnet18();
  const auto plan = partition_into_stages(net, prof_.cost_model(), 2);
  const auto table = prof_.profile(net, plan, {34});
  EXPECT_THROW(table.stage_at(0, 17), common::CheckError);
  EXPECT_THROW(table.total_at(68), common::CheckError);
}

TEST_F(ProfilerTest, AnalyticMatchesSimulatedIsolation) {
  // The analytic WCET must agree with actually running the kernels through
  // the executor in an isolated context — this pins the two code paths
  // together, like validating a model against the testbed.
  const auto net = resnet18();
  const auto plan = partition_into_stages(net, prof_.cost_model(), 6);
  for (int sms : {23, 34, 68}) {
    for (int s = 0; s < plan.stage_count(); ++s) {
      const auto analytic = prof_.stage_time(net, plan.stages[s], sms);
      const auto simulated =
          prof_.stage_time_simulated(net, plan.stages[s], sms);
      EXPECT_NEAR(simulated.to_sec(), analytic.to_sec(),
                  1e-6 * analytic.to_sec() + 1e-6)
          << "stage " << s << " at " << sms << " SMs";
    }
  }
}

TEST_F(ProfilerTest, NetworkSpeedupReproducesFig1Shape) {
  const auto net = resnet18();
  // Monotone increasing in SMs...
  double prev = 0.0;
  for (int sms : {1, 2, 4, 8, 17, 34, 51, 68}) {
    const double s = prof_.network_speedup(net, sms);
    EXPECT_GT(s, prev);
    prev = s;
  }
  // ...but bounded by the conv curve (conv is the best-scaling op).
  EXPECT_LT(prev, 32.0);
}

TEST_F(ProfilerTest, MlpScalesWorstOfTheZoo) {
  // An MLP has no convs, so its end-to-end speedup should be far below
  // ResNet18's — the paper's Fig. 1 point that "other operations" cap out.
  const double mlp = prof_.network_speedup(mlp3(), 68);
  const double res = prof_.network_speedup(resnet18(), 68);
  EXPECT_LT(mlp, 8.0);
  EXPECT_GT(res, 2.0 * mlp);
}

}  // namespace
}  // namespace sgprs::dnn
