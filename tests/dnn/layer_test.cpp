#include "dnn/layer.hpp"

#include <gtest/gtest.h>

#include "gpu/calibration.hpp"

namespace sgprs::dnn {
namespace {

TEST(Flops, Conv2dKnownValue) {
  // 3x224x224 input, 64 output channels, 7x7 kernel, stride 2, pad 3:
  // out 112x112, per-output 2*7*7*3 = 294 -> 294 * 64 * 112*112.
  const TensorShape in{3, 224, 224};
  EXPECT_DOUBLE_EQ(conv2d_flops(in, 64, 7, 2, 3),
                   294.0 * 64 * 112 * 112);
}

TEST(Flops, Conv1x1IsChannelMixing) {
  const TensorShape in{64, 56, 56};
  EXPECT_DOUBLE_EQ(conv2d_flops(in, 128, 1, 1, 0),
                   2.0 * 64 * 128 * 56 * 56);
}

TEST(Flops, GroupedConvDividesInputChannels) {
  const TensorShape in{64, 56, 56};
  EXPECT_DOUBLE_EQ(conv2d_flops(in, 64, 3, 1, 1, 64),
                   depthwise_conv_flops(in, 3, 1, 1));
  EXPECT_DOUBLE_EQ(conv2d_flops(in, 64, 3, 1, 1, 4),
                   conv2d_flops(in, 64, 3, 1, 1) / 4.0);
}

TEST(Flops, InvalidGroupsThrow) {
  const TensorShape in{64, 56, 56};
  EXPECT_THROW(conv2d_flops(in, 64, 3, 1, 1, 7), common::CheckError);
}

TEST(Flops, PoolCountsWindow) {
  const TensorShape in{64, 112, 112};
  // 3x3 stride 2 pad 1 -> 56x56 outputs.
  EXPECT_DOUBLE_EQ(pool_flops(in, 3, 2, 1), 9.0 * 64 * 56 * 56);
}

TEST(Flops, ElementwiseOps) {
  const TensorShape in{8, 4, 4};
  EXPECT_DOUBLE_EQ(relu_flops(in), 128.0);
  EXPECT_DOUBLE_EQ(add_flops(in), 128.0);
  EXPECT_DOUBLE_EQ(batchnorm_flops(in), 256.0);
  EXPECT_DOUBLE_EQ(global_avgpool_flops(in), 128.0);
}

TEST(Flops, LinearAndSoftmax) {
  EXPECT_DOUBLE_EQ(linear_flops(512, 1000), 2.0 * 512 * 1000);
  EXPECT_DOUBLE_EQ(softmax_flops(1000), 5000.0);
}

TEST(Shape, ConvOutDimFormula) {
  EXPECT_EQ(conv_out_dim(224, 7, 2, 3), 112);
  EXPECT_EQ(conv_out_dim(56, 3, 1, 1), 56);
  EXPECT_EQ(conv_out_dim(56, 1, 2, 0), 28);
  EXPECT_THROW(conv_out_dim(2, 5, 1, 0), common::CheckError);
}

TEST(CostModel, WorkSecondsUsesPerOpThroughput) {
  const auto cm = CostModel::calibrated();
  Layer l;
  l.op = gpu::OpClass::kConv;
  l.flops = gpu::calibration::kGflopsPerSm[0] * 1e9;  // 1 s at conv 1-SM rate
  EXPECT_NEAR(cm.work_seconds(l), 1.0, 1e-12);
}

TEST(CostModel, KernelCarriesOverheadAndTag) {
  const auto cm = CostModel::calibrated();
  Layer l;
  l.name = "conv1";
  l.op = gpu::OpClass::kConv;
  l.flops = 1e9;
  const auto k = cm.kernel_for(l, 99);
  EXPECT_EQ(k.op, gpu::OpClass::kConv);
  EXPECT_DOUBLE_EQ(k.overhead_seconds,
                   gpu::calibration::kLaunchOverheadSec);
  EXPECT_EQ(k.tag, 99u);
  EXPECT_EQ(k.label, "conv1");
  EXPECT_GT(k.work_sm_seconds, 0.0);
}

}  // namespace
}  // namespace sgprs::dnn
