#include "dnn/builders.hpp"

#include <gtest/gtest.h>

namespace sgprs::dnn {
namespace {

int count_op(const Network& n, gpu::OpClass op) {
  int c = 0;
  for (int i = 0; i < n.node_count(); ++i) {
    if (n.layer(i).op == op) ++c;
  }
  return c;
}

TEST(Resnet18, TotalFlopsMatchesLiterature) {
  // torchvision reports ~1.82 GMACs for ResNet18 @ 224; we count a MAC as
  // 2 FLOPs, so expect ~3.64e9.
  const auto net = resnet18();
  EXPECT_GE(net.total_flops(), 3.4e9);
  EXPECT_LE(net.total_flops(), 3.9e9);
}

TEST(Resnet18, LayerInventory) {
  const auto net = resnet18();
  // 1 stem + 16 block convs + 3 downsample projections = 20 convs.
  EXPECT_EQ(count_op(net, gpu::OpClass::kConv), 20);
  EXPECT_EQ(count_op(net, gpu::OpClass::kMaxPool), 1);
  EXPECT_EQ(count_op(net, gpu::OpClass::kAdd), 8);  // one per basic block
  EXPECT_EQ(count_op(net, gpu::OpClass::kLinear), 1);
}

TEST(Resnet18, SingleOutput) {
  const auto net = resnet18();
  EXPECT_EQ(net.outputs().size(), 1u);
  EXPECT_EQ(net.layer(net.outputs()[0]).name, "fc");
}

TEST(Resnet18, FinalFeatureShape) {
  const auto net = resnet18();
  // The layer before avgpool outputs 512x7x7 (standard ResNet18 @ 224).
  for (int i = 0; i < net.node_count(); ++i) {
    if (net.layer(i).name == "layer4.1.relu2") {
      EXPECT_EQ(net.layer(i).out_shape, (TensorShape{512, 7, 7}));
      return;
    }
  }
  FAIL() << "layer4.1.relu2 not found";
}

TEST(Resnet34, DeeperThanResnet18) {
  const auto n18 = resnet18();
  const auto n34 = resnet34();
  EXPECT_GT(n34.node_count(), n18.node_count());
  EXPECT_GT(n34.total_flops(), 1.9 * n18.total_flops())
      << "ResNet34 is roughly 2x the FLOPs of ResNet18";
  // 16 blocks x 2 convs + 1 stem + 3 downsample projections.
  EXPECT_EQ(count_op(n34, gpu::OpClass::kConv), 36);
}

TEST(Vgg11, ConvAndLinearHeavy) {
  const auto net = vgg11();
  EXPECT_EQ(count_op(net, gpu::OpClass::kConv), 8);
  EXPECT_EQ(count_op(net, gpu::OpClass::kLinear), 3);
  EXPECT_EQ(count_op(net, gpu::OpClass::kAdd), 0) << "no residuals in VGG";
  // VGG-11 @224 is ~15.2 GFLOPs; ours omits nothing big.
  EXPECT_GE(net.total_flops(), 13e9);
  EXPECT_LE(net.total_flops(), 17e9);
}

TEST(MobilenetLike, MostlyCheapKernels) {
  const auto net = mobilenet_like();
  // Depthwise+pointwise pairs: 1 stem + 26 convs.
  EXPECT_EQ(count_op(net, gpu::OpClass::kConv), 27);
  // ~1.1-1.2 GFLOPs for MobileNetV1-ish @224.
  EXPECT_GE(net.total_flops(), 0.9e9);
  EXPECT_LE(net.total_flops(), 1.4e9);
}

TEST(Lenet5, TinyNetwork) {
  const auto net = lenet5();
  EXPECT_LT(net.total_flops(), 2e6);
  EXPECT_EQ(net.outputs().size(), 1u);
}

TEST(Mlp3, PureLinearChainAllowsCutsEverywhere) {
  const auto net = mlp3();
  for (int p = 0; p + 1 < net.node_count(); ++p) {
    EXPECT_TRUE(net.cut_allowed_after(p)) << "position " << p;
  }
}

TEST(AllBuilders, ShapesPropagateWithoutError) {
  // Constructing each net exercises every shape computation.
  EXPECT_GT(resnet18().node_count(), 0);
  EXPECT_GT(resnet34().node_count(), 0);
  EXPECT_GT(vgg11().node_count(), 0);
  EXPECT_GT(mobilenet_like().node_count(), 0);
  EXPECT_GT(lenet5().node_count(), 0);
  EXPECT_GT(mlp3().node_count(), 0);
}

TEST(AllBuilders, EveryLayerHasPositiveFlops) {
  for (const auto& net : {resnet18(), vgg11(), mobilenet_like(), lenet5()}) {
    for (int i = 0; i < net.node_count(); ++i) {
      EXPECT_GT(net.layer(i).flops, 0.0)
          << net.name() << "/" << net.layer(i).name;
    }
  }
}

TEST(Resnet18, InputResolutionScalesFlops) {
  const auto small = resnet18(112);
  const auto big = resnet18(224);
  // Roughly 4x the spatial work at 2x the resolution.
  EXPECT_NEAR(big.total_flops() / small.total_flops(), 4.0, 0.5);
}

}  // namespace
}  // namespace sgprs::dnn
