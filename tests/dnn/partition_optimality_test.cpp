// Verifies the partition DP against exhaustive enumeration on small
// networks: the DP's bottleneck stage work must equal the true optimum
// over every legal cut combination.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "dnn/builders.hpp"
#include "dnn/partition.hpp"

namespace sgprs::dnn {
namespace {

double bottleneck_of(const Network& net, const CostModel& cost,
                     const StagePlan& plan) {
  double mx = 0.0;
  for (const auto& st : plan.stages) {
    mx = std::max(mx, stage_work_seconds(net, cost, st));
  }
  return mx;
}

/// Exhaustive optimal bottleneck: choose up to k-1 cuts from the legal cut
/// set, minimizing the max segment work.
double brute_force_bottleneck(const Network& net, const CostModel& cost,
                              int k) {
  std::vector<int> cuts;
  for (int p = 0; p + 1 < net.node_count(); ++p) {
    if (net.cut_allowed_after(p)) cuts.push_back(p);
  }
  std::vector<double> prefix(net.node_count() + 1, 0.0);
  for (int i = 0; i < net.node_count(); ++i) {
    prefix[i + 1] = prefix[i] + cost.work_seconds(net.layer(i));
  }
  double best = prefix.back();  // one stage
  const int m = static_cast<int>(cuts.size());
  // Enumerate subsets of cut positions of size < k via bitmask (small m).
  SGPRS_CHECK(m <= 20);
  for (std::uint32_t mask = 0; mask < (1u << m); ++mask) {
    if (__builtin_popcount(mask) >= k) continue;
    double mx = 0.0;
    int lo = 0;
    for (int i = 0; i < m; ++i) {
      if (mask & (1u << i)) {
        mx = std::max(mx, prefix[cuts[i] + 1] - prefix[lo]);
        lo = cuts[i] + 1;
      }
    }
    mx = std::max(mx, prefix[net.node_count()] - prefix[lo]);
    best = std::min(best, mx);
  }
  return best;
}

/// Random linear-chain network with lumpy per-layer costs.
Network random_chain(common::Rng& rng, int nodes) {
  Network net("chain");
  for (int i = 0; i < nodes; ++i) {
    Layer l;
    l.name = "n" + std::to_string(i);
    l.op = gpu::OpClass::kConv;
    // FLOPs spread over two orders of magnitude makes balance non-trivial.
    l.flops = 1e8 * std::pow(10.0, rng.uniform(0.0, 2.0));
    l.out_shape = {1, 1, 1};
    net.add(std::move(l), i == 0 ? std::vector<NodeId>{}
                                 : std::vector<NodeId>{i - 1});
  }
  return net;
}

class PartitionOptimality
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PartitionOptimality, DpMatchesBruteForce) {
  const auto [seed, nodes, k] = GetParam();
  common::Rng rng(static_cast<std::uint64_t>(seed));
  const auto net = random_chain(rng, nodes);
  const auto cost = CostModel::calibrated();
  const auto plan = partition_into_stages(net, cost, k);
  const double dp = bottleneck_of(net, cost, plan);
  const double brute = brute_force_bottleneck(net, cost, k);
  EXPECT_NEAR(dp, brute, 1e-12 + 1e-9 * brute)
      << "DP must be optimal for " << nodes << " nodes, " << k << " stages";
}

INSTANTIATE_TEST_SUITE_P(
    RandomChains, PartitionOptimality,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(6, 10, 14),
                       ::testing::Values(2, 3, 5, 7)));

TEST(PartitionOptimality, LenetExactOptimum) {
  // LeNet-5 is a pure chain: brute force is feasible and the DP must hit
  // the optimum for every stage count.
  const auto net = lenet5();
  const auto cost = CostModel::calibrated();
  for (int k = 1; k <= net.node_count(); ++k) {
    const auto plan = partition_into_stages(net, cost, k);
    EXPECT_NEAR(bottleneck_of(net, cost, plan),
                brute_force_bottleneck(net, cost, k), 1e-15)
        << "k=" << k;
  }
}

TEST(PartitionOptimality, BottleneckMonotoneInStageCount) {
  // More stages can never worsen the optimal bottleneck.
  const auto net = resnet18();
  const auto cost = CostModel::calibrated();
  double prev = 1e18;
  for (int k : {1, 2, 3, 4, 6, 8, 12}) {
    const auto plan = partition_into_stages(net, cost, k);
    const double b = bottleneck_of(net, cost, plan);
    EXPECT_LE(b, prev + 1e-12) << "k=" << k;
    prev = b;
  }
}

}  // namespace
}  // namespace sgprs::dnn
