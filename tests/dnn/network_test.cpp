#include "dnn/network.hpp"

#include <gtest/gtest.h>

namespace sgprs::dnn {
namespace {

Layer make_layer(const std::string& name, double flops = 1.0) {
  Layer l;
  l.name = name;
  l.op = gpu::OpClass::kConv;
  l.flops = flops;
  l.out_shape = {1, 1, 1};
  return l;
}

TEST(Network, AddBuildsEdges) {
  Network n("t");
  const auto a = n.add(make_layer("a"), {});
  const auto b = n.add(make_layer("b"), {a});
  const auto c = n.add(make_layer("c"), {a, b});
  EXPECT_EQ(n.node_count(), 3);
  EXPECT_TRUE(n.preds(a).empty());
  EXPECT_EQ(n.preds(c), (std::vector<NodeId>{a, b}));
  EXPECT_EQ(n.succs(a), (std::vector<NodeId>{b, c}));
  EXPECT_TRUE(n.succs(c).empty());
}

TEST(Network, ForwardReferenceThrows) {
  Network n("t");
  EXPECT_THROW(n.add(make_layer("a"), {0}), common::CheckError);  // self
  n.add(make_layer("a"), {});
  EXPECT_THROW(n.add(make_layer("b"), {5}), common::CheckError);
}

TEST(Network, OutputsAreSinkNodes) {
  Network n("t");
  const auto a = n.add(make_layer("a"), {});
  const auto b = n.add(make_layer("b"), {a});
  n.add(make_layer("c"), {b});
  const auto outs = n.outputs();
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_EQ(outs[0], 2);
}

TEST(Network, TotalFlopsSums) {
  Network n("t");
  n.add(make_layer("a", 10.0), {});
  n.add(make_layer("b", 32.0), {0});
  EXPECT_DOUBLE_EQ(n.total_flops(), 42.0);
}

TEST(Network, CutAllowedOnLinearChain) {
  Network n("chain");
  n.add(make_layer("a"), {});
  n.add(make_layer("b"), {0});
  n.add(make_layer("c"), {1});
  EXPECT_TRUE(n.cut_allowed_after(0));
  EXPECT_TRUE(n.cut_allowed_after(1));
  EXPECT_FALSE(n.cut_allowed_after(2)) << "no cut after the last node";
}

TEST(Network, CutForbiddenInsideResidualBlock) {
  // a -> b -> add(a,b): cutting after `a` is legal (both b and add consume
  // a's single output tensor), but cutting after `b` would tear the skip
  // edge a->add, so it is forbidden.
  Network n("res");
  const auto a = n.add(make_layer("a"), {});
  const auto b = n.add(make_layer("b"), {a});
  n.add(make_layer("add"), {a, b});
  EXPECT_TRUE(n.cut_allowed_after(0)) << "suffix depends on a's tensor only";
  EXPECT_FALSE(n.cut_allowed_after(1)) << "skip edge a->add crosses";
}

TEST(Network, CutAllowedAtBlockBoundary) {
  // Residual block (a,b,add) followed by d: cutting after the add is legal.
  Network n("res");
  const auto a = n.add(make_layer("a"), {});
  const auto b = n.add(make_layer("b"), {a});
  const auto add = n.add(make_layer("add"), {a, b});
  n.add(make_layer("d"), {add});
  EXPECT_TRUE(n.cut_allowed_after(2));
}

TEST(Network, TopoOrderIsInsertionOrder) {
  Network n("t");
  n.add(make_layer("a"), {});
  n.add(make_layer("b"), {0});
  const auto order = n.topo_order();
  EXPECT_EQ(order, (std::vector<NodeId>{0, 1}));
}

}  // namespace
}  // namespace sgprs::dnn
