#include "dnn/partition.hpp"

#include <gtest/gtest.h>

#include <set>

#include "dnn/builders.hpp"

namespace sgprs::dnn {
namespace {

class PartitionTest : public ::testing::Test {
 protected:
  CostModel cost_ = CostModel::calibrated();
};

void expect_valid_partition(const Network& net, const StagePlan& plan) {
  // Every node exactly once, stages contiguous and in order.
  std::set<NodeId> seen;
  NodeId expected = 0;
  for (const auto& stage : plan.stages) {
    ASSERT_FALSE(stage.empty());
    for (NodeId id : stage) {
      EXPECT_EQ(id, expected++) << "stages must tile the topo order";
      EXPECT_TRUE(seen.insert(id).second);
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), net.node_count());
}

TEST_F(PartitionTest, Resnet18SixStagesPaperSetup) {
  const auto net = resnet18();
  const auto plan = partition_into_stages(net, cost_, 6);
  ASSERT_EQ(plan.stage_count(), 6);
  expect_valid_partition(net, plan);
}

TEST_F(PartitionTest, StagesRespectResidualBlocks) {
  const auto net = resnet18();
  const auto plan = partition_into_stages(net, cost_, 6);
  // Boundary validity: each stage boundary is a legal cut of the DAG.
  int pos = -1;
  for (int s = 0; s + 1 < plan.stage_count(); ++s) {
    pos += static_cast<int>(plan.stages[s].size());
    EXPECT_TRUE(net.cut_allowed_after(pos)) << "cut after node " << pos;
  }
}

TEST_F(PartitionTest, SixStagesAreReasonablyBalanced) {
  const auto net = resnet18();
  const auto plan = partition_into_stages(net, cost_, 6);
  double mx = 0.0;
  double total = 0.0;
  for (const auto& st : plan.stages) {
    const double w = stage_work_seconds(net, cost_, st);
    mx = std::max(mx, w);
    total += w;
  }
  // Bottleneck within 2.2x of the ideal equal split (ResNet18's legal cut
  // set limits what any balancer can achieve).
  EXPECT_LE(mx, 2.2 * total / 6.0);
}

TEST_F(PartitionTest, OneStageIsWholeNetwork) {
  const auto net = resnet18();
  const auto plan = partition_into_stages(net, cost_, 1);
  ASSERT_EQ(plan.stage_count(), 1);
  EXPECT_EQ(static_cast<int>(plan.stages[0].size()), net.node_count());
}

TEST_F(PartitionTest, RequestingMoreStagesThanCutsSaturates) {
  const auto net = lenet5();  // 11 linear-chain nodes -> at most 11 stages
  const auto plan = partition_into_stages(net, cost_, 100);
  EXPECT_EQ(plan.stage_count(), net.node_count());
  expect_valid_partition(net, plan);
}

TEST_F(PartitionTest, DpBeatsNaiveChunkingOnBottleneck) {
  // Compare against splitting the topo order into equal node-count chunks
  // at legal boundaries (greedy), for the conv-heavy vgg11.
  const auto net = vgg11();
  const auto plan = partition_into_stages(net, cost_, 4);
  double dp_bottleneck = 0.0;
  for (const auto& st : plan.stages) {
    dp_bottleneck =
        std::max(dp_bottleneck, stage_work_seconds(net, cost_, st));
  }
  // Naive: every ceil(n/4) nodes.
  const int n = net.node_count();
  double naive_bottleneck = 0.0;
  const int chunk = (n + 3) / 4;
  for (int lo = 0; lo < n; lo += chunk) {
    std::vector<NodeId> st;
    for (int i = lo; i < std::min(n, lo + chunk); ++i) st.push_back(i);
    naive_bottleneck =
        std::max(naive_bottleneck, stage_work_seconds(net, cost_, st));
  }
  EXPECT_LE(dp_bottleneck, naive_bottleneck + 1e-12);
}

TEST_F(PartitionTest, StageKernelsMatchLayers) {
  const auto net = resnet18();
  const auto plan = partition_into_stages(net, cost_, 6);
  const auto kernels = stage_kernels(net, cost_, plan.stages[0], 42);
  ASSERT_EQ(kernels.size(), plan.stages[0].size());
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const auto& l = net.layer(plan.stages[0][i]);
    EXPECT_EQ(kernels[i].op, l.op);
    EXPECT_EQ(kernels[i].label, l.name);
    EXPECT_EQ(kernels[i].tag, 42u);
    EXPECT_NEAR(kernels[i].work_sm_seconds, cost_.work_seconds(l), 1e-15);
  }
}

// Parameterized sweep over stage counts and networks.
class PartitionSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(PartitionSweep, AlwaysProducesValidPartition) {
  const auto [net_idx, stages] = GetParam();
  const Network net = [&] {
    switch (net_idx) {
      case 0: return resnet18();
      case 1: return resnet34();
      case 2: return vgg11();
      case 3: return mobilenet_like();
      default: return lenet5();
    }
  }();
  const auto cost = CostModel::calibrated();
  const auto plan = partition_into_stages(net, cost, stages);
  EXPECT_GE(plan.stage_count(), 1);
  EXPECT_LE(plan.stage_count(), stages);
  expect_valid_partition(net, plan);
  // Work conservation: stage works sum to the network total.
  double total = 0.0;
  for (const auto& st : plan.stages) {
    total += stage_work_seconds(net, cost, st);
  }
  double expected = 0.0;
  for (int i = 0; i < net.node_count(); ++i) {
    expected += cost.work_seconds(net.layer(i));
  }
  EXPECT_NEAR(total, expected, 1e-9 * expected);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionSweep,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(1, 2, 3, 6, 12)));

}  // namespace
}  // namespace sgprs::dnn
