// Tests for the extended model zoo (ResNet50 bottlenecks, AlexNet) and
// cross-network partition/profile behaviour.
#include <gtest/gtest.h>

#include "dnn/builders.hpp"
#include "dnn/partition.hpp"
#include "dnn/profiler.hpp"

namespace sgprs::dnn {
namespace {

int count_op(const Network& n, gpu::OpClass op) {
  int c = 0;
  for (int i = 0; i < n.node_count(); ++i) {
    if (n.layer(i).op == op) ++c;
  }
  return c;
}

TEST(Resnet50, BottleneckInventory) {
  const auto net = resnet50();
  // 16 blocks x 3 convs + stem + 4 projections = 53 convs.
  EXPECT_EQ(count_op(net, gpu::OpClass::kConv), 53);
  EXPECT_EQ(count_op(net, gpu::OpClass::kAdd), 16);
  EXPECT_EQ(net.outputs().size(), 1u);
}

TEST(Resnet50, FlopsMatchLiterature) {
  // ~4.1 GMACs -> ~8.2e9 FLOPs at 2 FLOPs per MAC.
  const auto net = resnet50();
  EXPECT_GE(net.total_flops(), 7.6e9);
  EXPECT_LE(net.total_flops(), 8.8e9);
}

TEST(Resnet50, FinalFeatureChannels) {
  const auto net = resnet50();
  for (int i = 0; i < net.node_count(); ++i) {
    if (net.layer(i).name == "avgpool") {
      EXPECT_EQ(net.layer(i).out_shape, (TensorShape{2048, 1, 1}));
      return;
    }
  }
  FAIL() << "avgpool not found";
}

TEST(Alexnet, FlopsMatchLiterature) {
  // ~0.71 GMACs -> ~1.43e9 FLOPs.
  const auto net = alexnet();
  EXPECT_GE(net.total_flops(), 1.2e9);
  EXPECT_LE(net.total_flops(), 1.7e9);
}

TEST(Alexnet, LinearChainFullyCuttable) {
  const auto net = alexnet();
  int cuts = 0;
  for (int p = 0; p + 1 < net.node_count(); ++p) {
    if (net.cut_allowed_after(p)) ++cuts;
  }
  EXPECT_EQ(cuts, net.node_count() - 1) << "no residuals -> all cuts legal";
}

TEST(Alexnet, FcTailDominatesPoorScaling) {
  // AlexNet's FC layers are ~10% of FLOPs but scale at <=7x, so the
  // network's end-to-end speedup must lag ResNet18's.
  Profiler prof(gpu::rtx2080ti(), gpu::SpeedupModel::rtx2080ti(),
                CostModel::calibrated());
  EXPECT_LT(prof.network_speedup(alexnet(), 68),
            prof.network_speedup(resnet18(), 68));
}

TEST(Resnet50, PartitionsIntoSixBalancedStages) {
  const auto net = resnet50();
  const auto cost = CostModel::calibrated();
  const auto plan = partition_into_stages(net, cost, 6);
  ASSERT_EQ(plan.stage_count(), 6);
  double total = 0.0;
  double mx = 0.0;
  for (const auto& st : plan.stages) {
    const double w = stage_work_seconds(net, cost, st);
    total += w;
    mx = std::max(mx, w);
  }
  EXPECT_LE(mx, 2.5 * total / 6.0);
}

TEST(ModelZoo, RelativeCostOrdering) {
  // Full-GPU latency ordering should follow FLOPs ordering for the
  // conv-dominated nets.
  Profiler prof(gpu::rtx2080ti(), gpu::SpeedupModel::rtx2080ti(),
                CostModel::calibrated());
  auto latency = [&](const Network& n) {
    StagePlan whole;
    whole.stages.push_back(n.topo_order());
    return prof.profile(n, whole, {68}).total_at(68).to_sec();
  };
  const double r18 = latency(resnet18());
  const double r34 = latency(resnet34());
  const double r50 = latency(resnet50());
  EXPECT_LT(r18, r34);
  EXPECT_LT(r34, r50);
}

}  // namespace
}  // namespace sgprs::dnn
