// Trace format round-trip and strictness pins:
//  * write -> parse -> write is byte-identical (canonical writer, exact
//    doubles);
//  * JSON syntax errors carry line/column;
//  * semantic errors carry the field path (unknown keys, version tag,
//    out-of-order timestamps, id misuse, unknown templates).
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/json.hpp"
#include "trace/trace.hpp"
#include "workload/spec_error.hpp"

namespace sgprs::trace {
namespace {

std::string trace_bytes(const Trace& t) {
  std::ostringstream os;
  write_trace(t, os);
  return os.str();
}

Trace sample_trace() {
  Trace t;
  t.name = "sample";
  t.description = "writer/reader identity fixture";

  fleet::StreamTemplate cam;
  cam.name = "cam";
  cam.fps = 29.97;  // not binary-representable: pins round-trip-exact doubles
  cam.tier = 2;
  t.templates.push_back(cam);

  fleet::StreamTemplate sensor;
  sensor.name = "sensor";
  sensor.arrival = rt::ArrivalModel::kSporadic;
  sensor.fps = 25.0;
  sensor.min_separation_ms = 33.4;
  sensor.max_separation_ms = 50.1;
  t.templates.push_back(sensor);

  TraceEvent a0;
  a0.kind = TraceEvent::Kind::kAdmit;
  a0.t_ns = 0;
  a0.id = 0;
  a0.tmpl = "cam";
  a0.source = "initial";
  t.events.push_back(a0);

  TraceEvent a1;
  a1.kind = TraceEvent::Kind::kAdmit;
  a1.t_ns = 123456789;
  a1.id = 1;
  a1.tmpl = "sensor";
  a1.tier = 0;  // explicit override survives the round trip
  a1.source = "arrival";
  t.events.push_back(a1);

  TraceEvent r0;
  r0.kind = TraceEvent::Kind::kRetire;
  r0.t_ns = 500000000;
  r0.id = 0;
  r0.source = "lifetime elapsed";
  t.events.push_back(r0);
  return t;
}

TEST(TraceIoTest, WriteParseWriteIsByteIdentical) {
  const Trace original = sample_trace();
  validate_trace(original);

  const std::string first = trace_bytes(original);
  const Trace reread = parse_trace(common::parse_json(first), "fallback");
  validate_trace(reread);

  EXPECT_EQ(reread.name, "sample");
  ASSERT_EQ(reread.templates.size(), 2u);
  EXPECT_EQ(reread.templates[0].fps, 29.97);  // exact, not %.9g-rounded
  ASSERT_EQ(reread.events.size(), 3u);
  EXPECT_EQ(reread.events[1].tier, 0);
  EXPECT_EQ(reread.events[2].source, "lifetime elapsed");

  EXPECT_EQ(trace_bytes(reread), first);
}

TEST(TraceIoTest, SyntaxErrorCarriesLineAndColumn) {
  const std::string broken =
      "{\n\"sgprs_trace\":1,\n\"name\": oops\n}\n";
  try {
    common::parse_json(broken);
    FAIL() << "expected JsonError";
  } catch (const common::JsonError& e) {
    EXPECT_EQ(e.line(), 3);
    EXPECT_GT(e.column(), 0);
  }
}

/// Parses + validates `json` expecting a SpecError; returns its field path
/// and message for the caller to pin.
struct Rejection {
  std::string path;
  std::string message;
};

Rejection reject(const std::string& json) {
  try {
    const Trace t = parse_trace(common::parse_json(json), "t");
    validate_trace(t);
  } catch (const workload::SpecError& e) {
    return {e.path(), e.what()};
  }
  ADD_FAILURE() << "expected SpecError for: " << json;
  return {};
}

const char* kHeader = R"("sgprs_trace":1,
"templates":[{"name":"cam"}],)";

std::string with_events(const std::string& events) {
  return std::string("{") + kHeader + "\"events\":[" + events + "]}";
}

TEST(TraceIoTest, RejectsUnknownKeys) {
  const auto r = reject(R"({"sgprs_trace":1,"bogus":2})");
  EXPECT_NE(r.message.find("bogus"), std::string::npos) << r.message;
}

TEST(TraceIoTest, RejectsMissingOrWrongVersion) {
  const auto missing = reject(R"({"name":"x"})");
  EXPECT_NE(missing.message.find("sgprs_trace"), std::string::npos);
  const auto wrong = reject(R"({"sgprs_trace":99})");
  EXPECT_EQ(wrong.path, "trace.sgprs_trace");
  EXPECT_NE(wrong.message.find("99"), std::string::npos);
}

TEST(TraceIoTest, RejectsOutOfOrderTimestamps) {
  const auto r = reject(with_events(
      R"({"t_ns":5,"admit":"cam","id":0},{"t_ns":3,"retire":0})"));
  EXPECT_EQ(r.path, "trace.events[1].t_ns");
  EXPECT_NE(r.message.find("out of order"), std::string::npos) << r.message;
}

TEST(TraceIoTest, RejectsNegativeTimestamps) {
  const auto r =
      reject(with_events(R"({"t_ns":-1,"admit":"cam","id":0})"));
  EXPECT_EQ(r.path, "trace.events[0].t_ns");
}

TEST(TraceIoTest, RejectsDuplicateAdmitId) {
  const auto r = reject(with_events(
      R"({"t_ns":0,"admit":"cam","id":4},{"t_ns":1,"admit":"cam","id":4})"));
  EXPECT_EQ(r.path, "trace.events[1].id");
}

TEST(TraceIoTest, RejectsRetireOfUnknownOrRetiredId) {
  const auto never = reject(with_events(R"({"t_ns":0,"retire":9})"));
  EXPECT_EQ(never.path, "trace.events[0].retire");
  EXPECT_NE(never.message.find("never admitted"), std::string::npos);

  const auto twice = reject(with_events(
      R"({"t_ns":0,"admit":"cam","id":0},{"t_ns":1,"retire":0},)"
      R"({"t_ns":2,"retire":0})"));
  EXPECT_EQ(twice.path, "trace.events[2].retire");
  EXPECT_NE(twice.message.find("twice"), std::string::npos);
}

TEST(TraceIoTest, RejectsUnknownTemplate) {
  const auto r =
      reject(with_events(R"({"t_ns":0,"admit":"ghost","id":0})"));
  EXPECT_EQ(r.path, "trace.events[0].admit");
  EXPECT_NE(r.message.find("ghost"), std::string::npos);
}

TEST(TraceIoTest, RejectsMalformedEvents) {
  // Both admit and retire in one event.
  const auto both = reject(with_events(
      R"({"t_ns":0,"admit":"cam","id":0,"retire":0})"));
  EXPECT_EQ(both.path, "trace.events[0]");
  // Admit without the id it consumed.
  const auto no_id = reject(with_events(R"({"t_ns":0,"admit":"cam"})"));
  EXPECT_NE(no_id.message.find("id"), std::string::npos);
  // Retire must not carry admit-only keys.
  const auto tier = reject(with_events(
      R"({"t_ns":0,"admit":"cam","id":0},{"t_ns":1,"retire":0,"tier":2})"));
  EXPECT_NE(tier.message.find("tier"), std::string::npos);
}

TEST(TraceIoTest, RejectsEmptyTemplates) {
  const auto r = reject(R"({"sgprs_trace":1,"templates":[]})");
  EXPECT_EQ(r.path, "trace.templates");
}

TEST(TraceIoTest, FaultEventsRoundTripByteIdentical) {
  // Crash/recover events ride in the same stream as admits/retires and
  // must survive write -> parse -> write byte-for-byte, including their
  // source annotations.
  Trace t = sample_trace();
  TraceEvent crash;
  crash.kind = TraceEvent::Kind::kCrash;
  crash.t_ns = 600000000;
  crash.device = 2;
  crash.source = "scripted";
  t.events.push_back(crash);
  TraceEvent recover;
  recover.kind = TraceEvent::Kind::kRecover;
  recover.t_ns = 900000000;
  recover.device = 2;
  recover.source = "mttr elapsed";
  t.events.push_back(recover);
  validate_trace(t);

  const std::string first = trace_bytes(t);
  const Trace reread = parse_trace(common::parse_json(first), "fallback");
  validate_trace(reread);

  ASSERT_EQ(reread.events.size(), 5u);
  EXPECT_EQ(reread.events[3].kind, TraceEvent::Kind::kCrash);
  EXPECT_EQ(reread.events[3].device, 2);
  EXPECT_EQ(reread.events[3].id, -1);  // fault events carry no stream id
  EXPECT_EQ(reread.events[4].kind, TraceEvent::Kind::kRecover);
  EXPECT_EQ(reread.events[4].source, "mttr elapsed");
  EXPECT_EQ(trace_bytes(reread), first);
}

TEST(TraceIoTest, RejectsMalformedFaultEvents) {
  // Unknown fault kind.
  const auto unknown =
      reject(with_events(R"({"t_ns":0,"fault":"melt","device":0})"));
  EXPECT_EQ(unknown.path, "trace.events[0].fault");
  EXPECT_NE(unknown.message.find("melt"), std::string::npos);
  // A fault needs its device.
  const auto no_device = reject(with_events(R"({"t_ns":0,"fault":"crash"})"));
  EXPECT_NE(no_device.message.find("device"), std::string::npos);
  // Faults are fleet-level: no stream id allowed.
  const auto with_id = reject(with_events(
      R"({"t_ns":0,"fault":"crash","device":0,"id":3})"));
  EXPECT_NE(with_id.message.find("id"), std::string::npos);
  // And "device" only belongs on faults.
  const auto admit_dev = reject(with_events(
      R"({"t_ns":0,"admit":"cam","id":0,"device":1})"));
  EXPECT_NE(admit_dev.message.find("device"), std::string::npos);
}

}  // namespace
}  // namespace sgprs::trace
