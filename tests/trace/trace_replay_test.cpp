// The record/replay determinism contract (ISSUE acceptance):
//  * recording a dynamic run and replaying the trace against the same base
//    spec reproduces the full JSON report AND the series CSV byte for byte
//    (diurnal_wave with autoscaling; flash_crowd with Poisson arrivals and
//    shedding);
//  * re-recording the replay yields the original trace bytes (capture is a
//    fixed point);
//  * a trace-driven spec inside a parallel experiment fan-out is
//    byte-identical for --jobs 1 and --jobs 4;
//  * closed-world specs capture their initial task set as t=0 admissions
//    and replay as an open-world run serving the same streams.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "fleet/report.hpp"
#include "fleet/runtime.hpp"
#include "metrics/timeseries.hpp"
#include "trace/trace.hpp"
#include "workload/experiment.hpp"
#include "workload/spec.hpp"

namespace sgprs::trace {
namespace {

std::string report_bytes(const fleet::FleetRunResult& r) {
  std::ostringstream os;
  fleet::write_fleet_run_json(r, os);
  return os.str();
}

std::string series_bytes(const fleet::FleetRunResult& r) {
  std::ostringstream os;
  metrics::write_timeseries_csv(r.series, os);
  return os.str();
}

std::string trace_bytes(const Trace& t) {
  std::ostringstream os;
  write_trace(t, os);
  return os.str();
}

workload::ScenarioSpec load_scenario(const char* name) {
  return workload::load_scenario_spec(std::string(SGPRS_SOURCE_DIR) +
                                      "/scenarios/" + name + ".json");
}

/// The spec that replays `t` against `spec`'s base: same base config,
/// tasks and policy, timeline replaced by the trace.
workload::ScenarioSpec replay_spec(const workload::ScenarioSpec& spec,
                                   Trace t) {
  workload::ScenarioSpec replay = spec;
  fleet::TimelineSpec tl;
  tl.trace = std::make_shared<const Trace>(std::move(t));
  replay.timeline = std::move(tl);
  workload::validate(replay);
  return replay;
}

void expect_record_replay_identical(const workload::ScenarioSpec& spec) {
  TraceRecorder recorder(spec.name, "capture");
  const auto original = workload::run_spec(spec, &recorder);
  ASSERT_TRUE(original.dynamic);
  ASSERT_FALSE(recorder.trace().events.empty());
  validate_trace(recorder.trace());

  const auto replay = replay_spec(spec, recorder.trace());
  TraceRecorder rerecorder(spec.name, "capture");
  const auto replayed = workload::run_spec(replay, &rerecorder);
  ASSERT_TRUE(replayed.dynamic);

  EXPECT_EQ(report_bytes(replayed.dyn), report_bytes(original.dyn));
  EXPECT_EQ(series_bytes(replayed.dyn), series_bytes(original.dyn));
  // Capture is a fixed point: recording the replay gives the same trace.
  EXPECT_EQ(trace_bytes(rerecorder.trace()), trace_bytes(recorder.trace()));
}

TEST(TraceReplayTest, DiurnalWaveRecordReplayByteIdentical) {
  const auto spec = load_scenario("diurnal_wave");
  expect_record_replay_identical(spec);
}

TEST(TraceReplayTest, FlashCrowdRecordReplayByteIdentical) {
  const auto spec = load_scenario("flash_crowd");
  expect_record_replay_identical(spec);
}

TEST(TraceReplayTest, CaptureDoesNotPerturbTheRun) {
  const auto spec = load_scenario("diurnal_wave");
  const auto plain = workload::run_spec(spec);
  TraceRecorder recorder(spec.name, "capture");
  const auto captured = workload::run_spec(spec, &recorder);
  EXPECT_EQ(report_bytes(captured.dyn), report_bytes(plain.dyn));
}

TEST(TraceReplayTest, ExperimentFanOutOverTraceSpecMatchesSerial) {
  const auto spec = load_scenario("diurnal_wave");
  TraceRecorder recorder(spec.name, "capture");
  (void)workload::run_spec(spec, &recorder);

  workload::ExperimentSpec exp;
  exp.name = "trace_fanout";
  exp.base = replay_spec(spec, recorder.trace());
  exp.replications = 3;
  exp.base_seed = 7;

  const auto serial = workload::run_experiment(exp, 1);
  const auto parallel = workload::run_experiment(exp, 4);
  ASSERT_EQ(serial.total_failures, 0) << serial.cells[0].first_error;
  ASSERT_EQ(parallel.total_failures, 0);

  const auto bytes = [](const workload::ExperimentResult& r) {
    std::ostringstream csv, json;
    workload::write_experiment_csv(r, csv);
    workload::write_experiment_json(r, json);
    return csv.str() + json.str();
  };
  EXPECT_EQ(bytes(serial), bytes(parallel));
}

TEST(TraceReplayTest, StaticRunCapturesInitialTasksAndReplays) {
  workload::ScenarioSpec spec;
  spec.name = "static_capture";
  spec.base.duration = common::SimTime::from_sec(1.0);
  spec.base.warmup = common::SimTime::from_sec(0.1);
  spec.base.admission_margin = 0.9;
  spec.fleet_mode = true;
  workload::TaskEntrySpec e;
  e.name = "cam";
  e.count = 6;
  spec.tasks.push_back(e);
  workload::validate(spec);

  TraceRecorder recorder(spec.name, "capture");
  const auto closed = workload::run_spec(spec, &recorder);
  ASSERT_TRUE(closed.fleet);
  ASSERT_FALSE(closed.dynamic);

  const Trace& t = recorder.trace();
  validate_trace(t);
  ASSERT_EQ(t.events.size(), 6u);
  for (const auto& ev : t.events) {
    EXPECT_EQ(ev.kind, TraceEvent::Kind::kAdmit);
    EXPECT_EQ(ev.t_ns, 0);
    EXPECT_EQ(ev.source, "initial");
  }

  // Replaying the captured task set serves the same six streams through
  // the open-world runtime.
  workload::ScenarioSpec replay;
  replay.name = "static_replay";
  replay.base = spec.base;
  replay.fleet_mode = true;
  fleet::TimelineSpec tl;
  tl.trace = std::make_shared<const Trace>(t);
  replay.timeline = std::move(tl);
  workload::validate(replay);
  const auto open = workload::run_spec(replay);
  ASSERT_TRUE(open.dynamic);
  EXPECT_EQ(open.dyn.streams_admitted, 6);
  EXPECT_EQ(open.dyn.releases, closed.cluster.releases);
}

TEST(TraceReplayTest, TraceDrivenTimelineRejectsOtherSections) {
  auto spec = load_scenario("diurnal_wave");
  ASSERT_TRUE(spec.timeline.has_value());
  spec.timeline->trace_path = "whatever.json";
  try {
    workload::validate(spec);
    FAIL() << "expected SpecError";
  } catch (const workload::SpecError& e) {
    EXPECT_EQ(e.path(), "spec.timeline.trace");
  }
}

}  // namespace
}  // namespace sgprs::trace
