// trace_scale determinism and semantics pins:
//  * fixed seed => bit-identical output (the CI regenerates checked-in
//    scaled traces and cmp's them);
//  * clone multiplies streams, time-warp scales the horizon, jitter stays
//    in bounds and preserves per-copy lifetimes;
//  * the output always passes validate_trace;
//  * config errors carry field paths.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <sstream>
#include <string>
#include <unordered_map>

#include "trace/scale.hpp"
#include "trace/trace.hpp"
#include "workload/spec_error.hpp"

namespace sgprs::trace {
namespace {

std::string trace_bytes(const Trace& t) {
  std::ostringstream os;
  write_trace(t, os);
  return os.str();
}

/// `n` streams: admit at i * 10 ms, retire 1 s later.
Trace ramp_trace(int n) {
  Trace t;
  t.name = "ramp";
  fleet::StreamTemplate tmpl;
  tmpl.name = "cam";
  t.templates.push_back(tmpl);
  for (int i = 0; i < n; ++i) {
    TraceEvent a;
    a.kind = TraceEvent::Kind::kAdmit;
    a.t_ns = static_cast<std::int64_t>(i) * 10'000'000;
    a.id = i;
    a.tmpl = "cam";
    a.source = "arrival";
    t.events.push_back(a);
  }
  for (int i = 0; i < n; ++i) {
    TraceEvent r;
    r.kind = TraceEvent::Kind::kRetire;
    r.t_ns = static_cast<std::int64_t>(i) * 10'000'000 + 1'000'000'000;
    r.id = i;
    r.source = "lifetime elapsed";
    t.events.push_back(r);
  }
  std::sort(t.events.begin(), t.events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.t_ns < b.t_ns;
            });
  validate_trace(t);
  return t;
}

int admit_count(const Trace& t) {
  int n = 0;
  for (const auto& e : t.events) {
    if (e.kind == TraceEvent::Kind::kAdmit) ++n;
  }
  return n;
}

TEST(TraceScaleTest, FixedSeedIsBitReproducible) {
  const Trace in = ramp_trace(8);
  TraceScaleConfig cfg;
  cfg.clone = 7;
  cfg.rate = 1.3;
  cfg.jitter_ms = 150.0;
  cfg.time_warp = 0.5;
  cfg.seed = 42;
  EXPECT_EQ(trace_bytes(scale_trace(in, cfg)),
            trace_bytes(scale_trace(in, cfg)));

  TraceScaleConfig other = cfg;
  other.seed = 43;
  EXPECT_NE(trace_bytes(scale_trace(in, other)),
            trace_bytes(scale_trace(in, cfg)));
}

TEST(TraceScaleTest, CloneMultipliesStreamsAndStaysValid) {
  const Trace in = ramp_trace(8);
  TraceScaleConfig cfg;
  cfg.clone = 3;
  cfg.jitter_ms = 50.0;
  cfg.seed = 7;
  const Trace out = scale_trace(in, cfg);
  validate_trace(out);
  EXPECT_EQ(admit_count(out), 3 * 8);
  EXPECT_EQ(out.events.size(), 3u * in.events.size());
}

TEST(TraceScaleTest, TimeWarpScalesHorizon) {
  const Trace in = ramp_trace(4);
  TraceScaleConfig cfg;
  cfg.time_warp = 2.0;
  const Trace out = scale_trace(in, cfg);
  validate_trace(out);
  EXPECT_EQ(out.horizon().ns, 2 * in.horizon().ns);
}

TEST(TraceScaleTest, JitterStaysInBoundsAndPreservesLifetimes) {
  const Trace in = ramp_trace(1);  // admit at 0, retire at 1 s
  TraceScaleConfig cfg;
  cfg.clone = 5;
  cfg.jitter_ms = 100.0;
  cfg.seed = 9;
  const Trace out = scale_trace(in, cfg);
  validate_trace(out);
  ASSERT_EQ(admit_count(out), 5);

  std::unordered_map<int, std::int64_t> admit_at;
  bool jittered = false;
  for (const auto& e : out.events) {
    if (e.kind == TraceEvent::Kind::kAdmit) {
      EXPECT_GE(e.t_ns, 0);
      EXPECT_LE(e.t_ns, 100'000'000);  // within the jitter window
      if (e.t_ns != 0) jittered = true;
      admit_at[e.id] = e.t_ns;
    } else {
      // Each copy's lifetime is exactly the recorded one second.
      EXPECT_EQ(e.t_ns - admit_at.at(e.id), 1'000'000'000);
    }
  }
  EXPECT_TRUE(jittered);  // the extra copies actually spread out
}

TEST(TraceScaleTest, FractionalRateDrawsPerStream) {
  const Trace in = ramp_trace(40);
  TraceScaleConfig cfg;
  cfg.rate = 2.5;
  cfg.seed = 11;
  const Trace out = scale_trace(in, cfg);
  validate_trace(out);
  EXPECT_GE(admit_count(out), 2 * 40);
  EXPECT_LE(admit_count(out), 3 * 40);
  EXPECT_GT(admit_count(out), 2 * 40);  // with 40 draws at p=0.5, some hit
  EXPECT_LT(admit_count(out), 3 * 40);  // ... and some miss
}

TEST(TraceScaleTest, DefaultsAreIdentityOnEvents) {
  const Trace in = ramp_trace(6);
  Trace out = scale_trace(in, TraceScaleConfig{});
  EXPECT_NE(out.description.find("scaled:"), std::string::npos);
  out.description = in.description;  // the stamp is the only difference
  EXPECT_EQ(trace_bytes(out), trace_bytes(in));
}

TEST(TraceScaleTest, RejectsBadConfigWithFieldPaths) {
  const Trace in = ramp_trace(1);
  const auto path_of = [&](const TraceScaleConfig& cfg) {
    try {
      scale_trace(in, cfg);
    } catch (const workload::SpecError& e) {
      return std::string(e.path());
    }
    ADD_FAILURE() << "expected SpecError";
    return std::string();
  };
  TraceScaleConfig warp;
  warp.time_warp = 0.0;
  EXPECT_EQ(path_of(warp), "scale.time_warp");
  TraceScaleConfig clone;
  clone.clone = 0;
  EXPECT_EQ(path_of(clone), "scale.clone");
  TraceScaleConfig rate;
  rate.rate = -1.0;
  EXPECT_EQ(path_of(rate), "scale.rate");
  TraceScaleConfig jitter;
  jitter.jitter_ms = -0.5;
  EXPECT_EQ(path_of(jitter), "scale.jitter_ms");
}

}  // namespace
}  // namespace sgprs::trace
