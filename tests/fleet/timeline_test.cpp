// Parsing and validation of the "timeline" and "fleet_policy" spec
// sections, plus the pure autoscaler policy decisions.
#include <gtest/gtest.h>

#include "common/json.hpp"
#include "fleet/policy.hpp"
#include "fleet/timeline.hpp"
#include "workload/spec_error.hpp"

namespace sgprs::fleet {
namespace {

TimelineSpec parse_tl(const std::string& json) {
  return parse_timeline(common::parse_json(json), "spec.timeline");
}

FleetPolicySpec parse_fp(const std::string& json) {
  return parse_fleet_policy(common::parse_json(json), "spec.fleet_policy");
}

TEST(TimelineParseTest, FullSection) {
  const auto spec = parse_tl(R"({
    "seed": 9,
    "templates": [
      { "name": "cam", "network": "resnet18", "fps": 25, "stages": 4,
        "tier": 2, "deadline_ms": 50, "phase_ms": 3 },
      { "name": "burst", "arrival": "sporadic", "fps": 30,
        "max_separation_ms": 60 }
    ],
    "events": [
      { "at_s": 0.5, "admit": "cam", "count": 3 },
      { "every_s": 0.2, "from_s": 1.0, "until_s": 2.0, "retire": "cam" }
    ],
    "arrivals": [
      { "template": "burst", "rate_per_s": 12, "lifetime_s": [0.2, 0.9],
        "from_s": 0.1, "until_s": 1.5 }
    ]
  })");
  validate_timeline(spec, "spec.timeline");

  EXPECT_EQ(spec.seed, 9u);
  ASSERT_EQ(spec.templates.size(), 2u);
  EXPECT_EQ(spec.templates[0].name, "cam");
  EXPECT_EQ(spec.templates[0].fps, 25.0);
  EXPECT_EQ(spec.templates[0].num_stages, 4);
  EXPECT_EQ(spec.templates[0].tier, 2);
  EXPECT_EQ(spec.templates[0].deadline_ms, 50.0);
  EXPECT_EQ(spec.templates[1].arrival, rt::ArrivalModel::kSporadic);
  ASSERT_EQ(spec.events.size(), 2u);
  EXPECT_EQ(spec.events[0].kind, TimelineEvent::Kind::kAdmit);
  EXPECT_EQ(spec.events[0].count, 3);
  EXPECT_EQ(spec.events[1].kind, TimelineEvent::Kind::kRetire);
  EXPECT_EQ(spec.events[1].every_s, 0.2);
  ASSERT_EQ(spec.arrivals.size(), 1u);
  EXPECT_EQ(spec.arrivals[0].rate_per_s, 12.0);
  EXPECT_EQ(spec.arrivals[0].lifetime_max_s, 0.9);
  EXPECT_NE(find_template(spec, "burst"), nullptr);
  EXPECT_EQ(find_template(spec, "nope"), nullptr);
}

TEST(TimelineParseTest, RejectsUnknownKeysAndBadEvents) {
  EXPECT_THROW(parse_tl(R"({ "typo": 1 })"), workload::SpecError);
  // An event needs exactly one of admit/retire.
  EXPECT_THROW(parse_tl(R"({ "events": [ { "at_s": 1 } ] })"),
               workload::SpecError);
  EXPECT_THROW(
      parse_tl(R"({ "events": [ { "admit": "a", "retire": "b" } ] })"),
      workload::SpecError);
  // Repeating events use from_s, not at_s.
  EXPECT_THROW(
      parse_tl(R"({ "events": [ { "every_s": 1, "at_s": 1, "admit": "a" } ] })"),
      workload::SpecError);
}

TEST(TimelineValidateTest, CatchesSemanticErrors) {
  // Unknown admit target.
  auto spec = parse_tl(R"({ "events": [ { "at_s": 1, "admit": "ghost" } ] })");
  EXPECT_THROW(validate_timeline(spec, "spec.timeline"), workload::SpecError);
  // Duplicate template names.
  spec = parse_tl(R"({ "templates": [ { "name": "a" }, { "name": "a" } ] })");
  EXPECT_THROW(validate_timeline(spec, "spec.timeline"), workload::SpecError);
  // Unknown network.
  spec = parse_tl(R"({ "templates": [ { "name": "a", "network": "gpt5" } ] })");
  EXPECT_THROW(validate_timeline(spec, "spec.timeline"), workload::SpecError);
  // Arrival referencing an unknown template.
  spec = parse_tl(
      R"({ "arrivals": [ { "template": "ghost", "rate_per_s": 1 } ] })");
  EXPECT_THROW(validate_timeline(spec, "spec.timeline"), workload::SpecError);
  // Field paths survive into the error.
  try {
    spec = parse_tl(R"({ "templates": [ { "name": "a", "fps": -1 } ] })");
    validate_timeline(spec, "spec.timeline");
    FAIL() << "expected SpecError";
  } catch (const workload::SpecError& e) {
    EXPECT_EQ(e.path(), "spec.timeline.templates[0].fps");
  }
}

TEST(FleetPolicyParseTest, FullSectionAndDefaults) {
  const auto spec = parse_fp(R"({
    "series_window_ms": 50,
    "autoscaler": {
      "policy": "headroom", "min_devices": 2, "max_devices": 5,
      "headroom": 0.3, "tick_ms": 25, "warmup_ms": 80, "cooldown_ms": 160,
      "device": "3090"
    },
    "overload": {
      "admission_test": false, "shed": "priority", "queue_limit": 4,
      "fps_scale": 0.5
    }
  })");
  validate_fleet_policy(spec, "spec.fleet_policy");
  EXPECT_EQ(spec.autoscaler.kind, AutoscalePolicyKind::kHeadroom);
  EXPECT_EQ(spec.autoscaler.min_devices, 2);
  EXPECT_EQ(spec.autoscaler.device, "3090");
  EXPECT_FALSE(spec.overload.admission_test);
  EXPECT_EQ(spec.overload.shed, ShedMode::kPriority);
  EXPECT_EQ(spec.overload.queue_limit, 4);
  EXPECT_EQ(spec.overload.fps_scale, 0.5);
  EXPECT_EQ(spec.series_window_ms, 50.0);

  const auto defaults = parse_fp(R"({})");
  validate_fleet_policy(defaults, "spec.fleet_policy");
  EXPECT_EQ(defaults.autoscaler.kind, AutoscalePolicyKind::kNone);
  EXPECT_EQ(defaults.overload.shed, ShedMode::kNone);
  EXPECT_TRUE(defaults.overload.admission_test);
}

TEST(FleetPolicyParseTest, RejectsBadValues) {
  EXPECT_THROW(parse_fp(R"({ "autoscaler": { "policy": "magic" } })"),
               workload::SpecError);
  auto bad_range = parse_fp(
      R"({ "autoscaler": { "policy": "utilization", "min_devices": 3,
           "max_devices": 2 } })");
  EXPECT_THROW(validate_fleet_policy(bad_range, "spec.fleet_policy"),
               workload::SpecError);
  auto bad_scale = parse_fp(R"({ "overload": { "fps_scale": 1.5 } })");
  EXPECT_THROW(validate_fleet_policy(bad_scale, "spec.fleet_policy"),
               workload::SpecError);
  auto bad_device = parse_fp(
      R"({ "autoscaler": { "policy": "utilization", "device": "tpu" } })");
  EXPECT_THROW(validate_fleet_policy(bad_device, "spec.fleet_policy"),
               workload::SpecError);
}

TEST(AutoscalerPolicyTest, UtilizationThresholds) {
  const auto policy = make_autoscaler(AutoscalePolicyKind::kUtilization);
  ASSERT_NE(policy, nullptr);
  AutoscalerConfig cfg;
  cfg.scale_up_threshold = 0.8;
  cfg.scale_down_threshold = 0.3;

  FleetLoad load;
  load.active_devices = 2;
  load.mean_utilization = 0.9;
  EXPECT_EQ(policy->desired_devices(load, cfg), 3);  // above: grow
  load.mean_utilization = 0.5;
  EXPECT_EQ(policy->desired_devices(load, cfg), 2);  // inside band: hold
  load.mean_utilization = 0.2;
  EXPECT_EQ(policy->desired_devices(load, cfg), 1);  // below: shrink
  // A warming device absorbs the overload signal — no double-provision.
  load.mean_utilization = 0.9;
  load.warming_devices = 1;
  EXPECT_EQ(policy->desired_devices(load, cfg), 3);
}

TEST(AutoscalerPolicyTest, HeadroomKeepsSpareCapacity) {
  const auto policy = make_autoscaler(AutoscalePolicyKind::kHeadroom);
  ASSERT_NE(policy, nullptr);
  AutoscalerConfig cfg;
  cfg.headroom = 0.25;

  FleetLoad load;
  load.active_devices = 2;
  load.mean_utilization = 0.85;  // spare 0.15 < 0.25: grow
  EXPECT_EQ(policy->desired_devices(load, cfg), 3);
  // Shrinking from 2 devices at util 0.3 gives util 0.6, spare 0.4 >= 0.25.
  load.mean_utilization = 0.3;
  EXPECT_EQ(policy->desired_devices(load, cfg), 1);
  // util 0.5 would become 1.0 on one device: hold.
  load.mean_utilization = 0.5;
  EXPECT_EQ(policy->desired_devices(load, cfg), 2);
  EXPECT_EQ(make_autoscaler(AutoscalePolicyKind::kNone), nullptr);
}

}  // namespace
}  // namespace sgprs::fleet
