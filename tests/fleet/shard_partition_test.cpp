// Property tests for the sharding layer (fleet/sharding.hpp) over ~200
// seeded random fleets:
//  (a) the partition is total and disjoint — every device index lands in
//      exactly one shard, every shard id is in range;
//  (b) the partition is a pure function of (device index, shard count) —
//      in particular independent of the order devices are created or
//      streams admitted;
//  (c) cross-shard handoff through an engine's staging buffer preserves
//      per-stream event order (the MinHeap::merge_from ingestion path the
//      epoch barriers rely on);
//  (d) splitmix64-derived per-shard stream seeds never collide across
//      (shard, stream) pairs, and the underlying stream_seed never
//      collides across stream ids for one base seed.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "fleet/sharding.hpp"
#include "sim/engine.hpp"

namespace sgprs::fleet {
namespace {

constexpr int kTrials = 200;

TEST(ShardPartitionTest, EveryDeviceInExactlyOneShard) {
  common::Rng rng(0x5eed5eedULL);
  for (int trial = 0; trial < kTrials; ++trial) {
    const int shards = static_cast<int>(rng.uniform_int(1, 16));
    const int devices = static_cast<int>(rng.uniform_int(1, 500));
    std::vector<std::vector<int>> members(shards);
    for (int d = 0; d < devices; ++d) {
      const int s = shard_of(d, shards);
      ASSERT_GE(s, 0);
      ASSERT_LT(s, shards);
      members[s].push_back(d);
    }
    int total = 0;
    for (const auto& m : members) total += static_cast<int>(m.size());
    EXPECT_EQ(total, devices);  // disjoint by construction, total checked
    // Contiguity of load: shard sizes differ by at most one (round-robin).
    std::size_t lo = devices, hi = 0;
    for (const auto& m : members) {
      lo = std::min(lo, m.size());
      hi = std::max(hi, m.size());
    }
    EXPECT_LE(hi - lo, 1u);
  }
}

TEST(ShardPartitionTest, PartitionIndependentOfAdmissionOrder) {
  common::Rng rng(0xfeedULL);
  for (int trial = 0; trial < kTrials; ++trial) {
    const int shards = static_cast<int>(rng.uniform_int(1, 12));
    const int devices = static_cast<int>(rng.uniform_int(1, 200));
    // Assign in index order, then in a shuffled "admission" order: the
    // map must not depend on when a device (or its streams) showed up.
    std::map<int, int> in_order;
    for (int d = 0; d < devices; ++d) in_order[d] = shard_of(d, shards);
    std::vector<int> order(devices);
    for (int d = 0; d < devices; ++d) order[d] = d;
    for (int i = devices - 1; i > 0; --i) {
      std::swap(order[i],
                order[static_cast<int>(rng.uniform_int(0, i))]);
    }
    std::map<int, int> shuffled;
    for (int d : order) shuffled[d] = shard_of(d, shards);
    EXPECT_EQ(in_order, shuffled);
  }
}

TEST(ShardPartitionTest, HandoffPreservesPerStreamEventOrder) {
  // Model one epoch-barrier handoff per trial: a control plane staging
  // batches of per-stream events onto a paused shard engine between
  // run_until segments. Within a stream, events are staged in increasing
  // (time, sequence) order — exactly what Runner release chains produce —
  // and must fire in that order after MinHeap::merge_from ingests each
  // batch.
  common::Rng rng(0xcafeULL);
  for (int trial = 0; trial < kTrials; ++trial) {
    sim::Engine engine;
    const int streams = static_cast<int>(rng.uniform_int(1, 8));
    const int epochs = static_cast<int>(rng.uniform_int(1, 6));
    std::vector<std::vector<int>> fired(streams);
    std::vector<int> next_seq(streams, 0);
    common::SimTime barrier = common::SimTime::zero();
    for (int e = 0; e < epochs; ++e) {
      const common::SimTime next_barrier =
          barrier + common::SimTime::from_ms(rng.uniform(1.0, 10.0));
      // Stage a batch: for each stream, a run of events inside the epoch
      // window (some at identical instants, exercising the FIFO
      // tie-break across the merge).
      for (int s = 0; s < streams; ++s) {
        const int burst = static_cast<int>(rng.uniform_int(0, 5));
        common::SimTime t = barrier;
        for (int k = 0; k < burst; ++k) {
          if (rng.next_double() < 0.5) {
            t = t + common::SimTime::from_ns(static_cast<std::int64_t>(
                        rng.uniform(0.0, 1e6)));
          }
          const common::SimTime at =
              t < next_barrier ? t : next_barrier;
          const int seq = next_seq[s]++;
          engine.schedule_at(at, [&fired, s, seq] {
            fired[s].push_back(seq);
          });
        }
      }
      engine.run_until(next_barrier);
      barrier = next_barrier;
    }
    for (int s = 0; s < streams; ++s) {
      ASSERT_EQ(fired[s].size(), static_cast<std::size_t>(next_seq[s]));
      EXPECT_TRUE(std::is_sorted(fired[s].begin(), fired[s].end()))
          << "stream " << s << " events reordered across the handoff";
    }
  }
}

TEST(ShardPartitionTest, StreamSeedsNeverCollideAcrossStreams) {
  common::Rng rng(0xd1ce'd1ceULL);
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::uint64_t base = rng.next_u64();
    std::set<std::uint64_t> seen;
    for (int stream = 0; stream < 512; ++stream) {
      EXPECT_TRUE(seen.insert(common::stream_seed(base, stream)).second)
          << "base " << base << " stream " << stream;
    }
  }
}

TEST(ShardPartitionTest, ShardStreamSeedsNeverCollideAcrossShardAndStream) {
  common::Rng rng(0xacc01adeULL);
  for (int trial = 0; trial < kTrials; ++trial) {
    const std::uint64_t base = rng.next_u64();
    std::set<std::uint64_t> seen;
    for (int shard = 0; shard < 16; ++shard) {
      for (int stream = 0; stream < 64; ++stream) {
        EXPECT_TRUE(
            seen.insert(shard_stream_seed(base, shard, stream)).second)
            << "base " << base << " shard " << shard << " stream "
            << stream;
      }
    }
  }
}

}  // namespace
}  // namespace sgprs::fleet
