// Behavioral tests of the online fleet runtime: churn driver, autoscaler
// (warm-up, drain, re-placement), and the overload controller (shedding,
// admission rejection, QoS downgrade). Specs are built in code so each
// test pins one mechanism with a minimal world.
#include <gtest/gtest.h>

#include <algorithm>

#include "fleet/runtime.hpp"
#include "workload/spec.hpp"

namespace sgprs::fleet {
namespace {

using workload::ScenarioSpec;
using workload::TaskEntrySpec;

/// Base world: one 2-context SGPRS device behind the placer.
ScenarioSpec base_spec(double duration_s = 1.2) {
  ScenarioSpec spec;
  spec.name = "fleet_test";
  spec.base.num_contexts = 2;
  spec.base.oversubscription = 1.5;
  spec.base.duration = common::SimTime::from_sec(duration_s);
  spec.base.warmup = common::SimTime::from_sec(0.1);
  spec.base.seed = 42;
  spec.base.admission_margin = 0.9;
  spec.fleet_mode = true;
  return spec;
}

TaskEntrySpec entry(const std::string& name, int count, int tier = 0,
                    double fps = 30.0) {
  TaskEntrySpec e;
  e.name = name;
  e.count = count;
  e.tier = tier;
  e.fps = fps;
  return e;
}

StreamTemplate tmpl(const std::string& name, int tier = 1,
                    double fps = 30.0) {
  StreamTemplate t;
  t.name = name;
  t.tier = tier;
  t.fps = fps;
  return t;
}

int count_decisions(const FleetRunResult& r, DecisionKind kind) {
  return static_cast<int>(
      std::count_if(r.decisions.begin(), r.decisions.end(),
                    [kind](const FleetDecision& d) {
                      return d.kind == kind;
                    }));
}

TEST(FleetRuntimeTest, ScriptedChurnAdmitsAndRetires) {
  ScenarioSpec spec = base_spec();
  spec.tasks.push_back(entry("cam", 2));
  TimelineSpec tl;
  tl.templates.push_back(tmpl("extra"));
  TimelineEvent admit;
  admit.kind = TimelineEvent::Kind::kAdmit;
  admit.target = "extra";
  admit.count = 3;
  admit.at_s = 0.3;
  tl.events.push_back(admit);
  TimelineEvent retire;
  retire.kind = TimelineEvent::Kind::kRetire;
  retire.target = "extra";
  retire.count = 2;
  retire.at_s = 0.7;
  tl.events.push_back(retire);
  spec.timeline = tl;
  workload::validate(spec);

  const FleetRunResult r = run_fleet_scenario(spec);
  EXPECT_EQ(r.streams_admitted, 5);  // 2 initial + 3 scripted
  EXPECT_EQ(r.streams_retired, 2);
  EXPECT_EQ(r.streams_rejected, 0);
  EXPECT_EQ(count_decisions(r, DecisionKind::kStreamAdmitted), 3);
  EXPECT_EQ(count_decisions(r, DecisionKind::kStreamRetired), 2);
  EXPECT_GT(r.releases, 0);
  EXPECT_FALSE(r.series.samples.empty());
  // Live streams visible in the series: 2 before 0.3 s, 5 in (0.3, 0.7].
  const auto& samples = r.series.samples;
  EXPECT_EQ(samples.front().streams_live, 2);
  // (The 0.7 s sample fires after the retire event scheduled at setup, so
  // the window with 5 live streams is [0.4, 0.7) in sample time.)
  for (const auto& s : samples) {
    if (s.t > common::SimTime::from_sec(0.35) &&
        s.t < common::SimTime::from_sec(0.7)) {
      EXPECT_EQ(s.streams_live, 5) << "at " << s.t.to_sec();
    }
  }
  EXPECT_EQ(samples.back().streams_live, 3);
}

TEST(FleetRuntimeTest, PoissonArrivalsRespectWindowAndLifetime) {
  ScenarioSpec spec = base_spec(1.5);
  TimelineSpec tl;
  tl.seed = 3;
  tl.templates.push_back(tmpl("burst"));
  ArrivalProcess a;
  a.tmpl = "burst";
  a.rate_per_s = 20.0;
  a.lifetime_min_s = 0.2;
  a.lifetime_max_s = 0.4;
  a.from_s = 0.2;
  a.until_s = 0.8;
  tl.arrivals.push_back(a);
  spec.timeline = tl;
  workload::validate(spec);

  const FleetRunResult r = run_fleet_scenario(spec);
  // ~12 expected arrivals in the 0.6 s window; all leave within 0.4 s.
  EXPECT_GT(r.streams_admitted, 3);
  EXPECT_GT(r.streams_retired, 0);
  // Before the window opens, nothing is live; at the horizon every stream
  // has outlived its bounded lifetime (0.8 + 0.4 < 1.5).
  EXPECT_EQ(r.series.samples.front().streams_live, 0);
  EXPECT_EQ(r.series.samples.back().streams_live, 0);
}

TEST(FleetRuntimeTest, AutoscalerScalesUpWarmsUpAndDrainsDown) {
  ScenarioSpec spec = base_spec(2.2);
  spec.tasks.push_back(entry("cam", 4));
  TimelineSpec tl;
  tl.templates.push_back(tmpl("wave"));
  TimelineEvent ramp;
  ramp.kind = TimelineEvent::Kind::kAdmit;
  ramp.target = "wave";
  ramp.count = 10;
  ramp.at_s = 0.2;
  tl.events.push_back(ramp);
  TimelineEvent fall;
  fall.kind = TimelineEvent::Kind::kRetire;
  fall.target = "wave";
  fall.count = 10;
  fall.at_s = 1.2;
  tl.events.push_back(fall);
  spec.timeline = tl;
  FleetPolicySpec policy;
  policy.autoscaler.kind = AutoscalePolicyKind::kUtilization;
  policy.autoscaler.min_devices = 1;
  policy.autoscaler.max_devices = 2;
  policy.autoscaler.scale_up_threshold = 0.6;
  policy.autoscaler.scale_down_threshold = 0.35;
  policy.autoscaler.tick_ms = 50.0;
  policy.autoscaler.warmup_ms = 100.0;
  policy.autoscaler.cooldown_ms = 150.0;
  spec.fleet_policy = policy;
  workload::validate(spec);

  const FleetRunResult r = run_fleet_scenario(spec);
  EXPECT_GE(r.scale_ups, 1);
  EXPECT_GE(r.scale_downs, 1);
  EXPECT_EQ(r.peak_devices, 2);
  EXPECT_EQ(r.final_devices, 1);
  EXPECT_GE(count_decisions(r, DecisionKind::kScaleUp), 1);
  EXPECT_GE(count_decisions(r, DecisionKind::kDeviceActive), 1);
  EXPECT_GE(count_decisions(r, DecisionKind::kScaleDown), 1);
  // Warm-up ordering: the device activates strictly after its scale-up.
  const auto up = std::find_if(r.decisions.begin(), r.decisions.end(),
                               [](const FleetDecision& d) {
                                 return d.kind == DecisionKind::kScaleUp;
                               });
  const auto active = std::find_if(r.decisions.begin(), r.decisions.end(),
                                   [](const FleetDecision& d) {
                                     return d.kind ==
                                            DecisionKind::kDeviceActive;
                                   });
  ASSERT_NE(up, r.decisions.end());
  ASSERT_NE(active, r.decisions.end());
  EXPECT_EQ(active->at - up->at, common::SimTime::from_ms(100.0));
  // The drained device retires once its in-flight jobs complete.
  EXPECT_GE(count_decisions(r, DecisionKind::kDeviceRetired), 1);
}

TEST(FleetRuntimeTest, PrioritySheddingProtectsTierZero) {
  ScenarioSpec spec = base_spec(1.2);
  spec.tasks.push_back(entry("base", 2, /*tier=*/0));
  TimelineSpec tl;
  tl.templates.push_back(tmpl("extra", /*tier=*/2));
  TimelineEvent admit;
  admit.kind = TimelineEvent::Kind::kAdmit;
  admit.target = "extra";
  admit.count = 10;
  admit.at_s = 0.2;
  tl.events.push_back(admit);
  spec.timeline = tl;
  FleetPolicySpec policy;
  policy.overload.shed = ShedMode::kPriority;
  policy.overload.queue_limit = 2;
  spec.fleet_policy = policy;
  workload::validate(spec);

  const FleetRunResult r = run_fleet_scenario(spec);
  EXPECT_GT(r.jobs_shed, 0);
  // Tier 0 streams are the two initial tasks (ids 0 and 1): never shed.
  for (const auto& d : r.decisions) {
    if (d.kind == DecisionKind::kJobShed) {
      EXPECT_GE(d.task_id, 2) << "tier-0 stream was shed";
    }
  }
  // The series carries the cumulative shed counter.
  EXPECT_EQ(r.series.samples.back().jobs_shed_cum, r.jobs_shed);
}

TEST(FleetRuntimeTest, AdmissionRejectsAndQosDowngradeRecovers) {
  // Fill one device close to its admission budget, then offer a heavy
  // stream: full rate must be rejected, the fps_scale retry must fit.
  ScenarioSpec spec = base_spec(1.2);
  spec.tasks.push_back(entry("base", 16));
  TimelineSpec tl;
  tl.templates.push_back(tmpl("heavy", /*tier=*/1, /*fps=*/120.0));
  TimelineEvent admit;
  admit.kind = TimelineEvent::Kind::kAdmit;
  admit.target = "heavy";
  admit.count = 4;
  admit.at_s = 0.3;
  tl.events.push_back(admit);
  spec.timeline = tl;
  FleetPolicySpec policy;
  policy.overload.admission_test = true;
  policy.overload.fps_scale = 0.1;
  spec.fleet_policy = policy;
  workload::validate(spec);

  const FleetRunResult r = run_fleet_scenario(spec);
  // Every heavy stream either got downgraded or rejected — none admitted
  // at full rate into a near-full device.
  EXPECT_EQ(r.streams_downgraded + r.streams_rejected, 4);
  EXPECT_GE(r.streams_downgraded, 1)
      << "the 12 fps downgrade should fit the admission gap";
  EXPECT_EQ(count_decisions(r, DecisionKind::kStreamDowngraded),
            static_cast<int>(r.streams_downgraded));
}

TEST(FleetRuntimeTest, StaticSpecKeepsClosedWorldPath) {
  ScenarioSpec spec = base_spec();
  spec.tasks.push_back(entry("cam", 4));
  workload::validate(spec);
  const auto r = workload::run_spec(spec);
  EXPECT_FALSE(r.dynamic);
  EXPECT_TRUE(r.fleet);

  ScenarioSpec dyn = base_spec();
  dyn.tasks.push_back(entry("cam", 4));
  dyn.fleet_policy = FleetPolicySpec{};  // policy alone routes dynamic
  workload::validate(dyn);
  const auto rd = workload::run_spec(dyn);
  EXPECT_TRUE(rd.dynamic);
  EXPECT_FALSE(rd.dyn.series.samples.empty());
  // Same world, no churn: the aggregate workload matches the static run.
  EXPECT_EQ(rd.dyn.releases, r.cluster.releases);
  EXPECT_DOUBLE_EQ(rd.dyn.fleet.fleet.fps, r.cluster.fleet.fleet.fps);
}

}  // namespace
}  // namespace sgprs::fleet
