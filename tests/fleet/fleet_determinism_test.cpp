// Determinism pins for open-world runs (ISSUE acceptance):
//  * the shipped diurnal_wave scenario — churn plus at least one scale-up
//    and one scale-down — replays byte-identically (full JSON report,
//    series and audit included);
//  * the same dynamic spec inside a parallel experiment fan-out produces
//    byte-identical reports for --jobs 1 and --jobs 4;
//  * a dynamic run without churn agrees with the closed-world cluster
//    path on the workload it serves (cross-path consistency).
#include <gtest/gtest.h>

#include <sstream>

#include "fleet/report.hpp"
#include "fleet/runtime.hpp"
#include "workload/experiment.hpp"
#include "workload/spec.hpp"

namespace sgprs::fleet {
namespace {

std::string report_bytes(const FleetRunResult& r) {
  std::ostringstream os;
  write_fleet_run_json(r, os);
  return os.str();
}

workload::ScenarioSpec load_diurnal() {
  return workload::load_scenario_spec(std::string(SGPRS_SOURCE_DIR) +
                                      "/scenarios/diurnal_wave.json");
}

TEST(FleetDeterminismTest, DiurnalWaveReplaysByteIdentical) {
  const auto spec = load_diurnal();
  const FleetRunResult first = run_fleet_scenario(spec);
  const FleetRunResult second = run_fleet_scenario(spec);

  // The scenario must actually exercise the control plane: churn both
  // ways and at least one scale-up and one scale-down.
  EXPECT_GT(first.streams_admitted, 4);
  EXPECT_GT(first.streams_retired, 0);
  EXPECT_GE(first.scale_ups, 1);
  EXPECT_GE(first.scale_downs, 1);

  EXPECT_EQ(report_bytes(first), report_bytes(second));
}

TEST(FleetDeterminismTest, ExperimentFanOutMatchesSerial) {
  // Wrap the dynamic scenario in a pure seed-replication experiment and
  // compare the full reports across worker counts.
  workload::ExperimentSpec exp;
  exp.name = "fleet_fanout";
  exp.base = load_diurnal();
  exp.replications = 3;
  exp.base_seed = 7;

  const auto serial = workload::run_experiment(exp, 1);
  const auto parallel = workload::run_experiment(exp, 4);
  ASSERT_EQ(serial.total_failures, 0) << serial.cells[0].first_error;
  ASSERT_EQ(parallel.total_failures, 0);

  const auto bytes = [](const workload::ExperimentResult& r) {
    std::ostringstream csv, json;
    workload::write_experiment_csv(r, csv);
    workload::write_experiment_json(r, json);
    return csv.str() + json.str();
  };
  EXPECT_EQ(bytes(serial), bytes(parallel));
}

TEST(FleetDeterminismTest, NoChurnDynamicRunMatchesClusterPath) {
  // A spec whose only open-world feature is an (inert) fleet policy must
  // serve exactly the workload of the closed-world cluster path.
  workload::ScenarioSpec spec;
  spec.name = "no_churn";
  spec.base.duration = common::SimTime::from_sec(1.0);
  spec.base.warmup = common::SimTime::from_sec(0.1);
  spec.base.admission_margin = 0.9;
  spec.fleet_mode = true;
  workload::TaskEntrySpec e;
  e.name = "cam";
  e.count = 6;
  spec.tasks.push_back(e);
  workload::validate(spec);

  const auto closed = workload::run_spec(spec);
  ASSERT_TRUE(closed.fleet);

  spec.fleet_policy = FleetPolicySpec{};
  workload::validate(spec);
  const auto open = workload::run_spec(spec);
  ASSERT_TRUE(open.dynamic);

  EXPECT_EQ(open.dyn.releases, closed.cluster.releases);
  EXPECT_DOUBLE_EQ(open.dyn.fleet.fleet.fps, closed.cluster.fleet.fleet.fps);
  EXPECT_DOUBLE_EQ(open.dyn.fleet.fleet.dmr, closed.cluster.fleet.fleet.dmr);
  EXPECT_DOUBLE_EQ(open.dyn.fleet.fleet.p99_latency_ms,
                   closed.cluster.fleet.fleet.p99_latency_ms);
  EXPECT_EQ(open.dyn.stage_migrations, closed.cluster.stage_migrations);
}

}  // namespace
}  // namespace sgprs::fleet
