// Fault injection / failover behavior pins (docs/faults.md): scripted
// crashes abort in-flight jobs and fail streams over, recovery re-admits
// parked orphans, a crash during an active drain releases placer
// accounting exactly once, and a ~200-seed sweep of the stochastic
// MTBF/MTTR process holds the structural invariants (availability in
// [0, 1], no live stream on a failed device, counter consistency).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "fleet/runtime.hpp"
#include "workload/spec.hpp"

namespace sgprs::fleet {
namespace {

using workload::ScenarioSpec;
using workload::TaskEntrySpec;

ScenarioSpec base_spec(int devices, double duration_s = 1.2) {
  ScenarioSpec spec;
  spec.name = "fault_test";
  spec.base.num_contexts = 2;
  spec.base.oversubscription = 1.5;
  spec.base.duration = common::SimTime::from_sec(duration_s);
  spec.base.warmup = common::SimTime::from_sec(0.1);
  spec.base.seed = 42;
  spec.base.admission_margin = 0.9;
  spec.base.num_devices = devices;
  spec.fleet_mode = true;
  return spec;
}

TaskEntrySpec entry(const std::string& name, int count, int tier = 0,
                    double fps = 30.0) {
  TaskEntrySpec e;
  e.name = name;
  e.count = count;
  e.tier = tier;
  e.fps = fps;
  return e;
}

int count_decisions(const FleetRunResult& r, DecisionKind kind) {
  return static_cast<int>(
      std::count_if(r.decisions.begin(), r.decisions.end(),
                    [kind](const FleetDecision& d) {
                      return d.kind == kind;
                    }));
}

TEST(FaultTest, ScriptedCrashAbortsJobsAndFailsOverStreams) {
  ScenarioSpec spec = base_spec(2);
  spec.tasks.push_back(entry("cam", 6));
  FaultSpec faults;
  faults.seed = 7;
  FaultEvent crash;
  crash.kind = FaultEvent::Kind::kCrash;
  // Off the control grid (docs/faults.md) and inside a dispatched job's
  // execution window for this seed, so the instant kill catches work.
  crash.at_s = 0.5325;
  crash.device = 1;
  crash.down_s = 0.4;
  faults.events.push_back(crash);
  spec.faults = faults;
  workload::validate(spec);

  const FleetRunResult r = run_fleet_scenario(spec);
  EXPECT_EQ(r.devices_failed, 1);
  EXPECT_EQ(r.devices_recovered, 1);
  EXPECT_EQ(count_decisions(r, DecisionKind::kDeviceFailed), 1);
  EXPECT_EQ(count_decisions(r, DecisionKind::kDeviceRecovered), 1);
  // Half the fleet hosted streams; the crash displaced them and the
  // failover engine found them new homes (possibly after retries).
  EXPECT_GT(r.failovers + r.streams_lost, 0);
  EXPECT_GE(count_decisions(r, DecisionKind::kStreamFailedOver),
            static_cast<int>(r.failovers > 0));
  // A 30 fps stream keeps a device busy: the instant kill caught work.
  EXPECT_GT(r.jobs_faulted, 0);
  // Faulted jobs never close in the collector, so they are outside the
  // deadline-miss accounting entirely.
  EXPECT_GE(r.releases, r.jobs_faulted);
  // The recovery ordering holds: failed before recovered.
  const auto fail = std::find_if(r.decisions.begin(), r.decisions.end(),
                                 [](const FleetDecision& d) {
                                   return d.kind == DecisionKind::kDeviceFailed;
                                 });
  const auto rec = std::find_if(r.decisions.begin(), r.decisions.end(),
                                [](const FleetDecision& d) {
                                  return d.kind ==
                                         DecisionKind::kDeviceRecovered;
                                });
  ASSERT_NE(fail, r.decisions.end());
  ASSERT_NE(rec, r.decisions.end());
  EXPECT_EQ(rec->at - fail->at, common::SimTime::from_sec(0.4));
}

TEST(FaultTest, CrashDuringActiveDrainReleasesAccountingOnce) {
  // Build a world where the autoscaler drains a device, find the drain
  // instant from a clean run's audit trail, then crash the draining victim
  // mid-drain. Regression: the crash must tear the drain down without
  // retiring the device's placer accounting a second time (a double-free
  // used to trip the placer's checks and abort the run).
  ScenarioSpec spec = base_spec(1, 2.2);
  spec.tasks.push_back(entry("cam", 4));
  TimelineSpec tl;
  StreamTemplate wave;
  wave.name = "wave";
  wave.tier = 1;
  tl.templates.push_back(wave);
  TimelineEvent ramp;
  ramp.kind = TimelineEvent::Kind::kAdmit;
  ramp.target = "wave";
  ramp.count = 10;
  ramp.at_s = 0.2;
  tl.events.push_back(ramp);
  TimelineEvent fall;
  fall.kind = TimelineEvent::Kind::kRetire;
  fall.target = "wave";
  fall.count = 10;
  fall.at_s = 1.2;
  tl.events.push_back(fall);
  spec.timeline = tl;
  FleetPolicySpec policy;
  policy.autoscaler.kind = AutoscalePolicyKind::kUtilization;
  policy.autoscaler.min_devices = 1;
  policy.autoscaler.max_devices = 2;
  policy.autoscaler.scale_up_threshold = 0.6;
  policy.autoscaler.scale_down_threshold = 0.35;
  policy.autoscaler.tick_ms = 50.0;
  policy.autoscaler.warmup_ms = 100.0;
  policy.autoscaler.cooldown_ms = 150.0;
  spec.fleet_policy = policy;
  workload::validate(spec);

  const FleetRunResult clean = run_fleet_scenario(spec);
  const auto down = std::find_if(clean.decisions.begin(),
                                 clean.decisions.end(),
                                 [](const FleetDecision& d) {
                                   return d.kind == DecisionKind::kScaleDown;
                                 });
  ASSERT_NE(down, clean.decisions.end());
  ASSERT_GE(count_decisions(clean, DecisionKind::kDeviceRetired), 1);

  // The drain lives at least until the next autoscale tick (50 ms):
  // 13 ms after the scale-down lands inside the draining window, off any
  // control instant.
  FaultSpec faults;
  faults.seed = 7;
  FaultEvent crash;
  crash.kind = FaultEvent::Kind::kCrash;
  crash.at_s = down->at.to_sec() + 0.013;
  crash.device = down->device;
  faults.events.push_back(crash);
  spec.faults = faults;
  // End shortly after the crash: any kDeviceRetired in this run could only
  // come from the torn-down drain (later autoscale cycles would retire
  // devices legitimately and muddy the signal).
  spec.base.duration = down->at + common::SimTime::from_sec(0.2);
  workload::validate(spec);

  const FleetRunResult r = run_fleet_scenario(spec);  // must not abort
  EXPECT_EQ(r.devices_failed, 1);
  EXPECT_EQ(count_decisions(r, DecisionKind::kDeviceFailed), 1);
  // The crash superseded the drain: the victim never reads as cleanly
  // retired (crash_device tore the drain down exactly once).
  EXPECT_EQ(count_decisions(r, DecisionKind::kDeviceRetired), 0);
  // The device stayed down (no recovery scheduled), so the run ends on
  // the surviving fleet core.
  EXPECT_EQ(r.devices_recovered, 0);
  EXPECT_EQ(r.final_devices, 1);
}

TEST(FaultTest, RecoveryReadmitsParkedOrphans) {
  // A 1-device fleet loses its only device: every stream orphans, parks
  // after the retry budget, and re-homes when the device recovers.
  ScenarioSpec spec = base_spec(1, 1.6);
  spec.tasks.push_back(entry("cam", 3));
  FaultSpec faults;
  faults.seed = 11;
  FaultEvent crash;
  crash.kind = FaultEvent::Kind::kCrash;
  crash.at_s = 0.53;
  crash.device = 0;
  faults.events.push_back(crash);
  FaultEvent recover;
  recover.kind = FaultEvent::Kind::kRecover;
  recover.at_s = 1.03;
  recover.device = 0;
  faults.events.push_back(recover);
  faults.failover.max_attempts = 2;
  faults.failover.backoff_ms = 30.0;
  faults.failover.park = true;
  spec.faults = faults;
  workload::validate(spec);

  const FleetRunResult r = run_fleet_scenario(spec);
  EXPECT_EQ(count_decisions(r, DecisionKind::kStreamOrphaned), 3);
  // Nothing fit while the fleet was empty; recovery re-placed all three.
  EXPECT_EQ(r.failovers, 3);
  EXPECT_EQ(r.streams_lost, 0);
  EXPECT_GT(r.failover_retries, 0);
  // Each stream was down from the crash to the recovery instant.
  EXPECT_NEAR(r.unavailability_s, 3 * 0.5, 1e-9);
  EXPECT_NEAR(r.recovery_p99_s, 0.5, 1e-9);
}

/// Decision-stream replay: tracks every live stream's home device and the
/// set of failed devices, asserting that between control instants no live
/// stream maps to a failed device (the crash-instant batch records at one
/// timestamp, so the invariant is checked at time boundaries).
void check_no_stream_on_failed_device(const FleetRunResult& r) {
  std::map<int, int> home;        // task id -> device
  std::set<int> down;             // failed devices
  common::SimTime prev = common::SimTime::from_ns(-1);
  const auto verify = [&] {
    for (const auto& [id, dev] : home) {
      EXPECT_FALSE(down.count(dev))
          << "stream " << id << " live on failed device " << dev;
    }
  };
  for (const auto& d : r.decisions) {
    if (d.at != prev) {
      verify();
      prev = d.at;
    }
    switch (d.kind) {
      case DecisionKind::kStreamAdmitted:
      case DecisionKind::kStreamDowngraded:
      case DecisionKind::kStreamReplaced:
      case DecisionKind::kStreamFailedOver:
        home[d.task_id] = d.device;
        break;
      case DecisionKind::kStreamRetired:
      case DecisionKind::kStreamDropped:
      case DecisionKind::kStreamOrphaned:
        home.erase(d.task_id);
        break;
      case DecisionKind::kDeviceFailed:
        down.insert(d.device);
        break;
      case DecisionKind::kDeviceRecovered:
        down.erase(d.device);
        break;
      default:
        break;
    }
  }
  verify();
}

TEST(FaultTest, StochasticFaultSweepHoldsInvariants) {
  // ~200 seeds of a small flaky fleet: the structural invariants must
  // hold for every realization of the MTBF/MTTR process, not just the
  // curated scenarios.
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    ScenarioSpec spec = base_spec(2, 0.8);
    spec.base.seed = seed;
    spec.tasks.push_back(entry("cam", 4));
    FaultSpec faults;
    faults.seed = seed * 31 + 1;
    faults.process.mtbf_s = 0.35;
    faults.process.mttr_s = 0.15;
    faults.process.from_s = 0.15;
    faults.failover.max_attempts = 2;
    faults.failover.backoff_ms = 20.0;
    faults.failover.park = true;
    spec.faults = faults;
    workload::validate(spec);

    const FleetRunResult r = run_fleet_scenario(spec);
    SCOPED_TRACE("seed=" + std::to_string(seed));
    for (const auto& s : r.series.samples) {
      EXPECT_GE(s.availability, 0.0);
      EXPECT_LE(s.availability, 1.0);
      EXPECT_GE(s.devices_failed, 0);
      EXPECT_GE(s.orphaned_streams, 0);
    }
    EXPECT_LE(r.devices_recovered, r.devices_failed);
    EXPECT_LE(r.streams_lost, r.streams_retired);
    EXPECT_GE(r.unavailability_s, 0.0);
    EXPECT_LE(r.recovery_p50_s, r.recovery_p99_s + 1e-12);
    // Streams are conserved: every admitted stream is still live, was
    // retired (incl. lost + horizon orphans), and never both.
    EXPECT_GE(r.streams_admitted, r.streams_retired);
    check_no_stream_on_failed_device(r);
  }
}

}  // namespace
}  // namespace sgprs::fleet
