// The sharded-run determinism pins (ISSUE acceptance): a dynamic scenario
// partitioned over any number of shards produces byte-identical outputs —
// full report JSON (devices, series, audit trail), the series CSV, and the
// recorded trace — to the classic single-calendar run at --shards 1.
//
// Pinned here for every curated dynamic scenario, for the trace-driven
// replay spec, and for sharded runs inside a parallel experiment fan-out
// (--jobs and --shards composed). These tests run under TSan in CI (the
// ShardDeterminism filter), so they double as a race check on the
// epoch-barrier handoff between the control plane and the shard engines.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "fleet/report.hpp"
#include "fleet/runtime.hpp"
#include "metrics/timeseries.hpp"
#include "trace/trace.hpp"
#include "workload/experiment.hpp"
#include "workload/spec.hpp"

namespace sgprs::fleet {
namespace {

workload::ScenarioSpec load_spec(const std::string& rel) {
  return workload::load_scenario_spec(std::string(SGPRS_SOURCE_DIR) + "/" +
                                      rel);
}

/// Everything a run serializes, concatenated: the full JSON report, the
/// time-series CSV and the recorded admit/retire trace. Byte equality of
/// this string is the acceptance bar — not metric-by-metric tolerance.
std::string run_bytes(workload::ScenarioSpec spec, int shards,
                      FleetRunResult* out = nullptr) {
  spec.base.shards = shards;
  workload::validate(spec);
  workload::RunSeeds seeds;
  seeds.sim = spec.base.seed;
  seeds.generator = spec.generator ? spec.generator->seed : 0;
  trace::TraceRecorder recorder(spec.name, "shard determinism pin");
  FleetRunResult r = run_fleet_scenario(spec, seeds, &recorder);
  std::ostringstream os;
  write_fleet_run_json(r, os);
  metrics::write_timeseries_csv(r.series, os);
  trace::write_trace(recorder.trace(), os);
  if (out) *out = std::move(r);
  return os.str();
}

TEST(ShardDeterminismTest, CuratedScenariosByteIdenticalAcrossShardCounts) {
  const std::vector<std::string> scenarios = {
      "scenarios/diurnal_wave.json",
      "scenarios/flash_crowd.json",
      "scenarios/tenant_churn.json",
      "scenarios/scale_down_drain.json",
      "scenarios/memory_constrained.json",
      "scenarios/device_crash_failover.json",
      "scenarios/flaky_fleet.json",
      "scenarios/correlated_outage.json",
  };
  for (const auto& path : scenarios) {
    SCOPED_TRACE(path);
    const auto spec = load_spec(path);
    FleetRunResult classic;
    const std::string baseline = run_bytes(spec, 1, &classic);
    // The pin is only meaningful if the run exercises the open world.
    EXPECT_GT(classic.streams_admitted, 0);
    for (int shards : {2, 4, 8}) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      EXPECT_EQ(baseline, run_bytes(spec, shards));
    }
  }
}

TEST(ShardDeterminismTest, MemoryConstrainedOomStableAcrossShardCounts) {
  // The memory-constrained scenario rejects streams with VRAM as the sole
  // blocker; that oom classification — counters, series column, audit
  // records — must be part of the byte-identical surface, not just the
  // happy-path placements (ISSUE acceptance: --shards 1 vs 8).
  const auto spec = load_spec("scenarios/memory_constrained.json");
  FleetRunResult classic;
  const std::string baseline = run_bytes(spec, 1, &classic);
  EXPECT_GT(classic.streams_admitted, 0);
  EXPECT_GT(classic.streams_oom_rejected, 0);
  EXPECT_LE(classic.streams_oom_rejected, classic.streams_rejected);
  FleetRunResult sharded;
  EXPECT_EQ(baseline, run_bytes(spec, 8, &sharded));
  EXPECT_EQ(classic.streams_oom_rejected, sharded.streams_oom_rejected);
}

TEST(ShardDeterminismTest, FaultCountersStableAcrossShardCounts) {
  // The fault path is the sternest determinism test: crash instants come
  // from a seeded exponential process keyed on (device, incident) — never
  // on shard or event order — and failover re-placement races the regular
  // admission stream. Every fault counter and audit record must be part of
  // the byte-identical surface, and the scenario must actually exercise
  // the machinery (a vacuous pin would pass with faults disabled).
  const auto spec = load_spec("scenarios/flaky_fleet.json");
  FleetRunResult classic;
  const std::string baseline = run_bytes(spec, 1, &classic);
  EXPECT_GT(classic.streams_admitted, 0);
  EXPECT_GT(classic.devices_failed, 0);
  EXPECT_GT(classic.failovers, 0);
  FleetRunResult sharded;
  EXPECT_EQ(baseline, run_bytes(spec, 8, &sharded));
  EXPECT_EQ(classic.devices_failed, sharded.devices_failed);
  EXPECT_EQ(classic.failovers, sharded.failovers);
  EXPECT_EQ(classic.jobs_faulted, sharded.jobs_faulted);
  EXPECT_EQ(classic.unavailability_s, sharded.unavailability_s);
}

TEST(ShardDeterminismTest, TraceDrivenReplayByteIdenticalAcrossShardCounts) {
  const auto spec = load_spec("scenarios/traces/flash_crowd_replay.json");
  FleetRunResult classic;
  const std::string baseline = run_bytes(spec, 1, &classic);
  EXPECT_GT(classic.streams_admitted, 0);
  EXPECT_GT(classic.streams_retired, 0);
  for (int shards : {2, 4, 8}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    EXPECT_EQ(baseline, run_bytes(spec, shards));
  }
}

TEST(ShardDeterminismTest, ExperimentFanOutShardedMatchesSerial) {
  // --jobs and --shards compose: replications fan out across the worker
  // pool while each run shards internally. Both axes must be invisible in
  // the report bytes.
  workload::ExperimentSpec exp;
  exp.name = "shard_fanout";
  exp.base = load_spec("scenarios/diurnal_wave.json");
  exp.replications = 3;
  exp.base_seed = 7;

  const auto bytes = [](const workload::ExperimentResult& r) {
    std::ostringstream csv, json;
    workload::write_experiment_csv(r, csv);
    workload::write_experiment_json(r, json);
    return csv.str() + json.str();
  };

  exp.base.base.shards = 1;
  const auto serial = workload::run_experiment(exp, 1);
  ASSERT_EQ(serial.total_failures, 0) << serial.cells[0].first_error;

  exp.base.base.shards = 4;
  const auto sharded = workload::run_experiment(exp, 4);
  ASSERT_EQ(sharded.total_failures, 0) << sharded.cells[0].first_error;

  EXPECT_EQ(bytes(serial), bytes(sharded));
}

}  // namespace
}  // namespace sgprs::fleet
