#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace sgprs::sim {
namespace {

using common::SimTime;

TEST(Engine, StartsAtTimeZero) {
  Engine e;
  EXPECT_EQ(e.now(), SimTime::zero());
  EXPECT_FALSE(e.has_pending());
}

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.schedule_at(SimTime::from_ms(3), [&] { order.push_back(3); });
  e.schedule_at(SimTime::from_ms(1), [&] { order.push_back(1); });
  e.schedule_at(SimTime::from_ms(2), [&] { order.push_back(2); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(e.now(), SimTime::from_ms(3));
}

TEST(Engine, SameTimeEventsFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.schedule_at(SimTime::from_ms(5), [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Engine, ScheduleAfterIsRelative) {
  Engine e;
  SimTime fired = SimTime::zero();
  e.schedule_at(SimTime::from_ms(10), [&] {
    e.schedule_after(SimTime::from_ms(5), [&] { fired = e.now(); });
  });
  e.run();
  EXPECT_EQ(fired, SimTime::from_ms(15));
}

TEST(Engine, CancelPreventsExecution) {
  Engine e;
  bool ran = false;
  const auto id = e.schedule_at(SimTime::from_ms(1), [&] { ran = true; });
  EXPECT_TRUE(e.cancel(id));
  e.run();
  EXPECT_FALSE(ran);
}

TEST(Engine, CancelIsIdempotent) {
  Engine e;
  const auto id = e.schedule_at(SimTime::from_ms(1), [] {});
  EXPECT_TRUE(e.cancel(id));
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, CancelAfterFireReturnsFalse) {
  Engine e;
  const auto id = e.schedule_at(SimTime::from_ms(1), [] {});
  e.run();
  EXPECT_FALSE(e.cancel(id));
}

TEST(Engine, SchedulingInPastThrows) {
  Engine e;
  e.schedule_at(SimTime::from_ms(10), [] {});
  e.run();
  EXPECT_THROW(e.schedule_at(SimTime::from_ms(5), [] {}),
               common::CheckError);
}

TEST(Engine, EventsCanScheduleMoreEvents) {
  Engine e;
  int count = 0;
  std::function<void()> chain = [&] {
    ++count;
    if (count < 100) e.schedule_after(SimTime::from_us(10), chain);
  };
  e.schedule_at(SimTime::zero(), chain);
  e.run();
  EXPECT_EQ(count, 100);
  EXPECT_EQ(e.now(), SimTime::from_us(990));
}

TEST(Engine, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine e;
  int fired = 0;
  e.schedule_at(SimTime::from_ms(1), [&] { ++fired; });
  e.schedule_at(SimTime::from_ms(2), [&] { ++fired; });
  e.schedule_at(SimTime::from_ms(10), [&] { ++fired; });
  e.run_until(SimTime::from_ms(5));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(e.now(), SimTime::from_ms(5));
  EXPECT_TRUE(e.has_pending());
  e.run();
  EXPECT_EQ(fired, 3);
}

TEST(Engine, RunUntilIncludesEventsAtBoundary) {
  Engine e;
  bool ran = false;
  e.schedule_at(SimTime::from_ms(5), [&] { ran = true; });
  e.run_until(SimTime::from_ms(5));
  EXPECT_TRUE(ran);
}

TEST(Engine, NextEventTimeSkipsCancelled) {
  Engine e;
  const auto id = e.schedule_at(SimTime::from_ms(1), [] {});
  e.schedule_at(SimTime::from_ms(7), [] {});
  e.cancel(id);
  EXPECT_EQ(e.next_event_time(), SimTime::from_ms(7));
}

TEST(Engine, NextEventTimeEmptyIsMax) {
  Engine e;
  EXPECT_TRUE(e.next_event_time().is_max());
}

TEST(Engine, ProcessedCountTracksFiredEvents) {
  Engine e;
  for (int i = 0; i < 5; ++i) {
    e.schedule_at(SimTime::from_ms(i + 1), [] {});
  }
  e.run();
  EXPECT_EQ(e.processed_count(), 5u);
}

TEST(Engine, StepProcessesExactlyOne) {
  Engine e;
  int fired = 0;
  e.schedule_at(SimTime::from_ms(1), [&] { ++fired; });
  e.schedule_at(SimTime::from_ms(2), [&] { ++fired; });
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(e.step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(e.step());
}

TEST(Engine, ManyEventsStressOrdering) {
  Engine e;
  SimTime last = SimTime::zero();
  bool monotone = true;
  for (int i = 0; i < 20000; ++i) {
    // Scatter times with a multiplicative hash pattern.
    const auto t = SimTime::from_ns((i * 2654435761u) % 1000000);
    e.schedule_at(t, [&, t] {
      if (e.now() < last) monotone = false;
      last = e.now();
    });
  }
  e.run();
  EXPECT_TRUE(monotone);
  EXPECT_EQ(e.processed_count(), 20000u);
}

}  // namespace
}  // namespace sgprs::sim
