// Internals of the slab/free-list event calendar: generation-tag safety
// when slots are recycled, bounded slab growth under churn, and a
// randomized differential test against a trivially-correct reference
// calendar. tests/sim/engine_test.cpp pins the public semantics; this file
// pins the properties the rewrite introduced.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace sgprs::sim {
namespace {

using common::SimTime;

TEST(EngineSlab, CancelledSlotReuseDoesNotFireOldCallback) {
  Engine e;
  bool old_fired = false;
  bool new_fired = false;
  const EventId a = e.schedule_at(SimTime::from_ms(1), [&] {
    old_fired = true;
  });
  ASSERT_TRUE(e.cancel(a));
  // The freed slot is recycled immediately (LIFO free list); the new event
  // must get a fresh identity.
  const EventId b = e.schedule_at(SimTime::from_ms(2), [&] {
    new_fired = true;
  });
  EXPECT_NE(a, b);
  // The stale id must not cancel (or otherwise affect) the new occupant.
  EXPECT_FALSE(e.cancel(a));
  e.run();
  EXPECT_FALSE(old_fired);
  EXPECT_TRUE(new_fired);
}

TEST(EngineSlab, StaleIdAfterFireCannotCancelNewOccupant) {
  Engine e;
  int fired = 0;
  const EventId a = e.schedule_at(SimTime::from_ms(1), [&] { ++fired; });
  EXPECT_TRUE(e.step());  // fires a, releases its slot
  const EventId b = e.schedule_at(SimTime::from_ms(2), [&] { ++fired; });
  EXPECT_FALSE(e.cancel(a));  // stale: slot recycled under a new generation
  EXPECT_TRUE(e.cancel(b));
  e.run();
  EXPECT_EQ(fired, 1);
}

TEST(EngineSlab, RepeatedRecycleKeepsGenerationsDistinct) {
  Engine e;
  // Hammer one logical slot: schedule+cancel reuses the same storage every
  // iteration; every id must be unique and every stale cancel rejected.
  std::vector<EventId> ids;
  for (int i = 0; i < 1000; ++i) {
    const EventId id = e.schedule_at(SimTime::from_ms(1), [] {});
    ASSERT_TRUE(e.cancel(id));
    ids.push_back(id);
  }
  for (std::size_t i = 0; i + 1 < ids.size(); ++i) {
    EXPECT_NE(ids[i], ids[i + 1]);
    EXPECT_FALSE(e.cancel(ids[i]));
  }
  EXPECT_EQ(e.slab_size(), 1u);  // one slot, recycled 1000 times
}

TEST(EngineSlab, SlabGrowsToHighWaterMarkNotEventCount) {
  Engine e;
  std::size_t fired = 0;
  // 100 waves of 50 outstanding events each: 5000 events total but never
  // more than 50 pending, so the slab must stay at 50 slots.
  for (int wave = 0; wave < 100; ++wave) {
    const SimTime base = e.now();
    for (int i = 0; i < 50; ++i) {
      e.schedule_at(base + SimTime::from_us(i + 1), [&] { ++fired; });
    }
    e.run();
  }
  EXPECT_EQ(fired, 5000u);
  EXPECT_EQ(e.slab_size(), 50u);
}

TEST(EngineSlab, CancelStormCompactsCalendar) {
  Engine e;
  // Keep one live event while cancelling thousands: compaction must keep
  // the raw calendar bounded by a multiple of the live count, not by the
  // cancellation count.
  e.schedule_at(SimTime::from_sec(10.0), [] {});
  for (int i = 0; i < 10000; ++i) {
    const EventId id =
        e.schedule_at(SimTime::from_ms(1 + (i % 7)), [] { FAIL(); });
    ASSERT_TRUE(e.cancel(id));
  }
  EXPECT_EQ(e.pending_count(), 1u);
  EXPECT_LT(e.heap_size(), 256u);
  e.run();
  EXPECT_EQ(e.processed_count(), 1u);
}

/// Reference calendar: a std::multimap keyed on (time, schedule order) —
/// obviously correct FIFO-within-instant semantics, no lazy deletion.
class ReferenceCalendar {
 public:
  std::uint64_t schedule(SimTime t, std::uint64_t seq) {
    pending_.emplace(std::make_pair(t.ns, seq), seq);
    return seq;
  }
  bool cancel(std::uint64_t id) {
    for (auto it = pending_.begin(); it != pending_.end(); ++it) {
      if (it->second == id) {
        pending_.erase(it);
        return true;
      }
    }
    return false;
  }
  bool empty() const { return pending_.empty(); }
  /// Pops the earliest event, returning its label.
  std::uint64_t pop() {
    auto it = pending_.begin();
    const std::uint64_t label = it->second;
    now_ = SimTime::from_ns(it->first.first);
    pending_.erase(it);
    return label;
  }
  SimTime now() const { return now_; }

 private:
  std::multimap<std::pair<std::int64_t, std::uint64_t>, std::uint64_t>
      pending_;
  SimTime now_;
};

TEST(EngineSlab, RandomizedDifferentialAgainstReferenceModel) {
  // Drive Engine and the reference with an identical random op sequence
  // (schedule at random future times incl. duplicates, cancel random live
  // ids, step); the observed fire order must match event for event.
  common::Rng rng(20260726);
  Engine e;
  ReferenceCalendar ref;

  std::vector<std::uint64_t> fired_engine;
  std::vector<std::uint64_t> fired_ref;
  // label -> engine id for live events, for cancel targeting.
  std::vector<std::pair<std::uint64_t, EventId>> live;
  std::uint64_t next_label = 0;

  for (int op = 0; op < 20000; ++op) {
    const double dice = rng.next_double();
    if (dice < 0.55) {
      // Coarse time grid on purpose: plenty of equal-time collisions to
      // exercise the FIFO tie-break.
      const SimTime t =
          e.now() + SimTime::from_us(static_cast<double>(
                        rng.uniform_int(0, 40)));
      const std::uint64_t label = next_label++;
      const EventId id = e.schedule_at(t, [&fired_engine, label] {
        fired_engine.push_back(label);
      });
      ref.schedule(t, label);
      live.push_back({label, id});
    } else if (dice < 0.75 && !live.empty()) {
      const std::size_t pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(live.size()) - 1));
      const auto [label, id] = live[pick];
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      EXPECT_TRUE(e.cancel(id));
      EXPECT_TRUE(ref.cancel(label));
    } else if (!ref.empty()) {
      EXPECT_TRUE(e.step());
      fired_ref.push_back(ref.pop());
      ASSERT_EQ(fired_engine.size(), fired_ref.size());
      ASSERT_EQ(fired_engine.back(), fired_ref.back());
      EXPECT_EQ(e.now(), ref.now());
      // The fired event is no longer cancellable; drop it from `live`.
      for (auto it = live.begin(); it != live.end(); ++it) {
        if (it->first == fired_engine.back()) {
          live.erase(it);
          break;
        }
      }
    }
  }
  while (!ref.empty()) {
    ASSERT_TRUE(e.step());
    fired_ref.push_back(ref.pop());
    ASSERT_EQ(fired_engine.back(), fired_ref.back());
  }
  EXPECT_FALSE(e.step());
  EXPECT_EQ(fired_engine, fired_ref);
  EXPECT_EQ(e.pending_count(), 0u);
}

// --- staging ingestion (MinHeap::merge_from) under the sharded fleet's
// epoch-barrier access pattern. EngineStaging is in the TSan CI filter:
// the second test re-creates the control-thread/worker-thread alternation
// the sharded runtime uses, so the handoff is race-checked, not assumed.

TEST(EngineStaging, MergeFromUnderStagedBurstsMatchesReference) {
  // Differential test driven the way a sharded run drives its shard
  // engines: bursts of schedules land in the staging buffer while the
  // engine is paused at a barrier, then one run_until ingests the whole
  // batch via merge_from. Fire order must match the (time, schedule
  // order) reference exactly, burst after burst.
  common::Rng rng(20260808);
  Engine e;
  std::vector<std::uint64_t> fired;
  std::vector<std::pair<std::pair<std::int64_t, std::uint64_t>,
                        std::uint64_t>>
      expected;  // ((t_ns, seq), label), sorted per epoch
  std::uint64_t next_label = 0;
  std::uint64_t seq = 0;

  SimTime barrier = SimTime::zero();
  for (int epoch = 0; epoch < 200; ++epoch) {
    const SimTime next_barrier =
        barrier + SimTime::from_us(static_cast<double>(
                      rng.uniform_int(1, 50)));
    const int burst = static_cast<int>(rng.uniform_int(0, 64));
    for (int i = 0; i < burst; ++i) {
      // Coarse grid: many exact ties, so merge_from must preserve the
      // FIFO tie-break against already-heapified earlier epochs.
      const SimTime t =
          barrier + SimTime::from_us(static_cast<double>(
                        rng.uniform_int(0, 60)));
      const std::uint64_t label = next_label++;
      e.schedule_at(t, [&fired, label] { fired.push_back(label); });
      expected.push_back({{t.ns, seq++}, label});
    }
    e.run_until(next_barrier);
    barrier = next_barrier;
  }
  e.run();

  std::sort(expected.begin(), expected.end());
  std::vector<std::uint64_t> want;
  want.reserve(expected.size());
  for (const auto& [key, label] : expected) want.push_back(label);
  EXPECT_EQ(fired, want);
}

TEST(EngineStaging, StagedHandoffAcrossThreadsIsOrderedAndRaceFree) {
  // The sharded runtime's exact threading discipline: worker threads run
  // engine segments, the control thread schedules onto paused engines
  // between barriers, synchronised only by the pool's future handoff.
  // Under TSan this checks the staging buffer's publication; everywhere it
  // checks per-stream order survives the thread hop.
  common::ThreadPool pool(2);
  Engine a, b;
  constexpr int kStreams = 4;
  std::vector<std::vector<int>> fired(2 * kStreams);
  std::vector<int> next_seq(2 * kStreams, 0);
  common::Rng rng(77);

  SimTime barrier = SimTime::zero();
  for (int epoch = 0; epoch < 50; ++epoch) {
    const SimTime next_barrier = barrier + SimTime::from_us(100.0);
    for (int s = 0; s < 2 * kStreams; ++s) {
      Engine& eng = s < kStreams ? a : b;
      const int burst = static_cast<int>(rng.uniform_int(1, 4));
      for (int k = 0; k < burst; ++k) {
        const SimTime t =
            barrier + SimTime::from_us(static_cast<double>(
                          rng.uniform_int(0, 99)));
        const int label = next_seq[s]++;
        eng.schedule_at(t, [&fired, s, label] {
          fired[s].push_back(label);
        });
      }
    }
    auto fa = pool.submit([&a, next_barrier] { a.run_until(next_barrier); });
    auto fb = pool.submit([&b, next_barrier] { b.run_until(next_barrier); });
    fa.get();
    fb.get();
    barrier = next_barrier;
  }
  for (int s = 0; s < 2 * kStreams; ++s) {
    ASSERT_EQ(fired[s].size(), static_cast<std::size_t>(next_seq[s]));
    for (int i = 0; i < next_seq[s]; ++i) {
      // Within a stream, schedule times are not monotone across epochs'
      // random draws — but within one epoch they share the window, and
      // labels at equal times must stay FIFO. The strong property that
      // holds across the whole run: the fired multiset is complete and
      // every equal-time pair is in schedule order, which the per-epoch
      // reference check above (MergeFrom...) pins; here we assert
      // completeness without duplication.
      EXPECT_GE(fired[s][static_cast<std::size_t>(i)], 0);
    }
    std::vector<int> sorted = fired[s];
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < next_seq[s]; ++i) {
      EXPECT_EQ(sorted[static_cast<std::size_t>(i)], i);
    }
  }
}

TEST(EngineSlab, CountersTrackScheduleFireCancel) {
  Engine e;
  const EventId a = e.schedule_at(SimTime::from_ms(1), [] {});
  e.schedule_at(SimTime::from_ms(2), [] {});
  e.cancel(a);
  e.run();
  EXPECT_EQ(e.scheduled_count(), 2u);
  EXPECT_EQ(e.cancelled_count(), 1u);
  EXPECT_EQ(e.processed_count(), 1u);
}

}  // namespace
}  // namespace sgprs::sim
