#include "cluster/placer.hpp"

#include <gtest/gtest.h>

#include "gpu/sharing.hpp"
#include "gpu/speedup.hpp"

namespace sgprs::cluster {
namespace {

using common::SimTime;

// Analytical capacities for the two device classes, 2 contexts x 4 streams
// at half the device (the shapes the cluster layer builds by default).
rt::PoolCapacityModel capacity_of(int total_sms, int sm_per_ctx) {
  return rt::pool_capacity(gpu::SpeedupModel::rtx2080ti(),
                           gpu::SharingParams{}, total_sms, 2, sm_per_ctx,
                           4);
}

PlacerDevice small_device() {
  PlacerDevice d;
  d.spec = gpu::rtx2080ti();
  d.pool_sms = 34;
  d.capacity = capacity_of(68, 34);
  return d;
}

PlacerDevice big_device() {
  PlacerDevice d;
  d.spec = gpu::rtx3090();
  d.pool_sms = 41;
  d.capacity = capacity_of(82, 41);
  return d;
}

/// Synthetic periodic task whose offered work rate is `frac` of
/// `capacity.work_rate`. Profiled at both fleet pool sizes so admission's
/// WCET lookups succeed on either device class. A heavy task (large frac)
/// serially occupies one slot for several periods, so saturation tests
/// relax the deadline via `deadline_factor` to make the *utilization*
/// budget the binding constraint.
rt::Task make_task(int id, const std::string& name, double frac,
                   const rt::PoolCapacityModel& capacity,
                   double deadline_factor = 1.0) {
  const double period_sec = 1.0 / 30.0;
  rt::Task t;
  t.id = id;
  t.name = name;
  t.period = SimTime::from_sec(period_sec);
  t.deadline = SimTime::from_sec(period_sec * deadline_factor);
  const auto speedup = gpu::SpeedupModel::rtx2080ti();
  // utilization_test: offered = total_at(ref) * speedup(conv, ref) / period
  // with ref = smallest profiled SM size (34 here).
  const double wcet_sec = frac * capacity.work_rate * period_sec /
                          speedup.speedup(gpu::OpClass::kConv, 34.0);
  t.wcet.per_stage.resize(1);
  for (int sms : {34, 41}) {
    t.wcet.per_stage[0][sms] = SimTime::from_sec(wcet_sec);
    t.wcet.total[sms] = SimTime::from_sec(wcet_sec);
  }
  return t;
}

TEST(Placer, RoundRobinRotatesAcrossDevices) {
  Placer p({small_device(), small_device(), small_device()},
           PlacementPolicy::kRoundRobin);
  const auto cap = small_device().capacity;
  std::vector<int> assigned;
  for (int i = 0; i < 6; ++i) {
    const auto d = p.place(make_task(i, "t" + std::to_string(i), 0.05, cap));
    ASSERT_TRUE(d.has_value());
    assigned.push_back(*d);
  }
  EXPECT_EQ(assigned, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

TEST(Placer, LeastLoadedEvensOutUtilizationFraction) {
  Placer p({small_device(), big_device()}, PlacementPolicy::kLeastLoaded);
  const auto cap = small_device().capacity;
  // Empty fleet: tie on 0 utilization, stable order picks device 0.
  EXPECT_EQ(p.place(make_task(0, "a", 0.1, cap)), std::optional<int>(0));
  // Device 0 now carries load; the empty device 1 must win.
  EXPECT_EQ(p.place(make_task(1, "b", 0.1, cap)), std::optional<int>(1));
  // Fractions stay within one task of each other as placements continue.
  for (int i = 2; i < 10; ++i) {
    ASSERT_TRUE(p.place(make_task(i, "t" + std::to_string(i), 0.1, cap)));
  }
  EXPECT_NEAR(p.utilization(0), p.utilization(1), 0.11);
}

TEST(Placer, BinPackWorstFitPrefersLargestSpareCapacity) {
  Placer p({small_device(), big_device()},
           PlacementPolicy::kBinPackUtilization);
  const auto cap = small_device().capacity;
  // The 3090 has the larger absolute spare capacity, so — unlike
  // least-loaded, which ties on fraction and picks device 0 — worst-fit
  // must start on device 1.
  EXPECT_EQ(p.place(make_task(0, "a", 0.05, cap)), std::optional<int>(1));
  // It keeps choosing the bigger device until its spare dips below the
  // 2080 Ti's.
  EXPECT_GT(p.task_count(1), 0);
}

TEST(Placer, HashAffinityIsDeterministicAndSticky) {
  const auto cap = small_device().capacity;
  Placer p({small_device(), small_device(), small_device(), small_device()},
           PlacementPolicy::kHashAffinity);
  const auto home = p.place(make_task(0, "camera-7", 0.01, cap));
  ASSERT_TRUE(home.has_value());
  // Same name keeps landing on the same device.
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(p.place(make_task(i, "camera-7", 0.01, cap)), home);
  }
  // And a fresh placer reproduces the mapping (stable hash, not
  // std::hash).
  Placer q({small_device(), small_device(), small_device(), small_device()},
           PlacementPolicy::kHashAffinity);
  EXPECT_EQ(q.place(make_task(0, "camera-7", 0.01, cap)), home);
}

TEST(Placer, HashAffinityProbesPastSaturatedHome) {
  const auto cap = small_device().capacity;
  Placer p({small_device(), small_device()}, PlacementPolicy::kHashAffinity);
  // Saturate the home device of "hot" with heavy relaxed-deadline tasks.
  const auto home = p.place(make_task(0, "hot", 0.45, cap, 10.0));
  ASSERT_TRUE(home.has_value());
  ASSERT_EQ(p.place(make_task(1, "hot", 0.45, cap, 10.0)), home);
  // The next "hot" task no longer fits at home (utilization would reach
  // 1.35 > margin) but must spill to the other device instead of being
  // rejected.
  const auto spill = p.place(make_task(2, "hot", 0.45, cap, 10.0));
  ASSERT_TRUE(spill.has_value());
  EXPECT_NE(*spill, *home);
}

TEST(Placer, RejectsWhenEveryDeviceIsSaturated) {
  const auto cap = small_device().capacity;
  Placer p({small_device(), small_device()}, PlacementPolicy::kLeastLoaded);
  int placed = 0;
  int i = 0;
  // Each task demands 45% of a device (relaxed deadline so utilization is
  // the binding test): two fit per device, the fifth finds no room.
  while (placed < 32) {
    const auto d =
        p.place(make_task(i, "t" + std::to_string(i), 0.45, cap, 10.0));
    ++i;
    if (!d) break;
    ++placed;
  }
  EXPECT_EQ(placed, 4);
  EXPECT_EQ(p.rejected(), 1);
  // Once saturated, equally heavy tasks keep being rejected on every
  // policy's probe order.
  EXPECT_FALSE(
      p.place(make_task(i + 1, "late", 0.45, cap, 10.0)).has_value());
  EXPECT_EQ(p.rejected(), 2);
}

TEST(Placer, HeterogeneousPoolCapacityModelsPerContextSizes) {
  // The list-based pool_capacity overload (used by Cluster for explicit
  // per-context SM limits) must model the actual layout, not context 0
  // replicated — a {10, 58} pool clearly outperforms uniform {10, 10}.
  const auto speedup = gpu::SpeedupModel::rtx2080ti();
  const auto lopsided = rt::pool_capacity(speedup, gpu::SharingParams{}, 68,
                                          std::vector<int>{10, 58}, 4);
  const auto tiny = rt::pool_capacity(speedup, gpu::SharingParams{}, 68,
                                      std::vector<int>{10, 10}, 4);
  const auto uniform = rt::pool_capacity(speedup, gpu::SharingParams{}, 68,
                                         2, 34, 4);
  EXPECT_GT(lopsided.work_rate, tiny.work_rate);
  // And the uniform overload is exactly the list overload's special case.
  const auto uniform_as_list = rt::pool_capacity(
      speedup, gpu::SharingParams{}, 68, std::vector<int>{34, 34}, 4);
  EXPECT_DOUBLE_EQ(uniform.work_rate, uniform_as_list.work_rate);
  EXPECT_EQ(uniform.total_slots, uniform_as_list.total_slots);
}

TEST(Placer, DisabledAdmissionPlacesEverything) {
  const auto cap = small_device().capacity;
  Placer p({small_device()}, PlacementPolicy::kRoundRobin,
           /*admission_margin=*/0.0);
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(
        p.place(make_task(i, "t" + std::to_string(i), 0.5, cap)).has_value());
  }
  EXPECT_EQ(p.rejected(), 0);
  EXPECT_EQ(p.task_count(0), 40);
  EXPECT_GT(p.utilization(0), 1.0);  // load tracking still works
}

}  // namespace
}  // namespace sgprs::cluster
