#include "cluster/placer.hpp"

#include <gtest/gtest.h>

#include "gpu/sharing.hpp"
#include "gpu/speedup.hpp"

namespace sgprs::cluster {
namespace {

using common::SimTime;

// Analytical capacities for the two device classes, 2 contexts x 4 streams
// at half the device (the shapes the cluster layer builds by default).
rt::PoolCapacityModel capacity_of(int total_sms, int sm_per_ctx) {
  return rt::pool_capacity(gpu::SpeedupModel::rtx2080ti(),
                           gpu::SharingParams{}, total_sms, 2, sm_per_ctx,
                           4);
}

PlacerDevice small_device() {
  PlacerDevice d;
  d.spec = gpu::rtx2080ti();
  d.pool_sms = 34;
  d.capacity = capacity_of(68, 34);
  return d;
}

PlacerDevice big_device() {
  PlacerDevice d;
  d.spec = gpu::rtx3090();
  d.pool_sms = 41;
  d.capacity = capacity_of(82, 41);
  return d;
}

/// Synthetic periodic task whose offered work rate is `frac` of
/// `capacity.work_rate`. Profiled at both fleet pool sizes so admission's
/// WCET lookups succeed on either device class. A heavy task (large frac)
/// serially occupies one slot for several periods, so saturation tests
/// relax the deadline via `deadline_factor` to make the *utilization*
/// budget the binding constraint.
rt::Task make_task(int id, const std::string& name, double frac,
                   const rt::PoolCapacityModel& capacity,
                   double deadline_factor = 1.0) {
  const double period_sec = 1.0 / 30.0;
  rt::Task t;
  t.id = id;
  t.name = name;
  t.period = SimTime::from_sec(period_sec);
  t.deadline = SimTime::from_sec(period_sec * deadline_factor);
  const auto speedup = gpu::SpeedupModel::rtx2080ti();
  // utilization_test: offered = total_at(ref) * speedup(conv, ref) / period
  // with ref = smallest profiled SM size (34 here).
  const double wcet_sec = frac * capacity.work_rate * period_sec /
                          speedup.speedup(gpu::OpClass::kConv, 34.0);
  t.wcet.per_stage.resize(1);
  for (int sms : {34, 41}) {
    t.wcet.per_stage[0][sms] = SimTime::from_sec(wcet_sec);
    t.wcet.total[sms] = SimTime::from_sec(wcet_sec);
  }
  return t;
}

TEST(Placer, RoundRobinRotatesAcrossDevices) {
  Placer p({small_device(), small_device(), small_device()},
           PlacementPolicy::kRoundRobin);
  const auto cap = small_device().capacity;
  std::vector<int> assigned;
  for (int i = 0; i < 6; ++i) {
    const auto d = p.place(make_task(i, "t" + std::to_string(i), 0.05, cap));
    ASSERT_TRUE(d.has_value());
    assigned.push_back(*d);
  }
  EXPECT_EQ(assigned, (std::vector<int>{0, 1, 2, 0, 1, 2}));
}

TEST(Placer, LeastLoadedEvensOutUtilizationFraction) {
  Placer p({small_device(), big_device()}, PlacementPolicy::kLeastLoaded);
  const auto cap = small_device().capacity;
  // Empty fleet: tie on 0 utilization, stable order picks device 0.
  EXPECT_EQ(p.place(make_task(0, "a", 0.1, cap)), std::optional<int>(0));
  // Device 0 now carries load; the empty device 1 must win.
  EXPECT_EQ(p.place(make_task(1, "b", 0.1, cap)), std::optional<int>(1));
  // Fractions stay within one task of each other as placements continue.
  for (int i = 2; i < 10; ++i) {
    ASSERT_TRUE(p.place(make_task(i, "t" + std::to_string(i), 0.1, cap)));
  }
  EXPECT_NEAR(p.utilization(0), p.utilization(1), 0.11);
}

TEST(Placer, BinPackBestFitPrefersSmallestSpareThatAdmits) {
  Placer p({small_device(), big_device()},
           PlacementPolicy::kBinPackUtilization);
  const auto cap = small_device().capacity;
  // Best-fit: the 2080 Ti has the smaller absolute spare capacity and the
  // task fits there, so binpack must start on device 0 — the 3090 is held
  // back for work that needs it. (The pre-fix placer sorted spare
  // *descending*; that behaviour lives on as kWorstFit below.)
  EXPECT_EQ(p.place(make_task(0, "a", 0.05, cap)), std::optional<int>(0));
  // It keeps filling the smaller device while tasks still fit there.
  EXPECT_EQ(p.place(make_task(1, "b", 0.05, cap)), std::optional<int>(0));
  EXPECT_EQ(p.task_count(1), 0);
  // A task too big for the 2080 Ti's remaining headroom spills to the
  // 3090 instead of being rejected.
  EXPECT_EQ(p.place(make_task(2, "big", 0.9, cap, 10.0)),
            std::optional<int>(1));
}

TEST(Placer, WorstFitPrefersLargestSpareCapacity) {
  Placer p({small_device(), big_device()}, PlacementPolicy::kWorstFit);
  const auto cap = small_device().capacity;
  // The 3090 has the larger absolute spare capacity, so — unlike
  // least-loaded, which ties on fraction and picks device 0 — worst-fit
  // must start on device 1.
  EXPECT_EQ(p.place(make_task(0, "a", 0.05, cap)), std::optional<int>(1));
  // It keeps choosing the bigger device until its spare dips below the
  // 2080 Ti's.
  EXPECT_GT(p.task_count(1), 0);
}

TEST(Placer, RemainingCapacityClampsAtZeroUnderForcedOverload) {
  const auto cap = small_device().capacity;
  Placer p({small_device()}, PlacementPolicy::kRoundRobin,
           /*admission_margin=*/0.0);
  // Disabled-margin placement accepts far more work than the device has
  // capacity for; the spare-capacity readout must saturate at zero, not
  // go negative (regression: it used to return budget - offered raw).
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        p.place(make_task(i, "t" + std::to_string(i), 0.5, cap)).has_value());
  }
  EXPECT_GT(p.utilization(0), 1.0);
  EXPECT_EQ(p.remaining_capacity(0), 0.0);
}

TEST(Placer, HashAffinityIsDeterministicAndSticky) {
  const auto cap = small_device().capacity;
  Placer p({small_device(), small_device(), small_device(), small_device()},
           PlacementPolicy::kHashAffinity);
  const auto home = p.place(make_task(0, "camera-7", 0.01, cap));
  ASSERT_TRUE(home.has_value());
  // Same name keeps landing on the same device.
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(p.place(make_task(i, "camera-7", 0.01, cap)), home);
  }
  // And a fresh placer reproduces the mapping (stable hash, not
  // std::hash).
  Placer q({small_device(), small_device(), small_device(), small_device()},
           PlacementPolicy::kHashAffinity);
  EXPECT_EQ(q.place(make_task(0, "camera-7", 0.01, cap)), home);
}

TEST(Placer, HashAffinityProbesPastSaturatedHome) {
  const auto cap = small_device().capacity;
  Placer p({small_device(), small_device()}, PlacementPolicy::kHashAffinity);
  // Saturate the home device of "hot" with heavy relaxed-deadline tasks.
  const auto home = p.place(make_task(0, "hot", 0.45, cap, 10.0));
  ASSERT_TRUE(home.has_value());
  ASSERT_EQ(p.place(make_task(1, "hot", 0.45, cap, 10.0)), home);
  // The next "hot" task no longer fits at home (utilization would reach
  // 1.35 > margin) but must spill to the other device instead of being
  // rejected.
  const auto spill = p.place(make_task(2, "hot", 0.45, cap, 10.0));
  ASSERT_TRUE(spill.has_value());
  EXPECT_NE(*spill, *home);
}

TEST(Placer, RejectsWhenEveryDeviceIsSaturated) {
  const auto cap = small_device().capacity;
  Placer p({small_device(), small_device()}, PlacementPolicy::kLeastLoaded);
  int placed = 0;
  int i = 0;
  // Each task demands 45% of a device (relaxed deadline so utilization is
  // the binding test): two fit per device, the fifth finds no room.
  while (placed < 32) {
    const auto d =
        p.place(make_task(i, "t" + std::to_string(i), 0.45, cap, 10.0));
    ++i;
    if (!d) break;
    ++placed;
  }
  EXPECT_EQ(placed, 4);
  EXPECT_EQ(p.rejected(), 1);
  // Once saturated, equally heavy tasks keep being rejected on every
  // policy's probe order.
  EXPECT_FALSE(
      p.place(make_task(i + 1, "late", 0.45, cap, 10.0)).has_value());
  EXPECT_EQ(p.rejected(), 2);
}

TEST(Placer, HeterogeneousPoolCapacityModelsPerContextSizes) {
  // The list-based pool_capacity overload (used by Cluster for explicit
  // per-context SM limits) must model the actual layout, not context 0
  // replicated — a {10, 58} pool clearly outperforms uniform {10, 10}.
  const auto speedup = gpu::SpeedupModel::rtx2080ti();
  const auto lopsided = rt::pool_capacity(speedup, gpu::SharingParams{}, 68,
                                          std::vector<int>{10, 58}, 4);
  const auto tiny = rt::pool_capacity(speedup, gpu::SharingParams{}, 68,
                                      std::vector<int>{10, 10}, 4);
  const auto uniform = rt::pool_capacity(speedup, gpu::SharingParams{}, 68,
                                         2, 34, 4);
  EXPECT_GT(lopsided.work_rate, tiny.work_rate);
  // And the uniform overload is exactly the list overload's special case.
  const auto uniform_as_list = rt::pool_capacity(
      speedup, gpu::SharingParams{}, 68, std::vector<int>{34, 34}, 4);
  EXPECT_DOUBLE_EQ(uniform.work_rate, uniform_as_list.work_rate);
  EXPECT_EQ(uniform.total_slots, uniform_as_list.total_slots);
}

TEST(Placer, HashAffinityRehomesWhenTheFleetGrows) {
  // Pins the documented caveat (docs/online-fleet.md): homes are
  // fnv1a(name) % active_devices, so adding a device re-homes names to
  // the new modulus — a grown placer agrees with a placer *built* at the
  // larger size, not with its own earlier assignments.
  const auto cap = small_device().capacity;
  const std::vector<std::string> names = {"cam-0", "cam-1", "cam-2",
                                          "cam-3", "cam-7", "lidar-1"};
  Placer grown({small_device(), small_device(), small_device(),
                small_device()},
               PlacementPolicy::kHashAffinity);
  Placer fresh5({small_device(), small_device(), small_device(),
                 small_device(), small_device()},
                PlacementPolicy::kHashAffinity);
  grown.add_device(small_device());
  int id = 0;
  bool any_rehomed = false;
  for (const auto& name : names) {
    Placer fresh4({small_device(), small_device(), small_device(),
                   small_device()},
                  PlacementPolicy::kHashAffinity);
    const auto old_home = fresh4.place(make_task(id, name, 0.01, cap));
    const auto new_home = grown.place(make_task(id, name, 0.01, cap));
    const auto want = fresh5.place(make_task(id, name, 0.01, cap));
    ASSERT_TRUE(new_home.has_value());
    EXPECT_EQ(new_home, want) << name;
    any_rehomed = any_rehomed || new_home != old_home;
    ++id;
  }
  // At least one of these names maps differently mod 5 than mod 4 —
  // the mid-run re-homing the docs warn about.
  EXPECT_TRUE(any_rehomed);
}

/// `mem_gib` of the device's 11 GiB budget, `frac` of its work rate.
rt::Task make_mem_task(int id, const std::string& name, double frac,
                       double mem_gib, const rt::PoolCapacityModel& cap,
                       double deadline_factor = 1.0) {
  rt::Task t = make_task(id, name, frac, cap, deadline_factor);
  t.mem_bytes = static_cast<std::int64_t>(mem_gib * (1ll << 30));
  return t;
}

PlacerDevice small_device_with_mem(double mem_gib) {
  PlacerDevice d = small_device();
  d.spec.mem_bytes = static_cast<std::int64_t>(mem_gib * (1ll << 30));
  return d;
}

TEST(Placer, BinPackMemoryPacksFewerDevicesThanLeastLoaded) {
  const auto cap = small_device().capacity;
  const auto fleet = [] {
    return std::vector<PlacerDevice>{
        small_device_with_mem(4.0), small_device_with_mem(4.0),
        small_device_with_mem(4.0), small_device_with_mem(4.0)};
  };
  Placer packer(fleet(), PlacementPolicy::kBinPackMemory);
  Placer spreader(fleet(), PlacementPolicy::kLeastLoaded);
  // Eight 1 GiB streams with negligible compute: memory is the binding
  // dimension.
  for (int i = 0; i < 8; ++i) {
    const std::string name = "t" + std::to_string(i);
    ASSERT_TRUE(packer.place(make_mem_task(i, name, 0.01, 1.0, cap)));
    ASSERT_TRUE(spreader.place(make_mem_task(i, name, 0.01, 1.0, cap)));
  }
  auto devices_used = [](const Placer& p) {
    int used = 0;
    for (int d = 0; d < p.num_devices(); ++d) {
      used += p.task_count(d) > 0 ? 1 : 0;
    }
    return used;
  };
  // Same admitted work, strictly fewer devices touched: best-fit memory
  // packing fills a device before opening the next one.
  EXPECT_EQ(devices_used(packer), 2);
  EXPECT_EQ(devices_used(spreader), 4);
  // And every placement respected the per-device budget.
  for (int d = 0; d < packer.num_devices(); ++d) {
    EXPECT_GE(packer.remaining_mem_bytes(d), 0);
  }
}

TEST(Placer, PlaceExClassifiesMemoryExhaustionAsOom) {
  const auto cap = small_device().capacity;
  Placer p({small_device_with_mem(2.0)}, PlacementPolicy::kLeastLoaded);
  ASSERT_TRUE(p.place(make_mem_task(0, "a", 0.05, 1.5, cap)).has_value());
  // Plenty of compute headroom, no memory: oom.
  const PlaceResult oom = p.place_ex(make_mem_task(1, "b", 0.05, 1.0, cap));
  EXPECT_FALSE(oom.device.has_value());
  EXPECT_TRUE(oom.oom);
  EXPECT_EQ(p.rejected(), 1);
  EXPECT_EQ(p.oom_rejected(), 1);
  // Plenty of memory, no compute: a plain rejection, not oom. (Relaxed
  // deadlines so the utilization budget, not response time, binds.)
  Placer q({small_device_with_mem(8.0)}, PlacementPolicy::kLeastLoaded);
  ASSERT_TRUE(q.place(make_mem_task(0, "a", 0.45, 1.0, cap, 10.0)).has_value());
  ASSERT_TRUE(q.place(make_mem_task(1, "b", 0.45, 1.0, cap, 10.0)).has_value());
  const PlaceResult util =
      q.place_ex(make_mem_task(2, "c", 0.45, 1.0, cap, 10.0));
  EXPECT_FALSE(util.device.has_value());
  EXPECT_FALSE(util.oom);
  EXPECT_EQ(q.oom_rejected(), 0);
}

TEST(Placer, PlaceBatchMatchesSequentialPlacementForStableOrderPolicies) {
  // For every policy that does not reorder its input (everything except
  // the two binpack BFD policies), one batched call must produce exactly
  // the placements sequential place() calls produce.
  const auto cap = small_device().capacity;
  for (const PlacementPolicy policy :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kLeastLoaded,
        PlacementPolicy::kWorstFit, PlacementPolicy::kHashAffinity}) {
    Placer seq({small_device(), big_device(), small_device()}, policy);
    Placer batch({small_device(), big_device(), small_device()}, policy);
    std::vector<rt::Task> tasks;
    for (int i = 0; i < 12; ++i) {
      tasks.push_back(make_task(i, "t" + std::to_string(i % 5),
                                0.05 + 0.03 * (i % 4), cap));
    }
    std::vector<std::optional<int>> want;
    for (const auto& t : tasks) want.push_back(seq.place(t));
    const std::vector<PlaceResult> got = batch.place_batch(tasks);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i].device, want[i])
          << "policy " << to_string(policy) << " task " << i;
    }
  }
}

TEST(Placer, PlaceBatchBinPackPlacesDecreasing) {
  // The binpack batch path is CASE-style best-fit-*decreasing*: items are
  // placed heaviest-first, so a big task is never stranded by small ones
  // that could have fit anywhere.
  const auto cap = small_device().capacity;
  auto fleet = [] {
    return std::vector<PlacerDevice>{small_device_with_mem(4.0),
                                     small_device_with_mem(4.0)};
  };
  // {1, 1, 3, 3} GiB onto two 4 GiB devices, submitted small-first:
  // sequential best-fit strands the last 3 GiB task (1 GiB holes on both
  // devices), BFD packs {3,1} + {3,1} and fits everything.
  std::vector<rt::Task> tasks;
  tasks.push_back(make_mem_task(0, "s0", 0.01, 1.0, cap));
  tasks.push_back(make_mem_task(1, "s1", 0.01, 1.0, cap));
  tasks.push_back(make_mem_task(2, "b0", 0.01, 3.0, cap));
  tasks.push_back(make_mem_task(3, "b1", 0.01, 3.0, cap));
  Placer seq(fleet(), PlacementPolicy::kBinPackMemory);
  int seq_placed = 0;
  for (const auto& t : tasks) seq_placed += seq.place(t) ? 1 : 0;
  EXPECT_EQ(seq_placed, 3);
  EXPECT_EQ(seq.oom_rejected(), 1);
  Placer batch(fleet(), PlacementPolicy::kBinPackMemory);
  const auto results = batch.place_batch(tasks);
  for (const auto& r : results) {
    EXPECT_TRUE(r.device.has_value());
    EXPECT_FALSE(r.oom);
  }
  EXPECT_EQ(batch.oom_rejected(), 0);
}

TEST(Placer, DisabledAdmissionPlacesEverything) {
  const auto cap = small_device().capacity;
  Placer p({small_device()}, PlacementPolicy::kRoundRobin,
           /*admission_margin=*/0.0);
  for (int i = 0; i < 40; ++i) {
    EXPECT_TRUE(
        p.place(make_task(i, "t" + std::to_string(i), 0.5, cap)).has_value());
  }
  EXPECT_EQ(p.rejected(), 0);
  EXPECT_EQ(p.task_count(0), 40);
  EXPECT_GT(p.utilization(0), 1.0);  // load tracking still works
}

}  // namespace
}  // namespace sgprs::cluster
