#include <gtest/gtest.h>

#include "metrics/fleet.hpp"
#include "workload/scenario.hpp"

namespace sgprs {
namespace {

using common::SimTime;

metrics::DeviceReport device_report(int index, int sms, int tasks,
                                    std::int64_t on_time, std::int64_t late,
                                    std::int64_t dropped, double fps,
                                    double mean_ms, double util) {
  metrics::DeviceReport d;
  d.device_index = index;
  d.total_sms = sms;
  d.tasks_assigned = tasks;
  d.snapshot.counts.released = on_time + late + dropped;
  d.snapshot.counts.on_time = on_time;
  d.snapshot.counts.late = late;
  d.snapshot.counts.dropped = dropped;
  d.snapshot.fps = fps;
  d.snapshot.fps_on_time = fps;
  d.snapshot.mean_latency_ms = mean_ms;
  d.snapshot.p50_latency_ms = mean_ms;
  d.snapshot.p99_latency_ms = 2.0 * mean_ms;
  d.snapshot.max_latency_ms = 3.0 * mean_ms;
  // The rollup derives fleet latency from merged histograms, not from the
  // scalar fields above: one sample per completed frame, all at mean_ms.
  for (std::int64_t i = 0; i < on_time + late; ++i) {
    d.snapshot.latency_hist_ms.add(mean_ms);
  }
  d.utilization = util;
  return d;
}

TEST(FleetRollup, CountsAndRatesSumAcrossDevices) {
  const auto a = device_report(0, 68, 4, 90, 10, 0, 100.0, 10.0, 0.5);
  const auto b = device_report(1, 82, 6, 180, 0, 20, 180.0, 20.0, 0.25);
  const auto fleet = metrics::roll_up({a, b}, /*tasks_rejected=*/3);

  EXPECT_EQ(fleet.fleet.counts.on_time, 270);
  EXPECT_EQ(fleet.fleet.counts.late, 10);
  EXPECT_EQ(fleet.fleet.counts.dropped, 20);
  EXPECT_EQ(fleet.fleet.counts.released, 300);
  EXPECT_DOUBLE_EQ(fleet.fleet.fps, 280.0);
  // DMR recomputed from summed counts: (10 late + 20 dropped) / 300.
  EXPECT_DOUBLE_EQ(fleet.fleet.dmr, 0.1);
  // Latency comes from the merged histograms (exact distribution merge):
  // 100 samples at 10 ms and 180 at 20 ms.
  EXPECT_DOUBLE_EQ(fleet.fleet.mean_latency_ms,
                   (100.0 * 10.0 + 180.0 * 20.0) / 280.0);
  EXPECT_DOUBLE_EQ(fleet.fleet.max_latency_ms, 20.0);
  // The fleet median sits in the 20 ms mass (rank 139.5 of 280), exactly —
  // no per-device percentile averaging.
  EXPECT_DOUBLE_EQ(fleet.fleet.p50_latency_ms, 20.0);
  // Utilization weights by SM count: (68*0.5 + 82*0.25) / 150.
  EXPECT_DOUBLE_EQ(fleet.mean_utilization, (68.0 * 0.5 + 82.0 * 0.25) / 150.0);
  EXPECT_EQ(fleet.tasks_assigned, 10);
  EXPECT_EQ(fleet.tasks_rejected, 3);
}

TEST(FleetRollup, EmptyFleetIsAllZero) {
  const auto fleet = metrics::roll_up({}, 0);
  EXPECT_DOUBLE_EQ(fleet.fleet.fps, 0.0);
  EXPECT_DOUBLE_EQ(fleet.fleet.dmr, 0.0);
  EXPECT_DOUBLE_EQ(fleet.mean_utilization, 0.0);
}

workload::ScenarioConfig base_config(workload::SchedulerKind kind,
                                     int tasks) {
  workload::ScenarioConfig cfg;
  cfg.scheduler = kind;
  cfg.num_contexts = 2;
  cfg.oversubscription = 1.5;
  cfg.num_tasks = tasks;
  cfg.duration = SimTime::from_sec(1.0);
  cfg.warmup = SimTime::from_ms(200);
  return cfg;
}

TEST(ClusterScenario, OneDeviceClusterIsBitIdenticalToSingleGpu) {
  for (auto kind :
       {workload::SchedulerKind::kSgprs, workload::SchedulerKind::kNaive}) {
    auto cfg = base_config(kind, 8);
    const auto single = workload::run_scenario(cfg);
    cfg.num_devices = 1;
    const auto fleet = workload::run_cluster_scenario(cfg);

    ASSERT_EQ(static_cast<int>(fleet.fleet.devices.size()), 1);
    const auto& dev = fleet.fleet.devices[0].snapshot;
    const auto& agg = single.aggregate;
    EXPECT_EQ(fleet.rejected_task_ids.size(), 0u) << to_string(kind);
    EXPECT_EQ(dev.counts.released, agg.counts.released) << to_string(kind);
    EXPECT_EQ(dev.counts.on_time, agg.counts.on_time) << to_string(kind);
    EXPECT_EQ(dev.counts.late, agg.counts.late) << to_string(kind);
    EXPECT_EQ(dev.counts.dropped, agg.counts.dropped) << to_string(kind);
    EXPECT_DOUBLE_EQ(dev.fps, agg.fps) << to_string(kind);
    EXPECT_DOUBLE_EQ(dev.dmr, agg.dmr) << to_string(kind);
    EXPECT_DOUBLE_EQ(dev.p50_latency_ms, agg.p50_latency_ms)
        << to_string(kind);
    EXPECT_DOUBLE_EQ(dev.p99_latency_ms, agg.p99_latency_ms)
        << to_string(kind);
    EXPECT_EQ(fleet.releases, single.releases) << to_string(kind);
    EXPECT_EQ(fleet.stage_migrations, single.stage_migrations)
        << to_string(kind);
    EXPECT_EQ(fleet.medium_promotions, single.medium_promotions)
        << to_string(kind);
    EXPECT_DOUBLE_EQ(fleet.fleet.devices[0].busy_sm_seconds,
                     single.gpu_busy_sm_seconds)
        << to_string(kind);
  }
}

TEST(ClusterScenario, FleetAggregateEqualsSumOfPerDevice) {
  auto cfg = base_config(workload::SchedulerKind::kSgprs, 18);
  cfg.num_devices = 3;
  cfg.placement = cluster::PlacementPolicy::kRoundRobin;
  const auto r = workload::run_cluster_scenario(cfg);

  ASSERT_EQ(static_cast<int>(r.fleet.devices.size()), 3);
  std::int64_t released = 0, on_time = 0, late = 0, dropped = 0;
  double fps = 0.0;
  int tasks = 0;
  for (const auto& d : r.fleet.devices) {
    released += d.snapshot.counts.released;
    on_time += d.snapshot.counts.on_time;
    late += d.snapshot.counts.late;
    dropped += d.snapshot.counts.dropped;
    fps += d.snapshot.fps;
    tasks += d.tasks_assigned;
    EXPECT_EQ(d.tasks_assigned, 6);  // round-robin spreads 18 evenly
  }
  EXPECT_EQ(r.fleet.fleet.counts.released, released);
  EXPECT_EQ(r.fleet.fleet.counts.on_time, on_time);
  EXPECT_EQ(r.fleet.fleet.counts.late, late);
  EXPECT_EQ(r.fleet.fleet.counts.dropped, dropped);
  EXPECT_DOUBLE_EQ(r.fleet.fleet.fps, fps);
  EXPECT_EQ(r.fleet.tasks_assigned + r.fleet.tasks_rejected, 18);
  EXPECT_EQ(tasks, r.fleet.tasks_assigned);
}

TEST(ClusterScenario, HeterogeneousFleetRunsAndUsesEveryDevice) {
  auto cfg = base_config(workload::SchedulerKind::kSgprs, 12);
  cfg.fleet = {gpu::rtx2080ti(), gpu::rtx3090()};
  cfg.placement = cluster::PlacementPolicy::kLeastLoaded;
  const auto r = workload::run_cluster_scenario(cfg);

  ASSERT_EQ(static_cast<int>(r.fleet.devices.size()), 2);
  EXPECT_EQ(r.fleet.devices[0].total_sms, 68);
  EXPECT_EQ(r.fleet.devices[1].total_sms, 82);
  for (const auto& d : r.fleet.devices) {
    EXPECT_GT(d.tasks_assigned, 0);
    EXPECT_GT(d.snapshot.fps, 0.0);
    EXPECT_GT(d.utilization, 0.0);
  }
  // Light load on a two-device fleet: nothing rejected, nothing missed.
  EXPECT_EQ(r.fleet.tasks_rejected, 0);
  EXPECT_DOUBLE_EQ(r.dmr(), 0.0);
}

TEST(ClusterScenario, SaturatedFleetRejectsButNeverMisses) {
  auto cfg = base_config(workload::SchedulerKind::kSgprs, 60);
  cfg.num_devices = 2;
  cfg.placement = cluster::PlacementPolicy::kBinPackUtilization;
  const auto r = workload::run_cluster_scenario(cfg);
  // Admission sheds the overload up front...
  EXPECT_GT(r.fleet.tasks_rejected, 0);
  EXPECT_EQ(static_cast<int>(r.rejected_task_ids.size()),
            r.fleet.tasks_rejected);
  // ...so the admitted set still runs clean (the margin is conservative).
  EXPECT_DOUBLE_EQ(r.dmr(), 0.0);
}

}  // namespace
}  // namespace sgprs
