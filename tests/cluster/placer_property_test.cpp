// Property-based check of the placer: for every policy and ~100 random
// task streams, a placement must never land on a device whose augmented
// load fails the admission bound — the utilization of the chosen device
// stays within the margin after every single placement, and rejections
// happen only when no device admits the task.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include "cluster/placer.hpp"
#include "common/rng.hpp"
#include "gpu/sharing.hpp"
#include "gpu/speedup.hpp"

namespace sgprs::cluster {
namespace {

using common::SimTime;

constexpr double kMargin = 0.9;
constexpr int kStreamsPerPolicy = 25;

rt::PoolCapacityModel capacity_of(int total_sms, int sm_per_ctx) {
  return rt::pool_capacity(gpu::SpeedupModel::rtx2080ti(),
                           gpu::SharingParams{}, total_sms, 2, sm_per_ctx, 4);
}

PlacerDevice small_device() {
  PlacerDevice d;
  d.spec = gpu::rtx2080ti();
  d.pool_sms = 34;
  d.capacity = capacity_of(68, 34);
  return d;
}

PlacerDevice big_device() {
  PlacerDevice d;
  d.spec = gpu::rtx3090();
  d.pool_sms = 41;
  d.capacity = capacity_of(82, 41);
  return d;
}

/// Synthetic task demanding `frac` of the small device's capacity, with a
/// relaxed deadline so the utilization budget is the binding admission
/// test (same construction as placer_test.cpp).
rt::Task make_task(int id, const std::string& name, double frac) {
  const double period_sec = 1.0 / 30.0;
  rt::Task t;
  t.id = id;
  t.name = name;
  t.period = SimTime::from_sec(period_sec);
  t.deadline = SimTime::from_sec(period_sec * 10.0);
  const auto speedup = gpu::SpeedupModel::rtx2080ti();
  const auto cap = capacity_of(68, 34);
  const double wcet_sec = frac * cap.work_rate * period_sec /
                          speedup.speedup(gpu::OpClass::kConv, 34.0);
  t.wcet.per_stage.resize(1);
  for (int sms : {34, 41}) {
    t.wcet.per_stage[0][sms] = SimTime::from_sec(wcet_sec);
    t.wcet.total[sms] = SimTime::from_sec(wcet_sec);
  }
  return t;
}

TEST(PlacerProperty, NoPlacementEverExceedsTheAdmissionBound) {
  const PlacementPolicy policies[] = {
      PlacementPolicy::kRoundRobin,          PlacementPolicy::kLeastLoaded,
      PlacementPolicy::kBinPackUtilization,  PlacementPolicy::kBinPackMemory,
      PlacementPolicy::kWorstFit,            PlacementPolicy::kHashAffinity};

  for (const auto policy : policies) {
    for (int stream = 0; stream < kStreamsPerPolicy; ++stream) {
      common::Rng rng(static_cast<std::uint64_t>(stream) * 131 +
                      static_cast<std::uint64_t>(policy) + 1);
      // 2-4 devices, mixed classes.
      std::vector<PlacerDevice> devices;
      const int n = static_cast<int>(rng.uniform_int(2, 4));
      for (int d = 0; d < n; ++d) {
        devices.push_back(rng.next_double() < 0.5 ? small_device()
                                                  : big_device());
      }
      Placer placer(devices, policy, kMargin);

      int placed = 0;
      int rejected = 0;
      const int offered = static_cast<int>(rng.uniform_int(10, 40));
      for (int i = 0; i < offered; ++i) {
        const double frac = rng.uniform(0.02, 0.5);
        const std::string name =
            "t" + std::to_string(rng.uniform_int(0, 6));  // hash collisions
        const auto chosen = placer.place(make_task(i, name, frac));
        if (!chosen) {
          ++rejected;
          continue;
        }
        ++placed;
        ASSERT_GE(*chosen, 0);
        ASSERT_LT(*chosen, placer.num_devices());
        // The property: the device that took the task still satisfies the
        // admission bound afterwards.
        EXPECT_LE(placer.utilization(*chosen), kMargin + 1e-9)
            << "policy " << to_string(policy) << " stream " << stream
            << " placement " << i;
      }
      EXPECT_EQ(placer.rejected(), rejected);
      int counted = 0;
      for (int d = 0; d < placer.num_devices(); ++d) {
        counted += placer.task_count(d);
        // No device, chosen or not, may ever sit above the bound.
        EXPECT_LE(placer.utilization(d), kMargin + 1e-9);
      }
      EXPECT_EQ(counted, placed);
    }
  }
}

TEST(PlacerProperty, MemoryAndOccupancyBudgetsHoldForEveryPolicy) {
  // ~200 seeded random fleets: whatever the policy and the mix of
  // footprints, no device ever holds more task memory than its mem_bytes
  // or more resident warps than threshold * total_warps, and every oom
  // rejection really had memory as a blocker somewhere.
  const PlacementPolicy policies[] = {
      PlacementPolicy::kRoundRobin,          PlacementPolicy::kLeastLoaded,
      PlacementPolicy::kBinPackUtilization,  PlacementPolicy::kBinPackMemory,
      PlacementPolicy::kWorstFit,            PlacementPolicy::kHashAffinity};
  constexpr double kOccupancy = 0.9;
  int fleets = 0;
  for (const auto policy : policies) {
    for (int stream = 0; stream < 34; ++stream) {
      ++fleets;
      common::Rng rng(static_cast<std::uint64_t>(stream) * 977 +
                      static_cast<std::uint64_t>(policy) * 13 + 5);
      std::vector<PlacerDevice> devices;
      std::vector<std::int64_t> mem_budget;
      std::vector<std::int64_t> warp_budget;
      const int n = static_cast<int>(rng.uniform_int(2, 5));
      for (int d = 0; d < n; ++d) {
        PlacerDevice dev =
            rng.next_double() < 0.5 ? small_device() : big_device();
        // Tight budgets (2-6 GiB) so memory actually binds.
        dev.spec.mem_bytes =
            static_cast<std::int64_t>(rng.uniform_int(2, 6)) * (1ll << 30);
        devices.push_back(dev);
        mem_budget.push_back(dev.spec.mem_bytes);
        warp_budget.push_back(dev.spec.total_warps());
      }
      Placer placer(devices, policy, kMargin, kOccupancy);

      std::vector<std::int64_t> mem_used(devices.size(), 0);
      std::vector<std::int64_t> warps_used(devices.size(), 0);
      const int offered = static_cast<int>(rng.uniform_int(15, 45));
      for (int i = 0; i < offered; ++i) {
        rt::Task t = make_task(
            i, "t" + std::to_string(rng.uniform_int(0, 6)),
            rng.uniform(0.02, 0.3));
        t.mem_bytes = static_cast<std::int64_t>(
            rng.uniform(0.0, 2.5) * static_cast<double>(1ll << 30));
        t.warps = static_cast<std::int64_t>(rng.uniform_int(0, 400));
        const PlaceResult r = placer.place_ex(t);
        if (!r.device) continue;
        const int d = *r.device;
        mem_used[d] += t.mem_bytes;
        warps_used[d] += t.warps;
        ASSERT_LE(mem_used[d], mem_budget[d])
            << "policy " << to_string(policy) << " fleet " << stream;
        ASSERT_LE(static_cast<double>(warps_used[d]),
                  kOccupancy * static_cast<double>(warp_budget[d]) + 1e-9)
            << "policy " << to_string(policy) << " fleet " << stream;
        EXPECT_EQ(placer.remaining_mem_bytes(d), mem_budget[d] - mem_used[d]);
      }
      EXPECT_LE(placer.oom_rejected(), placer.rejected());
    }
  }
  EXPECT_EQ(fleets, 204);
}

TEST(PlacerProperty, RejectionImpliesNoDeviceCouldAdmit) {
  // Whenever the placer rejects, by construction every device must be
  // within `frac` of the margin — verify with a task small enough to fit
  // anywhere: it must always place while any device has visible headroom.
  for (int stream = 0; stream < 25; ++stream) {
    common::Rng rng(9000 + stream);
    Placer placer({small_device(), small_device()},
                  PlacementPolicy::kLeastLoaded, kMargin);
    for (int i = 0; i < 60; ++i) {
      const auto chosen = placer.place(make_task(i, "x", 0.3));
      if (chosen) continue;
      // Rejected: neither device can hold another 0.3 of load.
      for (int d = 0; d < placer.num_devices(); ++d) {
        EXPECT_GT(placer.utilization(d) + 0.3, kMargin - 1e-9);
      }
      break;
    }
  }
}

TEST(PlacerProperty, CrashRecoverCyclesKeepAccountingExact) {
  // ~200 seeded fleets through random crash / re-place / recover cycles:
  // the fault path's accounting contract at the placer level. A crash
  // releases the victim's whole reservation exactly once (task_count,
  // utilization and remaining memory all read empty afterwards — a
  // double-release would push remaining_mem_bytes past the budget),
  // re-placements only ever land on active devices, and no task id is
  // resident on two devices at once.
  const PlacementPolicy policies[] = {
      PlacementPolicy::kRoundRobin,          PlacementPolicy::kLeastLoaded,
      PlacementPolicy::kBinPackUtilization,  PlacementPolicy::kBinPackMemory,
      PlacementPolicy::kWorstFit,            PlacementPolicy::kHashAffinity};
  for (int seed = 0; seed < 200; ++seed) {
    common::Rng rng(31337 + static_cast<std::uint64_t>(seed) * 257);
    const auto policy = policies[seed % 6];
    std::vector<PlacerDevice> devices;
    std::vector<std::int64_t> mem_budget;
    const int n = static_cast<int>(rng.uniform_int(2, 4));
    for (int d = 0; d < n; ++d) {
      PlacerDevice dev =
          rng.next_double() < 0.5 ? small_device() : big_device();
      dev.spec.mem_bytes =
          static_cast<std::int64_t>(rng.uniform_int(2, 6)) * (1ll << 30);
      devices.push_back(dev);
      mem_budget.push_back(dev.spec.mem_bytes);
    }
    Placer placer(devices, policy, kMargin);

    int next_id = 0;
    const auto offer = [&](int count) {
      for (int i = 0; i < count; ++i) {
        rt::Task t = make_task(next_id, "t" + std::to_string(next_id % 6),
                               rng.uniform(0.02, 0.25));
        t.mem_bytes = static_cast<std::int64_t>(
            rng.uniform(0.0, 1.5) * static_cast<double>(1ll << 30));
        t.warps = static_cast<std::int64_t>(rng.uniform_int(0, 300));
        ++next_id;
        (void)placer.place_ex(t);
      }
    };
    // The full-fleet invariant, checked after every mutation: disjoint
    // residency and exact per-device memory accounting.
    std::vector<char> down(static_cast<std::size_t>(n), 0);
    const auto verify = [&] {
      std::set<int> seen;
      for (int d = 0; d < n; ++d) {
        std::int64_t mem = 0;
        for (const rt::Task& t : placer.placed_on(d)) {
          EXPECT_TRUE(seen.insert(t.id).second)
              << "task " << t.id << " resident on two devices (seed "
              << seed << ")";
          mem += t.mem_bytes;
        }
        EXPECT_EQ(placer.remaining_mem_bytes(d), mem_budget[d] - mem)
            << "device " << d << " seed " << seed;
        if (down[static_cast<std::size_t>(d)]) {
          EXPECT_EQ(placer.task_count(d), 0);
          EXPECT_DOUBLE_EQ(placer.utilization(d), 0.0);
        }
      }
    };

    offer(static_cast<int>(rng.uniform_int(8, 16)));
    verify();

    for (int step = 0; step < 6; ++step) {
      std::vector<int> active;
      std::vector<int> failed;
      for (int d = 0; d < n; ++d) {
        (down[static_cast<std::size_t>(d)] ? failed : active).push_back(d);
      }
      const bool crash = !failed.empty()
                             ? rng.next_double() < 0.5 && active.size() > 1
                             : active.size() > 1;
      if (crash) {
        const int victim = active[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(active.size()) - 1))];
        // Crash: orphan every resident task, then deactivate — the same
        // sequence the fleet runtime's crash_device performs.
        const std::vector<rt::Task> orphans = placer.placed_on(victim);
        for (const rt::Task& t : orphans) {
          EXPECT_TRUE(placer.remove_task(victim, t.id));
        }
        placer.set_device_active(victim, false);
        down[static_cast<std::size_t>(victim)] = 1;
        EXPECT_EQ(placer.task_count(victim), 0);
        EXPECT_DOUBLE_EQ(placer.utilization(victim), 0.0);
        EXPECT_EQ(placer.remaining_mem_bytes(victim), mem_budget[victim]);
        // Failover: re-offer the orphans; any that land must land on a
        // surviving device.
        for (const rt::Task& t : orphans) {
          const PlaceResult r = placer.place_ex(t);
          if (r.device) {
            EXPECT_NE(*r.device, victim);
            EXPECT_FALSE(down[static_cast<std::size_t>(*r.device)]);
          }
        }
      } else if (!failed.empty()) {
        const int back = failed[static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(failed.size()) - 1))];
        placer.set_device_active(back, true);
        down[static_cast<std::size_t>(back)] = 0;
        EXPECT_EQ(placer.remaining_mem_bytes(back), mem_budget[back]);
      }
      offer(static_cast<int>(rng.uniform_int(0, 4)));
      verify();
    }
  }
}

TEST(PlacerProperty, DisabledAdmissionNeverRejects) {
  for (const auto policy :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kLeastLoaded,
        PlacementPolicy::kBinPackUtilization, PlacementPolicy::kBinPackMemory,
        PlacementPolicy::kWorstFit, PlacementPolicy::kHashAffinity}) {
    Placer placer({small_device(), big_device()}, policy,
                  /*admission_margin=*/0.0);
    common::Rng rng(1234);
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(placer
                      .place(make_task(i, "t" + std::to_string(i % 5),
                                       rng.uniform(0.1, 0.8)))
                      .has_value());
    }
    EXPECT_EQ(placer.rejected(), 0);
  }
}

}  // namespace
}  // namespace sgprs::cluster
