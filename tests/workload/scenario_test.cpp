#include "workload/scenario.hpp"

#include <gtest/gtest.h>

namespace sgprs::workload {
namespace {

using common::SimTime;

ScenarioConfig quick(SchedulerKind kind, int tasks, int contexts = 2,
                     double os = 1.0) {
  ScenarioConfig cfg;
  cfg.scheduler = kind;
  cfg.num_contexts = contexts;
  cfg.oversubscription = os;
  cfg.num_tasks = tasks;
  cfg.duration = SimTime::from_sec(1.0);
  cfg.warmup = SimTime::from_ms(200);
  return cfg;
}

TEST(Scenario, LowLoadMeetsEveryDeadlineBothSchedulers) {
  for (auto kind : {SchedulerKind::kSgprs, SchedulerKind::kNaive}) {
    const auto r = run_scenario(quick(kind, 4));
    EXPECT_DOUBLE_EQ(r.dmr(), 0.0) << to_string(kind);
    EXPECT_NEAR(r.fps(), 120.0, 6.0) << to_string(kind);
    EXPECT_EQ(static_cast<int>(r.per_task.size()), 4);
  }
}

TEST(Scenario, DeterministicForSameSeed) {
  const auto a = run_scenario(quick(SchedulerKind::kSgprs, 10));
  const auto b = run_scenario(quick(SchedulerKind::kSgprs, 10));
  EXPECT_EQ(a.aggregate.counts.released, b.aggregate.counts.released);
  EXPECT_DOUBLE_EQ(a.fps(), b.fps());
  EXPECT_DOUBLE_EQ(a.dmr(), b.dmr());
  EXPECT_EQ(a.stage_migrations, b.stage_migrations);
}

TEST(Scenario, SeedChangesPhasesButNotHealth) {
  auto cfg = quick(SchedulerKind::kSgprs, 8);
  const auto a = run_scenario(cfg);
  cfg.seed = 999;
  const auto b = run_scenario(cfg);
  // Different phases -> different event interleavings, same zero-miss
  // behaviour at low load.
  EXPECT_DOUBLE_EQ(a.dmr(), 0.0);
  EXPECT_DOUBLE_EQ(b.dmr(), 0.0);
}

TEST(Scenario, SgprsOutlastsNaivePivot) {
  // The paper's central claim at sweep granularity: there is a task count
  // where the naive scheduler misses deadlines but SGPRS does not.
  const int n = 19;
  const auto naive = run_scenario(quick(SchedulerKind::kNaive, n));
  const auto sgprs = run_scenario(quick(SchedulerKind::kSgprs, n, 2, 2.0));
  EXPECT_GT(naive.dmr(), 0.05);
  EXPECT_DOUBLE_EQ(sgprs.dmr(), 0.0);
  EXPECT_GT(sgprs.fps(), naive.fps());
}

TEST(Scenario, NaiveIgnoresOversubscription) {
  const auto a = run_scenario(quick(SchedulerKind::kNaive, 10, 2, 1.0));
  const auto b = run_scenario(quick(SchedulerKind::kNaive, 10, 2, 2.0));
  EXPECT_DOUBLE_EQ(a.fps(), b.fps()) << "naive pool is always os=1.0";
}

TEST(Scenario, MigrationCountersOnlyForSgprs) {
  const auto naive = run_scenario(quick(SchedulerKind::kNaive, 6));
  EXPECT_EQ(naive.stage_migrations, 0);
  const auto sgprs = run_scenario(quick(SchedulerKind::kSgprs, 6));
  EXPECT_GT(sgprs.stage_migrations, 0);
}

TEST(Scenario, CustomNetworkBuilder) {
  auto cfg = quick(SchedulerKind::kSgprs, 2);
  cfg.network_builder = [] { return dnn::lenet5(); };
  cfg.num_stages = 3;
  const auto r = run_scenario(cfg);
  EXPECT_DOUBLE_EQ(r.dmr(), 0.0);
  EXPECT_NEAR(r.fps(), 60.0, 3.0);
}

TEST(Scenario, SweepProducesOneResultPerCount) {
  auto cfg = quick(SchedulerKind::kSgprs, 1);
  cfg.duration = SimTime::from_ms(600);
  cfg.warmup = SimTime::from_ms(100);
  const auto sweep = sweep_num_tasks(cfg, 2, 6);
  ASSERT_EQ(sweep.size(), 5u);
  // FPS grows linearly with task count below the pivot.
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_NEAR(sweep[i].fps(), 30.0 * (2 + static_cast<int>(i)), 6.0);
  }
}

TEST(Scenario, FindPivotIdentifiesFirstMiss) {
  // Synthesize sweep results rather than running 20 simulations.
  std::vector<ScenarioResult> sweep(5);
  for (auto& r : sweep) r.aggregate.dmr = 0.0;
  EXPECT_EQ(find_pivot(sweep, 10), 14) << "no misses -> last count";
  sweep[3].aggregate.dmr = 0.02;
  sweep[4].aggregate.dmr = 0.10;
  EXPECT_EQ(find_pivot(sweep, 10), 12);
  sweep[0].aggregate.dmr = 0.5;
  EXPECT_EQ(find_pivot(sweep, 10), 9) << "missing from the start";
}

TEST(Scenario, GpuBusyAccountingPositive) {
  const auto r = run_scenario(quick(SchedulerKind::kSgprs, 4));
  EXPECT_GT(r.gpu_busy_sm_seconds, 0.0);
  EXPECT_GT(r.sim_events, 0.0);
}

TEST(Scenario, InvalidConfigThrows) {
  auto cfg = quick(SchedulerKind::kSgprs, 0);
  EXPECT_THROW(run_scenario(cfg), common::CheckError);
  auto cfg2 = quick(SchedulerKind::kSgprs, 1);
  cfg2.warmup = cfg2.duration;
  EXPECT_THROW(run_scenario(cfg2), common::CheckError);
}

TEST(Scenario, ValidateIsTheSingleCheckedEntryPoint) {
  EXPECT_NO_THROW(validate(quick(SchedulerKind::kSgprs, 4)));

  auto cfg = quick(SchedulerKind::kSgprs, 4);
  cfg.fps = 0.0;
  EXPECT_THROW(validate(cfg), common::CheckError);
  cfg = quick(SchedulerKind::kSgprs, 4);
  cfg.oversubscription = 0.5;
  EXPECT_THROW(validate(cfg), common::CheckError);
  cfg = quick(SchedulerKind::kSgprs, 4);
  cfg.num_stages = 0;
  EXPECT_THROW(validate(cfg), common::CheckError);
  cfg = quick(SchedulerKind::kSgprs, 4);
  cfg.num_devices = 0;
  EXPECT_THROW(validate(cfg), common::CheckError);
  cfg.fleet = {gpu::rtx3090()};  // an explicit fleet satisfies the check
  EXPECT_NO_THROW(validate(cfg));
  cfg = quick(SchedulerKind::kSgprs, 4);
  cfg.admission_margin = 1.5;
  EXPECT_THROW(validate(cfg), common::CheckError);
  cfg = quick(SchedulerKind::kSgprs, 4);
  cfg.sgprs.max_in_flight_per_task = 0;
  EXPECT_THROW(validate(cfg), common::CheckError);
}

TEST(Scenario, ValidateMessagesNameTheField) {
  auto cfg = quick(SchedulerKind::kSgprs, 4);
  cfg.oversubscription = 0.5;
  try {
    validate(cfg);
    FAIL() << "expected CheckError";
  } catch (const common::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("oversubscription"),
              std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace sgprs::workload
