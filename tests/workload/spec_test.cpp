#include "workload/spec.hpp"

#include <gtest/gtest.h>

#include <fstream>

namespace sgprs::workload {
namespace {

using common::SimTime;

ScenarioSpec parse(const std::string& json,
                   const std::string& name = "test_spec") {
  return parse_scenario_spec(common::parse_json(json), name);
}

/// A tiny heterogeneous spec that runs in well under a second.
constexpr const char* kTinyMixed = R"({
  "scheduler": "sgprs",
  "pool": { "contexts": 2, "oversubscription": 1.5 },
  "sim": { "duration_s": 0.6, "warmup_s": 0.1 },
  "tasks": [
    { "name": "cam", "count": 2, "network": "lenet5", "fps": 30, "stages": 3 },
    { "name": "tiny", "count": 1, "network": "mlp3", "fps": 60, "stages": 2 }
  ]
})";

TEST(SpecParse, FullDocumentRoundTrips) {
  const auto spec = parse(R"({
    "name": "full",
    "description": "everything set",
    "scheduler": "naive",
    "device": "3090",
    "pool": { "contexts": 3, "oversubscription": 2.0, "context_sms": [40, 20] },
    "sim": { "duration_s": 1.5, "warmup_s": 0.25, "seed": 7, "jitter_phases": false },
    "sgprs": { "medium_boost": false, "abort_hopeless": true,
               "max_in_flight": 2, "queue_order": "fifo" },
    "naive": { "max_in_flight": 3, "host_sync_gap_ms": 0.5 },
    "tasks": [
      { "name": "cam", "count": 4, "network": "resnet50", "fps": 15,
        "stages": 8, "deadline_ms": 50, "phase_ms": 3.5,
        "priority": "all_high" },
      { "count": 2, "network": "lenet5", "stages": 3,
        "arrival": "sporadic", "min_separation_ms": 16.7,
        "max_separation_ms": 40 }
    ]
  })");
  EXPECT_EQ(spec.name, "full");
  EXPECT_EQ(spec.description, "everything set");
  EXPECT_EQ(spec.base.scheduler, SchedulerKind::kNaive);
  EXPECT_EQ(spec.base.device.total_sms, 82);
  EXPECT_EQ(spec.base.num_contexts, 3);
  EXPECT_DOUBLE_EQ(spec.base.oversubscription, 2.0);
  EXPECT_EQ(spec.base.context_sms, (std::vector<int>{40, 20}));
  EXPECT_EQ(spec.base.duration, SimTime::from_sec(1.5));
  EXPECT_EQ(spec.base.warmup, SimTime::from_sec(0.25));
  EXPECT_EQ(spec.base.seed, 7u);
  EXPECT_FALSE(spec.base.jitter_phases);
  EXPECT_FALSE(spec.base.sgprs.medium_boost);
  EXPECT_TRUE(spec.base.sgprs.abort_hopeless);
  EXPECT_EQ(spec.base.sgprs.max_in_flight_per_task, 2);
  EXPECT_EQ(spec.base.sgprs.queue_order, rt::QueueOrder::kFifo);
  EXPECT_EQ(spec.base.naive.max_in_flight_per_task, 3);
  EXPECT_FALSE(spec.fleet_mode);

  ASSERT_EQ(spec.tasks.size(), 2u);
  const auto& cam = spec.tasks[0];
  EXPECT_EQ(cam.name, "cam");
  EXPECT_EQ(cam.count, 4);
  EXPECT_EQ(cam.network, "resnet50");
  EXPECT_DOUBLE_EQ(cam.fps, 15.0);
  EXPECT_EQ(cam.num_stages, 8);
  EXPECT_DOUBLE_EQ(cam.deadline_ms, 50.0);
  EXPECT_DOUBLE_EQ(cam.phase_ms, 3.5);
  EXPECT_EQ(cam.priority_policy, rt::PriorityPolicy::kAllHigh);
  EXPECT_EQ(cam.arrival, rt::ArrivalModel::kPeriodic);
  const auto& burst = spec.tasks[1];
  EXPECT_EQ(burst.arrival, rt::ArrivalModel::kSporadic);
  EXPECT_DOUBLE_EQ(burst.min_separation_ms, 16.7);
  EXPECT_DOUBLE_EQ(burst.max_separation_ms, 40.0);
}

TEST(SpecParse, FleetSection) {
  const auto spec = parse(R"({
    "fleet": { "devices": ["2080ti", "3090"], "placement": "binpack",
               "admission_margin": 0.9 },
    "tasks": [ { "count": 4 } ]
  })");
  EXPECT_TRUE(spec.fleet_mode);
  ASSERT_EQ(spec.base.fleet.size(), 2u);
  EXPECT_EQ(spec.base.fleet[1].total_sms, 82);
  EXPECT_EQ(spec.base.placement, cluster::PlacementPolicy::kBinPackUtilization);
  EXPECT_DOUBLE_EQ(spec.base.admission_margin, 0.9);

  const auto counted = parse(R"({
    "fleet": { "devices": 3 },
    "tasks": [ { "count": 4 } ]
  })");
  EXPECT_TRUE(counted.fleet_mode);
  EXPECT_EQ(counted.base.num_devices, 3);
  EXPECT_TRUE(counted.base.fleet.empty()) << "count = copies of base.device";
}

TEST(SpecParse, FootprintAndMemoryKeys) {
  const auto spec = parse(R"({
    "fleet": { "devices": 2, "placement": "binpack_memory",
               "occupancy_threshold": 0.8, "device_mem_mb": 4096 },
    "tasks": [
      { "count": 1, "mem_mb": 512.5, "warps": 96 },
      { "count": 1 }
    ]
  })");
  EXPECT_EQ(spec.base.placement, cluster::PlacementPolicy::kBinPackMemory);
  EXPECT_DOUBLE_EQ(spec.base.occupancy_threshold, 0.8);
  EXPECT_DOUBLE_EQ(spec.base.device_mem_mb, 4096.0);
  EXPECT_DOUBLE_EQ(spec.tasks[0].mem_mb, 512.5);
  EXPECT_EQ(spec.tasks[0].warps, 96);
  // Omitted overrides keep the derive-from-profile sentinel.
  EXPECT_DOUBLE_EQ(spec.tasks[1].mem_mb, -1.0);
  EXPECT_EQ(spec.tasks[1].warps, -1);

  // The worstfit alias (pre-fix binpack ordering) parses too.
  const auto wf = parse(R"({
    "fleet": { "devices": 2, "placement": "worstfit" },
    "tasks": [ { "count": 1 } ]
  })");
  EXPECT_EQ(wf.base.placement, cluster::PlacementPolicy::kWorstFit);

  // Range validation: negative overrides and out-of-range thresholds.
  auto invalid = parse(R"({
    "fleet": { "devices": 2 },
    "tasks": [ { "count": 1, "mem_mb": -5 } ]
  })");
  EXPECT_THROW(validate(invalid), SpecError);
  auto bad_occ = parse(R"({
    "fleet": { "devices": 2, "occupancy_threshold": 1.5 },
    "tasks": [ { "count": 1 } ]
  })");
  EXPECT_THROW(validate(bad_occ), SpecError);
}

TEST(SpecParse, UnknownKeysAreErrors) {
  EXPECT_THROW(parse(R"({"tasks": [{}], "shceduler": "sgprs"})"), SpecError);
  EXPECT_THROW(parse(R"({"tasks": [{}], "pool": {"contxts": 2}})"),
               SpecError);
  EXPECT_THROW(parse(R"({"tasks": [{"fsp": 30}]})"), SpecError);
  try {
    parse(R"({"tasks": [{}], "pool": {"contxts": 2}})");
  } catch (const SpecError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("spec.pool"), std::string::npos) << msg;
    EXPECT_NE(msg.find("contxts"), std::string::npos) << msg;
    EXPECT_NE(msg.find("allowed"), std::string::npos) << msg;
  }
}

TEST(SpecParse, SporadicFpsAndMinSeparationConflict) {
  // fps is only the shorthand for min_separation on sporadic tasks;
  // stating both is rejected instead of silently preferring one.
  EXPECT_THROW(parse(R"({"tasks": [
    { "arrival": "sporadic", "fps": 60, "min_separation_ms": 100 }
  ]})"),
               SpecError);
  EXPECT_NO_THROW(parse(R"({"tasks": [
    { "arrival": "sporadic", "fps": 60 }
  ]})"));
  EXPECT_NO_THROW(parse(R"({"tasks": [
    { "arrival": "sporadic", "min_separation_ms": 100 }
  ]})"));
}

TEST(SpecParse, BadEnumsNameTheAlternatives) {
  try {
    parse(R"({"scheduler": "fifo", "tasks": [{}]})");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("sgprs|naive"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(parse(R"({"device": "titan", "tasks": [{}]})"), SpecError);
  EXPECT_THROW(parse(R"({"tasks": [{"arrival": "poisson"}]})"), SpecError);
  EXPECT_THROW(parse(R"({"tasks": [{"priority": "highest"}]})"), SpecError);
  EXPECT_THROW(
      parse(R"({"fleet": {"placement": "spread"}, "tasks": [{}]})"),
      SpecError);
}

TEST(SpecParse, TypeMismatchNamesFieldPath) {
  try {
    parse(R"({"pool": {"contexts": "two"}, "tasks": [{}]})");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("spec.pool.contexts"), std::string::npos) << msg;
  }
  EXPECT_THROW(parse(R"({"tasks": [{"fps": "fast"}]})"), SpecError);
  EXPECT_THROW(parse(R"({"tasks": [{"count": 2.5}]})"), SpecError);
  EXPECT_THROW(parse(R"({"tasks": "lots"})"), SpecError);
  EXPECT_THROW(parse(R"({"fleet": {"devices": true}, "tasks": [{}]})"),
               SpecError);
}

TEST(SpecValidate, TaskEntryRules) {
  auto base = parse(kTinyMixed);
  EXPECT_NO_THROW(validate(base));

  auto bad = base;
  bad.tasks[0].fps = 0.0;
  EXPECT_THROW(validate(bad), SpecError);
  bad = base;
  bad.tasks[0].count = 0;
  EXPECT_THROW(validate(bad), SpecError);
  bad = base;
  bad.tasks[0].network = "resnet1b";
  EXPECT_THROW(validate(bad), SpecError);
  bad = base;
  bad.tasks[0].min_separation_ms = 10.0;  // separations on a periodic task
  EXPECT_THROW(validate(bad), SpecError);
  bad = base;
  bad.tasks[0].arrival = rt::ArrivalModel::kSporadic;
  bad.tasks[0].min_separation_ms = 50.0;
  bad.tasks[0].max_separation_ms = 20.0;
  EXPECT_THROW(validate(bad), SpecError);
}

TEST(SpecValidate, TasksXorGenerator) {
  EXPECT_THROW(validate(parse(R"({"sim": {"duration_s": 1}})")), SpecError);
  auto both = parse(kTinyMixed);
  both.generator = GeneratorSpec{};
  EXPECT_THROW(validate(both), SpecError);
}

TEST(SpecValidate, BaseConfigErrorsSurfaceAsSpecErrors) {
  auto spec = parse(kTinyMixed);
  spec.base.oversubscription = 0.5;
  try {
    validate(spec);
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("oversubscription"),
              std::string::npos)
        << e.what();
  }
  spec = parse(kTinyMixed);
  spec.base.warmup = spec.base.duration;
  EXPECT_THROW(validate(spec), SpecError);
  spec = parse(kTinyMixed);
  spec.base.admission_margin = 1.5;
  EXPECT_THROW(validate(spec), SpecError);
}

TEST(SpecLower, SumsReplicaCounts) {
  const auto spec = parse(kTinyMixed);
  EXPECT_FALSE(is_simple_spec(spec)) << "two entries";
  EXPECT_EQ(lower(spec).num_tasks, 3);

  const auto gen = parse(R"({
    "generator": { "count": 5, "total_utilization": 1.0 }
  })");
  EXPECT_EQ(lower(gen).num_tasks, 5);
}

TEST(SpecLower, SimpleSpecFillsTaskFields) {
  const auto spec = parse(R"({
    "tasks": [ { "count": 7, "network": "mobilenet", "fps": 15, "stages": 4,
                 "priority": "all_low" } ]
  })");
  EXPECT_TRUE(is_simple_spec(spec));
  const auto cfg = lower(spec);
  EXPECT_EQ(cfg.num_tasks, 7);
  EXPECT_DOUBLE_EQ(cfg.fps, 15.0);
  EXPECT_EQ(cfg.num_stages, 4);
  EXPECT_EQ(cfg.priority_policy, rt::PriorityPolicy::kAllLow);
  ASSERT_TRUE(cfg.network_builder);
}

TEST(SpecLower, ExplicitPhaseOrDeadlineLeavesFastPath) {
  auto spec = parse(R"({"tasks": [ { "count": 2, "phase_ms": 0 } ]})");
  EXPECT_FALSE(is_simple_spec(spec));
  spec = parse(R"({"tasks": [ { "count": 2, "deadline_ms": 20 } ]})");
  EXPECT_FALSE(is_simple_spec(spec));
  spec = parse(R"({"tasks": [ { "count": 2, "arrival": "sporadic" } ]})");
  EXPECT_FALSE(is_simple_spec(spec));
}

TEST(SpecBuilder, HeterogeneousTaskSet) {
  const auto spec = parse(kTinyMixed);
  const auto cfg = lower(spec);
  const auto tasks = task_builder_for(spec)(cfg, {51});
  ASSERT_EQ(tasks.size(), 3u);
  EXPECT_EQ(tasks[0].name, "cam0");
  EXPECT_EQ(tasks[1].name, "cam1");
  EXPECT_EQ(tasks[2].name, "tiny2");
  EXPECT_EQ(tasks[0].id, 0);
  EXPECT_EQ(tasks[2].id, 2);
  EXPECT_EQ(tasks[0].period, SimTime::from_sec(1.0 / 30.0));
  EXPECT_EQ(tasks[2].period, SimTime::from_sec(1.0 / 60.0));
  EXPECT_EQ(tasks[0].stage_count(), 3);
  EXPECT_EQ(tasks[2].stage_count(), 2);
}

TEST(SpecBuilder, SporadicFieldsAndWorstCasePeriod) {
  const auto spec = parse(R"({
    "tasks": [ { "count": 1, "network": "lenet5", "stages": 2,
                 "arrival": "sporadic", "min_separation_ms": 20,
                 "max_separation_ms": 50 } ]
  })");
  const auto tasks = task_builder_for(spec)(lower(spec), {51});
  ASSERT_EQ(tasks.size(), 1u);
  EXPECT_EQ(tasks[0].arrival, rt::ArrivalModel::kSporadic);
  EXPECT_EQ(tasks[0].min_separation, SimTime::from_ms(20));
  EXPECT_EQ(tasks[0].max_separation, SimTime::from_ms(50));
  // Built at the worst-case rate: period == min_separation, so admission
  // and utilization math stay conservative.
  EXPECT_EQ(tasks[0].period, SimTime::from_ms(20));
}

TEST(SpecRun, HeterogeneousSpecRuns) {
  const auto r = run_spec(parse(kTinyMixed));
  EXPECT_FALSE(r.fleet);
  EXPECT_EQ(r.single.per_task.size(), 3u);
  EXPECT_GT(r.fps(), 0.0);
  EXPECT_DOUBLE_EQ(r.dmr(), 0.0) << "tiny networks at low load";
}

TEST(SpecRun, SporadicSpecRunsAndIsDeterministic) {
  const char* kSporadic = R"({
    "pool": { "contexts": 2 },
    "sim": { "duration_s": 0.8, "warmup_s": 0.1 },
    "tasks": [
      { "name": "burst", "count": 3, "network": "lenet5",
        "stages": 2, "arrival": "sporadic", "min_separation_ms": 16.7,
        "max_separation_ms": 60 }
    ]
  })";
  const auto a = run_spec(parse(kSporadic));
  const auto b = run_spec(parse(kSporadic));
  EXPECT_GT(a.releases(), 0);
  EXPECT_EQ(a.releases(), b.releases());
  EXPECT_DOUBLE_EQ(a.fps(), b.fps());
  // The scenario seed must reach the sporadic arrival rngs: a different
  // seed samples a different arrival realization.
  auto reseeded = parse(kSporadic);
  reseeded.base.seed = 12345;
  const auto c = run_spec(reseeded);
  EXPECT_NE(std::make_pair(c.releases(), c.fps()),
            std::make_pair(a.releases(), a.fps()));
  // Sporadic spacing only stretches inter-arrivals, so the release count
  // stays below the periodic ceiling at the same min separation.
  EXPECT_LT(a.releases(), static_cast<std::int64_t>(3 * 0.8 / 0.0167) + 3);
}

TEST(SpecRun, GeneratorSpecRuns) {
  const auto r = run_spec(parse(R"({
    "pool": { "contexts": 2, "oversubscription": 1.5 },
    "sim": { "duration_s": 0.6, "warmup_s": 0.1 },
    "generator": { "count": 4, "total_utilization": 0.8,
                   "networks": ["lenet5", "mlp3"], "stages": 2, "seed": 3 }
  })"));
  EXPECT_EQ(r.single.per_task.size(), 4u);
  EXPECT_GT(r.fps(), 0.0);
}

TEST(SpecRun, FleetSpecRuns) {
  const auto r = run_spec(parse(R"({
    "pool": { "contexts": 2 },
    "sim": { "duration_s": 0.6, "warmup_s": 0.1 },
    "fleet": { "devices": 2, "placement": "roundrobin" },
    "tasks": [ { "count": 4, "network": "lenet5", "fps": 30, "stages": 3 } ]
  })"));
  EXPECT_TRUE(r.fleet);
  EXPECT_EQ(r.cluster.fleet.devices.size(), 2u);
  EXPECT_EQ(r.cluster.fleet.tasks_assigned, 4);
  EXPECT_GT(r.fps(), 0.0);
}

// --- The acceptance pin: the curated Scenario 1 spec reproduces the
// hard-coded path exactly, metric for metric. ---

TEST(SpecPin, PaperScenario1BitIdenticalToHardCodedPath) {
  const auto spec = load_scenario_spec(std::string(SGPRS_SOURCE_DIR) +
                                       "/scenarios/paper_scenario1.json");
  EXPECT_EQ(spec.name, "paper_scenario1");
  ASSERT_TRUE(is_simple_spec(spec))
      << "the pin scenario must lower onto the identical-task fast path";
  const auto via_spec = run_spec(spec);

  // The hard-coded Scenario 1 operating point (bench figure_base(2) at
  // os=1.5 with 16 tasks).
  ScenarioConfig cfg;
  cfg.scheduler = SchedulerKind::kSgprs;
  cfg.num_contexts = 2;
  cfg.oversubscription = 1.5;
  cfg.num_tasks = 16;
  cfg.fps = 30.0;
  cfg.num_stages = 6;
  cfg.duration = SimTime::from_sec(2.0);
  cfg.warmup = SimTime::from_sec(0.4);
  cfg.seed = 42;
  const auto hard = run_scenario(cfg);

  const auto& a = via_spec.single;
  EXPECT_EQ(a.releases, hard.releases);
  EXPECT_EQ(a.stage_migrations, hard.stage_migrations);
  EXPECT_EQ(a.medium_promotions, hard.medium_promotions);
  EXPECT_DOUBLE_EQ(a.sim_events, hard.sim_events);
  EXPECT_DOUBLE_EQ(a.gpu_busy_sm_seconds, hard.gpu_busy_sm_seconds);
  EXPECT_EQ(a.aggregate.counts.released, hard.aggregate.counts.released);
  EXPECT_EQ(a.aggregate.counts.on_time, hard.aggregate.counts.on_time);
  EXPECT_EQ(a.aggregate.counts.late, hard.aggregate.counts.late);
  EXPECT_EQ(a.aggregate.counts.dropped, hard.aggregate.counts.dropped);
  EXPECT_DOUBLE_EQ(a.aggregate.fps, hard.aggregate.fps);
  EXPECT_DOUBLE_EQ(a.aggregate.fps_on_time, hard.aggregate.fps_on_time);
  EXPECT_DOUBLE_EQ(a.aggregate.dmr, hard.aggregate.dmr);
  EXPECT_DOUBLE_EQ(a.aggregate.mean_latency_ms,
                   hard.aggregate.mean_latency_ms);
  EXPECT_DOUBLE_EQ(a.aggregate.p50_latency_ms, hard.aggregate.p50_latency_ms);
  EXPECT_DOUBLE_EQ(a.aggregate.p99_latency_ms, hard.aggregate.p99_latency_ms);
  EXPECT_DOUBLE_EQ(a.aggregate.max_latency_ms, hard.aggregate.max_latency_ms);
  ASSERT_EQ(a.per_task.size(), hard.per_task.size());
  for (std::size_t i = 0; i < a.per_task.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.per_task[i].fps, hard.per_task[i].fps) << "task " << i;
    EXPECT_DOUBLE_EQ(a.per_task[i].p99_latency_ms,
                     hard.per_task[i].p99_latency_ms)
        << "task " << i;
  }
}

TEST(SpecPin, CuratedLibraryParsesAndValidates) {
  const std::string dir = std::string(SGPRS_SOURCE_DIR) + "/scenarios";
  for (const char* name :
       {"paper_scenario1", "paper_scenario2", "naive_baseline",
        "multi_tenant_mixed", "sporadic_bursts", "heterogeneous_fleet",
        "overload_admission", "uunifast_capacity",
        "constrained_deadlines"}) {
    EXPECT_NO_THROW(load_scenario_spec(dir + "/" + name + ".json")) << name;
  }
}

TEST(SpecLoad, MalformedFileErrors) {
  const std::string path = testing::TempDir() + "sgprs_bad_spec.json";
  {
    std::ofstream out(path);
    out << "{ \"tasks\": [ { \"fps\": 30 }, ] }";  // trailing comma
  }
  EXPECT_THROW(load_scenario_spec(path), common::JsonError);
  {
    std::ofstream out(path);
    out << "{ \"tasks\": [ { \"fps\": -1 } ] }";
  }
  EXPECT_THROW(load_scenario_spec(path), SpecError);
  EXPECT_THROW(load_scenario_spec("/nonexistent/nope.json"),
               common::JsonError);
}

}  // namespace
}  // namespace sgprs::workload
