#include "workload/suite.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

namespace sgprs::workload {
namespace {

namespace fs = std::filesystem;

class SuiteTest : public testing::Test {
 protected:
  void SetUp() override {
    // One directory per test case: ctest runs each case as its own process,
    // so a shared path races under `ctest -j`.
    const auto* info = testing::UnitTest::GetInstance()->current_test_info();
    dir_ = fs::path(testing::TempDir()) /
           (std::string("sgprs_suite_test_") + info->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  void write_spec(const std::string& name, const std::string& body) {
    std::ofstream out(dir_ / name);
    out << body;
  }

  fs::path dir_;
};

constexpr const char* kGood = R"({
  "description": "tiny but healthy",
  "pool": { "contexts": 2 },
  "sim": { "duration_s": 0.5, "warmup_s": 0.1 },
  "tasks": [ { "count": 2, "network": "lenet5", "fps": 30, "stages": 3 } ]
})";

TEST_F(SuiteTest, RunsEverySpecInFilenameOrder) {
  write_spec("b_second.json", kGood);
  write_spec("a_first.json", kGood);
  write_spec("notes.txt", "not a spec — must be ignored");

  const auto runs = run_suite(dir_.string());
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_EQ(runs[0].scenario, "a_first");
  EXPECT_EQ(runs[1].scenario, "b_second");
  EXPECT_TRUE(suite_ok(runs));
  for (const auto& r : runs) {
    EXPECT_TRUE(r.ok) << r.error;
    EXPECT_GT(r.result.fps(), 0.0);
    EXPECT_EQ(r.description, "tiny but healthy");
  }
}

TEST_F(SuiteTest, DynamicSpecFillsTimeSeriesColumns) {
  write_spec("dyn.json", R"({
    "description": "tiny churn run",
    "pool": { "contexts": 2 },
    "sim": { "duration_s": 0.6, "warmup_s": 0.1 },
    "fleet": { "devices": 1, "admission_margin": 0.9 },
    "tasks": [ { "name": "cam", "count": 2, "network": "lenet5",
                 "fps": 30, "stages": 3 } ],
    "timeline": {
      "templates": [ { "name": "x", "network": "lenet5", "fps": 30,
                       "stages": 3 } ],
      "events": [ { "at_s": 0.2, "admit": "x", "count": 2 },
                  { "at_s": 0.4, "retire": "x", "count": 1 } ]
    }
  })");

  const auto runs = run_suite(dir_.string());
  ASSERT_EQ(runs.size(), 1u);
  ASSERT_TRUE(runs[0].ok) << runs[0].error;
  EXPECT_TRUE(runs[0].result.dynamic);
  EXPECT_EQ(runs[0].result.dyn.streams_admitted, 4);
  EXPECT_EQ(runs[0].result.dyn.streams_retired, 1);

  std::ostringstream csv;
  write_suite_csv(runs, csv);
  std::istringstream lines(csv.str());
  std::string header, row;
  std::getline(lines, header);
  std::getline(lines, row);
  EXPECT_NE(
      header.find(",peak_devices,rejected_streams,oom_streams,shed_jobs,"
                  "devices_failed,failovers,streams_lost,unavailability_s,"),
      std::string::npos)
      << header;
  // peak_devices=1, then zero rejected/oom/shed and zero fault columns
  // for this tiny fault-free world.
  EXPECT_NE(row.find(",1,0,0,0,0,0,0,0.000,,"), std::string::npos) << row;

  std::ostringstream json;
  write_suite_json(runs, json);
  const auto doc = common::parse_json(json.str());
  const auto& rec = doc.at("scenarios").items()[0];
  EXPECT_TRUE(rec.at("dynamic").as_bool());
  EXPECT_EQ(rec.at("streams_admitted").as_int(), 4);
  EXPECT_EQ(rec.at("peak_devices").as_int(), 1);

  std::ostringstream table;
  print_suite(runs, table);
  EXPECT_NE(table.str().find("peak devs"), std::string::npos);
}

TEST_F(SuiteTest, FailingSpecBecomesErrorRowNotAbort) {
  write_spec("a_good.json", kGood);
  write_spec("b_broken.json", R"({ "tasks": [ { "fps": -5 } ] })");
  write_spec("c_unparseable.json", "{ not json");

  const auto runs = run_suite(dir_.string());
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_TRUE(runs[0].ok);
  EXPECT_FALSE(runs[1].ok);
  EXPECT_NE(runs[1].error.find("fps"), std::string::npos) << runs[1].error;
  EXPECT_FALSE(runs[2].ok);
  EXPECT_FALSE(suite_ok(runs));
  EXPECT_EQ(runs[2].scenario, "c_unparseable") << "file stem names failures";
}

TEST_F(SuiteTest, EmptyOrMissingDirectoryThrows) {
  EXPECT_THROW(run_suite((dir_ / "nope").string()), SpecError);
  EXPECT_THROW(run_suite(dir_.string()), SpecError) << "no .json files";
}

TEST_F(SuiteTest, CsvReportHasOneRowPerScenario) {
  write_spec("a_good.json", kGood);
  write_spec("b_broken.json", "{ not json");
  const auto runs = run_suite(dir_.string());

  std::ostringstream csv;
  write_suite_csv(runs, csv);
  std::istringstream lines(csv.str());
  std::string line;
  int rows = 0;
  std::getline(lines, line);
  EXPECT_EQ(line.rfind("scenario,file,status", 0), 0u) << line;
  while (std::getline(lines, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, 2);
  EXPECT_NE(csv.str().find("a_good,"), std::string::npos);
  EXPECT_NE(csv.str().find(",failed,"), std::string::npos);
}

TEST_F(SuiteTest, JsonReportParsesBackAndCarriesMetrics) {
  write_spec("a_good.json", kGood);
  const auto runs = run_suite(dir_.string());

  std::ostringstream out;
  write_suite_json(runs, out);
  // The report must round-trip through our own reader.
  const auto doc = common::parse_json(out.str());
  EXPECT_EQ(doc.at("suite_size").as_int(), 1);
  EXPECT_TRUE(doc.at("all_ok").as_bool());
  const auto& rows = doc.at("scenarios").items();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].at("scenario").as_string(), "a_good");
  EXPECT_TRUE(rows[0].at("ok").as_bool());
  EXPECT_GT(rows[0].at("fps").as_number(), 0.0);
  EXPECT_EQ(rows[0].at("tasks").as_int(), 2);
}

TEST_F(SuiteTest, ErrorRowsCarryTheFieldPathIntoCsvAndJson) {
  // A semantic spec error has a precise field path; the machine-readable
  // reports must carry it structurally, not just inside the human table.
  write_spec("bad_field.json",
             R"({ "tasks": [ { "network": "lenet5" }, { "fps": -5 } ] })");
  const auto runs = run_suite(dir_.string());
  ASSERT_EQ(runs.size(), 1u);
  ASSERT_FALSE(runs[0].ok);
  EXPECT_EQ(runs[0].field_path, "spec.tasks[1].fps");

  std::ostringstream csv;
  write_suite_csv(runs, csv);
  std::istringstream lines(csv.str());
  std::string header;
  std::getline(lines, header);
  EXPECT_NE(header.find(",field_path,"), std::string::npos) << header;
  std::string row;
  std::getline(lines, row);
  EXPECT_NE(row.find(",spec.tasks[1].fps,"), std::string::npos) << row;

  std::ostringstream json;
  write_suite_json(runs, json);
  const auto doc = common::parse_json(json.str());
  const auto& rows = doc.at("scenarios").items();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_FALSE(rows[0].at("ok").as_bool());
  EXPECT_EQ(rows[0].at("field_path").as_string(), "spec.tasks[1].fps");
  EXPECT_FALSE(rows[0].at("error").as_string().empty());
}

TEST_F(SuiteTest, ParseErrorsHaveNoFieldPathButStillReport) {
  write_spec("unparseable.json", "{ not json");
  const auto runs = run_suite(dir_.string());
  ASSERT_EQ(runs.size(), 1u);
  ASSERT_FALSE(runs[0].ok);
  EXPECT_TRUE(runs[0].field_path.empty()) << runs[0].field_path;

  std::ostringstream json;
  write_suite_json(runs, json);
  const auto doc = common::parse_json(json.str());
  // No empty/meaningless field_path member on a positional parse error.
  EXPECT_EQ(doc.at("scenarios").items()[0].find("field_path"), nullptr);
}

TEST_F(SuiteTest, PrintSuiteListsFailuresBelowTable) {
  write_spec("a_good.json", kGood);
  write_spec("b_broken.json", "{ not json");
  const auto runs = run_suite(dir_.string());
  std::ostringstream out;
  print_suite(runs, out);
  EXPECT_NE(out.str().find("FAILED"), std::string::npos);
  EXPECT_NE(out.str().find("b_broken.json"), std::string::npos);
}

}  // namespace
}  // namespace sgprs::workload
