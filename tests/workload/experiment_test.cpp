#include "workload/experiment.hpp"

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "common/json.hpp"
#include "common/thread_pool.hpp"

namespace sgprs::workload {
namespace {

/// Tiny-but-real experiment: lenet5 keeps each replication around a
/// millisecond of wall clock, so running the grid many times stays cheap.
constexpr const char* kTinyExperiment = R"({
  "description": "tiny grid for tests",
  "pool": { "contexts": 2 },
  "sim": { "duration_s": 0.4, "warmup_s": 0.1 },
  "tasks": [ { "count": 2, "network": "lenet5", "fps": 40, "stages": 3 } ],
  "experiment": {
    "replications": 3,
    "base_seed": 777,
    "grid": {
      "scheduler": ["sgprs", "naive"],
      "fps_scale": [0.5, 1.0, 2.0]
    }
  }
})";

ExperimentSpec tiny_spec() {
  return parse_experiment_spec(common::parse_json(kTinyExperiment), "tiny");
}

TEST(ExperimentSpecParse, ReadsSectionAndGridInFileOrder) {
  const auto spec = tiny_spec();
  EXPECT_EQ(spec.name, "tiny");
  EXPECT_EQ(spec.replications, 3);
  EXPECT_EQ(spec.base_seed, 777u);
  ASSERT_EQ(spec.axes.size(), 2u);
  EXPECT_EQ(spec.axes[0].name, "scheduler");
  EXPECT_EQ(spec.axes[0].kind, GridAxisKind::kScheduler);
  ASSERT_EQ(spec.axes[0].schedulers.size(), 2u);
  EXPECT_EQ(spec.axes[1].name, "fps_scale");
  ASSERT_EQ(spec.axes[1].numeric.size(), 3u);
  EXPECT_EQ(cell_count(spec), 6u);
  // Base scenario parsed from the same document.
  EXPECT_EQ(spec.base.tasks.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.base.tasks[0].fps, 40.0);
}

TEST(ExperimentSpecParse, MissingExperimentSectionIsAnError) {
  const auto doc = common::parse_json(R"({ "tasks": [ { "fps": 30 } ] })");
  try {
    parse_experiment_spec(doc, "x");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("experiment"), std::string::npos);
  }
}

TEST(ExperimentSpecParse, ScenarioLoaderRejectsExperimentSpecs) {
  const auto doc = common::parse_json(kTinyExperiment);
  try {
    parse_scenario_spec(doc, "tiny");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.path(), "spec.experiment");
    EXPECT_NE(std::string(e.what()).find("--experiment"), std::string::npos);
  }
}

TEST(ExperimentSpecParse, UnknownAxisNamesFieldPath) {
  const auto doc = common::parse_json(R"({
    "tasks": [ { "network": "lenet5" } ],
    "experiment": { "grid": { "typo_axis": [1, 2] } }
  })");
  try {
    parse_experiment_spec(doc, "x");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.path(), "spec.experiment.grid.typo_axis");
  }
}

TEST(ExperimentSpecParse, UnknownExperimentKeyRejected) {
  const auto doc = common::parse_json(R"({
    "tasks": [ { "network": "lenet5" } ],
    "experiment": { "replication": 4 }
  })");
  EXPECT_THROW(parse_experiment_spec(doc, "x"), SpecError);
}

TEST(ExperimentSpecParse, NegativeSeedsRejectedNotWrapped) {
  const auto doc = common::parse_json(R"({
    "tasks": [ { "network": "lenet5" } ],
    "experiment": { "base_seed": -1 }
  })");
  try {
    parse_experiment_spec(doc, "x");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.path(), "spec.experiment.base_seed");
  }
  // Same rule for the sim and generator seeds it would override.
  EXPECT_THROW(parse_scenario_spec(common::parse_json(R"({
    "sim": { "seed": -7 },
    "tasks": [ { "network": "lenet5" } ]
  })"), "x"),
               SpecError);
}

TEST(ExperimentSpecParse, DevicesAxisRangeChecked) {
  // 2^32 + 1 survives as_int but would be UB when cast to int at cell
  // lowering — must be a clean field-path error instead.
  const auto doc = common::parse_json(R"({
    "tasks": [ { "network": "lenet5" } ],
    "experiment": { "grid": { "devices": [2, 4294967297] } }
  })");
  try {
    parse_experiment_spec(doc, "x");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.path(), "spec.experiment.grid.devices[1]");
    EXPECT_NE(std::string(e.what()).find("out of range"), std::string::npos);
  }
  EXPECT_THROW(parse_experiment_spec(common::parse_json(R"({
    "tasks": [ { "network": "lenet5" } ],
    "experiment": { "grid": { "devices": [0] } }
  })"), "x"),
               SpecError);
}

TEST(ExperimentSpecParse, BadAxisValueNamesElementPath) {
  const auto doc = common::parse_json(R"({
    "tasks": [ { "network": "lenet5" } ],
    "experiment": { "grid": { "fps_scale": [1.0, "fast"] } }
  })");
  try {
    parse_experiment_spec(doc, "x");
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.path(), "spec.experiment.grid.fps_scale[1]");
  }
}

TEST(ExperimentValidate, AxisCompatibilityChecks) {
  // utilization axis without a generator.
  auto doc = common::parse_json(R"({
    "tasks": [ { "network": "lenet5" } ],
    "experiment": { "grid": { "utilization": [1.0] } }
  })");
  EXPECT_THROW(validate(parse_experiment_spec(doc, "x")), SpecError);

  // fps_scale axis on a generator spec.
  doc = common::parse_json(R"({
    "generator": { "count": 4 },
    "experiment": { "grid": { "fps_scale": [1.0] } }
  })");
  EXPECT_THROW(validate(parse_experiment_spec(doc, "x")), SpecError);

  // non-positive scale values.
  doc = common::parse_json(R"({
    "tasks": [ { "network": "lenet5" } ],
    "experiment": { "grid": { "fps_scale": [1.0, 0.0] } }
  })");
  try {
    validate(parse_experiment_spec(doc, "x"));
    FAIL() << "expected SpecError";
  } catch (const SpecError& e) {
    EXPECT_EQ(e.path(), "spec.experiment.grid.fps_scale[1]");
  }

  // replications must be positive.
  doc = common::parse_json(R"({
    "tasks": [ { "network": "lenet5" } ],
    "experiment": { "replications": 0 }
  })");
  EXPECT_THROW(validate(parse_experiment_spec(doc, "x")), SpecError);
}

TEST(ExperimentCells, RowMajorEnumerationLastAxisFastest) {
  const auto spec = tiny_spec();  // scheduler (2) x fps_scale (3)
  EXPECT_EQ(cell_coords(spec, 0), (std::vector<std::size_t>{0, 0}));
  EXPECT_EQ(cell_coords(spec, 1), (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(cell_coords(spec, 2), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(cell_coords(spec, 3), (std::vector<std::size_t>{1, 0}));
  EXPECT_EQ(cell_coords(spec, 5), (std::vector<std::size_t>{1, 2}));

  const auto labels = cell_labels(spec, 4);
  ASSERT_EQ(labels.size(), 2u);
  EXPECT_EQ(labels[0].first, "scheduler");
  EXPECT_EQ(labels[0].second, "naive");
  EXPECT_EQ(labels[1].first, "fps_scale");
  EXPECT_EQ(labels[1].second, "1");
}

TEST(ExperimentCells, ScenarioForAppliesAxisValuesAndSeeds) {
  const auto spec = tiny_spec();
  const auto s0 = scenario_for(spec, 0, 0);  // sgprs, fps_scale 0.5
  EXPECT_EQ(s0.base.scheduler, rt::SchedulerKind::kSgprs);
  EXPECT_DOUBLE_EQ(s0.tasks[0].fps, 20.0);
  const auto s5 = scenario_for(spec, 5, 0);  // naive, fps_scale 2.0
  EXPECT_EQ(s5.base.scheduler, rt::SchedulerKind::kNaive);
  EXPECT_DOUBLE_EQ(s5.tasks[0].fps, 80.0);

  // Replications differ only in seed.
  const auto r0 = scenario_for(spec, 2, 0);
  const auto r1 = scenario_for(spec, 2, 1);
  EXPECT_NE(r0.base.seed, r1.base.seed);
  EXPECT_DOUBLE_EQ(r0.tasks[0].fps, r1.tasks[0].fps);
}

TEST(ExperimentSeeds, DeterministicDistinctStreams) {
  // Same coordinates -> same seed, any coordinate change -> new seed.
  EXPECT_EQ(experiment_seed(7, 3, 2, 0), experiment_seed(7, 3, 2, 0));
  std::set<std::uint64_t> seen;
  for (std::uint64_t base : {0ull, 1ull, 42ull}) {
    for (std::size_t cell = 0; cell < 8; ++cell) {
      for (int rep = 0; rep < 8; ++rep) {
        for (std::uint64_t stream : {0ull, 1ull}) {
          seen.insert(experiment_seed(base, cell, rep, stream));
        }
      }
    }
  }
  EXPECT_EQ(seen.size(), 3u * 8u * 8u * 2u) << "no collisions in a tiny box";
}

TEST(ExperimentRun, AggregatesEveryCellAndReplication) {
  const auto spec = tiny_spec();
  const auto r = run_experiment(spec, 1);
  EXPECT_EQ(r.name, "tiny");
  EXPECT_EQ(r.cells.size(), 6u);
  EXPECT_EQ(r.total_runs, 18);
  EXPECT_EQ(r.total_failures, 0);
  for (const auto& cell : r.cells) {
    EXPECT_EQ(cell.runs, 3);
    EXPECT_EQ(static_cast<int>(cell.dmr.count()), 3);
    EXPECT_GT(cell.fps.mean(), 0.0);
    const auto ci = cell.fps_on_time.confidence_interval();
    EXPECT_GE(ci.hi, ci.lo);
  }
  // fps_scale actually moves throughput: compare sgprs cells 0 (0.5x) and
  // 2 (2x): quadruple the offered rate must raise completed FPS.
  EXPECT_GT(r.cells[2].fps.mean(), r.cells[0].fps.mean());
}

/// The acceptance pin: serial execution, a 1-worker pool and a 4-worker
/// pool must produce byte-identical reports.
TEST(ExperimentRun, ReportsByteIdenticalAcrossWorkerCounts) {
  const auto spec = tiny_spec();
  const auto serial = run_experiment(spec, 1);
  const auto pool1 = run_experiment(spec, 1);
  const auto pool4 = run_experiment(spec, 4);

  const auto render = [](const ExperimentResult& r) {
    std::ostringstream csv;
    std::ostringstream json;
    std::ostringstream text;
    write_experiment_csv(r, csv);
    write_experiment_json(r, json);
    print_experiment(r, text);
    return csv.str() + "\n===\n" + json.str() + "\n===\n" + text.str();
  };
  EXPECT_EQ(render(serial), render(pool1));
  EXPECT_EQ(render(serial), render(pool4));
}

TEST(ExperimentRun, InvalidSpecRejectedBeforeAnyRun) {
  // Every cell is validated up front, so a bad base spec (or a bad
  // axis/base combination) aborts the whole experiment with a SpecError
  // instead of burning replications on doomed cells.
  auto spec = tiny_spec();
  spec.base.tasks[0].count = 0;
  EXPECT_THROW(run_experiment(spec, 1), SpecError);
}

TEST(ExperimentRun, FailureRowsRenderInReports) {
  // Failure accounting is plain reduction code; pin the report surface by
  // rendering a hand-built result with one failed cell.
  ExperimentResult r;
  r.name = "failures";
  r.replications = 2;
  r.cells.resize(2);
  r.cells[0].index = 0;
  r.cells[0].coords = {{"scheduler", "sgprs"}};
  r.cells[0].runs = 2;
  r.cells[0].dmr.add(0.0);
  r.cells[0].dmr.add(0.1);
  r.cells[1].index = 1;
  r.cells[1].coords = {{"scheduler", "naive"}};
  r.cells[1].failures = 2;
  r.cells[1].first_error = "spec.pool.contexts: boom";
  r.total_runs = 2;
  r.total_failures = 2;

  std::ostringstream csv;
  write_experiment_csv(r, csv);
  EXPECT_NE(csv.str().find("spec.pool.contexts: boom"), std::string::npos);

  std::ostringstream json;
  write_experiment_json(r, json);
  const auto doc = common::parse_json(json.str());
  EXPECT_EQ(doc.at("total_failures").as_int(), 2);
  EXPECT_EQ(doc.at("results").items()[1].at("failures").as_int(), 2);
  EXPECT_EQ(doc.at("results").items()[1].at("first_error").as_string(),
            "spec.pool.contexts: boom");

  std::ostringstream text;
  print_experiment(r, text);
  EXPECT_NE(text.str().find("2 failed replication(s)"), std::string::npos);
}

TEST(ExperimentRun, JsonReportRoundTrips) {
  const auto spec = tiny_spec();
  const auto r = run_experiment(spec, 2);
  std::ostringstream out;
  write_experiment_json(r, out);
  const auto doc = common::parse_json(out.str());
  EXPECT_EQ(doc.at("experiment").as_string(), "tiny");
  EXPECT_EQ(doc.at("replications").as_int(), 3);
  EXPECT_EQ(doc.at("cells").as_int(), 6);
  EXPECT_EQ(doc.at("total_runs").as_int(), 18);
  const auto& rows = doc.at("results").items();
  ASSERT_EQ(rows.size(), 6u);
  EXPECT_EQ(rows[0].at("coords").at("scheduler").as_string(), "sgprs");
  EXPECT_EQ(rows[0].at("coords").at("fps_scale").as_string(), "0.5");
  EXPECT_GE(rows[0].at("dmr").at("ci95").as_number(), 0.0);
  EXPECT_GT(rows[0].at("fps").at("mean").as_number(), 0.0);
}

TEST(ExperimentRun, CsvHasHeaderAndOneRowPerCell) {
  const auto spec = tiny_spec();
  const auto r = run_experiment(spec, 2);
  std::ostringstream out;
  write_experiment_csv(r, out);
  std::istringstream lines(out.str());
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line.rfind("cell,scheduler,fps_scale,runs,failures,dmr_mean", 0),
            0u)
      << line;
  int rows = 0;
  while (std::getline(lines, line)) {
    if (!line.empty()) ++rows;
  }
  EXPECT_EQ(rows, 6);
}

TEST(ExperimentRun, SeedSweepWithoutGridIsOneCell) {
  // A generator spec makes the seed sweep meaningful: every replication
  // draws a fresh UUniFast task set from its derived generator seed.
  const auto doc = common::parse_json(R"({
    "pool": { "contexts": 2 },
    "sim": { "duration_s": 0.3, "warmup_s": 0.1 },
    "generator": { "count": 4, "total_utilization": 1.5, "stages": 3 },
    "experiment": { "replications": 5, "base_seed": 11 }
  })");
  const auto spec = parse_experiment_spec(doc, "sweep");
  EXPECT_EQ(cell_count(spec), 1u);
  const auto r = run_experiment(spec, 2);
  ASSERT_EQ(r.cells.size(), 1u);
  EXPECT_EQ(r.cells[0].runs, 5);
  EXPECT_EQ(r.cells[0].label(), "all");
  // Distinct task sets per replication -> genuine spread in throughput;
  // the CI must reflect more than one distinct sample.
  EXPECT_GT(r.cells[0].fps.max(), r.cells[0].fps.min());
  EXPECT_GT(r.cells[0].fps.confidence_interval().half_width, 0.0);
}

}  // namespace
}  // namespace sgprs::workload
