#include "workload/taskset.hpp"

#include <gtest/gtest.h>

#include "dnn/builders.hpp"

namespace sgprs::workload {
namespace {

TEST(UUniFast, SumsExactlyToTotal) {
  common::Rng rng(3);
  for (int n : {1, 2, 5, 20}) {
    const auto u = uunifast(n, 2.5, rng);
    ASSERT_EQ(static_cast<int>(u.size()), n);
    double sum = 0.0;
    for (double x : u) {
      EXPECT_GE(x, 0.0);
      sum += x;
    }
    EXPECT_NEAR(sum, 2.5, 1e-9);
  }
}

TEST(UUniFast, DeterministicPerRngState) {
  common::Rng a(9);
  common::Rng b(9);
  EXPECT_EQ(uunifast(8, 1.0, a), uunifast(8, 1.0, b));
}

TEST(UUniFast, DistributionNotDegenerate) {
  common::Rng rng(5);
  const auto u = uunifast(16, 4.0, rng);
  const auto [mn, mx] = std::minmax_element(u.begin(), u.end());
  EXPECT_LT(*mn, *mx) << "samples must differ";
}

TEST(UUniFast, InvalidArgsThrow) {
  common::Rng rng(1);
  EXPECT_THROW(uunifast(0, 1.0, rng), common::CheckError);
  EXPECT_THROW(uunifast(3, 0.0, rng), common::CheckError);
}

class TasksetTest : public ::testing::Test {
 protected:
  TasksetTest()
      : profiler_(gpu::rtx2080ti(), gpu::SpeedupModel::rtx2080ti(),
                  dnn::CostModel::calibrated()) {}
  dnn::Profiler profiler_;
};

TEST_F(TasksetTest, BuildsRequestedCount) {
  RandomTaskSetConfig cfg;
  cfg.count = 10;
  const auto tasks = build_random_taskset(cfg, profiler_, {34});
  ASSERT_EQ(tasks.size(), 10u);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    EXPECT_EQ(tasks[i].id, static_cast<int>(i));
    EXPECT_GT(tasks[i].stage_count(), 0);
    EXPECT_GE(tasks[i].phase, common::SimTime::zero());
    EXPECT_LT(tasks[i].phase, tasks[i].period);
  }
}

TEST_F(TasksetTest, RatesClampedToConfiguredRange) {
  RandomTaskSetConfig cfg;
  cfg.count = 12;
  cfg.min_fps = 10.0;
  cfg.max_fps = 50.0;
  const auto tasks = build_random_taskset(cfg, profiler_, {34});
  for (const auto& t : tasks) {
    const double fps = 1.0 / t.period.to_sec();
    EXPECT_GE(fps, 10.0 - 1e-6);
    EXPECT_LE(fps, 50.0 + 1e-6);
  }
}

TEST_F(TasksetTest, SeedReproducible) {
  RandomTaskSetConfig cfg;
  cfg.count = 6;
  const auto a = build_random_taskset(cfg, profiler_, {34});
  const auto b = build_random_taskset(cfg, profiler_, {34});
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].period, b[i].period);
    EXPECT_EQ(a[i].phase, b[i].phase);
    EXPECT_EQ(a[i].network->name(), b[i].network->name());
  }
}

TEST_F(TasksetTest, DifferentSeedsDiffer) {
  RandomTaskSetConfig cfg;
  cfg.count = 6;
  const auto a = build_random_taskset(cfg, profiler_, {34});
  cfg.seed = 1234;
  const auto b = build_random_taskset(cfg, profiler_, {34});
  bool any_diff = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    any_diff |= a[i].period != b[i].period;
  }
  EXPECT_TRUE(any_diff);
}

TEST_F(TasksetTest, UtilizationRoughlyTracksTarget) {
  // The clamp distorts the tails, but mid-range targets should land near.
  RandomTaskSetConfig cfg;
  cfg.count = 12;
  cfg.total_utilization = 2.0;
  cfg.min_fps = 0.5;
  cfg.max_fps = 10000.0;  // effectively unclamped
  const auto tasks = build_random_taskset(cfg, profiler_, {34});
  double total_u = 0.0;
  for (const auto& t : tasks) {
    total_u += t.wcet.total_at(34).to_sec() / t.period.to_sec();
  }
  EXPECT_NEAR(total_u, 2.0, 0.05);
}

TEST_F(TasksetTest, CustomNetworkChoices) {
  RandomTaskSetConfig cfg;
  cfg.count = 5;
  cfg.network_choices = {[] { return dnn::lenet5(); }};
  cfg.num_stages = 2;
  const auto tasks = build_random_taskset(cfg, profiler_, {34});
  for (const auto& t : tasks) {
    EXPECT_EQ(t.network->name(), "lenet5");
    EXPECT_EQ(t.stage_count(), 2);
  }
}

}  // namespace
}  // namespace sgprs::workload
