// Golden-trace determinism regression: the whole Monte-Carlo layer rests on
// run_spec being a pure function of its spec, including across threads. A
// full-precision digest of every metric a run produces must be bit-identical
// (1) across repeated serial runs and (2) when the same run executes inside
// a 4-worker thread pool next to concurrent replicas. If threading (or a
// stray global) ever perturbs simulation state, this fails loudly.
#include <gtest/gtest.h>

#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "workload/experiment.hpp"
#include "workload/spec.hpp"

namespace sgprs::workload {
namespace {

std::string paper_scenario1_path() {
  return std::string(SGPRS_SOURCE_DIR) + "/scenarios/paper_scenario1.json";
}

void digest_snapshot(std::ostringstream& os, const metrics::Snapshot& s) {
  os << s.counts.released << "," << s.counts.dropped << ","
     << s.counts.on_time << "," << s.counts.late << "," << s.fps << ","
     << s.fps_on_time << "," << s.dmr << "," << s.mean_latency_ms << ","
     << s.p50_latency_ms << "," << s.p99_latency_ms << ","
     << s.max_latency_ms << ";";
}

/// Bit-exact digest: hexfloat formatting means two digests compare equal
/// iff every double is the same bit pattern, not merely close.
std::string digest(const SpecResult& r) {
  std::ostringstream os;
  os << std::hexfloat;
  os << r.name << "|fleet=" << r.fleet << "|";
  digest_snapshot(os, r.aggregate());
  if (r.fleet) {
    for (const auto& d : r.cluster.fleet.devices) {
      os << "dev" << d.device_index << ":";
      digest_snapshot(os, d.snapshot);
    }
    os << "rejected=" << r.cluster.rejected_task_ids.size() << "|";
  } else {
    for (const auto& t : r.single.per_task) digest_snapshot(os, t);
    os << "events=" << r.single.sim_events
       << "|busy=" << r.single.gpu_busy_sm_seconds << "|";
  }
  os << "releases=" << r.releases() << "|migrations=" << r.migrations();
  return os.str();
}

TEST(GoldenTraceDeterminism, PaperScenario1SerialRerunsAreBitIdentical) {
  const auto spec = load_scenario_spec(paper_scenario1_path());
  const std::string first = digest(run_spec(spec));
  const std::string second = digest(run_spec(spec));
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("releases="), std::string::npos);
}

TEST(GoldenTraceDeterminism, FourWorkerPoolMatchesSerialBitForBit) {
  const auto spec = load_scenario_spec(paper_scenario1_path());
  const std::string serial = digest(run_spec(spec));

  // Eight concurrent copies of the same run on four workers: every one
  // must land on the serial digest even while racing the others for CPU.
  common::ThreadPool pool(4);
  std::vector<std::future<std::string>> futures;
  for (int i = 0; i < 8; ++i) {
    futures.push_back(pool.submit([&spec] { return digest(run_spec(spec)); }));
  }
  for (auto& f : futures) EXPECT_EQ(f.get(), serial);
}

TEST(GoldenTraceDeterminism, MixedSpecsInterleavedStayIndependent) {
  // Different specs sharing a pool must not contaminate each other: run
  // scenario1 concurrently with a fleet spec and a generator spec, then
  // verify scenario1's digest still matches its isolated serial run.
  const auto s1 = load_scenario_spec(paper_scenario1_path());
  const auto fleet = load_scenario_spec(std::string(SGPRS_SOURCE_DIR) +
                                        "/scenarios/heterogeneous_fleet.json");
  const auto gen = load_scenario_spec(std::string(SGPRS_SOURCE_DIR) +
                                      "/scenarios/uunifast_capacity.json");
  const std::string serial1 = digest(run_spec(s1));
  const std::string serial_fleet = digest(run_spec(fleet));
  const std::string serial_gen = digest(run_spec(gen));

  common::ThreadPool pool(4);
  auto f1 = pool.submit([&] { return digest(run_spec(s1)); });
  auto f2 = pool.submit([&] { return digest(run_spec(fleet)); });
  auto f3 = pool.submit([&] { return digest(run_spec(gen)); });
  auto f4 = pool.submit([&] { return digest(run_spec(s1)); });
  EXPECT_EQ(f1.get(), serial1);
  EXPECT_EQ(f2.get(), serial_fleet);
  EXPECT_EQ(f3.get(), serial_gen);
  EXPECT_EQ(f4.get(), serial1);
}

}  // namespace
}  // namespace sgprs::workload
