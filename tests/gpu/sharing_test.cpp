#include "gpu/sharing.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/check.hpp"

namespace sgprs::gpu {
namespace {

SharingParams no_interference() {
  SharingParams p;
  p.interference_gamma = 0.0;
  p.oversub_thrash_kappa = 0.0;
  p.contention_exponent = 1.0;  // strict proportional slicing for clarity
  return p;
}

class SharingTest : public ::testing::Test {
 protected:
  SpeedupModel model_ = SpeedupModel::rtx2080ti();
  static constexpr int kTotalSms = 68;
};

TEST_F(SharingTest, LoneKernelGetsFullContext) {
  const auto grants =
      compute_shares(model_, kTotalSms, {34},
                     {{0, 1.0, OpClass::kConv}}, no_interference());
  ASSERT_EQ(grants.size(), 1u);
  EXPECT_DOUBLE_EQ(grants[0].sms, 34.0);
  EXPECT_NEAR(grants[0].rate, model_.speedup(OpClass::kConv, 34.0), 1e-12);
}

TEST_F(SharingTest, EqualWeightsSplitEvenly) {
  const auto grants = compute_shares(
      model_, kTotalSms, {34},
      {{0, 1.0, OpClass::kConv}, {0, 1.0, OpClass::kConv}},
      no_interference());
  EXPECT_DOUBLE_EQ(grants[0].sms, 17.0);
  EXPECT_DOUBLE_EQ(grants[1].sms, 17.0);
}

TEST_F(SharingTest, PriorityWeightSkewsShares) {
  SharingParams p = no_interference();
  p.high_priority_weight = 3.0;
  p.low_priority_weight = 1.0;
  const auto grants = compute_shares(
      model_, kTotalSms, {40},
      {{0, 3.0, OpClass::kConv}, {0, 1.0, OpClass::kConv}}, p);
  EXPECT_DOUBLE_EQ(grants[0].sms, 30.0);
  EXPECT_DOUBLE_EQ(grants[1].sms, 10.0);
}

TEST_F(SharingTest, IndependentContextsDoNotShare) {
  const auto grants = compute_shares(
      model_, kTotalSms, {34, 34},
      {{0, 1.0, OpClass::kConv}, {1, 1.0, OpClass::kReLU}},
      no_interference());
  EXPECT_DOUBLE_EQ(grants[0].sms, 34.0);
  EXPECT_DOUBLE_EQ(grants[1].sms, 34.0);
  // Demand == 68 == total: no contention scaling.
  EXPECT_NEAR(grants[0].rate, model_.speedup(OpClass::kConv, 34.0), 1e-12);
}

TEST_F(SharingTest, OversubscriptionScalesRatesProportionally) {
  // Two 68-SM contexts both active: demand 136 vs 68 physical -> rate halves.
  const auto grants = compute_shares(
      model_, kTotalSms, {68, 68},
      {{0, 1.0, OpClass::kConv}, {1, 1.0, OpClass::kConv}},
      no_interference());
  EXPECT_NEAR(grants[0].rate, model_.speedup(OpClass::kConv, 68.0) * 0.5,
              1e-12);
}

TEST_F(SharingTest, IdleContextDoesNotCountTowardDemand) {
  // Second context exists but has no running kernel: no over-subscription.
  const auto grants =
      compute_shares(model_, kTotalSms, {68, 68},
                     {{0, 1.0, OpClass::kConv}}, no_interference());
  EXPECT_NEAR(grants[0].rate, model_.speedup(OpClass::kConv, 68.0), 1e-12);
}

TEST_F(SharingTest, InterferenceGammaReducesRates) {
  SharingParams p = no_interference();
  p.interference_gamma = 0.1;
  const auto one = compute_shares(model_, kTotalSms, {34, 34},
                                  {{0, 1.0, OpClass::kConv}}, p);
  const auto two = compute_shares(
      model_, kTotalSms, {34, 34},
      {{0, 1.0, OpClass::kConv}, {1, 1.0, OpClass::kConv}}, p);
  // With a second client the first kernel's rate drops by 1/(1+gamma).
  EXPECT_NEAR(two[0].rate, one[0].rate / 1.1, 1e-12);
}

TEST_F(SharingTest, ThrashPenaltyOnlyWhenOversubscribedAndMultiContext) {
  SharingParams p = no_interference();
  p.oversub_thrash_kappa = 0.5;
  // Demand 68 == total: no thrash even with kappa set.
  const auto ok = compute_shares(
      model_, kTotalSms, {34, 34},
      {{0, 1.0, OpClass::kConv}, {1, 1.0, OpClass::kConv}}, p);
  EXPECT_NEAR(ok[0].rate, model_.speedup(OpClass::kConv, 34.0), 1e-12);
  // Demand 102 (1.5x): thrash divisor 1 + 0.5 * 1 * 0.5 = 1.25 on top of
  // the proportional 68/102 contention.
  const auto thrash = compute_shares(
      model_, kTotalSms, {51, 51},
      {{0, 1.0, OpClass::kConv}, {1, 1.0, OpClass::kConv}}, p);
  const double expected =
      model_.speedup(OpClass::kConv, 51.0) * (68.0 / 102.0) / 1.25;
  EXPECT_NEAR(thrash[0].rate, expected, 1e-12);
}

TEST_F(SharingTest, SingleOversubscribedContextHasNoThrash) {
  // Thrash models cross-context MPS switching; one active context is exempt
  // (only proportional contention applies — and demand <= total here).
  SharingParams p = no_interference();
  p.oversub_thrash_kappa = 0.5;
  const auto grants = compute_shares(model_, kTotalSms, {68, 68},
                                     {{0, 1.0, OpClass::kConv}}, p);
  EXPECT_NEAR(grants[0].rate, model_.speedup(OpClass::kConv, 68.0), 1e-12);
}

TEST_F(SharingTest, EmptyRequestListReturnsEmpty) {
  EXPECT_TRUE(
      compute_shares(model_, kTotalSms, {34}, {}, no_interference()).empty());
}

TEST_F(SharingTest, InvalidContextIndexThrows) {
  EXPECT_THROW(compute_shares(model_, kTotalSms, {34},
                              {{1, 1.0, OpClass::kConv}}, no_interference()),
               common::CheckError);
}

TEST_F(SharingTest, NonPositiveWeightThrows) {
  EXPECT_THROW(compute_shares(model_, kTotalSms, {34},
                              {{0, 0.0, OpClass::kConv}}, no_interference()),
               common::CheckError);
}

// Property sweep: conservation — granted SMs inside a context never exceed
// its allocation, for many kernel-count combinations.
class SharingConservation
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SharingConservation, GrantsNeverExceedContextAllocation) {
  const auto [ctx_sms, kernels] = GetParam();
  SpeedupModel model = SpeedupModel::rtx2080ti();
  std::vector<ShareRequest> reqs;
  for (int i = 0; i < kernels; ++i) {
    reqs.push_back({0, i % 2 ? 2.0 : 1.0,
                    i % 2 ? OpClass::kConv : OpClass::kReLU});
  }
  const auto grants =
      compute_shares(model, 68, {ctx_sms}, reqs, SharingParams{});
  double sum = 0.0;
  for (const auto& g : grants) {
    EXPECT_GT(g.sms, 0.0);
    EXPECT_GT(g.rate, 0.0);
    sum += g.sms;
  }
  EXPECT_LE(sum, ctx_sms + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SharingConservation,
    ::testing::Combine(::testing::Values(1, 8, 23, 34, 45, 68),
                       ::testing::Values(1, 2, 3, 4, 7)));

TEST_F(SharingTest, SubProportionalContentionCreditsLatencyHiding) {
  SharingParams p = no_interference();
  p.contention_exponent = 0.5;
  // Demand 136 vs 68: proportional would halve; beta=0.5 gives 1/sqrt(2).
  const auto grants = compute_shares(
      model_, kTotalSms, {68, 68},
      {{0, 1.0, OpClass::kConv}, {1, 1.0, OpClass::kConv}}, p);
  const double expected =
      model_.speedup(OpClass::kConv, 68.0) / std::sqrt(2.0);
  EXPECT_NEAR(grants[0].rate, expected, 1e-12);
}

TEST_F(SharingTest, DefaultExponentMakesOversubBeatStrictSlicing) {
  // The calibrated default must reward over-subscription relative to
  // proportional slicing (the paper's Scenario 1 observation).
  SharingParams strict = no_interference();
  SharingParams def = no_interference();
  def.contention_exponent = SharingParams{}.contention_exponent;
  const std::vector<ShareRequest> reqs = {{0, 1.0, OpClass::kConv},
                                          {1, 1.0, OpClass::kConv}};
  const auto a = compute_shares(model_, kTotalSms, {68, 68}, reqs, strict);
  const auto b = compute_shares(model_, kTotalSms, {68, 68}, reqs, def);
  EXPECT_GT(b[0].rate, a[0].rate);
}

TEST_F(SharingTest, InvalidExponentThrows) {
  SharingParams p = no_interference();
  p.contention_exponent = 0.0;
  EXPECT_THROW(compute_shares(model_, kTotalSms, {68, 68},
                              {{0, 1.0, OpClass::kConv},
                               {1, 1.0, OpClass::kConv}},
                              p),
               common::CheckError);
}

}  // namespace
}  // namespace sgprs::gpu
