#include "gpu/context_pool.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace sgprs::gpu {
namespace {

class ContextPoolTest : public ::testing::Test {
 protected:
  ContextPoolTest()
      : exec_(engine_, rtx2080ti(), SpeedupModel::rtx2080ti(),
              SharingParams{}) {}
  sim::Engine engine_;
  Executor exec_;
};

TEST_F(ContextPoolTest, SmsPerContextMatchesPaperScenarios) {
  // Scenario 1: 2 contexts. os=1.0 -> 34, os=1.5 -> 51, os=2.0 -> 68.
  EXPECT_EQ(ContextPool::sms_per_context(68, 2, 1.0), 34);
  EXPECT_EQ(ContextPool::sms_per_context(68, 2, 1.5), 51);
  EXPECT_EQ(ContextPool::sms_per_context(68, 2, 2.0), 68);
  // Scenario 2: 3 contexts. os=1.0 -> 23, os=1.5 -> 34, os=2.0 -> 45.
  EXPECT_EQ(ContextPool::sms_per_context(68, 3, 1.0), 23);
  EXPECT_EQ(ContextPool::sms_per_context(68, 3, 1.5), 34);
  EXPECT_EQ(ContextPool::sms_per_context(68, 3, 2.0), 45);
}

TEST_F(ContextPoolTest, ClampsToDeviceLimits) {
  EXPECT_EQ(ContextPool::sms_per_context(68, 1, 5.0), 68);
  EXPECT_EQ(ContextPool::sms_per_context(68, 200, 1.0), 1);
}

TEST_F(ContextPoolTest, BuildsPaperStreamLayout) {
  ContextPoolConfig cfg;
  cfg.num_contexts = 2;
  cfg.oversubscription = 1.5;
  ContextPool pool(exec_, cfg);
  ASSERT_EQ(pool.size(), 2);
  EXPECT_EQ(exec_.context_count(), 2);
  EXPECT_EQ(exec_.stream_count(), 8);  // (2 high + 2 low) x 2 contexts
  for (const auto& pc : pool.contexts()) {
    EXPECT_EQ(pc.sm_limit, 51);
    ASSERT_EQ(pc.high_streams.size(), 2u);
    ASSERT_EQ(pc.low_streams.size(), 2u);
    for (auto s : pc.high_streams) {
      EXPECT_EQ(exec_.stream_priority(s), StreamPriority::kHigh);
      EXPECT_EQ(exec_.stream_context(s), pc.ctx);
    }
    for (auto s : pc.low_streams) {
      EXPECT_EQ(exec_.stream_priority(s), StreamPriority::kLow);
    }
  }
}

TEST_F(ContextPoolTest, OversubscribedPoolExceedsDevice) {
  ContextPoolConfig cfg;
  cfg.num_contexts = 3;
  cfg.oversubscription = 2.0;
  ContextPool pool(exec_, cfg);
  EXPECT_EQ(pool.total_allocated_sms(), 135);  // 3 x 45 > 68
  EXPECT_GT(pool.total_allocated_sms(), exec_.device().total_sms);
}

TEST_F(ContextPoolTest, NonOversubscribedPoolFitsDevice) {
  ContextPoolConfig cfg;
  cfg.num_contexts = 2;
  cfg.oversubscription = 1.0;
  ContextPool pool(exec_, cfg);
  EXPECT_LE(pool.total_allocated_sms(), exec_.device().total_sms);
}

TEST_F(ContextPoolTest, CustomStreamCounts) {
  ContextPoolConfig cfg;
  cfg.num_contexts = 1;
  cfg.high_streams_per_context = 1;
  cfg.low_streams_per_context = 0;
  ContextPool pool(exec_, cfg);
  EXPECT_EQ(pool.at(0).high_streams.size(), 1u);
  EXPECT_TRUE(pool.at(0).low_streams.empty());
}

TEST_F(ContextPoolTest, RejectsInvalidConfigs) {
  ContextPoolConfig bad;
  bad.num_contexts = 0;
  EXPECT_THROW(ContextPool(exec_, bad), common::CheckError);
  ContextPoolConfig no_streams;
  no_streams.high_streams_per_context = 0;
  no_streams.low_streams_per_context = 0;
  EXPECT_THROW(ContextPool(exec_, no_streams), common::CheckError);
}

}  // namespace
}  // namespace sgprs::gpu
