#include "gpu/executor.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace sgprs::gpu {
namespace {

using common::SimTime;

SharingParams clean_params() {
  SharingParams p;
  p.interference_gamma = 0.0;
  p.oversub_thrash_kappa = 0.0;
  p.contention_exponent = 1.0;
  return p;
}

KernelDesc kernel(OpClass op, double work_sec, double overhead_sec = 0.0) {
  KernelDesc k;
  k.op = op;
  k.work_sm_seconds = work_sec;
  k.overhead_seconds = overhead_sec;
  return k;
}

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest()
      : exec_(engine_, rtx2080ti(), SpeedupModel::rtx2080ti(),
              clean_params()) {}
  sim::Engine engine_;
  Executor exec_;
};

TEST_F(ExecutorTest, SingleKernelDurationMatchesSpeedupModel) {
  const auto ctx = exec_.create_context(34);
  const auto s = exec_.create_stream(ctx, StreamPriority::kHigh);
  SimTime done = SimTime::zero();
  // 1 second of 1-SM conv work on 34 SMs.
  exec_.enqueue(s, kernel(OpClass::kConv, 1.0),
                [&](SimTime t) { done = t; });
  engine_.run();
  const double expected =
      1.0 / SpeedupModel::rtx2080ti().speedup(OpClass::kConv, 34.0);
  EXPECT_NEAR(done.to_sec(), expected, 1e-6);
}

TEST_F(ExecutorTest, OverheadDoesNotScaleWithSms) {
  const auto ctx = exec_.create_context(68);
  const auto s = exec_.create_stream(ctx, StreamPriority::kHigh);
  SimTime done = SimTime::zero();
  exec_.enqueue(s, kernel(OpClass::kConv, 0.0, 0.001),
                [&](SimTime t) { done = t; });
  engine_.run();
  EXPECT_NEAR(done.to_ms(), 1.0, 1e-6);
}

TEST_F(ExecutorTest, StreamSerializesKernels) {
  const auto ctx = exec_.create_context(68);
  const auto s = exec_.create_stream(ctx, StreamPriority::kHigh);
  std::vector<SimTime> ends;
  for (int i = 0; i < 3; ++i) {
    exec_.enqueue(s, kernel(OpClass::kConv, 32.0),  // 1 s at 68 SMs (32x)
                  [&](SimTime t) { ends.push_back(t); });
  }
  engine_.run();
  ASSERT_EQ(ends.size(), 3u);
  EXPECT_NEAR(ends[0].to_sec(), 1.0, 1e-6);
  EXPECT_NEAR(ends[1].to_sec(), 2.0, 1e-6);
  EXPECT_NEAR(ends[2].to_sec(), 3.0, 1e-6);
}

TEST_F(ExecutorTest, TwoStreamsSameContextShareSms) {
  const auto ctx = exec_.create_context(68);
  const auto s1 = exec_.create_stream(ctx, StreamPriority::kLow);
  const auto s2 = exec_.create_stream(ctx, StreamPriority::kLow);
  std::vector<SimTime> ends(2);
  // Two identical kernels, equal weight -> each gets 34 SMs.
  exec_.enqueue(s1, kernel(OpClass::kConv, 1.0),
                [&](SimTime t) { ends[0] = t; });
  exec_.enqueue(s2, kernel(OpClass::kConv, 1.0),
                [&](SimTime t) { ends[1] = t; });
  engine_.run();
  const double expected =
      1.0 / SpeedupModel::rtx2080ti().speedup(OpClass::kConv, 34.0);
  EXPECT_NEAR(ends[0].to_sec(), expected, 1e-6);
  EXPECT_NEAR(ends[1].to_sec(), expected, 1e-6);
}

TEST_F(ExecutorTest, HighPriorityStreamFinishesFirst) {
  SharingParams p = clean_params();
  p.high_priority_weight = 2.0;
  Executor exec(engine_, rtx2080ti(), SpeedupModel::rtx2080ti(), p);
  const auto ctx = exec.create_context(60);
  const auto hi = exec.create_stream(ctx, StreamPriority::kHigh);
  const auto lo = exec.create_stream(ctx, StreamPriority::kLow);
  SimTime hi_done, lo_done;
  exec.enqueue(hi, kernel(OpClass::kConv, 1.0),
               [&](SimTime t) { hi_done = t; });
  exec.enqueue(lo, kernel(OpClass::kConv, 1.0),
               [&](SimTime t) { lo_done = t; });
  engine_.run();
  EXPECT_LT(hi_done, lo_done);
}

TEST_F(ExecutorTest, RatesRecomputeWhenCompetitorFinishes) {
  // Kernel B should speed up once kernel A completes and frees its share.
  const auto ctx = exec_.create_context(68);
  const auto s1 = exec_.create_stream(ctx, StreamPriority::kLow);
  const auto s2 = exec_.create_stream(ctx, StreamPriority::kLow);
  SimTime a_done, b_done;
  const auto& model = exec_.speedup_model();
  // A: short. B: long. Phase 1: both at 34 SMs. Phase 2: B alone at 68.
  exec_.enqueue(s1, kernel(OpClass::kConv, 1.0),
                [&](SimTime t) { a_done = t; });
  exec_.enqueue(s2, kernel(OpClass::kConv, 10.0),
                [&](SimTime t) { b_done = t; });
  engine_.run();
  const double r34 = model.speedup(OpClass::kConv, 34.0);
  const double r68 = model.speedup(OpClass::kConv, 68.0);
  const double t_a = 1.0 / r34;
  // B does t_a * r34 work in phase 1, the rest at r68.
  const double t_b = t_a + (10.0 - t_a * r34) / r68;
  EXPECT_NEAR(a_done.to_sec(), t_a, 1e-6);
  EXPECT_NEAR(b_done.to_sec(), t_b, 1e-5);
}

TEST_F(ExecutorTest, OversubscribedContextsSlowDown) {
  const auto c1 = exec_.create_context(68);
  const auto c2 = exec_.create_context(68);
  const auto s1 = exec_.create_stream(c1, StreamPriority::kHigh);
  const auto s2 = exec_.create_stream(c2, StreamPriority::kHigh);
  SimTime done1;
  exec_.enqueue(s1, kernel(OpClass::kConv, 1.0),
                [&](SimTime t) { done1 = t; });
  exec_.enqueue(s2, kernel(OpClass::kConv, 1.0), {});
  engine_.run();
  // Both run at 68 SMs but demand is 2x -> rates halve -> 2x duration.
  const double expected =
      2.0 / SpeedupModel::rtx2080ti().speedup(OpClass::kConv, 68.0);
  EXPECT_NEAR(done1.to_sec(), expected, 1e-6);
}

TEST_F(ExecutorTest, BatchCallbackFiresOnceAtEnd) {
  const auto ctx = exec_.create_context(68);
  const auto s = exec_.create_stream(ctx, StreamPriority::kHigh);
  int calls = 0;
  SimTime done;
  std::vector<KernelDesc> batch = {kernel(OpClass::kConv, 32.0),
                                   kernel(OpClass::kReLU, 5.0),
                                   kernel(OpClass::kConv, 32.0)};
  exec_.enqueue_batch(s, std::move(batch), [&](SimTime t) {
    ++calls;
    done = t;
  });
  engine_.run();
  EXPECT_EQ(calls, 1);
  // conv 32 work at 32x = 1 s each; relu 5 work at 5x = 1 s.
  EXPECT_NEAR(done.to_sec(), 3.0, 1e-6);
}

TEST_F(ExecutorTest, EmptyBatchThrows) {
  const auto ctx = exec_.create_context(68);
  const auto s = exec_.create_stream(ctx, StreamPriority::kHigh);
  EXPECT_THROW(exec_.enqueue_batch(s, {}, {}), common::CheckError);
}

TEST_F(ExecutorTest, CompletionCallbackCanEnqueue) {
  const auto ctx = exec_.create_context(68);
  const auto s = exec_.create_stream(ctx, StreamPriority::kHigh);
  SimTime second_done;
  exec_.enqueue(s, kernel(OpClass::kConv, 32.0), [&](SimTime) {
    exec_.enqueue(s, kernel(OpClass::kConv, 32.0),
                  [&](SimTime t) { second_done = t; });
  });
  engine_.run();
  EXPECT_NEAR(second_done.to_sec(), 2.0, 1e-6);
}

TEST_F(ExecutorTest, IntrospectionCounts) {
  const auto c1 = exec_.create_context(34);
  const auto s1 = exec_.create_stream(c1, StreamPriority::kHigh);
  const auto s2 = exec_.create_stream(c1, StreamPriority::kLow);
  EXPECT_EQ(exec_.context_count(), 1);
  EXPECT_EQ(exec_.stream_count(), 2);
  EXPECT_EQ(exec_.context_sm_limit(c1), 34);
  EXPECT_EQ(exec_.stream_context(s2), c1);
  EXPECT_EQ(exec_.stream_priority(s1), StreamPriority::kHigh);
  EXPECT_FALSE(exec_.stream_busy(s1));

  exec_.enqueue(s1, kernel(OpClass::kConv, 1.0), {});
  exec_.enqueue(s1, kernel(OpClass::kConv, 1.0), {});
  EXPECT_TRUE(exec_.stream_busy(s1));
  EXPECT_EQ(exec_.stream_queue_length(s1), 1u);  // one running, one queued
  EXPECT_EQ(exec_.running_kernel_count(), 1);
  EXPECT_EQ(exec_.context_running_count(c1), 1);
  engine_.run();
  EXPECT_EQ(exec_.running_kernel_count(), 0);
  EXPECT_FALSE(exec_.stream_busy(s1));
}

TEST_F(ExecutorTest, WorkConservation) {
  // Total work completed must equal total work submitted.
  const auto c1 = exec_.create_context(40);
  const auto c2 = exec_.create_context(40);
  double submitted = 0.0;
  for (int i = 0; i < 4; ++i) {
    const auto s = exec_.create_stream(i % 2 ? c1 : c2,
                                       i < 2 ? StreamPriority::kHigh
                                             : StreamPriority::kLow);
    for (int j = 0; j < 5; ++j) {
      const double w = 0.1 * (1 + i) + 0.01 * j;
      submitted += w;
      exec_.enqueue(s, kernel(OpClass::kConv, w), {});
    }
  }
  engine_.run();
  EXPECT_NEAR(exec_.total_work_done(), submitted, 1e-6);
}

TEST_F(ExecutorTest, ZeroWorkKernelCompletesImmediately) {
  const auto ctx = exec_.create_context(68);
  const auto s = exec_.create_stream(ctx, StreamPriority::kHigh);
  bool done = false;
  exec_.enqueue(s, kernel(OpClass::kConv, 0.0), [&](SimTime) { done = true; });
  engine_.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(engine_.now(), SimTime::zero());
}

TEST_F(ExecutorTest, RunningRemainingEstimates) {
  const auto ctx = exec_.create_context(68);
  const auto s = exec_.create_stream(ctx, StreamPriority::kHigh);
  exec_.enqueue(s, kernel(OpClass::kConv, 32.0), {});  // 1 s at 68 SMs
  EXPECT_NEAR(exec_.running_remaining(s).to_sec(), 1.0, 1e-6);
  engine_.run_until(SimTime::from_ms(250));
  EXPECT_NEAR(exec_.running_remaining(s).to_sec(), 0.75, 1e-6);
  engine_.run();
  EXPECT_TRUE(exec_.running_remaining(s).is_max());
}

TEST_F(ExecutorTest, ContextSmLimitValidation) {
  EXPECT_THROW(exec_.create_context(0), common::CheckError);
  EXPECT_THROW(exec_.create_context(69), common::CheckError);
  EXPECT_NO_THROW(exec_.create_context(68));
}

TEST_F(ExecutorTest, TraceSinkSeesStartAndEnd) {
  struct Recorder : TraceSink {
    std::vector<std::pair<char, SimTime>> events;
    void on_kernel_start(SimTime t, int, int, const KernelDesc&) override {
      events.emplace_back('s', t);
    }
    void on_kernel_end(SimTime t, int, int, const KernelDesc&) override {
      events.emplace_back('e', t);
    }
  } rec;
  exec_.set_trace_sink(&rec);
  const auto ctx = exec_.create_context(68);
  const auto s = exec_.create_stream(ctx, StreamPriority::kHigh);
  exec_.enqueue(s, kernel(OpClass::kConv, 32.0), {});
  exec_.enqueue(s, kernel(OpClass::kConv, 32.0), {});
  engine_.run();
  ASSERT_EQ(rec.events.size(), 4u);
  EXPECT_EQ(rec.events[0].first, 's');
  EXPECT_EQ(rec.events[1].first, 'e');
  EXPECT_EQ(rec.events[2].first, 's');
  EXPECT_EQ(rec.events[3].first, 'e');
  EXPECT_EQ(rec.events[1].second, rec.events[2].second)
      << "next kernel starts when the previous ends";
}

// Parameterized: N equal kernels in one context finish simultaneously and
// the makespan matches the analytic processor-sharing prediction.
class EqualSplitSweep : public ::testing::TestWithParam<int> {};

TEST_P(EqualSplitSweep, MakespanMatchesAnalytic) {
  const int n = GetParam();
  sim::Engine engine;
  Executor exec(engine, rtx2080ti(), SpeedupModel::rtx2080ti(),
                clean_params());
  const auto ctx = exec.create_context(68);
  std::vector<SimTime> ends;
  for (int i = 0; i < n; ++i) {
    const auto s = exec.create_stream(ctx, StreamPriority::kLow);
    exec.enqueue(s, kernel(OpClass::kConv, 1.0),
                 [&](SimTime t) { ends.push_back(t); });
  }
  engine.run();
  ASSERT_EQ(ends.size(), static_cast<std::size_t>(n));
  const double share = 68.0 / n;
  const double expected =
      1.0 / SpeedupModel::rtx2080ti().speedup(OpClass::kConv, share);
  for (const auto& e : ends) EXPECT_NEAR(e.to_sec(), expected, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Fanout, EqualSplitSweep,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

}  // namespace
}  // namespace sgprs::gpu
