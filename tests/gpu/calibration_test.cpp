// Locks the calibration targets derived from the paper (see
// gpu/calibration.hpp for the rationale). If these fail after a constant
// change, the figure reproductions will drift.
#include <gtest/gtest.h>

#include "dnn/builders.hpp"
#include "dnn/profiler.hpp"
#include "gpu/calibration.hpp"
#include "gpu/speedup.hpp"

namespace sgprs::gpu {
namespace {

TEST(Calibration, Resnet18EndToEndSpeedupNear23x) {
  // Paper Fig. 1: ResNet18 overall speedup is "only 23x" at 68 SMs because
  // non-conv layers dilute the conv gain.
  const auto net = dnn::resnet18();
  dnn::Profiler prof(rtx2080ti(), SpeedupModel::rtx2080ti(),
                     dnn::CostModel::calibrated());
  const double s = prof.network_speedup(net, 68);
  EXPECT_GE(s, 20.0);
  EXPECT_LE(s, 26.0);
}

TEST(Calibration, Resnet18FullGpuLatencyNear2point7ms) {
  // Implied by the paper's scale: ~30 fps tasks, best pivot at 23-24 tasks,
  // total FPS in the 700s -> single-inference full-GPU latency ~2-3 ms.
  const auto net = dnn::resnet18();
  dnn::Profiler prof(rtx2080ti(), SpeedupModel::rtx2080ti(),
                     dnn::CostModel::calibrated());
  dnn::StagePlan whole;
  whole.stages.push_back(net.topo_order());
  const auto table = prof.profile(net, whole, {68});
  const double ms = table.total_at(68).to_ms();
  EXPECT_GE(ms, 2.2);
  EXPECT_LE(ms, 3.2);
}

TEST(Calibration, ConvDominatesRuntimeAtFullGpu) {
  // The paper attributes ResNet18's overall curve to conv dominance.
  const auto net = dnn::resnet18();
  const auto cost = dnn::CostModel::calibrated();
  const auto model = SpeedupModel::rtx2080ti();
  double conv = 0.0;
  double rest = 0.0;
  for (int i = 0; i < net.node_count(); ++i) {
    const auto& l = net.layer(i);
    const double t = cost.work_seconds(l) / model.speedup(l.op, 68.0);
    (l.op == OpClass::kConv ? conv : rest) += t;
  }
  EXPECT_GT(conv, rest);
}

TEST(Calibration, LaunchOverheadIsMicrosecondScale) {
  EXPECT_GE(calibration::kLaunchOverheadSec, 1e-6);
  EXPECT_LE(calibration::kLaunchOverheadSec, 20e-6);
}

TEST(Calibration, ThroughputTablesHaveAllOps) {
  for (int i = 0; i < kOpClassCount; ++i) {
    EXPECT_GT(calibration::kGflopsPerSm[i], 0.0) << kOpClassNames[i];
    EXPECT_GE(calibration::kSpeedupAt68[i], 1.0) << kOpClassNames[i];
  }
}

}  // namespace
}  // namespace sgprs::gpu
