// Cross-checks the processor-sharing executor against closed-form timing
// for structured scenarios — the simulator's equivalent of validating a
// model against a testbed.
#include <gtest/gtest.h>

#include "gpu/executor.hpp"
#include "sim/engine.hpp"

namespace sgprs::gpu {
namespace {

using common::SimTime;

SharingParams strict() {
  SharingParams p;
  p.interference_gamma = 0.0;
  p.oversub_thrash_kappa = 0.0;
  p.contention_exponent = 1.0;
  return p;
}

// Sweep (op class, context size): a lone kernel's duration must equal
// overhead + work / speedup(op, sms) exactly.
class LoneKernelSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LoneKernelSweep, DurationMatchesClosedForm) {
  const auto [op_idx, sms] = GetParam();
  sim::Engine engine;
  Executor exec(engine, rtx2080ti(), SpeedupModel::rtx2080ti(), strict());
  const auto ctx = exec.create_context(sms);
  const auto s = exec.create_stream(ctx, StreamPriority::kHigh);
  KernelDesc k;
  k.op = static_cast<OpClass>(op_idx);
  k.work_sm_seconds = 0.123;
  k.overhead_seconds = 17e-6;
  SimTime done;
  exec.enqueue(s, k, [&](SimTime t) { done = t; });
  engine.run();
  const double expected =
      17e-6 +
      0.123 / SpeedupModel::rtx2080ti().speedup(k.op,
                                                static_cast<double>(sms));
  EXPECT_NEAR(done.to_sec(), expected, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    OpsTimesSizes, LoneKernelSweep,
    ::testing::Combine(::testing::Range(0, kOpClassCount),
                       ::testing::Values(1, 8, 23, 34, 51, 68)));

// Two-phase staggered start: kernel B arrives midway through kernel A.
TEST(ExecutorAnalytic, StaggeredArrivalSplitsFromArrivalOnward) {
  sim::Engine engine;
  Executor exec(engine, rtx2080ti(), SpeedupModel::rtx2080ti(), strict());
  const auto ctx = exec.create_context(68);
  const auto s1 = exec.create_stream(ctx, StreamPriority::kLow);
  const auto s2 = exec.create_stream(ctx, StreamPriority::kLow);
  const auto& m = SpeedupModel::rtx2080ti();
  const double r68 = m.speedup(OpClass::kConv, 68);
  const double r34 = m.speedup(OpClass::kConv, 34);

  SimTime a_done, b_done;
  KernelDesc a;
  a.op = OpClass::kConv;
  a.work_sm_seconds = 2.0 * r68;  // 2 s alone
  exec.enqueue(s1, a, [&](SimTime t) { a_done = t; });
  // B arrives at t = 1 s with 1 s-alone of work.
  engine.schedule_at(SimTime::from_sec(1), [&] {
    KernelDesc b;
    b.op = OpClass::kConv;
    b.work_sm_seconds = 1.0 * r68;
    exec.enqueue(s2, b, [&](SimTime t) { b_done = t; });
  });
  engine.run();
  // Phase 1 (0..1 s): A alone at r68, does half its work.
  // Phase 2 (1 s..): both at r34. A needs r68/r34 more seconds, B needs
  // the same; they tie.
  const double phase2 = 1.0 * r68 / r34;
  EXPECT_NEAR(a_done.to_sec(), 1.0 + phase2, 1e-6);
  EXPECT_NEAR(b_done.to_sec(), 1.0 + phase2, 1e-6);
}

// Overhead phases do not contend: N concurrent kernels that are all
// overhead finish in exactly the overhead time.
TEST(ExecutorAnalytic, OverheadPhasesRunAtUnitRateConcurrently) {
  sim::Engine engine;
  Executor exec(engine, rtx2080ti(), SpeedupModel::rtx2080ti(), strict());
  const auto ctx = exec.create_context(8);
  std::vector<SimTime> done;
  for (int i = 0; i < 4; ++i) {
    const auto s = exec.create_stream(ctx, StreamPriority::kLow);
    KernelDesc k;
    k.op = OpClass::kConv;
    k.overhead_seconds = 1e-3;
    exec.enqueue(s, k, [&](SimTime t) { done.push_back(t); });
  }
  engine.run();
  ASSERT_EQ(done.size(), 4u);
  for (const auto& d : done) EXPECT_NEAR(d.to_ms(), 1.0, 1e-9);
}

// Work conservation under the *calibrated* (lossy) sharing params: rates
// shrink but submitted work still completes exactly.
TEST(ExecutorAnalytic, LossyRatesStillConserveWork) {
  sim::Engine engine;
  Executor exec(engine, rtx2080ti(), SpeedupModel::rtx2080ti(),
                SharingParams{});
  const auto c1 = exec.create_context(68);
  const auto c2 = exec.create_context(68);
  double submitted = 0.0;
  for (int i = 0; i < 20; ++i) {
    const auto s = exec.create_stream(i % 2 ? c1 : c2,
                                      StreamPriority::kLow);
    KernelDesc k;
    k.op = OpClass::kConv;
    k.work_sm_seconds = 0.05 * (i + 1);
    submitted += k.work_sm_seconds;
    exec.enqueue(s, k, {});
  }
  engine.run();
  EXPECT_NEAR(exec.total_work_done(), submitted, 1e-9 * submitted + 1e-9);
}

// The interference factor slows wall-clock completion measurably.
TEST(ExecutorAnalytic, CalibratedParamsSlowerThanStrict) {
  auto makespan = [](SharingParams p) {
    sim::Engine engine;
    Executor exec(engine, rtx2080ti(), SpeedupModel::rtx2080ti(), p);
    const auto ctx = exec.create_context(68);
    for (int i = 0; i < 4; ++i) {
      const auto s = exec.create_stream(ctx, StreamPriority::kLow);
      KernelDesc k;
      k.op = OpClass::kConv;
      k.work_sm_seconds = 1.0;
      exec.enqueue(s, k, {});
    }
    engine.run();
    return engine.now().to_sec();
  };
  EXPECT_GT(makespan(SharingParams{}), makespan(strict()));
}

}  // namespace
}  // namespace sgprs::gpu
