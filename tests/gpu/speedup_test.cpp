#include "gpu/speedup.hpp"

#include <gtest/gtest.h>

#include "common/check.hpp"
#include "gpu/calibration.hpp"

namespace sgprs::gpu {
namespace {

class SpeedupAllOps : public ::testing::TestWithParam<int> {
 protected:
  SpeedupModel model_ = SpeedupModel::rtx2080ti();
  OpClass op() const { return static_cast<OpClass>(GetParam()); }
};

TEST_P(SpeedupAllOps, OneSmIsUnity) {
  EXPECT_NEAR(model_.speedup(op(), 1.0), 1.0, 1e-12);
}

TEST_P(SpeedupAllOps, HitsCalibratedValueAtReference) {
  const double target = calibration::kSpeedupAt68[GetParam()];
  EXPECT_NEAR(model_.speedup(op(), 68.0), target, 1e-9);
}

TEST_P(SpeedupAllOps, MonotoneInSms) {
  double prev = 0.0;
  for (int m = 1; m <= 68; ++m) {
    const double s = model_.speedup(op(), static_cast<double>(m));
    EXPECT_GT(s, prev) << "op " << to_string(op()) << " at m=" << m;
    prev = s;
  }
}

TEST_P(SpeedupAllOps, ConcaveDiminishingReturns) {
  // Marginal gain per added SM must shrink.
  double prev_gain = 1e9;
  for (int m = 2; m <= 68; ++m) {
    const double gain = model_.speedup(op(), m) - model_.speedup(op(), m - 1);
    EXPECT_LE(gain, prev_gain + 1e-12)
        << "op " << to_string(op()) << " at m=" << m;
    prev_gain = gain;
  }
}

TEST_P(SpeedupAllOps, NeverExceedsLinear) {
  for (int m = 1; m <= 68; ++m) {
    EXPECT_LE(model_.speedup(op(), m), static_cast<double>(m) + 1e-9);
  }
}

TEST_P(SpeedupAllOps, FractionalSmsDegradeLinearlyBelowOne) {
  EXPECT_NEAR(model_.speedup(op(), 0.5), 0.5, 1e-12);
  EXPECT_NEAR(model_.speedup(op(), 0.25), 0.25, 1e-12);
}

TEST_P(SpeedupAllOps, ZeroOrNegativeSmsIsZero) {
  EXPECT_DOUBLE_EQ(model_.speedup(op(), 0.0), 0.0);
  EXPECT_DOUBLE_EQ(model_.speedup(op(), -3.0), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllOps, SpeedupAllOps,
                         ::testing::Range(0, kOpClassCount),
                         [](const auto& info) {
                           return kOpClassNames[info.param];
                         });

TEST(Speedup, PaperFig1Endpoints) {
  const auto m = SpeedupModel::rtx2080ti();
  // Paper: conv reaches 32x, maxpool 14x, others below 7x.
  EXPECT_NEAR(m.speedup(OpClass::kConv, 68), 32.0, 1e-9);
  EXPECT_NEAR(m.speedup(OpClass::kMaxPool, 68), 14.0, 1e-9);
  for (int i = 0; i < kOpClassCount; ++i) {
    const auto op = static_cast<OpClass>(i);
    if (op == OpClass::kConv || op == OpClass::kMaxPool) continue;
    EXPECT_LE(m.speedup(op, 68), 7.0 + 1e-9) << kOpClassNames[i];
  }
}

TEST(Speedup, ConvScalesBestEverywhere) {
  const auto m = SpeedupModel::rtx2080ti();
  for (int sms : {2, 4, 8, 16, 32, 68}) {
    for (int i = 0; i < kOpClassCount; ++i) {
      const auto op = static_cast<OpClass>(i);
      if (op == OpClass::kConv) continue;
      EXPECT_GE(m.speedup(OpClass::kConv, sms), m.speedup(op, sms))
          << "at " << sms << " SMs vs " << kOpClassNames[i];
    }
  }
}

TEST(Speedup, ParallelFractionInUnitInterval) {
  const auto m = SpeedupModel::rtx2080ti();
  for (int i = 0; i < kOpClassCount; ++i) {
    const double f = m.parallel_fraction(static_cast<OpClass>(i));
    EXPECT_GT(f, 0.0);
    EXPECT_LT(f, 1.0);
  }
}

TEST(Speedup, CustomReferencePoint) {
  std::array<double, kOpClassCount> targets{};
  targets.fill(8.0);
  const SpeedupModel m(targets, 16);
  for (int i = 0; i < kOpClassCount; ++i) {
    EXPECT_NEAR(m.speedup(static_cast<OpClass>(i), 16.0), 8.0, 1e-9);
  }
}

TEST(Speedup, RejectsImpossibleTargets) {
  std::array<double, kOpClassCount> targets{};
  targets.fill(100.0);  // > reference SM count: super-linear, rejected
  EXPECT_THROW(SpeedupModel(targets, 68), common::CheckError);
  targets.fill(0.5);  // < 1: slowdown, rejected
  EXPECT_THROW(SpeedupModel(targets, 68), common::CheckError);
}

}  // namespace
}  // namespace sgprs::gpu
