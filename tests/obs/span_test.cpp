// Span-tracing pins (--trace-spans, docs/observability.md).
//
// Two contracts, both load-bearing:
//  * Determinism — the Perfetto export is byte-identical at any --shards
//    count, the same bar the report/series/trace artifacts clear
//    (tests/sim/shard_determinism_test.cpp). Export order never depends on
//    shard interleaving because each device buffer is written only by its
//    owning shard and the exporter walks devices in index order.
//  * No perturbation — attaching a SpanSink changes zero bytes of the
//    report. Tracing observes the run; it must never steer it.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "fleet/report.hpp"
#include "fleet/runtime.hpp"
#include "metrics/timeseries.hpp"
#include "obs/instruments.hpp"
#include "obs/span.hpp"
#include "workload/spec.hpp"

namespace sgprs::obs {
namespace {

workload::ScenarioSpec load_spec(const std::string& rel) {
  return workload::load_scenario_spec(std::string(SGPRS_SOURCE_DIR) + "/" +
                                      rel);
}

struct SpanRun {
  std::string report;  // full report JSON + series CSV
  std::string spans;   // Perfetto trace-event export
  std::int64_t events = 0;
  int devices = 0;
  fleet::FleetRunResult result;
};

SpanRun run_with_spans(workload::ScenarioSpec spec, int shards) {
  spec.base.shards = shards;
  workload::validate(spec);
  workload::RunSeeds seeds;
  seeds.sim = spec.base.seed;
  seeds.generator = spec.generator ? spec.generator->seed : 0;
  SpanSink sink;
  Instruments instruments;
  instruments.spans = &sink;
  SpanRun out;
  out.result = fleet::run_fleet_scenario(spec, seeds, nullptr, instruments);
  std::ostringstream report;
  fleet::write_fleet_run_json(out.result, report);
  metrics::write_timeseries_csv(out.result.series, report);
  out.report = report.str();
  std::ostringstream spans;
  sink.write_perfetto(spans);
  out.spans = spans.str();
  out.events = sink.total_events();
  out.devices = sink.num_devices();
  return out;
}

std::string run_without_instruments(workload::ScenarioSpec spec,
                                    int shards) {
  spec.base.shards = shards;
  workload::validate(spec);
  workload::RunSeeds seeds;
  seeds.sim = spec.base.seed;
  seeds.generator = spec.generator ? spec.generator->seed : 0;
  const auto r = fleet::run_fleet_scenario(spec, seeds, nullptr);
  std::ostringstream os;
  fleet::write_fleet_run_json(r, os);
  metrics::write_timeseries_csv(r.series, os);
  return os.str();
}

/// Events named `name` in a parsed trace-event document.
std::vector<const common::JsonValue*> events_named(
    const common::JsonValue& root, const std::string& name) {
  std::vector<const common::JsonValue*> out;
  for (const auto& e : root.at("traceEvents").items()) {
    if (const auto* n = e.find("name"); n && n->as_string() == name) {
      out.push_back(&e);
    }
  }
  return out;
}

TEST(SpanTest, ExportByteIdenticalAcrossShardCounts) {
  for (const std::string path : {"scenarios/diurnal_wave.json",
                                 "scenarios/device_crash_failover.json"}) {
    SCOPED_TRACE(path);
    const auto spec = load_spec(path);
    const SpanRun baseline = run_with_spans(spec, 1);
    EXPECT_GT(baseline.events, 0);
    for (int shards : {2, 4, 8}) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      const SpanRun sharded = run_with_spans(spec, shards);
      EXPECT_EQ(baseline.spans, sharded.spans);
      EXPECT_EQ(baseline.report, sharded.report);
      EXPECT_EQ(baseline.events, sharded.events);
    }
  }
}

TEST(SpanTest, TracingDoesNotPerturbReportBytes) {
  // The sink observes; it must not steer. Report + series bytes with a
  // SpanSink attached are identical to the uninstrumented run, at both
  // ends of the shard axis.
  for (const std::string path : {"scenarios/diurnal_wave.json",
                                 "scenarios/device_crash_failover.json"}) {
    SCOPED_TRACE(path);
    const auto spec = load_spec(path);
    for (int shards : {1, 8}) {
      SCOPED_TRACE("shards=" + std::to_string(shards));
      EXPECT_EQ(run_without_instruments(spec, shards),
                run_with_spans(spec, shards).report);
    }
  }
}

TEST(SpanTest, ExportIsStrictTraceEventJson) {
  const auto run = run_with_spans(load_spec("scenarios/diurnal_wave.json"), 4);
  const auto root = common::parse_json(run.spans);  // throws on bad JSON

  ASSERT_TRUE(root.is_object());
  EXPECT_EQ(root.at("displayTimeUnit").as_string(), "ms");
  const auto& events = root.at("traceEvents").items();
  ASSERT_FALSE(events.empty());

  int meta = 0, complete = 0, instant = 0;
  for (const auto& e : events) {
    const std::string ph = e.at("ph").as_string();
    EXPECT_TRUE(ph == "M" || ph == "X" || ph == "i") << ph;
    if (ph == "M") ++meta;
    if (ph == "X") {
      ++complete;
      EXPECT_GE(e.at("dur").as_number(), 0.0);
    }
    if (ph == "i") ++instant;
    EXPECT_GE(e.at("pid").as_int(), 0);
  }
  EXPECT_GT(meta, 1);      // control plane + at least one device track
  EXPECT_GT(complete, 0);  // job / stream spans
  EXPECT_GT(instant, 0);   // control-plane decisions

  // Track metadata names the control plane and every device.
  const auto names = events_named(root, "process_name");
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names[0]->at("args").at("name").as_string(), "control-plane");
  // One track per device the run ever built, plus the control plane.
  EXPECT_EQ(static_cast<int>(names.size()), run.devices + 1);

  // Job spans come in queue -> exec pairs on the task's tid.
  EXPECT_FALSE(events_named(root, "exec").empty());
}

TEST(SpanTest, CrashScenarioMarksAbortedInFlightJobs) {
  // flaky_fleet's stochastic crashes land while jobs are in flight (the
  // scripted device_crash_failover scenario crashes an idle device).
  const auto run =
      run_with_spans(load_spec("scenarios/flaky_fleet.json"), 1);
  const auto root = common::parse_json(run.spans);

  // The crash kills in-flight jobs; every kill shows up both in
  // the fault counters and as an abort_in_flight instant on the device
  // track, with the kill count in args.
  ASSERT_GT(run.result.jobs_faulted, 0);
  const auto aborts = events_named(root, "abort_in_flight");
  ASSERT_FALSE(aborts.empty());
  std::int64_t killed = 0;
  for (const auto* e : aborts) {
    EXPECT_EQ(e->at("ph").as_string(), "i");
    EXPECT_GT(e->at("pid").as_int(), 0);  // a device track, not pid 0
    killed += e->at("args").at("killed").as_int();
  }
  EXPECT_EQ(killed, run.result.jobs_faulted);

  // The control-plane track narrates the same incident.
  EXPECT_FALSE(events_named(root, "device_failed").empty());
}

TEST(SpanSinkUnit, StreamSegmentsSplitOnMoveAndCloseAtHorizon) {
  SpanSink sink;
  sink.stream_admitted(SimTime::from_ms(1), /*stream_id=*/5, /*device=*/0,
                       "cam");
  sink.stream_moved(SimTime::from_ms(2), 5, 1);
  sink.set_horizon(SimTime::from_ms(3));
  std::ostringstream os;
  sink.write_perfetto(os);
  const auto root = common::parse_json(os.str());

  const auto segs = events_named(root, "stream cam");
  ASSERT_EQ(segs.size(), 2u);
  // First segment: device 0 (pid 1), [1ms, 2ms). Second: device 1 (pid 2),
  // [2ms, horizon).
  EXPECT_EQ(segs[0]->at("pid").as_int(), 1);
  EXPECT_DOUBLE_EQ(segs[0]->at("ts").as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(segs[0]->at("dur").as_number(), 1000.0);
  EXPECT_EQ(segs[1]->at("pid").as_int(), 2);
  EXPECT_DOUBLE_EQ(segs[1]->at("dur").as_number(), 1000.0);
  for (const auto* s : segs) {
    EXPECT_EQ(s->at("tid").as_int(), 5);
    EXPECT_EQ(s->at("args").at("template").as_string(), "cam");
  }
}

TEST(SpanSinkUnit, EmptySinkExportsValidDocument) {
  SpanSink sink;
  std::ostringstream os;
  sink.write_perfetto(os);
  const auto root = common::parse_json(os.str());
  // Just the control-plane track metadata.
  ASSERT_EQ(root.at("traceEvents").size(), 1u);
}

}  // namespace
}  // namespace sgprs::obs
