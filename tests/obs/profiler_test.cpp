// Phase-profiler pins (--profile, docs/observability.md).
//
// The profiler reads the wall clock, so its *numbers* are untestable by
// design; what is pinned is everything else — the Stat arithmetic, the
// null-safe Scope contract, the sidecar JSON schema, and the property
// that attaching a profiler changes zero bytes of the deterministic
// report surface.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/json.hpp"
#include "fleet/report.hpp"
#include "fleet/runtime.hpp"
#include "metrics/timeseries.hpp"
#include "obs/instruments.hpp"
#include "obs/profiler.hpp"
#include "workload/spec.hpp"

namespace sgprs::obs {
namespace {

using Phase = PhaseProfiler::Phase;

TEST(PhaseProfiler, StatAccumulatesCountTotalMax) {
  PhaseProfiler p;
  p.add(Phase::kSetup, 0.5);
  p.add(Phase::kSetup, 1.5);
  p.add(Phase::kReportWrite, 0.25);
  const auto& s = p.stat(Phase::kSetup);
  EXPECT_EQ(s.count, 2);
  EXPECT_DOUBLE_EQ(s.total_s, 2.0);
  EXPECT_DOUBLE_EQ(s.max_s, 1.5);
  EXPECT_EQ(p.stat(Phase::kReportWrite).count, 1);
  EXPECT_EQ(p.stat(Phase::kEngineRun).count, 0);
}

TEST(PhaseProfiler, NullScopeIsInert) {
  // The off-path contract: a Scope on a null profiler never reads the
  // clock and records nothing. Instrumented code runs with this branch
  // only.
  PhaseProfiler::Scope scope(nullptr, Phase::kRun);
}

TEST(PhaseProfiler, ScopeRecordsOneSample) {
  PhaseProfiler p;
  {
    PhaseProfiler::Scope scope(&p, Phase::kPlacerBatch);
  }
  EXPECT_EQ(p.stat(Phase::kPlacerBatch).count, 1);
  EXPECT_GE(p.stat(Phase::kPlacerBatch).total_s, 0.0);
}

TEST(PhaseProfiler, SidecarJsonIsStrictAndSchemaTagged) {
  PhaseProfiler p;
  p.add(Phase::kSetup, 0.125);
  p.add(Phase::kShardPhase, 0.0625);
  p.add(Phase::kShardPhase, 0.0625);
  std::ostringstream os;
  p.write_json(os);
  const auto root = common::parse_json(os.str());  // throws on bad JSON
  EXPECT_EQ(root.at("schema").as_string(), "sgprs-profile-v1");
  const auto& phases = root.at("phases").items();
  ASSERT_EQ(phases.size(), 2u);  // only phases that fired
  EXPECT_EQ(phases[0].at("phase").as_string(), "setup");
  EXPECT_EQ(phases[0].at("count").as_int(), 1);
  EXPECT_DOUBLE_EQ(phases[0].at("total_s").as_number(), 0.125);
  EXPECT_EQ(phases[1].at("phase").as_string(), "shard_phase");
  EXPECT_EQ(phases[1].at("count").as_int(), 2);
  EXPECT_DOUBLE_EQ(phases[1].at("max_s").as_number(), 0.0625);
}

TEST(PhaseProfiler, PrintListsOnlyFiredPhases) {
  PhaseProfiler p;
  p.add(Phase::kEngineRun, 1.0);
  std::ostringstream os;
  p.print(os);
  EXPECT_NE(os.str().find("engine_run"), std::string::npos);
  EXPECT_EQ(os.str().find("placer_batch"), std::string::npos);
}

std::string report_bytes(workload::ScenarioSpec spec, int shards,
                         PhaseProfiler* profiler) {
  spec.base.shards = shards;
  workload::validate(spec);
  workload::RunSeeds seeds;
  seeds.sim = spec.base.seed;
  seeds.generator = spec.generator ? spec.generator->seed : 0;
  Instruments instruments;
  instruments.profiler = profiler;
  const auto r =
      fleet::run_fleet_scenario(spec, seeds, nullptr, instruments);
  std::ostringstream os;
  fleet::write_fleet_run_json(r, os);
  metrics::write_timeseries_csv(r.series, os);
  return os.str();
}

TEST(PhaseProfiler, ProfilingDoesNotPerturbReportBytes) {
  const auto spec = workload::load_scenario_spec(
      std::string(SGPRS_SOURCE_DIR) + "/scenarios/diurnal_wave.json");
  for (int shards : {1, 4}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    PhaseProfiler profiler;
    EXPECT_EQ(report_bytes(spec, shards, nullptr),
              report_bytes(spec, shards, &profiler));
    // The run actually exercised the instrumented phases.
    EXPECT_EQ(profiler.stat(Phase::kSetup).count, 1);
    if (shards > 1) {
      EXPECT_GT(profiler.stat(Phase::kShardPhase).count, 0);
      EXPECT_GT(profiler.stat(Phase::kControlPhase).count, 0);
      EXPECT_EQ(profiler.stat(Phase::kCollectorReduce).count, 1);
    } else {
      EXPECT_GT(profiler.stat(Phase::kEngineRun).count, 0);
    }
  }
}

}  // namespace
}  // namespace sgprs::obs
