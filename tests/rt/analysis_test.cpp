#include "rt/analysis.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "dnn/builders.hpp"

namespace sgprs::rt {
namespace {

class AnalysisTest : public ::testing::Test {
 protected:
  AnalysisTest()
      : profiler_(gpu::rtx2080ti(), gpu::SpeedupModel::rtx2080ti(),
                  dnn::CostModel::calibrated()),
        capacity_(pool_capacity(gpu::SpeedupModel::rtx2080ti(),
                                gpu::SharingParams{}, 68, 2, 51, 4)) {}

  std::vector<Task> make_tasks(int n, double fps = 30.0) {
    if (!net_) net_ = std::make_shared<const dnn::Network>(dnn::resnet18());
    std::vector<Task> tasks;
    for (int i = 0; i < n; ++i) {
      TaskConfig cfg;
      cfg.fps = fps;
      tasks.push_back(build_task(i, net_, cfg, profiler_, {51}));
    }
    return tasks;
  }

  dnn::Profiler profiler_;
  PoolCapacityModel capacity_;
  std::shared_ptr<const dnn::Network> net_;
};

TEST_F(AnalysisTest, CapacityModelSane) {
  EXPECT_EQ(capacity_.total_slots, 8);
  EXPECT_GT(capacity_.work_rate, 0.0);
  EXPECT_NEAR(capacity_.per_slot_rate * 8, capacity_.work_rate, 1e-9);
  // 8 concurrent conv kernels cannot beat 68 perfectly-linear SMs.
  EXPECT_LT(capacity_.work_rate, 68.0);
  // But they must beat one serial full-GPU kernel (that is the point of
  // temporal partitioning).
  EXPECT_GT(capacity_.work_rate,
            gpu::SpeedupModel::rtx2080ti().speedup(gpu::OpClass::kConv, 68));
}

TEST_F(AnalysisTest, MoreContextsMoreCapacityUntilContention) {
  const auto two = pool_capacity(gpu::SpeedupModel::rtx2080ti(),
                                 gpu::SharingParams{}, 68, 2, 34, 4);
  const auto three = pool_capacity(gpu::SpeedupModel::rtx2080ti(),
                                   gpu::SharingParams{}, 68, 3, 23, 4);
  // 12 smaller slots vs 8 bigger ones: concavity favours the finer split,
  // interference pushes back; both must stay positive and same order.
  EXPECT_GT(two.work_rate, 0.0);
  EXPECT_GT(three.work_rate, 0.0);
  EXPECT_NEAR(three.work_rate / two.work_rate, 1.0, 0.35);
}

TEST_F(AnalysisTest, UtilizationScalesLinearlyWithTasks) {
  const auto u8 = utilization_test(make_tasks(8), capacity_);
  const auto u16 = utilization_test(make_tasks(16), capacity_);
  EXPECT_NEAR(u16.utilization, 2.0 * u8.utilization, 1e-9);
}

TEST_F(AnalysisTest, UtilizationTestAcceptsLightLoad) {
  const auto rep = utilization_test(make_tasks(4), capacity_);
  EXPECT_TRUE(rep.schedulable_by_utilization);
  EXPECT_LT(rep.utilization, 0.5);
}

TEST_F(AnalysisTest, UtilizationTestRejectsOverload) {
  const auto rep = utilization_test(make_tasks(40), capacity_);
  EXPECT_FALSE(rep.schedulable_by_utilization);
  EXPECT_GT(rep.utilization, 1.0);
}

TEST_F(AnalysisTest, AnalyticalPivotBracketsEmpiricalPivot) {
  // The empirical pivot (Fig. 3, os 1.5) sits near 24-25 tasks; the
  // utilization bound must not be wildly off — within a handful of tasks.
  int analytic_pivot = 0;
  for (int n = 1; n <= 40; ++n) {
    if (utilization_test(make_tasks(n), capacity_).utilization <= 1.0) {
      analytic_pivot = n;
    } else {
      break;
    }
  }
  EXPECT_GE(analytic_pivot, 20);
  EXPECT_LE(analytic_pivot, 30);
}

TEST_F(AnalysisTest, ResponseTimeGrowsWithLoad) {
  const auto light = response_time_estimate(make_tasks(4), capacity_, 51);
  const auto heavy = response_time_estimate(make_tasks(20), capacity_, 51);
  ASSERT_FALSE(light.response_sec.empty());
  EXPECT_LT(light.response_sec[0], heavy.response_sec[0]);
  EXPECT_TRUE(light.all_deadlines_met);
}

TEST_F(AnalysisTest, ResponseTimeFailsPastSaturation) {
  const auto rep = response_time_estimate(make_tasks(40), capacity_, 51);
  EXPECT_FALSE(rep.all_deadlines_met);
}

TEST_F(AnalysisTest, AdmissionControllerStopsAtCapacity) {
  AdmissionController ac(capacity_, 51, 0.95);
  const auto tasks = make_tasks(40);
  int admitted = 0;
  for (const auto& t : tasks) {
    if (ac.try_admit(t)) ++admitted;
  }
  EXPECT_GT(admitted, 10) << "plenty of room for the first tasks";
  EXPECT_LT(admitted, 40) << "must reject before overload";
  EXPECT_EQ(static_cast<int>(ac.admitted().size()), admitted);
  EXPECT_LE(ac.current_utilization(), 0.95 + 1e-9);
}

TEST_F(AnalysisTest, AdmissionRejectionLeavesStateUnchanged) {
  AdmissionController ac(capacity_, 51, 0.95);
  for (const auto& t : make_tasks(40)) ac.try_admit(t);
  const auto before = ac.current_utilization();
  const auto more = make_tasks(1, 60.0);  // heavy task: must be rejected
  EXPECT_FALSE(ac.try_admit(more[0]));
  EXPECT_DOUBLE_EQ(ac.current_utilization(), before);
}

TEST_F(AnalysisTest, InvalidInputsThrow) {
  EXPECT_THROW(pool_capacity(gpu::SpeedupModel::rtx2080ti(),
                             gpu::SharingParams{}, 68, 0, 34, 4),
               common::CheckError);
  EXPECT_THROW(utilization_test(make_tasks(1), PoolCapacityModel{}),
               common::CheckError);
}

}  // namespace
}  // namespace sgprs::rt
