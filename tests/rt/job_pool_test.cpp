#include "rt/job_pool.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/time.hpp"

namespace sgprs::rt {
namespace {

using common::SimTime;

TEST(JobPool, AcquireHandsOutResetJobs) {
  JobPool pool;
  Job& a = pool.acquire();
  EXPECT_EQ(a.task, nullptr);
  EXPECT_EQ(a.next_stage, 0);
  EXPECT_GE(a.pool_slot, 0);
  EXPECT_EQ(pool.live(), 1u);
  a.next_stage = 3;
  a.stage_deadlines.assign(6, SimTime::from_ms(1));
  pool.release(a);
  EXPECT_EQ(pool.live(), 0u);

  // The recycled slot must come back fully reset...
  Job& b = pool.acquire();
  EXPECT_EQ(&b, &a);  // LIFO reuse of the same storage
  EXPECT_EQ(b.next_stage, 0);
  EXPECT_TRUE(b.stage_deadlines.empty());
  // ... but with its vector capacity retained (the allocation-free point).
  EXPECT_GE(b.stage_deadlines.capacity(), 6u);
}

TEST(JobPool, AddressesStableAcrossGrowth) {
  JobPool pool;
  std::vector<Job*> ptrs;
  // Cross several chunk boundaries (chunk = 64).
  for (int i = 0; i < 500; ++i) {
    Job& j = pool.acquire();
    j.index = i;
    ptrs.push_back(&j);
  }
  for (int i = 0; i < 500; ++i) {
    EXPECT_EQ(ptrs[i]->index, i);  // no reallocation moved anything
  }
  EXPECT_EQ(pool.live(), 500u);
  EXPECT_EQ(pool.capacity(), 500u);
  for (Job* j : ptrs) pool.release(*j);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(JobPool, CapacityTracksHighWaterMarkNotThroughput) {
  JobPool pool;
  for (int round = 0; round < 1000; ++round) {
    Job& a = pool.acquire();
    Job& b = pool.acquire();
    pool.release(a);
    pool.release(b);
  }
  EXPECT_EQ(pool.capacity(), 2u);  // 2000 jobs cycled through 2 slots
}

TEST(JobPool, ReleaseClearsPoolSlot) {
  JobPool pool;
  Job& a = pool.acquire();
  pool.release(a);
  EXPECT_EQ(a.pool_slot, -1);
}

}  // namespace
}  // namespace sgprs::rt
