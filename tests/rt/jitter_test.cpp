// Release-jitter behaviour of the Runner.
#include <gtest/gtest.h>

#include <memory>

#include "dnn/builders.hpp"
#include "rt/runner.hpp"
#include "sim/engine.hpp"

namespace sgprs::rt {
namespace {

using common::SimTime;

class JitterRecorder final : public Scheduler {
 public:
  void admit(const Task&) override {}
  void release_job(const Task& task, SimTime now) override {
    releases.emplace_back(task.id, now);
  }
  int jobs_in_flight() const override { return 0; }
  std::string name() const override { return "rec"; }
  std::vector<std::pair<int, SimTime>> releases;
};

Task tiny_task(int id, double fps) {
  static auto net = std::make_shared<const dnn::Network>(dnn::lenet5());
  dnn::Profiler prof(gpu::rtx2080ti(), gpu::SpeedupModel::rtx2080ti(),
                     dnn::CostModel::calibrated());
  TaskConfig cfg;
  cfg.fps = fps;
  cfg.num_stages = 1;
  return build_task(id, net, cfg, prof, {34});
}

TEST(Jitter, ZeroJitterIsExactlyPeriodic) {
  sim::Engine engine;
  JitterRecorder rec;
  std::vector<Task> tasks = {tiny_task(0, 100)};
  RunnerConfig rc;
  rc.duration = SimTime::from_ms(50);
  Runner runner(engine, rec, tasks, rc);
  runner.run();
  for (std::size_t i = 0; i < rec.releases.size(); ++i) {
    EXPECT_EQ(rec.releases[i].second, SimTime::from_ms(10.0 * i));
  }
}

TEST(Jitter, JitterDelaysButNeverReorders) {
  sim::Engine engine;
  JitterRecorder rec;
  std::vector<Task> tasks = {tiny_task(0, 100)};  // 10 ms period
  RunnerConfig rc;
  rc.duration = SimTime::from_ms(200);
  rc.release_jitter = SimTime::from_ms(4);
  Runner runner(engine, rec, tasks, rc);
  runner.run();
  ASSERT_GE(rec.releases.size(), 10u);
  SimTime prev = SimTime::zero() - SimTime::from_ms(1);
  for (std::size_t i = 0; i < rec.releases.size(); ++i) {
    const SimTime base = SimTime::from_ms(10.0 * i);
    EXPECT_GE(rec.releases[i].second, base) << "never early";
    EXPECT_LE(rec.releases[i].second, base + SimTime::from_ms(4))
        << "bounded delay";
    EXPECT_GT(rec.releases[i].second, prev) << "monotone";
    prev = rec.releases[i].second;
  }
}

TEST(Jitter, ActuallyPerturbsSchedule) {
  auto release_times = [](SimTime jitter) {
    sim::Engine engine;
    JitterRecorder rec;
    std::vector<Task> tasks = {tiny_task(0, 100)};
    RunnerConfig rc;
    rc.duration = SimTime::from_ms(100);
    rc.release_jitter = jitter;
    Runner runner(engine, rec, tasks, rc);
    runner.run();
    std::vector<SimTime> out;
    for (auto& [id, t] : rec.releases) out.push_back(t);
    return out;
  };
  EXPECT_NE(release_times(SimTime::zero()),
            release_times(SimTime::from_ms(3)));
}

TEST(Jitter, SeedDeterminism) {
  auto run_with_seed = [](std::uint64_t seed) {
    sim::Engine engine;
    JitterRecorder rec;
    std::vector<Task> tasks = {tiny_task(0, 100)};
    RunnerConfig rc;
    rc.duration = SimTime::from_ms(100);
    rc.release_jitter = SimTime::from_ms(3);
    rc.jitter_seed = seed;
    Runner runner(engine, rec, tasks, rc);
    runner.run();
    std::vector<SimTime> out;
    for (auto& [id, t] : rec.releases) out.push_back(t);
    return out;
  };
  EXPECT_EQ(run_with_seed(7), run_with_seed(7));
  EXPECT_NE(run_with_seed(7), run_with_seed(8));
}

TEST(Jitter, JitterAbovePeriodRejected) {
  sim::Engine engine;
  JitterRecorder rec;
  std::vector<Task> tasks = {tiny_task(0, 100)};  // 10 ms period
  RunnerConfig rc;
  rc.duration = SimTime::from_ms(100);
  rc.release_jitter = SimTime::from_ms(12);
  EXPECT_THROW(Runner(engine, rec, tasks, rc), common::CheckError);
}

}  // namespace
}  // namespace sgprs::rt
