// Tests for the scheduler extensions: FIFO queue ordering, hopeless-job
// abortion, and heterogeneous context pools.
#include <gtest/gtest.h>

#include <memory>

#include "dnn/builders.hpp"
#include "rt/runner.hpp"
#include "rt/sgprs_scheduler.hpp"
#include "sim/engine.hpp"
#include "workload/scenario.hpp"

namespace sgprs::rt {
namespace {

using common::SimTime;

class PolicyExtTest : public ::testing::Test {
 protected:
  void build_stack(gpu::ContextPoolConfig pool_cfg) {
    engine_ = std::make_unique<sim::Engine>();
    exec_ = std::make_unique<gpu::Executor>(*engine_, gpu::rtx2080ti(),
                                            gpu::SpeedupModel::rtx2080ti(),
                                            gpu::SharingParams{});
    pool_ = std::make_unique<gpu::ContextPool>(*exec_, pool_cfg);
    collector_ = std::make_unique<metrics::Collector>();
  }

  Task make_task(int id, const std::vector<int>& sms, TaskConfig cfg = {}) {
    if (!net_) net_ = std::make_shared<const dnn::Network>(dnn::resnet18());
    dnn::Profiler prof(gpu::rtx2080ti(), gpu::SpeedupModel::rtx2080ti(),
                       dnn::CostModel::calibrated());
    return build_task(id, net_, cfg, prof, sms);
  }

  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<gpu::Executor> exec_;
  std::unique_ptr<gpu::ContextPool> pool_;
  std::unique_ptr<metrics::Collector> collector_;
  std::shared_ptr<const dnn::Network> net_;
};

TEST_F(PolicyExtTest, HeterogeneousPoolBuildsRequestedSizes) {
  gpu::ContextPoolConfig pc;
  pc.explicit_sm_limits = {45, 17, 6};
  build_stack(pc);
  ASSERT_EQ(pool_->size(), 3);
  EXPECT_EQ(pool_->at(0).sm_limit, 45);
  EXPECT_EQ(pool_->at(1).sm_limit, 17);
  EXPECT_EQ(pool_->at(2).sm_limit, 6);
  EXPECT_EQ(pool_->total_allocated_sms(), 68);
}

TEST_F(PolicyExtTest, SchedulerRunsOnHeterogeneousPool) {
  gpu::ContextPoolConfig pc;
  pc.explicit_sm_limits = {45, 23};
  build_stack(pc);
  SgprsScheduler sched(*exec_, *pool_, *collector_);
  std::vector<Task> tasks;
  for (int i = 0; i < 6; ++i) tasks.push_back(make_task(i, {45, 23}));
  RunnerConfig rc;
  rc.duration = SimTime::from_ms(500);
  Runner runner(*engine_, sched, tasks, rc);
  runner.run();
  const auto s = collector_->aggregate(rc.duration);
  EXPECT_GT(s.counts.completed(), 0);
  EXPECT_DOUBLE_EQ(s.dmr, 0.0) << "6 tasks are light load even lopsided";
}

TEST_F(PolicyExtTest, AdmitWithoutHeterogeneousWcetThrows) {
  gpu::ContextPoolConfig pc;
  pc.explicit_sm_limits = {45, 23};
  build_stack(pc);
  SgprsScheduler sched(*exec_, *pool_, *collector_);
  // Task profiled only at 45 SMs: the scheduler must refuse it because it
  // cannot estimate work on the 23-SM context.
  const Task bad = make_task(0, {45});
  EXPECT_THROW(sched.admit(bad), common::CheckError);
}

TEST_F(PolicyExtTest, FifoOrderDispatchesByArrival) {
  gpu::ContextPoolConfig pc;
  pc.num_contexts = 1;
  pc.high_streams_per_context = 0;
  pc.low_streams_per_context = 1;  // single lane: ordering fully visible
  build_stack(pc);

  SgprsConfig cfg;
  cfg.queue_order = QueueOrder::kFifo;
  cfg.max_in_flight_per_task = 4;
  SgprsScheduler fifo_sched(*exec_, *pool_, *collector_, cfg);

  // Task B has a much tighter deadline than task A. Release A first.
  TaskConfig loose;
  loose.num_stages = 1;
  loose.deadline = SimTime::from_ms(500);
  loose.fps = 2.0;
  // All-low priorities so the single stage is served by the low stream
  // (this pool has no high streams).
  loose.priority_policy = PriorityPolicy::kAllLow;
  TaskConfig tight = loose;
  tight.deadline = SimTime::from_ms(5);
  const Task a = make_task(0, {pool_->at(0).sm_limit}, loose);
  const Task b = make_task(1, {pool_->at(0).sm_limit}, tight);
  fifo_sched.admit(a);
  fifo_sched.admit(b);
  // Occupy the lane so both stages queue rather than dispatch instantly.
  gpu::KernelDesc blocker;
  blocker.op = gpu::OpClass::kConv;
  blocker.work_sm_seconds = 0.5;
  exec_->enqueue(pool_->at(0).low_streams[0], blocker, {});
  fifo_sched.release_job(a, SimTime::zero());
  fifo_sched.release_job(b, SimTime::zero());
  engine_->run();
  // Under FIFO, A (released first) finishes before B despite B's earlier
  // deadline; B therefore goes (very) late.
  const auto sa = collector_->per_task(0, SimTime::from_sec(2));
  const auto sb = collector_->per_task(1, SimTime::from_sec(2));
  EXPECT_EQ(sa.counts.completed(), 1);
  EXPECT_EQ(sb.counts.late, 1) << "FIFO ignored B's tighter deadline";
}

TEST_F(PolicyExtTest, EdfOrderRescuesTightDeadline) {
  gpu::ContextPoolConfig pc;
  pc.num_contexts = 1;
  pc.high_streams_per_context = 0;
  pc.low_streams_per_context = 1;
  build_stack(pc);

  SgprsConfig cfg;  // default EDF
  cfg.max_in_flight_per_task = 4;
  SgprsScheduler sched(*exec_, *pool_, *collector_, cfg);
  TaskConfig loose;
  loose.num_stages = 1;
  loose.deadline = SimTime::from_ms(500);
  loose.fps = 2.0;
  loose.priority_policy = PriorityPolicy::kAllLow;
  TaskConfig tight = loose;
  tight.deadline = SimTime::from_ms(40);
  const Task a = make_task(0, {pool_->at(0).sm_limit}, loose);
  const Task b = make_task(1, {pool_->at(0).sm_limit}, tight);
  sched.admit(a);
  sched.admit(b);
  gpu::KernelDesc blocker;
  blocker.op = gpu::OpClass::kConv;
  blocker.work_sm_seconds = 0.2;  // ~9 ms on the 68-SM context
  exec_->enqueue(pool_->at(0).low_streams[0], blocker, {});
  sched.release_job(a, SimTime::zero());
  sched.release_job(b, SimTime::zero());
  engine_->run();
  const auto sb = collector_->per_task(1, SimTime::from_sec(2));
  EXPECT_EQ(sb.counts.on_time, 1) << "EDF must serve B before A";
}

TEST_F(PolicyExtTest, AbortHopelessShedsDoomedJobs) {
  gpu::ContextPoolConfig pc;
  pc.num_contexts = 2;
  build_stack(pc);
  SgprsConfig cfg;
  cfg.abort_hopeless = true;
  cfg.max_in_flight_per_task = 8;  // let the backlog form
  SgprsScheduler sched(*exec_, *pool_, *collector_, cfg);
  std::vector<Task> tasks;
  for (int i = 0; i < 30; ++i) tasks.push_back(make_task(i, {34}));
  for (auto& t : tasks) sched.admit(t);
  // Burst far beyond capacity: the tail is unsavable.
  for (int round = 0; round < 3; ++round) {
    for (auto& t : tasks) sched.release_job(t, engine_->now());
  }
  engine_->run();
  EXPECT_GT(sched.jobs_aborted(), 0);
  const auto s = collector_->aggregate(SimTime::from_sec(5));
  EXPECT_EQ(s.counts.released,
            s.counts.completed() + s.counts.dropped);
}

TEST_F(PolicyExtTest, AbortDisabledRunsEverythingToCompletion) {
  gpu::ContextPoolConfig pc;
  pc.num_contexts = 2;
  build_stack(pc);
  SgprsConfig cfg;
  cfg.abort_hopeless = false;
  cfg.max_in_flight_per_task = 8;
  SgprsScheduler sched(*exec_, *pool_, *collector_, cfg);
  std::vector<Task> tasks;
  for (int i = 0; i < 30; ++i) tasks.push_back(make_task(i, {34}));
  for (auto& t : tasks) sched.admit(t);
  for (auto& t : tasks) sched.release_job(t, engine_->now());
  engine_->run();
  EXPECT_EQ(sched.jobs_aborted(), 0);
  const auto s = collector_->aggregate(SimTime::from_sec(5));
  EXPECT_EQ(s.counts.completed(), 30);
}

TEST_F(PolicyExtTest, HeterogeneousScenarioViaConfig) {
  workload::ScenarioConfig cfg;
  cfg.scheduler = workload::SchedulerKind::kSgprs;
  cfg.context_sms = {51, 34, 17};  // lopsided, over-subscribed pool
  cfg.num_tasks = 10;
  cfg.duration = SimTime::from_sec(1.0);
  cfg.warmup = SimTime::from_ms(200);
  const auto r = workload::run_scenario(cfg);
  EXPECT_NEAR(r.fps(), 300.0, 15.0);
  EXPECT_DOUBLE_EQ(r.dmr(), 0.0);
}

}  // namespace
}  // namespace sgprs::rt
