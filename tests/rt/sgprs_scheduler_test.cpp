#include "rt/sgprs_scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "dnn/builders.hpp"
#include "rt/runner.hpp"
#include "sim/engine.hpp"

namespace sgprs::rt {
namespace {

using common::SimTime;

// Fixture wiring a full SGPRS stack over a 2-context paper pool.
class SgprsTest : public ::testing::Test {
 protected:
  SgprsTest() { rebuild(1.0); }

  void rebuild(double oversub, gpu::SharingParams sharing = {}) {
    engine_ = std::make_unique<sim::Engine>();
    exec_ = std::make_unique<gpu::Executor>(
        *engine_, gpu::rtx2080ti(), gpu::SpeedupModel::rtx2080ti(), sharing);
    gpu::ContextPoolConfig pc;
    pc.num_contexts = 2;
    pc.oversubscription = oversub;
    pool_ = std::make_unique<gpu::ContextPool>(*exec_, pc);
    collector_ = std::make_unique<metrics::Collector>();
  }

  Task make_task(int id, TaskConfig cfg = {}) {
    if (!network_) {
      network_ = std::make_shared<const dnn::Network>(dnn::resnet18());
    }
    dnn::Profiler prof(gpu::rtx2080ti(), gpu::SpeedupModel::rtx2080ti(),
                       dnn::CostModel::calibrated());
    return build_task(id, network_, cfg, prof, {pool_->at(0).sm_limit});
  }

  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<gpu::Executor> exec_;
  std::unique_ptr<gpu::ContextPool> pool_;
  std::unique_ptr<metrics::Collector> collector_;
  std::shared_ptr<const dnn::Network> network_;
};

TEST_F(SgprsTest, SingleJobCompletesOnTime) {
  SgprsScheduler sched(*exec_, *pool_, *collector_);
  const Task task = make_task(0);
  sched.admit(task);
  sched.release_job(task, SimTime::zero());
  EXPECT_EQ(sched.jobs_in_flight(), 1);
  engine_->run();
  EXPECT_EQ(sched.jobs_in_flight(), 0);
  const auto s = collector_->aggregate(SimTime::from_ms(100));
  EXPECT_EQ(s.counts.on_time, 1);
  EXPECT_EQ(s.counts.late, 0);
  // A lone ResNet18 job on a 34-SM context with no contention takes a few
  // milliseconds — far under the 33 ms deadline.
  EXPECT_LT(s.max_latency_ms, 10.0);
}

TEST_F(SgprsTest, InFlightCapDropsExcessReleases) {
  SgprsConfig cfg;
  cfg.max_in_flight_per_task = 1;
  SgprsScheduler sched(*exec_, *pool_, *collector_, cfg);
  const Task task = make_task(0);
  sched.admit(task);
  sched.release_job(task, SimTime::zero());
  sched.release_job(task, SimTime::zero());  // same instant: must drop
  EXPECT_EQ(sched.jobs_in_flight(), 1);
  engine_->run();
  const auto s = collector_->aggregate(SimTime::from_ms(100));
  EXPECT_EQ(s.counts.dropped, 1);
  EXPECT_EQ(s.counts.completed(), 1);
}

TEST_F(SgprsTest, AllStagesExecuteExactlyOnce) {
  SgprsScheduler sched(*exec_, *pool_, *collector_);
  const Task task = make_task(0);
  sched.admit(task);
  sched.release_job(task, SimTime::zero());
  engine_->run();
  // Work conservation through the whole stack: total kernel work equals
  // one full network traversal.
  const auto cost = dnn::CostModel::calibrated();
  double expected = 0.0;
  for (int i = 0; i < network_->node_count(); ++i) {
    expected += cost.work_seconds(network_->layer(i));
  }
  EXPECT_NEAR(exec_->total_work_done(), expected, 1e-9);
}

TEST_F(SgprsTest, SeamlessMigrationAcrossContexts) {
  // With several tasks in flight, consecutive stages of a job should land
  // on different contexts at least sometimes — the zero-configuration
  // switch SGPRS is named for.
  SgprsScheduler sched(*exec_, *pool_, *collector_);
  std::vector<Task> tasks;
  for (int i = 0; i < 6; ++i) tasks.push_back(make_task(i));
  for (auto& t : tasks) sched.admit(t);
  for (auto& t : tasks) sched.release_job(t, SimTime::zero());
  engine_->run();
  EXPECT_GT(sched.stage_migrations(), 0);
}

TEST_F(SgprsTest, MediumPromotionsHappenUnderOverload) {
  // Enough tasks to blow virtual deadlines -> late chains get promoted.
  SgprsScheduler sched(*exec_, *pool_, *collector_);
  std::vector<Task> tasks;
  for (int i = 0; i < 26; ++i) tasks.push_back(make_task(i));
  for (auto& t : tasks) sched.admit(t);
  // Release everything at once: a worst-case burst.
  for (auto& t : tasks) sched.release_job(t, SimTime::zero());
  engine_->run();
  EXPECT_GT(sched.medium_promotions(), 0);
}

TEST_F(SgprsTest, MediumBoostCanBeDisabled) {
  SgprsConfig cfg;
  cfg.medium_boost = false;
  SgprsScheduler sched(*exec_, *pool_, *collector_, cfg);
  std::vector<Task> tasks;
  for (int i = 0; i < 26; ++i) tasks.push_back(make_task(i));
  for (auto& t : tasks) sched.admit(t);
  for (auto& t : tasks) sched.release_job(t, SimTime::zero());
  engine_->run();
  EXPECT_EQ(sched.medium_promotions(), 0);
}

TEST_F(SgprsTest, BurstCompletesEverythingEventually) {
  // Jobs are never lost: every release either drops or completes.
  SgprsScheduler sched(*exec_, *pool_, *collector_);
  std::vector<Task> tasks;
  for (int i = 0; i < 20; ++i) tasks.push_back(make_task(i));
  for (auto& t : tasks) sched.admit(t);
  for (auto& t : tasks) sched.release_job(t, SimTime::zero());
  engine_->run();
  EXPECT_EQ(sched.jobs_in_flight(), 0);
  const auto s = collector_->aggregate(SimTime::from_sec(1));
  EXPECT_EQ(s.counts.released,
            s.counts.completed() + s.counts.dropped);
  EXPECT_EQ(s.counts.released, 20);
}

TEST_F(SgprsTest, EmptyQueueCriterionSpreadsBurst) {
  // Two stages released back to back while both contexts are empty must
  // not pile onto one context.
  SgprsScheduler sched(*exec_, *pool_, *collector_);
  Task t0 = make_task(0);
  Task t1 = make_task(1);
  sched.admit(t0);
  sched.admit(t1);
  sched.release_job(t0, SimTime::zero());
  sched.release_job(t1, SimTime::zero());
  // Both contexts should be executing something right now.
  EXPECT_EQ(exec_->context_running_count(0) > 0, true);
  EXPECT_EQ(exec_->context_running_count(1) > 0, true);
  engine_->run();
}

TEST_F(SgprsTest, RoundRobinPolicyAlternates) {
  SgprsConfig cfg;
  cfg.assign_policy = ContextAssignPolicy::kRoundRobin;
  SgprsScheduler sched(*exec_, *pool_, *collector_, cfg);
  Task t0 = make_task(0);
  sched.admit(t0);
  sched.release_job(t0, SimTime::zero());
  engine_->run();
  // 6 stages round-robin over 2 contexts -> 5 hops alternate contexts.
  EXPECT_EQ(sched.stage_migrations(), 5);
}

TEST_F(SgprsTest, RandomPolicyIsSeedDeterministic) {
  auto run_once = [&](std::uint64_t seed) {
    rebuild(1.0);
    SgprsConfig cfg;
    cfg.assign_policy = ContextAssignPolicy::kRandom;
    cfg.rng_seed = seed;
    SgprsScheduler sched(*exec_, *pool_, *collector_, cfg);
    Task t0 = make_task(0);
    sched.admit(t0);
    sched.release_job(t0, SimTime::zero());
    engine_->run();
    return sched.stage_migrations();
  };
  EXPECT_EQ(run_once(5), run_once(5));
}

TEST_F(SgprsTest, HighPriorityLastStageUsesHighStream) {
  // Saturate the low streams of both contexts with long work; a
  // single-stage task (its only stage is the last stage, hence high
  // priority) must still complete via a high stream without waiting for
  // the queued low work.
  SgprsScheduler sched(*exec_, *pool_, *collector_);
  TaskConfig tcfg;
  tcfg.num_stages = 1;
  const Task task = make_task(0, tcfg);
  sched.admit(task);
  // Fill all four low streams directly at the executor level.
  gpu::KernelDesc blocker;
  blocker.op = gpu::OpClass::kConv;
  blocker.work_sm_seconds = 10.0;  // ~0.5+ s wall even at full context
  for (const auto& pc : pool_->contexts()) {
    for (auto s : pc.low_streams) exec_->enqueue(s, blocker, {});
  }
  sched.release_job(task, SimTime::zero());
  engine_->run_until(SimTime::from_ms(200));
  const auto s = collector_->aggregate(SimTime::from_ms(200));
  EXPECT_EQ(s.counts.completed(), 1)
      << "high stream must bypass the saturated low streams";
}

TEST_F(SgprsTest, StageCountQueuesIntrospection) {
  SgprsScheduler sched(*exec_, *pool_, *collector_);
  EXPECT_EQ(sched.queued_stages(0), 0u);
  EXPECT_EQ(sched.queued_stages(1), 0u);
  EXPECT_THROW(sched.queued_stages(2), common::CheckError);
}

TEST_F(SgprsTest, PeriodicTaskMeetsAllDeadlinesAtLowLoad) {
  SgprsScheduler sched(*exec_, *pool_, *collector_);
  std::vector<Task> tasks;
  for (int i = 0; i < 4; ++i) tasks.push_back(make_task(i));
  RunnerConfig rc;
  rc.duration = SimTime::from_sec(1.0);
  Runner runner(*engine_, sched, tasks, rc);
  runner.run();
  const auto s = collector_->aggregate(SimTime::from_sec(1.0));
  EXPECT_EQ(s.counts.late, 0);
  EXPECT_EQ(s.counts.dropped, 0);
  EXPECT_NEAR(static_cast<double>(s.counts.on_time),
              4 * 30.0 * 1.0, 5.0);
}

}  // namespace
}  // namespace sgprs::rt
