// Property-based check of the analytical admission layer against the
// simulator: across ~100 seeded UUniFast task sets, a set admitted by
// AdmissionController (utilization budget + response-time heuristic) must
// never miss a deadline when actually simulated on the pool the capacity
// model describes.
//
// The analysis is deliberately approximate (the executor is a processor-
// sharing system), so the property is pinned at a deployment-style margin
// — the same conservative regime the cluster layer runs at — not at the
// knife edge of margin 1.0.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "dnn/profiler.hpp"
#include "rt/analysis.hpp"
#include "workload/scenario.hpp"
#include "workload/taskset.hpp"

namespace sgprs::rt {
namespace {

constexpr double kMargin = 0.80;
constexpr int kTaskSets = 100;

class AdmissionPropertyTest : public ::testing::Test {
 protected:
  AdmissionPropertyTest()
      : profiler_(gpu::rtx2080ti(), gpu::SpeedupModel::rtx2080ti(),
                  dnn::CostModel::calibrated()),
        // 2 contexts x 51 SMs x 4 streams: exactly the pool run_scenario
        // builds for sgprs with contexts=2, oversubscription=1.5 on a
        // 68-SM device.
        capacity_(pool_capacity(gpu::SpeedupModel::rtx2080ti(),
                                gpu::SharingParams{}, 68, 2, 51, 4)) {}

  dnn::Profiler profiler_;
  PoolCapacityModel capacity_;
};

TEST_F(AdmissionPropertyTest, AdmittedSetsNeverMissDeadlinesInSimulation) {
  int simulated_sets = 0;
  std::int64_t admitted_tasks = 0;
  int rejected_tasks = 0;

  for (std::uint64_t seed = 0; seed < kTaskSets; ++seed) {
    // Meta-draws derive the task-set shape from the seed, so every set is
    // different but the whole test is deterministic.
    common::Rng meta(seed * 7919 + 17);
    workload::RandomTaskSetConfig rcfg;
    rcfg.count = static_cast<int>(meta.uniform_int(4, 18));
    rcfg.total_utilization = meta.uniform(0.5, 3.5);
    rcfg.num_stages = static_cast<int>(meta.uniform_int(3, 8));
    rcfg.seed = seed;
    const auto tasks = workload::build_random_taskset(rcfg, profiler_, {51});

    AdmissionController ac(capacity_, 51, kMargin);
    std::vector<Task> admitted;
    for (const auto& t : tasks) {
      if (ac.try_admit(t)) {
        admitted.push_back(t);
      } else {
        ++rejected_tasks;
      }
    }
    if (admitted.empty()) continue;
    admitted_tasks += static_cast<std::int64_t>(admitted.size());
    ++simulated_sets;

    workload::ScenarioConfig cfg;
    cfg.scheduler = workload::SchedulerKind::kSgprs;
    cfg.num_contexts = 2;
    cfg.oversubscription = 1.5;
    cfg.num_tasks = static_cast<int>(admitted.size());
    cfg.duration = common::SimTime::from_sec(1.0);
    cfg.warmup = common::SimTime::from_sec(0.2);
    const auto result = workload::run_scenario(
        cfg, [&admitted](const workload::ScenarioConfig&,
                         const std::vector<int>&) { return admitted; });

    EXPECT_DOUBLE_EQ(result.aggregate.dmr, 0.0)
        << "seed " << seed << ": admission accepted "
        << admitted.size() << "/" << tasks.size() << " tasks (utilization "
        << ac.current_utilization() << ") but the simulation missed "
        << result.aggregate.counts.late + result.aggregate.counts.dropped
        << " of " << result.aggregate.counts.closed() << " deadlines";
  }

  // The property must not pass vacuously: most sets simulate, and the
  // controller both admits real work and actually rejects overload.
  EXPECT_GT(simulated_sets, kTaskSets / 2);
  EXPECT_GT(admitted_tasks, kTaskSets);
  EXPECT_GT(rejected_tasks, 0);
}

}  // namespace
}  // namespace sgprs::rt
