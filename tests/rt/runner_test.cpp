#include "rt/runner.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "dnn/builders.hpp"
#include "rt/naive_scheduler.hpp"
#include "sim/engine.hpp"

namespace sgprs::rt {
namespace {

using common::SimTime;

// A scheduler stub that records release instants.
class RecordingScheduler final : public Scheduler {
 public:
  void admit(const Task& task) override { admitted.push_back(task.id); }
  void release_job(const Task& task, SimTime now) override {
    releases.emplace_back(task.id, now);
  }
  int jobs_in_flight() const override { return 0; }
  std::string name() const override { return "recording"; }

  std::vector<int> admitted;
  std::vector<std::pair<int, SimTime>> releases;
};

class RunnerTest : public ::testing::Test {
 protected:
  Task make_task(int id, double fps, SimTime phase = SimTime::zero()) {
    if (!network_) {
      network_ = std::make_shared<const dnn::Network>(dnn::lenet5());
    }
    dnn::Profiler prof(gpu::rtx2080ti(), gpu::SpeedupModel::rtx2080ti(),
                       dnn::CostModel::calibrated());
    TaskConfig cfg;
    cfg.fps = fps;
    cfg.num_stages = 2;
    Task t = build_task(id, network_, cfg, prof, {34});
    t.phase = phase;
    return t;
  }
  std::shared_ptr<const dnn::Network> network_;
};

TEST_F(RunnerTest, AdmitsEveryTaskUpFront) {
  sim::Engine engine;
  RecordingScheduler sched;
  std::vector<Task> tasks = {make_task(0, 30), make_task(1, 30)};
  Runner runner(engine, sched, tasks, {});
  EXPECT_EQ(sched.admitted, (std::vector<int>{0, 1}));
}

TEST_F(RunnerTest, PeriodicReleasesAtExactInstants) {
  sim::Engine engine;
  RecordingScheduler sched;
  std::vector<Task> tasks = {make_task(0, 100)};  // 10 ms period
  RunnerConfig rc;
  rc.duration = SimTime::from_ms(35);
  Runner runner(engine, sched, tasks, rc);
  runner.run();
  ASSERT_EQ(sched.releases.size(), 4u);  // t = 0, 10, 20, 30
  for (std::size_t k = 0; k < sched.releases.size(); ++k) {
    EXPECT_EQ(sched.releases[k].second, SimTime::from_ms(10.0 * k));
  }
  EXPECT_EQ(runner.releases_issued(), 4);
}

TEST_F(RunnerTest, PhaseOffsetsFirstRelease) {
  sim::Engine engine;
  RecordingScheduler sched;
  std::vector<Task> tasks = {make_task(0, 100, SimTime::from_ms(4))};
  RunnerConfig rc;
  rc.duration = SimTime::from_ms(25);
  Runner runner(engine, sched, tasks, rc);
  runner.run();
  ASSERT_EQ(sched.releases.size(), 3u);  // t = 4, 14, 24
  EXPECT_EQ(sched.releases[0].second, SimTime::from_ms(4));
}

TEST_F(RunnerTest, NoReleasesAtOrPastHorizon) {
  sim::Engine engine;
  RecordingScheduler sched;
  std::vector<Task> tasks = {make_task(0, 100)};
  RunnerConfig rc;
  rc.duration = SimTime::from_ms(10);  // release at exactly 10 is excluded
  Runner runner(engine, sched, tasks, rc);
  runner.run();
  EXPECT_EQ(sched.releases.size(), 1u);  // only t = 0
  EXPECT_EQ(engine.now(), SimTime::from_ms(10)) << "clock parked at horizon";
}

TEST_F(RunnerTest, MultipleTasksInterleave) {
  sim::Engine engine;
  RecordingScheduler sched;
  std::vector<Task> tasks = {make_task(0, 100), make_task(1, 50)};
  RunnerConfig rc;
  rc.duration = SimTime::from_ms(41);
  Runner runner(engine, sched, tasks, rc);
  runner.run();
  int t0 = 0;
  int t1 = 0;
  for (const auto& [id, at] : sched.releases) (id == 0 ? t0 : t1)++;
  EXPECT_EQ(t0, 5);  // 0,10,20,30,40
  EXPECT_EQ(t1, 3);  // 0,20,40
}

TEST_F(RunnerTest, SporadicInterarrivalsStayInBounds) {
  sim::Engine engine;
  RecordingScheduler sched;
  Task t = make_task(0, 100);  // 10 ms worst-case period
  t.arrival = ArrivalModel::kSporadic;
  t.min_separation = SimTime::from_ms(10);
  t.max_separation = SimTime::from_ms(30);
  std::vector<Task> tasks = {t};
  RunnerConfig rc;
  rc.duration = SimTime::from_sec(1.0);
  Runner runner(engine, sched, tasks, rc);
  runner.run();
  ASSERT_GE(sched.releases.size(), 2u);
  bool saw_stretch = false;
  for (std::size_t k = 1; k < sched.releases.size(); ++k) {
    const SimTime gap =
        sched.releases[k].second - sched.releases[k - 1].second;
    EXPECT_GE(gap, SimTime::from_ms(10));
    EXPECT_LE(gap, SimTime::from_ms(30));
    if (gap > SimTime::from_ms(10)) saw_stretch = true;
  }
  EXPECT_TRUE(saw_stretch) << "draws must actually vary";
}

TEST_F(RunnerTest, SporadicDrawsAreDeterministicPerSeed) {
  auto releases_for = [&](std::uint64_t seed) {
    sim::Engine engine;
    RecordingScheduler sched;
    Task t = make_task(0, 100);
    t.arrival = ArrivalModel::kSporadic;
    t.min_separation = SimTime::from_ms(10);
    t.max_separation = SimTime::from_ms(25);
    std::vector<Task> tasks = {t};
    RunnerConfig rc;
    rc.duration = SimTime::from_ms(500);
    rc.jitter_seed = seed;
    Runner runner(engine, sched, tasks, rc);
    runner.run();
    return sched.releases;
  };
  EXPECT_EQ(releases_for(1), releases_for(1));
  EXPECT_NE(releases_for(1), releases_for(2));
}

TEST_F(RunnerTest, SporadicDefaultsFallBackToPeriod) {
  // Zero separations degrade to strictly periodic releases at the period.
  sim::Engine engine;
  RecordingScheduler sched;
  Task t = make_task(0, 100);
  t.arrival = ArrivalModel::kSporadic;
  std::vector<Task> tasks = {t};
  RunnerConfig rc;
  rc.duration = SimTime::from_ms(35);
  Runner runner(engine, sched, tasks, rc);
  runner.run();
  ASSERT_EQ(sched.releases.size(), 4u);
  for (std::size_t k = 0; k < sched.releases.size(); ++k) {
    EXPECT_EQ(sched.releases[k].second, SimTime::from_ms(10.0 * k));
  }
}

TEST_F(RunnerTest, SporadicMinAboveMaxRejected) {
  sim::Engine engine;
  RecordingScheduler sched;
  Task t = make_task(0, 100);
  t.arrival = ArrivalModel::kSporadic;
  t.min_separation = SimTime::from_ms(30);
  t.max_separation = SimTime::from_ms(10);
  std::vector<Task> tasks = {t};
  EXPECT_THROW(Runner(engine, sched, tasks, {}), common::CheckError);

  // A max below the *defaulted* min (the 10 ms period) must also be
  // rejected, not silently clamped away.
  t.min_separation = SimTime::zero();
  t.max_separation = SimTime::from_ms(5);
  std::vector<Task> tasks2 = {t};
  EXPECT_THROW(Runner(engine, sched, tasks2, {}), common::CheckError);
}

TEST_F(RunnerTest, ReleaseJitterBoundedBySporadicMinSeparation) {
  sim::Engine engine;
  RecordingScheduler sched;
  Task t = make_task(0, 100);  // 10 ms period
  t.arrival = ArrivalModel::kSporadic;
  t.min_separation = SimTime::from_ms(2);
  t.max_separation = SimTime::from_ms(20);
  std::vector<Task> tasks = {t};
  RunnerConfig rc;
  rc.release_jitter = SimTime::from_ms(5);  // < period but > min separation
  EXPECT_THROW(Runner(engine, sched, tasks, rc), common::CheckError);
}

TEST_F(RunnerTest, ZeroDurationRejected) {
  sim::Engine engine;
  RecordingScheduler sched;
  std::vector<Task> tasks = {make_task(0, 30)};
  RunnerConfig rc;
  rc.duration = SimTime::zero();
  EXPECT_THROW(Runner(engine, sched, tasks, rc), common::CheckError);
}

}  // namespace
}  // namespace sgprs::rt
