#include "rt/runner.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "dnn/builders.hpp"
#include "rt/naive_scheduler.hpp"
#include "sim/engine.hpp"

namespace sgprs::rt {
namespace {

using common::SimTime;

// A scheduler stub that records release instants.
class RecordingScheduler final : public Scheduler {
 public:
  void admit(const Task& task) override { admitted.push_back(task.id); }
  void release_job(const Task& task, SimTime now) override {
    releases.emplace_back(task.id, now);
  }
  int jobs_in_flight() const override { return 0; }
  std::string name() const override { return "recording"; }

  std::vector<int> admitted;
  std::vector<std::pair<int, SimTime>> releases;
};

class RunnerTest : public ::testing::Test {
 protected:
  Task make_task(int id, double fps, SimTime phase = SimTime::zero()) {
    if (!network_) {
      network_ = std::make_shared<const dnn::Network>(dnn::lenet5());
    }
    dnn::Profiler prof(gpu::rtx2080ti(), gpu::SpeedupModel::rtx2080ti(),
                       dnn::CostModel::calibrated());
    TaskConfig cfg;
    cfg.fps = fps;
    cfg.num_stages = 2;
    Task t = build_task(id, network_, cfg, prof, {34});
    t.phase = phase;
    return t;
  }
  std::shared_ptr<const dnn::Network> network_;
};

TEST_F(RunnerTest, AdmitsEveryTaskUpFront) {
  sim::Engine engine;
  RecordingScheduler sched;
  std::vector<Task> tasks = {make_task(0, 30), make_task(1, 30)};
  Runner runner(engine, sched, tasks, {});
  EXPECT_EQ(sched.admitted, (std::vector<int>{0, 1}));
}

TEST_F(RunnerTest, PeriodicReleasesAtExactInstants) {
  sim::Engine engine;
  RecordingScheduler sched;
  std::vector<Task> tasks = {make_task(0, 100)};  // 10 ms period
  RunnerConfig rc;
  rc.duration = SimTime::from_ms(35);
  Runner runner(engine, sched, tasks, rc);
  runner.run();
  ASSERT_EQ(sched.releases.size(), 4u);  // t = 0, 10, 20, 30
  for (std::size_t k = 0; k < sched.releases.size(); ++k) {
    EXPECT_EQ(sched.releases[k].second, SimTime::from_ms(10.0 * k));
  }
  EXPECT_EQ(runner.releases_issued(), 4);
}

TEST_F(RunnerTest, PhaseOffsetsFirstRelease) {
  sim::Engine engine;
  RecordingScheduler sched;
  std::vector<Task> tasks = {make_task(0, 100, SimTime::from_ms(4))};
  RunnerConfig rc;
  rc.duration = SimTime::from_ms(25);
  Runner runner(engine, sched, tasks, rc);
  runner.run();
  ASSERT_EQ(sched.releases.size(), 3u);  // t = 4, 14, 24
  EXPECT_EQ(sched.releases[0].second, SimTime::from_ms(4));
}

TEST_F(RunnerTest, NoReleasesAtOrPastHorizon) {
  sim::Engine engine;
  RecordingScheduler sched;
  std::vector<Task> tasks = {make_task(0, 100)};
  RunnerConfig rc;
  rc.duration = SimTime::from_ms(10);  // release at exactly 10 is excluded
  Runner runner(engine, sched, tasks, rc);
  runner.run();
  EXPECT_EQ(sched.releases.size(), 1u);  // only t = 0
  EXPECT_EQ(engine.now(), SimTime::from_ms(10)) << "clock parked at horizon";
}

TEST_F(RunnerTest, MultipleTasksInterleave) {
  sim::Engine engine;
  RecordingScheduler sched;
  std::vector<Task> tasks = {make_task(0, 100), make_task(1, 50)};
  RunnerConfig rc;
  rc.duration = SimTime::from_ms(41);
  Runner runner(engine, sched, tasks, rc);
  runner.run();
  int t0 = 0;
  int t1 = 0;
  for (const auto& [id, at] : sched.releases) (id == 0 ? t0 : t1)++;
  EXPECT_EQ(t0, 5);  // 0,10,20,30,40
  EXPECT_EQ(t1, 3);  // 0,20,40
}

TEST_F(RunnerTest, ZeroDurationRejected) {
  sim::Engine engine;
  RecordingScheduler sched;
  std::vector<Task> tasks = {make_task(0, 30)};
  RunnerConfig rc;
  rc.duration = SimTime::zero();
  EXPECT_THROW(Runner(engine, sched, tasks, rc), common::CheckError);
}

}  // namespace
}  // namespace sgprs::rt
