#include "rt/task.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "dnn/builders.hpp"

namespace sgprs::rt {
namespace {

class TaskBuildTest : public ::testing::Test {
 protected:
  TaskBuildTest()
      : network_(std::make_shared<const dnn::Network>(dnn::resnet18())),
        profiler_(gpu::rtx2080ti(), gpu::SpeedupModel::rtx2080ti(),
                  dnn::CostModel::calibrated()) {}

  Task build(TaskConfig cfg = {}, std::vector<int> sms = {34}) {
    return build_task(7, network_, cfg, profiler_, sms);
  }

  std::shared_ptr<const dnn::Network> network_;
  dnn::Profiler profiler_;
};

TEST_F(TaskBuildTest, PeriodFromFps) {
  const auto t = build();
  EXPECT_NEAR(t.period.to_ms(), 1000.0 / 30.0, 1e-6);
  EXPECT_EQ(t.deadline, t.period) << "implicit deadline defaults to period";
  EXPECT_EQ(t.id, 7);
}

TEST_F(TaskBuildTest, ExplicitDeadlineRespected) {
  TaskConfig cfg;
  cfg.deadline = common::SimTime::from_ms(20);
  const auto t = build(cfg);
  EXPECT_EQ(t.deadline, common::SimTime::from_ms(20));
  EXPECT_NE(t.deadline, t.period);
}

TEST_F(TaskBuildTest, SixStagesByDefault) {
  const auto t = build();
  EXPECT_EQ(t.stage_count(), 6);
  EXPECT_EQ(t.wcet.stage_count(), 6);
}

TEST_F(TaskBuildTest, TwoLevelPriorities) {
  const auto t = build();
  for (int s = 0; s < t.stage_count(); ++s) {
    const auto expected = s == t.stage_count() - 1 ? StagePriority::kHigh
                                                   : StagePriority::kLow;
    EXPECT_EQ(t.stages[s].base_priority, expected) << "stage " << s;
  }
}

TEST_F(TaskBuildTest, PriorityPolicyAblations) {
  TaskConfig cfg;
  cfg.priority_policy = PriorityPolicy::kAllLow;
  for (const auto& st : build(cfg).stages) {
    EXPECT_EQ(st.base_priority, StagePriority::kLow);
  }
  cfg.priority_policy = PriorityPolicy::kAllHigh;
  for (const auto& st : build(cfg).stages) {
    EXPECT_EQ(st.base_priority, StagePriority::kHigh);
  }
}

TEST_F(TaskBuildTest, VirtualDeadlinesAreCumulativeAndMonotone) {
  const auto t = build();
  common::SimTime prev = common::SimTime::zero();
  for (const auto& st : t.stages) {
    EXPECT_GT(st.virtual_deadline_offset, prev);
    prev = st.virtual_deadline_offset;
  }
  EXPECT_EQ(t.stages.back().virtual_deadline_offset, t.deadline)
      << "last stage virtual deadline equals the task deadline";
}

TEST_F(TaskBuildTest, VirtualDeadlinesProportionalToWcet) {
  // Section IV-A2: each stage's slice of D_i is proportional to its WCET
  // share. Verify the increments against the profiled stage WCETs at the
  // reference SM size.
  const auto t = build();
  const double total = t.wcet.total_at(34).to_sec();
  common::SimTime prev = common::SimTime::zero();
  for (int s = 0; s < t.stage_count() - 1; ++s) {
    const double slice =
        (t.stages[s].virtual_deadline_offset - prev).to_sec();
    const double expected =
        t.deadline.to_sec() * t.wcet.stage_at(s, 34).to_sec() / total;
    EXPECT_NEAR(slice, expected, 1e-9) << "stage " << s;
    prev = t.stages[s].virtual_deadline_offset;
  }
}

TEST_F(TaskBuildTest, WcetProfiledAtEveryPoolSize) {
  const auto t = build({}, {23, 34, 45});
  for (int s = 0; s < t.stage_count(); ++s) {
    EXPECT_GT(t.wcet.stage_at(s, 23), t.wcet.stage_at(s, 45))
        << "more SMs means shorter WCET";
  }
}

TEST_F(TaskBuildTest, StagesTileTheNetwork) {
  const auto t = build();
  int covered = 0;
  for (const auto& st : t.stages) covered += static_cast<int>(st.nodes.size());
  EXPECT_EQ(covered, network_->node_count());
}

TEST_F(TaskBuildTest, SingleStageTask) {
  TaskConfig cfg;
  cfg.num_stages = 1;
  const auto t = build(cfg);
  EXPECT_EQ(t.stage_count(), 1);
  EXPECT_EQ(t.stages[0].base_priority, StagePriority::kHigh)
      << "the only stage is also the last stage";
  EXPECT_EQ(t.stages[0].virtual_deadline_offset, t.deadline);
}

TEST_F(TaskBuildTest, InvalidConfigsThrow) {
  TaskConfig bad;
  bad.fps = 0.0;
  EXPECT_THROW(build(bad), common::CheckError);
  TaskConfig bad2;
  bad2.num_stages = 0;
  EXPECT_THROW(build(bad2), common::CheckError);
  EXPECT_THROW(build_task(0, nullptr, {}, profiler_, {34}),
               common::CheckError);
  EXPECT_THROW(build({}, {}), common::CheckError);
}

}  // namespace
}  // namespace sgprs::rt
