// Dynamic Runner surface: add_task / retire_task under a live engine.
//
// The load-bearing properties: a dynamically admitted task starts its
// cadence at admission time; retiring cancels the pending release through
// the generation-tagged calendar so no stale release ever fires; and a
// sporadic task's arrival-rng stream depends on (jitter_seed, task id)
// only — never on admission order.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "common/check.hpp"
#include "rt/runner.hpp"
#include "rt/scheduler.hpp"
#include "sim/engine.hpp"

namespace sgprs::rt {
namespace {

using common::SimTime;

/// Records every release instant per task id.
class RecordingScheduler final : public Scheduler {
 public:
  void admit(const Task& task) override { admitted_.push_back(task.id); }
  void release_job(const Task& task, SimTime now) override {
    releases_[task.id].push_back(now);
  }
  int jobs_in_flight() const override { return 0; }
  std::string name() const override { return "recording"; }

  std::vector<int> admitted_;
  std::map<int, std::vector<SimTime>> releases_;
};

Task make_task(int id, double period_ms, double phase_ms = 0.0) {
  Task t;
  t.id = id;
  t.name = "t" + std::to_string(id);
  t.period = SimTime::from_ms(period_ms);
  t.deadline = t.period;
  t.phase = SimTime::from_ms(phase_ms);
  return t;
}

Task make_sporadic(int id, double min_ms, double max_ms) {
  Task t = make_task(id, min_ms);
  t.arrival = ArrivalModel::kSporadic;
  t.min_separation = SimTime::from_ms(min_ms);
  t.max_separation = SimTime::from_ms(max_ms);
  return t;
}

TEST(RunnerDynamicTest, AddTaskMidRunStartsCadenceAtAdmission) {
  sim::Engine engine;
  RecordingScheduler sched;
  RunnerConfig cfg;
  cfg.duration = SimTime::from_ms(100.0);
  Runner runner(engine, sched, cfg);

  const Task a = make_task(0, 10.0);
  runner.add_task(a);
  runner.start();
  engine.run_until(SimTime::from_ms(35.0));

  const Task b = make_task(1, 10.0, /*phase_ms=*/2.0);
  runner.add_task(b);
  engine.run_until(SimTime::from_ms(100.0));

  // Task 0: releases at 0, 10, ..., 90.
  ASSERT_EQ(sched.releases_[0].size(), 10u);
  // Task 1: first release at admission (35) + phase (2), then every 10 ms.
  ASSERT_FALSE(sched.releases_[1].empty());
  EXPECT_EQ(sched.releases_[1].front(), SimTime::from_ms(37.0));
  EXPECT_EQ(sched.releases_[1].size(), 7u);  // 37, 47, ..., 97
  EXPECT_EQ(runner.releases_issued(), 17);
  EXPECT_EQ(runner.active_tasks(), 2);
}

TEST(RunnerDynamicTest, RetireCancelsPendingReleaseAndNeverFiresStale) {
  sim::Engine engine;
  RecordingScheduler sched;
  RunnerConfig cfg;
  cfg.duration = SimTime::from_ms(100.0);
  Runner runner(engine, sched, cfg);
  const Task keeper = make_task(0, 10.0);
  const Task victim = make_task(1, 10.0);
  runner.add_task(keeper);
  runner.add_task(victim);
  runner.start();

  engine.run_until(SimTime::from_ms(25.0));
  ASSERT_EQ(sched.releases_[1].size(), 3u);  // 0, 10, 20

  EXPECT_TRUE(runner.retire_task(1));
  EXPECT_FALSE(runner.retire_task(1));   // idempotent: already retired
  EXPECT_FALSE(runner.retire_task(99));  // unknown id
  EXPECT_EQ(runner.active_tasks(), 1);

  engine.run_until(SimTime::from_ms(100.0));
  // No release of task 1 ever fires after the retire instant.
  EXPECT_EQ(sched.releases_[1].size(), 3u);
  // Task 0 is unaffected.
  EXPECT_EQ(sched.releases_[0].size(), 10u);
}

TEST(RunnerDynamicTest, SporadicRngKeyedOnTaskIdNotAdmissionOrder) {
  // Same sporadic task id admitted in different orders (and one of them
  // dynamically) must see the identical inter-arrival draw sequence.
  const auto release_times = [](bool sporadic_first, bool dynamic_admit) {
    sim::Engine engine;
    RecordingScheduler sched;
    RunnerConfig cfg;
    cfg.duration = SimTime::from_ms(200.0);
    cfg.jitter_seed = 1234;
    Runner runner(engine, sched, cfg);
    const Task s = make_sporadic(7, 10.0, 20.0);
    const Task p1 = make_task(1, 8.0);
    const Task p2 = make_task(2, 12.0);
    if (sporadic_first) {
      runner.add_task(s);
      runner.add_task(p1);
    } else {
      runner.add_task(p1);
      runner.add_task(p2);
    }
    if (!dynamic_admit && !sporadic_first) runner.add_task(s);
    runner.start();
    if (dynamic_admit && !sporadic_first) {
      // Admit the sporadic task mid-run; its draws must still match.
      engine.run_until(SimTime::zero());
      runner.add_task(s);
    }
    engine.run_until(SimTime::from_ms(200.0));
    return sched.releases_[7];
  };

  const auto a = release_times(true, false);
  const auto b = release_times(false, false);
  const auto c = release_times(false, true);
  ASSERT_GT(a.size(), 3u);
  // Admission order shuffled: identical sequence (all released from t=0).
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(RunnerDynamicTest, DuplicateTaskIdRejected) {
  sim::Engine engine;
  RecordingScheduler sched;
  RunnerConfig cfg;
  cfg.duration = SimTime::from_ms(100.0);
  Runner runner(engine, sched, cfg);
  const Task a = make_task(3, 10.0);
  const Task dup = make_task(3, 20.0);
  runner.add_task(a);
  EXPECT_THROW(runner.add_task(dup), common::CheckError);
}

TEST(RunnerDynamicTest, StaticConstructorMatchesIncrementalAdmission) {
  // The closed-world constructor and a sequence of add_task calls must
  // produce identical release schedules (the static path is just the
  // dynamic path with every admission at t=0).
  std::vector<Task> tasks;
  tasks.push_back(make_task(0, 10.0, 1.0));
  tasks.push_back(make_sporadic(1, 15.0, 25.0));

  const auto run = [&](bool use_ctor) {
    sim::Engine engine;
    RecordingScheduler sched;
    RunnerConfig cfg;
    cfg.duration = SimTime::from_ms(150.0);
    if (use_ctor) {
      Runner runner(engine, sched, tasks, cfg);
      runner.run();
      return std::make_pair(sched.releases_, runner.releases_issued());
    }
    Runner runner(engine, sched, cfg);
    for (const auto& t : tasks) runner.add_task(t);
    runner.run();
    return std::make_pair(sched.releases_, runner.releases_issued());
  };

  const auto a = run(true);
  const auto b = run(false);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

}  // namespace
}  // namespace sgprs::rt
