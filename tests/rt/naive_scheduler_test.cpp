#include "rt/naive_scheduler.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "dnn/builders.hpp"
#include "rt/runner.hpp"
#include "sim/engine.hpp"

namespace sgprs::rt {
namespace {

using common::SimTime;

class NaiveTest : public ::testing::Test {
 protected:
  NaiveTest() {
    engine_ = std::make_unique<sim::Engine>();
    exec_ = std::make_unique<gpu::Executor>(*engine_, gpu::rtx2080ti(),
                                            gpu::SpeedupModel::rtx2080ti(),
                                            gpu::SharingParams{});
    gpu::ContextPoolConfig pc;
    pc.num_contexts = 2;
    pc.high_streams_per_context = 1;
    pc.low_streams_per_context = 0;
    pool_ = std::make_unique<gpu::ContextPool>(*exec_, pc);
    collector_ = std::make_unique<metrics::Collector>();
  }

  Task make_task(int id) {
    if (!network_) {
      network_ = std::make_shared<const dnn::Network>(dnn::resnet18());
    }
    dnn::Profiler prof(gpu::rtx2080ti(), gpu::SpeedupModel::rtx2080ti(),
                       dnn::CostModel::calibrated());
    return build_task(id, network_, {}, prof, {pool_->at(0).sm_limit});
  }

  std::unique_ptr<sim::Engine> engine_;
  std::unique_ptr<gpu::Executor> exec_;
  std::unique_ptr<gpu::ContextPool> pool_;
  std::unique_ptr<metrics::Collector> collector_;
  std::shared_ptr<const dnn::Network> network_;
};

TEST_F(NaiveTest, RoundRobinPinning) {
  NaiveScheduler sched(*exec_, *pool_, *collector_);
  std::vector<Task> tasks;
  for (int i = 0; i < 5; ++i) tasks.push_back(make_task(i));
  for (auto& t : tasks) sched.admit(t);
  EXPECT_EQ(sched.task_context(0), 0);
  EXPECT_EQ(sched.task_context(1), 1);
  EXPECT_EQ(sched.task_context(2), 0);
  EXPECT_EQ(sched.task_context(3), 1);
  EXPECT_EQ(sched.task_context(4), 0);
}

TEST_F(NaiveTest, SingleJobCompletes) {
  NaiveScheduler sched(*exec_, *pool_, *collector_);
  const Task task = make_task(0);
  sched.admit(task);
  sched.release_job(task, SimTime::zero());
  engine_->run();
  const auto s = collector_->aggregate(SimTime::from_ms(100));
  EXPECT_EQ(s.counts.on_time, 1);
  EXPECT_EQ(sched.jobs_in_flight(), 0);
}

TEST_F(NaiveTest, SingleFrameBufferDropsWhileBusy) {
  NaiveScheduler sched(*exec_, *pool_, *collector_);
  const Task task = make_task(0);
  sched.admit(task);
  sched.release_job(task, SimTime::zero());
  sched.release_job(task, SimTime::zero());  // previous frame still pending
  engine_->run();
  const auto s = collector_->aggregate(SimTime::from_ms(200));
  EXPECT_EQ(s.counts.dropped, 1);
  EXPECT_EQ(s.counts.completed(), 1);
}

TEST_F(NaiveTest, NoMigrationEver) {
  NaiveScheduler sched(*exec_, *pool_, *collector_);
  std::vector<Task> tasks;
  for (int i = 0; i < 4; ++i) tasks.push_back(make_task(i));
  RunnerConfig rc;
  rc.duration = SimTime::from_ms(500);
  Runner runner(*engine_, sched, tasks, rc);
  runner.run();
  // Pinned tasks: every job of task i runs on context i % 2. There is no
  // migration counter on the naive scheduler by design; verify pinning
  // survives execution instead.
  EXPECT_EQ(sched.task_context(0), 0);
  EXPECT_EQ(sched.task_context(2), 0);
}

TEST_F(NaiveTest, HostSyncGapSlowsThroughput) {
  auto throughput_with_gap = [&](double gap_ms) {
    sim::Engine engine;
    gpu::Executor exec(engine, gpu::rtx2080ti(),
                       gpu::SpeedupModel::rtx2080ti(), gpu::SharingParams{});
    gpu::ContextPoolConfig pc;
    pc.num_contexts = 2;
    pc.high_streams_per_context = 1;
    pc.low_streams_per_context = 0;
    gpu::ContextPool pool(exec, pc);
    metrics::Collector collector;
    NaiveConfig cfg;
    cfg.host_sync_gap = SimTime::from_ms(gap_ms);
    NaiveScheduler sched(exec, pool, collector, cfg);
    dnn::Profiler prof(gpu::rtx2080ti(), gpu::SpeedupModel::rtx2080ti(),
                       dnn::CostModel::calibrated());
    auto net = std::make_shared<const dnn::Network>(dnn::resnet18());
    std::vector<Task> tasks;
    for (int i = 0; i < 20; ++i) {
      tasks.push_back(build_task(i, net, {}, prof, {pool.at(0).sm_limit}));
    }
    RunnerConfig rc;
    rc.duration = SimTime::from_sec(1.0);
    Runner runner(engine, sched, tasks, rc);
    runner.run();
    return collector.aggregate(rc.duration).fps;
  };
  const double fast = throughput_with_gap(0.0);
  const double slow = throughput_with_gap(1.0);
  EXPECT_GT(fast, slow * 1.15)
      << "1 ms host gap must cost well over 15% at ~3 ms job service";
}

TEST_F(NaiveTest, LateJobsRunToCompletion) {
  // Saturate one context, then check that late jobs still complete (the
  // naive scheduler has no deadline awareness — the domino effect).
  NaiveScheduler sched(*exec_, *pool_, *collector_);
  std::vector<Task> tasks;
  for (int i = 0; i < 24; ++i) tasks.push_back(make_task(i));
  for (auto& t : tasks) sched.admit(t);
  // All 24 released at once on 2 contexts: 12 sequential jobs per context
  // at ~3.3 ms each + 1 ms gaps -> the tail jobs are far past 33 ms.
  for (auto& t : tasks) sched.release_job(t, SimTime::zero());
  engine_->run();
  const auto s = collector_->aggregate(SimTime::from_sec(1));
  EXPECT_EQ(s.counts.completed(), 24) << "nothing is aborted";
  EXPECT_GT(s.counts.late, 0) << "tail jobs must have missed";
}

TEST_F(NaiveTest, ReleaseBeforeAdmitThrows) {
  NaiveScheduler sched(*exec_, *pool_, *collector_);
  const Task task = make_task(0);
  EXPECT_THROW(sched.release_job(task, SimTime::zero()),
               common::CheckError);
}

TEST_F(NaiveTest, TaskContextValidation) {
  NaiveScheduler sched(*exec_, *pool_, *collector_);
  EXPECT_THROW(sched.task_context(0), common::CheckError);
}

}  // namespace
}  // namespace sgprs::rt
