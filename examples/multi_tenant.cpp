// Multi-tenant inference: heterogeneous DNNs with different rates and
// deadlines sharing one GPU under SGPRS — the deployment the paper's
// introduction motivates (transportation / healthcare / speech stacks
// co-located on one accelerator).
//
// Builds the stack from the lower-level API (instead of
// workload::run_scenario) to show how custom task sets are assembled.
#include <iostream>
#include <memory>

#include "dnn/builders.hpp"
#include "dnn/profiler.hpp"
#include "gpu/context_pool.hpp"
#include "metrics/report.hpp"
#include "rt/runner.hpp"
#include "rt/sgprs_scheduler.hpp"
#include "sim/engine.hpp"

int main() {
  using namespace sgprs;
  using common::SimTime;

  sim::Engine engine;
  gpu::Executor exec(engine, gpu::rtx2080ti(),
                     gpu::SpeedupModel::rtx2080ti(), gpu::SharingParams{});

  gpu::ContextPoolConfig pool_cfg;
  pool_cfg.num_contexts = 3;
  pool_cfg.oversubscription = 1.5;
  gpu::ContextPool pool(exec, pool_cfg);

  dnn::Profiler profiler(gpu::rtx2080ti(), gpu::SpeedupModel::rtx2080ti(),
                         dnn::CostModel::calibrated());
  const std::vector<int> pool_sms = {pool.at(0).sm_limit};

  // A camera perception stack, a heavier scene classifier, a lightweight
  // wake-word-style net, and a tiny safety monitor.
  struct Tenant {
    std::string name;
    dnn::Network net;
    double fps;
    int copies;
    int stages;
  };
  std::vector<Tenant> tenants;
  tenants.push_back({"resnet18-cam", dnn::resnet18(), 30.0, 6, 6});
  tenants.push_back({"resnet34-scene", dnn::resnet34(), 10.0, 2, 8});
  tenants.push_back({"mobilenet-det", dnn::mobilenet_like(), 60.0, 2, 6});
  tenants.push_back({"lenet-safety", dnn::lenet5(), 100.0, 1, 2});

  std::vector<rt::Task> tasks;
  std::vector<std::string> task_names;
  int id = 0;
  for (auto& tn : tenants) {
    auto shared = std::make_shared<const dnn::Network>(std::move(tn.net));
    for (int c = 0; c < tn.copies; ++c) {
      rt::TaskConfig tc;
      tc.name = tn.name + "#" + std::to_string(c);
      tc.fps = tn.fps;
      tc.num_stages = tn.stages;
      rt::Task t = rt::build_task(id++, shared, tc, profiler, pool_sms);
      // Spread phases to avoid a synchronized burst at t=0.
      t.phase = SimTime::from_ms(1.7 * id);
      task_names.push_back(tc.name);
      tasks.push_back(std::move(t));
    }
  }

  metrics::Collector collector(SimTime::from_ms(300));
  rt::SgprsScheduler scheduler(exec, pool, collector);

  rt::RunnerConfig rc;
  rc.duration = SimTime::from_sec(2.0);
  rt::Runner runner(engine, scheduler, tasks, rc);
  runner.run();

  std::cout << "Multi-tenant SGPRS: " << tasks.size()
            << " tasks over a 3-context pool (os 1.5)\n\n";
  metrics::Table t({"task", "rate (fps)", "achieved fps", "DMR",
                    "p99 lat (ms)"});
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto s = collector.per_task(static_cast<int>(i), rc.duration);
    t.add_row({task_names[i],
               metrics::Table::fmt(1.0 / tasks[i].period.to_sec(), 0),
               metrics::Table::fmt(s.fps, 1), metrics::Table::pct(s.dmr),
               metrics::Table::fmt(s.p99_latency_ms, 2)});
  }
  t.print(std::cout);

  const auto agg = collector.aggregate(rc.duration);
  std::cout << "\nAggregate: " << metrics::Table::fmt(agg.fps, 0)
            << " fps, DMR " << metrics::Table::pct(agg.dmr) << ", "
            << scheduler.stage_migrations()
            << " seamless partition switches.\n";
  return 0;
}
