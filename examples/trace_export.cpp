// Exports a chrome://tracing / Perfetto timeline of an SGPRS schedule:
// one process lane per context, one thread lane per stream, kernels
// labelled by layer. Open the output at https://ui.perfetto.dev.
//
//   ./examples/trace_export [out.json] [num_tasks]
#include <fstream>
#include <iostream>
#include <memory>

#include "dnn/builders.hpp"
#include "dnn/profiler.hpp"
#include "gpu/context_pool.hpp"
#include "metrics/trace_recorder.hpp"
#include "rt/runner.hpp"
#include "rt/sgprs_scheduler.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace sgprs;
  using common::SimTime;

  const std::string out_path = argc > 1 ? argv[1] : "sgprs_trace.json";
  const int num_tasks = argc > 2 ? std::atoi(argv[2]) : 8;

  sim::Engine engine;
  gpu::Executor exec(engine, gpu::rtx2080ti(),
                     gpu::SpeedupModel::rtx2080ti(), gpu::SharingParams{});
  metrics::TraceRecorder recorder;
  exec.set_trace_sink(&recorder);

  gpu::ContextPoolConfig pool_cfg;
  pool_cfg.num_contexts = 2;
  pool_cfg.oversubscription = 1.5;
  gpu::ContextPool pool(exec, pool_cfg);

  dnn::Profiler profiler(gpu::rtx2080ti(), gpu::SpeedupModel::rtx2080ti(),
                         dnn::CostModel::calibrated());
  auto net = std::make_shared<const dnn::Network>(dnn::resnet18());

  std::vector<rt::Task> tasks;
  for (int i = 0; i < num_tasks; ++i) {
    rt::TaskConfig tc;
    tc.name = "cam" + std::to_string(i);
    rt::Task t = rt::build_task(i, net, tc, profiler, {pool.at(0).sm_limit});
    t.phase = SimTime::from_ms(2.1 * i);
    tasks.push_back(std::move(t));
  }

  metrics::Collector collector;
  rt::SgprsScheduler scheduler(exec, pool, collector);
  rt::RunnerConfig rc;
  rc.duration = SimTime::from_ms(200);  // ~6 frames per task
  rt::Runner runner(engine, scheduler, tasks, rc);
  runner.run();

  std::ofstream out(out_path);
  if (!out) {
    std::cerr << "cannot open " << out_path << " for writing\n";
    return 1;
  }
  recorder.write_json(out);

  std::cout << "Wrote " << recorder.event_count() << " kernel spans ("
            << num_tasks << " tasks, 200 ms) to " << out_path << "\n"
            << "Open at https://ui.perfetto.dev — pid = context, tid = "
               "stream.\n";
  return 0;
}
