// Over-subscription explorer: for a fixed workload, sweep the pool's
// over-subscription level and report where the sweet spot sits. This is
// the design decision Figs. 3a/4a study — more over-subscription buys
// opportunistic parallelism but adds cross-context contention.
//
//   ./examples/oversubscription_sweep [num_tasks] [num_contexts]
#include <cstdlib>
#include <iostream>

#include "metrics/report.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace sgprs;

  const int num_tasks = argc > 1 ? std::atoi(argv[1]) : 24;
  const int num_contexts = argc > 2 ? std::atoi(argv[2]) : 3;
  if (num_tasks < 1 || num_contexts < 1) {
    std::cerr << "usage: oversubscription_sweep [num_tasks] [num_contexts]\n";
    return 1;
  }

  std::cout << "Over-subscription sweep: " << num_tasks
            << " ResNet18 tasks @ 30 fps on " << num_contexts
            << " contexts\n\n";

  metrics::Table t({"oversub", "SMs/context", "total FPS", "DMR",
                    "p99 lat (ms)"});
  double best_fps = -1.0;
  double best_os = 1.0;
  for (double os : {1.0, 1.25, 1.5, 1.75, 2.0, 2.5}) {
    workload::ScenarioConfig cfg;
    cfg.scheduler = workload::SchedulerKind::kSgprs;
    cfg.num_contexts = num_contexts;
    cfg.oversubscription = os;
    cfg.num_tasks = num_tasks;
    cfg.duration = common::SimTime::from_sec(2.0);
    cfg.warmup = common::SimTime::from_ms(400);
    const auto r = workload::run_scenario(cfg);
    const int sms = gpu::ContextPool::sms_per_context(
        cfg.device.total_sms, num_contexts, os);
    t.add_row({metrics::Table::fmt(os, 2), std::to_string(sms),
               metrics::Table::fmt(r.fps(), 0), metrics::Table::pct(r.dmr()),
               metrics::Table::fmt(r.aggregate.p99_latency_ms, 1)});
    // Prefer higher FPS, penalize DMR, and break near-ties toward lower
    // tail latency (slack matters even when nothing misses yet).
    const double score = r.fps() * (1.0 - 0.5 * r.dmr()) -
                         0.01 * r.aggregate.p99_latency_ms;
    if (score > best_fps) {
      best_fps = score;
      best_os = os;
    }
  }
  t.print(std::cout);
  std::cout << "\nRecommended over-subscription for this workload: "
            << metrics::Table::fmt(best_os, 2) << "x\n"
            << "(The paper finds 2.0x best with 2 contexts but 1.5x best "
               "with 3 — more contexts\nalready cover the GPU, so extra "
               "over-subscription mostly adds contention.)\n";
  return 0;
}
