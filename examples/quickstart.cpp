// Quickstart: schedule a handful of periodic ResNet18 inference tasks with
// SGPRS and with the naive spatial-partitioning baseline, then compare the
// paper's two metrics (total FPS and deadline miss rate).
//
//   ./examples/quickstart [num_tasks]
#include <cstdlib>
#include <iostream>

#include "metrics/report.hpp"
#include "workload/scenario.hpp"

int main(int argc, char** argv) {
  using namespace sgprs;

  const int num_tasks = argc > 1 ? std::atoi(argv[1]) : 12;
  if (num_tasks < 1) {
    std::cerr << "usage: quickstart [num_tasks >= 1]\n";
    return 1;
  }

  std::cout << "SGPRS quickstart: " << num_tasks
            << " identical ResNet18 tasks @ 30 fps, 6 stages each,\n"
            << "2-context pool on a simulated RTX 2080 Ti (68 SMs).\n\n";

  metrics::Table table({"scheduler", "oversub", "total FPS", "DMR",
                        "p50 lat (ms)", "p99 lat (ms)", "migrations"});

  // Naive baseline: static spatial partitioning, one stream per context.
  workload::ScenarioConfig naive;
  naive.scheduler = workload::SchedulerKind::kNaive;
  naive.num_contexts = 2;
  naive.num_tasks = num_tasks;
  const auto nr = workload::run_scenario(naive);
  table.add_row({"naive", "-", metrics::Table::fmt(nr.fps()),
                 metrics::Table::pct(nr.dmr()),
                 metrics::Table::fmt(nr.aggregate.p50_latency_ms, 2),
                 metrics::Table::fmt(nr.aggregate.p99_latency_ms, 2), "0"});

  // SGPRS at the paper's three over-subscription levels.
  for (double os : {1.0, 1.5, 2.0}) {
    workload::ScenarioConfig cfg;
    cfg.scheduler = workload::SchedulerKind::kSgprs;
    cfg.num_contexts = 2;
    cfg.oversubscription = os;
    cfg.num_tasks = num_tasks;
    const auto r = workload::run_scenario(cfg);
    table.add_row({"sgprs", metrics::Table::fmt(os, 1),
                   metrics::Table::fmt(r.fps()),
                   metrics::Table::pct(r.dmr()),
                   metrics::Table::fmt(r.aggregate.p50_latency_ms, 2),
                   metrics::Table::fmt(r.aggregate.p99_latency_ms, 2),
                   std::to_string(r.stage_migrations)});
  }

  table.print(std::cout);
  std::cout << "\nTotal FPS counts completed frames per measured second; "
               "DMR counts late plus dropped frames.\n";
  return 0;
}
