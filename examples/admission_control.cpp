// Admission control: decide *offline* how many tasks to accept, then
// validate the decision in simulation.
//
// The paper locates its pivot points empirically; rt/analysis.hpp provides
// the analytical counterpart — a utilization test plus a heuristic
// response-time estimate — wrapped in an AdmissionController. This example
// admits identical 30 fps ResNet18 tasks until the controller refuses,
// then simulates admitted-count and admitted-count+4 to show the refusal
// was justified.
#include <iostream>
#include <memory>

#include "dnn/builders.hpp"
#include "metrics/report.hpp"
#include "rt/analysis.hpp"
#include "workload/scenario.hpp"

int main() {
  using namespace sgprs;

  const int contexts = 2;
  const double os = 1.5;
  const int sm_per_ctx =
      gpu::ContextPool::sms_per_context(68, contexts, os);

  const auto capacity = rt::pool_capacity(
      gpu::SpeedupModel::rtx2080ti(), gpu::SharingParams{}, 68, contexts,
      sm_per_ctx, 4);
  std::cout << "Pool: " << contexts << " contexts x " << sm_per_ctx
            << " SMs, 4 streams each. Saturated service rate: "
            << metrics::Table::fmt(capacity.work_rate, 1)
            << " SM-work/s across " << capacity.total_slots << " slots.\n\n";

  dnn::Profiler profiler(gpu::rtx2080ti(), gpu::SpeedupModel::rtx2080ti(),
                         dnn::CostModel::calibrated());
  auto net = std::make_shared<const dnn::Network>(dnn::resnet18());

  rt::AdmissionController controller(capacity, sm_per_ctx, 0.95);
  int admitted = 0;
  while (true) {
    rt::TaskConfig tc;
    tc.name = "cam" + std::to_string(admitted);
    const auto task =
        rt::build_task(admitted, net, tc, profiler, {sm_per_ctx});
    if (!controller.try_admit(task)) break;
    ++admitted;
  }
  std::cout << "Controller admits " << admitted
            << " tasks (utilization "
            << metrics::Table::pct(controller.current_utilization())
            << " of saturated capacity).\n\n";

  // Validate against the simulator: the admitted set must be safe; well
  // past the bound, misses must appear (the bound is deliberately
  // conservative, so a small overshoot may still be fine).
  metrics::Table t({"tasks", "verdict", "total FPS", "DMR"});
  for (int n : {admitted, admitted + 8}) {
    workload::ScenarioConfig cfg;
    cfg.scheduler = workload::SchedulerKind::kSgprs;
    cfg.num_contexts = contexts;
    cfg.oversubscription = os;
    cfg.num_tasks = n;
    cfg.duration = common::SimTime::from_sec(2.0);
    cfg.warmup = common::SimTime::from_ms(400);
    const auto r = workload::run_scenario(cfg);
    t.add_row({std::to_string(n),
               n <= admitted ? "admitted" : "refused (+8 anyway)",
               metrics::Table::fmt(r.fps(), 0),
               metrics::Table::pct(r.dmr())});
  }
  t.print(std::cout);
  std::cout << "\nThe admitted set runs miss-free; pushing well past the "
               "bound produces misses.\nThe analytical bound sits safely "
               "below the empirical pivot, as admission control should.\n";
  return 0;
}
