// Scenario specs walkthrough: the same workload described three ways —
// hard-coded ScenarioConfig, an inline JSON spec (bit-identical to the
// first), and a heterogeneous multi-tenant spec that the hard-coded path
// cannot express. See docs/scenario-format.md for the full schema.
//
//   ./examples/scenario_specs [path/to/spec.json]
#include <iostream>

#include "metrics/report.hpp"
#include "workload/spec.hpp"

int main(int argc, char** argv) {
  using namespace sgprs;

  // Optional: run a spec file from disk instead of the built-in tour.
  if (argc > 1) {
    const auto spec = workload::load_scenario_spec(argv[1]);
    const auto r = workload::run_spec(spec);
    std::cout << spec.name << ": FPS "
              << metrics::Table::fmt(r.fps(), 1) << ", DMR "
              << metrics::Table::pct(r.dmr()) << "\n";
    return 0;
  }

  std::cout << "1) The hard-coded way: ScenarioConfig in C++.\n";
  workload::ScenarioConfig cfg;
  cfg.num_contexts = 2;
  cfg.oversubscription = 1.5;
  cfg.num_tasks = 12;
  const auto hard = workload::run_scenario(cfg);
  std::cout << "   12x ResNet18 @ 30 fps -> FPS "
            << metrics::Table::fmt(hard.fps(), 1) << ", DMR "
            << metrics::Table::pct(hard.dmr()) << "\n\n";

  std::cout << "2) The same workload as a declarative JSON spec.\n";
  const char* kSimple = R"json({
    "name": "inline_simple",
    "scheduler": "sgprs",
    "pool": { "contexts": 2, "oversubscription": 1.5 },
    "tasks": [ { "count": 12, "network": "resnet18", "fps": 30, "stages": 6 } ]
  })json";
  const auto simple = workload::parse_scenario_spec(
      common::parse_json(kSimple), "inline_simple");
  const auto sr = workload::run_spec(simple);
  std::cout << "   simple spec lowers onto the identical-task fast path: "
            << "FPS " << metrics::Table::fmt(sr.fps(), 1)
            << (sr.fps() == hard.fps() ? " (bit-identical)" : " (DIVERGED!)")
            << "\n\n";

  std::cout << "3) What only specs can say: a heterogeneous tenant mix\n"
               "   with sporadic arrivals.\n";
  const char* kMixed = R"json({
    "name": "inline_mixed",
    "scheduler": "sgprs",
    "pool": { "contexts": 3, "oversubscription": 1.5 },
    "tasks": [
      { "name": "analytics", "count": 2, "network": "resnet50", "fps": 10, "stages": 8 },
      { "name": "camera", "count": 6, "network": "resnet18", "fps": 30, "stages": 6 },
      { "name": "burst", "count": 4, "network": "lenet5", "stages": 3,
        "arrival": "sporadic", "min_separation_ms": 16.7, "max_separation_ms": 50 }
    ]
  })json";
  const auto mixed = workload::parse_scenario_spec(
      common::parse_json(kMixed), "inline_mixed");
  const auto mr = workload::run_spec(mixed);
  metrics::Table t({"task", "FPS", "DMR"});
  t.add_row({"(aggregate)", metrics::Table::fmt(mr.fps(), 1),
             metrics::Table::pct(mr.dmr())});
  t.print(std::cout);

  std::cout << "\nThe curated library under scenarios/ runs the same way:\n"
               "  sgprs_cli --scenario=scenarios/paper_scenario1.json\n"
               "  sgprs_cli --suite=scenarios\n";
  return 0;
}
