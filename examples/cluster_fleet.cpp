// Fleet walkthrough: a heterogeneous 4-GPU cluster (two 2080 Ti, two
// 3090-class) serving one oversubscribed ResNet18 camera population.
//
// Shows the full cluster lifecycle the library exposes: placement policy
// comparison on the same offered load, per-device breakdown, admission
// rejections when the fleet saturates, and the rolled-up fleet report.
#include <iostream>

#include "metrics/report.hpp"
#include "workload/scenario.hpp"

int main() {
  using namespace sgprs;

  workload::ScenarioConfig base;
  base.scheduler = rt::SchedulerKind::kSgprs;
  base.oversubscription = 1.5;
  base.fleet = {gpu::rtx2080ti(), gpu::rtx2080ti(), gpu::rtx3090(),
                gpu::rtx3090()};
  base.num_tasks = 88;  // past what four devices admit at margin 0.95
  base.duration = common::SimTime::from_sec(2.0);
  base.warmup = common::SimTime::from_ms(400);

  std::cout << "Fleet: 2x RTX 2080 Ti + 2x RTX 3090, " << base.num_tasks
            << " ResNet18 tasks offered at 30 fps each\n\n";

  using cluster::PlacementPolicy;
  metrics::Table cmp({"placement", "placed", "rejected", "total FPS", "DMR",
                      "mean util"});
  for (auto policy :
       {PlacementPolicy::kRoundRobin, PlacementPolicy::kLeastLoaded,
        PlacementPolicy::kBinPackUtilization,
        PlacementPolicy::kHashAffinity}) {
    auto cfg = base;
    cfg.placement = policy;
    const auto r = workload::run_cluster_scenario(cfg);
    cmp.add_row({cluster::to_string(policy),
                 std::to_string(r.fleet.tasks_assigned),
                 std::to_string(r.fleet.tasks_rejected),
                 metrics::Table::fmt(r.fps(), 0),
                 metrics::Table::pct(r.dmr()),
                 metrics::Table::pct(r.fleet.mean_utilization)});
  }
  std::cout << "Placement policy comparison (same offered load):\n";
  cmp.print(std::cout);

  // Detailed look at worst-fit bin packing: big devices soak up tasks
  // first, so per-device DMR stays balanced across a heterogeneous fleet.
  auto cfg = base;
  cfg.placement = PlacementPolicy::kBinPackUtilization;
  const auto r = workload::run_cluster_scenario(cfg);
  std::cout << "\nPer-device breakdown under binpack:\n";
  metrics::Table dev({"device", "spec", "SMs", "tasks", "FPS", "DMR",
                      "util"});
  for (const auto& d : r.fleet.devices) {
    dev.add_row({std::to_string(d.device_index), d.device_name,
                 std::to_string(d.total_sms),
                 std::to_string(d.tasks_assigned),
                 metrics::Table::fmt(d.snapshot.fps, 1),
                 metrics::Table::pct(d.snapshot.dmr),
                 metrics::Table::pct(d.utilization)});
  }
  dev.print(std::cout);

  std::cout << "\nFleet rollup: " << metrics::Table::fmt(r.fps(), 0)
            << " FPS, DMR " << metrics::Table::pct(r.dmr()) << ", "
            << r.fleet.tasks_rejected
            << " tasks rejected by admission control (no device could "
               "bound their response time).\n"
            << "The 3090s carry more tasks than the 2080 Tis — worst-fit "
               "packing by spare capacity, not task count.\n";
  return 0;
}
