// sgprs_cli — run any scheduler/pool/workload combination from the command
// line and print (or CSV-export) the paper's metrics.
//
// Examples:
//   sgprs_cli --scheduler=sgprs --contexts=3 --oversub=1.5 --tasks=24
//   sgprs_cli --scheduler=naive --tasks=20 --duration=5
//   sgprs_cli --sweep=1:30 --csv=fig3.csv --contexts=2 --oversub=2.0
//   sgprs_cli --network=resnet50 --tasks=8 --fps=15 --stages=8
#include <fstream>
#include <iostream>

#include "common/csv.hpp"
#include "common/flags.hpp"
#include "metrics/report.hpp"
#include "workload/scenario.hpp"

namespace {

using namespace sgprs;

std::function<dnn::Network()> network_by_name(const std::string& name) {
  if (name == "resnet18") return [] { return dnn::resnet18(); };
  if (name == "resnet34") return [] { return dnn::resnet34(); };
  if (name == "resnet50") return [] { return dnn::resnet50(); };
  if (name == "alexnet") return [] { return dnn::alexnet(); };
  if (name == "vgg11") return [] { return dnn::vgg11(); };
  if (name == "mobilenet") return [] { return dnn::mobilenet_like(); };
  if (name == "lenet5") return [] { return dnn::lenet5(); };
  if (name == "mlp3") return [] { return dnn::mlp3(); };
  return nullptr;
}

int run(const common::FlagParser& flags) {
  workload::ScenarioConfig cfg;
  const std::string sched = flags.get("scheduler");
  if (sched == "sgprs") {
    cfg.scheduler = workload::SchedulerKind::kSgprs;
  } else if (sched == "naive") {
    cfg.scheduler = workload::SchedulerKind::kNaive;
  } else {
    std::cerr << "unknown --scheduler (want sgprs|naive): " << sched << "\n";
    return 1;
  }
  cfg.num_contexts = flags.get_int("contexts");
  cfg.oversubscription = flags.get_double("oversub");
  cfg.num_tasks = flags.get_int("tasks");
  cfg.fps = flags.get_double("fps");
  cfg.num_stages = flags.get_int("stages");
  cfg.duration = common::SimTime::from_sec(flags.get_double("duration"));
  cfg.warmup = common::SimTime::from_sec(flags.get_double("warmup"));
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed"));
  cfg.sgprs.medium_boost = flags.get_bool("medium-boost");
  cfg.sgprs.abort_hopeless = flags.get_bool("abort-hopeless");
  cfg.sgprs.max_in_flight_per_task = flags.get_int("in-flight");
  cfg.network_builder = network_by_name(flags.get("network"));
  if (!cfg.network_builder) {
    std::cerr << "unknown --network: " << flags.get("network") << "\n";
    return 1;
  }

  int sweep_from = 0;
  int sweep_to = 0;
  if (flags.has("sweep")) {
    const std::string s = flags.get("sweep");
    const auto colon = s.find(':');
    if (colon == std::string::npos) {
      std::cerr << "--sweep wants from:to, got " << s << "\n";
      return 1;
    }
    sweep_from = std::atoi(s.substr(0, colon).c_str());
    sweep_to = std::atoi(s.substr(colon + 1).c_str());
    if (sweep_from < 1 || sweep_to < sweep_from) {
      std::cerr << "bad --sweep range\n";
      return 1;
    }
  }

  if (sweep_from == 0) {
    const auto r = workload::run_scenario(cfg);
    metrics::Table t({"metric", "value"});
    t.add_row({"scheduler", sched});
    t.add_row({"tasks", std::to_string(cfg.num_tasks)});
    t.add_row({"total FPS", metrics::Table::fmt(r.fps(), 1)});
    t.add_row({"on-time FPS",
               metrics::Table::fmt(r.aggregate.fps_on_time, 1)});
    t.add_row({"DMR", metrics::Table::pct(r.dmr())});
    t.add_row({"p50 latency (ms)",
               metrics::Table::fmt(r.aggregate.p50_latency_ms, 2)});
    t.add_row({"p99 latency (ms)",
               metrics::Table::fmt(r.aggregate.p99_latency_ms, 2)});
    t.add_row({"migrations", std::to_string(r.stage_migrations)});
    t.add_row({"medium promotions", std::to_string(r.medium_promotions)});
    t.print(std::cout);
    return 0;
  }

  // Sweep mode.
  const auto results = workload::sweep_num_tasks(cfg, sweep_from, sweep_to);
  const int pivot = workload::find_pivot(results, sweep_from);
  if (flags.has("csv")) {
    std::ofstream out(flags.get("csv"));
    if (!out) {
      std::cerr << "cannot write " << flags.get("csv") << "\n";
      return 1;
    }
    common::CsvWriter csv(out);
    csv.header({"tasks", "fps", "fps_on_time", "dmr", "p50_ms", "p99_ms"});
    for (std::size_t i = 0; i < results.size(); ++i) {
      const auto& a = results[i].aggregate;
      csv.row({std::to_string(sweep_from + static_cast<int>(i)),
               common::CsvWriter::num(a.fps, 2),
               common::CsvWriter::num(a.fps_on_time, 2),
               common::CsvWriter::num(a.dmr, 4),
               common::CsvWriter::num(a.p50_latency_ms, 3),
               common::CsvWriter::num(a.p99_latency_ms, 3)});
    }
    std::cout << "wrote " << results.size() << " rows to "
              << flags.get("csv") << " (pivot at " << pivot << " tasks)\n";
    return 0;
  }
  metrics::Table t({"tasks", "total FPS", "DMR"});
  for (std::size_t i = 0; i < results.size(); ++i) {
    t.add_row({std::to_string(sweep_from + static_cast<int>(i)),
               metrics::Table::fmt(results[i].fps(), 0),
               metrics::Table::pct(results[i].dmr())});
  }
  t.print(std::cout);
  std::cout << "pivot: " << pivot << " tasks\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  common::FlagParser flags;
  flags.define("scheduler", "sgprs | naive", "sgprs");
  flags.define("contexts", "context pool size (paper: 2 or 3)", "2");
  flags.define("oversub", "over-subscription level (SGPRS only)", "1.5");
  flags.define("tasks", "number of identical periodic tasks", "16");
  flags.define("fps", "task rate", "30");
  flags.define("stages", "stages per task", "6");
  flags.define("network",
               "resnet18|resnet34|resnet50|alexnet|vgg11|mobilenet|lenet5|"
               "mlp3",
               "resnet18");
  flags.define("duration", "simulated seconds", "2.0");
  flags.define("warmup", "warm-up seconds excluded from metrics", "0.4");
  flags.define("seed", "phase-jitter seed", "42");
  flags.define("in-flight", "max in-flight jobs per task", "1");
  flags.define("sweep", "sweep task counts, e.g. 1:30", "");
  flags.define("csv", "write sweep results to a CSV file", "");
  flags.define("medium-boost",
               "medium-priority promotion of late chains (paper: on)",
               "true");
  flags.define_bool("abort-hopeless", "abort jobs past their deadline");
  flags.define_bool("help", "show this help");

  if (!flags.parse(argc, argv)) {
    std::cerr << flags.error() << "\n" << flags.help(argv[0]);
    return 1;
  }
  if (flags.get_bool("help")) {
    std::cout << flags.help(argv[0]);
    return 0;
  }
  try {
    return run(flags);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
